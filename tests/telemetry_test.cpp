// Telemetry layer tests: metric primitives, registry, nested-span linkage,
// JSONL export round-trip, and end-to-end instrumentation of a DistDec +
// Refresh run (nonzero group-op counters, phase spans, channel byte attrs,
// leakage gauges).
//
// The whole suite also builds with -DDLR_TELEMETRY=OFF; the hook-dependent
// assertions flip to their no-op expectations (zero counters, no spans), so
// CI can pin the disabled path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "group/counting_group.hpp"
#include "group/mock_group.hpp"
#include "leakage/budget.hpp"
#include "net/transcript.hpp"
#include "schemes/dlr.hpp"
#include "telemetry/events.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace dlr {
namespace {

using telemetry::Registry;
using telemetry::Tracer;

void reset_telemetry() {
  Registry::global().reset();
  Tracer::global().reset();
}

// ---- metric primitives --------------------------------------------------------

TEST(TelemetryMetricsTest, CounterAddAndValue) {
  telemetry::Counter c;
  c.add();
  c.add(41);
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(c.value(), 42u);
#endif
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryMetricsTest, CounterIsThreadSafe) {
  telemetry::Counter c;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  for (auto& t : ts) t.join();
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(c.value(), 40000u);
#else
  EXPECT_EQ(c.value(), 0u);
#endif
}

TEST(TelemetryMetricsTest, GaugeSetAndAdd) {
  telemetry::Gauge g;
  g.set(10.5);
  g.add(-0.5);
#if DLR_TELEMETRY_ENABLED
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
#else
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
#endif
}

TEST(TelemetryMetricsTest, HistogramBucketsAndMoments) {
  telemetry::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);   // bucket 0: <= 1
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(5.0);   // bucket 1
  h.observe(999.0); // overflow bucket
#if DLR_TELEMETRY_ENABLED
  const auto row = h.row("t");
  ASSERT_EQ(row.buckets.size(), 4u);
  EXPECT_EQ(row.buckets[0], 2u);
  EXPECT_EQ(row.buckets[1], 1u);
  EXPECT_EQ(row.buckets[2], 0u);
  EXPECT_EQ(row.buckets[3], 1u);
  EXPECT_EQ(row.count, 4u);
  EXPECT_DOUBLE_EQ(row.sum, 1005.5);
#else
  EXPECT_EQ(h.count(), 0u);
#endif
}

TEST(TelemetryMetricsTest, RegistryFindOrCreateAndLabels) {
  reset_telemetry();
  auto& reg = Registry::global();
  auto& a = reg.counter("test.reg", {{"k", "v1"}});
  auto& b = reg.counter("test.reg", {{"k", "v2"}});
  a.add(3);
  b.add(4);
#if DLR_TELEMETRY_ENABLED
  EXPECT_NE(&a, &b);  // distinct label sets are distinct metrics
  EXPECT_EQ(&a, &reg.counter("test.reg", {{"k", "v1"}}));
  EXPECT_EQ(reg.counter_value("test.reg{k=v1}"), 3u);
  EXPECT_EQ(reg.counter_value("test.reg{k=v2}"), 4u);
  EXPECT_EQ(reg.sum_counters("test.reg"), 7u);
#else
  EXPECT_EQ(reg.sum_counters("test.reg"), 0u);
#endif
}

TEST(TelemetryMetricsTest, ResetZeroesButKeepsHandles) {
  reset_telemetry();
  auto& c = Registry::global().counter("test.reset");
  c.add(9);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(Registry::global().counter_value("test.reset"), 2u);
#endif
}

TEST(TelemetryMetricsTest, ScopedTimerObservesIntoHistogram) {
  telemetry::Histogram h;
  { telemetry::ScopedTimer t(h); }
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
#else
  EXPECT_EQ(h.count(), 0u);
#endif
}

// ---- tracer -------------------------------------------------------------------

TEST(TelemetryTraceTest, NestedSpansLinkToParents) {
  reset_telemetry();
  {
    telemetry::ScopedSpan outer("outer");
    outer.attr_add("x", 1);
    {
      telemetry::ScopedSpan inner("inner");
      telemetry::span_attr_add("y", 2);
      telemetry::span_attr_add("y", 3);  // accumulates on the same key
    }
  }
  const auto spans = Tracer::global().spans();
#if DLR_TELEMETRY_ENABLED
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner finishes first.
  EXPECT_EQ(spans[0].label, "inner");
  EXPECT_EQ(spans[1].label, "outer");
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_DOUBLE_EQ(spans[0].attr_or("y", 0), 5.0);
  EXPECT_DOUBLE_EQ(spans[1].attr_or("x", 0), 1.0);
  EXPECT_GE(spans[1].duration_ms(), spans[0].duration_ms());
#else
  EXPECT_TRUE(spans.empty());
#endif
}

TEST(TelemetryTraceTest, AttrOutsideSpanIsNoop) {
  reset_telemetry();
  telemetry::span_attr_add("ignored", 1);  // must not crash
  EXPECT_FALSE(Tracer::global().in_span());
  EXPECT_TRUE(Tracer::global().spans().empty());
}

// ---- export / import round-trip ----------------------------------------------

TEST(TelemetryExportTest, JsonlRoundTrip) {
  reset_telemetry();
  auto& reg = Registry::global();
  reg.counter("rt.count", {{"backend", "mock"}}).add(123);
  reg.gauge("rt.gauge").set(2.5);
  reg.histogram("rt.hist", {1.0, 2.0}).observe(1.5);
  {
    telemetry::ScopedSpan s("rt.span \"quoted\"");
    telemetry::span_attr_add("net.bytes", 77);
  }

  const std::string jsonl = telemetry::to_jsonl(telemetry::ExportMeta{"unit"},
                                                reg.snapshot(), Tracer::global().spans());
  const auto back = telemetry::import_jsonl(jsonl);
  EXPECT_EQ(back.run, "unit");
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(back.counters.at("rt.count{backend=mock}"), 123u);
  EXPECT_DOUBLE_EQ(back.gauges.at("rt.gauge"), 2.5);
  ASSERT_EQ(back.histograms.size(), 1u);
  const auto& h = back.histograms.begin()->second;
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.sum, 1.5);
  ASSERT_EQ(h.bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(h.bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds[1], 2.0);
  ASSERT_EQ(h.buckets.size(), 3u);  // (-inf,1], (1,2], (2,inf)
  EXPECT_EQ(h.buckets[1], 1u);
  ASSERT_EQ(back.spans.size(), 1u);
  EXPECT_EQ(back.spans[0].label, "rt.span \"quoted\"");
  EXPECT_DOUBLE_EQ(back.spans[0].attr_or("net.bytes", 0), 77.0);
#else
  EXPECT_TRUE(back.counters.empty());
  EXPECT_TRUE(back.spans.empty());
#endif
}

TEST(TelemetryExportTest, TextAndChromeFormatsAreWellFormed) {
  reset_telemetry();
  Registry::global().counter("fmt.c").add(1);
  { telemetry::ScopedSpan s("fmt.span"); }
  const auto snap = Registry::global().snapshot();
  const auto spans = Tracer::global().spans();
  const std::string text = telemetry::to_text(snap, spans);
  EXPECT_NE(text.find("telemetry summary"), std::string::npos);
  const std::string chrome = telemetry::to_chrome_trace(spans);
  EXPECT_EQ(chrome.front(), '{');
  EXPECT_EQ(chrome.back(), '}');
  EXPECT_NE(chrome.find("traceEvents"), std::string::npos);
}

// ---- end-to-end: an instrumented DistDec + Refresh run -------------------------

TEST(TelemetryEndToEndTest, DistDecAndRefreshProduceCountersSpansAndGauges) {
  reset_telemetry();
  using CG = group::CountingGroup<group::MockGroup>;
  CG gg(group::make_mock());
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  auto sys = schemes::DlrSystem<CG>::create(gg, prm, schemes::P1Mode::Plain, 1234);

  crypto::Rng rng(7);
  const auto m = gg.gt_random(rng);
  const auto c = schemes::DlrCore<CG>::enc(gg, sys.pk(), m, rng);

  net::Channel ch;
  EXPECT_TRUE(gg.gt_eq(sys.decrypt(c, ch), m));
  sys.refresh(ch);

  // Leakage budget gauges, charged as the CML challenger would.
  leakage::LeakageBudget b1(512, "P1");
  ASSERT_TRUE(b1.charge_period(100, 50));

  auto& reg = Registry::global();
  const auto spans = Tracer::global().spans();
#if DLR_TELEMETRY_ENABLED
  // Per-backend group-op counters are live in the registry.
  EXPECT_GT(reg.sum_counters("group.exp"), 0u);
  EXPECT_GT(reg.sum_counters("group.mul"), 0u);
  EXPECT_GT(reg.sum_counters("group.pairing"), 0u);
  const std::string backend = gg.inner().name();
  EXPECT_GT(reg.counter_value("group.exp{backend=" + backend + "}"), 0u);
  // OpCounts and the registry agree on the shared-everything totals.
  EXPECT_EQ(reg.counter_value("group.pairing{backend=" + backend + "}"),
            gg.counts().pairings);

  // Channel byte accounting: registry totals match the recorded transcript.
  EXPECT_EQ(reg.counter_value("net.msgs"), ch.transcript().count());
  EXPECT_EQ(reg.counter_value("net.bytes"), ch.transcript().total_bytes());

  // Phase spans exist, nest correctly, and carry the channel bytes.
  auto find = [&](const std::string& label) -> const telemetry::Span* {
    for (const auto& s : spans)
      if (s.label == label) return &s;
    return nullptr;
  };
  const auto* dec = find("dlr.dec");
  const auto* r1 = find("dec.round1");
  const auto* ref = find("dlr.refresh");
  ASSERT_NE(dec, nullptr);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(find("dec.round2"), nullptr);
  ASSERT_NE(find("ref.round1"), nullptr);
  ASSERT_NE(find("ref.round2"), nullptr);
  EXPECT_EQ(r1->parent, dec->id);
  EXPECT_GE(dec->duration_ms(), 0.0);
  EXPECT_GT(dec->attr_or("net.bytes", 0), 0.0);
  EXPECT_GT(ref->attr_or("net.bytes", 0), 0.0);
  EXPECT_DOUBLE_EQ(dec->attr_or("net.bytes", 0) + ref->attr_or("net.bytes", 0),
                   static_cast<double>(ch.transcript().total_bytes()));

  // Leakage gauges.
  EXPECT_DOUBLE_EQ(reg.gauge_value("leak.budget.P1"), 512.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("leak.bits.P1"), 150.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("leak.carry.P1"), 50.0);

  // And the whole run exports as JSONL in one piece.
  const auto back = telemetry::import_jsonl(telemetry::to_jsonl(
      telemetry::ExportMeta{"e2e"}, reg.snapshot(), spans));
  EXPECT_EQ(back.counters.at("net.bytes"), ch.transcript().total_bytes());
  EXPECT_FALSE(back.spans.empty());
#else
  // Disabled build: hooks are no-ops, the protocol still works (asserted
  // above), and nothing accumulates anywhere.
  EXPECT_EQ(reg.sum_counters("group.exp"), 0u);
  EXPECT_EQ(reg.counter_value("net.bytes"), 0u);
  EXPECT_TRUE(spans.empty());
  EXPECT_DOUBLE_EQ(reg.gauge_value("leak.bits.P1"), 0.0);
#endif
}

// ---- 64-bit id precision ------------------------------------------------------

TEST(TelemetryExportTest, SpanAndTraceIdsRoundTripFull64Bits) {
  // Ids carry random high bits; parsing them through a double would shave
  // everything past the 53-bit mantissa. 0x9e3779b97f4a7c15 differs from its
  // nearest double by thousands, so this catches any strtod path.
  const std::string jsonl =
      "{\"type\":\"meta\",\"run\":\"prec\"}\n"
      "{\"type\":\"span\",\"id\":11400714819323198485,\"parent\":"
      "11400714819323198484,\"trace\":11400714819323198483,\"label\":\"x\","
      "\"start_ns\":1,\"dur_ms\":1.0,\"attrs\":{}}\n";
  const auto back = telemetry::import_jsonl(jsonl);
  ASSERT_EQ(back.spans.size(), 1u);
  EXPECT_EQ(back.spans[0].id, 11400714819323198485ull);
  EXPECT_EQ(back.spans[0].parent, 11400714819323198484ull);
  EXPECT_EQ(back.spans[0].trace_id, 11400714819323198483ull);
}

TEST(TelemetryExportTest, MultiRunFilesSplitPerMetaLine) {
  const std::string two =
      "{\"type\":\"meta\",\"run\":\"a\"}\n"
      "{\"type\":\"counter\",\"name\":\"c\",\"value\":1}\n"
      "{\"type\":\"meta\",\"run\":\"b\"}\n"
      "{\"type\":\"counter\",\"name\":\"c\",\"value\":2}\n";
  const auto runs = telemetry::import_jsonl_runs(two);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].run, "a");
  EXPECT_EQ(runs[0].counters.at("c"), 1u);
  EXPECT_EQ(runs[1].run, "b");
  EXPECT_EQ(runs[1].counters.at("c"), 2u);
}

// ---- Prometheus exposition ----------------------------------------------------

TEST(TelemetryPrometheusTest, ExpositionIsLintCleanAndParsesBack) {
  reset_telemetry();
  auto& reg = Registry::global();
  reg.counter("prom.count", {{"backend", "mock"}}).add(7);
  reg.gauge("prom.gauge").set(1.25);
  reg.histogram("prom.lat.ms", {1.0, 10.0}).observe(0.5);
  reg.histogram("prom.lat.ms", {1.0, 10.0}).observe(5.0);

  const std::string text = telemetry::to_prometheus(reg.snapshot());
  EXPECT_EQ(telemetry::prometheus_lint(text), "");
#if DLR_TELEMETRY_ENABLED
  const auto samples = telemetry::parse_prometheus(text);
  EXPECT_DOUBLE_EQ(samples.at("prom_count{backend=\"mock\"}"), 7.0);
  EXPECT_DOUBLE_EQ(samples.at("prom_gauge"), 1.25);
  EXPECT_DOUBLE_EQ(samples.at("prom_lat_ms_count"), 2.0);
  EXPECT_DOUBLE_EQ(samples.at("prom_lat_ms_sum"), 5.5);
  EXPECT_DOUBLE_EQ(samples.at("prom_lat_ms_bucket{le=\"1\"}"), 1.0);
  EXPECT_DOUBLE_EQ(samples.at("prom_lat_ms_bucket{le=\"+Inf\"}"), 2.0);
#endif
}

TEST(TelemetryPrometheusTest, LintRejectsStructurallyBrokenDocs) {
  EXPECT_NE(telemetry::prometheus_lint("9bad_name 1\n"), "");
  EXPECT_NE(telemetry::prometheus_lint("x{le=\"1\"} nope\n"), "");
  // Non-cumulative histogram: +Inf bucket below an earlier bucket.
  const std::string bad =
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_bucket{le=\"+Inf\"} 3\n"
      "h_sum 1\n"
      "h_count 3\n";
  EXPECT_NE(telemetry::prometheus_lint(bad), "");
}

// ---- event log ----------------------------------------------------------------

TEST(TelemetryEventLogTest, RingIsBoundedOrderedAndTraceCorrelated) {
  reset_telemetry();
  telemetry::EventLog::global().reset();
  {
    telemetry::ScopedSpan s("evt.span");
    telemetry::event(telemetry::EventKind::Retry, "in-span");
  }
  telemetry::event(telemetry::EventKind::EpochPrepare, "outside");
  const auto evs = telemetry::EventLog::global().events();
#if DLR_TELEMETRY_ENABLED
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_LT(evs[0].seq, evs[1].seq);
  EXPECT_NE(evs[0].trace_id, 0u) << "event inside a span adopts its trace";
  EXPECT_EQ(evs[1].trace_id, 0u);
  EXPECT_EQ(std::string(telemetry::event_kind_name(evs[0].kind)), "retry");

  // Overflow: the ring keeps the newest kCapacity events, oldest-first.
  for (std::uint64_t i = 0; i < telemetry::EventLog::kCapacity + 10; ++i)
    telemetry::event(telemetry::EventKind::FaultInjected, "n=" + std::to_string(i));
  const auto full = telemetry::EventLog::global().events();
  EXPECT_EQ(full.size(), telemetry::EventLog::kCapacity);
  for (std::size_t i = 1; i < full.size(); ++i)
    EXPECT_EQ(full[i].seq, full[i - 1].seq + 1);
  const std::string dump = telemetry::EventLog::global().dump_jsonl();
  EXPECT_NE(dump.find("\"kind\":\"fault-injected\""), std::string::npos);
#else
  EXPECT_TRUE(evs.empty());
#endif
  telemetry::EventLog::global().reset();
}

// ---- scrape vs. hot path concurrency ------------------------------------------

// The admin endpoint turns snapshots into a steady background reader, and
// tests reset the registry between cases; under TSan this hammers the
// snapshot/reset/increment triangle for data races.
TEST(TelemetryConcurrencyTest, SnapshotResetIncrementHammer) {
  reset_telemetry();
  auto& reg = Registry::global();
  std::atomic<bool> stop{false};
  std::thread incrementer([&] {
    while (!stop.load()) {
      reg.counter("hammer.count").add();
      reg.gauge("hammer.gauge").set(1.0);
      reg.histogram("hammer.hist", {1.0, 2.0}).observe(1.5);
    }
  });
  std::thread scraper([&] {
    while (!stop.load()) {
      const auto snap = reg.snapshot();
      const auto text = telemetry::to_prometheus(snap);
      EXPECT_EQ(telemetry::prometheus_lint(text), "") << text;
    }
  });
  std::thread resetter([&] {
    for (int i = 0; i < 50; ++i) {
      reg.reset();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop.store(true);
  });
  incrementer.join();
  scraper.join();
  resetter.join();

  // Deterministic epilogue: after a final reset, counts observed are exact.
  reg.reset();
  reg.counter("hammer.count").add(5);
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(reg.counter_value("hammer.count"), 5u);
#endif
  reset_telemetry();
}

// ---- SecretSnapshot bit conventions (satellite of this PR) ---------------------

TEST(TelemetrySnapshotConventionTest, BitsIncludesIntermediatesEssentialDoesNot) {
  net::SecretSnapshot s{Bytes{1, 2}, Bytes{3}, Bytes{4, 5, 6}};
  EXPECT_EQ(s.bits(), 8u * 6);            // full leakage-function input
  EXPECT_EQ(s.essential_bits(), 8u * 3);  // rate denominator: share + coins
}

}  // namespace
}  // namespace dlr
