# Empty dependencies file for leakage_game_demo.
# This may be replaced when dependencies are built.
