// T1 -- efficiency comparison (paper Section 1.2.1 + footnote 3).
//
// The paper's claim: DLR encrypts whole group elements with 2 exponentiations
// and a 2-element ciphertext (the one pairing e(g1,g2) ships in the public
// key), whereas [11]-style schemes encrypt bit-by-bit with omega(n)
// exponentiations and omega(n)-element ciphertexts, [29] uses composite-order
// groups, and [30] needs omega(1) exponentiations/elements. We measure our
// DLR implementation and the implemented cost-model baselines on the real
// SS512 pairing group and print both measured numbers and the paper's
// asymptotic columns.
#include "bench_util.hpp"
#include "group/counting_group.hpp"
#include "group/tate_group.hpp"
#include "schemes/baselines.hpp"
#include "schemes/bb_ibe.hpp"
#include "schemes/dlr.hpp"

namespace {

using namespace dlr;
using namespace dlr::bench;
using CG = group::CountingGroup<group::TateSS512>;

struct Row {
  std::string scheme;
  std::string per_plaintext;  // what one "plaintext" is
  std::size_t enc_exps, enc_pairings, ct_elems;
  double enc_ms, dec_ms;
  std::size_t ct_bytes;
  std::string asymptotic;  // the paper's column
};

}  // namespace

int main(int argc, char** argv) {
  banner("T1: encryption-efficiency comparison",
         "paper Section 1.2.1 'efficiency' + footnote 3");

  CG gg(group::make_tate_ss512());
  crypto::Rng rng(42);
  std::vector<Row> rows;

  // ---- DLR (this paper) -------------------------------------------------------
  {
    const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
    auto sys = schemes::DlrSystem<CG>::create(gg, prm, schemes::P1Mode::Plain, 7);
    const auto m = gg.gt_random(rng);
    gg.reset_counts();
    const auto ct = schemes::DlrCore<CG>::enc(gg, sys.pk(), m, rng);
    const auto enc_ops = gg.snapshot();
    const double enc_ms =
        time_ms([&] { sink(schemes::DlrCore<CG>::enc(gg, sys.pk(), m, rng)); });
    const double dec_ms = time_ms([&] { sink(sys.decrypt(ct)); }, 1);
    rows.push_back({"DLR (this work)", "1 GT element", enc_ops.exps(), enc_ops.pairings, 2,
                    enc_ms, dec_ms, schemes::DlrCore<CG>::ciphertext_bytes(gg),
                    "2 exps, 2 elems"});
  }

  // ---- ElGamal in GT (no leakage protection) ------------------------------------
  {
    schemes::ElGamalGT<CG> eg(gg);
    auto [pk, sk] = eg.gen(rng);
    const auto m = gg.gt_random(rng);
    gg.reset_counts();
    const auto ct = eg.enc(pk, m, rng);
    const auto ops = gg.snapshot();
    rows.push_back({"ElGamal-GT (no leakage res.)", "1 GT element", ops.exps(), ops.pairings,
                    2, time_ms([&] { sink(eg.enc(pk, m, rng)); }),
                    time_ms([&] { sink(eg.dec(sk, ct)); }), eg.ciphertext_bytes(),
                    "2 exps, 2 elems"});
  }

  // ---- BHHO / Naor-Segev (bounded leakage, no refresh) ----------------------------
  {
    const std::size_t w = 8;
    schemes::Bhho<CG> bh(gg, w);
    auto [pk, sk] = bh.gen(rng);
    const auto m = gg.g_random(rng);
    gg.reset_counts();
    const auto ct = bh.enc(pk, m, rng);
    const auto ops = gg.snapshot();
    rows.push_back({"BHHO/NS w=8 (bounded leakage)", "1 G element", ops.exps(), ops.pairings,
                    w + 1, time_ms([&] { sink(bh.enc(pk, m, rng)); }),
                    time_ms([&] { sink(bh.dec(sk, ct)); }), bh.ciphertext_bytes(),
                    "w+1 exps, w+1 elems"});
  }

  // ---- bit-by-bit model of BKKV [11] ----------------------------------------------
  {
    const std::size_t w = 4;
    const std::size_t kbytes = 16;  // a 128-bit plaintext
    schemes::BitwiseBhho<CG> bb(gg, w);
    auto [pk, sk] = bb.gen(rng);
    const Bytes msg(kbytes, 0x5a);
    gg.reset_counts();
    const auto ct = bb.enc(pk, msg, rng);
    const auto ops = gg.snapshot();
    rows.push_back({"bitwise-BHHO (BKKV[11] model)", "128-bit string", ops.exps(),
                    ops.pairings, 8 * kbytes * (w + 1),
                    time_ms([&] { sink(bb.enc(pk, msg, rng)); }, 1),
                    time_ms([&] { sink(bb.dec(sk, ct)); }, 1), bb.ciphertext_bytes(kbytes),
                    "omega(n) exps, omega(n) elems"});
  }

  // ---- single-processor BB IBE (the substrate) -------------------------------------
  {
    const std::size_t nid = 32;
    schemes::BbIbe<CG> ibe(gg, nid);
    auto [pp, mk] = ibe.setup(rng);
    const auto sk = ibe.extract(pp, mk, "alice", rng);
    const auto m = gg.gt_random(rng);
    gg.reset_counts();
    const auto ct = ibe.enc(pp, "alice", m, rng);
    const auto ops = gg.snapshot();
    rows.push_back({"BB-IBE nid=32 (substrate)", "1 GT element", ops.exps(), ops.pairings,
                    nid + 2, time_ms([&] { sink(ibe.enc(pp, "alice", m, rng)); }),
                    time_ms([&] { sink(ibe.dec(sk, ct)); }), ibe.ciphertext_bytes(),
                    "n_id+2 exps, n_id+2 elems"});
  }

  Table t({"scheme", "plaintext", "enc exps", "enc pair", "ct elems", "enc ms", "dec ms",
           "ct size", "paper column"});
  for (const auto& r : rows) {
    t.row({r.scheme, r.per_plaintext, std::to_string(r.enc_exps),
           std::to_string(r.enc_pairings), std::to_string(r.ct_elems), fmt(r.enc_ms),
           fmt(r.dec_ms), fmt_bytes(r.ct_bytes), r.asymptotic});
  }
  t.print();

  std::printf(
      "\nShape check (paper footnote 3): DLR encrypts a whole group element with\n"
      "2 exponentiations and a 2-element ciphertext; the bit-by-bit [11]-profile\n"
      "baseline needs %s exponentiations for a 128-bit plaintext. DLR decryption\n"
      "is protocol-bound (it pays pairings for leakage resilience), which is the\n"
      "auxiliary-device trade the paper describes in Section 1.1.\n",
      "hundreds of");
  export_json_if_requested(argc, argv, "bench_t1_efficiency");
  return 0;
}
