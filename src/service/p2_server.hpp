// P2Server -- the paper's long-lived auxiliary device (§1.1, §4.4) as a
// multi-threaded network service.
//
// The server owns the P2 share and answers DistDec round-2 and Refresh
// round-2 requests from the P1-side client over framed, session-multiplexed
// TCP. Thread architecture (one arrow = one thread kind):
//
//   accept thread --------> per-connection reader threads ---> WorkerPool
//   (Listener::accept)      (FramedConn::recv_blocking,        (dec/ref jobs;
//                            enqueue only, no crypto)           all crypto here)
//
// Shared-state discipline:
//   * the DlrParty2 share sits behind a shared_mutex: decryption jobs hold it
//     shared (dec_respond is const), the refresh job holds it exclusive;
//   * the EpochCoordinator admits requests, drains in-flight decryptions
//     before a refresh, and rejects stale/raced requests with retryable
//     service errors;
//   * responses are sent through the connection's thread-safe FramedConn.
//
// Every request runs in a svc.dec / svc.refresh span; svc.requests,
// svc.refreshes and svc.stale count outcomes.
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "crypto/rng.hpp"
#include "schemes/dlr.hpp"
#include "service/epoch.hpp"
#include "service/protocol.hpp"
#include "service/worker_pool.hpp"
#include "telemetry/trace.hpp"
#include "transport/endpoint.hpp"

namespace dlr::service {

template <group::BilinearGroup GG>
class P2Server {
 public:
  using Core = schemes::DlrCore<GG>;

  struct Options {
    int workers = 4;
    std::size_t queue_cap = 1024;
    transport::TransportOptions transport{};
  };

  P2Server(GG gg, schemes::DlrParams prm, typename Core::Sk2 sk2, crypto::Rng rng,
           Options opt)
      : opt_(opt),
        p2_(std::move(gg), prm, std::move(sk2), std::move(rng)),
        pool_(opt.workers, opt.queue_cap) {}

  ~P2Server() { stop(); }
  P2Server(const P2Server&) = delete;
  P2Server& operator=(const P2Server&) = delete;

  /// Bind a loopback listener (port 0 = ephemeral) and start serving.
  void start(std::uint16_t port = 0) {
    listener_ = transport::Listener::loopback(port);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] std::uint64_t epoch() const { return coord_.epoch(); }
  [[nodiscard]] std::uint64_t inflight() const { return coord_.inflight(); }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_.load(); }
  [[nodiscard]] std::uint64_t refreshes_served() const { return refreshes_.load(); }

  /// Current P2 share (tests: msk-constancy checks). Takes the share lock.
  [[nodiscard]] typename Core::Sk2 share_for_test() const {
    std::shared_lock lock(p2_mu_);
    return p2_.share();
  }

  /// Orderly shutdown: close the listener, hang up every connection, join
  /// readers, drain the worker pool. Idempotent.
  void stop() {
    if (stopping_.exchange(true)) {
      if (accept_thread_.joinable()) accept_thread_.join();
      return;
    }
    listener_.close();
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::lock_guard lock(conns_mu_);
      for (auto& c : conns_) c->conn->shutdown();
    }
    // Stop the pool before joining readers: a reader blocked in submit()
    // (queue full) is released by stop(), and queued jobs answering hung-up
    // connections fail their send and are swallowed by the job's catch.
    pool_.stop();
    {
      std::lock_guard lock(conns_mu_);
      for (auto& c : conns_)
        if (c->reader.joinable()) c->reader.join();
    }
  }

 private:
  struct ConnState {
    std::shared_ptr<transport::FramedConn> conn;
    std::thread reader;
  };

  void accept_loop() {
    for (;;) {
      transport::Socket sock;
      try {
        sock = listener_.accept(transport::Millis{200});
      } catch (const transport::TransportError& e) {
        if (e.code() == transport::Errc::Timeout) {
          if (stopping_.load()) return;
          continue;
        }
        return;  // listener closed
      }
      auto st = std::make_shared<ConnState>();
      st->conn = std::make_shared<transport::FramedConn>(std::move(sock), opt_.transport);
      st->reader = std::thread([this, conn = st->conn] { reader_loop(conn); });
      std::lock_guard lock(conns_mu_);
      conns_.push_back(std::move(st));
    }
  }

  void reader_loop(std::shared_ptr<transport::FramedConn> conn) {
    for (;;) {
      transport::Frame f;
      try {
        f = conn->recv_blocking();
      } catch (const transport::TransportError&) {
        return;  // closed / corrupt stream: connection is done
      }
      if (f.type != transport::FrameType::Data) continue;
      if (!pool_.submit([this, conn, f = std::move(f)]() mutable {
            handle(*conn, std::move(f));
          }))
        return;  // pool stopping
    }
  }

  void handle(transport::FramedConn& conn, transport::Frame f) {
    try {
      if (f.label == kLabelDecReq) {
        handle_dec(conn, f);
      } else if (f.label == kLabelRefReq) {
        handle_ref(conn, f);
      } else {
        send_err(conn, f.session, ServiceErrc::BadRequest, "unknown label '" + f.label + "'");
      }
    } catch (const transport::TransportError&) {
      // Response could not be delivered (client gone): nothing left to do.
    } catch (const std::exception& e) {
      try {
        send_err(conn, f.session, ServiceErrc::Internal, e.what());
      } catch (...) {
      }
    }
  }

  void handle_dec(transport::FramedConn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("svc.dec");
    Request req;
    try {
      req = decode_request(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f.session, ServiceErrc::BadRequest, e.what());
      return;
    }
    switch (coord_.begin_decrypt(req.epoch)) {
      case EpochCoordinator::Admit::Stale:
        send_err(conn, f.session, ServiceErrc::StaleEpoch, "request epoch " +
                     std::to_string(req.epoch) + " != " + std::to_string(coord_.epoch()));
        return;
      case EpochCoordinator::Admit::Draining:
        send_err(conn, f.session, ServiceErrc::Draining, "refresh in progress");
        return;
      case EpochCoordinator::Admit::Accepted:
        break;
    }
    Bytes reply;
    bool bad_request = false;
    std::string err;
    try {
      std::shared_lock lock(p2_mu_);
      reply = p2_.dec_respond(req.round1);
    } catch (const std::exception& e) {
      bad_request = true;  // malformed round-1 payload (deser/width errors)
      err = e.what();
    }
    coord_.end_decrypt();
    requests_.fetch_add(1);
    if (bad_request) {
      send_err(conn, f.session, ServiceErrc::BadRequest, err);
      return;
    }
    conn.send(transport::Frame{f.session, transport::FrameType::Data,
                               static_cast<std::uint8_t>(net::DeviceId::P2), kLabelDecOk,
                               std::move(reply)});
  }

  void handle_ref(transport::FramedConn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("svc.refresh");
    Request req;
    try {
      req = decode_request(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f.session, ServiceErrc::BadRequest, e.what());
      return;
    }
    if (coord_.begin_refresh(req.epoch) != EpochCoordinator::Admit::Accepted) {
      send_err(conn, f.session, ServiceErrc::StaleEpoch, "refresh epoch " +
                   std::to_string(req.epoch) + " != " + std::to_string(coord_.epoch()));
      return;
    }
    Bytes reply;
    bool ok = false;
    std::string err;
    try {
      std::unique_lock lock(p2_mu_);
      reply = p2_.ref_respond(req.round1);
      ok = true;
    } catch (const std::exception& e) {
      err = e.what();
    }
    coord_.finish_refresh(ok);
    if (!ok) {
      send_err(conn, f.session, ServiceErrc::BadRequest, err);
      return;
    }
    refreshes_.fetch_add(1);
    conn.send(transport::Frame{f.session, transport::FrameType::Data,
                               static_cast<std::uint8_t>(net::DeviceId::P2), kLabelRefOk,
                               std::move(reply)});
  }

  void send_err(transport::FramedConn& conn, std::uint32_t session, ServiceErrc code,
                const std::string& msg) {
    conn.send(transport::Frame{session, transport::FrameType::Error,
                               static_cast<std::uint8_t>(net::DeviceId::P2), kLabelErr,
                               encode_error(code, coord_.epoch(), msg)});
  }

  Options opt_;
  schemes::DlrParty2<GG> p2_;
  mutable std::shared_mutex p2_mu_;
  EpochCoordinator coord_;
  WorkerPool pool_;
  transport::Listener listener_;
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<ConnState>> conns_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> refreshes_{0};
};

}  // namespace dlr::service
