// Consistent-hash shard map: which server process owns which (tenant, key).
//
// Placement is a classic consistent-hash ring: every shard contributes
// kVirtualNodes points `mix64(shard_id * kVnodeStride + v)`, a key lands on
// the first ring point clockwise of key_hash(id) (wrapping). Virtual nodes
// smooth the load (~64 points/shard keeps the max/min key-count ratio under
// ~1.3 at 10k keys) and adding or removing one shard only moves the keys in
// the arcs it owned -- minimal rebalance, verified in tests.
//
// The map is versioned, serializable, and served by every shard over the
// `ks.map` route; clients cache it, route locally, and on a WrongShard
// redirect refetch and retry (src/service/README.md route table). Placement
// uses key_hash (cross-process stable FNV-1a/splitmix64), never std::hash.
//
// An EMPTY map means "unsharded": owner() says shard 0 owns everything, and
// servers with an empty map accept every key. That is the single-key /
// single-shard compatibility mode and the bootstrap state before an
// operator installs a map.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "keystore/key_id.hpp"

namespace dlr::keystore {

struct ShardInfo {
  std::uint32_t id = 0;
  std::string host;  // empty = loopback
  std::uint16_t port = 0;

  bool operator==(const ShardInfo& o) const {
    return id == o.id && host == o.host && port == o.port;
  }
};

class ShardMap {
 public:
  static constexpr std::uint32_t kVirtualNodes = 64;

  ShardMap() = default;
  ShardMap(std::uint64_t version, std::vector<ShardInfo> shards);

  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] const std::vector<ShardInfo>& shards() const { return shards_; }
  [[nodiscard]] bool empty() const { return shards_.empty(); }

  /// Shard id owning `id`; 0 for an empty map (unsharded mode).
  [[nodiscard]] std::uint32_t owner(const KeyId& id) const;
  [[nodiscard]] std::uint32_t owner_of_hash(std::uint64_t h) const;

  /// Lookup by shard id (nullptr if absent).
  [[nodiscard]] const ShardInfo* shard(std::uint32_t id) const;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static ShardMap decode(const Bytes& body);

  bool operator==(const ShardMap& o) const {
    return version_ == o.version_ && shards_ == o.shards_;
  }

 private:
  void build_ring();

  std::uint64_t version_ = 0;
  std::vector<ShardInfo> shards_;
  // (ring point, shard id), sorted by point. Rebuilt from shards_ on
  // construction/decode, never serialized.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace dlr::keystore
