file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_leakage_rates.dir/bench_t2_leakage_rates.cpp.o"
  "CMakeFiles/bench_t2_leakage_rates.dir/bench_t2_leakage_rates.cpp.o.d"
  "bench_t2_leakage_rates"
  "bench_t2_leakage_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_leakage_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
