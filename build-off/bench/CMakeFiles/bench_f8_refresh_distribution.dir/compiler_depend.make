# Empty compiler generated dependencies file for bench_f8_refresh_distribution.
# This may be replaced when dependencies are built.
