// Generic-bilinear-group model: group elements are their own discrete logs.
//
// G and GT elements carry an exponent v mod r; the group operation adds
// exponents, exponentiation multiplies, and the pairing is
// e(g^a, g^b) = gt^(a*b). Every identity of a symmetric prime-order bilinear
// group holds exactly, so all scheme/protocol code runs unchanged -- but
// discrete log is trivial by construction. Use only for tests, property
// sweeps and statistical experiments (tiny r makes distributions measurable).
#pragma once

#include <cstdint>
#include <string>

#include "group/bilinear.hpp"

namespace dlr::group {

struct MockG {
  std::uint64_t v = 0;
  bool operator==(const MockG&) const = default;
};

struct MockGT {
  std::uint64_t v = 0;
  bool operator==(const MockGT&) const = default;
};

class MockGroup {
 public:
  using Scalar = std::uint64_t;
  using G = MockG;
  using GT = MockGT;

  /// r must be prime (checked); keep it < 2^62 so mulmod stays exact.
  explicit MockGroup(std::uint64_t r);

  [[nodiscard]] std::uint64_t order_u64() const { return r_; }

  // ---- scalars --------------------------------------------------------------
  [[nodiscard]] std::size_t scalar_bits() const;
  [[nodiscard]] Scalar sc_random(crypto::Rng& rng) const { return rng.below(r_); }
  [[nodiscard]] Scalar sc_from_u64(std::uint64_t v) const { return v % r_; }
  [[nodiscard]] Scalar sc_add(Scalar a, Scalar b) const { return addm(a, b); }
  [[nodiscard]] Scalar sc_sub(Scalar a, Scalar b) const { return subm(a, b); }
  [[nodiscard]] Scalar sc_mul(Scalar a, Scalar b) const { return mulm(a, b); }
  [[nodiscard]] Scalar sc_neg(Scalar a) const { return subm(0, a); }
  [[nodiscard]] Scalar sc_inv(Scalar a) const;
  [[nodiscard]] bool sc_eq(Scalar a, Scalar b) const { return a == b; }
  [[nodiscard]] bool sc_is_zero(Scalar a) const { return a == 0; }

  // ---- G ----------------------------------------------------------------------
  [[nodiscard]] G g_gen() const { return {1}; }
  [[nodiscard]] G g_id() const { return {0}; }
  [[nodiscard]] G g_random(crypto::Rng& rng) const { return {rng.below(r_)}; }
  [[nodiscard]] G g_mul(G a, G b) const { return {addm(a.v, b.v)}; }
  [[nodiscard]] G g_inv(G a) const { return {subm(0, a.v)}; }
  [[nodiscard]] G g_pow(G a, Scalar s) const { return {mulm(a.v, s)}; }
  [[nodiscard]] bool g_eq(G a, G b) const { return a == b; }
  [[nodiscard]] bool g_is_id(G a) const { return a.v == 0; }
  [[nodiscard]] G hash_to_g(const Bytes& data) const;
  [[nodiscard]] G g_multi_pow(std::span<const G> as, std::span<const Scalar> ss) const {
    if (as.size() != ss.size()) throw std::invalid_argument("g_multi_pow: size mismatch");
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < as.size(); ++i) acc = addm(acc, mulm(as[i].v, ss[i]));
    return {acc};
  }

  // ---- GT ---------------------------------------------------------------------
  [[nodiscard]] GT gt_gen() const { return {1}; }
  [[nodiscard]] GT gt_id() const { return {0}; }
  [[nodiscard]] GT gt_random(crypto::Rng& rng) const { return {rng.below(r_)}; }
  [[nodiscard]] GT gt_mul(GT a, GT b) const { return {addm(a.v, b.v)}; }
  [[nodiscard]] GT gt_inv(GT a) const { return {subm(0, a.v)}; }
  [[nodiscard]] GT gt_pow(GT a, Scalar s) const { return {mulm(a.v, s)}; }
  [[nodiscard]] bool gt_eq(GT a, GT b) const { return a == b; }
  [[nodiscard]] bool gt_is_id(GT a) const { return a.v == 0; }
  [[nodiscard]] GT gt_multi_pow(std::span<const GT> ts, std::span<const Scalar> ss) const {
    if (ts.size() != ss.size()) throw std::invalid_argument("gt_multi_pow: size mismatch");
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) acc = addm(acc, mulm(ts[i].v, ss[i]));
    return {acc};
  }

  // ---- pairing ------------------------------------------------------------------
  [[nodiscard]] GT pair(G a, G b) const { return {mulm(a.v, b.v)}; }

  // ---- serialization --------------------------------------------------------------
  [[nodiscard]] std::size_t sc_bytes() const { return 8; }
  [[nodiscard]] std::size_t g_bytes() const { return 8; }
  [[nodiscard]] std::size_t gt_bytes() const { return 8; }
  void sc_ser(ByteWriter& w, Scalar s) const { w.u64(s); }
  [[nodiscard]] Scalar sc_deser(ByteReader& r) const { return check(r.u64()); }
  void g_ser(ByteWriter& w, G a) const { w.u64(a.v); }
  [[nodiscard]] G g_deser(ByteReader& r) const { return {check(r.u64())}; }
  void gt_ser(ByteWriter& w, GT t) const { w.u64(t.v); }
  [[nodiscard]] GT gt_deser(ByteReader& r) const { return {check(r.u64())}; }

  [[nodiscard]] std::string name() const { return "mock-r" + std::to_string(r_); }

  /// Discrete log "oracle" -- trivially available in this model; used by
  /// attack simulations that want to check key recovery.
  [[nodiscard]] Scalar dlog(G a) const { return a.v; }
  [[nodiscard]] Scalar dlog_gt(GT a) const { return a.v; }

 private:
  [[nodiscard]] std::uint64_t addm(std::uint64_t a, std::uint64_t b) const {
    const std::uint64_t s = a + b;  // r < 2^62, no overflow
    return s >= r_ ? s - r_ : s;
  }
  [[nodiscard]] std::uint64_t subm(std::uint64_t a, std::uint64_t b) const {
    return a >= b ? a - b : a + r_ - b;
  }
  [[nodiscard]] std::uint64_t mulm(std::uint64_t a, std::uint64_t b) const {
    return static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) * b) % r_);
  }
  [[nodiscard]] std::uint64_t check(std::uint64_t v) const {
    if (v >= r_) throw std::invalid_argument("MockGroup: element out of range");
    return v;
  }

  std::uint64_t r_;
};

/// Deterministic Miller-Rabin for 64-bit integers (exact).
bool is_prime_u64(std::uint64_t n);

/// Default mock group order: a 61-bit Mersenne prime.
inline constexpr std::uint64_t kMockDefaultOrder = (std::uint64_t{1} << 61) - 1;

inline MockGroup make_mock() { return MockGroup(kMockDefaultOrder); }
/// Tiny group for statistical experiments (distributions are enumerable).
inline MockGroup make_mock_tiny(std::uint64_t r = 1009) { return MockGroup(r); }

}  // namespace dlr::group
