// The shared algebraic core of the paper's Pi_ss (Section 4.1) and Pi_comm /
// HPSKE (Lemma 5.2): a secret-key encryption scheme over a group G' with
//
//   Gen:  sk = (s_1, ..., s_w)   uniform in Z_p^w
//   Enc:  (b_1, ..., b_w, m * prod_i b_i^{s_i})   with uniform b_i in G'
//   Dec:  c_0 / prod_i c_i^{s_i}
//
// Coordinate-wise multiplication of ciphertexts is a homomorphism:
//   Dec(c * c') = Dec(c) * Dec(c')   (Definition 5.1, part 1)
//
// The b_i are sampled *directly as group elements* -- never as g^rho for a
// known rho -- per the paper's "hiding discrete logs of random coins" remark:
// the secret memory must not contain the coins' discrete logarithms.
#pragma once

#include <algorithm>
#include <vector>

#include "schemes/spaces.hpp"
#include "service/parallel.hpp"

namespace dlr::schemes {

template <group::BilinearGroup GG, template <class> class Space>
class MaskedEnc {
 public:
  using Sp = Space<GG>;
  using Elem = typename Sp::Elem;
  using Scalar = typename GG::Scalar;

  struct SecretKey {
    std::vector<Scalar> s;
  };

  struct Ciphertext {
    std::vector<Elem> b;  // the "coins", public components
    Elem c0{};            // masked message

    bool operator==(const Ciphertext&) const = default;
  };

  MaskedEnc(GG gg, std::size_t width) : gg_(std::move(gg)), width_(width) {
    if (width_ == 0) throw std::invalid_argument("MaskedEnc: width must be positive");
  }

  [[nodiscard]] const GG& group() const { return gg_; }
  [[nodiscard]] std::size_t width() const { return width_; }

  [[nodiscard]] SecretKey gen(crypto::Rng& rng) const {
    SecretKey sk;
    sk.s.reserve(width_);
    for (std::size_t i = 0; i < width_; ++i) sk.s.push_back(gg_.sc_random(rng));
    return sk;
  }

  /// Encrypt with fresh uniform coins.
  [[nodiscard]] Ciphertext enc(const SecretKey& sk, const Elem& m, crypto::Rng& rng) const {
    std::vector<Elem> coins;
    coins.reserve(width_);
    for (std::size_t i = 0; i < width_; ++i) coins.push_back(Sp::random(gg_, rng));
    return enc_with_coins(sk, m, coins);
  }

  /// Encrypt with caller-supplied coins (used by tests and the fi/di reuse).
  [[nodiscard]] Ciphertext enc_with_coins(const SecretKey& sk, const Elem& m,
                                          std::vector<Elem> coins) const {
    check_key(sk);
    if (coins.size() != width_) throw std::invalid_argument("MaskedEnc: wrong coin count");
    const Elem mask = masked_product(coins, sk.s);
    return Ciphertext{std::move(coins), Sp::mul(gg_, m, mask)};
  }

  [[nodiscard]] Elem dec(const SecretKey& sk, const Ciphertext& ct) const {
    check_key(sk);
    check_ct(ct);
    const Elem mask = masked_product(ct.b, sk.s);
    return Sp::mul(gg_, ct.c0, Sp::inv(gg_, mask));
  }

  /// Coordinate-wise product: Dec(ct_mul(x, y)) = Dec(x) * Dec(y).
  [[nodiscard]] Ciphertext ct_mul(const Ciphertext& x, const Ciphertext& y) const {
    check_ct(x);
    check_ct(y);
    Ciphertext r;
    r.b.reserve(width_);
    for (std::size_t i = 0; i < width_; ++i) r.b.push_back(Sp::mul(gg_, x.b[i], y.b[i]));
    r.c0 = Sp::mul(gg_, x.c0, y.c0);
    return r;
  }

  /// Coordinate-wise inverse: Dec(ct_inv(x)) = Dec(x)^{-1}.
  [[nodiscard]] Ciphertext ct_inv(const Ciphertext& x) const {
    check_ct(x);
    Ciphertext r;
    r.b.reserve(width_);
    for (const auto& e : x.b) r.b.push_back(Sp::inv(gg_, e));
    r.c0 = Sp::inv(gg_, x.c0);
    return r;
  }

  /// Coordinate-wise power: Dec(ct_pow(x, k)) = Dec(x)^k.
  [[nodiscard]] Ciphertext ct_pow(const Ciphertext& x, const Scalar& k) const {
    check_ct(x);
    Ciphertext r;
    r.b.reserve(width_);
    for (const auto& e : x.b) r.b.push_back(Sp::pow(gg_, e, k));
    r.c0 = Sp::pow(gg_, x.c0, k);
    return r;
  }

  /// Coordinate-wise multi-exponentiation: prod_i cts[i]^{ks[i]}, i.e.
  /// Dec(ct_multi_pow(cts, ks)) = prod_i Dec(cts[i])^{ks[i]}. This is P2's
  /// whole job in the decryption/refresh protocols, done with one shared
  /// doubling chain per ciphertext coordinate.
  [[nodiscard]] Ciphertext ct_multi_pow(std::span<const Ciphertext> cts,
                                        std::span<const Scalar> ks) const {
    if (cts.size() != ks.size())
      throw std::invalid_argument("MaskedEnc::ct_multi_pow: size mismatch");
    for (const auto& ct : cts) check_ct(ct);
    Ciphertext r = ct_one();
    if (cts.empty()) return r;
    // Coordinates are independent and each writes a distinct slot of r, so
    // with DLR_PARALLEL set the width+1 doubling chains fan out over the pool.
    service::par_for(width_ + 1, [&](std::size_t j) {
      std::vector<Elem> column(cts.size());
      for (std::size_t i = 0; i < cts.size(); ++i)
        column[i] = (j < width_) ? cts[i].b[j] : cts[i].c0;
      Elem v = Sp::multi_pow(gg_, column, ks);
      if (j < width_) {
        r.b[j] = std::move(v);
      } else {
        r.c0 = std::move(v);
      }
    });
    return r;
  }

  /// Recode-once view of an exponent vector for many ct_multi_pow calls with
  /// the SAME scalars (a decryption batch applies one share vector to every
  /// request's rows). On native backends the wNAF recoding of ks runs once at
  /// prepare_key; results are bit-identical to ct_multi_pow(cts, ks).
  struct PreparedKey {
    typename Sp::Prepared prep;
    std::size_t count = 0;  // expected cts.size()
  };
  [[nodiscard]] PreparedKey prepare_key(std::span<const Scalar> ks) const {
    return PreparedKey{Sp::prepare_multi_pow(gg_, ks), ks.size()};
  }
  [[nodiscard]] Ciphertext ct_multi_pow_prepared(const PreparedKey& pk,
                                                 std::span<const Ciphertext> cts) const {
    if (cts.size() != pk.count)
      throw std::invalid_argument("MaskedEnc::ct_multi_pow_prepared: size mismatch");
    for (const auto& ct : cts) check_ct(ct);
    Ciphertext r = ct_one();
    if (cts.empty()) return r;
    service::par_for(width_ + 1, [&](std::size_t j) {
      std::vector<Elem> column(cts.size());
      for (std::size_t i = 0; i < cts.size(); ++i)
        column[i] = (j < width_) ? cts[i].b[j] : cts[i].c0;
      Elem v = Sp::multi_pow_prepared(gg_, pk.prep, column);
      if (j < width_) {
        r.b[j] = std::move(v);
      } else {
        r.c0 = std::move(v);
      }
    });
    return r;
  }

  /// Identity ciphertext (encrypts 1 with identity coins); the unit of ct_mul.
  [[nodiscard]] Ciphertext ct_one() const {
    Ciphertext r;
    r.b.assign(width_, Sp::id(gg_));
    r.c0 = Sp::id(gg_);
    return r;
  }

  /// Re-randomize by multiplying with a fresh encryption of 1.
  [[nodiscard]] Ciphertext rerandomize(const SecretKey& sk, const Ciphertext& ct,
                                       crypto::Rng& rng) const {
    return ct_mul(ct, enc(sk, Sp::id(gg_), rng));
  }

  // ---- serialization ----------------------------------------------------------
  void ser_sk(ByteWriter& w, const SecretKey& sk) const {
    for (const auto& s : sk.s) gg_.sc_ser(w, s);
  }
  [[nodiscard]] SecretKey deser_sk(ByteReader& r) const {
    SecretKey sk;
    sk.s.reserve(width_);
    for (std::size_t i = 0; i < width_; ++i) sk.s.push_back(gg_.sc_deser(r));
    return sk;
  }
  void ser_ct(ByteWriter& w, const Ciphertext& ct) const {
    for (const auto& e : ct.b) Sp::ser(gg_, w, e);
    Sp::ser(gg_, w, ct.c0);
  }
  [[nodiscard]] Ciphertext deser_ct(ByteReader& r) const {
    Ciphertext ct;
    ct.b.reserve(width_);
    for (std::size_t i = 0; i < width_; ++i) ct.b.push_back(Sp::deser(gg_, r));
    ct.c0 = Sp::deser(gg_, r);
    return ct;
  }
  [[nodiscard]] std::size_t sk_bytes() const { return width_ * gg_.sc_bytes(); }
  [[nodiscard]] std::size_t ct_bytes() const { return (width_ + 1) * Sp::bytes(gg_); }

 private:
  /// The mask prod_i b_i^{s_i}. With DLR_PARALLEL set and enough bases, the
  /// product splits into per-thread chunks (multi_pow distributes over
  /// concatenation) and the partials are multiplied back together.
  [[nodiscard]] Elem masked_product(std::span<const Elem> bs, std::span<const Scalar> ks) const {
    const int t = service::fanout_suppressed() ? 0 : service::parallel_threads();
    if (t <= 1 || bs.size() < 8) return Sp::multi_pow(gg_, bs, ks);
    const std::size_t chunks =
        std::min(static_cast<std::size_t>(t), bs.size() / 4);
    const std::size_t per = (bs.size() + chunks - 1) / chunks;
    std::vector<Elem> parts(chunks, Sp::id(gg_));
    service::par_for(chunks, [&](std::size_t c) {
      const std::size_t lo = c * per;
      const std::size_t hi = std::min(bs.size(), lo + per);
      if (lo < hi)
        parts[c] = Sp::multi_pow(gg_, bs.subspan(lo, hi - lo), ks.subspan(lo, hi - lo));
    });
    Elem acc = parts[0];
    for (std::size_t c = 1; c < parts.size(); ++c) acc = Sp::mul(gg_, acc, parts[c]);
    return acc;
  }

  void check_key(const SecretKey& sk) const {
    if (sk.s.size() != width_) throw std::invalid_argument("MaskedEnc: wrong key width");
  }
  void check_ct(const Ciphertext& ct) const {
    if (ct.b.size() != width_) throw std::invalid_argument("MaskedEnc: wrong ciphertext width");
  }

  GG gg_;
  std::size_t width_;
};

}  // namespace dlr::schemes
