#include "service/worker_pool.hpp"

#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace dlr::service {

namespace {
telemetry::Gauge& depth_gauge() {
  static telemetry::Gauge& g = telemetry::Registry::global().gauge("svc.queue_depth");
  return g;
}
}  // namespace

WorkerPool::WorkerPool(int workers, std::size_t queue_cap) : queue_cap_(queue_cap) {
  if (workers < 1) throw std::invalid_argument("WorkerPool: need at least one worker");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) threads_.emplace_back([this] { run(); });
}

bool WorkerPool::submit(std::function<void()> job) {
  {
    std::unique_lock lock(mu_);
    cv_nonfull_.wait(lock, [&] { return queue_.size() < queue_cap_ || stopping_; });
    if (stopping_) return false;
    queue_.push_back(std::move(job));
    depth_gauge().set(static_cast<double>(queue_.size()));
  }
  cv_nonempty_.notify_one();
  return true;
}

WorkerPool::Submit WorkerPool::try_submit(std::function<void()> job) {
  {
    std::unique_lock lock(mu_);
    if (stopping_) return Submit::Stopped;
    if (queue_.size() >= queue_cap_) return Submit::Full;
    queue_.push_back(std::move(job));
    depth_gauge().set(static_cast<double>(queue_.size()));
  }
  cv_nonempty_.notify_one();
  return Submit::Ok;
}

void WorkerPool::stop() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_nonempty_.notify_all();
  cv_nonfull_.notify_all();
  std::lock_guard jlock(join_mu_);  // serialize concurrent stop() callers
  for (auto& t : threads_)
    if (t.joinable()) t.join();
}

std::size_t WorkerPool::queued() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void WorkerPool::run() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_nonempty_.wait(lock, [&] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping && drained
      job = std::move(queue_.front());
      queue_.pop_front();
      depth_gauge().set(static_cast<double>(queue_.size()));
    }
    cv_nonfull_.notify_one();
    job();
  }
}

}  // namespace dlr::service
