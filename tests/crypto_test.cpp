// Known-answer and property tests for the crypto substrate: SHA-256,
// ChaCha20, the deterministic CSPRNG, and the Lamport one-time signature.
#include <gtest/gtest.h>

#include "crypto/chacha20.hpp"
#include "crypto/ots.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"

namespace dlr::crypto {
namespace {

Bytes str_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---- SHA-256 (FIPS 180-4 vectors) --------------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(str_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                str_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto d = h.finish();
  EXPECT_EQ(to_hex(d), "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const auto msg = str_bytes("the quick brown fox jumps over the lazy dog etc etc");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::span<const std::uint8_t>(msg.data(), split));
    h.update(std::span<const std::uint8_t>(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha256Test, TaggedHashDomainSeparates) {
  const auto msg = str_bytes("payload");
  EXPECT_NE(tagged_hash("tag-a", msg), tagged_hash("tag-b", msg));
}

TEST(Sha256Test, KdfLengthsAndDeterminism) {
  const auto seed = str_bytes("seed");
  for (std::size_t n : {0u, 1u, 31u, 32u, 33u, 100u}) {
    const auto k = kdf(seed, n, "t");
    EXPECT_EQ(k.size(), n);
  }
  EXPECT_EQ(kdf(seed, 64, "t"), kdf(seed, 64, "t"));
  EXPECT_NE(kdf(seed, 64, "t1"), kdf(seed, 64, "t2"));
  // Prefix property of counter-mode KDF.
  const auto k64 = kdf(seed, 64, "t");
  const auto k32 = kdf(seed, 32, "t");
  EXPECT_TRUE(std::equal(k32.begin(), k32.end(), k64.begin()));
}

// ---- ChaCha20 (RFC 8439 vectors) ------------------------------------------------

TEST(ChaCha20Test, Rfc8439BlockVector) {
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const Bytes nonce = from_hex("000000090000004a00000000");
  ChaCha20 cc{key, nonce};
  const auto block = cc.block(1);
  EXPECT_EQ(to_hex(Bytes(block.begin(), block.end())),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20Test, Rfc8439EncryptionVector) {
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const Bytes nonce = from_hex("000000000000004a00000000");
  ChaCha20 cc{key, nonce, 1};
  Bytes pt = str_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  cc.xor_stream(pt);
  EXPECT_EQ(to_hex(Bytes(pt.begin(), pt.begin() + 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
}

TEST(ChaCha20Test, XorStreamRoundTrip) {
  Rng rng(7);
  const auto key = rng.bytes(32);
  const auto nonce = rng.bytes(12);
  Bytes msg = rng.bytes(1000);
  const Bytes orig = msg;
  ChaCha20 enc{key, nonce};
  enc.xor_stream(msg);
  EXPECT_NE(msg, orig);
  ChaCha20 dec{key, nonce};
  dec.xor_stream(msg);
  EXPECT_EQ(msg, orig);
}

TEST(ChaCha20Test, BadKeyOrNonceSizeThrows) {
  EXPECT_THROW((ChaCha20{Bytes(31), Bytes(12)}), std::invalid_argument);
  EXPECT_THROW((ChaCha20{Bytes(32), Bytes(11)}), std::invalid_argument);
}

// ---- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  Rng a2(123);
  EXPECT_NE(a2.bytes(64), c.bytes(64));
}

TEST(RngTest, ForkIndependence) {
  Rng a(1);
  auto child1 = a.fork("x");
  Rng b(1);
  auto child2 = b.fork("x");
  EXPECT_EQ(child1.bytes(32), child2.bytes(32));
  Rng c(1);
  auto childy = c.fork("y");
  EXPECT_NE(child1.bytes(32), childy.bytes(32));
}

TEST(RngTest, ForkRatchetsParent) {
  Rng a(1);
  Rng b(1);
  (void)a.fork("x");
  (void)b.fork("x");
  EXPECT_EQ(a.bytes(32), b.bytes(32));  // same post-fork state
  Rng c(1);
  EXPECT_NE(a.u64(), c.u64());  // differs from never-forked
}

TEST(RngTest, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(9);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (int c : buckets) EXPECT_GT(c, 800);
  EXPECT_THROW((void)rng.below(0), std::invalid_argument);
}

TEST(RngTest, FillPartialBlocks) {
  Rng a(11), b(11);
  // Drawing 100 bytes at once vs in pieces yields the same stream.
  const auto big = a.bytes(100);
  Bytes pieces;
  for (std::size_t n : {1u, 7u, 64u, 28u}) {
    const auto p = b.bytes(n);
    pieces.insert(pieces.end(), p.begin(), p.end());
  }
  EXPECT_EQ(big, pieces);
}

// ---- Lamport OTS -----------------------------------------------------------------

TEST(LamportOtsTest, SignVerifyRoundTrip) {
  Rng rng(21);
  auto kp = LamportOts::keygen(rng);
  const auto msg = str_bytes("attack at dawn");
  const auto sig = LamportOts::sign(kp.sk, msg);
  EXPECT_TRUE(LamportOts::verify(kp.vk, msg, sig));
}

TEST(LamportOtsTest, WrongMessageRejected) {
  Rng rng(22);
  auto kp = LamportOts::keygen(rng);
  const auto sig = LamportOts::sign(kp.sk, str_bytes("m1"));
  EXPECT_FALSE(LamportOts::verify(kp.vk, str_bytes("m2"), sig));
}

TEST(LamportOtsTest, TamperedSignatureRejected) {
  Rng rng(23);
  auto kp = LamportOts::keygen(rng);
  const auto msg = str_bytes("msg");
  auto sig = LamportOts::sign(kp.sk, msg);
  sig.reveal[5][0] ^= 1;
  EXPECT_FALSE(LamportOts::verify(kp.vk, msg, sig));
}

TEST(LamportOtsTest, WrongKeyRejected) {
  Rng rng(24);
  auto kp1 = LamportOts::keygen(rng);
  auto kp2 = LamportOts::keygen(rng);
  const auto msg = str_bytes("msg");
  const auto sig = LamportOts::sign(kp1.sk, msg);
  EXPECT_FALSE(LamportOts::verify(kp2.vk, msg, sig));
}

TEST(LamportOtsTest, KeyReuseRefused) {
  Rng rng(25);
  auto kp = LamportOts::keygen(rng);
  (void)LamportOts::sign(kp.sk, str_bytes("first"));
  EXPECT_THROW((void)LamportOts::sign(kp.sk, str_bytes("second")), std::logic_error);
}

TEST(LamportOtsTest, SerializationRoundTrip) {
  Rng rng(26);
  auto kp = LamportOts::keygen(rng);
  const auto msg = str_bytes("serialize me");
  const auto sig = LamportOts::sign(kp.sk, msg);

  const auto vkb = LamportOts::serialize_vk(kp.vk);
  EXPECT_EQ(vkb.size(), LamportOts::vk_bytes());
  ByteReader r1(vkb);
  const auto vk2 = LamportOts::deserialize_vk(r1);
  EXPECT_EQ(vk2, kp.vk);

  const auto sigb = LamportOts::serialize_sig(sig);
  EXPECT_EQ(sigb.size(), LamportOts::sig_bytes());
  ByteReader r2(sigb);
  const auto sig2 = LamportOts::deserialize_sig(r2);
  EXPECT_TRUE(LamportOts::verify(vk2, msg, sig2));
}

// ---- bytes utils -------------------------------------------------------------------

TEST(BytesTest, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.blob(str_bytes("hello"));
  w.str("world");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.blob(), str_bytes("hello"));
  EXPECT_EQ(r.str(), "world");
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, ReaderUnderrunThrows) {
  const Bytes buf{1, 2};
  ByteReader r(buf);
  EXPECT_THROW((void)r.u32(), std::out_of_range);
}

TEST(BytesTest, ReaderBadLengthPrefixThrows) {
  ByteWriter w;
  w.u64(1'000'000);  // claims a million bytes follow
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.blob(), std::out_of_range);
}

TEST(BytesTest, HexRoundTrip) {
  const Bytes b{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(from_hex(to_hex(b)), b);
  EXPECT_THROW((void)from_hex("abc"), std::invalid_argument);
  EXPECT_THROW((void)from_hex("zz"), std::invalid_argument);
}

}  // namespace
}  // namespace dlr::crypto
