// Per-endpoint circuit breaker (closed / open / half-open), layered UNDER
// RetryPolicy: the retry loop asks the breaker for admission before every
// attempt, reports the attempt's outcome after, and fails fast while the
// breaker is open instead of burning its attempt budget against an endpoint
// that is known-bad.
//
// State machine:
//
//   Closed ----(failure_threshold consecutive failures)----> Open
//   Open ------(open_for elapsed)---------------------------> HalfOpen
//   HalfOpen --(one probe admitted; success)----------------> Closed
//   HalfOpen --(probe failure)------------------------------> Open (re-armed)
//
// In HalfOpen exactly one in-flight probe is admitted; concurrent callers
// are rejected as if open, so a recovering server sees a single request, not
// a thundering herd. try_acquire() returning Rejected carries the remaining
// open time -- callers surface it as a retry-after so schedules sleep past
// the cooldown instead of spinning on fast failures.
//
// Thread safety: all transitions run under one mutex; the hot path is a
// single lock/unlock pair with no syscalls. Time is steady_clock, injected
// via now() for tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace dlr::transport {

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    int failure_threshold = 5;              // consecutive failures -> Open
    std::chrono::milliseconds open_for{1000};  // cooldown before HalfOpen
  };

  enum class State : std::uint8_t { Closed = 0, Open = 1, HalfOpen = 2 };

  struct Admission {
    bool admitted = false;
    bool probe = false;  // admitted as the single half-open probe
    std::chrono::milliseconds retry_after{0};  // when rejected: time left open
  };

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(Options opt) : opt_(opt) {}

  /// Ask to send one request. When rejected, retry_after is the remaining
  /// cooldown (>= 1 ms) the caller should wait before asking again.
  [[nodiscard]] Admission try_acquire(Clock::time_point now = Clock::now()) {
    std::lock_guard lk(mu_);
    switch (state_) {
      case State::Closed:
        return {.admitted = true};
      case State::Open: {
        if (now - opened_at_ >= opt_.open_for) {
          state_ = State::HalfOpen;
          probe_in_flight_ = true;
          ++transitions_;
          return {.admitted = true, .probe = true};
        }
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            opt_.open_for - (now - opened_at_));
        return {.retry_after = std::max(left, std::chrono::milliseconds{1})};
      }
      case State::HalfOpen: {
        if (!probe_in_flight_) {
          probe_in_flight_ = true;
          return {.admitted = true, .probe = true};
        }
        // A probe is already out; reject concurrents for one cooldown-ish
        // beat so they don't pile onto a server that may still be sick.
        return {.retry_after = std::max(
                    std::chrono::duration_cast<std::chrono::milliseconds>(opt_.open_for / 4),
                    std::chrono::milliseconds{1})};
      }
    }
    return {.admitted = true};  // unreachable
  }

  /// Report the outcome of an admitted request. Overloaded/transport errors
  /// count as failures; typed non-retryable app errors should be reported as
  /// success (the endpoint answered -- it is not down).
  void on_success() {
    std::lock_guard lk(mu_);
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
    if (state_ != State::Closed) {
      state_ = State::Closed;
      ++transitions_;
      ++closes_;
    }
  }

  void on_failure(Clock::time_point now = Clock::now()) {
    std::lock_guard lk(mu_);
    probe_in_flight_ = false;
    if (state_ == State::HalfOpen) {  // probe failed: straight back to Open
      trip(now);
      return;
    }
    if (state_ == State::Open) return;  // already open (late failure report)
    if (++consecutive_failures_ >= opt_.failure_threshold) trip(now);
  }

  [[nodiscard]] State state() const {
    std::lock_guard lk(mu_);
    return state_;
  }
  [[nodiscard]] std::uint64_t opens() const {
    std::lock_guard lk(mu_);
    return opens_;
  }
  [[nodiscard]] std::uint64_t closes() const {
    std::lock_guard lk(mu_);
    return closes_;
  }

  [[nodiscard]] static const char* state_name(State s) {
    switch (s) {
      case State::Closed: return "closed";
      case State::Open: return "open";
      case State::HalfOpen: return "half-open";
    }
    return "?";
  }

 private:
  void trip(Clock::time_point now) {
    state_ = State::Open;
    opened_at_ = now;
    consecutive_failures_ = 0;
    ++transitions_;
    ++opens_;
  }

  Options opt_;
  mutable std::mutex mu_;
  State state_ = State::Closed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  Clock::time_point opened_at_{};
  std::uint64_t transitions_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t closes_ = 0;
};

}  // namespace dlr::transport
