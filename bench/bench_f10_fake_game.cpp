// F10 -- the Section 6 reduction, executed: D's fake game against the real
// game, measured on a tiny mock group where distributions are enumerable.
//
// Three measurements, mirroring the proof outline:
//   (i)  (pk, challenge, sk2) marginals coincide between real and fake games
//        (proof: "identical in aux and fake");
//   (ii) Phi's marginal is close between real and fake (proof: "statistically
//        close" -- in the fake game Phi is *uniform*, in the real game it is
//        msk * prod a^s, which is statistically close to uniform by the
//        leftover hash lemma);
//   (iii) with uniform T the challenge is independent of the encrypted
//        message (the adversary's advantage collapses to 0).
// Plus the operational check: every fake period is protocol-consistent
// (P2's formula reproduces c', which decrypts to the advice).
#include <cmath>

#include "analysis/fake_game.hpp"
#include "analysis/stats.hpp"
#include "bench_util.hpp"

int main() {
  using namespace dlr;
  using namespace dlr::bench;
  using namespace dlr::analysis;

  banner("F10: the Section 6 distinguisher's fake game vs the real game",
         "paper Section 6 proof outline");

  const std::uint64_t r = 101;
  const auto gg = group::make_mock_tiny(r);
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  const std::size_t trials = 3000;
  crypto::Rng rng(1010);

  EmpiricalDist real_s0, fake_s0, real_phi, fake_phi, chal_m0, chal_m1;
  std::size_t consistent = 0, total_resamples = 0;

  for (std::size_t i = 0; i < trials; ++i) {
    auto sys = schemes::DlrSystem<group::MockGroup>::create(gg, prm,
                                                            schemes::P1Mode::Plain, 90000 + i);
    real_s0.add(sys.p2().share().s[0]);
    real_phi.add(sys.p1().share().phi.v);

    FakeGame fake(gg, prm, sample_bddh(gg, true, rng));
    const auto p = fake.fake_period(rng);
    fake_s0.add(p.sk2.s[0]);
    fake_phi.add(p.sk1.phi.v);
    consistent += fake.period_consistent(p) ? 1 : 0;
    total_resamples += p.resamples;

    // (iii) uniform-T challenges for two fixed messages.
    FakeGame frand(gg, prm, sample_bddh(gg, false, rng));
    chal_m0.add(gg.dlog_gt(frand.challenge(gg.gt_pow(gg.gt_gen(), 3)).b));
    FakeGame frand2(gg, prm, sample_bddh(gg, false, rng));
    chal_m1.add(gg.dlog_gt(frand2.challenge(gg.gt_pow(gg.gt_gen(), 77)).b));
  }

  const double crit = chi_square_critical_99(r - 1);
  Table t({"measurement", "real game", "fake game", "SD(real, fake)", "verdict"});
  t.row({"chi2(sk2[0] vs uniform)", fmt(real_s0.chi_square_uniform(r), 1),
         fmt(fake_s0.chi_square_uniform(r), 1),
         fmt(real_s0.statistical_distance(fake_s0), 4),
         (real_s0.chi_square_uniform(r) < crit && fake_s0.chi_square_uniform(r) < crit)
             ? "identical (i)"
             : "MISMATCH"});
  t.row({"chi2(Phi vs uniform)", fmt(real_phi.chi_square_uniform(r), 1),
         fmt(fake_phi.chi_square_uniform(r), 1),
         fmt(real_phi.statistical_distance(fake_phi), 4),
         (real_phi.chi_square_uniform(r) < crit && fake_phi.chi_square_uniform(r) < crit)
             ? "stat. close (ii)"
             : "MISMATCH"});
  t.row({"challenge.B, m0 vs m1 (T uniform)", fmt(chal_m0.chi_square_uniform(r), 1),
         fmt(chal_m1.chi_square_uniform(r), 1),
         fmt(chal_m0.statistical_distance(chal_m1), 4),
         chal_m0.statistical_distance(chal_m1) < 0.2 ? "independent (iii)" : "MISMATCH"});
  t.print();

  std::printf("\nfake periods protocol-consistent: %zu/%zu; full-rank resamples: %zu\n",
              consistent, trials, total_resamples);
  std::printf(
      "(the SD floor for %zu samples over %llu outcomes is ~%.3f; values at that\n"
      "scale are sampling noise, exactly the proof's 'statistically close')\n",
      trials, static_cast<unsigned long long>(r),
      0.5 * std::sqrt(static_cast<double>(r) / trials));

  std::printf(
      "\nShape check: D simulates the challenger with a *uniform* sk1 and a\n"
      "constraint-solved sk2, and nothing observable changes -- yet with a\n"
      "random-T tuple the challenge carries zero information about m_b. An\n"
      "adversary beating the real game therefore decides BDDH: Theorem 4.1(1).\n");
  return consistent == trials ? 0 : 1;
}
