// Multi-tenant keystore (DESIGN.md §11): the segmented journal and its
// compaction crash matrix, consistent-hash shard placement, the
// budget-driven refresh scheduler, the per-key two-phase epoch machine, and
// the sharded service end-to-end -- routing with WrongShard redirects,
// crash-restart recovery of a whole shard, single-key compatibility with
// the PR 2-5 client, and a seeded chaos soak.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "crypto/sha256.hpp"
#include "group/mock_group.hpp"
#include "keystore/keystore.hpp"
#include "keystore/ks_client.hpp"
#include "keystore/ks_protocol.hpp"
#include "keystore/ks_server.hpp"
#include "keystore/scheduler.hpp"
#include "keystore/segment_journal.hpp"
#include "keystore/shard_map.hpp"
#include "service/admin.hpp"
#include "service/client.hpp"
#include "telemetry/export.hpp"
#include "transport/fault.hpp"
#include "transport/mux.hpp"

namespace dlr::keystore {
namespace {

using group::make_mock;
using group::MockGroup;
using Core = schemes::DlrCore<MockGroup>;

schemes::DlrParams mock_params() {
  const auto gg = make_mock();
  return schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

std::string make_state_dir() {
  std::string tmpl = ::testing::TempDir() + "dlr_ks_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) throw std::runtime_error("mkdtemp failed");
  return tmpl;
}

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---- segment journal ----------------------------------------------------------

TEST(SegmentJournalTest, LatestStateWinsAcrossReopenAndTombstonesDelete) {
  const auto dir = make_state_dir();
  const KeyId a{"acme", "mail"}, b{"acme", "web"}, c{"globex", "mail"};
  {
    SegmentJournal j(dir);
    j.append(a, bytes_of("a-v1"));
    j.append(b, bytes_of("b-v1"));
    j.append(a, bytes_of("a-v2"));
    j.append(c, bytes_of("c-v1"));
    j.tombstone(b);
    EXPECT_EQ(j.live_count(), 2u);
  }
  SegmentJournal j2(dir);
  auto live = j2.take_recovered();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live.at(a), bytes_of("a-v2"));
  EXPECT_EQ(live.at(c), bytes_of("c-v1"));
  EXPECT_EQ(live.count(b), 0u);
  EXPECT_GE(j2.recovery_stats().records, 5u);
}

TEST(SegmentJournalTest, RollsSegmentsAndCompactionPreservesTheLiveSet) {
  const auto dir = make_state_dir();
  SegmentJournal::Options opt;
  opt.segment_bytes = 64;  // every append or two rolls a segment
  opt.compact_min_segments = 4;
  SegmentJournal j(dir, opt);
  for (int i = 0; i < 40; ++i)
    j.append(KeyId{"t", "k" + std::to_string(i % 8)}, bytes_of("v" + std::to_string(i)));
  j.tombstone(KeyId{"t", "k0"});
  ASSERT_GT(j.segment_count(), 4u);
  EXPECT_TRUE(j.maybe_compact());
  EXPECT_EQ(j.compactions(), 1u);
  EXPECT_LE(j.segment_count(), 2u);
  EXPECT_EQ(j.live_count(), 7u);

  SegmentJournal j2(dir, opt);
  auto live = j2.take_recovered();
  ASSERT_EQ(live.size(), 7u);
  for (int k = 1; k < 8; ++k) {
    // Latest write to k is the last i with i % 8 == k.
    EXPECT_EQ(live.at(KeyId{"t", "k" + std::to_string(k)}),
              bytes_of("v" + std::to_string(32 + k)));
  }
}

TEST(SegmentJournalTest, TornTailIsTruncatedNotFatal) {
  const auto dir = make_state_dir();
  const KeyId a{"t", "a"}, b{"t", "b"};
  {
    SegmentJournal j(dir);
    j.append(a, bytes_of("a-v1"));
    j.append(b, bytes_of("b-v1"));
  }
  // Shear the final record mid-write, as a crash during append would.
  std::filesystem::path last;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (last.empty() || e.path().filename() > last.filename()) last = e.path();
  ASSERT_FALSE(last.empty());
  const auto sz = std::filesystem::file_size(last);
  ASSERT_GT(sz, 3u);
  std::filesystem::resize_file(last, sz - 3);

  SegmentJournal j2(dir);
  EXPECT_EQ(j2.recovery_stats().torn_tails, 1u);
  auto live = j2.take_recovered();
  ASSERT_EQ(live.size(), 1u);  // the record before the tear survives
  EXPECT_EQ(live.at(a), bytes_of("a-v1"));

  // The journal keeps working after the tear: the lost record is simply a
  // state the caller never got an ack for.
  j2.append(b, bytes_of("b-v2"));
  SegmentJournal j3(dir);
  EXPECT_EQ(j3.take_recovered().at(b), bytes_of("b-v2"));
}

TEST(SegmentJournalTest, CompactionCrashAtEveryStepLosesNothing) {
  // Satellite (c): simulate a crash AFTER each compaction step by throwing
  // from the hook, reopen from disk, and require the exact same live map
  // every time -- zero lost shares, zero resurrected tombstones.
  const std::vector<const char*> steps = {
      "compact.tmp_open", "compact.tmp_write", "compact.tmp_fsync",
      "compact.rename",   "compact.dir_fsync", "compact.unlink",
  };
  for (const char* crash_at : steps) {
    SCOPED_TRACE(crash_at);
    const auto dir = make_state_dir();
    SegmentJournal::Options opt;
    opt.segment_bytes = 64;
    opt.compact_min_segments = 2;

    std::unordered_map<KeyId, Bytes, KeyIdHash> expected;
    {
      SegmentJournal j(dir, opt);
      for (int i = 0; i < 30; ++i) {
        const KeyId id{"t" + std::to_string(i % 3), "k" + std::to_string(i % 5)};
        const Bytes v = bytes_of("v" + std::to_string(i));
        j.append(id, v);
        expected[id] = v;
      }
      const KeyId dead{"t0", "k0"};
      j.tombstone(dead);
      expected.erase(dead);

      j.set_crash_hook([&](const char* step) {
        if (std::string(step) == crash_at) throw std::runtime_error("injected crash");
      });
      EXPECT_THROW(j.compact(), std::runtime_error);
      // The object is dead after a mid-compaction crash; recovery is disk-only.
    }

    SegmentJournal j2(dir, opt);
    EXPECT_EQ(j2.recovery_stats().tmp_removed + 0u, j2.recovery_stats().tmp_removed)
        << "stats accessible";
    auto live = j2.take_recovered();
    EXPECT_EQ(live.size(), expected.size());
    for (const auto& [id, v] : expected) {
      ASSERT_EQ(live.count(id), 1u) << "lost " << id.display();
      EXPECT_EQ(live.at(id), v) << "wrong state for " << id.display();
    }
    // And the reopened journal can complete the interrupted compaction.
    j2.compact();
    SegmentJournal j3(dir, opt);
    EXPECT_EQ(j3.take_recovered().size(), expected.size());
  }
}

// ---- shard map ----------------------------------------------------------------

TEST(ShardMapTest, PlacementIsDeterministicAndCodecStable) {
  ShardMap m(7, {{0, "", 9001}, {1, "", 9002}, {2, "", 9003}});
  const ShardMap m2 = ShardMap::decode(m.encode());
  EXPECT_EQ(m, m2);
  EXPECT_EQ(m2.version(), 7u);
  for (int i = 0; i < 200; ++i) {
    const KeyId id{"tenant" + std::to_string(i % 11), "key" + std::to_string(i)};
    EXPECT_EQ(m.owner(id), m2.owner(id));
    EXPECT_LT(m.owner(id), 3u);
  }
  EXPECT_NE(m.shard(1), nullptr);
  EXPECT_EQ(m.shard(1)->port, 9002);
  EXPECT_EQ(m.shard(9), nullptr);
}

TEST(ShardMapTest, VirtualNodesBalanceTheLoad) {
  ShardMap m(1, {{0, "", 1}, {1, "", 2}});
  int count0 = 0;
  constexpr int kKeys = 10000;
  for (int i = 0; i < kKeys; ++i)
    if (m.owner(KeyId{"t" + std::to_string(i % 101), "k" + std::to_string(i)}) == 0)
      ++count0;
  EXPECT_GT(count0, kKeys * 30 / 100) << "shard 0 badly underloaded";
  EXPECT_LT(count0, kKeys * 70 / 100) << "shard 0 badly overloaded";
}

TEST(ShardMapTest, AddingAShardOnlyMovesKeysOntoIt) {
  ShardMap before(1, {{0, "", 1}, {1, "", 2}, {2, "", 3}});
  ShardMap after(2, {{0, "", 1}, {1, "", 2}, {2, "", 3}, {3, "", 4}});
  constexpr int kKeys = 4000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const KeyId id{"t" + std::to_string(i % 37), "k" + std::to_string(i)};
    const auto was = before.owner(id), is = after.owner(id);
    if (was != is) {
      ++moved;
      EXPECT_EQ(is, 3u) << "rebalance moved a key between OLD shards";
    }
  }
  // Expected move fraction is ~1/4; anything under half shows minimality.
  EXPECT_LT(moved, kKeys / 2);
  EXPECT_GT(moved, 0);
}

TEST(ShardMapTest, EmptyMapMeansUnsharded) {
  ShardMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.owner(KeyId{"any", "key"}), 0u);
  EXPECT_EQ(ShardMap::decode(m.encode()), m);
}

// ---- refresh scheduler --------------------------------------------------------

TEST(RefreshSchedulerTest, RefreshesMostSpentFirstWithoutDuplicates) {
  std::mutex mu;
  std::vector<KeyId> order;
  std::atomic<bool> first_sweep{true};
  RefreshScheduler::Options opt;
  opt.sweep_interval = std::chrono::hours(1);  // only manual sweeps
  opt.max_concurrent = 1;                      // serialize to observe ordering
  RefreshScheduler sched(
      [&]() -> std::vector<RefreshScheduler::Candidate> {
        if (!first_sweep.exchange(false)) return {};
        return {{KeyId{"t", "low"}, 0.55},
                {KeyId{"t", "high"}, 0.95},
                {KeyId{"t", "mid"}, 0.70},
                {KeyId{"t", "high"}, 0.95}};  // duplicate: must run once
      },
      [&](const KeyId& id) {
        std::lock_guard lk(mu);
        order.push_back(id);
        return true;
      },
      opt);
  sched.start();
  sched.sweep_now();
  ASSERT_TRUE(sched.wait_idle(std::chrono::milliseconds(5000)));
  sched.stop();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].key, "high");
  EXPECT_EQ(order[1].key, "mid");
  EXPECT_EQ(order[2].key, "low");
  EXPECT_EQ(sched.refreshes(), 3u);
  EXPECT_EQ(sched.failures(), 0u);
}

TEST(RefreshSchedulerTest, ConcurrentRefreshesAreBounded) {
  std::mutex mu;
  std::condition_variable cv;
  int running = 0, peak = 0, done = 0;
  std::atomic<bool> first_sweep{true};
  RefreshScheduler::Options opt;
  opt.sweep_interval = std::chrono::hours(1);
  opt.max_concurrent = 2;
  RefreshScheduler sched(
      [&]() -> std::vector<RefreshScheduler::Candidate> {
        if (!first_sweep.exchange(false)) return {};
        std::vector<RefreshScheduler::Candidate> c;
        for (int i = 0; i < 6; ++i) c.push_back({KeyId{"t", "k" + std::to_string(i)}, 1.0});
        return c;
      },
      [&](const KeyId&) {
        std::unique_lock lk(mu);
        peak = std::max(peak, ++running);
        cv.wait_for(lk, std::chrono::milliseconds(20));
        --running;
        ++done;
        cv.notify_all();
        return true;
      },
      opt);
  sched.start();
  sched.sweep_now();
  ASSERT_TRUE(sched.wait_idle(std::chrono::milliseconds(10000)));
  sched.stop();
  EXPECT_EQ(done, 6);
  EXPECT_LE(peak, 2) << "max_concurrent violated";
  EXPECT_GE(peak, 1);
}

TEST(RefreshSchedulerTest, FailedKeyRequalifiesOnTheNextSweep) {
  std::atomic<int> attempts{0};
  RefreshScheduler::Options opt;
  opt.sweep_interval = std::chrono::hours(1);
  opt.max_concurrent = 1;
  RefreshScheduler sched(
      [&]() -> std::vector<RefreshScheduler::Candidate> {
        return attempts.load() < 2
                   ? std::vector<RefreshScheduler::Candidate>{{KeyId{"t", "k"}, 0.9}}
                   : std::vector<RefreshScheduler::Candidate>{};
      },
      [&](const KeyId&) { return attempts.fetch_add(1) >= 1; },  // fail once
      opt);
  sched.start();
  sched.sweep_now();
  ASSERT_TRUE(sched.wait_idle(std::chrono::milliseconds(5000)));
  sched.sweep_now();  // key is no longer busy: re-enqueued and succeeds
  ASSERT_TRUE(sched.wait_idle(std::chrono::milliseconds(5000)));
  sched.stop();
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(sched.refreshes(), 1u);
  EXPECT_EQ(sched.failures(), 1u);
}

// ---- keystore (per-key epoch machines) ----------------------------------------

/// A keystore plus matching P1 halves, driving the wire-free protocol.
struct StoreRig {
  MockGroup gg = make_mock();
  schemes::DlrParams prm = mock_params();
  std::optional<KeyStore<MockGroup>> store;
  std::unordered_map<KeyId, Core::KeyGenResult, KeyIdHash> kgs;
  std::unordered_map<KeyId, std::optional<schemes::DlrParty1<MockGroup>>, KeyIdHash> p1s;
  std::uint64_t seed;

  explicit StoreRig(std::uint64_t seed_, typename KeyStore<MockGroup>::Options opt = {})
      : seed(seed_) {
    store.emplace(gg, prm, crypto::Rng(seed), std::move(opt));
  }

  void add(const KeyId& id) {
    crypto::Rng rng(seed + key_hash(id));
    auto kg = Core::gen(gg, prm, rng);
    store->put(id, kg.sk2);
    auto& p1 = p1s[id];
    p1.emplace(gg, prm, kg.pk, kg.sk1, schemes::P1Mode::Plain,
               crypto::Rng(seed + key_hash(id) + 1));
    p1->prepare_period();
    kgs.emplace(id, std::move(kg));
  }

  [[nodiscard]] bool roundtrip(const KeyId& id, std::uint64_t epoch, crypto::Rng& rng) {
    auto& p1 = *p1s.at(id);
    const auto m = gg.gt_random(rng);
    const auto c = Core::enc(gg, kgs.at(id).pk, m, rng);
    const Bytes r1 = p1.dec_round1(c, rng);
    const auto sigma = p1.period_sigma_gt();
    const auto out = store->dec(id, epoch, r1);
    return gg.gt_eq(p1.dec_finish_with(sigma, out.reply), m);
  }

  void refresh(const KeyId& id, std::uint64_t epoch) {
    auto& p1 = *p1s.at(id);
    const Bytes r1 = p1.ref_round1();
    const Bytes reply = store->ref_prepare(id, epoch, r1);
    store->ref_commit(id, epoch, crypto::digest_to_bytes(crypto::Sha256::hash(r1)));
    p1.ref_finish(reply);
    p1.prepare_period();
  }
};

TEST(KeyStoreTest, IndependentPerKeyEpochMachines) {
  StoreRig rig(100);
  const KeyId a{"acme", "mail"}, b{"acme", "web"}, c{"globex", "db"};
  rig.add(a);
  rig.add(b);
  rig.add(c);
  EXPECT_EQ(rig.store->size(), 3u);

  crypto::Rng rng(1);
  EXPECT_TRUE(rig.roundtrip(a, 0, rng));
  EXPECT_TRUE(rig.roundtrip(b, 0, rng));

  rig.refresh(a, 0);  // only a moves
  EXPECT_EQ(rig.store->epoch_of(a), 1u);
  EXPECT_EQ(rig.store->epoch_of(b), 0u);
  EXPECT_TRUE(rig.roundtrip(a, 1, rng));
  EXPECT_TRUE(rig.roundtrip(b, 0, rng));
  EXPECT_TRUE(rig.roundtrip(c, 0, rng));

  // Stale epochs are typed, retryable, and name the server epoch.
  try {
    (void)rig.store->dec(a, 0, Bytes{1});
    FAIL() << "stale epoch accepted";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), service::ServiceErrc::StaleEpoch);
    EXPECT_TRUE(e.retryable());
    EXPECT_EQ(e.server_epoch(), 1u);
  }
  // Unknown keys are typed and NOT retryable.
  try {
    (void)rig.store->dec(KeyId{"nope", "nope"}, 0, Bytes{1});
    FAIL() << "unknown key accepted";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), service::ServiceErrc::UnknownKey);
    EXPECT_FALSE(e.retryable());
  }
}

TEST(KeyStoreTest, HelloVerdictTablePerKey) {
  StoreRig rig(200);
  const KeyId id{"acme", "mail"};
  rig.add(id);
  auto& p1 = *rig.p1s.at(id);

  // Prepared but never committed -> hello(pending@0) vs server@0 = Rollback,
  // and the rolled-back digest cannot be resurrected by a stray prepare.
  const Bytes r1 = p1.ref_round1();
  const Bytes digest = crypto::digest_to_bytes(crypto::Sha256::hash(r1));
  (void)rig.store->ref_prepare(id, 0, r1);
  EXPECT_TRUE(rig.store->has_pending(id));
  service::HelloMsg h;
  h.epoch = 0;
  h.has_pending = true;
  h.pending_epoch = 0;
  h.pending_digest = digest;
  auto ok = rig.store->hello(id, h);
  EXPECT_EQ(ok.disposition, service::RefDisposition::Rollback);
  EXPECT_FALSE(rig.store->has_pending(id));
  EXPECT_THROW((void)rig.store->ref_prepare(id, 0, r1), service::ServiceError);
  p1.end_period();
  p1.prepare_period();  // client rolls back too

  // Prepared AND committed -> hello(pending@0) vs server@1 = Commit.
  const Bytes r1b = p1.ref_round1();
  const Bytes digestb = crypto::digest_to_bytes(crypto::Sha256::hash(r1b));
  const Bytes reply = rig.store->ref_prepare(id, 0, r1b);
  rig.store->ref_commit(id, 0, digestb);
  h.pending_digest = digestb;
  ok = rig.store->hello(id, h);
  EXPECT_EQ(ok.disposition, service::RefDisposition::Commit);
  EXPECT_EQ(ok.server_epoch, 1u);
  p1.ref_finish(reply);
  p1.prepare_period();

  // Matching epochs, no pending -> None. Diverged -> epoch fork, not a lie.
  h.has_pending = false;
  h.epoch = 1;
  EXPECT_EQ(rig.store->hello(id, h).disposition, service::RefDisposition::None);
  h.epoch = 5;
  EXPECT_THROW((void)rig.store->hello(id, h), service::ServiceError);

  crypto::Rng rng(3);
  EXPECT_TRUE(rig.roundtrip(id, 1, rng));
}

TEST(KeyStoreTest, BudgetAccountingFeedsCandidatesAndResetsOnCommit) {
  typename KeyStore<MockGroup>::Options opt;
  opt.budget_bits = 4;
  opt.leak_per_dec_bits = 1;
  opt.refresh_threshold = 0.5;
  StoreRig rig(300, opt);
  const KeyId id{"acme", "mail"};
  rig.add(id);

  crypto::Rng rng(4);
  EXPECT_TRUE(rig.roundtrip(id, 0, rng));
  EXPECT_TRUE(rig.store->candidates().empty()) << "1/4 spent is below threshold";
  EXPECT_DOUBLE_EQ(rig.store->spent_frac(id), 0.25);

  EXPECT_TRUE(rig.roundtrip(id, 0, rng));
  const auto cands = rig.store->candidates();
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].id, id);
  EXPECT_DOUBLE_EQ(cands[0].spent_frac, 0.5);

  rig.refresh(id, 0);
  EXPECT_DOUBLE_EQ(rig.store->spent_frac(id), 0.0) << "commit must start a fresh period";
  EXPECT_TRUE(rig.store->candidates().empty());
}

TEST(KeyStoreTest, CrashRecoveryRestoresEveryKeyEpochAndPending) {
  const auto dir = make_state_dir();
  constexpr int kKeys = 12;
  Bytes digest_before;
  std::optional<StoreRig> rig;
  {
    typename KeyStore<MockGroup>::Options opt;
    opt.state_dir = dir;
    opt.journal.segment_bytes = 1024;  // force several segments
    rig.emplace(400, opt);
    for (int i = 0; i < kKeys; ++i)
      rig->add(KeyId{"t" + std::to_string(i % 3), "k" + std::to_string(i)});
    // A mixed fleet: some keys refreshed once, one twice, one mid-2PC.
    rig->refresh(KeyId{"t0", "k0"}, 0);
    rig->refresh(KeyId{"t1", "k1"}, 0);
    rig->refresh(KeyId{"t1", "k1"}, 1);
    (void)rig->store->ref_prepare(KeyId{"t2", "k2"}, 0,
                                  rig->p1s.at(KeyId{"t2", "k2"})->ref_round1());
    digest_before = rig->store->digest_all();
    rig->store.reset();  // "crash": no clean shutdown beyond journal appends
  }

  typename KeyStore<MockGroup>::Options opt;
  opt.state_dir = dir;
  // Decoy rng: recovery must come from the journal, not construction args.
  KeyStore<MockGroup> recovered(rig->gg, rig->prm, crypto::Rng(999999), opt);
  EXPECT_EQ(recovered.size(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(recovered.digest_all(), digest_before);
  EXPECT_EQ(recovered.epoch_of(KeyId{"t0", "k0"}), 1u);
  EXPECT_EQ(recovered.epoch_of(KeyId{"t1", "k1"}), 2u);
  EXPECT_EQ(recovered.epoch_of(KeyId{"t0", "k3"}), 0u);
  EXPECT_TRUE(recovered.has_pending(KeyId{"t2", "k2"}))
      << "mid-2PC prepare must survive the crash";

  // The recovered store still decrypts (share bytes, not just bookkeeping).
  crypto::Rng rng(5);
  const KeyId id{"t0", "k3"};
  auto& p1 = *rig->p1s.at(id);
  const auto m = rig->gg.gt_random(rng);
  const auto c = Core::enc(rig->gg, rig->kgs.at(id).pk, m, rng);
  const Bytes r1 = p1.dec_round1(c, rng);
  const auto sigma = p1.period_sigma_gt();
  const auto out = recovered.dec(id, 0, r1);
  EXPECT_TRUE(rig->gg.gt_eq(p1.dec_finish_with(sigma, out.reply), m));
}

// ---- sharded service end-to-end -----------------------------------------------

/// Two KsServer shards + a KsFleet, with per-key keygens.
struct TwoShards {
  MockGroup gg = make_mock();
  schemes::DlrParams prm = mock_params();
  std::unique_ptr<KsServer<MockGroup>> s0, s1;
  std::optional<KsFleet<MockGroup>> fleet;
  std::unordered_map<KeyId, Core::KeyGenResult, KeyIdHash> kgs;
  std::uint64_t seed;

  explicit TwoShards(std::uint64_t seed_, typename KsServer<MockGroup>::Options o0 = {},
                     typename KsServer<MockGroup>::Options o1 = {},
                     typename KsFleet<MockGroup>::Options fo = {})
      : seed(seed_) {
    o0.shard_id = 0;
    o1.shard_id = 1;
    s0 = std::make_unique<KsServer<MockGroup>>(gg, prm, crypto::Rng(seed), o0);
    s1 = std::make_unique<KsServer<MockGroup>>(gg, prm, crypto::Rng(seed + 1), o1);
    s0->start();
    s1->start();
    install_map(1);
    fleet.emplace(gg, prm, crypto::Rng(seed + 2), s0->port(), std::move(fo));
  }

  void install_map(std::uint64_t version) {
    const ShardMap m(version, {{0, "", s0->port()}, {1, "", s1->port()}});
    s0->set_shard_map(m);
    s1->set_shard_map(m);
  }

  /// Keygen + register the P1 half locally + provision the P2 half through
  /// the fleet's routed ks.put.
  void add(const KeyId& id) {
    crypto::Rng rng(seed + key_hash(id));
    auto kg = Core::gen(gg, prm, rng);
    fleet->add_key(id, kg.pk, kg.sk1, schemes::P1Mode::Plain);
    fleet->provision(id, kg.sk2);
    kgs.emplace(id, std::move(kg));
  }

  [[nodiscard]] bool roundtrip(const KeyId& id, crypto::Rng& rng) {
    const auto m = gg.gt_random(rng);
    const auto c = Core::enc(gg, kgs.at(id).pk, m, rng);
    return gg.gt_eq(fleet->decrypt(id, c), m);
  }

  ~TwoShards() {
    if (fleet) fleet->close();
    if (s0) s0->stop();
    if (s1) s1->stop();
  }
};

std::vector<KeyId> test_keys(int n) {
  std::vector<KeyId> out;
  const char* tenants[] = {"acme", "globex", "initech"};
  for (int i = 0; i < n; ++i)
    out.push_back({tenants[i % 3], "key" + std::to_string(i)});
  return out;
}

TEST(KsServiceTest, TwoShardFleetDecryptsProvisionsAndRefreshes) {
  TwoShards svc(7100);
  const auto keys = test_keys(8);
  for (const auto& id : keys) svc.add(id);

  // The installed map must actually split the keys (else the test is vacuous).
  EXPECT_GT(svc.s0->store().size(), 0u);
  EXPECT_GT(svc.s1->store().size(), 0u);
  EXPECT_EQ(svc.s0->store().size() + svc.s1->store().size(), keys.size());
  // The fleet started with an empty map: provisioning keys owned by shard 1
  // through the shard-0 bootstrap must have triggered at least one
  // WrongShard -> ks.map refetch -> re-route cycle.
  EXPECT_GE(svc.fleet->map_refetches(), 1u);
  EXPECT_EQ(svc.fleet->map().version(), 1u);

  crypto::Rng rng(6);
  for (const auto& id : keys) EXPECT_TRUE(svc.roundtrip(id, rng));

  svc.fleet->refresh_key(keys[0]);
  svc.fleet->refresh_key(keys[1]);
  EXPECT_EQ(svc.fleet->epoch_of(keys[0]), 1u);
  EXPECT_EQ(svc.s0->store().contains(keys[0])
                ? svc.s0->store().epoch_of(keys[0])
                : svc.s1->store().epoch_of(keys[0]),
            1u);
  for (const auto& id : keys) EXPECT_TRUE(svc.roundtrip(id, rng));
}

TEST(KsServiceTest, StaleMapGetsWrongShardThenRefetchesAndReroutes) {
  TwoShards svc(7200);
  const auto keys = test_keys(6);
  for (const auto& id : keys) svc.add(id);

  // Find a key shard 1 owns, then poison the fleet with a stale single-shard
  // map claiming shard 0 owns everything. The poison must change OWNERSHIP,
  // not just addresses: the fleet caches one mux per shard id, so a map that
  // keeps both shard ids would keep routing over the already-connected (and
  // correct) shard-1 mux and never hit the redirect path.
  svc.install_map(2);
  const ShardMap real = svc.s0->shard_map();
  std::optional<KeyId> on1;
  for (const auto& id : keys)
    if (real.owner(id) == 1) on1 = id;
  ASSERT_TRUE(on1.has_value());
  svc.fleet->set_map(ShardMap(1, {{0, "", svc.s0->port()}}));

  const auto before = svc.fleet->map_refetches();
  crypto::Rng rng(7);
  EXPECT_TRUE(svc.roundtrip(*on1, rng)) << "redirect failed to reroute";
  EXPECT_GT(svc.fleet->map_refetches(), before);
  EXPECT_EQ(svc.fleet->map().version(), 2u) << "fleet failed to adopt the server map";
}

TEST(KsServiceTest, BackgroundSchedulerHoldsEveryKeyBelowItsBudget) {
  // Server charges 1 bit per decryption against a 6-bit budget; the fleet
  // scheduler refreshes at 50%. Hammer decryptions across keys and require
  // that no key ever reaches its budget -- the scheduler, not the client
  // loop, is what keeps the fleet inside the continual-leakage envelope.
  typename KsServer<MockGroup>::Options so;
  so.store.budget_bits = 6;
  so.store.leak_per_dec_bits = 1;
  so.store.refresh_threshold = 0.5;
  typename KsFleet<MockGroup>::Options fo;
  fo.refresh_threshold = 0.5;
  fo.scheduler.sweep_interval = std::chrono::milliseconds(5);
  fo.scheduler.max_concurrent = 2;
  TwoShards svc(7300, so, so, fo);
  const auto keys = test_keys(4);
  for (const auto& id : keys) svc.add(id);
  svc.fleet->start_scheduler();

  crypto::Rng rng(8);
  for (int i = 0; i < 60; ++i) {
    const auto& id = keys[i % keys.size()];
    ASSERT_TRUE(svc.roundtrip(id, rng));
    // The piggybacked accounting mirror is what the scheduler sweeps.
    ASSERT_LT(svc.fleet->spent_frac(id), 1.0)
        << id.display() << " exhausted its leakage budget";
    // Pace the hammer at the sweep cadence: each key gains 1 bit per
    // keys.size()*2ms, so crossing the 50% threshold leaves the scheduler
    // several sweep intervals before the budget line.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  svc.fleet->stop_scheduler();
  EXPECT_GT(svc.fleet->scheduler()->refreshes(), 0u)
      << "budget pressure never triggered a background refresh";
  std::uint64_t total_epochs = 0;
  for (const auto& id : keys) total_epochs += svc.fleet->epoch_of(id);
  EXPECT_GT(total_epochs, 0u);
  for (const auto& id : keys) EXPECT_TRUE(svc.roundtrip(id, rng));
}

TEST(KsServiceTest, ShardCrashRestartRecoversAllKeysFromSegmentedJournals) {
  const auto dir0 = make_state_dir();
  typename KsServer<MockGroup>::Options so;
  so.store.state_dir = dir0;
  so.store.journal.segment_bytes = 4096;
  TwoShards svc(7400, so);
  const auto keys = test_keys(10);
  for (const auto& id : keys) svc.add(id);
  svc.fleet->refresh_key(keys[0]);
  svc.fleet->refresh_key(keys[3]);

  crypto::Rng rng(9);
  for (const auto& id : keys) ASSERT_TRUE(svc.roundtrip(id, rng));

  const auto n0 = svc.s0->store().size();
  ASSERT_GT(n0, 0u);
  const Bytes digest = svc.s0->store().digest_all();

  // Crash shard 0 (destroy the process object) and restart from its journal
  // directory; the seed rng differs, so state can only come from disk.
  svc.s0->stop();
  svc.s0.reset();
  typename KsServer<MockGroup>::Options so2;
  so2.shard_id = 0;
  so2.store.state_dir = dir0;
  svc.s0 = std::make_unique<KsServer<MockGroup>>(svc.gg, svc.prm, crypto::Rng(424243), so2);
  svc.s0->start();

  EXPECT_EQ(svc.s0->store().size(), n0) << "restart lost keys";
  EXPECT_EQ(svc.s0->store().digest_all(), digest)
      << "restart changed a share or an epoch";

  // The restarted shard listens on a new port: publish a v2 map and let the
  // fleet rediscover it through its normal retry path (the old connection
  // fails, the map refetch on shard 1 serves the new address).
  svc.install_map(2);
  svc.fleet->fetch_map(svc.s1->port());
  for (const auto& id : keys) EXPECT_TRUE(svc.roundtrip(id, rng));
}

/// Conn wrapper that severs the connection exactly once, at the first
/// outbound frame carrying `label`. `forward` picks which half of the 2PC
/// window breaks: true forwards the frame first (the request reaches the
/// server, its ACK is lost), false drops it (the request never arrives).
class SeverAtLabel final : public transport::Conn {
 public:
  SeverAtLabel(std::shared_ptr<transport::Conn> under, std::string label, bool forward,
               std::shared_ptr<std::atomic<bool>> fired)
      : under_(std::move(under)),
        label_(std::move(label)),
        forward_(forward),
        fired_(std::move(fired)) {}

  void send(const transport::Frame& f) override {
    if (f.type == transport::FrameType::Data && f.label == label_ &&
        !fired_->exchange(true)) {
      if (forward_) under_->send(f);
      throw transport::TransportError(transport::Errc::ConnectionClosed,
                                      "injected sever at " + label_);
    }
    under_->send(f);
  }
  transport::Frame recv(std::optional<transport::Millis> timeout) override {
    return under_->recv(timeout);
  }
  using transport::Conn::recv;
  [[nodiscard]] const transport::TransportOptions& options() const override {
    return under_->options();
  }
  void shutdown() noexcept override { under_->shutdown(); }

 private:
  std::shared_ptr<transport::Conn> under_;
  std::string label_;
  bool forward_;
  std::shared_ptr<std::atomic<bool>> fired_;
};

/// The REVIEW.md regression: a refresh interrupted between ks.ref.ok and
/// ks.ref.commit.ok must reconcile over ks.hello on the next contact --
/// forward=true is the commit-ACK-lost case (hello verdict: Commit),
/// forward=false the commit-lost case (hello verdict: Rollback, then a
/// fresh refresh). Before the pending_flag fix both wedged the key forever.
void run_severed_commit_recovery(std::uint64_t seed, bool forward) {
  auto fired = std::make_shared<std::atomic<bool>>(false);
  typename KsFleet<MockGroup>::Options fo;
  fo.request_timeout = transport::Millis{1000};
  fo.retry.base = transport::Millis{2};
  fo.retry.cap = transport::Millis{20};
  fo.conn_wrapper = [fired, forward](std::shared_ptr<transport::FramedConn> fc)
      -> std::shared_ptr<transport::Conn> {
    return std::make_shared<SeverAtLabel>(std::move(fc), kKsRefCommit, forward, fired);
  };
  TwoShards svc(seed, {}, {}, fo);
  const auto keys = test_keys(2);
  for (const auto& id : keys) svc.add(id);

  svc.fleet->refresh_key(keys[0]);  // must recover, not throw Draining forever
  EXPECT_TRUE(fired->load()) << "the sever never triggered -- test is vacuous";
  EXPECT_EQ(svc.fleet->epoch_of(keys[0]), 1u);
  const auto server_epoch = svc.s0->store().contains(keys[0])
                                ? svc.s0->store().epoch_of(keys[0])
                                : svc.s1->store().epoch_of(keys[0]);
  EXPECT_EQ(server_epoch, 1u) << "client and server epochs diverged";

  // The key keeps serving at the reconciled epoch, and so does its neighbor.
  crypto::Rng rng(seed + 7);
  EXPECT_TRUE(svc.roundtrip(keys[0], rng));
  EXPECT_TRUE(svc.roundtrip(keys[1], rng));
}

TEST(KsServiceTest, CommitAckLostRecoversViaHello) {
  run_severed_commit_recovery(8000, /*forward=*/true);
}

TEST(KsServiceTest, CommitLostRollsBackViaHelloThenRefreshes) {
  run_severed_commit_recovery(8050, /*forward=*/false);
}

TEST(KeyStoreTest, RemoveStaysRemovedAfterRecoveryDespiteConcurrentMutations) {
  // remove() vs in-flight prepares/hellos that already hold the entry: the
  // tombstone must win recovery -- no resurrected key, no share back on disk.
  const auto dir = make_state_dir();
  typename KeyStore<MockGroup>::Options opt;
  opt.state_dir = dir;
  StoreRig rig(8100, opt);
  const KeyId victim{"acme", "doomed"}, keeper{"acme", "kept"};
  rig.add(victim);
  rig.add(keeper);

  auto& p1 = *rig.p1s.at(victim);
  std::thread mutator([&] {
    // Hammer persisting mutations on the victim; after remove() lands they
    // must fail typed (UnknownKey) rather than journal a newer record.
    for (int i = 0; i < 50; ++i) {
      try {
        const Bytes r1 = p1.ref_round1();
        (void)rig.store->ref_prepare(victim, 0, r1);
        service::HelloMsg h;
        h.epoch = 0;
        h.has_pending = true;
        h.pending_epoch = 0;
        h.pending_digest = crypto::digest_to_bytes(crypto::Sha256::hash(r1));
        (void)rig.store->hello(victim, h);  // rolls the prepare back
        p1.end_period();
        p1.prepare_period();
      } catch (const service::ServiceError& e) {
        EXPECT_EQ(e.code(), service::ServiceErrc::UnknownKey);
        break;
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  rig.store->remove(victim);
  mutator.join();
  EXPECT_FALSE(rig.store->contains(victim));

  rig.store.reset();  // crash
  KeyStore<MockGroup> recovered(rig.gg, rig.prm, crypto::Rng(8101), opt);
  EXPECT_FALSE(recovered.contains(victim)) << "tombstoned key resurrected by recovery";
  EXPECT_TRUE(recovered.contains(keeper));
}

TEST(KeyStoreTest, RolledBackDigestSurvivesRestart) {
  // The no-resurrect guarantee is journaled: after a rollback verdict and a
  // crash, a delayed duplicate of the rolled-back prepare is still refused.
  const auto dir = make_state_dir();
  typename KeyStore<MockGroup>::Options opt;
  opt.state_dir = dir;
  StoreRig rig(8200, opt);
  const KeyId id{"acme", "mail"};
  rig.add(id);

  const Bytes r1 = rig.p1s.at(id)->ref_round1();
  (void)rig.store->ref_prepare(id, 0, r1);
  service::HelloMsg h;
  h.epoch = 0;
  h.has_pending = true;
  h.pending_epoch = 0;
  h.pending_digest = crypto::digest_to_bytes(crypto::Sha256::hash(r1));
  EXPECT_EQ(rig.store->hello(id, h).disposition, service::RefDisposition::Rollback);

  rig.store.reset();  // crash
  KeyStore<MockGroup> recovered(rig.gg, rig.prm, crypto::Rng(8201), opt);
  try {
    (void)recovered.ref_prepare(id, 0, r1);
    FAIL() << "stray prepare resurrected a rolled-back refresh after restart";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), service::ServiceErrc::StaleEpoch);
  }
}

TEST(KsServiceTest, OldSingleKeyClientSpeaksToAKsServerUnchanged) {
  // Satellite of the tentpole: single-key mode is a 1-key store. A PR 2-5
  // DecryptionClient (svc.* labels, raw reply bodies, hello reconciliation)
  // works against a KsServer holding its share under default_key_id().
  MockGroup gg = make_mock();
  const auto prm = mock_params();
  crypto::Rng rng(7500);
  auto kg = Core::gen(gg, prm, rng);

  typename KsServer<MockGroup>::Options so;
  KsServer<MockGroup> server(gg, prm, crypto::Rng(7501), so);
  server.store().put(default_key_id(), kg.sk2);
  server.start();

  auto p1 = std::make_shared<service::P1Runtime<MockGroup>>(
      gg, prm, kg.pk, kg.sk1, schemes::P1Mode::Plain, crypto::Rng(7502));
  service::DecryptionClient<MockGroup> client(p1, server.port());

  for (int round = 0; round < 2; ++round) {
    const auto m = gg.gt_random(rng);
    const auto c = Core::enc(gg, kg.pk, m, rng);
    EXPECT_TRUE(gg.gt_eq(client.decrypt(c), m));
    client.refresh();
    EXPECT_EQ(client.epoch(), static_cast<std::uint64_t>(round + 1));
    EXPECT_EQ(server.store().epoch_of(default_key_id()),
              static_cast<std::uint64_t>(round + 1));
  }
  const auto m = gg.gt_random(rng);
  const auto c = Core::enc(gg, kg.pk, m, rng);
  EXPECT_TRUE(gg.gt_eq(client.decrypt(c), m));
  client.close();
  server.stop();
}

TEST(KsServiceTest, AdminExposesKeystoreTotalsAndShardHealth) {
  typename KsServer<MockGroup>::Options so;
  so.admin = true;
  TwoShards svc(7600, so);
  const auto keys = test_keys(4);
  for (const auto& id : keys) svc.add(id);
  crypto::Rng rng(10);
  for (const auto& id : keys) ASSERT_TRUE(svc.roundtrip(id, rng));
  // ks.refresh_backlog is minted by a scheduler sweep; run one so the
  // exposition carries it regardless of which tests ran before us.
  svc.fleet->start_scheduler();
  svc.fleet->scheduler()->sweep_now();
  ASSERT_TRUE(svc.fleet->scheduler()->wait_idle(std::chrono::milliseconds(2000)));
  svc.fleet->stop_scheduler();

  ASSERT_NE(svc.s0->admin_port(), 0);
  const std::string text =
      service::AdminClient::fetch(svc.s0->admin_port(), service::kAdmMetrics);
  EXPECT_EQ(telemetry::prometheus_lint(text), "") << text;
#if DLR_TELEMETRY_ENABLED
  const auto samples = telemetry::parse_prometheus(text);
  ASSERT_TRUE(samples.count("ks_keys")) << text;
  EXPECT_GT(samples.at("ks_keys"), 0.0);
  ASSERT_TRUE(samples.count("ks_dec_total")) << text;
  EXPECT_GE(samples.at("ks_dec_total"), static_cast<double>(keys.size()));
  EXPECT_TRUE(samples.count("ks_refresh_backlog")) << text;
#endif

  const std::string health =
      service::AdminClient::fetch(svc.s0->admin_port(), service::kAdmHealth);
  EXPECT_NE(health.find("\"keystore\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"shard_id\":\"0\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"keys\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"map_version\":\"1\""), std::string::npos) << health;
}

#if DLR_TELEMETRY_ENABLED
TEST(KsTelemetryTest, PerKeySeriesAreOptInAndTotalsAggregate) {
  // Satellite (a): the documented per-key label convention. Totals are
  // always-on; {tenant,key} series appear only with per_key_metrics, and
  // sum_gauges/count_series let tests and dashboards fold a prefix.
  typename KeyStore<MockGroup>::Options opt;
  opt.per_key_metrics = true;
  StoreRig rig(7700, opt);
  const KeyId a{"acme", "mail"}, b{"globex", "web"};
  rig.add(a);
  rig.add(b);
  crypto::Rng rng(11);
  ASSERT_TRUE(rig.roundtrip(a, 0, rng));
  ASSERT_TRUE(rig.roundtrip(a, 0, rng));
  ASSERT_TRUE(rig.roundtrip(b, 0, rng));

  auto& reg = telemetry::Registry::global();
  EXPECT_EQ(reg.counter_value("ks.dec{tenant=acme,key=mail}"), 2u);
  EXPECT_EQ(reg.counter_value("ks.dec{tenant=globex,key=web}"), 1u);
  EXPECT_GE(reg.count_series("ks.dec{"), 2u);
  EXPECT_GE(reg.counter_value("ks.dec.total"), 3u);
  EXPECT_GE(reg.gauge_value("ks.keys"), 2.0);
}
#endif

// ---- hammer (TSan target) -----------------------------------------------------

TEST(KsHammerTest, ConcurrentDecryptsRaceTheSchedulerCleanly) {
  // Decrypt threads race the background scheduler's 2PC refreshes across a
  // shared fleet: per-key locking, budget mirrors, and mux sharing must hold
  // under TSan. Correctness invariant: every returned plaintext is right.
  typename KsServer<MockGroup>::Options so;
  so.store.budget_bits = 8;
  so.store.leak_per_dec_bits = 1;
  so.store.refresh_threshold = 0.5;
  typename KsFleet<MockGroup>::Options fo;
  fo.refresh_threshold = 0.5;
  fo.scheduler.sweep_interval = std::chrono::milliseconds(2);
  fo.scheduler.max_concurrent = 2;
  TwoShards svc(7800, so, so, fo);
  const auto keys = test_keys(4);
  for (const auto& id : keys) svc.add(id);
  svc.fleet->start_scheduler();

  constexpr int kThreads = 4, kPerThread = 15;
  std::atomic<int> wrong{0}, ok{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      crypto::Rng rng(7800 * 100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const auto& id = keys[(t + i) % keys.size()];
        const auto m = svc.gg.gt_random(rng);
        const auto c = Core::enc(svc.gg, svc.kgs.at(id).pk, m, rng);
        if (svc.gg.gt_eq(svc.fleet->decrypt(id, c), m))
          ok.fetch_add(1);
        else
          wrong.fetch_add(1);
      }
    });
  for (auto& t : ts) t.join();
  svc.fleet->stop_scheduler();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
}

// ---- chaos soak ---------------------------------------------------------------

TEST(KsChaosTest, SeededChaosSoakNeverReturnsAWrongPlaintext) {
  // Same contract as the single-key chaos soak, now across two shards with
  // per-key state: a seeded injector perturbs every fleet connection while
  // threads decrypt and the scheduler refreshes. No wrong plaintext, ever;
  // after the storm every key reconciles and decrypts.
  const char* env = std::getenv("DLR_CHAOS_SEED");
  const std::uint64_t seed = env ? std::strtoull(env, nullptr, 10) : 1;

  std::atomic<std::uint64_t> conn_no{0};
  typename KsFleet<MockGroup>::Options fo;
  fo.request_timeout = transport::Millis{300};
  fo.max_retries = 40;
  fo.retry.base = transport::Millis{2};
  fo.retry.cap = transport::Millis{30};
  fo.refresh_threshold = 0.5;
  fo.scheduler.sweep_interval = std::chrono::milliseconds(10);
  fo.conn_wrapper = [&](std::shared_ptr<transport::FramedConn> fc)
      -> std::shared_ptr<transport::Conn> {
    transport::FaultPlan::Rates rates;
    rates.drop = 0.02;
    rates.duplicate = 0.03;
    rates.delay = 0.05;
    rates.bitflip = 0.02;
    rates.sever = 0.02;
    rates.delay_ms = 1;
    return std::make_shared<transport::FaultInjector>(
        std::move(fc),
        transport::FaultPlan::seeded(seed * 1000003 + conn_no.fetch_add(1), rates));
  };
  typename KsServer<MockGroup>::Options so;
  so.store.budget_bits = 16;
  so.store.leak_per_dec_bits = 1;
  so.store.refresh_threshold = 0.5;
  TwoShards svc(7900 + seed, so, so, fo);
  const auto keys = test_keys(5);
  for (const auto& id : keys) svc.add(id);
  svc.fleet->start_scheduler();

  constexpr int kThreads = 3, kPerThread = 10;
  std::atomic<int> wrong{0}, gave_up{0}, ok{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      crypto::Rng rng(8800 + seed * 100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const auto& id = keys[(t * kPerThread + i) % keys.size()];
        const auto m = svc.gg.gt_random(rng);
        const auto c = Core::enc(svc.gg, svc.kgs.at(id).pk, m, rng);
        try {
          if (svc.gg.gt_eq(svc.fleet->decrypt(id, c), m))
            ok.fetch_add(1);
          else
            wrong.fetch_add(1);
        } catch (const std::exception&) {
          gave_up.fetch_add(1);  // typed failure after budget exhaustion: allowed
        }
      }
    });
  for (auto& t : ts) t.join();
  svc.fleet->stop_scheduler();

  EXPECT_EQ(wrong.load(), 0) << "chaos produced a silently wrong plaintext";
  EXPECT_GT(ok.load(), 0) << "nothing succeeded -- retry budget far too small";

  // Settle: every key reconciles (hello resolves any half-done 2PC on its
  // next contact) and decrypts correctly. The retry budget rides over the
  // still-faulty links.
  crypto::Rng rng(9999 + seed);
  for (const auto& id : keys) {
    EXPECT_TRUE(svc.roundtrip(id, rng)) << id.display() << " failed to settle";
    const auto server_epoch = svc.s0->store().contains(id)
                                  ? svc.s0->store().epoch_of(id)
                                  : svc.s1->store().epoch_of(id);
    EXPECT_EQ(svc.fleet->epoch_of(id), server_epoch)
        << id.display() << " epochs failed to reconcile";
  }
}


// ---- overload protection (DESIGN.md §13) --------------------------------------

TEST(KsOverloadTest, LeakageFloorExemptsSpentKeysFromRefreshShedding) {
  MockGroup gg = make_mock();
  const auto prm = mock_params();
  typename KsServer<MockGroup>::Options so;
  so.workers = 1;
  so.max_batch = 1;
  // queue_cap 4: even if the lone worker steals an item the moment the queue
  // fills, depth stays >= 3 = the 0.75 high-water mark (same geometry as the
  // P2 degraded-mode test).
  so.queue_cap = 4;
  so.inject_crypto_delay = std::chrono::microseconds{50000};
  so.refresh_shed_floor = 0.5;
  so.store.budget_bits = 100;
  so.store.leak_per_dec_bits = 1;
  KsServer<MockGroup> server(gg, prm, crypto::Rng(9100), so);
  server.start();

  const KeyId hot{"acme", "hot"}, cold{"acme", "cold"};
  crypto::Rng rng(9101);
  auto kg_hot = Core::gen(gg, prm, rng);
  auto kg_cold = Core::gen(gg, prm, rng);
  server.store().put(hot, kg_hot.sk2);
  server.store().put(cold, kg_cold.sk2);
  schemes::DlrParty1<MockGroup> p1_hot(gg, prm, kg_hot.pk, kg_hot.sk1,
                                       schemes::P1Mode::Plain, crypto::Rng(9102));
  schemes::DlrParty1<MockGroup> p1_cold(gg, prm, kg_cold.pk, kg_cold.sk1,
                                        schemes::P1Mode::Plain, crypto::Rng(9103));
  p1_hot.prepare_period();
  p1_cold.prepare_period();

  // Burn 60% of `hot`'s leakage budget with direct (wire-free) decrypts.
  for (int i = 0; i < 60; ++i) {
    const auto m = gg.gt_random(rng);
    const auto c = Core::enc(gg, kg_hot.pk, m, rng);
    (void)server.store().dec(hot, 0, p1_hot.dec_round1(c, rng));
  }
  ASSERT_GE(server.store().spent_frac(hot), so.refresh_shed_floor);
  ASSERT_LT(server.store().spent_frac(cold), so.refresh_shed_floor);

  // Saturate the lone worker: each one-item batch parks for 50 ms, so the
  // 4-slot queue stays past the high-water mark for the whole test.
  const auto m = gg.gt_random(rng);
  const auto c = Core::enc(gg, kg_cold.pk, m, rng);
  const Bytes r1 = p1_cold.dec_round1(c, rng);
  transport::SessionMux mux(std::make_shared<transport::FramedConn>(
      transport::connect_loopback(server.port()), transport::TransportOptions{}));
  std::vector<std::unique_ptr<transport::SessionMux::Session>> flood;
  for (int i = 0; i < 12; ++i) {
    auto sess = mux.open();
    sess->send(transport::FrameType::Data, 1, kKsDec, encode_ks_request(cold, 0, r1));
    flood.push_back(std::move(sess));
  }

  // A barely-spent key's refresh prepare is deprioritized while degraded...
  auto shed = mux.open();
  shed->send(transport::FrameType::Data, 1, kKsRef,
             encode_ks_request(cold, 0, p1_cold.ref_round1()));
  auto resp = shed->recv(transport::Millis{10000});
  ASSERT_EQ(resp.type, transport::FrameType::Error);
  const service::ServiceError err = service::decode_error(resp.body);
  EXPECT_EQ(err.code(), service::ServiceErrc::Overloaded);
  EXPECT_GT(err.retry_after_ms(), 0u);

  // ...but a key at/above the floor is served even under the same load: the
  // leakage ceiling outranks load shedding (availability degrades first).
  auto exempt = mux.open();
  exempt->send(transport::FrameType::Data, 1, kKsRef,
               encode_ks_request(hot, 0, p1_hot.ref_round1()));
  resp = exempt->recv(transport::Millis{10000});
  EXPECT_EQ(resp.type, transport::FrameType::Data)
      << "floor-exempt refresh must be served while degraded";
  EXPECT_GT(server.gov().shed_refresh(), 0u);

  for (auto& sess : flood) (void)sess->recv(transport::Millis{10000});
  server.stop();
}

TEST(KsOverloadTest, StopWhileFloodedJoinsWithoutDeadlock) {
  // Same regression as the P2 variant: shedding readers must never park in
  // submit() backpressure, so stop() against a flood joins promptly.
  MockGroup gg = make_mock();
  const auto prm = mock_params();
  typename KsServer<MockGroup>::Options so;
  so.workers = 1;
  so.max_batch = 1;
  so.queue_cap = 2;
  so.inject_crypto_delay = std::chrono::microseconds{5000};
  auto server = std::make_unique<KsServer<MockGroup>>(gg, prm, crypto::Rng(9200), so);
  server->start();

  const KeyId id{"acme", "flood"};
  crypto::Rng rng(9201);
  auto kg = Core::gen(gg, prm, rng);
  server->store().put(id, kg.sk2);
  schemes::DlrParty1<MockGroup> p1(gg, prm, kg.pk, kg.sk1, schemes::P1Mode::Plain,
                                   crypto::Rng(9202));
  p1.prepare_period();
  const auto m = gg.gt_random(rng);
  const auto c = Core::enc(gg, kg.pk, m, rng);
  const Bytes r1 = p1.dec_round1(c, rng);
  const std::uint16_t port = server->port();

  std::atomic<bool> go{true};
  std::vector<std::thread> flooders;
  for (int t = 0; t < 3; ++t)
    flooders.emplace_back([&] {
      try {
        transport::SessionMux mux(std::make_shared<transport::FramedConn>(
            transport::connect_loopback(port), transport::TransportOptions{}));
        std::vector<std::unique_ptr<transport::SessionMux::Session>> pending;
        while (go.load()) {
          auto sess = mux.open();
          sess->send(transport::FrameType::Data, 1, kKsDec,
                     encode_ks_request(id, 0, r1));
          pending.push_back(std::move(sess));
          if (pending.size() > 64) pending.erase(pending.begin());
        }
      } catch (const transport::TransportError&) {
        // Server went away mid-flood: exactly the point.
      }
    });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server->stop();  // must not deadlock against shedding readers
  go.store(false);
  for (auto& t : flooders) t.join();
  server.reset();
  SUCCEED();
}

TEST(KsOverloadTest, SoakUnderOverloadKeepsEveryKeyInsideItsLeakageBudget) {
  // Chaos-adjacent soak: an overloaded fleet (tiny queue, injected crypto
  // cost, faulty links) hammers decrypts while the background scheduler
  // refreshes. The degraded servers shed refresh prepares EXCEPT for keys
  // at the leakage floor, so no key may ever exhaust its budget.
  typename KsServer<MockGroup>::Options so;
  so.workers = 1;
  so.max_batch = 2;
  so.queue_cap = 4;
  so.inject_crypto_delay = std::chrono::microseconds{2000};
  so.store.budget_bits = 8;
  so.store.leak_per_dec_bits = 1;
  so.store.refresh_threshold = 0.5;
  so.refresh_shed_floor = 0.5;
  typename KsFleet<MockGroup>::Options fo;
  fo.refresh_threshold = 0.5;
  fo.scheduler.sweep_interval = std::chrono::milliseconds(5);
  fo.scheduler.max_concurrent = 2;
  // Severed links surface as a fast reconnect, not a 10 s recv stall.
  fo.request_timeout = transport::Millis{500};
  fo.retry.base = transport::Millis{2};
  fo.retry.cap = transport::Millis{40};
  std::atomic<std::uint64_t> conn_no{0};
  fo.conn_wrapper = [&](std::shared_ptr<transport::FramedConn> fc)
      -> std::shared_ptr<transport::Conn> {
    transport::FaultPlan::Rates rates;
    rates.drop = 0.01;
    rates.duplicate = 0.02;
    rates.delay = 0.03;
    rates.sever = 0.01;
    rates.delay_ms = 1;
    return std::make_shared<transport::FaultInjector>(
        std::move(fc), transport::FaultPlan::seeded(9301 + conn_no.fetch_add(1), rates));
  };
  TwoShards svc(9300, so, so, fo);
  const auto keys = test_keys(4);
  for (const auto& id : keys) svc.add(id);
  svc.fleet->start_scheduler();

  std::atomic<int> wrong{0}, ok{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 3; ++t)
    ts.emplace_back([&, t] {
      crypto::Rng rng(9310 + t);
      for (int i = 0; i < 15; ++i) {
        const auto& id = keys[(t * 15 + i) % keys.size()];
        const auto m = svc.gg.gt_random(rng);
        const auto c = Core::enc(svc.gg, svc.kgs.at(id).pk, m, rng);
        try {
          if (svc.gg.gt_eq(svc.fleet->decrypt(id, c), m))
            ok.fetch_add(1);
          else
            wrong.fetch_add(1);
        } catch (const std::exception&) {
          // Typed shed/timeout after retries: allowed under overload.
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  for (auto& t : ts) t.join();
  svc.fleet->stop_scheduler();

  EXPECT_EQ(wrong.load(), 0) << "overload produced a silently wrong plaintext";
  EXPECT_GT(ok.load(), 0) << "goodput collapsed to zero under 2x load";
  // The invariant the whole degradation order exists for: continual-leakage
  // security holds because no key crosses its per-period budget.
  for (const auto& id : keys) {
    auto& owner = svc.s0->store().contains(id) ? svc.s0->store() : svc.s1->store();
    EXPECT_LT(owner.spent_frac(id), 1.0)
        << id.display() << " exhausted its leakage budget under overload";
  }
}

}  // namespace
}  // namespace dlr::keystore
