// Generic fixed-first-argument pairing over any BilinearGroup.
//
// PreparedPair<GG> front-ends the fixed-argument Miller precomputation: on
// backends with a native `prepare_pair` hook (TateGroup, and decorators that
// forward it) construction runs the Miller loop once and every pair() call is
// a cheap line-evaluation + norm-1 final exponentiation; on concept-only
// backends (MockGroup) it degrades to per-call gg.pair, so scheme code can
// use it unconditionally.
//
// pair_many() evaluates a whole coordinate row against the fixed argument --
// on the native path this additionally shares ONE batched base-field
// inversion across all final exponentiations, which is why pair_ct routes its
// kappa+1 coordinates through a single call.
//
// Every evaluation bumps the `group.pairing.prepared` counter, so bench JSON
// shows how much pairing work rode the fast lane.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "group/bilinear.hpp"
#include "telemetry/metrics.hpp"

namespace dlr::group {

template <class GG>
concept NativePreparedPairing = requires(const GG& gg, const typename GG::G& a) {
  gg.prepare_pair(a);
};

namespace detail {

struct NoNativePrepared {};

template <class GG>
struct NativePreparedType {
  using type = NoNativePrepared;
};
template <NativePreparedPairing GG>
struct NativePreparedType<GG> {
  using type = decltype(std::declval<const GG&>().prepare_pair(
      std::declval<const typename GG::G&>()));
};

}  // namespace detail

template <BilinearGroup GG>
class PreparedPair {
 public:
  using G = typename GG::G;
  using GT = typename GG::GT;

  PreparedPair(const GG& gg, const G& a)
      : a_(a),
        tm_prepared_(&telemetry::Registry::global().counter("group.pairing.prepared",
                                                            {{"backend", gg.name()}})) {
    if constexpr (NativePreparedPairing<GG>) native_.emplace(gg.prepare_pair(a));
  }

  [[nodiscard]] const G& base() const { return a_; }

  [[nodiscard]] GT pair(const GG& gg, const G& b) const {
    tm_prepared_->add();
    if constexpr (NativePreparedPairing<GG>) {
      return native_->pair(b);
    } else {
      return gg.pair(a_, b);
    }
  }

  [[nodiscard]] std::vector<GT> pair_many(const GG& gg, std::span<const G> bs) const {
    tm_prepared_->add(bs.size());
    if constexpr (NativePreparedPairing<GG>) {
      return native_->pair_many(bs);
    } else {
      std::vector<GT> out;
      out.reserve(bs.size());
      for (const auto& b : bs) out.push_back(gg.pair(a_, b));
      return out;
    }
  }

 private:
  G a_;
  std::optional<typename detail::NativePreparedType<GG>::type> native_;
  telemetry::Counter* tm_prepared_ = nullptr;
};

}  // namespace dlr::group
