# Empty compiler generated dependencies file for mpint_test.
# This may be replaced when dependencies are built.
