// F5 -- secure storage on leaky devices (paper Sections 1.1 and 4.4):
// store / refresh / retrieve costs across payload sizes, and durability
// across many refresh periods.
#include "bench_util.hpp"
#include "group/tate_group.hpp"
#include "storage/leaky_store.hpp"

int main() {
  using namespace dlr;
  using namespace dlr::bench;

  banner("F5: secure storage on leaky devices", "paper Sections 1.1 + 4.4");

  using GG = group::TateSS256;
  const auto gg = group::make_tate_ss256();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), 64);

  Table t({"payload", "put ms", "get ms", "refresh ms", "public overhead"});
  crypto::Rng rng(5050);
  for (const std::size_t size : {64u, 4096u, 262144u, 4194304u}) {
    auto store = storage::LeakyStore<GG>::create(gg, prm, schemes::P1Mode::Plain, size);
    const Bytes payload = rng.bytes(size);
    const double put_ms = time_ms([&] { store.put(payload); }, 1);
    const double get_ms = time_ms([&] { sink(store.get()); }, 1);
    const double ref_ms = time_ms([&] { store.refresh_period(); }, 1);
    if (store.get() != payload) {
      std::printf("FAIL: payload corrupted\n");
      return 1;
    }
    t.row({fmt_bytes(size), fmt(put_ms), fmt(get_ms), fmt(ref_ms),
           fmt_bytes(store.overhead_bytes())});
  }
  t.print();

  // Durability: 50 refresh periods, nothing stored survives unchanged except
  // the payload itself.
  auto store = storage::LeakyStore<GG>::create(gg, prm, schemes::P1Mode::Plain, 777);
  const Bytes payload = rng.bytes(1024);
  store.put(payload);
  const auto kem0 = *store.kem_ciphertext();
  double total_ref = 0;
  const int periods = 50;
  for (int tix = 0; tix < periods; ++tix)
    total_ref += time_ms([&] { store.refresh_period(); }, 1);
  const bool intact = store.get() == payload;
  const bool rerandomized = !gg.g_eq(store.kem_ciphertext()->a, kem0.a);

  std::printf("\nDurability over %d refresh periods:\n", periods);
  Table d({"check", "result"});
  d.row({"payload intact after 50 refreshes", intact ? "yes" : "NO"});
  d.row({"KEM ciphertext re-randomized", rerandomized ? "yes" : "NO"});
  d.row({"mean refresh period ms", fmt(total_ref / periods)});
  d.print();

  std::printf(
      "\nShape check: put/get costs are dominated by one DLR protocol run plus\n"
      "ChaCha20 over the payload (linear only in payload size for the symmetric\n"
      "part); refresh cost is payload-independent. The stored value survives an\n"
      "arbitrary number of refresh periods while every stored ciphertext and\n"
      "share changes each period -- the Dodis et al. [17] storage functionality\n"
      "realized with a (1/2 - o(1))-refresh-rate scheme instead of 1/672.\n");
  return intact && rerandomized ? 0 : 1;
}
