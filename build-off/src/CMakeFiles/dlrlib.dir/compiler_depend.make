# Empty compiler generated dependencies file for dlrlib.
# This may be replaced when dependencies are built.
