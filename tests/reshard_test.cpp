// Live resharding (DESIGN.md §14): the 2->3 rebalance end-to-end, the
// ks.map.propose wire gate, a crash matrix that kills source or destination
// after every durable hand-off step, a severed offer-ack, the seeded chaos
// kill the CI soak replays, and the two client-side satellites (single-flight
// map refetch under a WrongShard storm, dead keys dropping out of the
// refresh backlog).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "group/mock_group.hpp"
#include "keystore/keystore.hpp"
#include "keystore/ks_client.hpp"
#include "keystore/ks_protocol.hpp"
#include "keystore/ks_server.hpp"
#include "keystore/scheduler.hpp"
#include "keystore/shard_map.hpp"
#include "service/protocol.hpp"
#include "transport/mux.hpp"

namespace dlr::keystore {
namespace {

using group::make_mock;
using group::MockGroup;
using Core = schemes::DlrCore<MockGroup>;

schemes::DlrParams mock_params() {
  const auto gg = make_mock();
  return schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

std::string make_state_dir() {
  std::string tmpl = ::testing::TempDir() + "dlr_reshard_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) throw std::runtime_error("mkdtemp failed");
  return tmpl;
}

std::vector<KeyId> test_keys(int n) {
  std::vector<KeyId> out;
  const char* tenants[] = {"acme", "globex", "initech"};
  for (int i = 0; i < n; ++i)
    out.push_back({tenants[i % 3], "key" + std::to_string(i)});
  return out;
}

/// Three journal-backed KsServer shards + a KsFleet. Shards 0 and 1 own the
/// v1 map; shard 2 idles on the same map (so it answers WrongShard) until a
/// propose pulls it in. Every shard keeps its state dir across kill()/
/// restart(), which is what makes the crash matrix honest: a restarted
/// server can only know what its journal recorded.
struct Reshard3 {
  using Server = KsServer<MockGroup>;
  using Fleet = KsFleet<MockGroup>;

  MockGroup gg = make_mock();
  schemes::DlrParams prm = mock_params();
  std::array<std::string, 3> dirs;
  std::array<std::unique_ptr<Server>, 3> srv;
  std::optional<Fleet> fleet;
  std::unordered_map<KeyId, Core::KeyGenResult, KeyIdHash> kgs;
  std::uint64_t seed;
  typename Server::Options base_opts;

  explicit Reshard3(std::uint64_t seed_, typename Server::Options so = {},
                    typename Fleet::Options fo = {},
                    std::function<void(std::uint32_t, typename Server::Options&)> tweak = {})
      : seed(seed_), base_opts(std::move(so)) {
    for (auto& d : dirs) d = make_state_dir();
    for (std::uint32_t i = 0; i < 3; ++i) start_shard(i, seed + i, tweak);
    const ShardMap m = two_map(1);
    for (auto& s : srv) s->set_shard_map(m);
    fleet.emplace(gg, prm, crypto::Rng(seed + 50), srv[0]->port(), std::move(fo));
  }

  ~Reshard3() {
    if (fleet) fleet->close();
    for (auto& s : srv)
      if (s) s->stop();
  }

  void start_shard(std::uint32_t i, std::uint64_t rng_seed,
                   const std::function<void(std::uint32_t, typename Server::Options&)>&
                       tweak = {}) {
    typename Server::Options o = base_opts;
    o.shard_id = i;
    o.store.state_dir = dirs[i];
    if (tweak) tweak(i, o);
    srv[i] = std::make_unique<Server>(gg, prm, crypto::Rng(rng_seed), o);
    srv[i]->start();
  }

  [[nodiscard]] ShardMap two_map(std::uint64_t v) const {
    return ShardMap(v, {{0, "", srv[0]->port()}, {1, "", srv[1]->port()}});
  }
  [[nodiscard]] ShardMap three_map(std::uint64_t v) const {
    return ShardMap(v, {{0, "", srv[0]->port()},
                        {1, "", srv[1]->port()},
                        {2, "", srv[2]->port()}});
  }

  /// The operator's move: propose the 3-shard map at `version` to every
  /// live shard (the re-propose after a restart uses a bumped version so
  /// the refreshed ports and reshard windows take everywhere).
  void propose_three(std::uint64_t version) {
    const ShardMap m = three_map(version);
    for (auto& s : srv)
      if (s) (void)s->propose_map(m);
  }

  void kill(std::uint32_t i) {
    srv[i]->stop();
    srv[i].reset();
  }

  [[nodiscard]] bool settled() const {
    for (const auto& s : srv) {
      if (!s) return false;
      if (!s->mig_idle() || s->mig_halted() || s->reshard_window_open()) return false;
    }
    return true;
  }

  [[nodiscard]] bool wait_settled(
      std::chrono::milliseconds budget = std::chrono::milliseconds(15000)) const {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      if (settled()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return settled();
  }

  [[nodiscard]] std::string settle_report() const {
    std::string out;
    for (std::uint32_t i = 0; i < 3; ++i) {
      out += "shard" + std::to_string(i);
      if (!srv[i]) {
        out += ": dead\n";
        continue;
      }
      out += std::string(": idle=") + (srv[i]->mig_idle() ? "1" : "0") +
             " halted=" + (srv[i]->mig_halted() ? "1" : "0") +
             " window=" + (srv[i]->reshard_window_open() ? "open" : "closed") +
             " backlog=" + std::to_string(srv[i]->mig_backlog()) + "\n";
    }
    return out;
  }

  void add(const KeyId& id) {
    crypto::Rng rng(seed + key_hash(id));
    auto kg = Core::gen(gg, prm, rng);
    fleet->add_key(id, kg.pk, kg.sk1, schemes::P1Mode::Plain);
    fleet->provision(id, kg.sk2);
    kgs.emplace(id, std::move(kg));
  }

  [[nodiscard]] bool roundtrip(const KeyId& id, crypto::Rng& rng) {
    const auto m = gg.gt_random(rng);
    const auto c = Core::enc(gg, kgs.at(id).pk, m, rng);
    return gg.gt_eq(fleet->decrypt(id, c), m);
  }

  [[nodiscard]] int resident_count(const KeyId& id) {
    int n = 0;
    for (const auto& s : srv)
      if (s && s->store().contains(id)) ++n;
    return n;
  }
  [[nodiscard]] int serving_count(const KeyId& id) {
    int n = 0;
    for (const auto& s : srv)
      if (s && s->store().serving(id)) ++n;
    return n;
  }
  [[nodiscard]] std::uint32_t serving_shard(const KeyId& id) {
    for (std::uint32_t i = 0; i < 3; ++i)
      if (srv[i] && srv[i]->store().serving(id)) return i;
    return 99;
  }
};

/// Exactly-once residency + ownership-per-the-new-map, the invariant every
/// recovery scenario below must land on: no lost share, no duplicated
/// serving copy, owner matches the proposed map.
void expect_conserved(Reshard3& rig, const std::vector<KeyId>& keys,
                      const ShardMap& want, const std::string& ctx) {
  for (const auto& id : keys) {
    EXPECT_EQ(rig.resident_count(id), 1) << ctx << ": " << id.display();
    EXPECT_EQ(rig.serving_count(id), 1) << ctx << ": " << id.display();
    EXPECT_EQ(rig.serving_shard(id), want.owner(id)) << ctx << ": " << id.display();
  }
}

// ---- happy-path rebalance -----------------------------------------------------

TEST(ReshardTest, TwoToThreeRebalanceMovesKeysAndConservesState) {
  typename KsFleet<MockGroup>::Options fo;
  fo.retry.base = transport::Millis{2};
  fo.retry.cap = transport::Millis{50};
  Reshard3 rig(9100, {}, std::move(fo));
  const auto keys = test_keys(12);
  for (const auto& id : keys) rig.add(id);
  rig.fleet->refresh_key(keys[0]);
  rig.fleet->refresh_key(keys[4]);

  crypto::Rng rng(11);
  for (const auto& id : keys) ASSERT_TRUE(rig.roundtrip(id, rng));

  const ShardMap oldm = rig.srv[0]->shard_map();
  const ShardMap newm = rig.three_map(2);
  std::vector<KeyId> moved;
  for (const auto& id : keys)
    if (oldm.owner(id) != newm.owner(id)) moved.push_back(id);
  ASSERT_FALSE(moved.empty()) << "2->3 rebalance moved nothing; test is vacuous";

  std::unordered_map<KeyId, double, KeyIdHash> spent_before;
  std::unordered_map<KeyId, std::uint64_t, KeyIdHash> epoch_before;
  for (const auto& id : keys) {
    auto& s = *rig.srv[oldm.owner(id)];
    spent_before[id] = s.store().spent_frac(id);
    epoch_before[id] = s.store().epoch_of(id);
    ASSERT_GT(spent_before[id], 0.0);
  }

  // Client traffic rides THROUGH the rebalance: every decryption must land,
  // via Draining retries and WrongShard reroutes, never an error surfaced.
  std::atomic<bool> fail{false};
  std::thread traffic([&] {
    crypto::Rng trng(12);
    for (int i = 0; i < 60 && !fail.load(); ++i)
      if (!rig.roundtrip(keys[i % keys.size()], trng)) fail.store(true);
  });
  rig.propose_three(2);
  traffic.join();
  EXPECT_FALSE(fail.load()) << "a decryption failed mid-rebalance";
  ASSERT_TRUE(rig.wait_settled());

  expect_conserved(rig, keys, newm, "rebalance");
  std::uint64_t out = 0, in = 0;
  for (const auto& s : rig.srv) {
    out += s->migrated_out();
    in += s->migrated_in();
  }
  EXPECT_EQ(out, moved.size()) << "a key migrated twice or not at all";
  EXPECT_EQ(in, moved.size());

  for (const auto& id : keys) {
    auto& owner = *rig.srv[newm.owner(id)];
    EXPECT_EQ(owner.store().epoch_of(id), epoch_before[id])
        << id.display() << ": migration changed the epoch";
    // The budget ledger travels with the share; traffic only ever adds.
    EXPECT_GE(owner.store().spent_frac(id), spent_before[id] - 1e-9)
        << id.display() << ": migration reset the leakage ledger";
  }
  for (const auto& id : keys) EXPECT_TRUE(rig.roundtrip(id, rng));
}

// ---- wire route ---------------------------------------------------------------

TEST(ReshardTest, MapProposeWireRouteGatesVersionAndRejectsStaleMaps) {
  Reshard3 rig(9200);
  transport::TransportOptions topt;
  std::vector<std::shared_ptr<transport::SessionMux>> muxes;
  for (const auto& s : rig.srv) {
    auto fc = std::make_shared<transport::FramedConn>(
        transport::connect_loopback(s->port(), topt), topt);
    muxes.push_back(std::make_shared<transport::SessionMux>(
        std::static_pointer_cast<transport::Conn>(fc)));
  }

  auto call = [&](std::size_t shard, const Bytes& body) {
    auto sess = muxes[shard]->open();
    sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P2),
               kKsMapPropose, body);
    return service::expect_ok(sess->recv(transport::Millis{2000}), kKsMapProposeOk);
  };

  // Well-formed propose to EVERY shard (the protocol's contract): each
  // accepts and returns its outgoing-key count (0 keys provisioned here),
  // and the reshard windows close once the done broadcasts cross.
  for (std::size_t i = 0; i < 3; ++i) {
    const Bytes ok = call(i, encode_ks_map_propose(rig.three_map(2).encode()));
    ByteReader r(ok);
    EXPECT_EQ(r.u32(), 0u) << "shard " << i;
  }
  EXPECT_TRUE(rig.wait_settled()) << rig.settle_report();

  // A proposal demanding a wire version this shard does not speak is turned
  // away typed, before any state changes.
  ByteWriter w;
  w.u8(service::kWireDeadlineVersion + 7);
  w.blob(rig.three_map(3).encode());
  try {
    (void)call(0, w.take());
    FAIL() << "future-wire-version proposal was accepted";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), service::ServiceErrc::BadRequest);
  }

  // Stale (older-version) proposals are rejected, not silently installed.
  try {
    (void)call(0, encode_ks_map_propose(rig.three_map(1).encode()));
    FAIL() << "stale map proposal was accepted";
  } catch (const service::ServiceError& e) {
    EXPECT_EQ(e.code(), service::ServiceErrc::BadRequest);
  }
  EXPECT_EQ(rig.srv[0]->shard_map().version(), 2u);
  for (auto& m : muxes) m->stop();
}

// ---- crash matrix -------------------------------------------------------------

struct CrashCase {
  const char* step;
  std::uint32_t victim;  // 0 = source shard, 2 = destination shard
};

class ReshardCrashMatrixTest : public ::testing::TestWithParam<CrashCase> {};

/// Kill one side of the hand-off immediately after each durable step, then
/// recover: restart the victim from its journal and re-propose the same map
/// shape at a bumped version (the operator's documented move). Afterwards
/// every key must be resident + serving exactly once, under the new owner,
/// with its epoch intact and its leakage ledger never inflated.
TEST_P(ReshardCrashMatrixTest, KillAfterStepThenRecoverWithoutLossOrDuplication) {
  const auto [step, victim] = GetParam();
  typename KsFleet<MockGroup>::Options fo;
  fo.retry.base = transport::Millis{2};
  fo.retry.cap = transport::Millis{50};
  Reshard3 rig(9300 + victim, {}, std::move(fo));
  const auto keys = test_keys(12);
  for (const auto& id : keys) rig.add(id);
  rig.fleet->refresh_key(keys[1]);
  crypto::Rng rng(13);
  for (const auto& id : keys) ASSERT_TRUE(rig.roundtrip(id, rng));

  const ShardMap oldm = rig.srv[0]->shard_map();
  const ShardMap newm = rig.three_map(2);
  std::vector<KeyId> moved;
  for (const auto& id : keys)
    if (oldm.owner(id) != newm.owner(id)) moved.push_back(id);
  // The hook only fires if the victim participates: shard 0 must lose a key
  // (source steps) and shard 2 must gain one (destination steps).
  ASSERT_TRUE(std::any_of(moved.begin(), moved.end(),
                          [&](const KeyId& id) { return oldm.owner(id) == 0; }));
  ASSERT_TRUE(std::any_of(moved.begin(), moved.end(),
                          [&](const KeyId& id) { return newm.owner(id) == 2; }));

  std::unordered_map<KeyId, double, KeyIdHash> spent_before;
  std::unordered_map<KeyId, std::uint64_t, KeyIdHash> epoch_before;
  for (const auto& id : keys) {
    spent_before[id] = rig.srv[oldm.owner(id)]->store().spent_frac(id);
    epoch_before[id] = rig.srv[oldm.owner(id)]->store().epoch_of(id);
  }

  rig.srv[victim]->store().set_migration_hook([step = std::string(step)](const char* s) {
    if (step == s) throw MigrationHalt("injected crash at " + step);
  });
  rig.propose_three(2);

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!rig.srv[victim]->mig_halted() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(rig.srv[victim]->mig_halted()) << step << ": hook never fired";

  rig.kill(victim);
  rig.start_shard(victim, 777000 + victim);  // journal is the only carry-over

  // Keys whose ledger must travel exactly: every moved key except those the
  // restarted victim holds as an ORDINARY resident (mig state None -- either
  // never marked, or already committed in). Those restart into a fresh
  // leakage period by the store's documented policy; a key with a durable
  // mid-migration record carries its spent counter through the restart.
  // (Snapshot after the restart, before the re-propose touches anything:
  // the journal is the ground truth the recovery works from.)
  std::vector<KeyId> preserved;
  for (const auto& id : moved) {
    if (rig.srv[victim]->store().contains(id) &&
        rig.srv[victim]->store().mig_status(id).state == MigState::None)
      continue;
    preserved.push_back(id);
  }

  rig.propose_three(3);
  ASSERT_TRUE(rig.wait_settled(std::chrono::milliseconds(40000)))
      << step << "\n" << rig.settle_report();

  expect_conserved(rig, keys, newm, step);
  for (const auto& id : keys) {
    auto& owner = *rig.srv[newm.owner(id)];
    EXPECT_EQ(owner.store().epoch_of(id), epoch_before[id])
        << step << " " << id.display() << ": crash recovery changed the epoch";
    // No crash point may ever double-charge the ledger...
    EXPECT_LE(owner.store().spent_frac(id), spent_before[id] + 1e-9)
        << step << " " << id.display();
  }
  // ...and the shipped spent survives every hand-off crash except a
  // destination restart AFTER commit, where the key is an ordinary resident
  // again and the store's restart policy (fresh period) applies.
  if (std::string_view(step) != "mig.dst_commit") {
    for (const auto& id : preserved)
      EXPECT_NEAR(rig.srv[newm.owner(id)]->store().spent_frac(id), spent_before[id],
                  1e-9)
          << step << " " << id.display() << ": ledger did not travel with the share";
  }

  // The fleet re-learns addresses from a survivor (shard 1 never dies here)
  // and every key keeps decrypting.
  rig.fleet->fetch_map(rig.srv[1]->port());
  for (const auto& id : keys) EXPECT_TRUE(rig.roundtrip(id, rng)) << step;
}

INSTANTIATE_TEST_SUITE_P(AllDurableSteps, ReshardCrashMatrixTest,
                         ::testing::Values(CrashCase{"mig.src_mark", 0},
                                           CrashCase{"mig.src_release", 0},
                                           CrashCase{"mig.src_done", 0},
                                           CrashCase{"mig.dst_stage", 2},
                                           CrashCase{"mig.dst_commit", 2}),
                         [](const auto& info) {
                           std::string n = info.param.step;
                           for (auto& c : n)
                             if (c == '.') c = '_';
                           return n;
                         });

// ---- severed transport --------------------------------------------------------

/// Drops the first outbound frame carrying `label` and tears the connection
/// down, so the peer fails fast instead of waiting out its recv timeout.
class DropFrameAndSever final : public transport::Conn {
 public:
  DropFrameAndSever(std::shared_ptr<transport::Conn> under, std::string label,
                    std::shared_ptr<std::atomic<bool>> fired)
      : under_(std::move(under)), label_(std::move(label)), fired_(std::move(fired)) {}

  void send(const transport::Frame& f) override {
    if (f.type == transport::FrameType::Data && f.label == label_ &&
        !fired_->exchange(true)) {
      under_->shutdown();
      throw transport::TransportError(transport::Errc::ConnectionClosed,
                                      "injected sever at " + label_);
    }
    under_->send(f);
  }
  transport::Frame recv(std::optional<transport::Millis> timeout) override {
    return under_->recv(timeout);
  }
  using transport::Conn::recv;
  [[nodiscard]] const transport::TransportOptions& options() const override {
    return under_->options();
  }
  void shutdown() noexcept override { under_->shutdown(); }

 private:
  std::shared_ptr<transport::Conn> under_;
  std::string label_;
  std::shared_ptr<std::atomic<bool>> fired_;
};

TEST(ReshardTest, LostOfferAckIsReofferedIdempotently) {
  // The destination stages durably but its ACK never reaches the source:
  // the source must re-offer, the destination must recognize the identical
  // digest and re-ack, and the key must come out served exactly once.
  auto fired = std::make_shared<std::atomic<bool>>(false);
  Reshard3 rig(9600, {}, {}, [&](std::uint32_t i, Reshard3::Server::Options& o) {
    if (i != 2) return;
    o.conn_wrapper = [fired](std::shared_ptr<transport::FramedConn> fc)
        -> std::shared_ptr<transport::Conn> {
      return std::make_shared<DropFrameAndSever>(
          std::static_pointer_cast<transport::Conn>(std::move(fc)), kKsMigOfferOk,
          fired);
    };
  });
  const auto keys = test_keys(12);
  for (const auto& id : keys) rig.add(id);
  crypto::Rng rng(15);
  for (const auto& id : keys) ASSERT_TRUE(rig.roundtrip(id, rng));

  const ShardMap oldm = rig.srv[0]->shard_map();
  const ShardMap newm = rig.three_map(2);
  std::size_t moved = 0;
  for (const auto& id : keys)
    if (oldm.owner(id) != newm.owner(id)) ++moved;
  ASSERT_GT(moved, 0u);

  rig.propose_three(2);
  ASSERT_TRUE(rig.wait_settled());
  EXPECT_TRUE(fired->load()) << "the sever never triggered; test is vacuous";

  expect_conserved(rig, keys, newm, "lost-offer-ack");
  std::uint64_t in = 0;
  for (const auto& s : rig.srv) in += s->migrated_in();
  EXPECT_EQ(in, moved) << "a lost ack produced a duplicate commit";
  for (const auto& id : keys) EXPECT_TRUE(rig.roundtrip(id, rng));
}

// ---- seeded chaos kill (the CI reshard-soak entry point) ----------------------

TEST(ReshardChaosTest, SeededShardKillMidMigrationRecovers) {
  std::uint64_t seed = 424242;
  if (const char* s = std::getenv("DLR_CHAOS_SEED")) seed = std::strtoull(s, nullptr, 10);
  typename KsFleet<MockGroup>::Options fo;
  fo.retry.base = transport::Millis{2};
  fo.retry.cap = transport::Millis{50};
  Reshard3 rig(9700 + (seed % 97), {}, std::move(fo));
  const auto keys = test_keys(14);
  for (const auto& id : keys) rig.add(id);
  crypto::Rng rng(seed ^ 0x5eed);
  for (const auto& id : keys) ASSERT_TRUE(rig.roundtrip(id, rng));

  const ShardMap newm = rig.three_map(2);
  std::unordered_map<KeyId, std::uint64_t, KeyIdHash> epoch_before;
  for (const auto& id : keys)
    epoch_before[id] = rig.srv[rig.srv[0]->shard_map().owner(id)]->store().epoch_of(id);

  // The seed picks the victim side and how deep into the migration the kill
  // lands; CI replays several seeds so the kill point sweeps the protocol.
  const std::uint32_t victim = (seed % 2 == 0) ? 0u : 2u;
  rig.propose_three(2);
  std::this_thread::sleep_for(std::chrono::microseconds(100 + (seed % 29) * 350));
  rig.kill(victim);
  rig.start_shard(victim, seed + 999);
  rig.propose_three(3);
  ASSERT_TRUE(rig.wait_settled(std::chrono::milliseconds(40000)))
      << "seed " << seed << " victim " << victim << "\n" << rig.settle_report();

  expect_conserved(rig, keys, newm, "chaos seed " + std::to_string(seed));
  for (const auto& id : keys)
    EXPECT_EQ(rig.srv[newm.owner(id)]->store().epoch_of(id), epoch_before[id])
        << "seed " << seed << " " << id.display();
  rig.fleet->fetch_map(rig.srv[1]->port());
  for (const auto& id : keys) EXPECT_TRUE(rig.roundtrip(id, rng)) << "seed " << seed;
}

// ---- satellite: single-flight map refetch -------------------------------------

/// Stalls every outbound frame carrying `label` -- long enough that a storm
/// of concurrent WrongShard victims piles up behind one fetch.
class DelayFrameAtLabel final : public transport::Conn {
 public:
  DelayFrameAtLabel(std::shared_ptr<transport::Conn> under, std::string label,
                    std::chrono::milliseconds delay)
      : under_(std::move(under)), label_(std::move(label)), delay_(delay) {}

  void send(const transport::Frame& f) override {
    if (f.type == transport::FrameType::Data && f.label == label_)
      std::this_thread::sleep_for(delay_);
    under_->send(f);
  }
  transport::Frame recv(std::optional<transport::Millis> timeout) override {
    return under_->recv(timeout);
  }
  using transport::Conn::recv;
  [[nodiscard]] const transport::TransportOptions& options() const override {
    return under_->options();
  }
  void shutdown() noexcept override { under_->shutdown(); }

 private:
  std::shared_ptr<transport::Conn> under_;
  std::string label_;
  std::chrono::milliseconds delay_;
};

TEST(KsFleetSatelliteTest, WrongShardStormCollapsesToOneMapRefetch) {
  // Six threads hit WrongShard at once while ks.map is artificially slow:
  // exactly one refetch may go out; the rest must wait on it and reroute
  // off the shared result.
  typename KsFleet<MockGroup>::Options fo;
  fo.retry.base = transport::Millis{2};
  fo.retry.cap = transport::Millis{50};
  fo.conn_wrapper = [](std::shared_ptr<transport::FramedConn> fc)
      -> std::shared_ptr<transport::Conn> {
    return std::make_shared<DelayFrameAtLabel>(
        std::static_pointer_cast<transport::Conn>(std::move(fc)), kKsMap,
        std::chrono::milliseconds(250));
  };
  Reshard3 rig(9800, {}, std::move(fo));
  const auto keys = test_keys(12);
  for (const auto& id : keys) rig.add(id);

  // Poison the fleet with a map that changes OWNERSHIP (one shard owns
  // everything), then storm keys the real map places on shard 1: every
  // thread routes to shard 0 and gets the same WrongShard.
  const ShardMap real = rig.srv[0]->shard_map();
  std::vector<KeyId> on1;
  for (const auto& id : keys)
    if (real.owner(id) == 1) on1.push_back(id);
  ASSERT_GE(on1.size(), 6u);
  rig.fleet->set_map(ShardMap(1, {{0, "", rig.srv[0]->port()}}));

  const auto refetches_before = rig.fleet->map_refetches();
  const auto waits_before = rig.fleet->map_fetch_waits();
  std::atomic<int> ready{0};
  std::atomic<bool> go{false}, fail{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t)
    threads.emplace_back([&, t] {
      crypto::Rng trng(9000 + t);
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      if (!rig.roundtrip(on1[static_cast<std::size_t>(t)], trng)) fail.store(true);
    });
  while (ready.load() < 6) std::this_thread::yield();
  go.store(true);
  for (auto& th : threads) th.join();

  EXPECT_FALSE(fail.load());
  EXPECT_EQ(rig.fleet->map_refetches() - refetches_before, 1u)
      << "concurrent WrongShards each fetched the map";
  EXPECT_GE(rig.fleet->map_fetch_waits() - waits_before, 3u)
      << "losers did not wait on the in-flight fetch";
  EXPECT_EQ(rig.fleet->map().version(), real.version());
}

// ---- satellite: dead keys drop out of the refresh backlog ---------------------

TEST(KsFleetSatelliteTest, RemovedKeyDropsOutOfRefreshBacklogInsteadOfWedgingIt) {
  typename Reshard3::Server::Options so;
  so.store.budget_bits = 4;
  so.store.leak_per_dec_bits = 1;
  so.store.refresh_threshold = 0.5;
  typename KsFleet<MockGroup>::Options fo;
  fo.refresh_threshold = 0.5;
  fo.scheduler.sweep_interval = std::chrono::milliseconds(10);
  fo.scheduler.max_concurrent = 2;
  fo.retry.base = transport::Millis{2};
  fo.retry.cap = transport::Millis{20};
  Reshard3 rig(9900, std::move(so), std::move(fo));
  const auto keys = test_keys(4);
  for (const auto& id : keys) rig.add(id);

  // Push two keys over the 50% refresh threshold (3 of 4 budget bits).
  crypto::Rng rng(17);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rig.roundtrip(keys[0], rng));
    ASSERT_TRUE(rig.roundtrip(keys[1], rng));
  }
  // Key 0 disappears behind the fleet's back (deprovisioned by an operator).
  rig.srv[rig.srv[0]->shard_map().owner(keys[0])]->store().remove(keys[0]);

  rig.fleet->start_scheduler();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((!rig.fleet->key_dead(keys[0]) || rig.fleet->epoch_of(keys[1]) == 0) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  EXPECT_TRUE(rig.fleet->key_dead(keys[0]))
      << "UnknownKey refresh failure never declared the key dead";
  EXPECT_GE(rig.fleet->epoch_of(keys[1]), 1u)
      << "a dead key starved a live key's refresh";

  // The dead key must stop requalifying: failures stay flat across further
  // sweeps and the backlog drains to empty instead of wedging.
  ASSERT_TRUE(rig.fleet->scheduler()->wait_idle(std::chrono::milliseconds(2000)));
  const auto failures = rig.fleet->scheduler()->failures();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(rig.fleet->scheduler()->failures(), failures)
      << "dead key keeps re-entering the refresh queue";
  EXPECT_EQ(rig.fleet->scheduler()->backlog(), 0u);
  for (const auto& c : rig.fleet->candidates())
    EXPECT_FALSE(c.id == keys[0]) << "dead key still offered as a candidate";
  rig.fleet->stop_scheduler();
}

}  // namespace
}  // namespace dlr::keystore
