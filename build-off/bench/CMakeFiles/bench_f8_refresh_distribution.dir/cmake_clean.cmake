file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_refresh_distribution.dir/bench_f8_refresh_distribution.cpp.o"
  "CMakeFiles/bench_f8_refresh_distribution.dir/bench_f8_refresh_distribution.cpp.o.d"
  "bench_f8_refresh_distribution"
  "bench_f8_refresh_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_refresh_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
