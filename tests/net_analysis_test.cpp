// Tests for the support layers: transcripts/channels, statistics estimators,
// leakage-rate formulas, parameter derivation, and the counting decorator.
#include <gtest/gtest.h>

#include "analysis/stats.hpp"
#include "group/counting_group.hpp"
#include "group/mock_group.hpp"
#include "leakage/rates.hpp"
#include "net/transcript.hpp"
#include "schemes/params.hpp"

namespace dlr {
namespace {

using crypto::Rng;

// ---- net ---------------------------------------------------------------------

TEST(TranscriptTest, AppendAndTotals) {
  net::Transcript tr;
  tr.append({net::DeviceId::P1, "a", Bytes{1, 2, 3}});
  tr.append({net::DeviceId::P2, "b", Bytes{4}});
  EXPECT_EQ(tr.count(), 2u);
  EXPECT_EQ(tr.total_bytes(), 4u);
  EXPECT_EQ(tr.messages()[1].label, "b");
  tr.clear();
  EXPECT_EQ(tr.count(), 0u);
  EXPECT_EQ(tr.total_bytes(), 0u);
}

TEST(TranscriptTest, SerializeIsInjectiveOnStructure) {
  net::Transcript t1, t2;
  t1.append({net::DeviceId::P1, "a", Bytes{1, 2}});
  t2.append({net::DeviceId::P1, "a", Bytes{1}});
  t2.append({net::DeviceId::P1, "", Bytes{2}});
  EXPECT_NE(t1.serialize(), t2.serialize());  // length-prefixing prevents splicing
}

TEST(ChannelTest, RecordsAndReturnsBody) {
  net::Channel ch;
  const auto& body = ch.send(net::DeviceId::P1, "msg", Bytes{9, 9});
  EXPECT_EQ(body, (Bytes{9, 9}));
  EXPECT_EQ(ch.transcript().count(), 1u);
  auto tr = ch.take_transcript();
  EXPECT_EQ(tr.count(), 1u);
  EXPECT_EQ(ch.transcript().count(), 0u);  // channel reset after take
}

TEST(SecretSnapshotTest, AllIsLengthPrefixedConcatenation) {
  net::SecretSnapshot s{Bytes{1, 2}, Bytes{3}, Bytes{}};
  const Bytes all = s.all();
  ByteReader r(all);
  EXPECT_EQ(r.blob(), (Bytes{1, 2}));
  EXPECT_EQ(r.blob(), (Bytes{3}));
  EXPECT_EQ(r.blob(), Bytes{});
  EXPECT_TRUE(r.done());
  EXPECT_EQ(s.bits(), 8u * 3);
}

// ---- analysis/stats ---------------------------------------------------------------

TEST(EmpiricalDistTest, UniformSamplesLookUniform) {
  Rng rng(3000);
  analysis::EmpiricalDist d;
  for (int i = 0; i < 20000; ++i) d.add(rng.below(16));
  EXPECT_LT(d.distance_to_uniform(16), 0.05);
  EXPECT_LT(d.chi_square_uniform(16), analysis::chi_square_critical_99(15));
  EXPECT_GT(d.min_entropy(), 3.7);
  EXPECT_GT(d.shannon_entropy(), 3.95);
  EXPECT_LE(d.shannon_entropy(), 4.0 + 1e-9);
  EXPECT_GE(d.shannon_entropy(), d.collision_entropy() - 1e-9);
  EXPECT_GE(d.collision_entropy(), d.min_entropy() - 1e-9);
}

TEST(EmpiricalDistTest, PointMassHasZeroEntropy) {
  analysis::EmpiricalDist d;
  for (int i = 0; i < 100; ++i) d.add(7);
  EXPECT_DOUBLE_EQ(d.min_entropy(), 0.0);
  EXPECT_DOUBLE_EQ(d.shannon_entropy(), 0.0);
  EXPECT_NEAR(d.distance_to_uniform(16), 1.0 - 1.0 / 16, 1e-12);
}

TEST(EmpiricalDistTest, StatisticalDistanceProperties) {
  analysis::EmpiricalDist a, b;
  for (int i = 0; i < 100; ++i) {
    a.add(i % 4);
    b.add(i % 4);
  }
  EXPECT_DOUBLE_EQ(a.statistical_distance(b), 0.0);
  analysis::EmpiricalDist c;
  for (int i = 0; i < 100; ++i) c.add(1000 + i % 4);  // disjoint support
  EXPECT_DOUBLE_EQ(a.statistical_distance(c), 1.0);
  EXPECT_DOUBLE_EQ(c.statistical_distance(a), 1.0);  // symmetric
}

TEST(EmpiricalDistTest, EmptyThrows) {
  analysis::EmpiricalDist d;
  EXPECT_THROW((void)d.min_entropy(), std::logic_error);
  EXPECT_THROW((void)d.distance_to_uniform(4), std::logic_error);
}

TEST(WilsonTest, BasicProperties) {
  const auto w = analysis::wilson(50, 100);
  EXPECT_NEAR(w.center, 0.5, 0.01);
  EXPECT_LT(w.low, 0.5);
  EXPECT_GT(w.high, 0.5);
  // More trials -> tighter interval.
  const auto w2 = analysis::wilson(500, 1000);
  EXPECT_LT(w2.high - w2.low, w.high - w.low);
  // Extremes stay in [0, 1].
  EXPECT_GE(analysis::wilson(0, 10).low, 0.0);
  EXPECT_LE(analysis::wilson(10, 10).high, 1.0);
  EXPECT_THROW((void)analysis::wilson(1, 0), std::invalid_argument);
}

TEST(AdvantageTest, MapsWinRate) {
  const auto a = analysis::advantage_from_wins(75, 100);
  EXPECT_NEAR(a.advantage, 0.5, 0.05);
  const auto b = analysis::advantage_from_wins(50, 100);
  EXPECT_NEAR(b.advantage, 0.0, 0.05);
  EXPECT_LT(b.low, 0.0);
  EXPECT_GT(b.high, 0.0);
}

TEST(ChiSquareCriticalTest, KnownValues) {
  // chi2_{0.99}(10) ~ 23.21, chi2_{0.99}(100) ~ 135.81
  EXPECT_NEAR(analysis::chi_square_critical_99(10), 23.21, 0.7);
  EXPECT_NEAR(analysis::chi_square_critical_99(100), 135.81, 1.5);
  EXPECT_THROW((void)analysis::chi_square_critical_99(0), std::invalid_argument);
}

// ---- params / rates -----------------------------------------------------------------

TEST(DlrParamsTest, PaperFormulas) {
  // With log p = n: kappa = 1 + ceil((lambda+2n)/n), l = 9 + 3kappa,
  // |sk_comm| = kappa*log p = lambda + 3n (when n | lambda).
  const auto prm = schemes::DlrParams::derive(160, 160);
  EXPECT_EQ(prm.kappa, 4u);
  EXPECT_EQ(prm.ell, 21u);
  EXPECT_EQ(prm.skcomm_bits(), prm.lambda + 3 * prm.n);
  EXPECT_EQ(prm.b1_bits(), prm.lambda);
  EXPECT_EQ(prm.b2_bits(), prm.sk2_bits());

  const auto p2 = schemes::DlrParams::derive(160, 1600);
  EXPECT_EQ(p2.kappa, 1u + (1600 + 320) / 160);
  EXPECT_EQ(p2.ell, 7 + 3 * p2.kappa + 2);
}

TEST(DlrParamsTest, CeilDivisionRounding) {
  const auto prm = schemes::DlrParams::derive(61, 100);  // non-divisible
  EXPECT_EQ(prm.kappa, 1 + (100 + 2 * 61 + 60) / 61);
  EXPECT_THROW((void)schemes::DlrParams::derive(1, 1), std::invalid_argument);
}

TEST(RatesTest, PaperRatesLimits) {
  // rho1 -> 1 and rho1_ref -> 1/2 as lambda -> infinity.
  const auto small = leakage::paper_rates(schemes::DlrParams::derive(160, 160));
  const auto big = leakage::paper_rates(schemes::DlrParams::derive(160, 160 * 1000));
  EXPECT_LT(small.p1, big.p1);
  EXPECT_GT(big.p1, 0.99);
  EXPECT_GT(big.p1_ref, 0.49);
  EXPECT_LT(big.p1_ref, 0.51);
  EXPECT_DOUBLE_EQ(small.p2, 1.0);
  EXPECT_DOUBLE_EQ(small.p2_ref, 1.0);
}

TEST(RatesTest, ComparatorTableQuotesThePaper) {
  const auto rows = leakage::comparator_table();
  ASSERT_GE(rows.size(), 8u);
  // The constants the paper quotes in Section 1.2.1.
  bool found258 = false, found672 = false, found_zero = false;
  for (const auto& r : rows) {
    if (std::abs(r.refresh_rate - 1.0 / 258) < 1e-9) found258 = true;
    if (std::abs(r.refresh_rate - 1.0 / 672) < 1e-9) found672 = true;
    if (r.refresh_rate == 0.0) found_zero = true;
  }
  EXPECT_TRUE(found258);
  EXPECT_TRUE(found672);
  EXPECT_TRUE(found_zero);
  EXPECT_EQ(rows[0].refresh_rate, 0.5);  // ours
}

// ---- counting group ---------------------------------------------------------------------

TEST(CountingGroupTest, CountsAndSharesAcrossCopies) {
  group::CountingGroup<group::MockGroup> gg(group::make_mock());
  auto copy = gg;  // shares the counter block
  Rng rng(3100);
  const auto p = gg.g_random(rng);
  const auto s = copy.sc_random(rng);
  (void)copy.g_pow(p, s);
  (void)gg.pair(p, p);
  EXPECT_EQ(gg.counts().g_random, 1u);
  EXPECT_EQ(gg.counts().sc_random, 1u);
  EXPECT_EQ(gg.counts().g_pow, 1u);
  EXPECT_EQ(gg.counts().pairings, 1u);
  gg.reset_counts();
  EXPECT_EQ(copy.counts().pairings, 0u);
}

TEST(CountingGroupTest, DiffOperator) {
  group::CountingGroup<group::MockGroup> gg(group::make_mock());
  Rng rng(3101);
  const auto p = gg.g_random(rng);
  const auto before = gg.snapshot();
  (void)gg.g_mul(p, p);
  (void)gg.g_mul(p, p);
  const auto delta = gg.snapshot() - before;
  EXPECT_EQ(delta.g_mul, 2u);
  EXPECT_EQ(delta.g_random, 0u);
}

}  // namespace
}  // namespace dlr
