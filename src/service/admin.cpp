#include "service/admin.hpp"

#include <stdexcept>

#include "telemetry/events.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace dlr::service {

namespace {

telemetry::Counter& scrape_counter() {
  static telemetry::Counter& c = telemetry::Registry::global().counter("adm.scrapes");
  return c;
}

}  // namespace

void AdminServer::start(std::uint16_t port) {
  listener_ = transport::Listener::loopback(port);
  started_at_ = std::chrono::steady_clock::now();
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void AdminServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (started_.load()) listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<ConnState>> conns;
  {
    std::lock_guard lock(conns_mu_);
    conns = conns_;
  }
  for (auto& c : conns) c->conn->shutdown();
  for (auto& c : conns)
    if (c->reader.joinable()) c->reader.join();
}

std::uint64_t AdminServer::scrapes() const { return scrape_counter().value(); }

void AdminServer::register_health(const std::string& section, HealthProvider provider) {
  std::lock_guard lock(health_mu_);
  providers_.emplace_back(section, std::move(provider));
}

std::string AdminServer::health_json() const {
  const auto uptime_ms =
      started_.load()
          ? std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - started_at_)
                .count()
          : 0;
  // Built-in load section (DESIGN.md §13), read from Registry atomics only --
  // the scrape must stay non-blocking even while the data plane is saturated,
  // which is exactly when an operator asks for it.
  auto& reg = telemetry::Registry::global();
  std::string out = "{\"uptime_ms\":" + std::to_string(uptime_ms) + ",\"telemetry\":\"" +
                    (DLR_TELEMETRY_ENABLED ? "on" : "off") + "\",\"load\":{" +
                    "\"queue_depth\":" +
                    std::to_string(static_cast<std::int64_t>(reg.gauge("svc.queue_depth").value())) +
                    ",\"shed_overload\":" + std::to_string(reg.counter("svc.shed.overload").value()) +
                    ",\"shed_deadline\":" + std::to_string(reg.counter("svc.shed.deadline").value()) +
                    ",\"shed_refresh\":" + std::to_string(reg.counter("svc.shed.refresh").value()) +
                    "},\"sections\":{";
  std::vector<std::pair<std::string, HealthProvider>> providers;
  {
    std::lock_guard lock(health_mu_);
    providers = providers_;
  }
  bool first_section = true;
  for (const auto& [section, provider] : providers) {
    if (!first_section) out += ",";
    first_section = false;
    out += '"';
    out += telemetry::json_escape(section);
    out += "\":{";
    bool first_field = true;
    for (const auto& [k, v] : provider()) {
      if (!first_field) out += ",";
      first_field = false;
      out += '"';
      out += telemetry::json_escape(k);
      out += "\":\"";
      out += telemetry::json_escape(v);
      out += '"';
    }
    out += "}";
  }
  out += "}}";
  return out;
}

std::string AdminServer::respond(const std::string& label, std::string& ok_label) const {
  if (label == kAdmMetrics) {
    ok_label = kAdmMetricsOk;
    scrape_counter().add();
    return telemetry::to_prometheus(telemetry::Registry::global().snapshot());
  }
  if (label == kAdmHealth) {
    ok_label = kAdmHealthOk;
    return health_json();
  }
  if (label == kAdmEvents) {
    ok_label = kAdmEventsOk;
    return telemetry::EventLog::global().dump_jsonl();
  }
  if (label == kAdmSpans) {
    ok_label = kAdmSpansOk;
    return telemetry::to_jsonl(telemetry::ExportMeta{"adm.spans"}, telemetry::Snapshot{},
                               telemetry::Tracer::global().spans());
  }
  ok_label.clear();
  return "unknown admin route '" + label + "'";
}

void AdminServer::accept_loop() {
  for (;;) {
    transport::Socket sock;
    try {
      sock = listener_.accept(transport::Millis{200});
    } catch (const transport::TransportError& e) {
      if (e.code() == transport::Errc::Timeout) {
        if (stopping_.load()) return;
        continue;
      }
      return;  // listener closed
    }
    auto st = std::make_shared<ConnState>();
    st->conn = std::make_shared<transport::FramedConn>(std::move(sock), opt_.transport);
    st->reader = std::thread([this, conn = st->conn] { serve(conn); });
    std::lock_guard lock(conns_mu_);
    std::erase_if(conns_, [](const std::shared_ptr<ConnState>& c) {
      if (!c->done.load()) return false;
      if (c->reader.joinable()) c->reader.join();
      return true;
    });
    conns_.push_back(std::move(st));
  }
}

void AdminServer::serve(const std::shared_ptr<transport::FramedConn>& conn) {
  for (;;) {
    transport::Frame f;
    try {
      f = conn->recv_blocking();
    } catch (const transport::TransportError&) {
      break;  // client hung up / shutdown
    }
    if (f.type != transport::FrameType::Data) continue;
    std::string ok_label;
    std::string body = respond(f.label, ok_label);
    transport::Frame reply{f.session,
                           ok_label.empty() ? transport::FrameType::Error
                                            : transport::FrameType::Data,
                           0, ok_label.empty() ? kAdmErr : ok_label,
                           Bytes(body.begin(), body.end())};
    try {
      conn->send(reply);
    } catch (const transport::TransportError&) {
      break;
    }
  }
  std::lock_guard lock(conns_mu_);
  for (auto& c : conns_)
    if (c->conn == conn) c->done.store(true);
}

std::string AdminClient::fetch(std::uint16_t port, const std::string& label,
                               const transport::TransportOptions& opt) {
  transport::FramedConn conn(transport::connect_loopback(port, opt), opt);
  conn.send(transport::Frame{1, transport::FrameType::Data, 0, label, {}});
  transport::Frame f = conn.recv(opt.recv_timeout);
  if (f.type == transport::FrameType::Error)
    throw std::runtime_error("admin: " + std::string(f.body.begin(), f.body.end()));
  return {f.body.begin(), f.body.end()};
}

}  // namespace dlr::service
