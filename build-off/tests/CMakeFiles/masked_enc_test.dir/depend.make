# Empty dependencies file for masked_enc_test.
# This may be replaced when dependencies are built.
