// Miller-Rabin primality testing over UInt<L>, and the type-A pairing
// parameter search used to generate this repo's curve presets (see
// tools/paramgen.cpp). Uses the slow schoolbook powmod -- these paths run at
// setup/validation time only.
#pragma once

#include "crypto/rng.hpp"
#include "mpint/uint.hpp"

namespace dlr::mpint {

/// Miller-Rabin with `rounds` random bases (error probability <= 4^-rounds).
template <std::size_t L>
bool is_probable_prime(const UInt<L>& n, crypto::Rng& rng, int rounds = 40) {
  if (n < UInt<L>::from_u64(2)) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull}) {
    const auto sp = UInt<L>::from_u64(p);
    if (n == sp) return true;
    if (mod(n, sp).is_zero()) return false;
  }
  // n - 1 = d * 2^s
  const auto n1 = n - UInt<L>::from_u64(1);
  std::size_t s = 0;
  auto d = n1;
  while (!d.is_odd()) {
    d = shr(d, 1);
    ++s;
  }
  const std::size_t nbits = n.bit_length();
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    UInt<L> a;
    do {
      Bytes b(8 * L, 0);
      const std::size_t nbytes = (nbits + 7) / 8;
      rng.fill(std::span<std::uint8_t>(b.data(), nbytes));
      if (nbits % 8 != 0) b[nbytes - 1] &= static_cast<std::uint8_t>(0xff >> (8 - nbits % 8));
      a = UInt<L>::from_bytes(b);
    } while (a < UInt<L>::from_u64(2) || a >= n1);

    auto x = powmod_slow(a, d, n);
    if (x == UInt<L>::from_u64(1) || x == n1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < s; ++i) {
      x = mulmod_slow(x, x, n);
      if (x == n1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

/// Search result for type-A pairing parameters: q = r*h - 1 prime, q == 3
/// (mod 4), r prime. (The curve y^2 = x^3 + x over F_q then has order q+1 =
/// r*h with a pairing-friendly order-r subgroup.)
template <std::size_t LQ, std::size_t LR>
struct TypeAParams {
  UInt<LQ> q;
  UInt<LR> r;
  UInt<12> h;
};

/// Deterministic search seeded by `seed`: draws an r_bits-bit prime r, then
/// increments an h (kept divisible by 4 so q == 3 mod 4) until q = r*h - 1 is
/// prime. q_bits must satisfy q_bits <= 64*LQ and q_bits - r_bits <= 768.
template <std::size_t LQ, std::size_t LR>
TypeAParams<LQ, LR> find_type_a_params(std::size_t q_bits, std::size_t r_bits,
                                       std::uint64_t seed) {
  if (r_bits > 64 * LR || q_bits > 64 * LQ || r_bits + 2 > q_bits ||
      q_bits - r_bits > 768)
    throw std::invalid_argument("find_type_a_params: inconsistent sizes");
  crypto::Rng rng(seed);
  // r: random r_bits-bit odd number until prime.
  UInt<LR> r;
  for (;;) {
    Bytes b(8 * LR, 0);
    rng.fill(std::span<std::uint8_t>(b.data(), (r_bits + 7) / 8));
    r = UInt<LR>::from_bytes(b);
    for (std::size_t i = r_bits; i < 64 * LR; ++i) r.set_bit(i, false);
    r.set_bit(r_bits - 1, true);
    r.set_bit(0, true);
    if (is_probable_prime(r, rng, 32)) break;
  }
  // h: (q_bits - r_bits)-bit, divisible by 4; increment by 4 until q prime.
  const std::size_t h_bits = q_bits - r_bits;
  UInt<12> h;
  {
    Bytes b(96, 0);
    rng.fill(std::span<std::uint8_t>(b.data(), (h_bits + 7) / 8));
    h = UInt<12>::from_bytes(b);
    for (std::size_t i = h_bits; i < 12 * 64; ++i) h.set_bit(i, false);
    h.set_bit(h_bits - 1, true);
    h.set_bit(0, false);
    h.set_bit(1, false);
  }
  for (;;) {
    const auto rh = mul_wide(resize<LQ>(r), h);  // UInt<LQ+12>
    const auto q = resize<LQ>(rh) - UInt<LQ>::from_u64(1);
    // (r*h must fit LQ limbs; if it overflowed, resize throws.)
    if ((q.limb[0] & 3) == 3 && is_probable_prime(q, rng, 32))
      return {q, r, h};
    h = h + UInt<12>::from_u64(4);
  }
}

}  // namespace dlr::mpint
