# Empty compiler generated dependencies file for bench_f2_protocol_costs.
# This may be replaced when dependencies are built.
