// Public-channel machinery for the two-device protocols.
//
// Everything a message contains is public by definition of the model
// (Section 3.2): the adversary sees the full communication transcript, and
// the transcript is part of pub^t, the public input to leakage functions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"

namespace dlr::net {

enum class DeviceId : std::uint8_t { P1 = 1, P2 = 2 };

[[nodiscard]] inline std::string to_string(DeviceId d) {
  return d == DeviceId::P1 ? "P1" : "P2";
}

/// The three phases of a device's life within a time period (Section 3.2).
enum class Phase : std::uint8_t { KeyGen = 0, Normal = 1, Refresh = 2 };

struct Message {
  DeviceId from;
  std::string label;  // e.g. "dec.r1"
  Bytes body;

  [[nodiscard]] std::size_t size_bytes() const { return body.size(); }
};

/// Ordered record of all messages exchanged on the public channel.
class Transcript {
 public:
  void append(Message m);

  [[nodiscard]] const std::vector<Message>& messages() const { return msgs_; }
  [[nodiscard]] std::size_t total_bytes() const { return total_; }
  [[nodiscard]] std::size_t count() const { return msgs_.size(); }

  /// Canonical serialization -- the `comm^t` component of pub^t.
  [[nodiscard]] Bytes serialize() const;

  void clear();

 private:
  std::vector<Message> msgs_;
  std::size_t total_ = 0;
};

/// A synchronous 2-party channel that records every message.
///
/// `send` is virtual: subclasses (e.g. transport::MuxChannel) forward the
/// message over a real wire in addition to recording it, so protocol code
/// written against Channel& runs unchanged whether the peer shares the
/// process or sits across a socket. The transcript-recording contract is
/// identical either way -- the channel is public in the model regardless of
/// its physical realization.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Deliver a message, recording it in the transcript; returns the body for
  /// the peer to consume.
  virtual const Bytes& send(DeviceId from, std::string label, Bytes body);

  [[nodiscard]] const Transcript& transcript() const { return tr_; }
  [[nodiscard]] Transcript take_transcript();

 protected:
  /// Record a message in the transcript + telemetry (the base `send`).
  const Bytes& record(DeviceId from, std::string label, Bytes body);

 private:
  Transcript tr_;
};

/// Serialized secret memory of one device during one phase (Section 3.2): the
/// share, the secret randomness held, and intermediate computation results.
/// This is the exact input handed to leakage functions.
struct SecretSnapshot {
  Bytes share;          // sk_i^t (current share; during refresh also sk^{t+1})
  Bytes coins;          // r_i^t / r_i^{t,Ref}
  Bytes intermediates;  // results of intermediate computations

  [[nodiscard]] Bytes all() const {
    ByteWriter w;
    w.blob(share);
    w.blob(coins);
    w.blob(intermediates);
    return w.take();
  }

  /// Size of the full leakage-function input (Section 3.2): share, coins,
  /// AND intermediate computation results -- everything in secret memory
  /// while the phase runs. This is |all()|'s payload, the domain a leakage
  /// function h_i^t may read.
  [[nodiscard]] std::size_t bits() const {
    return 8 * (share.size() + coins.size() + intermediates.size());
  }

  /// Secret-memory size in bits as the paper counts it for leakage *rates*:
  /// only the essential secret content (share + secret randomness). The rate
  /// convention quotes leakage against m_i, the mandated storage, so
  /// transient intermediates are deliberately excluded here even though
  /// bits() (the leakage-function input) includes them.
  [[nodiscard]] std::size_t essential_bits() const {
    return 8 * (share.size() + coins.size());
  }
};

}  // namespace dlr::net
