// F8 -- distributional invariants, measured on a tiny mock group where
// distributions are enumerable:
//
//  (a) Definition 3.1: refreshed shares are distributed exactly like fresh
//      ones -- SD((sk^0), (sk^t)) = 0. We draw many independent systems,
//      refresh t times, and chi-square-test share coordinates against
//      uniform (and against the t=0 empirical distribution).
//  (b) Definition 5.1 (2), HPSKE residual entropy: the posterior of a
//      uniform plaintext given its Pi_comm ciphertext stays uniform to an
//      observer without sk_comm, and drops by ~L bits under L bits of
//      leakage on sk_comm -- the average-min-entropy accounting behind the
//      paper's leftover-hash-lemma step.
#include <cmath>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "group/mock_group.hpp"
#include "schemes/dlr.hpp"

int main() {
  using namespace dlr;
  using namespace dlr::bench;

  banner("F8: refresh-invariance and HPSKE entropy statistics",
         "Definition 3.1 (SD = 0) + Definition 5.1(2)");

  const std::uint64_t r = 101;
  const auto gg = group::make_mock_tiny(r);
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  const std::size_t systems = 4000;

  // ---- (a) share distribution across refreshes -----------------------------------
  analysis::EmpiricalDist s_t0, s_t5, phi_t0, phi_t5;
  for (std::size_t i = 0; i < systems; ++i) {
    auto sys = schemes::DlrSystem<group::MockGroup>::create(
        gg, prm, schemes::P1Mode::Plain, 0xabcdef12u + i);
    s_t0.add(sys.p2().share().s[0]);
    phi_t0.add(sys.p1().share().phi.v);
    for (int t = 0; t < 5; ++t) sys.refresh();
    s_t5.add(sys.p2().share().s[0]);
    phi_t5.add(sys.p1().share().phi.v);
  }

  const double crit = analysis::chi_square_critical_99(r - 1);
  Table a({"statistic", "t=0", "t=5", "99% chi2 crit", "uniform?"});
  const double chi_s0 = s_t0.chi_square_uniform(r), chi_s5 = s_t5.chi_square_uniform(r);
  const double chi_p0 = phi_t0.chi_square_uniform(r), chi_p5 = phi_t5.chi_square_uniform(r);
  a.row({"chi2(s_1 vs uniform)", fmt(chi_s0, 1), fmt(chi_s5, 1), fmt(crit, 1),
         (chi_s0 < crit && chi_s5 < crit) ? "yes" : "NO"});
  a.row({"chi2(Phi vs uniform)", fmt(chi_p0, 1), fmt(chi_p5, 1), fmt(crit, 1),
         (chi_p0 < crit && chi_p5 < crit) ? "yes" : "NO"});
  a.row({"SD(s_1: t=0 vs t=5)", fmt(s_t0.statistical_distance(s_t5), 4), "-", "-",
         "sampling noise only"});
  a.row({"SD(Phi: t=0 vs t=5)", fmt(phi_t0.statistical_distance(phi_t5), 4), "-", "-",
         "sampling noise only"});
  a.print();

  // ---- (b) HPSKE posterior entropy under leakage -----------------------------------
  // kappa = 1 for enumerability: ct = (b, c0 = m * b^sigma). For each leak
  // value v = low-L-bits(sigma), accumulate the plaintext posterior; report
  // average min-entropy H~_inf(m | ct, leak) = -log2 E_v[max_m P(m | v)].
  std::printf("\nHPSKE posterior entropy (r = %llu, log2 r = %.2f bits):\n",
              static_cast<unsigned long long>(r), std::log2(static_cast<double>(r)));
  Table b({"leak bits L", "H~_inf(m | ct, leak)", "log2(r) - L", "samples"});
  crypto::Rng rng(606);
  const auto bcoin = gg.g_pow(gg.g_gen(), 3);  // fixed nonzero coin
  const auto c0 = gg.g_pow(gg.g_gen(), 77);    // fixed masked value
  for (const std::size_t L : {0u, 1u, 2u, 3u, 4u}) {
    // Posterior per leak bucket, enumerated exactly over sigma in Z_r.
    std::vector<analysis::EmpiricalDist> buckets(1u << L);
    for (std::uint64_t sigma = 0; sigma < r; ++sigma) {
      const auto mask = gg.g_pow(bcoin, sigma);
      const auto m = gg.g_mul(c0, gg.g_inv(mask));  // the unique consistent m
      buckets[sigma & ((1u << L) - 1)].add(m.v);
    }
    // H~_inf = -log2( sum_v P(v) * max_m P(m|v) )
    double acc = 0;
    std::size_t total = 0;
    for (const auto& d : buckets) total += d.samples();
    for (const auto& d : buckets) {
      if (d.samples() == 0) continue;
      const double pv = static_cast<double>(d.samples()) / static_cast<double>(total);
      std::size_t maxc = 0;
      for (const auto& [_, c] : d.counts()) maxc = std::max(maxc, c);
      acc += pv * (static_cast<double>(maxc) / static_cast<double>(d.samples()));
    }
    const double h = -std::log2(acc);
    b.row({std::to_string(L), fmt(h, 3),
           fmt(std::log2(static_cast<double>(r)) - static_cast<double>(L), 3),
           std::to_string(total)});
  }
  b.print();

  std::printf(
      "\nShape check: (a) share coordinates after 5 refreshes pass the same\n"
      "uniformity test as fresh ones and the empirical SD between t=0 and t=5 is\n"
      "at the sampling-noise floor -- Definition 3.1's SD((sk^0),(sk^t)) = 0.\n"
      "(b) With no leakage the plaintext posterior given a Pi_comm ciphertext is\n"
      "exactly uniform (log2 r bits); each leaked key bit removes ~1 bit,\n"
      "matching the H~_inf >= log p - L accounting used in Definition 5.1(2).\n");
  return 0;
}
