// Concrete adversaries for the CML game.
//
// ShareAccumulationAdversary is the canonical continual-leakage attack: each
// period it leaks its full per-period budget -- the *entire* share of P2
// (legal: b2 = m2) and a fresh lambda-bit window of P1's share region,
// advancing the window every period. Against a scheme that never refreshes
// (Config::disable_refresh), the windows tile the whole share after
// ceil(|share region|/lambda) periods; the adversary reassembles sk1, pairs
// it with the fully-leaked sk2, reconstructs msk and decrypts the challenge:
// advantage -> 1. Against the refreshed scheme the same budget buys bits of
// *different* sharings each period, the reassembled share is garbage, and the
// advantage stays ~0. This is experiment F3.
#pragma once

#include "analysis/stats.hpp"
#include "leakage/game.hpp"

namespace dlr::analysis {

/// Sanity baseline: leaks nothing, guesses at random (well, always 0 -- the
/// challenge bit is uniform, so the advantage is 0 either way).
template <group::BilinearGroup GG>
class GuessingAdversary final : public leakage::CmlGame<GG>::Adversary {
 public:
  using Game = leakage::CmlGame<GG>;
  using GT = typename GG::GT;

  explicit GuessingAdversary(GG gg, std::size_t periods = 3)
      : gg_(std::move(gg)), periods_(periods) {}

  bool wants_more_leakage(const typename Game::View& view) override {
    return view.periods.size() < periods_;
  }

  typename Game::LeakagePlan plan(std::size_t, const typename Game::View&) override {
    typename Game::LeakagePlan p;
    p.h1 = p.h1_ref = p.h2 = p.h2_ref = leakage::no_leakage();
    return p;
  }

  std::pair<GT, GT> choose_messages(const typename Game::View&, crypto::Rng& rng) override {
    return {gg_.gt_random(rng), gg_.gt_random(rng)};
  }

  int guess(const typename Game::View&, const typename Game::Ciphertext&) override {
    return 0;
  }

 private:
  GG gg_;
  std::size_t periods_;
};

/// The share-accumulation attack described above. Works against any backend;
/// the F3 experiment instantiates it on the mock group for trial volume.
template <group::BilinearGroup GG>
class ShareAccumulationAdversary final : public leakage::CmlGame<GG>::Adversary {
 public:
  using Game = leakage::CmlGame<GG>;
  using Core = schemes::DlrCore<GG>;
  using GT = typename GG::GT;

  /// `prm` must match the game's; `bits_per_period` defaults to lambda;
  /// `periods_override` (if nonzero) runs a fixed number of periods instead
  /// of exactly as many as tiling needs (for advantage-vs-periods sweeps).
  ShareAccumulationAdversary(GG gg, schemes::DlrParams prm, std::size_t bits_per_period = 0,
                             std::size_t periods_override = 0)
      : gg_(std::move(gg)),
        prm_(prm),
        lambda_(bits_per_period == 0 ? prm.lambda : bits_per_period),
        sk1_region_bits_(8 * (prm.ell + 1) * gg_.g_bytes()),
        periods_override_(periods_override) {}

  /// Periods needed to tile P1's share region.
  [[nodiscard]] std::size_t periods_needed() const {
    return (sk1_region_bits_ + lambda_ - 1) / lambda_;
  }

  bool wants_more_leakage(const typename Game::View& view) override {
    const std::size_t target = periods_override_ ? periods_override_ : periods_needed();
    return view.periods.size() < target;
  }

  /// Fraction of P1's share region covered by the leaked windows so far.
  [[nodiscard]] double coverage(const typename Game::View& view) const {
    std::vector<bool> have(sk1_region_bits_, false);
    for (std::size_t t = 0; t < view.periods.size(); ++t) {
      const std::size_t start = (t * lambda_) % sk1_region_bits_;
      const std::size_t take = std::min(lambda_, sk1_region_bits_ - start);
      for (std::size_t i = 0; i < take; ++i) have[start + i] = true;
    }
    std::size_t n = 0;
    for (bool h : have) n += h ? 1 : 0;
    return static_cast<double>(n) / static_cast<double>(sk1_region_bits_);
  }

  typename Game::LeakagePlan plan(std::size_t t, const typename Game::View&) override {
    typename Game::LeakagePlan p;
    // P1: lambda bits of the sk1 region. Snapshot layout: u64 length prefix
    // (64 bits) then the share blob, which in plain mode starts with the
    // serialized sk1 (l+1 group elements).
    const std::size_t offset = 64 + (t * lambda_) % sk1_region_bits_;
    const std::size_t take = std::min(lambda_, sk1_region_bits_ - (t * lambda_) % sk1_region_bits_);
    p.h1 = leakage::window_bits(offset, take);
    p.bits1 = take;
    // P2: the whole share, every period (b2 = m2 allows it).
    const std::size_t sk2_bits = 8 * prm_.ell * gg_.sc_bytes();
    p.h2 = leakage::window_bits(64, sk2_bits);
    p.bits2 = sk2_bits;
    p.h1_ref = p.h2_ref = leakage::no_leakage();
    return p;
  }

  std::pair<GT, GT> choose_messages(const typename Game::View&, crypto::Rng& rng) override {
    m0_ = gg_.gt_random(rng);
    do {
      m1_ = gg_.gt_random(rng);
    } while (gg_.gt_eq(m0_, m1_));
    return {m0_, m1_};
  }

  int guess(const typename Game::View& view,
            const typename Game::Ciphertext& challenge) override {
    recovered_ = false;
    const auto sk1 = reassemble_sk1(view);
    const auto sk2 = last_sk2(view);
    if (sk1 && sk2) {
      const auto m = Core::dec_reference(gg_, *sk1, *sk2, challenge);
      if (gg_.gt_eq(m, m0_)) {
        recovered_ = true;
        return 0;
      }
      if (gg_.gt_eq(m, m1_)) {
        recovered_ = true;
        return 1;
      }
    }
    return 0;  // decryption produced garbage: refresh defeated us
  }

  /// Whether the last guess() call actually recovered a working key.
  [[nodiscard]] bool key_recovered() const { return recovered_; }

 private:
  std::optional<typename Core::Sk1> reassemble_sk1(const typename Game::View& view) const {
    Bytes region((sk1_region_bits_ + 7) / 8, 0);
    std::vector<bool> have(sk1_region_bits_, false);
    for (std::size_t t = 0; t < view.periods.size(); ++t) {
      const auto& leak = view.periods[t].l1;
      const std::size_t start = (t * lambda_) % sk1_region_bits_;
      const std::size_t take = std::min(lambda_, sk1_region_bits_ - start);
      for (std::size_t i = 0; i < take && i / 8 < leak.size(); ++i) {
        const bool bit = (leak[i / 8] >> (i % 8)) & 1;
        const std::size_t pos = start + i;
        if (bit) region[pos / 8] |= static_cast<std::uint8_t>(1u << (pos % 8));
        have[pos] = true;
      }
    }
    for (bool h : have)
      if (!h) return std::nullopt;
    try {
      ByteReader r(region);
      typename Core::Sk1 sk1;
      sk1.a.reserve(prm_.ell);
      for (std::size_t i = 0; i < prm_.ell; ++i) sk1.a.push_back(gg_.g_deser(r));
      sk1.phi = gg_.g_deser(r);
      return sk1;
    } catch (const std::exception&) {
      return std::nullopt;  // garbage bytes don't even parse as points
    }
  }

  std::optional<typename Core::Sk2> last_sk2(const typename Game::View& view) const {
    if (view.periods.empty()) return std::nullopt;
    // With refresh disabled every period leaked the same share; use the last.
    const auto& leak = view.periods.back().l2;
    try {
      ByteReader r(leak);
      typename Core::Sk2 sk2;
      sk2.s.reserve(prm_.ell);
      for (std::size_t i = 0; i < prm_.ell; ++i) sk2.s.push_back(gg_.sc_deser(r));
      return sk2;
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }

  GG gg_;
  schemes::DlrParams prm_;
  std::size_t lambda_;
  std::size_t sk1_region_bits_;
  std::size_t periods_override_ = 0;
  GT m0_{}, m1_{};
  bool recovered_ = false;
};

/// Run N independent games and estimate the adversary's advantage.
template <group::BilinearGroup GG, class MakeAdversary>
AdvantageEstimate estimate_advantage(const GG& gg, typename leakage::CmlGame<GG>::Config cfg,
                                     MakeAdversary make_adv, std::size_t trials) {
  std::size_t wins = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    cfg.seed = 0x517cc1b727220a95ull * (i + 1);
    leakage::CmlGame<GG> game(gg, cfg);
    auto adv = make_adv(i);
    const auto res = game.run(*adv);
    if (res.aborted) throw std::logic_error("estimate_advantage: budget abort");
    if (res.adversary_won) ++wins;
  }
  return advantage_from_wins(wins, trials);
}

}  // namespace dlr::analysis
