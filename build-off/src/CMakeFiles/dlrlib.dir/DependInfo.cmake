
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/stats.cpp" "src/CMakeFiles/dlrlib.dir/analysis/stats.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/analysis/stats.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/CMakeFiles/dlrlib.dir/crypto/chacha20.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/crypto/chacha20.cpp.o.d"
  "/root/repo/src/crypto/ots.cpp" "src/CMakeFiles/dlrlib.dir/crypto/ots.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/crypto/ots.cpp.o.d"
  "/root/repo/src/crypto/rng.cpp" "src/CMakeFiles/dlrlib.dir/crypto/rng.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/crypto/rng.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/dlrlib.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/group/mock_group.cpp" "src/CMakeFiles/dlrlib.dir/group/mock_group.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/group/mock_group.cpp.o.d"
  "/root/repo/src/group/tate_group.cpp" "src/CMakeFiles/dlrlib.dir/group/tate_group.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/group/tate_group.cpp.o.d"
  "/root/repo/src/leakage/budget.cpp" "src/CMakeFiles/dlrlib.dir/leakage/budget.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/leakage/budget.cpp.o.d"
  "/root/repo/src/leakage/rates.cpp" "src/CMakeFiles/dlrlib.dir/leakage/rates.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/leakage/rates.cpp.o.d"
  "/root/repo/src/net/transcript.cpp" "src/CMakeFiles/dlrlib.dir/net/transcript.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/net/transcript.cpp.o.d"
  "/root/repo/src/telemetry/export.cpp" "src/CMakeFiles/dlrlib.dir/telemetry/export.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/telemetry/export.cpp.o.d"
  "/root/repo/src/telemetry/metrics.cpp" "src/CMakeFiles/dlrlib.dir/telemetry/metrics.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/telemetry/metrics.cpp.o.d"
  "/root/repo/src/telemetry/trace.cpp" "src/CMakeFiles/dlrlib.dir/telemetry/trace.cpp.o" "gcc" "src/CMakeFiles/dlrlib.dir/telemetry/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
