// Curve-group and pairing tests: group laws, parameter validation,
// bilinearity, non-degeneracy, and the distortion-map Tate pairing's
// structural properties, on both presets.
#include <gtest/gtest.h>

#include "group/tate_group.hpp"

namespace dlr::pairing {
namespace {

using crypto::Rng;

// ---- parameter structure (validates the hardcoded presets) ---------------------

TEST(PairingParamsTest, SS256Structure) {
  const auto ctx = make_ss256();
  EXPECT_EQ(ctx->fq().modulus().bit_length(), 255u);
  EXPECT_EQ(ctx->order().bit_length(), 64u);
  EXPECT_EQ(ctx->fq().modulus().limb[0] & 3, 3u);  // q == 3 mod 4
}

TEST(PairingParamsTest, SS512Structure) {
  const auto ctx = make_ss512();
  EXPECT_EQ(ctx->fq().modulus().bit_length(), 512u);
  EXPECT_EQ(ctx->order().bit_length(), 160u);
  EXPECT_EQ(ctx->fq().modulus().limb[0] & 3, 3u);
}

template <std::size_t LQ, std::size_t LR>
void check_order_prime(const PairingCtx<LQ, LR>& ctx) {
  // Fermat test with several bases is ample for fixed, pre-vetted constants.
  const auto r = ctx.order();
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull}) {
    EXPECT_EQ(mpint::powmod_slow(mpint::UInt<LR>::from_u64(a),
                                 r - mpint::UInt<LR>::from_u64(1), r),
              mpint::mod(mpint::UInt<LR>::from_u64(1), r));
  }
}

TEST(PairingParamsTest, OrdersPassFermat) {
  check_order_prime(*make_ss256());
  check_order_prime(*make_ss512());
}

TEST(PairingParamsTest, SS1024StructureAndBilinearity) {
  const auto ctx = make_ss1024();
  EXPECT_EQ(ctx->fq().modulus().bit_length(), 1024u);
  EXPECT_EQ(ctx->order().bit_length(), 256u);
  EXPECT_EQ(ctx->fq().modulus().limb[0] & 3, 3u);
  check_order_prime(*ctx);
  // One bilinearity spot check (each SS1024 pairing costs ~10 ms).
  Rng rng(310);
  field::FpCtx<4> zr(ctx->order());
  const auto p = ctx->random_point(rng);
  const auto q = ctx->random_point(rng);
  const auto a = zr.random_uint(rng);
  EXPECT_TRUE(ctx->fq2().eq(ctx->pair(ctx->curve().mul(p, a), q),
                            ctx->fq2().pow(ctx->pair(p, q), a)));
}

TEST(PairingParamsTest, BadCofactorRejected) {
  const auto good = make_ss256();
  auto h = good->cofactor();
  h.limb[0] ^= 2;
  EXPECT_THROW((PairingCtx<4, 1>{good->fq().modulus(), good->order(), h, "bad"}),
               std::invalid_argument);
}

// ---- curve group laws ----------------------------------------------------------

template <std::size_t LQ, std::size_t LR>
void check_group_laws(const PairingCtx<LQ, LR>& ctx, std::uint64_t seed, int iters) {
  Rng rng(seed);
  const auto& curve = ctx.curve();
  for (int i = 0; i < iters; ++i) {
    const auto p = ctx.random_point(rng);
    const auto q = ctx.random_point(rng);
    const auto r = ctx.random_point(rng);
    ASSERT_TRUE(curve.is_on_curve(p));
    // Commutativity and associativity.
    EXPECT_EQ(curve.add(p, q), curve.add(q, p));
    EXPECT_EQ(curve.add(curve.add(p, q), r), curve.add(p, curve.add(q, r)));
    // Identity and inverse.
    EXPECT_EQ(curve.add(p, curve.infinity()), p);
    EXPECT_TRUE(curve.add(p, curve.neg(p)).inf);
    // Doubling consistency: P + P via generic add == [2]P.
    EXPECT_EQ(curve.add(p, p), curve.mul(p, mpint::UInt<1>::from_u64(2)));
  }
}

TEST(CurveTest, GroupLawsSS256) { check_group_laws(*make_ss256(), 300, 20); }
TEST(CurveTest, GroupLawsSS512) { check_group_laws(*make_ss512(), 301, 4); }

TEST(CurveTest, ScalarMulMatchesRepeatedAdd) {
  const auto ctx = make_ss256();
  Rng rng(302);
  const auto p = ctx->random_point(rng);
  auto acc = ctx->curve().infinity();
  for (std::uint64_t k = 0; k < 17; ++k) {
    EXPECT_EQ(acc, ctx->curve().mul(p, mpint::UInt<1>::from_u64(k))) << "k=" << k;
    acc = ctx->curve().add(acc, p);
  }
}

TEST(CurveTest, GeneratorHasOrderR) {
  for (int preset = 0; preset < 2; ++preset) {
    if (preset == 0) {
      const auto ctx = make_ss256();
      EXPECT_FALSE(ctx->generator().inf);
      EXPECT_TRUE(ctx->curve().mul(ctx->generator(), ctx->order()).inf);
    } else {
      const auto ctx = make_ss512();
      EXPECT_FALSE(ctx->generator().inf);
      EXPECT_TRUE(ctx->curve().mul(ctx->generator(), ctx->order()).inf);
    }
  }
}

TEST(CurveTest, RandomPointsInSubgroup) {
  const auto ctx = make_ss256();
  Rng rng(303);
  for (int i = 0; i < 10; ++i) {
    const auto p = ctx->random_point(rng);
    EXPECT_TRUE(ctx->in_group(p));
  }
}

TEST(CurveTest, HashToPointDeterministicAndValid) {
  const auto ctx = make_ss256();
  const Bytes d1{'a', 'b'};
  const Bytes d2{'a', 'c'};
  const auto p1 = ctx->hash_to_point(d1);
  const auto p1b = ctx->hash_to_point(d1);
  const auto p2 = ctx->hash_to_point(d2);
  EXPECT_EQ(p1, p1b);
  EXPECT_NE(p1, p2);
  EXPECT_TRUE(ctx->in_group(p1));
}

TEST(CurveTest, LiftXRejectsNonResidue) {
  const auto ctx = make_ss256();
  Rng rng(304);
  int hits = 0, misses = 0;
  for (int i = 0; i < 60; ++i) {
    const auto x = ctx->fq().random(rng);
    if (ctx->curve().lift_x(x, false))
      ++hits;
    else
      ++misses;
  }
  EXPECT_GT(hits, 10);
  EXPECT_GT(misses, 10);
}

// ---- the pairing itself -----------------------------------------------------------

template <std::size_t LQ, std::size_t LR>
void check_bilinearity(const PairingCtx<LQ, LR>& ctx, std::uint64_t seed, int iters) {
  Rng rng(seed);
  const auto& f2 = ctx.fq2();
  field::FpCtx<LR> zr(ctx.order());
  for (int i = 0; i < iters; ++i) {
    const auto p = ctx.random_point(rng);
    const auto q = ctx.random_point(rng);
    const auto a = zr.random_uint(rng);
    const auto b = zr.random_uint(rng);
    // e(aP, bQ) == e(P, Q)^(ab)
    const auto lhs = ctx.pair(ctx.curve().mul(p, a), ctx.curve().mul(q, b));
    const auto ab = zr.to_uint(zr.mul(zr.from_uint(a), zr.from_uint(b)));
    const auto rhs = f2.pow(ctx.pair(p, q), ab);
    EXPECT_TRUE(f2.eq(lhs, rhs)) << "iteration " << i;
    // e(P+Q, R) == e(P, R) * e(Q, R)
    const auto r = ctx.random_point(rng);
    EXPECT_TRUE(f2.eq(ctx.pair(ctx.curve().add(p, q), r),
                      f2.mul(ctx.pair(p, r), ctx.pair(q, r))));
  }
}

TEST(PairingTest, BilinearitySS256) { check_bilinearity(*make_ss256(), 400, 8); }
TEST(PairingTest, BilinearitySS512) { check_bilinearity(*make_ss512(), 401, 2); }

TEST(PairingTest, NonDegenerate) {
  const auto c1 = make_ss256();
  EXPECT_FALSE(c1->fq2().eq(c1->gt_generator(), c1->fq2().one()));
  const auto c2 = make_ss512();
  EXPECT_FALSE(c2->fq2().eq(c2->gt_generator(), c2->fq2().one()));
}

TEST(PairingTest, Symmetric) {
  const auto ctx = make_ss256();
  Rng rng(402);
  const auto p = ctx->random_point(rng);
  const auto q = ctx->random_point(rng);
  EXPECT_TRUE(ctx->fq2().eq(ctx->pair(p, q), ctx->pair(q, p)));
}

TEST(PairingTest, InfinityPairsToOne) {
  const auto ctx = make_ss256();
  Rng rng(403);
  const auto p = ctx->random_point(rng);
  EXPECT_TRUE(ctx->fq2().eq(ctx->pair(p, ctx->curve().infinity()), ctx->fq2().one()));
  EXPECT_TRUE(ctx->fq2().eq(ctx->pair(ctx->curve().infinity(), p), ctx->fq2().one()));
}

TEST(PairingTest, GtElementsHaveOrderR) {
  const auto ctx = make_ss256();
  Rng rng(404);
  const auto& f2 = ctx->fq2();
  for (int i = 0; i < 5; ++i) {
    const auto z = ctx->random_gt(rng);
    EXPECT_TRUE(f2.eq(f2.pow(z, ctx->order()), f2.one()));
    // norm 1 => inverse is conjugate
    EXPECT_TRUE(f2.eq(f2.mul(z, ctx->gt_inv(z)), f2.one()));
  }
}

TEST(PairingTest, GtRandomIsNotConstant) {
  const auto ctx = make_ss256();
  Rng rng(405);
  const auto a = ctx->random_gt(rng);
  const auto b = ctx->random_gt(rng);
  EXPECT_FALSE(ctx->fq2().eq(a, b));
}

TEST(PairingTest, GtFromFieldLandsInSubgroup) {
  // x^((q-1)h) must land in the order-r subgroup for every nonzero x, and be
  // fixed by a second application up to the exponentiation structure.
  const auto ctx = make_ss256();
  Rng rng(407);
  const auto& f2 = ctx->fq2();
  for (int i = 0; i < 10; ++i) {
    const auto x = f2.random_nonzero(rng);
    const auto y = ctx->gt_from_field(x);
    EXPECT_TRUE(f2.eq(f2.pow(y, ctx->order()), f2.one()));
    EXPECT_TRUE(ctx->fq().eq(f2.norm(y), ctx->fq().one()));  // norm-1 circle
  }
}

TEST(PairingTest, MillerValueNeedsFinalExponentiation) {
  // The raw Miller value is NOT in the subgroup (overwhelmingly); the final
  // exponentiation is what produces well-defined pairing values.
  const auto ctx = make_ss256();
  Rng rng(408);
  const auto p = ctx->random_point(rng);
  const auto q = ctx->random_point(rng);
  const auto raw = ctx->miller(p, q);
  const auto& f2 = ctx->fq2();
  EXPECT_FALSE(f2.eq(f2.pow(raw, ctx->order()), f2.one()));
  EXPECT_TRUE(f2.eq(ctx->final_exp(raw), ctx->pair(p, q)));
}

TEST(PairingTest, PairingKillsWholeGroupRelation) {
  // e(P, Q)^r == 1 for all P, Q.
  const auto ctx = make_ss256();
  Rng rng(406);
  const auto p = ctx->random_point(rng);
  const auto q = ctx->random_point(rng);
  EXPECT_TRUE(ctx->fq2().eq(ctx->fq2().pow(ctx->pair(p, q), ctx->order()), ctx->fq2().one()));
}

}  // namespace
}  // namespace dlr::pairing
