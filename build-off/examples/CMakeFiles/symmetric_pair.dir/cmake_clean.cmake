file(REMOVE_RECURSE
  "CMakeFiles/symmetric_pair.dir/symmetric_pair.cpp.o"
  "CMakeFiles/symmetric_pair.dir/symmetric_pair.cpp.o.d"
  "symmetric_pair"
  "symmetric_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetric_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
