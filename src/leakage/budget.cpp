#include "leakage/budget.hpp"

#include "crypto/sha256.hpp"

namespace dlr::leakage {

LeakageOutput eval_leakage(const LeakageFn& fn, const Bytes& secret, const Bytes& pub,
                           std::size_t max_bits) {
  if (!fn) return {};
  Bytes out = fn(secret, pub);
  const std::size_t max_bytes = (max_bits + 7) / 8;
  if (out.size() > max_bytes)
    throw std::length_error("leakage function exceeded its declared output length");
  return LeakageOutput{std::move(out), max_bits};
}

Bytes extract_bits(const Bytes& src, std::size_t bit_offset, std::size_t nbits) {
  Bytes out((nbits + 7) / 8, 0);
  if (src.empty()) return out;
  const std::size_t total = 8 * src.size();
  for (std::size_t i = 0; i < nbits; ++i) {
    const std::size_t pos = (bit_offset + i) % total;
    const bool bit = (src[pos / 8] >> (pos % 8)) & 1;
    if (bit) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return out;
}

LeakageFn window_bits(std::size_t offset, std::size_t bits) {
  return [offset, bits](const Bytes& secret, const Bytes&) {
    return extract_bits(secret, offset, bits);
  };
}

LeakageFn no_leakage() {
  return [](const Bytes&, const Bytes&) { return Bytes{}; };
}

LeakageFn hashed_bits(std::size_t bits) {
  return [bits](const Bytes& secret, const Bytes& pub) {
    ByteWriter w;
    w.blob(secret);
    w.blob(pub);
    const auto d = crypto::Sha256::hash(w.bytes());
    return extract_bits(Bytes(d.begin(), d.end()), 0, bits);
  };
}

}  // namespace dlr::leakage
