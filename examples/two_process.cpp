// Actually-distributed execution: P1 and P2 live in two separate OS
// processes connected only by a socketpair -- there is no shared address
// space that could accidentally hold both shares, which is the physical
// premise of the whole paper.
//
// The wire is the src/transport/ stack: CRC-checked length-prefixed frames
// (hard cap transport::kMaxFrameBytes -- a corrupt or hostile length prefix
// is a typed TransportError, never an unchecked allocation, never abort()),
// session-multiplexed over the socketpair, surfaced to the protocol code as
// a net::Channel (transport::MuxChannel), so the party objects run exactly
// the code the in-process driver runs.
//
// Both processes run with wire tracing on (DESIGN.md §10): each request
// frame carries the sender's (trace id, span id), the child parents its
// spans under the received context, and before exiting it ships its span
// set back over the same channel. The parent merges both processes into
// two_process_trace.json -- one Chrome/Perfetto trace in which each period's
// decryption is a single tree spanning both pid lanes.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>

#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"
#include "telemetry/export.hpp"
#include "telemetry/trace.hpp"
#include "transport/channel.hpp"

namespace {

using namespace dlr;
using GG = group::TateSS256;

constexpr std::uint32_t kProtocolSession = 1;
constexpr int kPeriods = 3;

int run_p2(transport::Socket sock, schemes::DlrParty2<GG> p2) {
  transport::SessionMux mux(std::make_shared<transport::FramedConn>(
      std::move(sock), transport::TransportOptions{}));
  const auto session = mux.open_with_id(kProtocolSession);
  transport::MuxChannel ch(*session, net::DeviceId::P2, /*wire_trace=*/true);
  try {
    for (int period = 0; period < kPeriods; ++period) {
      {
        const Bytes& dec1 = ch.recv();
        // Adopt the request's trace context: this span (and the crypto spans
        // dec_respond opens beneath it) joins the parent process's tree.
        telemetry::ScopedSpan span("p2.dec", ch.last_trace());
        ch.send(net::DeviceId::P2, "dec.r2", p2.dec_respond(dec1));
      }
      {
        const Bytes& ref1 = ch.recv();
        telemetry::ScopedSpan span("p2.ref", ch.last_trace());
        ch.send(net::DeviceId::P2, "ref.r2", p2.ref_respond(ref1));
      }
    }
    // Ship this process's spans to the parent for the merged trace.
    const std::string jsonl = telemetry::to_jsonl(telemetry::ExportMeta{"two_process.p2"},
                                                  telemetry::Snapshot{},
                                                  telemetry::Tracer::global().spans());
    ch.send(net::DeviceId::P2, "trace.export", Bytes(jsonl.begin(), jsonl.end()));
  } catch (const transport::TransportError& e) {
    std::fprintf(stderr, "P2: transport error [%s]: %s\n",
                 transport::errc_name(e.code()), e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  const GG gg = group::make_tate_ss256();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), 64);

  // Trusted-dealer keygen in the parent, before the fork; the parent will
  // drop sk2 (it only moves into the child), the child never sees sk1.
  crypto::Rng gen_rng(20120716);
  auto kg = schemes::DlrCore<GG>::gen(gg, prm, gen_rng);

  auto [parent_sock, child_sock] = transport::Socket::pair();

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }

  if (pid == 0) {
    // ---- child: device P2 (e.g. the smart card) ------------------------------
    parent_sock.close();
    schemes::DlrParty2<GG> p2(gg, prm, std::move(kg.sk2), crypto::Rng(2));
    _exit(run_p2(std::move(child_sock), std::move(p2)));
  }

  // ---- parent: device P1 (the main processor) + the encrypting user ---------
  child_sock.close();
  schemes::DlrParty1<GG> p1(gg, prm, kg.pk, std::move(kg.sk1), schemes::P1Mode::Plain,
                            crypto::Rng(1));
  crypto::Rng rng = crypto::Rng::from_os_entropy();
  bool all_ok = true;
  {
    transport::SessionMux mux(std::make_shared<transport::FramedConn>(
        std::move(parent_sock), transport::TransportOptions{}));
    const auto session = mux.open_with_id(kProtocolSession);
    transport::MuxChannel ch(*session, net::DeviceId::P1, /*wire_trace=*/true);
    try {
      for (int period = 0; period < kPeriods; ++period) {
        const auto m = gg.gt_random(rng);
        const auto c = schemes::DlrCore<GG>::enc(gg, kg.pk, m, rng);
        {
          // Root span of this period's trace; the frame below carries its
          // context, so the child's p2.dec subtree lands underneath it.
          telemetry::ScopedSpan span("p1.dec");
          ch.send(net::DeviceId::P1, "dec.r1", p1.dec_round1(c));
          const auto out = p1.dec_finish(ch.recv());
          const bool ok = gg.gt_eq(out, m);
          all_ok = all_ok && ok;
          std::printf("period %d: cross-process decryption %s\n", period,
                      ok ? "CORRECT" : "WRONG");
        }
        {
          telemetry::ScopedSpan span("p1.ref");
          ch.send(net::DeviceId::P1, "ref.r1", p1.ref_round1());
          p1.ref_finish(ch.recv());
        }
        std::printf("period %d: cross-process refresh done\n", period);
      }
      // The child's parting message is its span set; merge into one trace.
      const Bytes& remote = ch.recv();
      const auto p2_spans =
          telemetry::import_jsonl(std::string(remote.begin(), remote.end())).spans;
      const auto p1_spans = telemetry::Tracer::global().spans();
      std::set<std::uint64_t> p1_traces, shared;
      for (const auto& s : p1_spans) p1_traces.insert(s.trace_id);
      for (const auto& s : p2_spans)
        if (p1_traces.count(s.trace_id)) shared.insert(s.trace_id);
      const std::string trace = telemetry::to_chrome_trace(
          {{1, "P1 (main processor)", p1_spans}, {2, "P2 (auxiliary device)", p2_spans}});
      const char* path = "two_process_trace.json";
      std::ofstream(path, std::ios::binary) << trace;
      std::printf(
          "merged Chrome trace: %zu P1 spans + %zu P2 spans, %zu cross-process "
          "trace(s) -> %s\n",
          p1_spans.size(), p2_spans.size(), shared.size(), path);
    } catch (const transport::TransportError& e) {
      std::fprintf(stderr, "P1: transport error [%s]: %s\n",
                   transport::errc_name(e.code()), e.what());
      all_ok = false;
    }
    std::printf("public transcript: %zu messages, %zu bytes over the wire\n",
                ch.transcript().count(), ch.transcript().total_bytes());
  }
  int status = 0;
  waitpid(pid, &status, 0);
  std::printf("child exited %s; shares never shared an address space.\n",
              (WIFEXITED(status) && WEXITSTATUS(status) == 0) ? "cleanly" : "ABNORMALLY");
  return all_ok && WIFEXITED(status) && WEXITSTATUS(status) == 0 ? 0 : 1;
}
