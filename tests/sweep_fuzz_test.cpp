// Parameterized sweeps over group orders and a mutation "fuzz" pass over
// protocol messages: whatever bytes arrive, the parties either process them
// or throw a typed exception -- never crash, never accept-and-corrupt state.
#include <gtest/gtest.h>

#include "group/mock_group.hpp"
#include "group/tate_group.hpp"
#include "mpint/primality.hpp"
#include "schemes/dlr.hpp"

namespace dlr::schemes {
namespace {

using crypto::Rng;
using group::MockGroup;

// ---- protocol correctness across group orders ------------------------------------

class GroupOrderSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupOrderSweep, FullLifecycleCorrect) {
  const MockGroup gg(GetParam());
  const auto prm = DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  for (const auto mode : {P1Mode::Plain, P1Mode::Compact}) {
    auto sys = DlrSystem<MockGroup>::create(gg, prm, mode, 6000 + GetParam());
    Rng rng(6001);
    for (int t = 0; t < 3; ++t) {
      const auto m = gg.gt_random(rng);
      const auto c = DlrCore<MockGroup>::enc(gg, sys.pk(), m, rng);
      ASSERT_TRUE(gg.gt_eq(sys.decrypt(c), m)) << "order " << GetParam();
      sys.refresh();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GroupOrderSweep,
                         ::testing::Values(5ull, 101ull, 1009ull, 65537ull, 2147483647ull,
                                           (1ull << 61) - 1));

// ---- lambda x order interaction sweep ----------------------------------------------

struct SweepPoint {
  std::uint64_t order;
  std::size_t lambda;
};

class LambdaOrderSweep : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(LambdaOrderSweep, ParamsConsistentAndProtocolCorrect) {
  const auto [order, lambda] = GetParam();
  const MockGroup gg(order);
  const auto prm = DlrParams::derive(gg.scalar_bits(), lambda);
  EXPECT_GE(prm.kappa, 2u);
  EXPECT_GE(prm.ell, 7 + 3 * prm.kappa);
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 6100 + lambda);
  Rng rng(6101);
  const auto m = gg.gt_random(rng);
  const auto c = DlrCore<MockGroup>::enc(gg, sys.pk(), m, rng);
  EXPECT_TRUE(gg.gt_eq(sys.decrypt(c), m));
}

INSTANTIATE_TEST_SUITE_P(Points, LambdaOrderSweep,
                         ::testing::Values(SweepPoint{1009, 1}, SweepPoint{1009, 100},
                                           SweepPoint{65537, 17}, SweepPoint{65537, 333},
                                           SweepPoint{(1ull << 61) - 1, 61},
                                           SweepPoint{(1ull << 61) - 1, 1000}));

// ---- mutation fuzz over protocol messages -------------------------------------------

void mutate(Bytes& b, Rng& rng) {
  if (b.empty()) return;
  switch (rng.below(4)) {
    case 0:  // bit flip
      b[rng.below(b.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 1:  // truncate
      b.resize(rng.below(b.size()));
      break;
    case 2:  // extend with junk
      for (int i = 0; i < 9; ++i) b.push_back(static_cast<std::uint8_t>(rng.u64()));
      break;
    default:  // stomp a window
      for (std::size_t i = b.size() / 3; i < b.size() / 2; ++i)
        b[i] = static_cast<std::uint8_t>(rng.u64());
      break;
  }
}

TEST(ProtocolFuzzTest, P2SurvivesArbitraryDecMessages) {
  const MockGroup gg = group::make_mock();
  const auto prm = DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 6200);
  Rng rng(6201);
  const auto c = DlrCore<MockGroup>::enc(gg, sys.pk(), gg.gt_random(rng), rng);
  const auto good = sys.p1().dec_round1(c);
  for (int i = 0; i < 300; ++i) {
    Bytes bad = good;
    mutate(bad, rng);
    try {
      (void)sys.p2().dec_respond(bad);
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }  // anything else (or a crash) fails the test
  }
}

TEST(ProtocolFuzzTest, P2SurvivesArbitraryRefMessages) {
  const MockGroup gg = group::make_mock();
  const auto prm = DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 6202);
  Rng rng(6203);
  const auto good = sys.p1().ref_round1();
  const auto sk2_before = sys.p2().share().s;
  for (int i = 0; i < 300; ++i) {
    Bytes bad = good;
    mutate(bad, rng);
    try {
      (void)sys.p2().ref_respond(bad);
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
  // NOTE: a *successfully parsed* mutated refresh message does rotate P2's
  // share (the model trusts the devices; authenticity is out of scope, see
  // Definition 3.1 discussion) -- but a rejected one must not.
  Bytes truncated = good;
  truncated.resize(4);
  const auto sk2_mid = sys.p2().share().s;
  EXPECT_THROW((void)sys.p2().ref_respond(truncated), std::out_of_range);
  EXPECT_EQ(sys.p2().share().s, sk2_mid);
  (void)sk2_before;
}

TEST(ProtocolFuzzTest, P1SurvivesArbitraryReplies) {
  const MockGroup gg = group::make_mock();
  const auto prm = DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 6204);
  Rng rng(6205);
  const auto c = DlrCore<MockGroup>::enc(gg, sys.pk(), gg.gt_random(rng), rng);
  const auto msg1 = sys.p1().dec_round1(c);
  const auto good = sys.p2().dec_respond(msg1);
  for (int i = 0; i < 300; ++i) {
    Bytes bad = good;
    mutate(bad, rng);
    try {
      (void)sys.p1().dec_finish(bad);
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

// ---- primality module ------------------------------------------------------------------

TEST(PrimalityTest, AgreesWithU64Oracle) {
  Rng rng(6300);
  for (std::uint64_t n : {2ull, 3ull, 4ull, 561ull, 1009ull, 1ull << 32, 4294967311ull,
                          (1ull << 61) - 1}) {
    EXPECT_EQ(mpint::is_probable_prime(mpint::UInt<2>::from_u64(n), rng),
              group::is_prime_u64(n))
        << n;
  }
}

TEST(PrimalityTest, ValidatesCursePresetPrimes) {
  Rng rng(6301);
  EXPECT_TRUE(mpint::is_probable_prime(pairing::make_ss256()->fq().modulus(), rng, 16));
  EXPECT_TRUE(mpint::is_probable_prime(pairing::make_ss256()->order(), rng, 16));
  EXPECT_TRUE(mpint::is_probable_prime(pairing::make_ss512()->order(), rng, 8));
}

TEST(PrimalityTest, ParamSearchProducesValidPairing) {
  // A small fresh search end-to-end: the found parameters must build a
  // working pairing context.
  const auto p = mpint::find_type_a_params<4, 1>(160, 40, 99);
  pairing::PairingCtx<4, 1> ctx(p.q, p.r, p.h, "searched");
  EXPECT_EQ(ctx.order().bit_length(), 40u);
  EXPECT_EQ(ctx.fq().modulus().bit_length(), 160u);
  crypto::Rng rng(6302);
  const auto a = ctx.random_point(rng);
  const auto b = ctx.random_point(rng);
  // bilinearity smoke: e(2a, b) == e(a, b)^2
  const auto two = mpint::UInt<1>::from_u64(2);
  EXPECT_TRUE(ctx.fq2().eq(ctx.pair(ctx.curve().mul(a, two), b),
                           ctx.fq2().sqr(ctx.pair(a, b))));
}

}  // namespace
}  // namespace dlr::schemes
