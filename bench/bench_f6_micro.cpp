// F6 -- substrate microbenchmarks (google-benchmark): field, curve, pairing,
// HPSKE, hash and RNG primitives on both curve presets. These are the cost
// constants every protocol-level number in T1/F2/F4/F5/F7 decomposes into.
//
// Also hosts the T4 pairing hot-path comparison: prepared-vs-plain pairing,
// norm-1 vs generic GT squaring, batch-affine vs generic comb-table build,
// and the headline pair_ct speedup (plain loop vs prepared+batched final
// exp), exported as bench.pair_ct.* gauges with `--json <path>`.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.hpp"
#include "group/fixed_pow.hpp"
#include "group/prepared.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"
#include "schemes/hpske.hpp"

namespace {

using namespace dlr;

template <class GG>
struct Fixture {
  GG gg;
  crypto::Rng rng{12345};
  typename GG::G p, q;
  typename GG::GT z;
  typename GG::Scalar s;

  explicit Fixture(GG g) : gg(std::move(g)) {
    p = gg.g_random(rng);
    q = gg.g_random(rng);
    z = gg.gt_random(rng);
    s = gg.sc_random(rng);
  }
};

Fixture<group::TateSS256>& f256() {
  static Fixture<group::TateSS256> f(group::make_tate_ss256());
  return f;
}
Fixture<group::TateSS512>& f512() {
  static Fixture<group::TateSS512> f(group::make_tate_ss512());
  return f;
}
Fixture<group::TateSS1024>& f1024() {
  static Fixture<group::TateSS1024> f(group::make_tate_ss1024());
  return f;
}

template <class F>
void bench_pairing(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.pair(f.p, f.q));
}
template <class F>
void bench_g_pow(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.g_pow(f.p, f.s));
}
template <class F>
void bench_gt_pow(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.gt_pow(f.z, f.s));
}
template <class F>
void bench_g_mul(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.g_mul(f.p, f.q));
}
template <class F>
void bench_g_random(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.g_random(f.rng));
}
template <class F>
void bench_gt_random(benchmark::State& state, F& f) {
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.gt_random(f.rng));
}
// Fixed-first-argument pairing: Miller precomputation hoisted out of the
// loop, each iteration is line-evaluation + norm-1 final exponentiation.
template <class F>
void bench_pairing_prepared(benchmark::State& state, F& f) {
  const auto pp = f.gg.prepare_pair(f.p);
  for (auto _ : state) benchmark::DoNotOptimize(pp.pair(f.q));
}
// Cyclotomic-style squaring of a norm-1 GT element vs the generic complex
// squaring (the inner op of every GT exponentiation chain).
template <class F>
void bench_gt_sqr_generic(benchmark::State& state, F& f) {
  const auto z = f.gg.pair(f.p, f.q);  // norm-1 by construction
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.ctx().fq2().sqr(z));
}
template <class F>
void bench_gt_sqr_norm1(benchmark::State& state, F& f) {
  const auto z = f.gg.pair(f.p, f.q);
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.ctx().fq2().sqr_norm1(z));
}
// Comb-table construction: Jacobian chain + ONE batch inversion vs one
// Fermat inversion per affine g_mul.
template <class F>
void bench_comb_table_native(benchmark::State& state, F& f) {
  const auto base = f.gg.g_gen();
  const std::size_t windows = (f.gg.scalar_bits() + 3) / 4;
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.g_comb_table(base, windows));
}
template <class F>
void bench_comb_table_generic(benchmark::State& state, F& f) {
  using GG = decltype(f.gg);
  const auto base = f.gg.g_gen();
  const std::size_t windows = (f.gg.scalar_bits() + 3) / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        group::detail::build_table_generic<GG, typename GG::G, group::detail::GOps<GG>>(
            f.gg, base, windows));
  }
}

template <class F>
void bench_hash_to_g(benchmark::State& state, F& f) {
  Bytes data{1, 2, 3, 4};
  std::uint32_t ctr = 0;
  for (auto _ : state) {
    data[0] = static_cast<std::uint8_t>(ctr++);
    benchmark::DoNotOptimize(f.gg.hash_to_g(data));
  }
}

void register_group_benches() {
  benchmark::RegisterBenchmark("ss256/pairing", [](benchmark::State& s) { bench_pairing(s, f256()); });
  benchmark::RegisterBenchmark("ss512/pairing", [](benchmark::State& s) { bench_pairing(s, f512()); });
  benchmark::RegisterBenchmark("ss1024/pairing", [](benchmark::State& s) { bench_pairing(s, f1024()); });
  benchmark::RegisterBenchmark("ss256/pairing_prepared", [](benchmark::State& s) { bench_pairing_prepared(s, f256()); });
  benchmark::RegisterBenchmark("ss512/pairing_prepared", [](benchmark::State& s) { bench_pairing_prepared(s, f512()); });
  benchmark::RegisterBenchmark("ss1024/pairing_prepared", [](benchmark::State& s) { bench_pairing_prepared(s, f1024()); });
  benchmark::RegisterBenchmark("ss256/gt_sqr_generic", [](benchmark::State& s) { bench_gt_sqr_generic(s, f256()); });
  benchmark::RegisterBenchmark("ss512/gt_sqr_generic", [](benchmark::State& s) { bench_gt_sqr_generic(s, f512()); });
  benchmark::RegisterBenchmark("ss256/gt_sqr_norm1", [](benchmark::State& s) { bench_gt_sqr_norm1(s, f256()); });
  benchmark::RegisterBenchmark("ss512/gt_sqr_norm1", [](benchmark::State& s) { bench_gt_sqr_norm1(s, f512()); });
  benchmark::RegisterBenchmark("ss256/comb_table_native", [](benchmark::State& s) { bench_comb_table_native(s, f256()); });
  benchmark::RegisterBenchmark("ss256/comb_table_generic", [](benchmark::State& s) { bench_comb_table_generic(s, f256()); });
  benchmark::RegisterBenchmark("ss1024/g_pow", [](benchmark::State& s) { bench_g_pow(s, f1024()); });
  benchmark::RegisterBenchmark("ss256/g_pow", [](benchmark::State& s) { bench_g_pow(s, f256()); });
  benchmark::RegisterBenchmark("ss512/g_pow", [](benchmark::State& s) { bench_g_pow(s, f512()); });
  benchmark::RegisterBenchmark("ss256/gt_pow", [](benchmark::State& s) { bench_gt_pow(s, f256()); });
  benchmark::RegisterBenchmark("ss512/gt_pow", [](benchmark::State& s) { bench_gt_pow(s, f512()); });
  benchmark::RegisterBenchmark("ss256/g_mul", [](benchmark::State& s) { bench_g_mul(s, f256()); });
  benchmark::RegisterBenchmark("ss512/g_mul", [](benchmark::State& s) { bench_g_mul(s, f512()); });
  benchmark::RegisterBenchmark("ss256/g_random", [](benchmark::State& s) { bench_g_random(s, f256()); });
  benchmark::RegisterBenchmark("ss512/g_random", [](benchmark::State& s) { bench_g_random(s, f512()); });
  benchmark::RegisterBenchmark("ss256/gt_random", [](benchmark::State& s) { bench_gt_random(s, f256()); });
  benchmark::RegisterBenchmark("ss256/hash_to_g", [](benchmark::State& s) { bench_hash_to_g(s, f256()); });
}

// Multi-exponentiation vs the naive product of powers (the Strauss
// interleaving used for every prod a_i^{s_i} in the protocols).
void bench_multi_pow(benchmark::State& state) {
  auto& f = f256();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<group::TateSS256::G> as;
  std::vector<group::TateSS256::Scalar> ss;
  for (std::size_t i = 0; i < n; ++i) {
    as.push_back(f.gg.g_random(f.rng));
    ss.push_back(f.gg.sc_random(f.rng));
  }
  for (auto _ : state) benchmark::DoNotOptimize(f.gg.g_multi_pow(as, ss));
}

void bench_naive_multi_pow(benchmark::State& state) {
  auto& f = f256();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<group::TateSS256::G> as;
  std::vector<group::TateSS256::Scalar> ss;
  for (std::size_t i = 0; i < n; ++i) {
    as.push_back(f.gg.g_random(f.rng));
    ss.push_back(f.gg.sc_random(f.rng));
  }
  for (auto _ : state) {
    auto acc = f.gg.g_id();
    for (std::size_t i = 0; i < n; ++i) acc = f.gg.g_mul(acc, f.gg.g_pow(as[i], ss[i]));
    benchmark::DoNotOptimize(acc);
  }
}

void bench_hpske_enc(benchmark::State& state) {
  auto& f = f256();
  schemes::HpskeG<group::TateSS256> h(f.gg, static_cast<std::size_t>(state.range(0)));
  const auto sk = h.gen(f.rng);
  for (auto _ : state) benchmark::DoNotOptimize(h.enc(sk, f.p, f.rng));
}

void bench_hpske_dec(benchmark::State& state) {
  auto& f = f256();
  schemes::HpskeG<group::TateSS256> h(f.gg, static_cast<std::size_t>(state.range(0)));
  const auto sk = h.gen(f.rng);
  const auto ct = h.enc(sk, f.p, f.rng);
  for (auto _ : state) benchmark::DoNotOptimize(h.dec(sk, ct));
}

// Fixed-base (comb-table) exponentiation vs the generic wNAF path, and the
// precomputed encryption built on it.
void bench_fixed_pow_g(benchmark::State& state) {
  auto& f = f256();
  group::FixedPowG<group::TateSS256> tbl(f.gg, f.gg.g_gen());
  for (auto _ : state) benchmark::DoNotOptimize(tbl.pow(f.gg, f.gg.sc_random(f.rng)));
}

void bench_enc_vs_precomp(benchmark::State& state) {
  auto& f = f256();
  using Core = dlr::schemes::DlrCore<group::TateSS256>;
  const auto prm = dlr::schemes::DlrParams::derive(f.gg.scalar_bits(), 64);
  auto sys = dlr::schemes::DlrSystem<group::TateSS256>::create(
      f.gg, prm, dlr::schemes::P1Mode::Plain, 606);
  const Core::PkTable tbl(f.gg, sys.pk());
  const auto m = f.gg.gt_random(f.rng);
  if (state.range(0) == 0) {
    for (auto _ : state) benchmark::DoNotOptimize(Core::enc(f.gg, sys.pk(), m, f.rng));
  } else {
    for (auto _ : state) benchmark::DoNotOptimize(Core::enc_precomp(f.gg, tbl, m, f.rng));
  }
}

void bench_sha256_1k(benchmark::State& state) {
  crypto::Rng rng(1);
  const Bytes data = rng.bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}

void bench_chacha_rng_1k(benchmark::State& state) {
  crypto::Rng rng(2);
  Bytes buf(1024);
  for (auto _ : state) {
    rng.fill(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}

// The acceptance-criterion number: pair_ct on SS512 with l = 10 (11
// pairings sharing the first argument), plain per-coordinate gg.pair loop
// vs one prepared Miller pass + batched norm-1 final exponentiations.
// Single-threaded by construction (no par_for in pair_ct). Prepared timing
// includes the Miller precomputation, so the ratio is end-to-end honest.
void pair_ct_speedup_report() {
  using GG = group::TateSS512;
  using Core = dlr::schemes::DlrCore<GG>;
  auto& f = f512();
  constexpr std::size_t kEll = 10;
  typename Core::CtG ct;
  ct.b.reserve(kEll);
  for (std::size_t i = 0; i < kEll; ++i) ct.b.push_back(f.gg.g_random(f.rng));
  ct.c0 = f.gg.g_random(f.rng);
  const auto a = f.gg.g_random(f.rng);

  const auto plain = bench::time_stats(
      [&] {
        typename Core::CtT r;
        r.b.reserve(kEll);
        for (const auto& bi : ct.b) r.b.push_back(f.gg.pair(a, bi));
        r.c0 = f.gg.pair(a, ct.c0);
        bench::sink(r);
      },
      5);
  const auto prepared = bench::time_stats(
      [&] {
        const group::PreparedPair<GG> pa(f.gg, a);
        bench::sink(Core::pair_ct(f.gg, pa, ct));
      },
      5);
  const double speedup = prepared.med > 0 ? plain.med / prepared.med : 0;

  std::printf("\npair_ct ss512 l=%zu (11 pairings, single-threaded)\n", kEll);
  bench::Table tbl({"variant", "min ms", "med ms", "max ms"});
  tbl.row({"plain pair loop", bench::fmt(plain.min), bench::fmt(plain.med),
           bench::fmt(plain.max)});
  tbl.row({"prepared+batched", bench::fmt(prepared.min), bench::fmt(prepared.med),
           bench::fmt(prepared.max)});
  tbl.print();
  std::printf("speedup: %.2fx\n", speedup);

  auto& reg = telemetry::Registry::global();
  reg.gauge("bench.pair_ct.plain_ms", {{"preset", "ss512"}}).set(plain.med);
  reg.gauge("bench.pair_ct.prepared_ms", {{"preset", "ss512"}}).set(prepared.med);
  reg.gauge("bench.pair_ct.speedup", {{"preset", "ss512"}}).set(speedup);
}

/// Remove `--json [path]` / `--json=path` so benchmark::Initialize (which
/// rejects unknown flags) never sees it.
int strip_json_flag(int argc, char** argv) {
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      ++i;  // skip the path operand too
      continue;
    }
    if (a.rfind("--json=", 0) == 0) continue;
    argv[w++] = argv[i];
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = dlr::bench::json_flag(argc, argv);
  argc = strip_json_flag(argc, argv);
  register_group_benches();
  benchmark::RegisterBenchmark("ss256/multi_pow", bench_multi_pow)->Arg(4)->Arg(21);
  benchmark::RegisterBenchmark("ss256/naive_multi_pow", bench_naive_multi_pow)
      ->Arg(4)
      ->Arg(21);
  benchmark::RegisterBenchmark("ss256/fixed_pow_g", bench_fixed_pow_g);
  benchmark::RegisterBenchmark("ss256/dlr_enc", bench_enc_vs_precomp)->Arg(0);
  benchmark::RegisterBenchmark("ss256/dlr_enc_precomp", bench_enc_vs_precomp)->Arg(1);
  benchmark::RegisterBenchmark("ss256/hpske_enc", bench_hpske_enc)->Arg(4)->Arg(8);
  benchmark::RegisterBenchmark("ss256/hpske_dec", bench_hpske_dec)->Arg(4)->Arg(8);
  benchmark::RegisterBenchmark("sha256/1KiB", bench_sha256_1k);
  benchmark::RegisterBenchmark("chacha_rng/1KiB", bench_chacha_rng_1k);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  pair_ct_speedup_report();
  if (!json_path.empty()) {
    if (dlr::telemetry::export_global_jsonl(json_path, "F6"))
      std::printf("telemetry: wrote %s\n", json_path.c_str());
    else
      std::fprintf(stderr, "telemetry: FAILED to write %s\n", json_path.c_str());
  }
  return 0;
}
