// Wire schema of the multi-tenant keystore service (DESIGN.md §11), layered
// on the svc.* conventions of service/protocol.hpp: one Data frame per
// request on its own mux session, answered by one `*.ok` Data frame or one
// svc.err Error frame (the keystore reuses ServiceErrc, adding WrongShard
// and UnknownKey).
//
// Every ks.* request starts with the key address, then mirrors its svc.*
// counterpart:
//
//   ks.dec         body = str tenant | str key | u64 epoch | blob dec.r1 [| u32 deadline_ms]
//     -> ks.dec.ok body = blob dec.r2 | u64 spent_millibits | u64 budget_millibits
//   ks.ref         body = str tenant | str key | u64 epoch | blob ref.r1
//     -> ks.ref.ok body = blob ref.r2
//   ks.ref.commit  body = str tenant | str key | u64 epoch | blob digest
//     -> ks.ref.commit.ok body = u64 new_epoch
//   ks.hello       body = str tenant | str key | <svc.hello body>
//     -> ks.hello.ok      body = <svc.hello.ok body>
//   ks.put         body = str tenant | str key | blob sk2_ser
//     -> ks.put.ok        body = (empty)
//   ks.map         body = (empty)
//     -> ks.map.ok        body = ShardMap::encode()
//
// ks.dec.ok piggybacks the server's leakage accounting (spent/budget in
// MILLIbits so fractional per-op charges stay integral on the wire): the
// client fleet mirrors it into its own refresh scheduler without a separate
// polling route. ks.hello is PER KEY -- reconnect reconciliation only runs
// for keys with a pending refresh, never as a 10k-key blanket exchange.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "crypto/bytes.hpp"
#include "keystore/key_id.hpp"
#include "service/protocol.hpp"

namespace dlr::keystore {

inline constexpr char kKsDec[] = "ks.dec";
inline constexpr char kKsDecOk[] = "ks.dec.ok";
inline constexpr char kKsRef[] = "ks.ref";
inline constexpr char kKsRefOk[] = "ks.ref.ok";
inline constexpr char kKsRefCommit[] = "ks.ref.commit";
inline constexpr char kKsRefCommitOk[] = "ks.ref.commit.ok";
inline constexpr char kKsHello[] = "ks.hello";
inline constexpr char kKsHelloOk[] = "ks.hello.ok";
inline constexpr char kKsPut[] = "ks.put";
inline constexpr char kKsPutOk[] = "ks.put.ok";
inline constexpr char kKsMap[] = "ks.map";
inline constexpr char kKsMapOk[] = "ks.map.ok";

struct KsRequest {
  KeyId id;
  std::uint64_t epoch = 0;
  Bytes payload;  // dec.r1 / ref.r1 / commit digest
  /// Remaining client deadline budget at send time; 0 = none. Trailing and
  /// optional exactly like the svc.* request field -- senders stamp it only
  /// after a >= kWireDeadlineVersion hello.
  std::uint32_t deadline_ms = 0;
};

[[nodiscard]] inline Bytes encode_ks_request(const KeyId& id, std::uint64_t epoch,
                                             const Bytes& payload,
                                             std::uint32_t deadline_ms = 0) {
  ByteWriter w;
  w.str(id.tenant);
  w.str(id.key);
  w.u64(epoch);
  w.blob(payload);
  if (deadline_ms != 0) w.u32(deadline_ms);
  return w.take();
}

[[nodiscard]] inline KsRequest decode_ks_request(const Bytes& body) {
  ByteReader r(body);
  KsRequest req;
  req.id.tenant = r.str();
  req.id.key = r.str();
  req.epoch = r.u64();
  req.payload = r.blob();
  if (!r.done()) req.deadline_ms = r.u32();
  if (!r.done()) throw std::invalid_argument("ks request: trailing bytes");
  return req;
}

struct KsDecOk {
  Bytes reply;
  std::uint64_t spent_millibits = 0;
  std::uint64_t budget_millibits = 0;
};

[[nodiscard]] inline Bytes encode_ks_dec_ok(const KsDecOk& ok) {
  ByteWriter w;
  w.blob(ok.reply);
  w.u64(ok.spent_millibits);
  w.u64(ok.budget_millibits);
  return w.take();
}

[[nodiscard]] inline KsDecOk decode_ks_dec_ok(const Bytes& body) {
  ByteReader r(body);
  KsDecOk ok;
  ok.reply = r.blob();
  ok.spent_millibits = r.u64();
  ok.budget_millibits = r.u64();
  if (!r.done()) throw std::invalid_argument("ks.dec.ok: trailing bytes");
  return ok;
}

[[nodiscard]] inline Bytes encode_ks_hello(const KeyId& id, const service::HelloMsg& h) {
  ByteWriter w;
  w.str(id.tenant);
  w.str(id.key);
  w.raw(service::encode_hello(h));
  return w.take();
}

struct KsHello {
  KeyId id;
  service::HelloMsg hello;
};

[[nodiscard]] inline KsHello decode_ks_hello(const Bytes& body) {
  ByteReader r(body);
  KsHello kh;
  kh.id.tenant = r.str();
  kh.id.key = r.str();
  Bytes rest;
  while (!r.done()) rest.push_back(r.u8());
  kh.hello = service::decode_hello(rest);
  return kh;
}

[[nodiscard]] inline Bytes encode_ks_put(const KeyId& id, const Bytes& sk2_ser) {
  ByteWriter w;
  w.str(id.tenant);
  w.str(id.key);
  w.blob(sk2_ser);
  return w.take();
}

struct KsPut {
  KeyId id;
  Bytes sk2_ser;
};

[[nodiscard]] inline KsPut decode_ks_put(const Bytes& body) {
  ByteReader r(body);
  KsPut p;
  p.id.tenant = r.str();
  p.id.key = r.str();
  p.sk2_ser = r.blob();
  if (!r.done()) throw std::invalid_argument("ks.put: trailing bytes");
  return p;
}

}  // namespace dlr::keystore
