// DLR -- the paper's distributed public-key encryption scheme, CPA-secure
// against continual memory leakage (Construction 5.3).
//
//   pk  = (p, g, e, Z = e(g1, g2)),  g1 = g^alpha
//   sk1 = (a_1..a_l, Phi = g2^alpha * prod a_i^{s_i})   (device P1)
//   sk2 = (s_1..s_l)                                    (device P2)
//   Enc(m in GT) = (g^t, m * Z^t)
//
// Decryption and refresh are the paper's 3-move 2-party protocols, including
// the two implementation remarks of Section 5.2:
//   * fi/di reuse: P1 encrypts its share once per period under sk_comm over
//     G (the f_i), and derives the decryption-protocol ciphertexts d_i by
//     coordinate-wise pairing with A (pair_ct) -- the same sigma decrypts
//     both, since e(A, b)^sigma = e(A, b^sigma).
//   * coins are sampled directly as group elements, never as g^rho, so no
//     discrete logarithms of coins ever reside in secret memory.
//
// P1 storage modes:
//   * P1Mode::Plain   -- P1 stores sk1 itself (the construction as first
//     presented). Secret memory of P1: sk1 + sk_comm.
//   * P1Mode::Compact -- the "optimal leakage rate" remark: P1 stores only
//     sk_comm; sk1 lives in *public* memory encrypted coordinate-wise under
//     sk_comm, and P1 never holds more than one unencrypted coordinate.
//     Secret memory of P1: sk_comm + one scratch group element
//     (= kappa*log p + log p bits, the paper's m1 + log p).
#pragma once

#include <optional>

#include "crypto/rng.hpp"
#include "group/fixed_pow.hpp"
#include "group/prepared.hpp"
#include "net/transcript.hpp"
#include "schemes/hpske.hpp"
#include "service/parallel.hpp"
#include "telemetry/trace.hpp"
#include "schemes/params.hpp"
#include "schemes/pi_ss.hpp"

namespace dlr::schemes {

enum class P1Mode { Plain, Compact };

template <group::BilinearGroup GG>
struct DlrCore {
  using Scalar = typename GG::Scalar;
  using G = typename GG::G;
  using GT = typename GG::GT;
  using SS = PiSS<GG>;     // width l, over G
  using HG = HpskeG<GG>;   // width kappa, over G
  using HT = HpskeGT<GG>;  // width kappa, over GT
  using CtG = typename HG::Ciphertext;
  using CtT = typename HT::Ciphertext;
  using SkComm = typename HG::SecretKey;  // sigma, shared across G and GT

  struct PublicKey {
    G g{};   // generator
    GT z{};  // e(g1, g2)
  };

  struct Sk1 {
    std::vector<G> a;
    G phi{};
  };

  struct Sk2 {
    std::vector<Scalar> s;
  };

  struct Ciphertext {
    G a{};   // g^t
    GT b{};  // m * Z^t
  };

  struct KeyGenResult {
    PublicKey pk;
    Sk1 sk1;
    Sk2 sk2;
    /// r^Gen: the secret randomness held during Gen (input to h^Gen).
    Bytes gen_randomness;
    /// The master secret key g2^alpha -- returned for tests only; a real
    /// deployment erases it (the devices never need it).
    G msk{};
  };

  static KeyGenResult gen(const GG& gg, const DlrParams& prm, crypto::Rng& rng) {
    telemetry::ScopedSpan span("dlr.keygen");
    KeyGenResult out;
    const Scalar alpha = gg.sc_random(rng);
    const G g = gg.g_gen();
    const G g1 = gg.g_pow(g, alpha);
    const G g2 = gg.g_random(rng);
    out.pk = PublicKey{g, gg.pair(g1, g2)};
    out.msk = gg.g_pow(g2, alpha);

    out.sk2.s.reserve(prm.ell);
    for (std::size_t i = 0; i < prm.ell; ++i) out.sk2.s.push_back(gg.sc_random(rng));

    out.sk1.a.reserve(prm.ell);
    for (std::size_t i = 0; i < prm.ell; ++i) out.sk1.a.push_back(gg.g_random(rng));
    out.sk1.phi = gg.g_mul(out.msk, gg.g_multi_pow(out.sk1.a, out.sk2.s));

    ByteWriter w;
    gg.sc_ser(w, alpha);
    for (const auto& s : out.sk2.s) gg.sc_ser(w, s);
    gg.g_ser(w, g2);
    gg.g_ser(w, out.msk);
    for (const auto& a : out.sk1.a) gg.g_ser(w, a);
    gg.g_ser(w, out.sk1.phi);
    out.gen_randomness = w.take();
    return out;
  }

  static Ciphertext enc(const GG& gg, const PublicKey& pk, const GT& m, crypto::Rng& rng) {
    return enc_with_t(gg, pk, m, gg.sc_random(rng));
  }

  static Ciphertext enc_with_t(const GG& gg, const PublicKey& pk, const GT& m,
                               const Scalar& t) {
    telemetry::ScopedSpan span("dlr.enc");
    return Ciphertext{gg.g_pow(pk.g, t), gg.gt_mul(m, gg.gt_pow(pk.z, t))};
  }

  /// Precomputed public-key tables for the heavy-encryptor setting. The GT
  /// base Z = e(g1, g2) always pays: GT multiplications are cheap (F_{q^2}
  /// muls), so the table replaces ~|r| squarings with ~|r|/4 muls. The G base
  /// g pays only since the g_comb_table/g_prod native hooks exist -- they
  /// build the table with ONE batch inversion and fold selected entries with
  /// mixed adds plus a single final inversion; the earlier generic path (one
  /// Fermat inversion per affine g_mul) was a measured loss in F6.
  struct PkTable {
    PublicKey pk;
    group::FixedPowG<GG> g;
    group::FixedPowGT<GG> z;
    PkTable(const GG& gg, const PublicKey& pk_in)
        : pk(pk_in), g(gg, pk_in.g), z(gg, pk_in.z) {}
  };

  static Ciphertext enc_precomp(const GG& gg, const PkTable& tbl, const GT& m,
                                crypto::Rng& rng) {
    telemetry::ScopedSpan span("dlr.enc");
    const Scalar t = gg.sc_random(rng);
    return Ciphertext{tbl.g.pow(gg, t), gg.gt_mul(m, tbl.z.pow(gg, t))};
  }

  /// Non-distributed reference decryption (tests / baselines): requires the
  /// reconstructed secret, never used by the devices.
  static GT dec_reference(const GG& gg, const Sk1& sk1, const Sk2& sk2, const Ciphertext& c) {
    // m = B * e(A, prod a^s / Phi) = B / e(A, g2^alpha)
    const G inv_msk = gg.g_mul(gg.g_multi_pow(sk1.a, sk2.s), gg.g_inv(sk1.phi));
    return gg.gt_mul(c.b, gg.pair(c.a, inv_msk));
  }

  /// Reconstruct msk from the two shares (test helper -- the protocols never
  /// do this; that is the point of the sharing).
  static G reconstruct_msk(const GG& gg, const Sk1& sk1, const Sk2& sk2) {
    return gg.g_mul(sk1.phi, gg.g_inv(gg.g_multi_pow(sk1.a, sk2.s)));
  }

  /// Transport a G-HPSKE ciphertext to a GT-HPSKE ciphertext of the paired
  /// plaintext: pair each coordinate with A. Correct under the same sigma
  /// because e(A, b^sigma) = e(A, b)^sigma.
  static CtT pair_ct(const GG& gg, const G& a, const CtG& ct) {
    return pair_ct(gg, group::PreparedPair<GG>(gg, a), ct);
  }

  /// pair_ct against an already-prepared first argument: callers that
  /// transport many ciphertexts under the same A (dec_round1 pairs l+1 of
  /// them) run the Miller loop once and amortize it across every coordinate.
  /// All kappa+1 coordinates go through ONE pair_many call, which on native
  /// backends also shares a single batched inversion across their final
  /// exponentiations.
  static CtT pair_ct(const GG& gg, const group::PreparedPair<GG>& pa, const CtG& ct) {
    std::vector<G> coords(ct.b.begin(), ct.b.end());
    coords.push_back(ct.c0);
    auto gts = pa.pair_many(gg, coords);
    CtT out;
    out.c0 = std::move(gts.back());
    gts.pop_back();
    out.b = std::move(gts);
    return out;
  }

  // ---- key serialization ---------------------------------------------------------
  static void ser_pk(const GG& gg, ByteWriter& w, const PublicKey& pk) {
    gg.g_ser(w, pk.g);
    gg.gt_ser(w, pk.z);
  }
  static PublicKey deser_pk(const GG& gg, ByteReader& r) {
    PublicKey pk;
    pk.g = gg.g_deser(r);
    pk.z = gg.gt_deser(r);
    return pk;
  }
  static void ser_sk1(const GG& gg, ByteWriter& w, const Sk1& sk1) {
    w.u64(sk1.a.size());
    for (const auto& ai : sk1.a) gg.g_ser(w, ai);
    gg.g_ser(w, sk1.phi);
  }
  static Sk1 deser_sk1(const GG& gg, ByteReader& r) {
    Sk1 sk1;
    const auto n = r.u64();
    sk1.a.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) sk1.a.push_back(gg.g_deser(r));
    sk1.phi = gg.g_deser(r);
    return sk1;
  }
  static void ser_sk2(const GG& gg, ByteWriter& w, const Sk2& sk2) {
    w.u64(sk2.s.size());
    for (const auto& si : sk2.s) gg.sc_ser(w, si);
  }
  static Sk2 deser_sk2(const GG& gg, ByteReader& r) {
    Sk2 sk2;
    const auto n = r.u64();
    sk2.s.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) sk2.s.push_back(gg.sc_deser(r));
    return sk2;
  }

  // ---- ciphertext serialization ------------------------------------------------
  static void ser_ciphertext(const GG& gg, ByteWriter& w, const Ciphertext& c) {
    gg.g_ser(w, c.a);
    gg.gt_ser(w, c.b);
  }
  static Ciphertext deser_ciphertext(const GG& gg, ByteReader& r) {
    Ciphertext c;
    c.a = gg.g_deser(r);
    c.b = gg.gt_deser(r);
    return c;
  }
  static std::size_t ciphertext_bytes(const GG& gg) { return gg.g_bytes() + gg.gt_bytes(); }
};

// =============================================================================
// Device P1 (main processor)
// =============================================================================

template <group::BilinearGroup GG>
class DlrParty1 {
 public:
  using Core = DlrCore<GG>;
  using Scalar = typename GG::Scalar;
  using G = typename GG::G;
  using GT = typename GG::GT;
  using CtG = typename Core::CtG;
  using CtT = typename Core::CtT;

  DlrParty1(GG gg, DlrParams prm, typename Core::PublicKey pk, typename Core::Sk1 sk1,
            P1Mode mode, crypto::Rng rng)
      : gg_(std::move(gg)),
        prm_(prm),
        pk_(std::move(pk)),
        mode_(mode),
        hg_(gg_, prm.kappa),
        ht_(gg_, prm.kappa),
        rng_(std::move(rng)) {
    if (sk1.a.size() != prm_.ell) throw std::invalid_argument("DlrParty1: bad share width");
    if (mode_ == P1Mode::Plain) {
      sk1_ = std::move(sk1);
    } else {
      // Compact mode: encrypt the share coordinate-wise under a fresh
      // sk_comm and keep only sk_comm secret. The encrypted share is public.
      sigma_ = hg_.gen(rng_);
      enc_a_.reserve(prm_.ell);
      for (const auto& ai : sk1.a) enc_a_.push_back(hg_.enc(*sigma_, ai, rng_));
      enc_phi_ = hg_.enc(*sigma_, sk1.phi, rng_);
    }
  }

  [[nodiscard]] const typename Core::PublicKey& pk() const { return pk_; }
  [[nodiscard]] P1Mode mode() const { return mode_; }

  /// Plain-mode share accessor (tests); throws in compact mode.
  [[nodiscard]] const typename Core::Sk1& share() const {
    if (!sk1_) throw std::logic_error("DlrParty1::share: compact mode stores no raw share");
    return *sk1_;
  }

  /// Compact-mode public encrypted share (it is public memory).
  [[nodiscard]] const std::vector<CtG>& encrypted_share() const { return enc_a_; }

  /// Recover the raw share (test helper; in compact mode decrypts).
  [[nodiscard]] typename Core::Sk1 recover_share_for_test() const {
    if (sk1_) return *sk1_;
    typename Core::Sk1 out;
    out.a.reserve(prm_.ell);
    for (const auto& ct : enc_a_) out.a.push_back(hg_.dec(*sigma_, ct));
    out.phi = hg_.dec(*sigma_, *enc_phi_);
    return out;
  }

  // ---- decryption protocol, P1 side ------------------------------------------

  /// Round 1: send (d_1..d_l, dPhi, dB) -- HPSKE-over-GT encryptions of
  /// e(A, a_i), e(A, Phi) and B under this period's sk_comm.
  [[nodiscard]] Bytes dec_round1(const typename Core::Ciphertext& c) {
    ensure_period_setup();
    return dec_round1(c, rng_);
  }

  /// Concurrent-read variant for the service runtime: requires the period to
  /// be set up already (prepare_period(), or any mutating protocol call) and
  /// takes the caller's rng, so it is const -- many decryption sessions may
  /// run it under a shared lock while refresh holds the exclusive one.
  [[nodiscard]] Bytes dec_round1(const typename Core::Ciphertext& c, crypto::Rng& rng) const {
    telemetry::ScopedSpan span("dec.round1");
    if (!fphi_) throw std::logic_error("dec_round1: period not prepared");
    // One Miller precomputation for A serves all l+1 transported ciphertexts;
    // with DLR_PARALLEL set the independent pair_ct rows fan out across the
    // pool (each writes its own slot; serialization below stays ordered).
    const group::PreparedPair<GG> pa(gg_, c.a);
    std::vector<CtT> d(fs_.size() + 1);
    service::par_for(d.size(), [&](std::size_t i) {
      d[i] = Core::pair_ct(gg_, pa, i < fs_.size() ? fs_[i] : *fphi_);
    });
    ByteWriter w;
    for (const auto& di : d) ht_.ser_ct(w, di);
    const CtT db = ht_.enc(sigma_gt(), c.b, rng);  // uses rng -> stays serial
    ht_.ser_ct(w, db);
    return w.take();
  }

  /// Round 3: decrypt P2's combined ciphertext to obtain the message.
  [[nodiscard]] GT dec_finish(const Bytes& reply) { return dec_finish_with(sigma_gt(), reply); }

  /// Finish with an explicitly captured period key (period_sigma_gt() taken
  /// at round-1 time). Lets an in-flight decryption complete correctly even
  /// if a refresh rotated the period state during the network round trip.
  [[nodiscard]] GT dec_finish_with(const typename HpskeGT<GG>::SecretKey& sigma,
                                   const Bytes& reply) const {
    telemetry::ScopedSpan span("dec.finish");
    ByteReader r(reply);
    const CtT combined = ht_.deser_ct(r);
    if (!r.done()) throw std::invalid_argument("dec_finish: trailing bytes");
    return ht_.dec(sigma, combined);
  }

  /// Force this period's sk_comm + share encryptions into existence (the
  /// mutating half of dec_round1, split out so the service layer can do all
  /// mutation under an exclusive lock and all round-1 work under shared).
  void prepare_period() { ensure_period_setup(); }

  /// Copy of this period's sk_comm viewed over GT, for dec_finish_with.
  [[nodiscard]] typename HpskeGT<GG>::SecretKey period_sigma_gt() const {
    if (!sigma_) throw std::logic_error("period_sigma_gt: period not prepared");
    return sigma_gt();
  }

  // ---- refresh protocol, P1 side -----------------------------------------------

  /// Round 1: send ((f_i, f'_i) for i in [l], fPhi). The f_i (and fPhi) are
  /// the period's share encryptions, reused from the decryption protocol.
  [[nodiscard]] Bytes ref_round1() {
    telemetry::ScopedSpan span("ref.round1");
    ensure_period_setup();
    // Sample the next-share randomness a'_1..a'_l and encrypt it. In compact
    // mode each a'_i is held raw only transiently (one coordinate at a time).
    next_a_.clear();
    fprime_.clear();
    fprime_.reserve(prm_.ell);
    if (mode_ == P1Mode::Plain) {
      next_a_.reserve(prm_.ell);
      for (std::size_t i = 0; i < prm_.ell; ++i) {
        next_a_.push_back(gg_.g_random(rng_));
        fprime_.push_back(hg_.enc(*sigma_, next_a_.back(), rng_));
      }
    } else {
      for (std::size_t i = 0; i < prm_.ell; ++i) {
        const G ap = gg_.g_random(rng_);  // scratch: the only raw coordinate
        fprime_.push_back(hg_.enc(*sigma_, ap, rng_));
      }
    }
    ByteWriter w;
    for (std::size_t i = 0; i < prm_.ell; ++i) {
      hg_.ser_ct(w, fs_[i]);
      hg_.ser_ct(w, fprime_[i]);
    }
    hg_.ser_ct(w, *fphi_);
    return w.take();
  }

  /// Round 3: decrypt Phi' and install the new share; end the period.
  void ref_finish(const Bytes& reply) {
    telemetry::ScopedSpan span("ref.finish");
    ByteReader r(reply);
    const CtG f = hg_.deser_ct(r);
    if (!r.done()) throw std::invalid_argument("ref_finish: trailing bytes");
    const G new_phi = hg_.dec(*sigma_, f);

    capture_refresh_snapshot(new_phi);

    if (mode_ == P1Mode::Plain) {
      sk1_->a = std::move(next_a_);
      sk1_->phi = new_phi;
    } else {
      // Rotate sk_comm: re-encrypt the new share coordinate-by-coordinate
      // under a fresh key; at most one raw coordinate in memory at a time.
      const auto sigma_next = hg_.gen(rng_);
      std::vector<CtG> enc_a_next;
      enc_a_next.reserve(prm_.ell);
      for (const auto& fp : fprime_) {
        const G scratch = hg_.dec(*sigma_, fp);
        enc_a_next.push_back(hg_.enc(sigma_next, scratch, rng_));
      }
      const G scratch_phi = new_phi;
      enc_phi_ = hg_.enc(sigma_next, scratch_phi, rng_);
      enc_a_ = std::move(enc_a_next);
      sigma_ = sigma_next;
    }
    end_period();
  }

  // ---- secret memory (Section 3.2) ----------------------------------------------

  /// Secret memory during "all other times" of the current period.
  [[nodiscard]] net::SecretSnapshot normal_snapshot() const {
    net::SecretSnapshot snap;
    ByteWriter share;
    if (mode_ == P1Mode::Plain) {
      ser_sk1(share, *sk1_);
      if (sigma_) hg_.ser_sk(share, *sigma_);
    } else {
      if (sigma_) hg_.ser_sk(share, *sigma_);
      // One scratch coordinate (zero-initialized placeholder slot).
      gg_.g_ser(share, gg_.g_id());
    }
    snap.share = share.take();
    return snap;
  }

  /// Secret memory during refresh of the most recrecently finished period.
  [[nodiscard]] const net::SecretSnapshot& refresh_snapshot() const { return refresh_snap_; }

  /// Essential secret-memory sizes in bits, for leakage-rate accounting.
  [[nodiscard]] std::size_t secret_bits(net::Phase phase) const {
    const std::size_t logp_bytes = gg_.sc_bytes();
    const std::size_t g_bytes = gg_.g_bytes();
    const std::size_t skcomm = prm_.kappa * logp_bytes;
    std::size_t bytes = 0;
    if (mode_ == P1Mode::Plain) {
      const std::size_t sk1 = (prm_.ell + 1) * g_bytes;
      bytes = (phase == net::Phase::Refresh) ? 2 * sk1 + skcomm : sk1 + skcomm;
    } else {
      bytes = (phase == net::Phase::Refresh) ? 2 * skcomm + g_bytes : skcomm + g_bytes;
    }
    return 8 * bytes;
  }

  /// Forcibly end the period (drops sk_comm and the cached f's).
  void end_period() {
    if (mode_ == P1Mode::Plain) sigma_.reset();
    fs_.clear();
    fphi_.reset();
    fprime_.clear();
    next_a_.clear();
  }

  // ---- state (de)serialization for crash-safe persistence ----------------------
  //
  // Everything durable about the device: the share (raw or encrypted), the
  // period's sk_comm and cached share encryptions, and any in-progress
  // refresh material (fprime_/next_a_), so a journaled post-round-1 state
  // can still ref_finish after a restart. The rng is deliberately NOT
  // serialized -- replaying entropy after a crash would reuse coins, so
  // restore() demands a fresh one.

  void ser_state(ByteWriter& w) const {
    const auto opt_ct = [&](const std::optional<CtG>& ct) {
      w.u8(ct ? 1 : 0);
      if (ct) hg_.ser_ct(w, *ct);
    };
    const auto ct_vec = [&](const std::vector<CtG>& v) {
      w.u64(v.size());
      for (const auto& ct : v) hg_.ser_ct(w, ct);
    };
    w.u8(mode_ == P1Mode::Plain ? 0 : 1);
    w.u8(sk1_ ? 1 : 0);
    if (sk1_) Core::ser_sk1(gg_, w, *sk1_);
    ct_vec(enc_a_);
    opt_ct(enc_phi_);
    w.u8(sigma_ ? 1 : 0);
    if (sigma_) hg_.ser_sk(w, *sigma_);
    ct_vec(fs_);
    opt_ct(fphi_);
    ct_vec(fprime_);
    w.u64(next_a_.size());
    for (const auto& a : next_a_) gg_.g_ser(w, a);
  }

  [[nodiscard]] static DlrParty1 restore(GG gg, DlrParams prm, typename Core::PublicKey pk,
                                         ByteReader& r, crypto::Rng rng) {
    const P1Mode mode = (r.u8() == 0) ? P1Mode::Plain : P1Mode::Compact;
    DlrParty1 p(std::move(gg), prm, std::move(pk), mode, std::move(rng), RestoreTag{});
    const auto opt_ct = [&](std::optional<CtG>& ct) {
      if (r.u8()) ct = p.hg_.deser_ct(r);
    };
    const auto ct_vec = [&](std::vector<CtG>& v) {
      const auto n = r.u64();
      v.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) v.push_back(p.hg_.deser_ct(r));
    };
    if (r.u8()) p.sk1_ = Core::deser_sk1(p.gg_, r);
    ct_vec(p.enc_a_);
    opt_ct(p.enc_phi_);
    if (r.u8()) p.sigma_ = p.hg_.deser_sk(r);
    ct_vec(p.fs_);
    opt_ct(p.fphi_);
    ct_vec(p.fprime_);
    const auto n = r.u64();
    p.next_a_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) p.next_a_.push_back(p.gg_.g_deser(r));
    if (p.mode_ == P1Mode::Plain && (!p.sk1_ || p.sk1_->a.size() != prm.ell))
      throw std::invalid_argument("DlrParty1::restore: bad plain-mode share");
    if (p.mode_ == P1Mode::Compact && p.enc_a_.size() != prm.ell)
      throw std::invalid_argument("DlrParty1::restore: bad compact-mode share");
    return p;
  }

 private:
  struct RestoreTag {};
  DlrParty1(GG gg, DlrParams prm, typename Core::PublicKey pk, P1Mode mode, crypto::Rng rng,
            RestoreTag)
      : gg_(std::move(gg)),
        prm_(prm),
        pk_(std::move(pk)),
        mode_(mode),
        hg_(gg_, prm.kappa),
        ht_(gg_, prm.kappa),
        rng_(std::move(rng)) {}

  /// The same sigma vector viewed as a key for the GT-space HPSKE instance
  /// (sk_comm is one scalar vector serving both element spaces).
  [[nodiscard]] typename HpskeGT<GG>::SecretKey sigma_gt() const {
    return typename HpskeGT<GG>::SecretKey{sigma_->s};
  }

  void ensure_period_setup() {
    if (fphi_) return;
    if (mode_ == P1Mode::Plain) {
      sigma_ = hg_.gen(rng_);  // fresh sk_comm each period
      fs_.clear();
      fs_.reserve(prm_.ell);
      for (const auto& ai : sk1_->a) fs_.push_back(hg_.enc(*sigma_, ai, rng_));
      fphi_ = hg_.enc(*sigma_, sk1_->phi, rng_);
    } else {
      // Compact mode: the stored public encrypted share *is* (f_i, fPhi).
      fs_ = enc_a_;
      fphi_ = enc_phi_;
    }
  }

  void capture_refresh_snapshot(const G& new_phi) {
    ByteWriter share;
    if (mode_ == P1Mode::Plain) {
      ser_sk1(share, *sk1_);
      for (const auto& ap : next_a_) gg_.g_ser(share, ap);
      gg_.g_ser(share, new_phi);
      if (sigma_) hg_.ser_sk(share, *sigma_);
    } else {
      hg_.ser_sk(share, *sigma_);
      hg_.ser_sk(share, *sigma_);  // stands for sigma' (old+new key material)
      gg_.g_ser(share, new_phi);   // scratch coordinate
    }
    refresh_snap_ = net::SecretSnapshot{share.take(), {}, {}};
  }

  void ser_sk1(ByteWriter& w, const typename Core::Sk1& sk1) const {
    for (const auto& ai : sk1.a) gg_.g_ser(w, ai);
    gg_.g_ser(w, sk1.phi);
  }

  GG gg_;
  DlrParams prm_;
  typename Core::PublicKey pk_;
  P1Mode mode_;
  HpskeG<GG> hg_;
  HpskeGT<GG> ht_;
  crypto::Rng rng_;

  // Plain mode: the raw share. Compact mode: nullopt.
  std::optional<typename Core::Sk1> sk1_;
  // Compact mode: the publicly stored encrypted share.
  std::vector<CtG> enc_a_;
  std::optional<CtG> enc_phi_;

  // Per-period state.
  std::optional<typename Core::SkComm> sigma_;
  std::vector<CtG> fs_;
  std::optional<CtG> fphi_;
  std::vector<CtG> fprime_;
  std::vector<G> next_a_;
  net::SecretSnapshot refresh_snap_;
};

// =============================================================================
// Device P2 (auxiliary device / smart card)
// =============================================================================
//
// P2's entire computational repertoire, by construction: sample uniform
// scalars, and raise received group elements to those scalars and multiply
// (ct_pow / ct_mul on opaque ciphertext coordinates). It performs no
// pairings, no decryption, and holds no group elements of its own.

template <group::BilinearGroup GG>
class DlrParty2 {
 public:
  using Core = DlrCore<GG>;
  using Scalar = typename GG::Scalar;
  using CtG = typename Core::CtG;
  using CtT = typename Core::CtT;

  DlrParty2(GG gg, DlrParams prm, typename Core::Sk2 sk2, crypto::Rng rng)
      : gg_(std::move(gg)),
        prm_(prm),
        hg_(gg_, prm.kappa),
        ht_(gg_, prm.kappa),
        sk2_(std::move(sk2)),
        rng_(std::move(rng)) {
    if (sk2_.s.size() != prm_.ell) throw std::invalid_argument("DlrParty2: bad share width");
  }

  [[nodiscard]] const typename Core::Sk2& share() const { return sk2_; }

  /// Decryption round 2: given (d_1..d_l, dPhi, dB), return
  /// dB * prod_i d_i^{s_i} / dPhi (coordinate-wise). Const -- reads only the
  /// current share, so the service runtime executes many of these
  /// concurrently under a shared lock (refresh takes the exclusive one).
  [[nodiscard]] Bytes dec_respond(const Bytes& msg) const {
    telemetry::ScopedSpan span("dec.round2");
    ByteReader r(msg);
    std::vector<CtT> d;
    d.reserve(prm_.ell);
    for (std::size_t i = 0; i < prm_.ell; ++i) d.push_back(ht_.deser_ct(r));
    const CtT dphi = ht_.deser_ct(r);
    const CtT db = ht_.deser_ct(r);
    if (!r.done()) throw std::invalid_argument("dec_respond: trailing bytes");

    CtT acc = ht_.ct_mul(db, ht_.ct_multi_pow(d, sk2_.s));
    acc = ht_.ct_mul(acc, ht_.ct_inv(dphi));
    ByteWriter w;
    ht_.ser_ct(w, acc);
    return w.take();
  }

  /// Shared preparation for a batch of round-2 requests. Every request in a
  /// batch raises its own rows to the SAME share vector s, so the exponent
  /// recoding (the wNAF digits on native backends) is computed once here and
  /// reused by every run(). run(msg) is bit-identical to dec_respond(msg);
  /// parsing, the per-coordinate chains, the combine and the serialization
  /// stay per-item, so callers keep per-request trace spans and per-request
  /// error isolation. Const capture of the share: hold the same shared lock
  /// across construction and the runs (the service runtime does).
  class DecBatch {
   public:
    explicit DecBatch(const DlrParty2& p2)
        : p2_(&p2), key_(p2.ht_.prepare_key(p2.sk2_.s)) {}

    [[nodiscard]] Bytes run(const Bytes& msg) const {
      telemetry::ScopedSpan span("dec.round2");
      const DlrParty2& p2 = *p2_;
      ByteReader r(msg);
      std::vector<CtT> d;
      d.reserve(p2.prm_.ell);
      for (std::size_t i = 0; i < p2.prm_.ell; ++i) d.push_back(p2.ht_.deser_ct(r));
      const CtT dphi = p2.ht_.deser_ct(r);
      const CtT db = p2.ht_.deser_ct(r);
      if (!r.done()) throw std::invalid_argument("dec_respond: trailing bytes");

      CtT acc = p2.ht_.ct_mul(db, p2.ht_.ct_multi_pow_prepared(key_, d));
      acc = p2.ht_.ct_mul(acc, p2.ht_.ct_inv(dphi));
      ByteWriter w;
      p2.ht_.ser_ct(w, acc);
      return w.take();
    }

   private:
    const DlrParty2* p2_;
    typename HpskeGT<GG>::PreparedKey key_;
  };

  [[nodiscard]] DecBatch dec_batch() const { return DecBatch(*this); }

  /// One round-2 result per input; a malformed request fails alone.
  struct DecOutcome {
    Bytes reply;
    std::string error;
    [[nodiscard]] bool ok() const { return error.empty(); }
  };

  /// Batched round 2: bit-identical outputs to calling dec_respond on each
  /// message, with the share recoding shared across the whole batch.
  [[nodiscard]] std::vector<DecOutcome> dec_respond_many(std::span<const Bytes> msgs) const {
    const DecBatch b = dec_batch();
    std::vector<DecOutcome> out(msgs.size());
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      try {
        out[i].reply = b.run(msgs[i]);
      } catch (const std::exception& e) {
        out[i].error = e.what();
      }
    }
    return out;
  }

  /// The computed-but-not-installed half of a refresh: the candidate next
  /// share and the round-2 reply that commits to it. The two-phase service
  /// protocol journals this pair durably before anything is installed.
  struct RefPrepared {
    typename Core::Sk2 next;
    Bytes reply;
  };

  /// Refresh round 2, PREPARE phase: given ((f_i, f'_i), fPhi), sample s',
  /// compute prod_i f'_i^{s'_i} / f_i^{s_i} * fPhi -- but do NOT install s'.
  /// Const apart from the rng: the current share is only read, so the caller
  /// decides when (and whether) the candidate becomes the share via
  /// ref_install().
  [[nodiscard]] RefPrepared ref_prepare(const Bytes& msg) {
    telemetry::ScopedSpan span("ref.round2");
    ByteReader r(msg);
    std::vector<CtG> f, fp;
    f.reserve(prm_.ell);
    fp.reserve(prm_.ell);
    for (std::size_t i = 0; i < prm_.ell; ++i) {
      f.push_back(hg_.deser_ct(r));
      fp.push_back(hg_.deser_ct(r));
    }
    const CtG fphi = hg_.deser_ct(r);
    if (!r.done()) throw std::invalid_argument("ref_respond: trailing bytes");

    RefPrepared out;
    out.next.s.reserve(prm_.ell);
    for (std::size_t i = 0; i < prm_.ell; ++i) out.next.s.push_back(gg_.sc_random(rng_));

    CtG acc = hg_.ct_mul(fphi, hg_.ct_multi_pow(fp, out.next.s));
    acc = hg_.ct_mul(acc, hg_.ct_inv(hg_.ct_multi_pow(f, sk2_.s)));

    ByteWriter w;
    hg_.ser_ct(w, acc);
    out.reply = w.take();
    return out;
  }

  /// COMMIT phase: install a prepared next share (captures the old+new
  /// refresh snapshot first, as the protocol's refresh phase exposes both).
  void ref_install(typename Core::Sk2 next) {
    if (next.s.size() != prm_.ell)
      throw std::invalid_argument("DlrParty2::ref_install: bad share width");
    capture_refresh_snapshot(next);
    sk2_ = std::move(next);
  }

  /// Refresh round 2, one-shot: prepare and immediately install (the
  /// in-process driver's reliable-channel path).
  [[nodiscard]] Bytes ref_respond(const Bytes& msg) {
    RefPrepared prep = ref_prepare(msg);
    ref_install(std::move(prep.next));
    return std::move(prep.reply);
  }

  /// Replace the share from a durable record (recovery; no snapshot -- this
  /// is a restart, not a protocol run).
  void restore_share(typename Core::Sk2 sk2) {
    if (sk2.s.size() != prm_.ell)
      throw std::invalid_argument("DlrParty2::restore_share: bad share width");
    sk2_ = std::move(sk2);
  }

  [[nodiscard]] net::SecretSnapshot normal_snapshot() const {
    ByteWriter w;
    for (const auto& s : sk2_.s) gg_.sc_ser(w, s);
    return net::SecretSnapshot{w.take(), {}, {}};
  }

  [[nodiscard]] const net::SecretSnapshot& refresh_snapshot() const { return refresh_snap_; }

  [[nodiscard]] std::size_t secret_bits(net::Phase phase) const {
    const std::size_t sk2 = prm_.ell * gg_.sc_bytes();
    return 8 * ((phase == net::Phase::Refresh) ? 2 * sk2 : sk2);
  }

 private:
  void capture_refresh_snapshot(const typename Core::Sk2& next) {
    ByteWriter w;
    for (const auto& s : sk2_.s) gg_.sc_ser(w, s);
    for (const auto& s : next.s) gg_.sc_ser(w, s);
    refresh_snap_ = net::SecretSnapshot{w.take(), {}, {}};
  }

  GG gg_;
  DlrParams prm_;
  HpskeG<GG> hg_;
  HpskeGT<GG> ht_;
  typename Core::Sk2 sk2_;
  crypto::Rng rng_;
  net::SecretSnapshot refresh_snap_;
};

// =============================================================================
// System driver: wires the two devices through a recording channel.
// =============================================================================

template <group::BilinearGroup GG>
class DlrSystem {
 public:
  using Core = DlrCore<GG>;
  using GT = typename GG::GT;

  struct PeriodRecord {
    net::Transcript transcript;
    typename Core::Ciphertext dec_input;
    GT dec_output{};
  };

  static DlrSystem create(GG gg, const DlrParams& prm, P1Mode mode, std::uint64_t seed) {
    crypto::Rng root(seed);
    auto gen_rng = root.fork("gen");
    auto kg = Core::gen(gg, prm, gen_rng);
    return DlrSystem(std::move(gg), prm, mode, std::move(kg), root.fork("p1"),
                     root.fork("p2"));
  }

  [[nodiscard]] const typename Core::PublicKey& pk() const { return pk_; }
  /// Comb tables for pk.g and pk.Z, built once at keygen.
  [[nodiscard]] const typename Core::PkTable& pk_table() const { return pk_tbl_; }
  [[nodiscard]] const Bytes& gen_randomness() const { return gen_randomness_; }
  [[nodiscard]] DlrParty1<GG>& p1() { return p1_; }
  [[nodiscard]] DlrParty2<GG>& p2() { return p2_; }
  [[nodiscard]] const DlrParty1<GG>& p1() const { return p1_; }
  [[nodiscard]] const DlrParty2<GG>& p2() const { return p2_; }

  /// Run the decryption protocol over a recording channel.
  [[nodiscard]] GT decrypt(const typename Core::Ciphertext& c, net::Channel& ch) {
    telemetry::ScopedSpan span("dlr.dec");
    const auto& m1 = ch.send(net::DeviceId::P1, "dec.r1", p1_.dec_round1(c));
    const auto& m2 = ch.send(net::DeviceId::P2, "dec.r2", p2_.dec_respond(m1));
    return p1_.dec_finish(m2);
  }

  /// Run the refresh protocol over a recording channel.
  void refresh(net::Channel& ch) {
    telemetry::ScopedSpan span("dlr.refresh");
    const auto& m1 = ch.send(net::DeviceId::P1, "ref.r1", p1_.ref_round1());
    const auto& m2 = ch.send(net::DeviceId::P2, "ref.r2", p2_.ref_respond(m1));
    p1_.ref_finish(m2);
  }

  /// One full time period: decrypt c, then refresh (the paper's game loop).
  [[nodiscard]] PeriodRecord run_period(const typename Core::Ciphertext& c) {
    net::Channel ch;
    PeriodRecord rec;
    rec.dec_input = c;
    rec.dec_output = decrypt(c, ch);
    refresh(ch);
    rec.transcript = ch.take_transcript();
    return rec;
  }

  [[nodiscard]] GT decrypt(const typename Core::Ciphertext& c) {
    net::Channel ch;
    return decrypt(c, ch);
  }

  /// Encrypt through the cached pk tables (same distribution as Core::enc).
  [[nodiscard]] typename Core::Ciphertext encrypt(const GT& m, crypto::Rng& rng) const {
    return Core::enc_precomp(gg_, pk_tbl_, m, rng);
  }

  void refresh() {
    net::Channel ch;
    refresh(ch);
  }

 private:
  DlrSystem(GG gg, const DlrParams& prm, P1Mode mode, typename Core::KeyGenResult kg,
            crypto::Rng rng1, crypto::Rng rng2)
      : gg_(gg),
        pk_(kg.pk),
        pk_tbl_(gg_, kg.pk),
        gen_randomness_(std::move(kg.gen_randomness)),
        p1_(gg, prm, kg.pk, std::move(kg.sk1), mode, std::move(rng1)),
        p2_(gg, prm, std::move(kg.sk2), std::move(rng2)) {}

  GG gg_;
  typename Core::PublicKey pk_;
  typename Core::PkTable pk_tbl_;
  Bytes gen_randomness_;
  DlrParty1<GG> p1_;
  DlrParty2<GG> p2_;
};

}  // namespace dlr::schemes
