#include "service/epoch.hpp"

#include "telemetry/metrics.hpp"

namespace dlr::service {

namespace {
telemetry::Gauge& epoch_gauge() {
  static telemetry::Gauge& g = telemetry::Registry::global().gauge("svc.epoch");
  return g;
}
telemetry::Gauge& inflight_gauge() {
  static telemetry::Gauge& g = telemetry::Registry::global().gauge("svc.inflight");
  return g;
}
telemetry::Counter& stale_counter() {
  static telemetry::Counter& c = telemetry::Registry::global().counter("svc.stale");
  return c;
}
}  // namespace

EpochCoordinator::EpochCoordinator(std::uint64_t initial_epoch) : epoch_(initial_epoch) {
  std::lock_guard lock(mu_);
  publish_locked();
}

EpochCoordinator::Admit EpochCoordinator::begin_decrypt(std::uint64_t request_epoch) {
  std::lock_guard lock(mu_);
  if (draining_) {
    stale_counter().add();
    return Admit::Draining;
  }
  if (request_epoch != epoch_) {
    stale_counter().add();
    return Admit::Stale;
  }
  ++inflight_;
  publish_locked();
  return Admit::Accepted;
}

void EpochCoordinator::end_decrypt() {
  {
    std::lock_guard lock(mu_);
    --inflight_;
    publish_locked();
  }
  cv_.notify_all();
}

EpochCoordinator::Admit EpochCoordinator::begin_refresh(
    std::uint64_t request_epoch, std::chrono::milliseconds drain_deadline) {
  static telemetry::Counter& timeouts =
      telemetry::Registry::global().counter("svc.drain_timeouts");
  std::unique_lock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() + drain_deadline;
  // One refresh at a time -- but never wait on a wedged predecessor forever.
  if (!cv_.wait_until(lock, deadline, [&] { return !draining_; })) {
    timeouts.add();
    return Admit::DrainTimeout;
  }
  if (request_epoch != epoch_) {
    stale_counter().add();
    return Admit::Stale;
  }
  draining_ = true;
  if (!cv_.wait_until(lock, deadline, [&] { return inflight_ == 0; })) {
    // An admitted decryption never ended (dead worker). Un-drain so serving
    // resumes; the refresh fails cleanly and retryably.
    draining_ = false;
    timeouts.add();
    lock.unlock();
    cv_.notify_all();
    return Admit::DrainTimeout;
  }
  return Admit::Accepted;
}

void EpochCoordinator::finish_refresh(bool success) {
  {
    std::lock_guard lock(mu_);
    if (success) ++epoch_;
    draining_ = false;
    publish_locked();
  }
  cv_.notify_all();
}

std::uint64_t EpochCoordinator::epoch() const {
  std::lock_guard lock(mu_);
  return epoch_;
}

std::uint64_t EpochCoordinator::inflight() const {
  std::lock_guard lock(mu_);
  return inflight_;
}

void EpochCoordinator::publish_locked() {
  epoch_gauge().set(static_cast<double>(epoch_));
  inflight_gauge().set(static_cast<double>(inflight_));
}

}  // namespace dlr::service
