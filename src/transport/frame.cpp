#include "transport/frame.hpp"

#include <array>

namespace dlr::transport {

namespace {

std::uint32_t rd_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t rd_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(rd_u32(p)) |
         static_cast<std::uint64_t>(rd_u32(p + 4)) << 32;
}

// Slice-by-8 tables: t[0] is the classic reflected CRC-32 table; t[s][b] is
// the CRC of byte b followed by s zero bytes, so eight lookups advance the
// state by eight input bytes at once.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (int s = 1; s < 8; ++s)
      t[s][i] = t[0][t[s - 1][i] & 0xFF] ^ (t[s - 1][i] >> 8);
  return t;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto t = make_crc_tables();
  std::uint32_t c = 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = c ^ rd_u32(p);
    const std::uint32_t hi = rd_u32(p + 4);
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n != 0; --n, ++p) c = t[0][(c ^ *p) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void check_frame_len(std::uint32_t len, std::uint32_t max_frame_bytes) {
  if (len > max_frame_bytes)
    throw TransportError(Errc::FrameTooLarge,
                         "length prefix " + std::to_string(len) + " exceeds cap " +
                             std::to_string(max_frame_bytes));
  if (len < kPayloadFixedBytes)
    throw TransportError(Errc::Malformed,
                         "length prefix " + std::to_string(len) + " below minimum payload");
}

Bytes encode_frame(const Frame& f) {
  if (f.label.size() > 255)
    throw TransportError(Errc::Malformed, "label longer than 255 bytes");
  if (f.from & kTraceFlag)
    throw TransportError(Errc::Malformed, "device id collides with trace flag");
  const bool traced = f.trace_id != 0;
  const std::size_t payload_len = kPayloadFixedBytes + f.label.size() +
                                  (traced ? kTraceEnvelopeBytes : 0) + f.body.size();
  if (payload_len > kMaxFrameBytes)
    throw TransportError(Errc::FrameTooLarge,
                         "frame payload " + std::to_string(payload_len) + " exceeds cap " +
                             std::to_string(kMaxFrameBytes));

  ByteWriter payload;
  payload.u32(f.session);
  payload.u8(static_cast<std::uint8_t>(f.type));
  payload.u8(traced ? static_cast<std::uint8_t>(f.from | kTraceFlag) : f.from);
  payload.u8(static_cast<std::uint8_t>(f.label.size()));
  payload.raw({reinterpret_cast<const std::uint8_t*>(f.label.data()), f.label.size()});
  if (traced) {
    payload.u64(f.trace_id);
    payload.u64(f.parent_span);
  }
  payload.raw(f.body);

  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload.bytes()));
  w.raw(payload.bytes());
  return w.take();
}

Frame decode_payload(std::span<const std::uint8_t> payload) {
  if (payload.size() < kPayloadFixedBytes)
    throw TransportError(Errc::Malformed, "payload shorter than fixed fields");
  Frame f;
  f.session = rd_u32(payload.data());
  const std::uint8_t type = payload[4];
  if (type < static_cast<std::uint8_t>(FrameType::Data) ||
      type > static_cast<std::uint8_t>(FrameType::Close))
    throw TransportError(Errc::Malformed, "unknown frame type " + std::to_string(type));
  f.type = static_cast<FrameType>(type);
  const bool traced = (payload[5] & kTraceFlag) != 0;
  f.from = payload[5] & static_cast<std::uint8_t>(~kTraceFlag);
  if (f.from > 2)
    throw TransportError(Errc::Malformed, "bad device id " + std::to_string(f.from));
  const std::size_t label_len = payload[6];
  std::size_t off = kPayloadFixedBytes;
  if (off + label_len > payload.size())
    throw TransportError(Errc::Malformed, "label length overruns payload");
  f.label.assign(reinterpret_cast<const char*>(payload.data()) + off, label_len);
  off += label_len;
  if (traced) {
    if (off + kTraceEnvelopeBytes > payload.size())
      throw TransportError(Errc::Malformed, "trace envelope overruns payload");
    f.trace_id = rd_u64(payload.data() + off);
    f.parent_span = rd_u64(payload.data() + off + 8);
    if (f.trace_id == 0)
      throw TransportError(Errc::Malformed, "trace envelope with zero trace id");
    off += kTraceEnvelopeBytes;
  }
  f.body.assign(payload.begin() + static_cast<std::ptrdiff_t>(off), payload.end());
  return f;
}

Frame decode_checked(std::uint32_t crc, std::span<const std::uint8_t> payload) {
  const std::uint32_t actual = crc32(payload);
  if (actual != crc)
    throw TransportError(Errc::ChecksumMismatch, "payload CRC mismatch");
  return decode_payload(payload);
}

void FrameDeframer::feed(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  // Validate the length prefix as soon as it is complete, so an oversize
  // frame is rejected long before its payload could be buffered.
  if (buf_.size() >= 4) check_frame_len(rd_u32(buf_.data()), max_frame_bytes_);
}

std::optional<Frame> FrameDeframer::poll() {
  if (buf_.size() < kFrameHeaderBytes) return std::nullopt;
  const std::uint32_t len = rd_u32(buf_.data());
  check_frame_len(len, max_frame_bytes_);
  if (buf_.size() < kFrameHeaderBytes + len) return std::nullopt;
  const std::uint32_t crc = rd_u32(buf_.data() + 4);
  Frame f = decode_checked(
      crc, {buf_.data() + kFrameHeaderBytes, static_cast<std::size_t>(len)});
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes + len));
  if (buf_.size() >= 4) check_frame_len(rd_u32(buf_.data()), max_frame_bytes_);
  return f;
}

void FrameDeframer::finish() const {
  if (!buf_.empty())
    throw TransportError(Errc::Truncated, "stream ended inside a frame (" +
                                              std::to_string(buf_.size()) +
                                              " pending bytes)");
}

}  // namespace dlr::transport
