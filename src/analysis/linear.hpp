// Dense linear algebra over Z_p for 64-bit prime p (p < 2^62): Gaussian
// elimination, rank, and sampling a uniform solution of an underdetermined
// system -- exactly what the Section 6 distinguisher needs to choose sk2
// "uniformly at random subject to the constraint c' = dB * prod d_i^{s_i} /
// dPhi" (stage (d) of the fake game).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/rng.hpp"

namespace dlr::analysis {

class MatZp {
 public:
  MatZp(std::size_t rows, std::size_t cols, std::uint64_t p)
      : rows_(rows), cols_(cols), p_(p), a_(rows, std::vector<std::uint64_t>(cols, 0)) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::uint64_t modulus() const { return p_; }

  std::uint64_t& at(std::size_t r, std::size_t c) { return a_[r][c]; }
  [[nodiscard]] std::uint64_t at(std::size_t r, std::size_t c) const { return a_[r][c]; }

  [[nodiscard]] std::size_t rank() const {
    auto m = a_;
    return echelonize(m, p_).size();
  }

  /// Sample a uniform solution x of A x = b (mod p); nullopt if inconsistent.
  /// Free variables are drawn uniformly, pivot variables back-substituted, so
  /// the output is uniform over the full solution space.
  [[nodiscard]] std::optional<std::vector<std::uint64_t>> sample_solution(
      const std::vector<std::uint64_t>& b, crypto::Rng& rng) const {
    if (b.size() != rows_) throw std::invalid_argument("MatZp: rhs size mismatch");
    // Augment.
    auto m = a_;
    for (std::size_t r = 0; r < rows_; ++r) m[r].push_back(b[r] % p_);
    const auto pivots = echelonize(m, p_, /*augmented=*/true);
    // Inconsistent iff a pivot landed in the augmented column.
    for (const auto pc : pivots)
      if (pc == cols_) return std::nullopt;

    std::vector<bool> is_pivot(cols_, false);
    for (const auto pc : pivots) is_pivot[pc] = true;
    std::vector<std::uint64_t> x(cols_, 0);
    for (std::size_t c = 0; c < cols_; ++c)
      if (!is_pivot[c]) x[c] = rng.below(p_);
    // Back-substitute (rows are in echelon form, pivots normalized to 1).
    for (std::size_t r = pivots.size(); r-- > 0;) {
      const std::size_t pc = pivots[r];
      std::uint64_t v = m[r][cols_];  // rhs
      for (std::size_t c = pc + 1; c < cols_; ++c)
        v = subm(v, mulm(m[r][c], x[c]));
      x[pc] = v;
    }
    return x;
  }

 private:
  [[nodiscard]] std::uint64_t mulm(std::uint64_t a, std::uint64_t b) const {
    return static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) * b) % p_);
  }
  [[nodiscard]] std::uint64_t subm(std::uint64_t a, std::uint64_t b) const {
    return a >= b ? a - b : a + p_ - b;
  }

  static std::uint64_t inv_mod(std::uint64_t a, std::uint64_t p) {
    // Fermat.
    std::uint64_t r = 1, e = p - 2;
    a %= p;
    while (e != 0) {
      if (e & 1) r = static_cast<std::uint64_t>((static_cast<unsigned __int128>(r) * a) % p);
      a = static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) * a) % p);
      e >>= 1;
    }
    return r;
  }

  /// Reduced row echelon form in place; returns pivot column per pivot row.
  /// When `augmented`, the last column can host a pivot (inconsistency).
  static std::vector<std::size_t> echelonize(std::vector<std::vector<std::uint64_t>>& m,
                                             std::uint64_t p, bool augmented = false) {
    std::vector<std::size_t> pivots;
    if (m.empty()) return pivots;
    const std::size_t ncols = m[0].size();
    std::size_t row = 0;
    for (std::size_t col = 0; col < ncols && row < m.size(); ++col) {
      std::size_t sel = row;
      while (sel < m.size() && m[sel][col] % p == 0) ++sel;
      if (sel == m.size()) continue;
      std::swap(m[sel], m[row]);
      const std::uint64_t inv = inv_mod(m[row][col] % p, p);
      for (auto& v : m[row])
        v = static_cast<std::uint64_t>((static_cast<unsigned __int128>(v % p) * inv) % p);
      for (std::size_t r = 0; r < m.size(); ++r) {
        if (r == row || m[r][col] % p == 0) continue;
        const std::uint64_t f = m[r][col] % p;
        for (std::size_t c = 0; c < ncols; ++c) {
          const auto sub = static_cast<std::uint64_t>(
              (static_cast<unsigned __int128>(f) * m[row][c]) % p);
          m[r][c] = (m[r][c] % p) >= sub ? (m[r][c] % p) - sub : (m[r][c] % p) + p - sub;
        }
      }
      pivots.push_back(col);
      ++row;
      (void)augmented;
    }
    return pivots;
  }

  std::size_t rows_, cols_;
  std::uint64_t p_;
  std::vector<std::vector<std::uint64_t>> a_;
};

}  // namespace dlr::analysis
