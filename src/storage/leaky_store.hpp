// Secure storage on continually leaky devices (paper Sections 1.1 and 4.4):
// store Enc_pk(s) on one leaky device and the key shares on the devices,
// refresh everything periodically.
//
// Concretely: a uniform GT element k is drawn as a KEM key; the payload is
// XOR-encrypted under KDF(k); the DLR ciphertext of k sits in device 1's
// *public* memory next to P1's share, and P2 holds the other share. Each
// period the DLR shares are refreshed AND the KEM ciphertext is
// re-randomized (Enc is ElGamal-like: (A, B) -> (A*g^u, B*Z^u) encrypts the
// same k under fresh randomness), so no fixed ciphertext/key pair survives
// across periods. Retrieval runs the 2-party decryption protocol.
#pragma once

#include "crypto/chacha20.hpp"
#include "schemes/dlr.hpp"

namespace dlr::storage {

template <group::BilinearGroup GG>
class LeakyStore {
 public:
  using Core = schemes::DlrCore<GG>;
  using GT = typename GG::GT;

  static LeakyStore create(GG gg, const schemes::DlrParams& prm, schemes::P1Mode mode,
                           std::uint64_t seed) {
    return LeakyStore(std::move(gg), prm, mode, seed);
  }

  /// Store a payload (replaces any previous one).
  void put(const Bytes& payload) {
    const GT k = gg_.gt_random(rng_);
    kem_ct_ = Core::enc(gg_, sys_.pk(), k, rng_);
    blob_ = seal(k, payload);
  }

  /// Retrieve the payload via the 2-party decryption protocol.
  [[nodiscard]] Bytes get() {
    if (!kem_ct_) throw std::logic_error("LeakyStore::get: nothing stored");
    net::Channel ch;
    return get(ch);
  }

  [[nodiscard]] Bytes get(net::Channel& ch) {
    const GT k = sys_.decrypt(*kem_ct_, ch);
    return unseal(k, blob_);
  }

  /// One refresh period: re-randomize the stored KEM ciphertext and refresh
  /// the key shares. After this, *nothing* in either device's memory is the
  /// same as before, yet get() still returns the payload.
  void refresh_period() {
    if (kem_ct_) {
      const auto u = gg_.sc_random(rng_);
      kem_ct_->a = gg_.g_mul(kem_ct_->a, gg_.g_pow(sys_.pk().g, u));
      kem_ct_->b = gg_.gt_mul(kem_ct_->b, gg_.gt_pow(sys_.pk().z, u));
    }
    sys_.refresh();
  }

  [[nodiscard]] schemes::DlrSystem<GG>& system() { return sys_; }
  [[nodiscard]] const std::optional<typename Core::Ciphertext>& kem_ciphertext() const {
    return kem_ct_;
  }
  [[nodiscard]] const Bytes& sealed_blob() const { return blob_; }

  /// Total public storage overhead beyond the payload itself.
  [[nodiscard]] std::size_t overhead_bytes() const {
    return Core::ciphertext_bytes(gg_) + 16;  // KEM ct + seal header
  }

 private:
  LeakyStore(GG gg, const schemes::DlrParams& prm, schemes::P1Mode mode, std::uint64_t seed)
      : gg_(gg),
        sys_(schemes::DlrSystem<GG>::create(gg, prm, mode, seed)),
        rng_(crypto::Rng(seed).fork("store")) {}

  [[nodiscard]] Bytes key_material(const GT& k) const {
    ByteWriter w;
    gg_.gt_ser(w, k);
    return crypto::kdf(w.bytes(), 44, "dlr.store.kem");  // 32B key + 12B nonce
  }

  [[nodiscard]] Bytes seal(const GT& k, const Bytes& payload) const {
    const auto km = key_material(k);
    Bytes out = payload;
    crypto::ChaCha20 cc{std::span<const std::uint8_t>(km.data(), 32),
                        std::span<const std::uint8_t>(km.data() + 32, 12)};
    cc.xor_stream(out);
    // Append an integrity tag so corrupted retrieval is detected.
    ByteWriter w;
    w.blob(out);
    const auto tag = crypto::tagged_hash("dlr.store.tag", km + out);
    w.raw(std::span<const std::uint8_t>(tag.data(), 16));
    return w.take();
  }

  [[nodiscard]] Bytes unseal(const GT& k, const Bytes& blob) const {
    const auto km = key_material(k);
    ByteReader r(blob);
    Bytes ct = r.blob();
    const auto tag = r.raw(16);
    const auto expect = crypto::tagged_hash("dlr.store.tag", km + ct);
    if (!std::equal(tag.begin(), tag.end(), expect.begin()))
      throw std::runtime_error("LeakyStore: integrity check failed");
    crypto::ChaCha20 cc{std::span<const std::uint8_t>(km.data(), 32),
                        std::span<const std::uint8_t>(km.data() + 32, 12)};
    cc.xor_stream(ct);
    return ct;
  }

  GG gg_;
  schemes::DlrSystem<GG> sys_;
  crypto::Rng rng_;
  std::optional<typename Core::Ciphertext> kem_ct_;
  Bytes blob_;
};

}  // namespace dlr::storage
