# Empty compiler generated dependencies file for bench_f10_fake_game.
# This may be replaced when dependencies are built.
