file(REMOVE_RECURSE
  "CMakeFiles/perf_paths_test.dir/perf_paths_test.cpp.o"
  "CMakeFiles/perf_paths_test.dir/perf_paths_test.cpp.o.d"
  "perf_paths_test"
  "perf_paths_test.pdb"
  "perf_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
