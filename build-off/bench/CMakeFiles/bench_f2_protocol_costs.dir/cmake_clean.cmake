file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_protocol_costs.dir/bench_f2_protocol_costs.cpp.o"
  "CMakeFiles/bench_f2_protocol_costs.dir/bench_f2_protocol_costs.cpp.o.d"
  "bench_f2_protocol_costs"
  "bench_f2_protocol_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_protocol_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
