// Tests for the CCA2 continual-leakage game: oracle behavior, the
// challenge-query restriction, budgets, and a malleation adversary that the
// BCHK transform must defeat.
#include <gtest/gtest.h>

#include "group/mock_group.hpp"
#include "leakage/game_cca2.hpp"

namespace dlr::leakage {
namespace {

using crypto::Rng;
using group::make_mock;
using group::MockGroup;
using schemes::DlrParams;

DlrParams mock_params() {
  auto gg = make_mock();
  return DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

using Game = Cca2CmlGame<MockGroup>;

/// Exercises the oracle on self-made ciphertexts, then guesses blind.
class OracleUser final : public Game::Adversary {
 public:
  OracleUser(MockGroup gg, std::size_t periods, bool try_challenge_query = false)
      : gg_(std::move(gg)), periods_(periods), try_challenge_(try_challenge_query) {}

  bool wants_more_leakage(const Game::View& v) override {
    return v.periods.size() < periods_;
  }

  Game::LeakagePlan plan(std::size_t, const Game::View& v, Game::Oracle& oracle) override {
    // Use the oracle *during* the leakage phase on a self-encrypted message.
    Rng rng(900 + v.periods.size());
    const auto m = gg_.gt_random(rng);
    const auto ct = Game::Sys::enc(*scheme_, *v.pp, m, rng);
    const auto out = oracle.decrypt(ct);
    oracle_worked_ = out.has_value() && gg_.gt_eq(*out, m);
    Game::LeakagePlan p;
    p.h1 = p.h1_ref = p.h2 = p.h2_ref = no_leakage();
    return p;
  }

  std::pair<group::MockGT, group::MockGT> choose_messages(const Game::View&,
                                                          Rng& rng) override {
    return {gg_.gt_random(rng), gg_.gt_random(rng)};
  }

  int guess(const Game::View&, const Game::Ciphertext& challenge,
            Game::Oracle& oracle) override {
    if (try_challenge_) {
      EXPECT_THROW((void)oracle.decrypt(challenge), std::logic_error);
      challenge_refused_ = true;
    } else {
      // Mauling the challenge breaks the OTS signature: oracle must reject.
      auto mauled = challenge;
      mauled.inner.b = gg_.gt_mul(mauled.inner.b, gg_.gt_gen());
      const auto out = oracle.decrypt(mauled);
      maul_rejected_ = !out.has_value();
    }
    return 0;
  }

  void set_scheme(const schemes::DlrIbe<MockGroup>* s) { scheme_ = s; }
  [[nodiscard]] bool oracle_worked() const { return oracle_worked_; }
  [[nodiscard]] bool maul_rejected() const { return maul_rejected_; }
  [[nodiscard]] bool challenge_refused() const { return challenge_refused_; }

 private:
  MockGroup gg_;
  std::size_t periods_;
  bool try_challenge_;
  const schemes::DlrIbe<MockGroup>* scheme_ = nullptr;
  bool oracle_worked_ = false;
  bool maul_rejected_ = false;
  bool challenge_refused_ = false;
};

// The scheme object is only needed for enc inside plan(); construct a twin.
schemes::DlrIbe<MockGroup> twin_scheme() {
  return schemes::DlrIbe<MockGroup>(make_mock(), mock_params(), 32);
}

TEST(Cca2GameTest, OracleAnswersHonestQueries) {
  const auto gg = make_mock();
  Game game(gg, {mock_params(), 32, 0, 0, 77});
  OracleUser adv(gg, 2);
  const auto scheme = twin_scheme();
  adv.set_scheme(&scheme);
  const auto res = game.run(adv);
  EXPECT_FALSE(res.aborted);
  EXPECT_TRUE(adv.oracle_worked());
  EXPECT_GE(res.oracle_queries, 3u);  // 2 during leakage + 1 at guess
}

TEST(Cca2GameTest, MauledChallengeRejectedByOracle) {
  const auto gg = make_mock();
  Game game(gg, {mock_params(), 32, 0, 0, 78});
  OracleUser adv(gg, 1);
  const auto scheme = twin_scheme();
  adv.set_scheme(&scheme);
  (void)game.run(adv);
  EXPECT_TRUE(adv.maul_rejected());
}

TEST(Cca2GameTest, ChallengeQueryRefused) {
  const auto gg = make_mock();
  Game game(gg, {mock_params(), 32, 0, 0, 79});
  OracleUser adv(gg, 1, /*try_challenge_query=*/true);
  const auto scheme = twin_scheme();
  adv.set_scheme(&scheme);
  (void)game.run(adv);
  EXPECT_TRUE(adv.challenge_refused());
}

class GreedyCca2 final : public Game::Adversary {
 public:
  GreedyCca2(MockGroup gg, std::size_t bits) : gg_(std::move(gg)), bits_(bits) {}
  bool wants_more_leakage(const Game::View& v) override { return v.periods.empty(); }
  Game::LeakagePlan plan(std::size_t, const Game::View&, Game::Oracle&) override {
    Game::LeakagePlan p;
    p.h1 = window_bits(0, bits_);
    p.bits1 = bits_;
    p.h1_ref = p.h2 = p.h2_ref = no_leakage();
    return p;
  }
  std::pair<group::MockGT, group::MockGT> choose_messages(const Game::View&,
                                                          Rng& rng) override {
    return {gg_.gt_random(rng), gg_.gt_random(rng)};
  }
  int guess(const Game::View&, const Game::Ciphertext&, Game::Oracle&) override { return 0; }

 private:
  MockGroup gg_;
  std::size_t bits_;
};

TEST(Cca2GameTest, BudgetEnforced) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  {
    Game game(gg, {prm, 32, 0, 0, 80});
    GreedyCca2 adv(gg, prm.b1_bits() + 1);
    EXPECT_TRUE(game.run(adv).aborted);
  }
  {
    Game game(gg, {prm, 32, 0, 0, 81});
    GreedyCca2 adv(gg, prm.b1_bits());
    EXPECT_FALSE(game.run(adv).aborted);
  }
}

}  // namespace
}  // namespace dlr::leakage
