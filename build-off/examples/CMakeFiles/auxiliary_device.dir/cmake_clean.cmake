file(REMOVE_RECURSE
  "CMakeFiles/auxiliary_device.dir/auxiliary_device.cpp.o"
  "CMakeFiles/auxiliary_device.dir/auxiliary_device.cpp.o.d"
  "auxiliary_device"
  "auxiliary_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auxiliary_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
