// Wire schema of the multi-tenant keystore service (DESIGN.md §11), layered
// on the svc.* conventions of service/protocol.hpp: one Data frame per
// request on its own mux session, answered by one `*.ok` Data frame or one
// svc.err Error frame (the keystore reuses ServiceErrc, adding WrongShard
// and UnknownKey).
//
// Every ks.* request starts with the key address, then mirrors its svc.*
// counterpart:
//
//   ks.dec         body = str tenant | str key | u64 epoch | blob dec.r1 [| u32 deadline_ms]
//     -> ks.dec.ok body = blob dec.r2 | u64 spent_millibits | u64 budget_millibits
//   ks.ref         body = str tenant | str key | u64 epoch | blob ref.r1
//     -> ks.ref.ok body = blob ref.r2
//   ks.ref.commit  body = str tenant | str key | u64 epoch | blob digest
//     -> ks.ref.commit.ok body = u64 new_epoch
//   ks.hello       body = str tenant | str key | <svc.hello body>
//     -> ks.hello.ok      body = <svc.hello.ok body>
//   ks.put         body = str tenant | str key | blob sk2_ser
//     -> ks.put.ok        body = (empty)
//   ks.map         body = (empty)
//     -> ks.map.ok        body = ShardMap::encode()
//
// Live resharding (DESIGN.md §14) adds an operator/peer surface, gated on
// the PR 9 hello-v2 wire version (a propose names the minimum version every
// shard must speak, because the migration routes below did not exist before
// it):
//
//   ks.map.propose body = u8 min_wire_version | blob ShardMap::encode()
//     -> ks.map.propose.ok body = u32 outgoing_keys
//   ks.migrate.offer  body = u64 map_version | u32 from_shard | str tenant
//                          | str key | u64 spent_millibits | blob state
//     -> ks.migrate.offer.ok  body = blob digest       (SHA-256 of state)
//   ks.migrate.commit body = u64 map_version | u32 from_shard | str tenant
//                          | str key | u64 spent_millibits | blob digest
//     -> ks.migrate.commit.ok body = (empty)
//   ks.migrate.done   body = u64 map_version | u32 from_shard
//     -> ks.migrate.done.ok   body = (empty)
//
// `state` is the key's full journal record (epoch, share, pending 2PC,
// rolled-back digest) -- journal-segment shipping: the destination journals
// it verbatim and acks with its digest, making every migration step
// idempotent by (key, map_version, digest) exactly like the PR 4 epoch 2PC.
// spent_millibits carries the live leakage-budget position so the budget
// period survives the move.
//
// ks.dec.ok piggybacks the server's leakage accounting (spent/budget in
// MILLIbits so fractional per-op charges stay integral on the wire): the
// client fleet mirrors it into its own refresh scheduler without a separate
// polling route. ks.hello is PER KEY -- reconnect reconciliation only runs
// for keys with a pending refresh, never as a 10k-key blanket exchange.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "crypto/bytes.hpp"
#include "keystore/key_id.hpp"
#include "service/protocol.hpp"

namespace dlr::keystore {

inline constexpr char kKsDec[] = "ks.dec";
inline constexpr char kKsDecOk[] = "ks.dec.ok";
inline constexpr char kKsRef[] = "ks.ref";
inline constexpr char kKsRefOk[] = "ks.ref.ok";
inline constexpr char kKsRefCommit[] = "ks.ref.commit";
inline constexpr char kKsRefCommitOk[] = "ks.ref.commit.ok";
inline constexpr char kKsHello[] = "ks.hello";
inline constexpr char kKsHelloOk[] = "ks.hello.ok";
inline constexpr char kKsPut[] = "ks.put";
inline constexpr char kKsPutOk[] = "ks.put.ok";
inline constexpr char kKsMap[] = "ks.map";
inline constexpr char kKsMapOk[] = "ks.map.ok";
inline constexpr char kKsMapPropose[] = "ks.map.propose";
inline constexpr char kKsMapProposeOk[] = "ks.map.propose.ok";
inline constexpr char kKsMigOffer[] = "ks.migrate.offer";
inline constexpr char kKsMigOfferOk[] = "ks.migrate.offer.ok";
inline constexpr char kKsMigCommit[] = "ks.migrate.commit";
inline constexpr char kKsMigCommitOk[] = "ks.migrate.commit.ok";
inline constexpr char kKsMigDone[] = "ks.migrate.done";
inline constexpr char kKsMigDoneOk[] = "ks.migrate.done.ok";

struct KsRequest {
  KeyId id;
  std::uint64_t epoch = 0;
  Bytes payload;  // dec.r1 / ref.r1 / commit digest
  /// Remaining client deadline budget at send time; 0 = none. Trailing and
  /// optional exactly like the svc.* request field -- senders stamp it only
  /// after a >= kWireDeadlineVersion hello.
  std::uint32_t deadline_ms = 0;
};

[[nodiscard]] inline Bytes encode_ks_request(const KeyId& id, std::uint64_t epoch,
                                             const Bytes& payload,
                                             std::uint32_t deadline_ms = 0) {
  ByteWriter w;
  w.str(id.tenant);
  w.str(id.key);
  w.u64(epoch);
  w.blob(payload);
  if (deadline_ms != 0) w.u32(deadline_ms);
  return w.take();
}

[[nodiscard]] inline KsRequest decode_ks_request(const Bytes& body) {
  ByteReader r(body);
  KsRequest req;
  req.id.tenant = r.str();
  req.id.key = r.str();
  req.epoch = r.u64();
  req.payload = r.blob();
  if (!r.done()) req.deadline_ms = r.u32();
  if (!r.done()) throw std::invalid_argument("ks request: trailing bytes");
  return req;
}

struct KsDecOk {
  Bytes reply;
  std::uint64_t spent_millibits = 0;
  std::uint64_t budget_millibits = 0;
};

[[nodiscard]] inline Bytes encode_ks_dec_ok(const KsDecOk& ok) {
  ByteWriter w;
  w.blob(ok.reply);
  w.u64(ok.spent_millibits);
  w.u64(ok.budget_millibits);
  return w.take();
}

[[nodiscard]] inline KsDecOk decode_ks_dec_ok(const Bytes& body) {
  ByteReader r(body);
  KsDecOk ok;
  ok.reply = r.blob();
  ok.spent_millibits = r.u64();
  ok.budget_millibits = r.u64();
  if (!r.done()) throw std::invalid_argument("ks.dec.ok: trailing bytes");
  return ok;
}

[[nodiscard]] inline Bytes encode_ks_hello(const KeyId& id, const service::HelloMsg& h) {
  ByteWriter w;
  w.str(id.tenant);
  w.str(id.key);
  w.raw(service::encode_hello(h));
  return w.take();
}

struct KsHello {
  KeyId id;
  service::HelloMsg hello;
};

[[nodiscard]] inline KsHello decode_ks_hello(const Bytes& body) {
  ByteReader r(body);
  KsHello kh;
  kh.id.tenant = r.str();
  kh.id.key = r.str();
  Bytes rest;
  while (!r.done()) rest.push_back(r.u8());
  kh.hello = service::decode_hello(rest);
  return kh;
}

struct KsMapPropose {
  std::uint8_t min_wire_version = 0;
  Bytes map_body;  // ShardMap::encode() of the proposed map
};

[[nodiscard]] inline Bytes encode_ks_map_propose(const Bytes& map_body) {
  ByteWriter w;
  w.u8(service::kWireDeadlineVersion);
  w.blob(map_body);
  return w.take();
}

[[nodiscard]] inline KsMapPropose decode_ks_map_propose(const Bytes& body) {
  ByteReader r(body);
  KsMapPropose p;
  p.min_wire_version = r.u8();
  p.map_body = r.blob();
  if (!r.done()) throw std::invalid_argument("ks.map.propose: trailing bytes");
  return p;
}

/// Shared body of ks.migrate.offer (blob = shipped state) and
/// ks.migrate.commit (blob = state digest).
struct KsMigrate {
  std::uint64_t map_version = 0;
  std::uint32_t from_shard = 0;
  KeyId id;
  std::uint64_t spent_millibits = 0;
  Bytes blob;
};

[[nodiscard]] inline Bytes encode_ks_migrate(const KsMigrate& m) {
  ByteWriter w;
  w.u64(m.map_version);
  w.u32(m.from_shard);
  w.str(m.id.tenant);
  w.str(m.id.key);
  w.u64(m.spent_millibits);
  w.blob(m.blob);
  return w.take();
}

[[nodiscard]] inline KsMigrate decode_ks_migrate(const Bytes& body) {
  ByteReader r(body);
  KsMigrate m;
  m.map_version = r.u64();
  m.from_shard = r.u32();
  m.id.tenant = r.str();
  m.id.key = r.str();
  m.spent_millibits = r.u64();
  m.blob = r.blob();
  if (!r.done()) throw std::invalid_argument("ks.migrate: trailing bytes");
  return m;
}

[[nodiscard]] inline Bytes encode_ks_mig_done(std::uint64_t map_version,
                                              std::uint32_t from_shard) {
  ByteWriter w;
  w.u64(map_version);
  w.u32(from_shard);
  return w.take();
}

struct KsMigDone {
  std::uint64_t map_version = 0;
  std::uint32_t from_shard = 0;
};

[[nodiscard]] inline KsMigDone decode_ks_mig_done(const Bytes& body) {
  ByteReader r(body);
  KsMigDone d;
  d.map_version = r.u64();
  d.from_shard = r.u32();
  if (!r.done()) throw std::invalid_argument("ks.migrate.done: trailing bytes");
  return d;
}

[[nodiscard]] inline Bytes encode_ks_put(const KeyId& id, const Bytes& sk2_ser) {
  ByteWriter w;
  w.str(id.tenant);
  w.str(id.key);
  w.blob(sk2_ser);
  return w.take();
}

struct KsPut {
  KeyId id;
  Bytes sk2_ser;
};

[[nodiscard]] inline KsPut decode_ks_put(const Bytes& body) {
  ByteReader r(body);
  KsPut p;
  p.id.tenant = r.str();
  p.id.key = r.str();
  p.sk2_ser = r.blob();
  if (!r.done()) throw std::invalid_argument("ks.put: trailing bytes");
  return p;
}

}  // namespace dlr::keystore
