// Client side of the DLR decryption service: the main processor P1 serving
// many local user threads, speaking to the remote auxiliary device P2Server.
//
// P1Runtime holds the singular P1 share behind a shared_mutex. Decryption
// round-1 construction runs under the shared lock (dec_round1 is const given
// a prepared period and a caller rng); the refresh protocol runs under the
// exclusive lock and bumps the local epoch when it completes. A decryption's
// period key (sigma) is captured at round-1 time, so an in-flight request
// finishes correctly even when a refresh rotates the period during the
// network round trip -- the server's epoch coordinator is what rejects the
// requests that actually raced the share rotation.
//
// DecryptionClient is one connection's view: it multiplexes every request
// (one mux session each) over a single FramedConn, auto-refreshes every K
// decryptions when configured, and decrypt() retries retryable service
// errors (StaleEpoch/Draining) after waiting for the local epoch to catch
// up. Several DecryptionClients may share one P1Runtime to fan out over
// multiple connections.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <shared_mutex>

#include "crypto/rng.hpp"
#include "schemes/dlr.hpp"
#include "service/protocol.hpp"
#include "telemetry/trace.hpp"
#include "transport/mux.hpp"

namespace dlr::service {

template <group::BilinearGroup GG>
class P1Runtime {
 public:
  using Core = schemes::DlrCore<GG>;
  using GT = typename GG::GT;

  struct DecSnapshot {
    std::uint64_t epoch = 0;
    Bytes round1;
    typename schemes::HpskeGT<GG>::SecretKey sigma;  // period key for finish
  };

  P1Runtime(GG gg, schemes::DlrParams prm, typename Core::PublicKey pk,
            typename Core::Sk1 sk1, schemes::P1Mode mode, crypto::Rng rng)
      : p1_(std::move(gg), prm, std::move(pk), std::move(sk1), mode, std::move(rng)) {
    p1_.prepare_period();
  }

  /// Build round 1 + capture (epoch, period key) consistently under the
  /// shared lock. `rng` is the calling thread's own generator.
  [[nodiscard]] DecSnapshot begin_decrypt(const typename Core::Ciphertext& c,
                                          crypto::Rng& rng) {
    std::shared_lock lock(mu_);
    DecSnapshot snap;
    snap.round1 = p1_.dec_round1(c, rng);
    snap.sigma = p1_.period_sigma_gt();
    std::lock_guard elock(epoch_mu_);
    snap.epoch = epoch_;
    return snap;
  }

  /// Decrypt the server's reply with the snapshot's period key. Touches only
  /// immutable P1 members, so no lock is needed.
  [[nodiscard]] GT finish_decrypt(const DecSnapshot& snap, const Bytes& reply) const {
    return p1_.dec_finish_with(snap.sigma, reply);
  }

  /// Run the refresh protocol under the exclusive lock. `round_trip` is
  /// called with (current epoch, ref round 1) and must return ref round 2
  /// (ServiceError/TransportError propagate; P1 state is then unchanged and
  /// no epoch bump happens). On success the period is re-prepared and the
  /// local epoch advances, waking decrypt() retries.
  template <class RoundTrip>
  void refresh(RoundTrip&& round_trip) {
    std::unique_lock lock(mu_);
    std::uint64_t e;
    {
      std::lock_guard elock(epoch_mu_);
      e = epoch_;
    }
    const Bytes r1 = p1_.ref_round1();
    const Bytes r2 = round_trip(e, r1);
    p1_.ref_finish(r2);
    p1_.prepare_period();
    {
      std::lock_guard elock(epoch_mu_);
      ++epoch_;
    }
    epoch_cv_.notify_all();
  }

  [[nodiscard]] std::uint64_t epoch() const {
    std::lock_guard lock(epoch_mu_);
    return epoch_;
  }

  /// Wait (bounded) for the epoch to move past `seen` -- used by decrypt()
  /// retries so they re-issue only after the in-progress refresh lands.
  void wait_epoch_change(std::uint64_t seen, transport::Millis timeout) {
    std::unique_lock lock(epoch_mu_);
    epoch_cv_.wait_for(lock, timeout, [&] { return epoch_ != seen; });
  }

  /// Current share (tests: msk-constancy checks). Takes the exclusive lock.
  [[nodiscard]] typename Core::Sk1 share_for_test() {
    std::unique_lock lock(mu_);
    return p1_.recover_share_for_test();
  }

 private:
  schemes::DlrParty1<GG> p1_;
  std::shared_mutex mu_;             // guards p1_ mutation vs. round-1 reads
  mutable std::mutex epoch_mu_;      // guards epoch_ (cv companion)
  std::condition_variable epoch_cv_;
  std::uint64_t epoch_ = 0;
};

template <group::BilinearGroup GG>
class DecryptionClient {
 public:
  using Core = schemes::DlrCore<GG>;
  using GT = typename GG::GT;

  struct Options {
    transport::TransportOptions transport{};
    transport::Millis request_timeout{10000};
    int max_retries = 8;        // retryable-error retries per decrypt()
    int auto_refresh_every = 0;  // run Refresh every K decryptions (0 = never)
  };

  DecryptionClient(std::shared_ptr<P1Runtime<GG>> p1, std::uint16_t port, Options opt = {})
      : p1_(std::move(p1)),
        opt_(opt),
        mux_(std::make_shared<transport::FramedConn>(
            transport::connect_loopback(port, opt.transport), opt.transport)) {}

  [[nodiscard]] P1Runtime<GG>& p1() { return *p1_; }
  [[nodiscard]] std::uint64_t epoch() const { return p1_->epoch(); }

  /// One DistDec round trip; throws ServiceError (retryable() for
  /// StaleEpoch/Draining) and TransportError.
  [[nodiscard]] GT decrypt_once(const typename Core::Ciphertext& c) {
    telemetry::ScopedSpan span("svc.client.dec");
    thread_local crypto::Rng rng = crypto::Rng::from_os_entropy();
    const auto snap = p1_->begin_decrypt(c, rng);
    auto sess = mux_.open();
    sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P1),
               kLabelDecReq, encode_request(snap.epoch, snap.round1));
    const Bytes r2 = expect_ok(sess->recv(opt_.request_timeout), kLabelDecOk);
    return p1_->finish_decrypt(snap, r2);
  }

  /// DistDec with the auto-refresh policy and retry of retryable errors.
  [[nodiscard]] GT decrypt(const typename Core::Ciphertext& c) {
    maybe_auto_refresh();
    for (int attempt = 0;; ++attempt) {
      const std::uint64_t seen = p1_->epoch();
      try {
        return decrypt_once(c);
      } catch (const ServiceError& e) {
        if (!e.retryable() || attempt >= opt_.max_retries) throw;
        telemetry::Registry::global().counter("svc.client.retries").add();
        // The epoch bump lands when the (local) refresher finishes; bounded
        // wait covers the Draining race where our epoch is already current.
        p1_->wait_epoch_change(seen, transport::Millis{50});
      }
    }
  }

  /// Run the Refresh protocol over this connection, advancing the epoch.
  void refresh() {
    telemetry::ScopedSpan span("svc.client.refresh");
    p1_->refresh([&](std::uint64_t epoch, const Bytes& r1) {
      auto sess = mux_.open();
      sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P1),
                 kLabelRefReq, encode_request(epoch, r1));
      return expect_ok(sess->recv(opt_.request_timeout), kLabelRefOk);
    });
  }

  void close() { mux_.stop(); }

 private:
  void maybe_auto_refresh() {
    if (opt_.auto_refresh_every <= 0) return;
    const auto n = dec_count_.fetch_add(1) + 1;
    if (n % static_cast<std::uint64_t>(opt_.auto_refresh_every) != 0) return;
    // One refresher at a time per client; losers skip (their decrypts would
    // only pile onto the drain).
    bool expected = false;
    if (!refreshing_.compare_exchange_strong(expected, true)) return;
    try {
      refresh();
    } catch (...) {
      refreshing_.store(false);
      throw;
    }
    refreshing_.store(false);
  }

  std::shared_ptr<P1Runtime<GG>> p1_;
  Options opt_;
  transport::SessionMux mux_;
  std::atomic<std::uint64_t> dec_count_{0};
  std::atomic<bool> refreshing_{false};
};

}  // namespace dlr::service
