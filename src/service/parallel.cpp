#include "service/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace dlr::service {

int default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 4;
  if (hw < 2) return 2;
  if (hw > 8) return 8;
  return static_cast<int>(hw);
}

int parallel_env_threads() {
  const char* v = std::getenv("DLR_PARALLEL");
  if (v == nullptr || *v == '\0') return 0;
  const std::string s(v);
  if (s == "0" || s == "off" || s == "OFF") return 0;
  if (s == "on" || s == "ON" || s == "auto" || s == "AUTO") return default_workers();
  char* end = nullptr;
  const long n = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || n <= 0) return 0;
  return static_cast<int>(n > 64 ? 64 : n);
}

namespace {

std::atomic<int> g_test_override{-1};
std::atomic<int> g_adaptive_default{-1};
thread_local int tl_suppress_depth = 0;

struct EnvConfig {
  bool set;     // the env var was present (even if it said "off")
  int threads;  // its parsed value
};

// Resolved once, on the first parallel_threads() call. Tests that need a
// different width use the override hook, not setenv.
const EnvConfig& env_config() {
  static const EnvConfig cfg{std::getenv("DLR_PARALLEL") != nullptr &&
                                 *std::getenv("DLR_PARALLEL") != '\0',
                             parallel_env_threads()};
  return cfg;
}

}  // namespace

int parallel_threads() {
  const int ov = g_test_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov;
  const EnvConfig& cfg = env_config();
  if (cfg.set) return cfg.threads;
  const int ad = g_adaptive_default.load(std::memory_order_relaxed);
  return ad >= 0 ? ad : 0;
}

void set_parallel_threads_for_test(int n) {
  g_test_override.store(n < 0 ? -1 : n, std::memory_order_relaxed);
}

void set_adaptive_parallel_default(int n) {
  g_adaptive_default.store(n < 0 ? -1 : n, std::memory_order_relaxed);
}

bool fanout_suppressed() { return tl_suppress_depth > 0; }

FanoutSuppressGuard::FanoutSuppressGuard(bool active) : active_(active) {
  if (active_) ++tl_suppress_depth;
}

FanoutSuppressGuard::~FanoutSuppressGuard() {
  if (active_) --tl_suppress_depth;
}

struct ParallelFor::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex m;
  std::condition_variable cv;
  std::exception_ptr err;
};

struct ParallelFor::State {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::shared_ptr<Batch>> queue;
  std::vector<std::thread> workers;
  bool started = false;
  bool stop = false;
};

ParallelFor::ParallelFor(int threads)
    : threads_(threads < 0 ? 0 : threads), state_(std::make_shared<State>()) {}

ParallelFor::~ParallelFor() {
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->stop = true;
  }
  state_->cv.notify_all();
  for (auto& t : state_->workers) t.join();
}

void ParallelFor::ensure_started() {
  std::lock_guard<std::mutex> lk(state_->mu);
  if (state_->started || threads_ <= 0) return;
  state_->started = true;
  state_->workers.reserve(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    state_->workers.emplace_back(&ParallelFor::worker_main, state_);
  }
}

void ParallelFor::drive(Batch& b) {
  while (true) {
    const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.n) break;
    try {
      (*b.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(b.m);
      if (!b.err) b.err = std::current_exception();
    }
    if (b.done.fetch_add(1, std::memory_order_acq_rel) + 1 == b.n) {
      // Lock pairs with the waiter's predicate check so the final notify
      // cannot land between its check and its sleep.
      { std::lock_guard<std::mutex> lk(b.m); }
      b.cv.notify_all();
    }
  }
}

void ParallelFor::worker_main(std::shared_ptr<State> st) {
  while (true) {
    std::shared_ptr<Batch> b;
    {
      std::unique_lock<std::mutex> lk(st->mu);
      st->cv.wait(lk, [&] { return st->stop || !st->queue.empty(); });
      if (st->queue.empty()) {
        if (st->stop) return;
        continue;
      }
      b = st->queue.front();
      if (b->next.load(std::memory_order_relaxed) >= b->n) {
        // Exhausted batch still parked at the front; retire it and rescan.
        st->queue.pop_front();
        continue;
      }
    }
    drive(*b);
  }
}

void ParallelFor::run(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_ <= 0 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ensure_started();
  static telemetry::Counter* tasks = &telemetry::Registry::global().counter("par.tasks");
  tasks->add(n);

  auto b = std::make_shared<Batch>();
  b->n = n;
  b->body = &body;
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    state_->queue.push_back(b);
  }
  state_->cv.notify_all();

  drive(*b);  // caller claims indices too -> nested run() cannot deadlock

  {
    std::unique_lock<std::mutex> lk(b->m);
    b->cv.wait(lk, [&] { return b->done.load(std::memory_order_acquire) >= b->n; });
  }
  {
    // Retire the batch eagerly so sleeping workers don't have to.
    std::lock_guard<std::mutex> lk(state_->mu);
    for (auto it = state_->queue.begin(); it != state_->queue.end(); ++it) {
      if (it->get() == b.get()) {
        state_->queue.erase(it);
        break;
      }
    }
  }
  if (b->err) std::rethrow_exception(b->err);
}

ParallelFor& ParallelFor::global() {
  static ParallelFor pool([] {
    const int t = parallel_threads();
    return t > 0 ? t : default_workers();
  }());
  return pool;
}

void par_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n <= 1 || parallel_threads() <= 0 || fanout_suppressed()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ParallelFor::global().run(n, body);
}

}  // namespace dlr::service
