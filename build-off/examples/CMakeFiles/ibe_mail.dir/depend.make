# Empty dependencies file for ibe_mail.
# This may be replaced when dependencies are built.
