file(REMOVE_RECURSE
  "CMakeFiles/leakage_game_demo.dir/leakage_game_demo.cpp.o"
  "CMakeFiles/leakage_game_demo.dir/leakage_game_demo.cpp.o.d"
  "leakage_game_demo"
  "leakage_game_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_game_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
