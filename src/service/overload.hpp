// Overload accounting for the pipelined servers (DESIGN.md §13).
//
// One OverloadGovernor per server instance tracks an EWMA of the per-item
// crypto cost (updated by the crypto workers after every batch) and turns
// the current queue depth into a retry-after hint:
//
//   retry_after_ms ~= queue_depth * ewma_cost_us / workers / 1000
//
// i.e. "how long until the backlog ahead of you would have drained" --
// clamped to [1, hint_cap_ms] so a shed response always carries a nonzero,
// bounded hint. Before the first sample a conservative default cost stands
// in, so the very first shed of a cold server still hints something sane.
//
// The governor also decides DEGRADED mode: queue depth at or above
// high_water * queue_cap. Degraded servers deprioritize background refresh
// traffic (PREPAREs answered with retryable Overloaded) before they shed
// decrypts -- availability degrades before the leakage budget does; the
// keystore carves out keys whose spent fraction crossed the refresh floor
// (see KsServer), which are refreshed no matter what.
//
// Shed decisions are counted twice: in the process-global telemetry registry
// (svc.shed.*) and in local atomics the admin health section reads without
// touching any lock (PR 5 scrape rule).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "telemetry/metrics.hpp"

namespace dlr::service {

class OverloadGovernor {
 public:
  struct Options {
    int workers = 4;                 // crypto parallelism the hint divides by
    std::size_t queue_cap = 1024;    // the queue the depth is measured against
    double high_water = 0.75;        // depth/cap fraction that enters degraded
    std::uint32_t hint_cap_ms = 2000;  // retry-after ceiling
    double default_cost_us = 500.0;  // per-item cost before the first sample
    double alpha = 0.2;              // EWMA smoothing factor
  };

  OverloadGovernor() : OverloadGovernor(Options{}) {}
  explicit OverloadGovernor(Options opt) : opt_(opt) {
    if (opt_.workers < 1) opt_.workers = 1;
    if (opt_.queue_cap == 0) opt_.queue_cap = 1;
  }

  /// Crypto worker: fold one batch's measured cost into the EWMA.
  void record_batch(std::size_t items, double total_us) {
    if (items == 0) return;
    const double per_item = total_us / static_cast<double>(items);
    double prev = cost_us_.load(std::memory_order_relaxed);
    for (;;) {
      const double next = prev <= 0.0 ? per_item : prev + opt_.alpha * (per_item - prev);
      if (cost_us_.compare_exchange_weak(prev, next, std::memory_order_relaxed)) break;
    }
  }

  /// Smoothed per-item crypto cost in microseconds (default until sampled).
  [[nodiscard]] double cost_us() const {
    const double c = cost_us_.load(std::memory_order_relaxed);
    return c > 0.0 ? c : opt_.default_cost_us;
  }

  /// Server-computed backoff hint for a request shed at `queue_depth`:
  /// the estimated drain time of the backlog, never 0, never absurd.
  [[nodiscard]] std::uint32_t retry_after_ms(std::size_t queue_depth) const {
    const double drain_ms = static_cast<double>(queue_depth) * cost_us() /
                            static_cast<double>(opt_.workers) / 1000.0;
    const auto ms = static_cast<std::uint64_t>(drain_ms) + 1;  // ceil-ish, >= 1
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(ms, opt_.hint_cap_ms ? opt_.hint_cap_ms : 1));
  }

  /// Sustained-overload gate for graceful degradation (refresh
  /// deprioritization). Distinct from the hard shed at queue_cap: the server
  /// starts turning away background work while decrypts still fit.
  [[nodiscard]] bool degraded(std::size_t queue_depth) const {
    return static_cast<double>(queue_depth) >=
           opt_.high_water * static_cast<double>(opt_.queue_cap);
  }

  void count_shed_overload() {
    shed_overload_.fetch_add(1, std::memory_order_relaxed);
    static telemetry::Counter& c = telemetry::Registry::global().counter("svc.shed.overload");
    c.add();
  }
  void count_shed_deadline() {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    static telemetry::Counter& c = telemetry::Registry::global().counter("svc.shed.deadline");
    c.add();
  }
  void count_shed_refresh() {
    shed_refresh_.fetch_add(1, std::memory_order_relaxed);
    static telemetry::Counter& c = telemetry::Registry::global().counter("svc.shed.refresh");
    c.add();
  }

  [[nodiscard]] std::uint64_t shed_overload() const {
    return shed_overload_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed_deadline() const {
    return shed_deadline_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed_refresh() const {
    return shed_refresh_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  Options opt_;
  std::atomic<double> cost_us_{0.0};  // 0 = no sample yet
  std::atomic<std::uint64_t> shed_overload_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> shed_refresh_{0};
};

}  // namespace dlr::service
