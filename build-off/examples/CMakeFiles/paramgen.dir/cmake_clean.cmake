file(REMOVE_RECURSE
  "CMakeFiles/paramgen.dir/paramgen.cpp.o"
  "CMakeFiles/paramgen.dir/paramgen.cpp.o.d"
  "paramgen"
  "paramgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paramgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
