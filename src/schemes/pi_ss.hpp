// Pi_ss -- the paper's secondary symmetric scheme (Section 4.1), used to
// secret-share the Boneh-Boyen master key msk = g2^alpha between the devices:
// P2 holds sk_ss = (s_1..s_l); P1 holds Enc_ss(g2^alpha) = (a_1..a_l, Phi).
//
// This *is* the leakage-resilient secret sharing: by the leftover hash lemma
// the map (a_i) x (s_i) -> prod a_i^{s_i} is a pairwise-independent-style
// extractor, so Phi's mask retains entropy even under bounded leakage on the
// s_i (the BHHO/Naor-Segev argument).
#pragma once

#include "schemes/masked_enc.hpp"

namespace dlr::schemes {

template <group::BilinearGroup GG>
using PiSS = MaskedEnc<GG, SpaceG>;

}  // namespace dlr::schemes
