// Tests for the Pi_ss / HPSKE shared core: correctness, the Definition 5.1
// part-1 homomorphism, re-randomization, serialization, input validation.
#include <gtest/gtest.h>

#include "group/mock_group.hpp"
#include "group/tate_group.hpp"
#include "schemes/hpske.hpp"
#include "schemes/pi_ss.hpp"

namespace dlr::schemes {
namespace {

using crypto::Rng;
using group::make_mock;
using group::make_tate_ss256;
using group::MockGroup;

template <class Enc>
void roundtrip_battery(const Enc& enc, std::uint64_t seed, int iters) {
  Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    const auto sk = enc.gen(rng);
    const auto m = Enc::Sp::random(enc.group(), rng);
    const auto ct = enc.enc(sk, m, rng);
    EXPECT_TRUE(Enc::Sp::eq(enc.group(), enc.dec(sk, ct), m));
    // Wrong key fails to decrypt (overwhelmingly).
    const auto sk2 = enc.gen(rng);
    EXPECT_FALSE(Enc::Sp::eq(enc.group(), enc.dec(sk2, ct), m));
  }
}

template <class Enc>
void homomorphism_battery(const Enc& enc, std::uint64_t seed, int iters) {
  Rng rng(seed);
  const auto& gg = enc.group();
  for (int i = 0; i < iters; ++i) {
    const auto sk = enc.gen(rng);
    const auto m0 = Enc::Sp::random(gg, rng);
    const auto m1 = Enc::Sp::random(gg, rng);
    const auto c0 = enc.enc(sk, m0, rng);
    const auto c1 = enc.enc(sk, m1, rng);
    // Definition 5.1 (1): Dec(c0 * c1) = m0 * m1.
    EXPECT_TRUE(Enc::Sp::eq(gg, enc.dec(sk, enc.ct_mul(c0, c1)), Enc::Sp::mul(gg, m0, m1)));
    // Inverse and power.
    EXPECT_TRUE(Enc::Sp::eq(gg, enc.dec(sk, enc.ct_inv(c0)), Enc::Sp::inv(gg, m0)));
    const auto k = gg.sc_random(rng);
    EXPECT_TRUE(Enc::Sp::eq(gg, enc.dec(sk, enc.ct_pow(c0, k)), Enc::Sp::pow(gg, m0, k)));
    // ct_one is the unit.
    EXPECT_TRUE(c0.b.size() == enc.ct_mul(c0, enc.ct_one()).b.size());
    EXPECT_TRUE(Enc::Sp::eq(gg, enc.dec(sk, enc.ct_mul(c0, enc.ct_one())), m0));
    // Re-randomization preserves the plaintext but changes the ciphertext.
    const auto cr = enc.rerandomize(sk, c0, rng);
    EXPECT_TRUE(Enc::Sp::eq(gg, enc.dec(sk, cr), m0));
    EXPECT_FALSE(cr == c0);
  }
}

template <class Enc>
void serialization_battery(const Enc& enc, std::uint64_t seed) {
  Rng rng(seed);
  const auto sk = enc.gen(rng);
  const auto m = Enc::Sp::random(enc.group(), rng);
  const auto ct = enc.enc(sk, m, rng);

  ByteWriter w;
  enc.ser_sk(w, sk);
  EXPECT_EQ(w.size(), enc.sk_bytes());
  enc.ser_ct(w, ct);
  EXPECT_EQ(w.size(), enc.sk_bytes() + enc.ct_bytes());

  ByteReader r(w.bytes());
  const auto sk2 = enc.deser_sk(r);
  const auto ct2 = enc.deser_ct(r);
  EXPECT_TRUE(r.done());
  EXPECT_TRUE(Enc::Sp::eq(enc.group(), enc.dec(sk2, ct2), m));
}

TEST(PiSsTest, RoundTripMock) { roundtrip_battery(PiSS<MockGroup>(make_mock(), 21), 600, 100); }
TEST(PiSsTest, HomomorphismMock) {
  homomorphism_battery(PiSS<MockGroup>(make_mock(), 21), 601, 100);
}
TEST(PiSsTest, SerializationMock) { serialization_battery(PiSS<MockGroup>(make_mock(), 21), 602); }

TEST(HpskeTest, RoundTripMockG) {
  roundtrip_battery(HpskeG<MockGroup>(make_mock(), 4), 603, 100);
}
TEST(HpskeTest, RoundTripMockGT) {
  roundtrip_battery(HpskeGT<MockGroup>(make_mock(), 4), 604, 100);
}
TEST(HpskeTest, HomomorphismMockG) {
  homomorphism_battery(HpskeG<MockGroup>(make_mock(), 4), 605, 100);
}
TEST(HpskeTest, HomomorphismMockGT) {
  homomorphism_battery(HpskeGT<MockGroup>(make_mock(), 4), 606, 100);
}

using Tate = group::TateSS256;
TEST(PiSsTest, RoundTripTate) { roundtrip_battery(PiSS<Tate>(make_tate_ss256(), 9), 607, 2); }
TEST(HpskeTest, RoundTripTateG) {
  roundtrip_battery(HpskeG<Tate>(make_tate_ss256(), 3), 608, 2);
}
TEST(HpskeTest, RoundTripTateGT) {
  roundtrip_battery(HpskeGT<Tate>(make_tate_ss256(), 3), 609, 2);
}
TEST(HpskeTest, HomomorphismTateG) {
  homomorphism_battery(HpskeG<Tate>(make_tate_ss256(), 3), 610, 1);
}
TEST(HpskeTest, HomomorphismTateGT) {
  homomorphism_battery(HpskeGT<Tate>(make_tate_ss256(), 3), 611, 1);
}
TEST(HpskeTest, SerializationTateG) {
  serialization_battery(HpskeG<Tate>(make_tate_ss256(), 3), 612);
}
TEST(HpskeTest, SerializationTateGT) {
  serialization_battery(HpskeGT<Tate>(make_tate_ss256(), 3), 613);
}

// Property sweep over widths.
class MaskedEncWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MaskedEncWidth, RoundTripAndHomomorphism) {
  const auto w = GetParam();
  PiSS<MockGroup> enc(make_mock(), w);
  roundtrip_battery(enc, 700 + w, 20);
  homomorphism_battery(enc, 800 + w, 20);
}

INSTANTIATE_TEST_SUITE_P(Widths, MaskedEncWidth, ::testing::Values(1, 2, 3, 5, 9, 21, 64));

TEST(MaskedEncTest, ZeroWidthRejected) {
  EXPECT_THROW(PiSS<MockGroup>(make_mock(), 0), std::invalid_argument);
}

TEST(MaskedEncTest, WrongWidthInputsRejected) {
  PiSS<MockGroup> e3(make_mock(), 3);
  PiSS<MockGroup> e4(make_mock(), 4);
  Rng rng(615);
  const auto sk3 = e3.gen(rng);
  const auto sk4 = e4.gen(rng);
  const auto m = make_mock().g_random(rng);
  EXPECT_THROW((void)e4.enc(sk3, m, rng), std::invalid_argument);
  const auto ct3 = e3.enc(sk3, m, rng);
  EXPECT_THROW((void)e4.dec(sk4, ct3), std::invalid_argument);
  const auto ct4 = e4.enc(sk4, m, rng);
  EXPECT_THROW((void)e4.ct_mul(ct4, ct3), std::invalid_argument);
}

TEST(MaskedEncTest, EncWithCoinsIsDeterministic) {
  PiSS<MockGroup> enc(make_mock(), 5);
  Rng rng(616);
  const auto sk = enc.gen(rng);
  const auto m = make_mock().g_random(rng);
  std::vector<group::MockG> coins;
  for (int i = 0; i < 5; ++i) coins.push_back(make_mock().g_random(rng));
  const auto c1 = enc.enc_with_coins(sk, m, coins);
  const auto c2 = enc.enc_with_coins(sk, m, coins);
  EXPECT_TRUE(c1 == c2);
  EXPECT_THROW((void)enc.enc_with_coins(sk, m, {}), std::invalid_argument);
}

// The "same sigma decrypts G- and GT-ciphertexts" fact that the decryption
// protocol's pair_ct trick relies on.
TEST(HpskeTest, SharedSigmaAcrossSpaces) {
  const auto gg = make_mock();
  HpskeG<MockGroup> hg(gg, 4);
  HpskeGT<MockGroup> ht(gg, 4);
  Rng rng(617);
  const auto sigma = hg.gen(rng);
  // Same scalar vector works as a key for the GT instance.
  typename HpskeGT<MockGroup>::SecretKey sigma_t{sigma.s};
  const auto m = gg.gt_random(rng);
  const auto ct = ht.enc(sigma_t, m, rng);
  EXPECT_TRUE(gg.gt_eq(ht.dec(sigma_t, ct), m));
}

}  // namespace
}  // namespace dlr::schemes
