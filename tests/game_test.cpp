// Tests for the CML game machinery (Definition 3.2): budget accounting with
// the carry rule, leakage-function plumbing, abort behavior, and the
// share-accumulation attack that separates refresh-on from refresh-off.
#include <gtest/gtest.h>

#include "analysis/attacks.hpp"
#include "group/mock_group.hpp"
#include "leakage/game.hpp"

namespace dlr::leakage {
namespace {

using analysis::GuessingAdversary;
using analysis::ShareAccumulationAdversary;
using crypto::Rng;
using group::make_mock;
using group::MockGroup;
using schemes::DlrParams;
using schemes::P1Mode;

DlrParams mock_params() {
  auto gg = make_mock();
  return DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

// ---- LeakageBudget ------------------------------------------------------------

TEST(LeakageBudgetTest, SimpleWithinBound) {
  LeakageBudget b(100);
  EXPECT_TRUE(b.charge_period(60, 40));
  EXPECT_EQ(b.carried_bits(), 40u);
  EXPECT_EQ(b.lifetime_bits(), 100u);
}

TEST(LeakageBudgetTest, CarryRuleEnforced) {
  LeakageBudget b(100);
  ASSERT_TRUE(b.charge_period(0, 80));  // carry 80 into next period
  // Next period: 80 + 30 > 100 must fail...
  EXPECT_FALSE(b.charge_period(30, 0));
  // ...and failing charges nothing: 80 + 20 <= 100 still fine.
  EXPECT_TRUE(b.charge_period(20, 0));
  EXPECT_EQ(b.carried_bits(), 0u);
}

TEST(LeakageBudgetTest, ExactBoundaryAllowed) {
  LeakageBudget b(100);
  EXPECT_TRUE(b.charge_period(100, 0));
  EXPECT_TRUE(b.charge_period(0, 100));
  EXPECT_FALSE(b.charge_period(1, 0));  // carry 100 + 1 > 100
  EXPECT_TRUE(b.charge_period(0, 0));
  EXPECT_TRUE(b.charge_period(1, 0));   // carry cleared
}

TEST(LeakageBudgetTest, KeygenCharge) {
  LeakageBudget b(100);
  EXPECT_FALSE(b.charge_keygen(11, 10));
  EXPECT_TRUE(b.charge_keygen(10, 10));
  EXPECT_EQ(b.carried_bits(), 10u);
  EXPECT_FALSE(b.charge_period(95, 0));
  EXPECT_TRUE(b.charge_period(90, 0));
}

TEST(EntropyBudgetTest, ChargesDeclaredEntropyNotLength) {
  // Footnote 1: entropy-shrinking accounting. A long but low-entropy output
  // (e.g. a constant-padded window) charges only its declared entropy loss.
  EntropyBudget b(100);
  // A 10000-"bit-long" leakage declared to lose only 60 bits of entropy.
  EXPECT_TRUE(b.charge_period(60, 0));
  EXPECT_TRUE(b.charge_period(0, 100));
  EXPECT_FALSE(b.charge_period(1, 0));  // carry rule identical to Def 3.2
  EXPECT_EQ(b.bound_bits(), 100u);
  EXPECT_EQ(b.lifetime_bits(), 160u);
  // Contrast: the length-based budget would have aborted immediately on a
  // 10000-bit output.
  LeakageBudget len(100);
  EXPECT_FALSE(len.charge_period(10000, 0));
}

TEST(LeakageBudgetTest, LifetimeIsUnbounded) {
  LeakageBudget b(10);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(b.charge_period(10, 0));
  EXPECT_EQ(b.lifetime_bits(), 10000u);  // total >> bound: continual leakage
}

// ---- leakage functions ---------------------------------------------------------

TEST(LeakageFnTest, ExtractBitsBasics) {
  const Bytes src{0b10110100, 0xff};
  const auto w = extract_bits(src, 2, 4);  // bits 2..5 of byte 0: 1,0,1,1
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], 0b1101);
}

TEST(LeakageFnTest, ExtractBitsWraps) {
  const Bytes src{0x01};  // bit 0 set
  const auto w = extract_bits(src, 7, 2);  // bits 7, 0 -> 0, 1
  EXPECT_EQ(w[0], 0b10);
}

TEST(LeakageFnTest, WindowAndHashedShapes) {
  const Bytes secret(16, 0xaa);
  const Bytes pub{};
  EXPECT_EQ(window_bits(0, 12)(secret, pub).size(), 2u);
  EXPECT_EQ(hashed_bits(20)(secret, pub).size(), 3u);
  EXPECT_TRUE(no_leakage()(secret, pub).empty());
}

TEST(LeakageFnTest, EvalEnforcesDeclaredLength) {
  const Bytes secret(16, 1);
  // A cheating function that returns more than it declared.
  LeakageFn cheat = [](const Bytes& s, const Bytes&) { return s; };
  EXPECT_THROW((void)eval_leakage(cheat, secret, {}, 8), std::length_error);
  EXPECT_NO_THROW((void)eval_leakage(cheat, secret, {}, 128));
}

TEST(LeakageFnTest, HashedLeakageDependsOnSecretAndPub) {
  const Bytes s1(8, 1), s2(8, 2), pub1{9}, pub2{10};
  const auto f = hashed_bits(64);
  EXPECT_NE(f(s1, pub1), f(s2, pub1));
  EXPECT_NE(f(s1, pub1), f(s1, pub2));
}

// ---- the game -------------------------------------------------------------------

TEST(CmlGameTest, RunsWithNoLeakage) {
  const auto gg = make_mock();
  typename CmlGame<MockGroup>::Config cfg{mock_params(), P1Mode::Plain, 0, 0, 0, false, 42};
  CmlGame<MockGroup> game(gg, cfg);
  GuessingAdversary<MockGroup> adv(gg, 5);
  const auto res = game.run(adv);
  EXPECT_FALSE(res.aborted);
  EXPECT_EQ(res.periods, 5u);
  EXPECT_EQ(res.leaked_bits_p1, 0u);
}

TEST(CmlGameTest, DefaultBoundsComeFromParams) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  typename CmlGame<MockGroup>::Config cfg{prm, P1Mode::Plain, 0, 0, 0, false, 1};
  CmlGame<MockGroup> game(gg, cfg);
  EXPECT_EQ(game.config().b1, prm.b1_bits());
  EXPECT_EQ(game.config().b2, 8 * prm.ell * gg.sc_bytes());  // serialized |sk2|
}

// An adversary that deliberately over-asks on P1.
class GreedyAdversary final : public CmlGame<MockGroup>::Adversary {
 public:
  using Game = CmlGame<MockGroup>;
  explicit GreedyAdversary(MockGroup gg, std::size_t bits) : gg_(std::move(gg)), bits_(bits) {}
  bool wants_more_leakage(const Game::View& v) override { return v.periods.empty(); }
  Game::LeakagePlan plan(std::size_t, const Game::View&) override {
    Game::LeakagePlan p;
    p.h1 = window_bits(0, bits_);
    p.bits1 = bits_;
    p.h1_ref = p.h2 = p.h2_ref = no_leakage();
    return p;
  }
  std::pair<group::MockGT, group::MockGT> choose_messages(const Game::View&,
                                                          Rng& rng) override {
    return {gg_.gt_random(rng), gg_.gt_random(rng)};
  }
  int guess(const Game::View&, const Game::Ciphertext&) override { return 0; }

 private:
  MockGroup gg_;
  std::size_t bits_;
};

TEST(CmlGameTest, OverBudgetAborts) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  typename CmlGame<MockGroup>::Config cfg{prm, P1Mode::Plain, 0, 0, 0, false, 7};
  CmlGame<MockGroup> game(gg, cfg);
  GreedyAdversary adv(gg, prm.b1_bits() + 1);
  const auto res = game.run(adv);
  EXPECT_TRUE(res.aborted);
  EXPECT_FALSE(res.adversary_won);
}

TEST(CmlGameTest, AtBudgetDoesNotAbort) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  typename CmlGame<MockGroup>::Config cfg{prm, P1Mode::Plain, 0, 0, 0, false, 8};
  CmlGame<MockGroup> game(gg, cfg);
  GreedyAdversary adv(gg, prm.b1_bits());
  EXPECT_FALSE(game.run(adv).aborted);
}

TEST(CmlGameTest, KeygenLeakageRespectsB0) {
  const auto gg = make_mock();
  const auto prm = mock_params();

  class KeygenAdv final : public CmlGame<MockGroup>::Adversary {
   public:
    using Game = CmlGame<MockGroup>;
    KeygenAdv(MockGroup gg, std::size_t bits) : gg_(std::move(gg)), bits_(bits) {}
    std::optional<std::pair<LeakageFn, std::size_t>> keygen_leakage(
        const Game::View&) override {
      return std::make_pair(window_bits(0, bits_), bits_);
    }
    bool wants_more_leakage(const Game::View&) override { return false; }
    Game::LeakagePlan plan(std::size_t, const Game::View&) override { return {}; }
    std::pair<group::MockGT, group::MockGT> choose_messages(const Game::View&,
                                                            Rng& rng) override {
      return {gg_.gt_random(rng), gg_.gt_random(rng)};
    }
    int guess(const Game::View&, const Game::Ciphertext&) override { return 0; }
    MockGroup gg_;
    std::size_t bits_;
  };

  typename CmlGame<MockGroup>::Config cfg{prm, P1Mode::Plain, 6, 0, 0, false, 9};
  {
    CmlGame<MockGroup> game(gg, cfg);
    KeygenAdv ok(gg, 6);
    EXPECT_FALSE(game.run(ok).aborted);
  }
  {
    CmlGame<MockGroup> game(gg, cfg);
    KeygenAdv greedy(gg, 7);
    EXPECT_TRUE(game.run(greedy).aborted);
  }
}

TEST(CmlGameTest, MultipleDecryptionsPerPeriod) {
  // The paper's "extensions allowing multiple executions of the decryption
  // protocol at each time period are simple" -- exercised here: 4 decs per
  // period, all outputs correct, all recorded in the view.
  const auto gg = make_mock();
  const auto prm = mock_params();

  class Checker final : public CmlGame<MockGroup>::Adversary {
   public:
    using Game = CmlGame<MockGroup>;
    explicit Checker(MockGroup gg) : gg_(std::move(gg)) {}
    bool wants_more_leakage(const Game::View& v) override { return v.periods.size() < 2; }
    Game::LeakagePlan plan(std::size_t, const Game::View&) override {
      Game::LeakagePlan p;
      p.h1 = p.h1_ref = p.h2 = p.h2_ref = no_leakage();
      return p;
    }
    std::pair<group::MockGT, group::MockGT> choose_messages(const Game::View& v,
                                                            Rng& rng) override {
      for (const auto& pv : v.periods) extra_counts_.push_back(pv.extra_decs.size());
      return {gg_.gt_random(rng), gg_.gt_random(rng)};
    }
    int guess(const Game::View&, const Game::Ciphertext&) override { return 0; }
    std::vector<std::size_t> extra_counts_;
    MockGroup gg_;
  };

  typename CmlGame<MockGroup>::Config cfg{prm, P1Mode::Plain, 0, 0, 0, false, 77, 4};
  CmlGame<MockGroup> game(gg, cfg);
  Checker adv(gg);
  const auto res = game.run(adv);
  EXPECT_FALSE(res.aborted);
  ASSERT_EQ(adv.extra_counts_.size(), 2u);
  EXPECT_EQ(adv.extra_counts_[0], 3u);  // 4 decs = 1 primary + 3 extra
  EXPECT_EQ(adv.extra_counts_[1], 3u);
}

TEST(CmlGameTest, CustomCiphertextDistribution) {
  // The background distribution C(n, pk, t) is pluggable (Definition 3.2);
  // here C always encrypts gt_gen^t so the adversary can verify, via the
  // public dec output in pub^t, that the challenger really runs C.
  const auto gg = make_mock();
  const auto prm = mock_params();

  class Checker final : public CmlGame<MockGroup>::Adversary {
   public:
    using Game = CmlGame<MockGroup>;
    explicit Checker(MockGroup gg) : gg_(std::move(gg)) {}
    bool wants_more_leakage(const Game::View& v) override { return v.periods.size() < 3; }
    Game::LeakagePlan plan(std::size_t, const Game::View&) override {
      Game::LeakagePlan p;
      p.h1 = p.h1_ref = p.h2 = p.h2_ref = no_leakage();
      return p;
    }
    std::pair<group::MockGT, group::MockGT> choose_messages(const Game::View& v,
                                                            Rng& rng) override {
      for (std::size_t t = 0; t < v.periods.size(); ++t) {
        ok_ = ok_ && gg_.gt_eq(v.periods[t].dec_output,
                               gg_.gt_pow(gg_.gt_gen(), gg_.sc_from_u64(t)));
      }
      return {gg_.gt_random(rng), gg_.gt_random(rng)};
    }
    int guess(const Game::View&, const Game::Ciphertext&) override { return 0; }
    bool ok_ = true;
    MockGroup gg_;
  };

  typename CmlGame<MockGroup>::Config cfg{prm, P1Mode::Plain, 0, 0, 0, false, 99};
  CmlGame<MockGroup> game(gg, cfg);
  Checker adv(gg);
  const auto res = game.run(adv, [](const MockGroup& g, const auto& pk, std::size_t t,
                                    Rng& rng) {
    return schemes::DlrCore<MockGroup>::enc(
        g, pk, g.gt_pow(g.gt_gen(), g.sc_from_u64(t)), rng);
  });
  EXPECT_FALSE(res.aborted);
  EXPECT_TRUE(adv.ok_);
}

// ---- the refresh separation (core security demonstration) -----------------------

TEST(ShareAccumulationTest, BreaksUnrefreshedScheme) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  std::size_t wins = 0;
  const std::size_t trials = 10;
  for (std::size_t i = 0; i < trials; ++i) {
    typename CmlGame<MockGroup>::Config cfg{prm, P1Mode::Plain, 0, 0, 0,
                                            /*disable_refresh=*/true, 100 + i};
    CmlGame<MockGroup> game(gg, cfg);
    ShareAccumulationAdversary<MockGroup> adv(gg, prm);
    const auto res = game.run(adv);
    ASSERT_FALSE(res.aborted) << "the attack stays within the per-period budget";
    EXPECT_TRUE(adv.key_recovered()) << "trial " << i;
    if (res.adversary_won) ++wins;
  }
  EXPECT_EQ(wins, trials);  // full key recovery -> wins every time
}

TEST(ShareAccumulationTest, RefreshDefeatsTheSameAttack) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  std::size_t wins = 0;
  const std::size_t trials = 40;
  for (std::size_t i = 0; i < trials; ++i) {
    typename CmlGame<MockGroup>::Config cfg{prm, P1Mode::Plain, 0, 0, 0,
                                            /*disable_refresh=*/false, 200 + i};
    CmlGame<MockGroup> game(gg, cfg);
    ShareAccumulationAdversary<MockGroup> adv(gg, prm);
    const auto res = game.run(adv);
    ASSERT_FALSE(res.aborted);
    EXPECT_FALSE(adv.key_recovered()) << "trial " << i;
    if (res.adversary_won) ++wins;
  }
  // Should be a coin flip: loose 99.9%-ish binomial bounds around 20/40.
  EXPECT_GT(wins, 7u);
  EXPECT_LT(wins, 33u);
}

TEST(ShareAccumulationTest, LifetimeLeakageExceedsKeySize) {
  // The point of the continual model: total leakage across the game is far
  // larger than any share, yet (with refresh) the scheme survives.
  const auto gg = make_mock();
  const auto prm = mock_params();
  typename CmlGame<MockGroup>::Config cfg{prm, P1Mode::Plain, 0, 0, 0, false, 300};
  CmlGame<MockGroup> game(gg, cfg);
  ShareAccumulationAdversary<MockGroup> adv(gg, prm);
  const auto res = game.run(adv);
  EXPECT_GT(res.leaked_bits_p2, prm.sk2_bits() * 5);
}

}  // namespace
}  // namespace dlr::leakage
