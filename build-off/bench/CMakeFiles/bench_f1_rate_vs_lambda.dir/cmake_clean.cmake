file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_rate_vs_lambda.dir/bench_f1_rate_vs_lambda.cpp.o"
  "CMakeFiles/bench_f1_rate_vs_lambda.dir/bench_f1_rate_vs_lambda.cpp.o.d"
  "bench_f1_rate_vs_lambda"
  "bench_f1_rate_vs_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_rate_vs_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
