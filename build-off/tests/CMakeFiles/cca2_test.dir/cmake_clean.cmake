file(REMOVE_RECURSE
  "CMakeFiles/cca2_test.dir/cca2_test.cpp.o"
  "CMakeFiles/cca2_test.dir/cca2_test.cpp.o.d"
  "cca2_test"
  "cca2_test.pdb"
  "cca2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
