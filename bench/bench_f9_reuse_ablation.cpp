// F9 -- ablation of the Section 5.2 "reusing ciphertexts" remark: within a
// time period, P1 computes the share encryptions f_i once, derives the
// decryption-protocol d_i from them by pairing (pair_ct), and reuses the same
// f_i in the refresh message. The ablation forces the per-period state to be
// recomputed between the two protocols and measures what the remark saves.
//
// Second ablation: P1 storage mode (plain vs compact). Compact buys the
// (1-o(1)) leakage rate; this quantifies its runtime cost (the per-refresh
// re-encryption of the share under the rotated sk_comm).
#include "bench_util.hpp"
#include "group/counting_group.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"

namespace {

using namespace dlr;
using namespace dlr::bench;
using GG = group::TateSS256;
using CG = group::CountingGroup<GG>;

struct Sample {
  double period_ms;
  group::OpCounts ops;
};

Sample run_period(schemes::DlrParty1<CG>& p1, schemes::DlrParty2<CG>& p2, CG& gg,
                  const typename schemes::DlrCore<CG>::Ciphertext& c, bool ablate_reuse) {
  const auto before = gg.snapshot();
  const double ms = time_ms(
      [&] {
        (void)p1.dec_finish(p2.dec_respond(p1.dec_round1(c)));
        if (ablate_reuse) p1.end_period();  // forget sigma and the cached f_i
        p1.ref_finish(p2.ref_respond(p1.ref_round1()));
      },
      1);
  return {ms, gg.snapshot() - before};
}

}  // namespace

int main() {
  using namespace dlr::schemes;

  banner("F9: ablations -- fi/di reuse (Sec 5.2 remark) and P1 storage mode",
         "paper Section 5.2 implementation remarks");

  const auto base = group::make_tate_ss256();
  const auto prm = DlrParams::derive(base.scalar_bits(), 128);
  crypto::Rng rng(909);

  Table t({"config", "period ms", "G-encryptions (g_random)", "pairings", "exps"});

  for (const bool ablate : {false, true}) {
    CG gg(base);
    auto kg = DlrCore<CG>::gen(gg, prm, rng);
    DlrParty1<CG> p1(gg, prm, kg.pk, std::move(kg.sk1), P1Mode::Plain, crypto::Rng(1));
    DlrParty2<CG> p2(gg, prm, std::move(kg.sk2), crypto::Rng(2));
    const auto m = gg.gt_random(rng);
    const auto c = DlrCore<CG>::enc(gg, kg.pk, m, rng);
    gg.reset_counts();
    const auto s = run_period(p1, p2, gg, c, ablate);
    t.row({ablate ? "plain, reuse ABLATED (fresh f_i for refresh)"
                  : "plain, f_i reused across dec+ref (paper)",
           fmt(s.period_ms), std::to_string(s.ops.g_random), std::to_string(s.ops.pairings),
           std::to_string(s.ops.exps() + s.ops.multi_pow_terms)});
  }

  for (const auto mode : {P1Mode::Plain, P1Mode::Compact}) {
    CG gg(base);
    auto kg = DlrCore<CG>::gen(gg, prm, rng);
    DlrParty1<CG> p1(gg, prm, kg.pk, std::move(kg.sk1), mode, crypto::Rng(3));
    DlrParty2<CG> p2(gg, prm, std::move(kg.sk2), crypto::Rng(4));
    const auto m = gg.gt_random(rng);
    const auto c = DlrCore<CG>::enc(gg, kg.pk, m, rng);
    gg.reset_counts();
    const auto s = run_period(p1, p2, gg, c, false);
    t.row({mode == P1Mode::Plain ? "mode = plain (baseline)"
                                 : "mode = compact (1-o(1) leakage rate)",
           fmt(s.period_ms), std::to_string(s.ops.g_random), std::to_string(s.ops.pairings),
           std::to_string(s.ops.exps() + s.ops.multi_pow_terms)});
  }
  t.print();

  std::printf(
      "\nShape check: ablating the reuse adds one full set of share encryptions\n"
      "(l*(kappa+1) group samplings + l*kappa exponentiations) per period.\n"
      "Compact mode pays ~2x the refresh-side encryption work (share re-\n"
      "encryption under the rotated sk_comm) -- the runtime price of shrinking\n"
      "P1's secret memory to sk_comm + one coordinate.\n");
  return 0;
}
