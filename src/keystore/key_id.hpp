// (tenant, key-id) -- the logical address of one 2-of-2 share in the
// multi-tenant keystore (DESIGN.md §11).
//
// A KeyId is pure data: two short strings plus a stable 64-bit hash used for
// shard placement (shard_map.hpp) and for unordered_map buckets. The hash is
// FNV-1a over `tenant | 0x1f | key` finished with a splitmix64 mix, NOT
// std::hash -- placement must agree across processes and across standard
// library implementations, because client and server independently map the
// same KeyId onto the consistent-hash ring.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace dlr::keystore {

struct KeyId {
  std::string tenant;
  std::string key;

  bool operator==(const KeyId& o) const { return tenant == o.tenant && key == o.key; }
  bool operator!=(const KeyId& o) const { return !(*this == o); }
  bool operator<(const KeyId& o) const {
    return tenant != o.tenant ? tenant < o.tenant : key < o.key;
  }

  [[nodiscard]] std::string display() const { return tenant + "/" + key; }
};

/// The single-key compatibility identity: svc.* requests (the PR 2-5 wire
/// format, no tenant/key fields) are served as this key, which KsServer
/// provisions when constructed in single-key mode.
[[nodiscard]] inline const KeyId& default_key_id() {
  static const KeyId id{"_default", "_default"};
  return id;
}

/// splitmix64 finalizer -- full-avalanche mix of a 64-bit state.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Cross-process stable placement hash (FNV-1a + mix64). 0x1f separates the
/// fields so ("ab","c") and ("a","bc") never collide structurally.
[[nodiscard]] inline std::uint64_t key_hash(const KeyId& id) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto eat = [&h](const std::string& s) {
    for (const unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
  };
  eat(id.tenant);
  h ^= 0x1f;
  h *= 0x100000001b3ULL;
  eat(id.key);
  return mix64(h);
}

struct KeyIdHash {
  std::size_t operator()(const KeyId& id) const {
    return static_cast<std::size_t>(key_hash(id));
  }
};

}  // namespace dlr::keystore
