// F11 -- the proactive-model contrast (paper Section 1.1 "historical remark"
// and Section 1.2.2): classical 2-party proactive threshold ElGamal vs DLR,
// compared on the axes that define the two adversary models:
//
//   * channel needed for refresh (private vs public);
//   * what a public-channel transcript reveals about the share update;
//   * tolerance of full compromise of one device;
//   * tolerance of continual partial leakage of BOTH devices.
//
// The drift-tracking attack: against public-channel proactive refresh, an
// adversary leaking only 8 bits/period (far below any bound) recovers the
// share because the deltas on the wire let it normalize every leaked bit back
// to period 0. Against DLR the refresh wire carries HPSKE ciphertexts and the
// same budget achieves nothing (F3 measured that side).
#include "bench_util.hpp"
#include "group/mock_group.hpp"
#include "schemes/dlr.hpp"
#include "schemes/proactive_elgamal.hpp"

int main() {
  using namespace dlr;
  using namespace dlr::bench;
  using GG = group::MockGroup;

  banner("F11: proactive threshold ElGamal vs DLR (model contrast)",
         "paper Section 1.1 historical remark + Section 1.2.2");

  const auto gg = group::make_mock();

  // --- the drift-tracking attack against public-channel proactive refresh -----
  const std::size_t window = 8;
  const std::size_t share_bits = 8 * gg.sc_bytes();
  std::size_t broke = 0;
  const std::size_t trials = 50;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    schemes::ProactiveElGamal<GG> pe(gg, schemes::ChannelMode::Public, 11000 + trial);
    Bytes acc(gg.sc_bytes(), 0);
    std::uint64_t drift = 0;
    const std::size_t periods = (share_bits + window - 1) / window;
    for (std::size_t t = 0; t < periods; ++t) {
      const auto secret = pe.p1_secret();
      ByteReader r0(secret);
      const auto x1_t = gg.sc_deser(r0);
      const auto x1_0 = gg.sc_sub(x1_t, gg.sc_from_u64(drift));
      ByteWriter w;
      gg.sc_ser(w, x1_0);
      for (std::size_t i = 0; i < window; ++i) {
        const std::size_t pos = t * window + i;
        if (pos >= share_bits) break;
        if ((w.bytes()[pos / 8] >> (pos % 8)) & 1)
          acc[pos / 8] |= static_cast<std::uint8_t>(1u << (pos % 8));
      }
      net::Channel ch;
      pe.refresh(ch);
      ByteReader r(ch.transcript().messages()[0].body);
      drift = (drift + gg.sc_deser(r)) % gg.order_u64();
    }
    ByteReader r(acc);
    const auto rec = gg.sc_add(gg.sc_deser(r), gg.sc_from_u64(drift));
    broke += (rec == pe.compromise_p1()) ? 1 : 0;
  }

  Table t({"property", "proactive ElGamal", "DLR (this work)"});
  t.row({"refresh channel required", "private (or extra PKE layer)",
         "public (HPSKE inside the protocol)"});
  t.row({"refresh transcript reveals", "the full share update delta",
         "HPSKE ciphertexts only"});
  t.row({"full compromise of one device", "tolerated (additive sharing)",
         "tolerated (b2 = m2: all of P2 may leak)"});
  t.row({"8-bit/period leakage + public wire",
         std::to_string(broke) + "/" + std::to_string(trials) + " keys recovered",
         "0 keys recovered (see F3)"});
  t.row({"leakage model", "t-out-of-n corruption, periodic", "length-bounded leakage on "
         "both devices, every period"});
  t.print();

  std::printf(
      "\nShape check: with the refresh correlation visible on the wire, leaking\n"
      "just 8 bits/period recovers the proactive share in %zu/%zu trials --\n"
      "classical proactive refresh *presupposes a private channel*, which is\n"
      "exactly the assumption the paper's distributed CML model removes. DLR's\n"
      "refresh is itself a public-channel cryptographic protocol, which is why\n"
      "the identical budget achieves nothing against it (F3).\n",
      broke, trials);
  return broke == trials ? 0 : 1;
}
