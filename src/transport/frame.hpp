// Framed wire codec -- the byte-level unit of the transport layer.
//
// Wire layout (little-endian):
//
//   u32 len      payload byte length; hard-capped at kMaxFrameBytes so a
//                corrupt or attacker-controlled prefix can never drive an
//                allocation (the cap is checked BEFORE any buffer is sized)
//   u32 crc      CRC-32 (IEEE, reflected) over the payload bytes
//   payload:
//     u32 session    logical session id (multiplexing key)
//     u8  type       FrameType
//     u8  from       bits 0-6: device id (0 = unspecified, 1 = P1, 2 = P2);
//                    bit 7 (kTraceFlag): a 16-byte trace envelope follows
//                    the label
//     u8  label_len  protocol message label, e.g. "dec.r1" / "svc.dec"
//     label bytes
//     [u64 trace_id, u64 parent_span]   iff bit 7 of `from` is set
//     body bytes     everything remaining
//
// The trace envelope (DESIGN.md §10) carries the sender's TraceContext so a
// request's spans form one tree across processes. v1 decoders reject any
// `from` above 2, so an envelope must never be sent to a peer that did not
// negotiate it -- the svc.hello version exchange (service/protocol.hpp)
// gates stamping, keeping old peers interoperable.
//
// The CRC makes single-bit corruption of any frame field a typed
// ChecksumMismatch instead of a silently different message; length-prefix
// corruption yields FrameTooLarge or Truncated. Decoding never crashes and
// never silently accepts a mutated frame (tests/transport_test.cpp fuzzes
// exactly this contract, mirroring the protocol-message fuzz of DESIGN §6).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/bytes.hpp"
#include "transport/error.hpp"

namespace dlr::transport {

/// Hard upper bound on a frame payload. A length prefix above this is
/// rejected as FrameTooLarge before any allocation happens. 16 MiB comfortably
/// holds the largest protocol message (SS1024 refresh round 1 is < 1 MiB)
/// while bounding what a hostile peer can make us reserve.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;

/// Fixed bytes preceding the payload: u32 len + u32 crc.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Payload bytes before the label: session + type + from + label_len.
inline constexpr std::size_t kPayloadFixedBytes = 7;

/// Bit 7 of the `from` byte: a trace envelope follows the label.
inline constexpr std::uint8_t kTraceFlag = 0x80;
/// Trace envelope size: u64 trace_id + u64 parent_span.
inline constexpr std::size_t kTraceEnvelopeBytes = 16;

enum class FrameType : std::uint8_t {
  Data = 1,   // protocol message body
  Error = 2,  // service-level error report
  Close = 3,  // orderly session teardown
};

struct Frame {
  std::uint32_t session = 0;
  FrameType type = FrameType::Data;
  std::uint8_t from = 0;  // matches net::DeviceId values; 0 = unspecified
  std::string label;
  Bytes body;
  // Trace envelope (0 = absent). encode_frame emits the envelope -- and sets
  // kTraceFlag -- iff trace_id is nonzero. Declared after `body` so existing
  // positional aggregate initializers keep meaning what they meant.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  bool operator==(const Frame&) const = default;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), init/xorout ~0.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Validate a length prefix against the cap; throws FrameTooLarge/Malformed.
void check_frame_len(std::uint32_t len, std::uint32_t max_frame_bytes = kMaxFrameBytes);

/// Serialize header + payload. Throws FrameTooLarge if the frame exceeds the
/// cap and Malformed if the label does not fit its u8 length field.
[[nodiscard]] Bytes encode_frame(const Frame& f);

/// Parse a payload (the bytes after the 8-byte header) whose CRC has already
/// been verified. Throws Malformed on any structural violation.
[[nodiscard]] Frame decode_payload(std::span<const std::uint8_t> payload);

/// Verify crc against payload, then decode. Throws ChecksumMismatch/Malformed.
[[nodiscard]] Frame decode_checked(std::uint32_t crc, std::span<const std::uint8_t> payload);

/// Incremental deframer for a byte stream: feed() arbitrary chunks, poll()
/// complete frames, finish() at end-of-stream (throws Truncated if bytes of a
/// partial frame remain). Oversize length prefixes throw during feed(),
/// before the payload is buffered.
class FrameDeframer {
 public:
  explicit FrameDeframer(std::uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::span<const std::uint8_t> data);
  [[nodiscard]] std::optional<Frame> poll();
  /// End of stream: throws Truncated if a partial frame is pending.
  void finish() const;
  [[nodiscard]] std::size_t pending_bytes() const { return buf_.size(); }

 private:
  std::uint32_t max_frame_bytes_;
  Bytes buf_;
};

}  // namespace dlr::transport
