#include "keystore/scheduler.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace dlr::keystore {

RefreshScheduler::RefreshScheduler(Source source, RefreshFn refresh, Options opt)
    : source_(std::move(source)), refresh_(std::move(refresh)), opt_(opt) {
  if (opt_.max_concurrent == 0) opt_.max_concurrent = 1;
}

RefreshScheduler::~RefreshScheduler() { stop(); }

void RefreshScheduler::start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  sweeper_ = std::thread([this] { sweeper_loop(); });
  workers_.reserve(opt_.max_concurrent);
  for (std::size_t i = 0; i < opt_.max_concurrent; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void RefreshScheduler::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stopping_ = true;
    // Drop queued (not yet started) work; busy_ entries for queued keys go
    // with it so a later start() can re-enqueue them.
    for (const auto& c : queue_) busy_.erase(c.id);
    queue_.clear();
    update_backlog_locked();
  }
  cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
}

void RefreshScheduler::sweeper_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    lk.unlock();
    std::vector<Candidate> cands;
    try {
      cands = source_();
    } catch (...) {
      // A failing source is a keystore bug; keep sweeping regardless.
    }
    telemetry::Registry::global().counter("ks.sched.sweeps").add();
    lk.lock();
    if (stopping_) break;
    enqueue_locked(std::move(cands));
    cv_.wait_for(lk, opt_.sweep_interval, [this] { return stopping_; });
  }
}

void RefreshScheduler::enqueue_locked(std::vector<Candidate> cands) {
  std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
    return a.spent_frac > b.spent_frac;  // most-spent first
  });
  bool added = false;
  for (auto& c : cands) {
    if (busy_.count(c.id)) continue;  // queued or in flight already
    busy_.insert(c.id);
    queue_.push_back(std::move(c));
    added = true;
  }
  // Keep the queue itself priority-ordered: a sweep may add a now-critical
  // key behind survivors of the previous sweep.
  std::stable_sort(queue_.begin(), queue_.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.spent_frac > b.spent_frac;
                   });
  update_backlog_locked();
  if (added) cv_.notify_all();
}

void RefreshScheduler::sweep_now() {
  std::vector<Candidate> cands = source_();
  std::lock_guard<std::mutex> lk(mu_);
  enqueue_locked(std::move(cands));
}

void RefreshScheduler::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    Candidate c = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    update_backlog_locked();
    lk.unlock();

    bool ok = false;
    try {
      ok = refresh_(c.id);
    } catch (...) {
      ok = false;
    }
    auto& reg = telemetry::Registry::global();
    if (ok) reg.counter("ks.sched.refreshes").add();
    else reg.counter("ks.sched.failures").add();

    lk.lock();
    if (ok) ++refreshes_;
    else ++failures_;
    --in_flight_;
    busy_.erase(c.id);  // failed keys re-qualify on the next sweep
    update_backlog_locked();
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

void RefreshScheduler::update_backlog_locked() {
  telemetry::Registry::global()
      .gauge("ks.refresh_backlog")
      .set(static_cast<double>(queue_.size() + in_flight_));
}

bool RefreshScheduler::wait_idle(std::chrono::milliseconds deadline_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  return idle_cv_.wait_for(lk, deadline_ms,
                           [this] { return queue_.empty() && in_flight_ == 0; });
}

std::uint64_t RefreshScheduler::refreshes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return refreshes_;
}

std::uint64_t RefreshScheduler::failures() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failures_;
}

std::size_t RefreshScheduler::backlog() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size() + in_flight_;
}

}  // namespace dlr::keystore
