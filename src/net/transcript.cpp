#include "net/transcript.hpp"

namespace dlr::net {

void Transcript::append(Message m) {
  total_ += m.body.size();
  msgs_.push_back(std::move(m));
}

Bytes Transcript::serialize() const {
  ByteWriter w;
  w.u64(msgs_.size());
  for (const auto& m : msgs_) {
    w.u8(static_cast<std::uint8_t>(m.from));
    w.str(m.label);
    w.blob(m.body);
  }
  return w.take();
}

void Transcript::clear() {
  msgs_.clear();
  total_ = 0;
}

const Bytes& Channel::send(DeviceId from, std::string label, Bytes body) {
  tr_.append(Message{from, std::move(label), std::move(body)});
  return tr_.messages().back().body;
}

Transcript Channel::take_transcript() {
  Transcript t = std::move(tr_);
  tr_ = Transcript{};
  return t;
}

}  // namespace dlr::net
