// Session multiplexing: many logical channels over one FramedConn.
//
// A SessionMux owns the connection's single reader ("pump") thread. Incoming
// frames are routed by session id into per-session queues; a Session handle
// is the receive end of one queue plus a send path that stamps its id on
// outgoing frames. When the connection dies (peer close, checksum failure,
// shutdown) every open session is poisoned with the terminal error, so no
// receiver can block forever.
//
// Sends from any thread are safe (FramedConn serializes writers); each
// Session's recv() is single-consumer. Frames for unknown sessions are
// dropped and counted (transport.orphan_frames) -- responses racing a client
// that gave up are expected in a soft-teardown world, not an error.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "telemetry/trace.hpp"
#include "transport/endpoint.hpp"

namespace dlr::transport {

class SessionMux {
  struct SessionState {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Frame> queue;
    bool poisoned = false;
    Errc poison_code = Errc::SessionClosed;
    std::string poison_what;
  };

 public:
  /// Receive/send handle for one logical session. Destroying the handle
  /// unregisters the session; late frames for it become orphans.
  class Session {
   public:
    Session(SessionMux* mux, std::uint32_t id, std::shared_ptr<SessionState> st)
        : mux_(mux), id_(id), st_(std::move(st)) {}
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    ~Session() { mux_->unregister(id_); }

    [[nodiscard]] std::uint32_t id() const { return id_; }

    void send(FrameType type, std::uint8_t from, std::string label, Bytes body) {
      send(type, from, std::move(label), std::move(body), telemetry::TraceContext{});
    }

    /// Traced send: stamp `ctx` into the frame's trace envelope. An empty
    /// context sends a plain v1 frame; a nonzero one sets the envelope, which
    /// only a wire-trace-negotiated peer will accept (see frame.hpp).
    void send(FrameType type, std::uint8_t from, std::string label, Bytes body,
              telemetry::TraceContext ctx) {
      Frame f{id_, type, from, std::move(label), std::move(body)};
      f.trace_id = ctx.trace_id;
      f.parent_span = ctx.span_id;
      mux_->conn().send(f);
    }

    /// Next frame for this session; throws the mux's terminal TransportError
    /// once poisoned and Timeout if `timeout` elapses first.
    Frame recv(std::optional<Millis> timeout = std::nullopt);

   private:
    SessionMux* mux_;
    std::uint32_t id_;
    std::shared_ptr<SessionState> st_;
  };

  /// Takes ownership of the connection and starts the pump thread. Accepts
  /// any Conn implementation (real FramedConn or a FaultInjector wrapper).
  explicit SessionMux(std::shared_ptr<Conn> conn);
  ~SessionMux() { stop(); }
  SessionMux(const SessionMux&) = delete;
  SessionMux& operator=(const SessionMux&) = delete;

  /// Open a session with a fresh id (client side; ids count up from 1).
  [[nodiscard]] std::unique_ptr<Session> open();
  /// Open a session with an agreed-upon id (both ends of a static pairing).
  [[nodiscard]] std::unique_ptr<Session> open_with_id(std::uint32_t id);

  [[nodiscard]] Conn& conn() { return *conn_; }
  [[nodiscard]] std::uint64_t orphaned() const { return orphans_.load(); }

  /// Shut the connection down, join the pump, poison all sessions. Idempotent.
  void stop();

 private:
  friend class Session;
  void pump();
  void poison_all(Errc code, const std::string& what);
  void unregister(std::uint32_t id);

  std::shared_ptr<Conn> conn_;
  std::mutex mu_;  // guards sessions_ + next_id_
  std::map<std::uint32_t, std::shared_ptr<SessionState>> sessions_;
  std::uint32_t next_id_ = 1;
  std::atomic<std::uint64_t> orphans_{0};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes stop(); guards stopped_
  bool stopped_ = false;
  std::thread pump_thread_;
};

}  // namespace dlr::transport
