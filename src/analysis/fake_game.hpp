// The Section 6 reduction, executable: the distinguisher D's "fake game".
//
// Given a (mock) BDDH tuple (g^a, g^b, g^c, T), D simulates the CML game for
// DLR while deviating from the honest challenger exactly as the proof
// prescribes:
//   * pk    = (p, g, e, e(g^a, g^b))      -- the BDDH tuple planted in pk;
//   * C*    = (g^c, m_b * T)              -- and in the challenge;
//   * per period: sk1 = (a_1..a_l, Phi) and sk_comm are *uniform* (stage a);
//     c', dPhi, dB, fPhi, f_i, f'_i honestly encrypt the prescribed
//     plaintexts (stage b); d_i = pair_ct(f_i, A) (stage c); and sk2 is
//     sampled uniformly subject to the linear constraint
//     c' = dB * prod_i d_i^{s_i} / dPhi (stage d), with a full-rank
//     requirement on the coefficient matrix enforced by resampling; the
//     refresh reply f is then computed from (s, s') (stage e).
//
// On the mock group the discrete logarithms D "keeps track of" are directly
// readable, so the whole object is runnable and testable: the fake transcript
// must be protocol-consistent (P2's formula reproduces c'; c' decrypts to the
// advice M), and the observable view must be distributed like the real
// game's. Experiment F10 measures exactly that.
#pragma once

#include "analysis/linear.hpp"
#include "group/mock_group.hpp"
#include "schemes/dlr.hpp"

namespace dlr::analysis {

struct BddhTuple {
  group::MockG ga, gb, gc;
  group::MockGT t;
};

/// Sample a real (T = e(g,g)^{abc}) or random-T BDDH tuple.
inline BddhTuple sample_bddh(const group::MockGroup& gg, bool real, crypto::Rng& rng) {
  const auto a = gg.sc_random(rng);
  const auto b = gg.sc_random(rng);
  const auto c = gg.sc_random(rng);
  BddhTuple out;
  out.ga = gg.g_pow(gg.g_gen(), a);
  out.gb = gg.g_pow(gg.g_gen(), b);
  out.gc = gg.g_pow(gg.g_gen(), c);
  out.t = real ? gg.gt_pow(gg.pair(out.ga, out.gb), c) : gg.gt_random(rng);
  return out;
}

class FakeGame {
 public:
  using GG = group::MockGroup;
  using Core = schemes::DlrCore<GG>;
  using HG = schemes::HpskeG<GG>;
  using HT = schemes::HpskeGT<GG>;
  using G = GG::G;
  using GT = GG::GT;

  struct FakePeriod {
    // The planted secret state.
    typename Core::Sk1 sk1;            // uniform (the deviation!)
    typename HG::SecretKey sigma;      // uniform
    typename Core::Sk2 sk2;            // solved from the constraint
    // The simulated decryption-protocol transcript.
    typename Core::Ciphertext bg;      // background ciphertext (A, B)
    GT advice_m{};                     // its "correct" output M (advice)
    std::vector<typename HT::Ciphertext> d;
    typename HT::Ciphertext dphi, db, cprime;
    // The simulated refresh-protocol round-1 message.
    std::vector<typename HG::Ciphertext> f, fprime;
    typename HG::Ciphertext fphi;
    std::size_t resamples = 0;  // full-rank re-sampling count
  };

  FakeGame(GG gg, schemes::DlrParams prm, BddhTuple tuple)
      : gg_(gg), prm_(prm), tuple_(tuple), hg_(gg_, prm.kappa), ht_(gg_, prm.kappa) {}

  /// pk with the BDDH tuple planted: z = e(g^a, g^b).
  [[nodiscard]] typename Core::PublicKey pk() const {
    return {gg_.g_gen(), gg_.pair(tuple_.ga, tuple_.gb)};
  }

  /// Challenge with the tuple planted: (g^c, m_b * T).
  [[nodiscard]] typename Core::Ciphertext challenge(const GT& mb) const {
    return {tuple_.gc, gg_.gt_mul(mb, tuple_.t)};
  }

  /// One simulated time period (stages a-e of the proof).
  [[nodiscard]] FakePeriod fake_period(crypto::Rng& rng) const {
    FakePeriod p;
    // (a) uniform sk1 and sk_comm.
    p.sk1.a.reserve(prm_.ell);
    for (std::size_t i = 0; i < prm_.ell; ++i) p.sk1.a.push_back(gg_.g_random(rng));
    p.sk1.phi = gg_.g_random(rng);
    p.sigma = hg_.gen(rng);
    const typename HT::SecretKey sigma_t{p.sigma.s};

    // (b)+(c) with the full-rank requirement of stage (d): resample the
    // f_i coins until the coefficient matrix has rank kappa+1. The background
    // ciphertext is resampled too -- on tiny groups A = g^t can hit the
    // identity (probability 1/p), which zeroes the whole coefficient matrix.
    for (;;) {
      // Background decryption input/output: D can generate its own advice
      // because C encrypts uniform messages under the planted pk.
      p.advice_m = gg_.gt_random(rng);
      p.bg = Core::enc(gg_, pk(), p.advice_m, rng);
      // All l+1 transported ciphertexts share the first argument A = bg.a;
      // prepare its Miller loop once.
      const group::PreparedPair<GG> pa(gg_, p.bg.a);
      p.f.clear();
      p.d.clear();
      for (std::size_t i = 0; i < prm_.ell; ++i) {
        p.f.push_back(hg_.enc(p.sigma, p.sk1.a[i], rng));
        p.d.push_back(Core::pair_ct(gg_, pa, p.f.back()));
      }
      p.fphi = hg_.enc(p.sigma, p.sk1.phi, rng);
      p.dphi = Core::pair_ct(gg_, pa, p.fphi);
      p.db = ht_.enc(sigma_t, p.bg.b, rng);
      p.cprime = ht_.enc(sigma_t, p.advice_m, rng);  // c' encrypts the advice M!

      // (d) solve for sk2: one linear equation per ciphertext coordinate.
      MatZp mat(prm_.kappa + 1, prm_.ell, gg_.order_u64());
      std::vector<std::uint64_t> rhs(prm_.kappa + 1);
      for (std::size_t j = 0; j <= prm_.kappa; ++j) {
        for (std::size_t i = 0; i < prm_.ell; ++i) mat.at(j, i) = coord(p.d[i], j);
        rhs[j] = gg_.sc_sub(gg_.sc_add(coord(p.cprime, j), coord(p.dphi, j)),
                            coord(p.db, j));
      }
      if (mat.rank() != prm_.kappa + 1) {
        ++p.resamples;
        continue;  // the proof's re-sampling step
      }
      auto sol = mat.sample_solution(rhs, rng);
      if (!sol) {
        ++p.resamples;
        continue;
      }
      p.sk2.s = std::move(*sol);
      break;
    }

    // (e) the refresh-round message: f'_i encrypt fresh a'_i. (The reply f
    // for chaining into the next period is produced by next_refresh_reply.)
    p.fprime.clear();
    for (std::size_t i = 0; i < prm_.ell; ++i)
      p.fprime.push_back(hg_.enc(p.sigma, gg_.g_random(rng), rng));
    return p;
  }

  /// Stage (e): f = prod_i f'_i^{s'_i} / f_i^{s_i} * fPhi for given s'.
  [[nodiscard]] typename HG::Ciphertext refresh_reply(
      const FakePeriod& p, const std::vector<std::uint64_t>& s_next) const {
    auto acc = hg_.ct_mul(p.fphi, hg_.ct_multi_pow(p.fprime, s_next));
    return hg_.ct_mul(acc, hg_.ct_inv(hg_.ct_multi_pow(p.f, p.sk2.s)));
  }

  /// Consistency check: P2's honest formula on (d, dPhi, dB) with the solved
  /// sk2 must reproduce c', and c' must decrypt to the advice M under sigma.
  [[nodiscard]] bool period_consistent(const FakePeriod& p) const {
    auto acc = ht_.ct_mul(p.db, ht_.ct_multi_pow(p.d, p.sk2.s));
    acc = ht_.ct_mul(acc, ht_.ct_inv(p.dphi));
    if (!(acc == p.cprime)) return false;
    const typename HT::SecretKey sigma_t{p.sigma.s};
    return gg_.gt_eq(ht_.dec(sigma_t, p.cprime), p.advice_m);
  }

 private:
  [[nodiscard]] std::uint64_t coord(const typename HT::Ciphertext& ct, std::size_t j) const {
    return j < prm_.kappa ? ct.b[j].v : ct.c0.v;
  }

  GG gg_;
  schemes::DlrParams prm_;
  BddhTuple tuple_;
  HG hg_;
  HT ht_;
};

}  // namespace dlr::analysis
