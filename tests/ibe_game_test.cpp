// Tests for the DIBE continual-leakage game: extract-oracle semantics, the
// challenge-identity restriction, budgets, and Remark 4.1 leakage plumbing.
#include <gtest/gtest.h>

#include "group/mock_group.hpp"
#include "leakage/game_ibe.hpp"

namespace dlr::leakage {
namespace {

using crypto::Rng;
using group::make_mock;
using group::MockGroup;
using schemes::DlrParams;

DlrParams mock_params() {
  auto gg = make_mock();
  return DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

using Game = IbeCmlGame<MockGroup>;

class BasicIbeAdversary : public Game::Adversary {
 public:
  BasicIbeAdversary(MockGroup gg, std::size_t periods, std::string challenge_id,
                    std::vector<std::string> queries, std::size_t leak_bits = 0)
      : gg_(std::move(gg)),
        periods_(periods),
        challenge_id_(std::move(challenge_id)),
        queries_(std::move(queries)),
        leak_bits_(leak_bits) {}

  bool wants_more_leakage(const Game::View& v) override {
    return v.periods.size() < periods_;
  }

  Game::LeakagePlan plan(std::size_t t, const Game::View& v,
                         Game::ExtractOracle& oracle) override {
    if (t < queries_.size()) {
      const auto key = oracle.extract(queries_[t]);
      keys_.push_back(key);
    }
    Game::LeakagePlan p;
    if (leak_bits_ > 0) {
      p.h1 = window_bits(64, leak_bits_);
      p.bits1 = leak_bits_;
      p.h2 = window_bits(64, leak_bits_);
      p.bits2 = leak_bits_;
      p.h1_ref = p.h2_ref = no_leakage();
    } else {
      p.h1 = p.h1_ref = p.h2 = p.h2_ref = no_leakage();
    }
    last_view_leak_ = v.periods.empty() ? Bytes{} : v.periods.back().l1;
    return p;
  }

  std::tuple<std::string, group::MockGT, group::MockGT> choose_challenge(
      const Game::View&, Rng& rng) override {
    return {challenge_id_, gg_.gt_random(rng), gg_.gt_random(rng)};
  }

  int guess(const Game::View&, const Game::Ciphertext&, Game::ExtractOracle&) override {
    return 0;
  }

  std::vector<typename Game::Ibe::Bb::IdentityKey> keys_;
  Bytes last_view_leak_;

 private:
  MockGroup gg_;
  std::size_t periods_;
  std::string challenge_id_;
  std::vector<std::string> queries_;
  std::size_t leak_bits_;
};

TEST(IbeGameTest, RunsAndCountsQueries) {
  const auto gg = make_mock();
  Game game(gg, {mock_params(), 16, 0, 0, 9100});
  BasicIbeAdversary adv(gg, 3, "target", {"alice", "bob"});
  const auto res = game.run(adv);
  EXPECT_FALSE(res.aborted);
  EXPECT_FALSE(res.invalid_challenge);
  EXPECT_EQ(res.periods, 3u);
  EXPECT_EQ(res.extract_queries, 2u);
}

TEST(IbeGameTest, ExtractOracleGivesWorkingKeys) {
  const auto gg = make_mock();
  const auto prm = mock_params();

  class KeyChecker final : public BasicIbeAdversary {
   public:
    KeyChecker(MockGroup gg, const DlrParams& prm)
        : BasicIbeAdversary(gg, 1, "target", {"carol"}), gg2_(gg), prm_(prm) {}
    int guess(const Game::View& v, const Game::Ciphertext&, Game::ExtractOracle&) override {
      // The extracted key must decrypt a fresh encryption to carol.
      EXPECT_EQ(keys_.size(), 1u);
      schemes::BbIbe<MockGroup> bb(gg2_, 16);
      Rng rng(42);
      // Rebuild pp from the view to encrypt.
      const auto m = gg2_.gt_random(rng);
      const auto ct = bb.enc(*v.pp, "carol", m, rng);
      key_worked_ = gg2_.gt_eq(bb.dec(keys_[0], ct), m);
      return 0;
    }
    bool key_worked_ = false;
    MockGroup gg2_;
    DlrParams prm_;
  };

  Game game(gg, {prm, 16, 0, 0, 9101});
  KeyChecker adv(gg, prm);
  (void)game.run(adv);
  EXPECT_TRUE(adv.key_worked_);
}

TEST(IbeGameTest, ChallengeOnQueriedIdentityRejected) {
  const auto gg = make_mock();
  Game game(gg, {mock_params(), 16, 0, 0, 9102});
  BasicIbeAdversary adv(gg, 1, "alice", {"alice"});  // queries then challenges alice
  const auto res = game.run(adv);
  EXPECT_TRUE(res.invalid_challenge);
  EXPECT_FALSE(res.adversary_won);
}

TEST(IbeGameTest, LeakageDeliveredAndBudgeted) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  {
    Game game(gg, {prm, 16, 0, 0, 9103});
    BasicIbeAdversary adv(gg, 2, "t", {}, prm.b1_bits());
    const auto res = game.run(adv);
    EXPECT_FALSE(res.aborted);
    EXPECT_FALSE(adv.last_view_leak_.empty());  // leakage actually delivered
  }
  {
    Game game(gg, {prm, 16, 0, 0, 9104});
    BasicIbeAdversary adv(gg, 2, "t", {}, prm.b1_bits() + 1);
    EXPECT_TRUE(game.run(adv).aborted);
  }
}

TEST(IbeGameTest, BlindGuessHasNoAdvantage) {
  const auto gg = make_mock();
  const auto prm = mock_params();
  std::size_t wins = 0;
  const std::size_t trials = 40;
  for (std::size_t i = 0; i < trials; ++i) {
    Game game(gg, {prm, 16, 0, 0, 9200 + i});
    BasicIbeAdversary adv(gg, 1, "t", {"other"}, prm.lambda);
    const auto res = game.run(adv);
    wins += res.adversary_won ? 1 : 0;
  }
  EXPECT_GT(wins, 7u);
  EXPECT_LT(wins, 33u);
}

}  // namespace
}  // namespace dlr::leakage
