file(REMOVE_RECURSE
  "CMakeFiles/cca2_game_test.dir/cca2_game_test.cpp.o"
  "CMakeFiles/cca2_game_test.dir/cca2_game_test.cpp.o.d"
  "cca2_game_test"
  "cca2_game_test.pdb"
  "cca2_game_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca2_game_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
