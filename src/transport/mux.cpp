#include "transport/mux.hpp"

#include "telemetry/metrics.hpp"

namespace dlr::transport {

SessionMux::SessionMux(std::shared_ptr<Conn> conn) : conn_(std::move(conn)) {
  pump_thread_ = std::thread([this] { pump(); });
}

std::unique_ptr<SessionMux::Session> SessionMux::open() {
  std::lock_guard lock(mu_);
  const std::uint32_t id = next_id_++;
  auto st = std::make_shared<SessionState>();
  sessions_[id] = st;
  telemetry::Registry::global().counter("svc.sessions").add();
  return std::make_unique<Session>(this, id, std::move(st));
}

std::unique_ptr<SessionMux::Session> SessionMux::open_with_id(std::uint32_t id) {
  std::lock_guard lock(mu_);
  if (sessions_.count(id))
    throw TransportError(Errc::Protocol, "session id already open: " + std::to_string(id));
  next_id_ = std::max(next_id_, id + 1);
  auto st = std::make_shared<SessionState>();
  sessions_[id] = st;
  telemetry::Registry::global().counter("svc.sessions").add();
  return std::make_unique<Session>(this, id, std::move(st));
}

Frame SessionMux::Session::recv(std::optional<Millis> timeout) {
  std::unique_lock lock(st_->mu);
  const auto ready = [&] { return !st_->queue.empty() || st_->poisoned; };
  if (timeout) {
    if (!st_->cv.wait_for(lock, *timeout, ready))
      throw TransportError(Errc::Timeout, "session " + std::to_string(id_) + " recv");
  } else {
    st_->cv.wait(lock, ready);
  }
  if (!st_->queue.empty()) {
    Frame f = std::move(st_->queue.front());
    st_->queue.pop_front();
    return f;
  }
  throw TransportError(st_->poison_code, st_->poison_what);
}

void SessionMux::pump() {
  for (;;) {
    Frame f;
    try {
      f = conn_->recv_blocking();
    } catch (const TransportError& e) {
      poison_all(stopping_.load() ? Errc::SessionClosed : e.code(), e.what());
      return;
    }
    std::shared_ptr<SessionState> st;
    {
      std::lock_guard lock(mu_);
      auto it = sessions_.find(f.session);
      if (it != sessions_.end()) st = it->second;
    }
    if (!st) {
      orphans_.fetch_add(1);
      telemetry::Registry::global().counter("transport.orphan_frames").add();
      continue;
    }
    {
      std::lock_guard lock(st->mu);
      st->queue.push_back(std::move(f));
    }
    st->cv.notify_one();
  }
}

void SessionMux::poison_all(Errc code, const std::string& what) {
  std::lock_guard lock(mu_);
  for (auto& [id, st] : sessions_) {
    {
      std::lock_guard slock(st->mu);
      st->poisoned = true;
      st->poison_code = code;
      st->poison_what = what;
    }
    st->cv.notify_all();
  }
}

void SessionMux::unregister(std::uint32_t id) {
  std::lock_guard lock(mu_);
  sessions_.erase(id);
}

void SessionMux::stop() {
  std::lock_guard lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  conn_->shutdown();
  if (pump_thread_.joinable()) pump_thread_.join();
  poison_all(Errc::SessionClosed, "mux stopped");
}

}  // namespace dlr::transport
