file(REMOVE_RECURSE
  "CMakeFiles/dlrlib.dir/analysis/stats.cpp.o"
  "CMakeFiles/dlrlib.dir/analysis/stats.cpp.o.d"
  "CMakeFiles/dlrlib.dir/crypto/chacha20.cpp.o"
  "CMakeFiles/dlrlib.dir/crypto/chacha20.cpp.o.d"
  "CMakeFiles/dlrlib.dir/crypto/ots.cpp.o"
  "CMakeFiles/dlrlib.dir/crypto/ots.cpp.o.d"
  "CMakeFiles/dlrlib.dir/crypto/rng.cpp.o"
  "CMakeFiles/dlrlib.dir/crypto/rng.cpp.o.d"
  "CMakeFiles/dlrlib.dir/crypto/sha256.cpp.o"
  "CMakeFiles/dlrlib.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/dlrlib.dir/group/mock_group.cpp.o"
  "CMakeFiles/dlrlib.dir/group/mock_group.cpp.o.d"
  "CMakeFiles/dlrlib.dir/group/tate_group.cpp.o"
  "CMakeFiles/dlrlib.dir/group/tate_group.cpp.o.d"
  "CMakeFiles/dlrlib.dir/leakage/budget.cpp.o"
  "CMakeFiles/dlrlib.dir/leakage/budget.cpp.o.d"
  "CMakeFiles/dlrlib.dir/leakage/rates.cpp.o"
  "CMakeFiles/dlrlib.dir/leakage/rates.cpp.o.d"
  "CMakeFiles/dlrlib.dir/net/transcript.cpp.o"
  "CMakeFiles/dlrlib.dir/net/transcript.cpp.o.d"
  "CMakeFiles/dlrlib.dir/telemetry/export.cpp.o"
  "CMakeFiles/dlrlib.dir/telemetry/export.cpp.o.d"
  "CMakeFiles/dlrlib.dir/telemetry/metrics.cpp.o"
  "CMakeFiles/dlrlib.dir/telemetry/metrics.cpp.o.d"
  "CMakeFiles/dlrlib.dir/telemetry/trace.cpp.o"
  "CMakeFiles/dlrlib.dir/telemetry/trace.cpp.o.d"
  "libdlrlib.a"
  "libdlrlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
