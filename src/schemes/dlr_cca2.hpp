// DLRCCA2 -- the paper's CCA2-secure DPKE (Section 4.3): the BCHK transform
// [6] applied to DLRIBE, with continual-leakage security inherited from the
// underlying distributed IBE.
//
//   Enc(m): (vk, sigma_kp) <- OTS.KeyGen
//           c   <- DLRIBE.Enc(id = H(vk), m)
//           sig <- OTS.Sign(sk_ots, c)
//           output (vk, c, sig)
//   Dec((vk, c, sig)): reject unless OTS.Verify(vk, c, sig);
//           run the distributed extract for id = H(vk), then the distributed
//           decryption protocol.
//
// CCA2 intuition: a mauled ciphertext either reuses vk (then forging sig
// breaks the OTS) or uses a fresh vk' (then its identity differs from the
// challenge identity, and the IBE's key separation applies).
#pragma once

#include "crypto/ots.hpp"
#include "schemes/dlr_ibe.hpp"
#include "telemetry/trace.hpp"

namespace dlr::schemes {

template <group::BilinearGroup GG>
class DlrCca2System {
 public:
  using Ibe = DlrIbe<GG>;
  using GT = typename GG::GT;
  using Ots = crypto::LamportOts;

  struct Ciphertext {
    Ots::VerifyKey vk;
    typename Ibe::Ciphertext inner;
    Ots::Signature sig;
  };

  static DlrCca2System create(GG gg, const DlrParams& prm, std::size_t id_bits,
                              std::uint64_t seed) {
    return DlrCca2System(DlrIbeSystem<GG>::create(std::move(gg), prm, id_bits, seed));
  }

  [[nodiscard]] const typename Ibe::Bb::PublicParams& pp() const { return ibe_.pp(); }
  [[nodiscard]] DlrIbeSystem<GG>& ibe() { return ibe_; }

  /// Encryption is non-interactive and uses only public values.
  static Ciphertext enc(const Ibe& scheme, const typename Ibe::Bb::PublicParams& pp,
                        const GT& m, crypto::Rng& rng) {
    telemetry::ScopedSpan span("cca2.enc");
    auto kp = Ots::keygen(rng);
    Ciphertext out;
    out.vk = kp.vk;
    out.inner = scheme.enc(pp, vk_identity(kp.vk), m, rng);
    ByteWriter w;
    scheme.bb().ser_ciphertext(w, out.inner);
    out.sig = Ots::sign(kp.sk, w.bytes());
    return out;
  }

  /// Distributed decryption; nullopt on any authenticity failure (the CCA2
  /// rejection path).
  [[nodiscard]] std::optional<GT> decrypt(const Ciphertext& ct) {
    net::Channel ch;
    return decrypt(ct, ch);
  }

  [[nodiscard]] std::optional<GT> decrypt(const Ciphertext& ct, net::Channel& ch) {
    telemetry::ScopedSpan span("cca2.dec");
    ByteWriter w;
    ibe_.scheme().bb().ser_ciphertext(w, ct.inner);
    if (!Ots::verify(ct.vk, w.bytes(), ct.sig)) return std::nullopt;
    const auto id = vk_identity(ct.vk);
    if (!ibe_.p1().has_id(id)) ibe_.extract(id, ch);
    const GT m = ibe_.decrypt(id, ct.inner, ch);
    // Per-vk identity keys are one-shot; drop them to keep state bounded.
    ibe_.p1().erase_id(id);
    ibe_.p2().erase_id(id);
    return m;
  }

  void refresh_msk() { ibe_.refresh_msk(); }

  [[nodiscard]] static std::string vk_identity(const Ots::VerifyKey& vk) {
    const auto d = crypto::Sha256::hash(Ots::serialize_vk(vk));
    return "vk:" + to_hex(Bytes(d.begin(), d.end()));
  }

  [[nodiscard]] std::size_t ciphertext_bytes() const {
    return Ots::vk_bytes() + ibe_.scheme().bb().ciphertext_bytes() + Ots::sig_bytes();
  }

 private:
  explicit DlrCca2System(DlrIbeSystem<GG> ibe) : ibe_(std::move(ibe)) {}

  DlrIbeSystem<GG> ibe_;
};

}  // namespace dlr::schemes
