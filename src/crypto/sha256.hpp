// SHA-256 (FIPS 180-4), from scratch. Used for hash-to-identity, the Lamport
// one-time signature, KDF, and hash-to-curve.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/bytes.hpp"

namespace dlr::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(const Bytes& data) { update(std::span<const std::uint8_t>(data)); }

  /// Finalizes and returns the digest; the object must not be reused after.
  Digest finish();

  static Digest hash(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }
  static Digest hash(const Bytes& data) { return hash(std::span<const std::uint8_t>(data)); }

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buflen_ = 0;
  std::uint64_t total_ = 0;
};

inline Bytes digest_to_bytes(const Sha256::Digest& d) { return Bytes(d.begin(), d.end()); }

/// Domain-separated hash: H(tag || data).
Sha256::Digest tagged_hash(const std::string& tag, std::span<const std::uint8_t> data);

/// Simple counter-mode KDF: out_i = H(seed || i), truncated to n bytes total.
Bytes kdf(std::span<const std::uint8_t> seed, std::size_t n, const std::string& tag);

}  // namespace dlr::crypto
