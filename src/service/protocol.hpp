// Wire schema of the DLR decryption service, layered on transport frames.
//
// Every request is one Data frame on its own mux session; the response is one
// Data frame (label *.ok) or one Error frame (label svc.err) on the same
// session. Requests carry the client's view of the key epoch; the server
// coordinator rejects mismatches with StaleEpoch and requests that land
// while a refresh drains/runs with Draining -- both retryable: the client
// re-issues once its epoch catches up.
//
//   svc.dec  (Data)  body = u64 epoch | blob dec.r1      -> svc.dec.ok | svc.err
//   svc.ref  (Data)  body = u64 epoch | blob ref.r1      -> svc.ref.ok | svc.err
//   svc.err  (Error) body = u8 code | u64 server_epoch | str message
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "crypto/bytes.hpp"
#include "transport/frame.hpp"

namespace dlr::service {

inline constexpr char kLabelDecReq[] = "svc.dec";
inline constexpr char kLabelDecOk[] = "svc.dec.ok";
inline constexpr char kLabelRefReq[] = "svc.ref";
inline constexpr char kLabelRefOk[] = "svc.ref.ok";
inline constexpr char kLabelErr[] = "svc.err";

enum class ServiceErrc : std::uint8_t {
  StaleEpoch = 1,  // request epoch != server epoch; retry after local refresh
  Draining = 2,    // a refresh is draining/running; retry shortly
  BadRequest = 3,  // request did not parse
  Internal = 4,    // server-side exception
  Shutdown = 5,    // server is stopping
};

[[nodiscard]] constexpr const char* service_errc_name(ServiceErrc c) {
  switch (c) {
    case ServiceErrc::StaleEpoch: return "StaleEpoch";
    case ServiceErrc::Draining: return "Draining";
    case ServiceErrc::BadRequest: return "BadRequest";
    case ServiceErrc::Internal: return "Internal";
    case ServiceErrc::Shutdown: return "Shutdown";
  }
  return "Unknown";
}

/// A decoded svc.err response. StaleEpoch and Draining are transient
/// consequences of epoch-coordinated refresh, not failures of the request
/// itself -- callers retry them (DecryptionClient::decrypt does so itself).
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ServiceErrc code, std::uint64_t server_epoch, const std::string& msg)
      : std::runtime_error(std::string("service: ") + service_errc_name(code) + ": " + msg),
        code_(code),
        server_epoch_(server_epoch) {}

  [[nodiscard]] ServiceErrc code() const { return code_; }
  [[nodiscard]] std::uint64_t server_epoch() const { return server_epoch_; }
  [[nodiscard]] bool retryable() const {
    return code_ == ServiceErrc::StaleEpoch || code_ == ServiceErrc::Draining;
  }

 private:
  ServiceErrc code_;
  std::uint64_t server_epoch_;
};

struct Request {
  std::uint64_t epoch = 0;
  Bytes round1;
};

[[nodiscard]] inline Bytes encode_request(std::uint64_t epoch, const Bytes& round1) {
  ByteWriter w;
  w.u64(epoch);
  w.blob(round1);
  return w.take();
}

[[nodiscard]] inline Request decode_request(const Bytes& body) {
  ByteReader r(body);
  Request req;
  req.epoch = r.u64();
  req.round1 = r.blob();
  if (!r.done()) throw std::invalid_argument("service request: trailing bytes");
  return req;
}

[[nodiscard]] inline Bytes encode_error(ServiceErrc code, std::uint64_t server_epoch,
                                        const std::string& msg) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(code));
  w.u64(server_epoch);
  w.str(msg);
  return w.take();
}

[[nodiscard]] inline ServiceError decode_error(const Bytes& body) {
  ByteReader r(body);
  const auto code = static_cast<ServiceErrc>(r.u8());
  const std::uint64_t epoch = r.u64();
  const std::string msg = r.str();
  return {code, epoch, msg};
}

/// Classify a response frame: return the body of a successful `ok_label`
/// response, or throw the decoded ServiceError / a transport Protocol error.
[[nodiscard]] inline Bytes expect_ok(transport::Frame f, const char* ok_label) {
  if (f.type == transport::FrameType::Error && f.label == kLabelErr)
    throw decode_error(f.body);
  if (f.type != transport::FrameType::Data || f.label != ok_label)
    throw transport::TransportError(
        transport::Errc::Protocol,
        "expected '" + std::string(ok_label) + "', got label '" + f.label + "'");
  return std::move(f.body);
}

}  // namespace dlr::service
