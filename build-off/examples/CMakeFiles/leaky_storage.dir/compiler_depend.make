# Empty compiler generated dependencies file for leaky_storage.
# This may be replaced when dependencies are built.
