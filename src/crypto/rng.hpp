// Deterministic CSPRNG built on ChaCha20 in counter mode.
//
// Every source of randomness in the library flows through Rng so that tests,
// protocol transcripts and security-game runs are reproducible from a seed.
// The paper's model distinguishes *secret* randomness (part of a device's
// secret memory, exposed to leakage functions) from public randomness; both
// are drawn from per-party Rng instances and the secret draws are recorded in
// secret-memory snapshots by the protocol layer (see net/party.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "crypto/bytes.hpp"

namespace dlr::crypto {

class Rng {
 public:
  /// Seeded construction: fully deterministic stream.
  explicit Rng(std::uint64_t seed);
  explicit Rng(std::span<const std::uint8_t> seed32);

  /// Entropy from the OS (/dev/urandom); falls back to a time-based seed.
  static Rng from_os_entropy();

  /// An independent child generator (forward-secure split).
  Rng fork(const std::string& label);

  void fill(std::span<std::uint8_t> out);
  Bytes bytes(std::size_t n);
  std::uint64_t u64();

  /// Uniform in [0, bound); bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  bool coin() { return (u64() & 1) != 0; }

 private:
  std::array<std::uint8_t, 32> key_;
  std::uint64_t block_ = 0;
  std::array<std::uint8_t, 64> buf_;
  std::size_t avail_ = 0;

  void refill();
};

}  // namespace dlr::crypto
