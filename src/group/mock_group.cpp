#include "group/mock_group.hpp"

#include <bit>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace dlr::group {

namespace {

std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t powmod_u64(std::uint64_t a, std::uint64_t e, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  a %= m;
  while (e != 0) {
    if (e & 1) result = mulmod_u64(result, a, m);
    a = mulmod_u64(a, a, m);
    e >>= 1;
  }
  return result;
}

}  // namespace

bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull,
                          31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  const std::uint64_t d = (n - 1) >> std::countr_zero(n - 1);
  const int s = std::countr_zero(n - 1);
  // This base set is a proven deterministic MR witness set for all n < 2^64.
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull,
                          31ull, 37ull}) {
    std::uint64_t x = powmod_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < s - 1; ++i) {
      x = mulmod_u64(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

MockGroup::MockGroup(std::uint64_t r) : r_(r) {
  if (r >= (std::uint64_t{1} << 62)) throw std::invalid_argument("MockGroup: order too large");
  if (!is_prime_u64(r)) throw std::invalid_argument("MockGroup: order must be prime");
}

std::size_t MockGroup::scalar_bits() const {
  return static_cast<std::size_t>(64 - std::countl_zero(r_));
}

MockGroup::Scalar MockGroup::sc_inv(Scalar a) const {
  if (a == 0) throw std::domain_error("MockGroup::sc_inv: zero");
  return powmod_u64(a, r_ - 2, r_);
}

MockGroup::G MockGroup::hash_to_g(const Bytes& data) const {
  ByteWriter w;
  w.str("dlr.mock.h2g");
  w.blob(data);
  const auto d = crypto::Sha256::hash(w.bytes());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(d[i]) << (8 * i);
  return {v % r_};
}

}  // namespace dlr::group
