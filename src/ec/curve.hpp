// The supersingular curve E: y^2 = x^3 + x over F_q (q == 3 mod 4), i.e. the
// PBC "type A" curve with a = 1, b = 0. #E(F_q) = q + 1, and the pairing
// group G is the order-r subgroup where r | q + 1.
//
// Points are kept in affine coordinates at API boundaries (they serialize and
// compare cheaply) and in Jacobian coordinates inside scalar multiplication.
#pragma once

#include <span>
#include <vector>

#include "field/fp.hpp"

namespace dlr::ec {

using mpint::UInt;

/// Affine point; (x, y) in Montgomery form, or the point at infinity.
template <std::size_t L>
struct AffinePoint {
  UInt<L> x{};
  UInt<L> y{};
  bool inf = true;
  bool operator==(const AffinePoint&) const = default;
};

/// Jacobian point (X : Y : Z), x = X/Z^2, y = Y/Z^3; Z == 0 encodes infinity.
template <std::size_t L>
struct JacPoint {
  UInt<L> X{};
  UInt<L> Y{};
  UInt<L> Z{};
};

template <std::size_t L>
class CurveCtx {
 public:
  using Fp = field::FpCtx<L>;
  using A = AffinePoint<L>;
  using J = JacPoint<L>;

  explicit CurveCtx(const Fp& fp)
      : fp_(fp), three_(fp_.from_uint(UInt<L>::from_u64(3))) {}

  [[nodiscard]] const Fp& fp() const { return fp_; }

  [[nodiscard]] A infinity() const { return A{}; }

  [[nodiscard]] bool is_on_curve(const A& p) const {
    if (p.inf) return true;
    // y^2 == x^3 + x
    const auto lhs = fp_.sqr(p.y);
    const auto rhs = fp_.add(fp_.mul(fp_.sqr(p.x), p.x), p.x);
    return fp_.eq(lhs, rhs);
  }

  [[nodiscard]] J to_jac(const A& p) const {
    if (p.inf) return J{fp_.one(), fp_.one(), fp_.zero()};
    return J{p.x, p.y, fp_.one()};
  }

  [[nodiscard]] A to_affine(const J& p) const {
    if (fp_.is_zero(p.Z)) return A{};
    const auto zinv = fp_.inv(p.Z);
    const auto zinv2 = fp_.sqr(zinv);
    return A{fp_.mul(p.X, zinv2), fp_.mul(p.Y, fp_.mul(zinv2, zinv)), false};
  }

  [[nodiscard]] J dbl(const J& p) const {
    if (fp_.is_zero(p.Z) || fp_.is_zero(p.Y)) return J{fp_.one(), fp_.one(), fp_.zero()};
    const auto y2 = fp_.sqr(p.Y);
    const auto s = fp_.dbl(fp_.dbl(fp_.mul(p.X, y2)));            // 4XY^2
    const auto z2 = fp_.sqr(p.Z);
    const auto m = fp_.add(fp_.mul(three_, fp_.sqr(p.X)),  // 3X^2 + Z^4 (a = 1)
                           fp_.sqr(z2));
    const auto x3 = fp_.sub(fp_.sqr(m), fp_.dbl(s));
    const auto y4 = fp_.sqr(y2);
    const auto y3 = fp_.sub(fp_.mul(m, fp_.sub(s, x3)), fp_.dbl(fp_.dbl(fp_.dbl(y4))));
    const auto z3 = fp_.dbl(fp_.mul(p.Y, p.Z));
    return J{x3, y3, z3};
  }

  [[nodiscard]] J add(const J& p, const J& q) const {
    if (fp_.is_zero(p.Z)) return q;
    if (fp_.is_zero(q.Z)) return p;
    const auto z1z1 = fp_.sqr(p.Z);
    const auto z2z2 = fp_.sqr(q.Z);
    const auto u1 = fp_.mul(p.X, z2z2);
    const auto u2 = fp_.mul(q.X, z1z1);
    const auto s1 = fp_.mul(p.Y, fp_.mul(z2z2, q.Z));
    const auto s2 = fp_.mul(q.Y, fp_.mul(z1z1, p.Z));
    const auto h = fp_.sub(u2, u1);
    const auto r = fp_.sub(s2, s1);
    if (fp_.is_zero(h)) {
      if (fp_.is_zero(r)) return dbl(p);
      return J{fp_.one(), fp_.one(), fp_.zero()};
    }
    const auto h2 = fp_.sqr(h);
    const auto h3 = fp_.mul(h2, h);
    const auto u1h2 = fp_.mul(u1, h2);
    const auto x3 = fp_.sub(fp_.sub(fp_.sqr(r), h3), fp_.dbl(u1h2));
    const auto y3 = fp_.sub(fp_.mul(r, fp_.sub(u1h2, x3)), fp_.mul(s1, h3));
    const auto z3 = fp_.mul(fp_.mul(p.Z, q.Z), h);
    return J{x3, y3, z3};
  }

  /// Mixed Jacobian + affine addition (q.Z == 1 implicitly): 8M + 3S vs
  /// 12M + 4S for the general add. The payoff of keeping precomputation
  /// tables in affine coordinates.
  [[nodiscard]] J add_mixed(const J& p, const A& q) const {
    if (q.inf) return p;
    if (fp_.is_zero(p.Z)) return to_jac(q);
    const auto z1z1 = fp_.sqr(p.Z);
    const auto u2 = fp_.mul(q.x, z1z1);
    const auto s2 = fp_.mul(q.y, fp_.mul(z1z1, p.Z));
    const auto h = fp_.sub(u2, p.X);
    const auto r = fp_.sub(s2, p.Y);
    if (fp_.is_zero(h)) {
      if (fp_.is_zero(r)) return dbl(p);
      return J{fp_.one(), fp_.one(), fp_.zero()};
    }
    const auto h2 = fp_.sqr(h);
    const auto h3 = fp_.mul(h2, h);
    const auto v = fp_.mul(p.X, h2);
    const auto x3 = fp_.sub(fp_.sub(fp_.sqr(r), h3), fp_.dbl(v));
    const auto y3 = fp_.sub(fp_.mul(r, fp_.sub(v, x3)), fp_.mul(p.Y, h3));
    const auto z3 = fp_.mul(p.Z, h);
    return J{x3, y3, z3};
  }

  /// Normalize a batch of Jacobian points with ONE field inversion
  /// (Montgomery's simultaneous-inversion trick) instead of one per point.
  /// Infinity entries pass through.
  [[nodiscard]] std::vector<A> batch_to_affine(std::span<const J> ps) const {
    std::vector<A> out(ps.size());
    std::vector<UInt<L>> zs;
    std::vector<std::size_t> idx;
    zs.reserve(ps.size());
    idx.reserve(ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      if (fp_.is_zero(ps[i].Z)) continue;  // out[i] stays infinity
      zs.push_back(ps[i].Z);
      idx.push_back(i);
    }
    fp_.batch_inv(zs);
    for (std::size_t j = 0; j < idx.size(); ++j) {
      const auto& p = ps[idx[j]];
      const auto zinv2 = fp_.sqr(zs[j]);
      out[idx[j]] = A{fp_.mul(p.X, zinv2), fp_.mul(p.Y, fp_.mul(zinv2, zs[j])), false};
    }
    return out;
  }

  [[nodiscard]] A add(const A& p, const A& q) const {
    return to_affine(add(to_jac(p), to_jac(q)));
  }

  [[nodiscard]] A neg(const A& p) const {
    if (p.inf) return p;
    return A{p.x, fp_.neg(p.y), false};
  }

  template <std::size_t LE>
  [[nodiscard]] A mul(const A& p, const UInt<LE>& k) const {
    return mul_wnaf(p, k);
  }

  /// Plain MSB-first double-and-add (reference implementation; wNAF is
  /// differentially tested against it).
  template <std::size_t LE>
  [[nodiscard]] A mul_binary(const A& p, const UInt<LE>& k) const {
    J acc{fp_.one(), fp_.one(), fp_.zero()};
    const J base = to_jac(p);
    const std::size_t n = k.bit_length();
    for (std::size_t i = n; i-- > 0;) {
      acc = dbl(acc);
      if (k.bit(i)) acc = add(acc, base);
    }
    return to_affine(acc);
  }

  /// Width-4 wNAF scalar multiplication: ~b doublings + b/5 additions using
  /// 8 precomputed odd multiples (vs b/2 additions for binary).
  template <std::size_t LE>
  [[nodiscard]] A mul_wnaf(const A& p, const UInt<LE>& k) const {
    if (p.inf || k.is_zero()) return A{};
    constexpr int kW = 4;
    const auto naf = wnaf_digits(k, kW);
    // Precompute the odd multiples P, 3P, 5P, 7P (negatives come free).
    std::array<J, 4> odd;
    odd[0] = to_jac(p);
    const J twop = dbl(odd[0]);
    for (int i = 1; i < 4; ++i) odd[i] = add(odd[i - 1], twop);
    J acc{fp_.one(), fp_.one(), fp_.zero()};
    for (std::size_t i = naf.size(); i-- > 0;) {
      acc = dbl(acc);
      const int d = naf[i];
      if (d > 0) acc = add(acc, odd[(d - 1) / 2]);
      if (d < 0) acc = add(acc, neg_jac(odd[(-d - 1) / 2]));
    }
    return to_affine(acc);
  }

  /// Interleaved multi-scalar multiplication (Strauss): computes
  /// sum_i [k_i] P_i with one shared doubling chain -- the workhorse of the
  /// prod a_i^{s_i} masks in Pi_ss / HPSKE.
  ///
  /// Per-base width-3 wNAF (digits +-1, +-3) halves the addition count of the
  /// binary interleaving; the odd-multiple tables live in affine coordinates
  /// (the 3P entries are normalized together with ONE batch inversion), so
  /// every table addition is a cheap mixed add.
  template <std::size_t LE>
  [[nodiscard]] A multi_mul(std::span<const A> points, std::span<const UInt<LE>> ks) const {
    if (points.size() != ks.size())
      throw std::invalid_argument("CurveCtx::multi_mul: size mismatch");
    std::vector<std::vector<int>> nafs;
    std::vector<const A*> act;
    std::size_t nmax = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].inf || ks[i].is_zero()) continue;
      nafs.push_back(mpint::wnaf_digits(ks[i], 3));
      act.push_back(&points[i]);
      nmax = std::max(nmax, nafs.back().size());
    }
    if (act.empty()) return A{};
    std::vector<J> threes;
    threes.reserve(act.size());
    for (const A* p : act) threes.push_back(add_mixed(dbl(to_jac(*p)), *p));
    const auto threes_aff = batch_to_affine(threes);
    J acc{fp_.one(), fp_.one(), fp_.zero()};
    for (std::size_t i = nmax; i-- > 0;) {
      acc = dbl(acc);
      for (std::size_t j = 0; j < act.size(); ++j) {
        if (i >= nafs[j].size()) continue;
        const int d = nafs[j][i];
        if (d == 0) continue;
        const A& t = (d == 1 || d == -1) ? *act[j] : threes_aff[j];
        acc = add_mixed(acc, d > 0 ? t : neg(t));
      }
    }
    return to_affine(acc);
  }

  /// Reference binary interleaving (the pre-fast-lane multi_mul); kept for
  /// differential tests against the wNAF/mixed-add path above.
  template <std::size_t LE>
  [[nodiscard]] A multi_mul_binary(std::span<const A> points,
                                   std::span<const UInt<LE>> ks) const {
    if (points.size() != ks.size())
      throw std::invalid_argument("CurveCtx::multi_mul: size mismatch");
    std::size_t nbits = 0;
    for (const auto& k : ks) nbits = std::max(nbits, k.bit_length());
    std::vector<J> bases;
    bases.reserve(points.size());
    for (const auto& p : points) bases.push_back(to_jac(p));
    J acc{fp_.one(), fp_.one(), fp_.zero()};
    for (std::size_t i = nbits; i-- > 0;) {
      acc = dbl(acc);
      for (std::size_t j = 0; j < bases.size(); ++j)
        if (ks[j].bit(i)) acc = add(acc, bases[j]);
    }
    return to_affine(acc);
  }

  /// Lift an x-coordinate (Montgomery form) to a point if x^3 + x is square.
  [[nodiscard]] std::optional<A> lift_x(const UInt<L>& x, bool y_sign) const {
    const auto rhs = fp_.add(fp_.mul(fp_.sqr(x), x), x);
    const auto y = fp_.sqrt(rhs);
    if (!y) return std::nullopt;
    auto yy = *y;
    // Canonical sign: choose the root whose raw integer form is even, then
    // flip if y_sign requests the other one.
    const bool canonical_odd = fp_.to_uint(yy).is_odd();
    if (canonical_odd != y_sign) yy = fp_.neg(yy);
    return A{x, yy, false};
  }

  [[nodiscard]] J neg_jac(const J& p) const { return J{p.X, fp_.neg(p.Y), p.Z}; }

  /// Non-adjacent form with window w (lives in mpint::wnaf_digits now; alias
  /// kept for existing call sites and tests).
  template <std::size_t LE>
  static std::vector<int> wnaf_digits(const UInt<LE>& k, int w) {
    return mpint::wnaf_digits(k, w);
  }

 private:
  Fp fp_;
  UInt<L> three_;
};

}  // namespace dlr::ec
