// KsFleet<GG> -- the client side of the multi-tenant keystore: one "main
// processor" (P1) holding the P1 half of MANY keys, routing every request to
// the owning shard, and running the leakage-budget refresh scheduler.
//
// Per key, the fleet keeps a miniature P1Runtime: the DlrParty1 state behind
// a shared_mutex, the local epoch, and the in-memory half of the two-phase
// refresh (client-side state is volatile by design -- the durable side of
// the 2PC is the server's segmented journal; a fleet process that dies
// mid-refresh reconciles per key over ks.hello on its next contact, exactly
// the PR 4 verdict table). Decryption snapshots (epoch, round 1, period key)
// under the shared lock, so an in-flight request survives a concurrent
// refresh of its key, and refreshes of DIFFERENT keys never contend.
//
// Routing: the fleet caches a versioned ShardMap and maintains a small pool
// of SessionMux connections per shard (Options::conns_per_shard lanes, each
// calling thread hashing to one), connected lazily and replaced on
// transport failure.
// A WrongShard response -- stale map after a re-shard -- triggers a ks.map
// refetch from the answering shard (every shard serves the whole map) and a
// re-route; the retry loop treats it like any retryable error, under the
// same bounded-backoff RetrySchedule as PR 2's client. With an EMPTY map
// everything routes to the bootstrap port (single-shard mode).
//
// The refresh scheduler (scheduler.hpp) lives HERE because refresh is a
// two-party protocol and this process holds the P1 shares. Its Source is
// the fleet's local budget mirror -- every ks.dec.ok piggybacks the
// server's (spent, budget) for that key, so the mirror needs no polling --
// and its RefreshFn is refresh_key(). Keys the scheduler refreshes in the
// background never reach their budget; client code never calls refresh
// explicitly (refresh-every-K is gone).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "keystore/ks_protocol.hpp"
#include "keystore/scheduler.hpp"
#include "keystore/shard_map.hpp"
#include "schemes/dlr.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"
#include "transport/breaker.hpp"
#include "transport/mux.hpp"
#include "transport/retry.hpp"

namespace dlr::keystore {

template <group::BilinearGroup GG>
class KsFleet {
 public:
  using Core = schemes::DlrCore<GG>;
  using GT = typename GG::GT;
  using ServiceErrc = service::ServiceErrc;
  using ServiceError = service::ServiceError;

  struct Options {
    transport::TransportOptions transport{};
    transport::Millis request_timeout{10000};
    int max_retries = 8;
    transport::RetryPolicy retry{};
    /// Wraps every connection (fault injection in tests/benches).
    std::function<std::shared_ptr<transport::Conn>(std::shared_ptr<transport::FramedConn>)>
        conn_wrapper;
    RefreshScheduler::Options scheduler{};
    /// Budget fraction at which the scheduler refreshes a key.
    double refresh_threshold = 0.5;
    /// Connections kept per shard. Each calling thread hashes to one lane,
    /// so concurrent client threads do not serialize on a single socket's
    /// send mutex and pump thread (the single-key client gives every
    /// DecryptionClient its own connection; the pool is the fleet analogue).
    int conns_per_shard = 4;
    /// Per-SHARD circuit breaker under the retry loop (DESIGN.md §13): a
    /// shard that keeps failing or shedding gets fast-failed locally until
    /// its cooldown elapses, instead of burning the attempt budget on it.
    transport::CircuitBreaker::Options breaker{};
    /// Per-operation deadline budget (0 = none). Deducted across retries
    /// and backoff sleeps; the remaining budget rides each ks.dec request
    /// so the server can drop work the caller already gave up on.
    transport::Millis deadline{0};
  };

  /// `bootstrap_port` serves two roles: where everything routes while the
  /// map is empty, and where fetch_map() bootstraps from.
  KsFleet(GG gg, schemes::DlrParams prm, crypto::Rng rng, std::uint16_t bootstrap_port,
          Options opt)
      : gg_(std::move(gg)),
        prm_(prm),
        rng_(std::move(rng)),
        bootstrap_port_(bootstrap_port),
        opt_(std::move(opt)) {}

  ~KsFleet() { close(); }
  KsFleet(const KsFleet&) = delete;
  KsFleet& operator=(const KsFleet&) = delete;

  /// Register the P1 half of a key. Local only -- pair with provision() to
  /// install the P2 half on the owning shard.
  void add_key(const KeyId& id, typename Core::PublicKey pk, typename Core::Sk1 sk1,
               schemes::P1Mode mode) {
    auto st = std::make_shared<KeyState>();
    st->p1.emplace(gg_, prm_, std::move(pk), std::move(sk1), mode, next_rng());
    st->p1->prepare_period();
    std::unique_lock lk(keys_mu_);
    keys_[id] = std::move(st);
  }

  /// Send the P2 share to the owning shard over ks.put (routed, retried).
  void provision(const KeyId& id, const typename Core::Sk2& sk2) {
    ByteWriter w;
    Core::ser_sk2(gg_, w, sk2);
    const Bytes body = encode_ks_put(id, w.take());
    with_retries(id, [&](transport::SessionMux& m, std::uint32_t) {
      auto sess = m.open();
      sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P1),
                 kKsPut, body);
      (void)service::expect_ok(sess->recv(opt_.request_timeout), kKsPutOk);
      return 0;
    });
  }

  /// One routed, retried DistDec; mirrors the server's budget accounting
  /// from the reply into the scheduler's source data.
  [[nodiscard]] GT decrypt(const KeyId& id, const typename Core::Ciphertext& c) {
    auto st = state(id);
    thread_local crypto::Rng rng = crypto::Rng::from_os_entropy();
    return with_retries(id, [&](transport::SessionMux& m, std::uint32_t remaining_ms) {
      maybe_reconcile(m, id, st);
      Snapshot snap;
      {
        std::shared_lock lk(st->mu);
        snap.round1 = st->p1->dec_round1(c, rng);
        snap.sigma = st->p1->period_sigma_gt();
        snap.epoch = st->epoch.load();
      }
      auto sess = m.open();
      sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P1),
                 kKsDec, encode_ks_request(id, snap.epoch, snap.round1, remaining_ms));
      const KsDecOk ok =
          decode_ks_dec_ok(service::expect_ok(sess->recv(opt_.request_timeout), kKsDecOk));
      st->spent_millibits.store(ok.spent_millibits);
      st->budget_millibits.store(ok.budget_millibits);
      std::shared_lock lk(st->mu);
      return st->p1->dec_finish_with(snap.sigma, ok.reply);
    });
  }

  /// Run the two-phase refresh for one key, advancing its epoch by one.
  /// Also the scheduler's RefreshFn. An interrupted attempt leaves pending
  /// state that the next contact's ks.hello reconciles.
  void refresh_key(const KeyId& id) {
    auto st = state(id);
    const std::uint64_t start = st->epoch.load();
    with_retries(id, [&](transport::SessionMux& m, std::uint32_t) {
      maybe_reconcile(m, id, st);
      if (st->epoch.load() > start) return 0;  // reconciliation rolled forward
      std::unique_lock lk(st->mu);
      if (st->pending)
        throw ServiceError(ServiceErrc::Draining, st->epoch.load(),
                           "pending refresh awaiting reconciliation");
      const std::uint64_t e = st->epoch.load();
      const Bytes r1 = st->p1->ref_round1();
      st->pending.emplace();
      st->pending->epoch = e;
      st->pending->digest = crypto::digest_to_bytes(crypto::Sha256::hash(r1));
      // The flag is what maybe_reconcile() gates on: without it a refresh
      // interrupted between ref.ok and commit.ok would never reconcile.
      st->pending_flag.store(true);
      {
        auto sess = m.open();
        sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P1),
                   kKsRef, encode_ks_request(id, e, r1));
        st->pending->r2 = service::expect_ok(sess->recv(opt_.request_timeout), kKsRefOk);
      }
      {
        auto sess = m.open();
        sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P1),
                   kKsRefCommit, encode_ks_request(id, e, st->pending->digest));
        (void)service::decode_commit_ok(
            service::expect_ok(sess->recv(opt_.request_timeout), kKsRefCommitOk));
      }
      commit_locked(*st);
      return 0;
    });
  }

  /// Fetch the shard map from `port` (default: bootstrap) and adopt it.
  void fetch_map(std::uint16_t port = 0) {
    auto m = connect_raw(port ? port : bootstrap_port_);
    adopt_map(fetch_map_on(*m));
    m->stop();
  }

  void set_map(ShardMap map) {
    std::lock_guard lk(map_mu_);
    map_ = std::move(map);
  }
  [[nodiscard]] ShardMap map() const {
    std::lock_guard lk(map_mu_);
    return map_;
  }

  [[nodiscard]] double spent_frac(const KeyId& id) const {
    auto st = state(id);
    const auto budget = st->budget_millibits.load();
    return budget ? static_cast<double>(st->spent_millibits.load()) /
                        static_cast<double>(budget)
                  : 0.0;
  }

  [[nodiscard]] std::uint64_t epoch_of(const KeyId& id) const {
    return state(id)->epoch.load();
  }

  /// Keys whose mirrored budget is at/above the scheduler threshold.
  [[nodiscard]] std::vector<RefreshScheduler::Candidate> candidates() const {
    std::vector<RefreshScheduler::Candidate> out;
    std::shared_lock lk(keys_mu_);
    for (const auto& [id, st] : keys_) {
      if (st->dead.load()) continue;  // removed/migrated away: never requalify
      const auto budget = st->budget_millibits.load();
      if (!budget) continue;  // never decrypted: no budget info yet
      const double frac = static_cast<double>(st->spent_millibits.load()) /
                          static_cast<double>(budget);
      if (frac >= opt_.refresh_threshold) out.push_back({id, frac});
    }
    return out;
  }

  /// Start the background budget-driven scheduler (Source = candidates(),
  /// RefreshFn = refresh_key()).
  void start_scheduler() {
    if (!scheduler_)
      scheduler_ = std::make_unique<RefreshScheduler>(
          [this] { return candidates(); },
          [this](const KeyId& id) {
            try {
              refresh_key(id);
              return true;
            } catch (const ServiceError& e) {
              // UnknownKey is definitive (non-retryable, so the retry loop
              // already exhausted re-routing): the key is gone server-side.
              // Without dropping it here the scheduler would requalify it on
              // every sweep and the refresh backlog would never drain.
              if (e.code() == ServiceErrc::UnknownKey) drop_dead_key(id);
              return false;
            } catch (const std::exception&) {
              return false;
            }
          },
          opt_.scheduler);
    scheduler_->start();
  }
  void stop_scheduler() {
    if (scheduler_) scheduler_->stop();
  }
  [[nodiscard]] RefreshScheduler* scheduler() { return scheduler_.get(); }

  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_.load(); }
  [[nodiscard]] std::uint64_t map_refetches() const { return map_refetches_.load(); }
  /// Callers that blocked on another thread's in-flight map fetch instead of
  /// issuing their own (the WrongShard-storm dedupe).
  [[nodiscard]] std::uint64_t map_fetch_waits() const { return map_fetch_waits_.load(); }
  [[nodiscard]] bool key_dead(const KeyId& id) const { return state(id)->dead.load(); }

  /// The breaker guarding `shard` (created on first use; tests/benches).
  [[nodiscard]] transport::CircuitBreaker& shard_breaker(std::uint32_t shard) {
    return breaker_for(shard);
  }

  void close() {
    stop_scheduler();
    std::lock_guard lk(mux_mu_);
    closed_ = true;
    for (auto& [shard, sc] : muxes_)
      for (auto& m : sc.lanes)
        if (m) m->stop();
    muxes_.clear();
  }

 private:
  struct Pending {
    std::uint64_t epoch = 0;
    Bytes digest;
    std::optional<Bytes> r2;
  };

  struct KeyState {
    mutable std::shared_mutex mu;
    std::optional<schemes::DlrParty1<GG>> p1;
    std::atomic<std::uint64_t> epoch{0};  // written under exclusive mu
    std::optional<Pending> pending;       // guarded by mu
    std::atomic<bool> pending_flag{false};
    std::atomic<std::uint64_t> spent_millibits{0};
    std::atomic<std::uint64_t> budget_millibits{0};  // 0 = unknown yet
    /// The key is gone on every shard (UnknownKey on refresh): keep the P1
    /// state for post-mortems but never requalify it for the scheduler.
    std::atomic<bool> dead{false};
  };

  struct Snapshot {
    std::uint64_t epoch = 0;
    Bytes round1;
    typename schemes::HpskeGT<GG>::SecretKey sigma;
  };

  [[nodiscard]] std::shared_ptr<KeyState> state(const KeyId& id) const {
    std::shared_lock lk(keys_mu_);
    const auto it = keys_.find(id);
    if (it == keys_.end())
      throw ServiceError(ServiceErrc::UnknownKey, 0, "fleet has no key " + id.display());
    return it->second;
  }

  [[nodiscard]] crypto::Rng next_rng() {
    std::lock_guard lk(rng_mu_);
    return crypto::Rng(rng_.u64());
  }

  /// ref_finish + fresh period + epoch bump. Caller holds st.mu exclusively
  /// with pending->r2 set.
  void commit_locked(KeyState& st) {
    st.p1->ref_finish(*st.pending->r2);
    st.p1->prepare_period();
    st.pending.reset();
    st.pending_flag.store(false);
    st.epoch.fetch_add(1);
    st.spent_millibits.store(0);
  }

  /// Mark a key the servers no longer know as dead so candidates() stops
  /// requalifying it (satellite of the resharding work: a remove()d or
  /// lost key must not wedge the refresh backlog forever).
  void drop_dead_key(const KeyId& id) {
    std::shared_lock lk(keys_mu_);
    const auto it = keys_.find(id);
    if (it == keys_.end() || it->second->dead.exchange(true)) return;
    telemetry::Registry::global().counter("ks.client.dead_keys").add();
    telemetry::event(telemetry::EventKind::Migrate,
                     "step=client_drop_dead key=" + id.display());
  }

  /// Per-key hello reconciliation, run before any op on a key with pending
  /// 2PC state (never as a blanket post-reconnect sweep).
  void maybe_reconcile(transport::SessionMux& m, const KeyId& id,
                       const std::shared_ptr<KeyState>& st) {
    if (!st->pending_flag.load()) return;
    service::HelloMsg h;
    Bytes digest;
    {
      std::shared_lock lk(st->mu);
      if (!st->pending) return;
      h.epoch = st->epoch.load();
      h.has_pending = true;
      h.pending_epoch = st->pending->epoch;
      h.pending_digest = st->pending->digest;
      digest = st->pending->digest;
    }
    auto sess = m.open();
    sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P1),
               kKsHello, encode_ks_hello(id, h));
    const auto ok = service::decode_hello_ok(
        service::expect_ok(sess->recv(opt_.request_timeout), kKsHelloOk));
    std::unique_lock lk(st->mu);
    if (!st->pending || st->pending->digest != digest) return;  // raced
    switch (ok.disposition) {
      case service::RefDisposition::Commit:
        if (!st->pending->r2)
          throw ServiceError(ServiceErrc::Internal, ok.server_epoch,
                             "server committed a refresh the client never "
                             "reached the commit phase of");
        commit_locked(*st);
        break;
      case service::RefDisposition::Rollback:
        st->p1->end_period();
        st->p1->prepare_period();
        st->pending.reset();
        st->pending_flag.store(false);
        telemetry::Registry::global().counter("ks.client.rollbacks").add();
        break;
      case service::RefDisposition::None:
        break;
    }
  }

  // ---- routing ----

  [[nodiscard]] std::uint16_t port_for(const KeyId& id, std::uint32_t* shard_out) const {
    std::shared_lock lk(map_mu_);
    if (map_.empty()) {
      *shard_out = 0;
      return bootstrap_port_;
    }
    const std::uint32_t shard = map_.owner(id);
    const ShardInfo* s = map_.shard(shard);
    if (!s)
      throw ServiceError(ServiceErrc::Internal, 0,
                         "shard map names shard " + std::to_string(shard) + " without an address");
    *shard_out = shard;
    return s->port;
  }

  [[nodiscard]] std::shared_ptr<transport::SessionMux> connect_raw(std::uint16_t port) {
    auto fc = std::make_shared<transport::FramedConn>(
        transport::connect_loopback(port, opt_.transport), opt_.transport);
    std::shared_ptr<transport::Conn> conn =
        opt_.conn_wrapper ? opt_.conn_wrapper(std::move(fc))
                          : std::static_pointer_cast<transport::Conn>(std::move(fc));
    return std::make_shared<transport::SessionMux>(std::move(conn));
  }

  [[nodiscard]] std::size_t lane_of() const {
    const std::size_t n = opt_.conns_per_shard > 0 ? opt_.conns_per_shard : 1;
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) % n;
  }

  [[nodiscard]] std::shared_ptr<transport::SessionMux> mux_for(std::uint32_t shard,
                                                               std::uint16_t port) {
    const std::size_t lane = lane_of();
    {
      // Read-mostly fast path: once a lane's mux exists it is only replaced
      // after a transport failure, so the steady-state request stream shares
      // the lock instead of serializing on it.
      std::shared_lock lk(mux_mu_);
      if (closed_)
        throw transport::TransportError(transport::Errc::ConnectionClosed, "fleet closed");
      const auto it = muxes_.find(shard);
      if (it != muxes_.end() && lane < it->second.lanes.size() && it->second.lanes[lane])
        return it->second.lanes[lane];
    }
    std::unique_lock lk(mux_mu_);
    if (closed_)
      throw transport::TransportError(transport::Errc::ConnectionClosed, "fleet closed");
    auto& sc = muxes_[shard];
    const std::size_t n = opt_.conns_per_shard > 0 ? opt_.conns_per_shard : 1;
    if (sc.lanes.size() < n) {
      sc.lanes.resize(n);
      sc.ever.resize(n, 0);
    }
    auto& slot = sc.lanes[lane];
    if (!slot) {
      slot = connect_raw(port);
      if (sc.ever[lane]) {
        reconnects_.fetch_add(1);
        telemetry::Registry::global().counter("ks.client.reconnects").add();
      }
      sc.ever[lane] = 1;
    }
    return slot;
  }

  void drop_mux(std::uint32_t shard, const std::shared_ptr<transport::SessionMux>& failed) {
    std::lock_guard lk(mux_mu_);
    auto it = muxes_.find(shard);
    if (it == muxes_.end()) return;
    for (auto& slot : it->second.lanes)
      if (slot == failed) {
        slot->stop();
        slot.reset();
        return;
      }
  }

  [[nodiscard]] ShardMap fetch_map_on(transport::SessionMux& m) {
    auto sess = m.open();
    sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P1),
               kKsMap, Bytes{});
    return ShardMap::decode(
        service::expect_ok(sess->recv(opt_.request_timeout), kKsMapOk));
  }

  void adopt_map(ShardMap fresh) {
    std::lock_guard lk(map_mu_);
    if (map_.empty() || fresh.version() >= map_.version()) map_ = std::move(fresh);
  }

  /// Single-flight ks.map refetch per shard: a storm of WrongShard answers
  /// (every request in flight when a reshard lands) must not turn into a
  /// storm of identical map fetches on the same mux. The first caller
  /// fetches + adopts; the rest block until that fetch completes and re-route
  /// against the refreshed map. Returns whether a fetch succeeded (ours or
  /// the one we waited on); false sends the caller down the backoff path.
  bool refetch_map_single_flight(std::uint32_t shard, transport::SessionMux& m) {
    std::unique_lock lk(map_fetch_mu_);
    auto& st = map_fetches_[shard];
    if (st.in_flight) {
      map_fetch_waits_.fetch_add(1);
      telemetry::Registry::global().counter("ks.client.map_fetch_waits").add();
      const std::uint64_t seen = st.completions;
      map_fetch_cv_.wait(lk, [&] { return st.completions != seen; });
      return st.last_ok;
    }
    st.in_flight = true;
    lk.unlock();
    bool ok = false;
    try {
      adopt_map(fetch_map_on(m));
      map_refetches_.fetch_add(1);
      ok = true;
    } catch (const std::exception&) {
    }
    lk.lock();
    st.in_flight = false;
    st.last_ok = ok;
    ++st.completions;
    lk.unlock();
    map_fetch_cv_.notify_all();
    return ok;
  }

  /// The routed retry loop shared by every op: route -> run -> on WrongShard
  /// refetch the map from the answering shard, on other retryable errors
  /// back off, on transport failure drop that shard's mux and reconnect.
  template <class Op>
  auto with_retries(const KeyId& id, Op&& op) -> decltype(op(
      std::declval<transport::SessionMux&>(), std::uint32_t{})) {
    thread_local crypto::Rng backoff_rng = crypto::Rng::from_os_entropy();
    transport::RetryPolicy policy = opt_.retry;
    policy.max_attempts = opt_.max_retries + 1;
    transport::RetrySchedule sched(policy);
    const auto op_deadline = opt_.deadline.count() > 0
                                 ? std::chrono::steady_clock::now() + opt_.deadline
                                 : std::chrono::steady_clock::time_point{};
    for (;;) {
      std::uint32_t shard = 0;
      std::shared_ptr<transport::SessionMux> m;
      transport::CircuitBreaker* br = nullptr;
      bool admitted = false;  // breaker outcome owed only for admitted attempts
      try {
        check_budget(op_deadline);
        const std::uint16_t port = port_for(id, &shard);
        br = &breaker_for(shard);
        const auto adm = br->try_acquire();
        if (!adm.admitted) {
          telemetry::Registry::global().counter("ks.client.breaker.fastfail").add();
          throw ServiceError(
              ServiceErrc::Overloaded, 0,
              "circuit breaker open for shard " + std::to_string(shard),
              static_cast<std::uint32_t>(adm.retry_after.count()));
        }
        admitted = true;
        m = mux_for(shard, port);
        auto result = op(*m, remaining_ms(op_deadline));
        breaker_success(shard, *br);
        return result;
      } catch (const ServiceError& e) {
        // Overloaded proves the shard is shedding; every other typed error
        // proves it answered -- only the former counts against the breaker.
        if (admitted && br) {
          if (e.code() == ServiceErrc::Overloaded)
            breaker_failure(shard, *br);
          else
            breaker_success(shard, *br);
        }
        if (!e.retryable()) throw;
        const auto delay =
            sched.next(backoff_rng.u64(), transport::Millis{e.retry_after_ms()});
        if (!delay) throw;
        telemetry::Registry::global().counter("ks.client.retries").add();
        if (e.code() == ServiceErrc::WrongShard && m) {
          // Stale map: the answering shard serves the current one. Concurrent
          // misroutes to the same shard collapse to ONE in-flight fetch.
          if (refetch_map_single_flight(shard, *m))
            continue;  // re-route immediately; no backoff needed
          // Fetch failed: fall through to the backoff path.
        }
        std::this_thread::sleep_for(clamp_to_budget(*delay, op_deadline));
      } catch (const transport::TransportError&) {
        if (admitted && br) breaker_failure(shard, *br);
        const auto delay = sched.next(backoff_rng.u64());
        if (!delay) throw;
        telemetry::Registry::global().counter("ks.client.retries").add();
        if (m) drop_mux(shard, m);
        std::this_thread::sleep_for(clamp_to_budget(*delay, op_deadline));
      }
    }
  }

  // ---- deadline budget + per-shard breaker plumbing (DESIGN.md §13) ----

  /// Throws the non-retryable typed error once the op's budget is spent; the
  /// sleep clamp below guarantees the loop re-checks right after a backoff.
  static void check_budget(std::chrono::steady_clock::time_point op_deadline) {
    if (op_deadline == std::chrono::steady_clock::time_point{}) return;
    if (std::chrono::steady_clock::now() >= op_deadline)
      throw ServiceError(ServiceErrc::DeadlineExceeded, 0, "deadline budget spent");
  }

  /// Remaining budget to ride the wire (0 = no deadline; floor 1 ms so a
  /// nearly-spent budget still encodes as "has a deadline").
  [[nodiscard]] static std::uint32_t remaining_ms(
      std::chrono::steady_clock::time_point op_deadline) {
    if (op_deadline == std::chrono::steady_clock::time_point{}) return 0;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        op_deadline - std::chrono::steady_clock::now());
    return static_cast<std::uint32_t>(std::max<long long>(1, left.count()));
  }

  [[nodiscard]] static transport::Millis clamp_to_budget(
      transport::Millis d, std::chrono::steady_clock::time_point op_deadline) {
    if (op_deadline == std::chrono::steady_clock::time_point{}) return d;
    return std::min(d, transport::Millis{remaining_ms(op_deadline)});
  }

  [[nodiscard]] transport::CircuitBreaker& breaker_for(std::uint32_t shard) {
    std::lock_guard lk(breakers_mu_);
    auto it = breakers_.find(shard);
    if (it == breakers_.end())
      it = breakers_
               .emplace(shard,
                        std::make_unique<transport::CircuitBreaker>(opt_.breaker))
               .first;
    return *it->second;
  }

  void breaker_success(std::uint32_t shard, transport::CircuitBreaker& br) {
    const auto closes_before = br.closes();
    br.on_success();
    if (br.closes() != closes_before) {
      telemetry::Registry::global().counter("ks.client.breaker.close").add();
      telemetry::event(telemetry::EventKind::BreakerClose,
                       "shard=" + std::to_string(shard));
    }
  }

  void breaker_failure(std::uint32_t shard, transport::CircuitBreaker& br) {
    const auto opens_before = br.opens();
    br.on_failure();
    if (br.opens() != opens_before) {
      telemetry::Registry::global().counter("ks.client.breaker.open").add();
      telemetry::event(telemetry::EventKind::BreakerOpen,
                       "shard=" + std::to_string(shard) + " state=open");
    }
  }

  GG gg_;
  schemes::DlrParams prm_;
  std::mutex rng_mu_;
  crypto::Rng rng_;
  std::uint16_t bootstrap_port_;
  Options opt_;

  mutable std::shared_mutex keys_mu_;
  std::unordered_map<KeyId, std::shared_ptr<KeyState>, KeyIdHash> keys_;

  mutable std::shared_mutex map_mu_;
  ShardMap map_;

  /// Per-shard connection lanes (opt_.conns_per_shard of them; a lane that
  /// was connected before counts re-establishment as a reconnect).
  struct ShardConns {
    std::vector<std::shared_ptr<transport::SessionMux>> lanes;
    std::vector<char> ever;
  };

  std::shared_mutex mux_mu_;
  std::map<std::uint32_t, ShardConns> muxes_;
  bool closed_ = false;  // guarded by mux_mu_

  /// Per-shard single-flight map refetch state (guarded by map_fetch_mu_).
  struct MapFetch {
    bool in_flight = false;
    bool last_ok = false;
    std::uint64_t completions = 0;
  };
  std::mutex map_fetch_mu_;
  std::condition_variable map_fetch_cv_;
  std::map<std::uint32_t, MapFetch> map_fetches_;
  std::atomic<std::uint64_t> map_fetch_waits_{0};

  /// Per-shard breakers, created on first route (unique_ptr: the breaker's
  /// mutex pins its address while callers hold references across the map's
  /// rebalancing inserts).
  std::mutex breakers_mu_;
  std::map<std::uint32_t, std::unique_ptr<transport::CircuitBreaker>> breakers_;

  std::unique_ptr<RefreshScheduler> scheduler_;
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> map_refetches_{0};
};

}  // namespace dlr::keystore
