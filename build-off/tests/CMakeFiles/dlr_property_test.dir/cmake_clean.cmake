file(REMOVE_RECURSE
  "CMakeFiles/dlr_property_test.dir/dlr_property_test.cpp.o"
  "CMakeFiles/dlr_property_test.dir/dlr_property_test.cpp.o.d"
  "dlr_property_test"
  "dlr_property_test.pdb"
  "dlr_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
