#include "transport/fault.hpp"

#include <algorithm>
#include <thread>

#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"

namespace dlr::transport {

namespace {

/// splitmix64 -- tiny, stateless, and plenty for fault scheduling. The
/// transport layer deliberately does not depend on crypto::Rng.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultAction FaultPlan::action(Direction d, std::uint64_t index) const {
  const auto& scripted = (d == Direction::Outbound) ? out_ : in_;
  if (const auto it = scripted.find(index); it != scripted.end()) return it->second;
  if (!seeded_) return {};
  const std::uint64_t word =
      mix64(seed_ ^ mix64(index * 2 + static_cast<std::uint64_t>(d)));
  const double u = static_cast<double>(word >> 11) * 0x1.0p-53;  // [0,1)
  double edge = rates_.drop;
  if (u < edge) return {FaultKind::Drop, 0};
  edge += rates_.duplicate;
  if (u < edge) return {FaultKind::Duplicate, 0};
  edge += rates_.delay;
  if (u < edge) return {FaultKind::Delay, rates_.delay_ms};
  edge += rates_.bitflip;
  if (u < edge) return {FaultKind::BitFlip, static_cast<std::uint32_t>(word >> 32)};
  edge += rates_.sever;
  if (u < edge) return {FaultKind::Sever, 0};
  return {};
}

void FaultInjector::count(FaultKind k) {
  if (k == FaultKind::Pass) return;
  ++injected_;  // caller holds mu_
  telemetry::Registry::global()
      .counter(std::string("fault.injected.") + fault_kind_name(k))
      .add();
  telemetry::event(telemetry::EventKind::FaultInjected,
                   std::string("kind=") + fault_kind_name(k));
}

void FaultInjector::deliver(const Frame& f) {
  // Caller holds mu_; `act` was already counted. Non-hold outbound actions.
  const FaultAction act = plan_.action(Direction::Outbound, out_index_++);
  count(act.kind);
  switch (act.kind) {
    case FaultKind::Drop:
      return;  // vanishes; the peer sees nothing
    case FaultKind::Duplicate:
      under_->send(f);
      under_->send(f);
      return;
    case FaultKind::Delay:
      std::this_thread::sleep_for(Millis{act.param});
      under_->send(f);
      return;
    case FaultKind::Truncate: {
      const Bytes wire = encode_frame(f);
      std::size_t keep = act.param ? act.param : wire.size() / 2;
      keep = std::clamp<std::size_t>(keep, 1, wire.size() - 1);
      under_->send_raw(std::span<const std::uint8_t>(wire.data(), keep));
      under_->shutdown();  // mid-frame cut: peer sees EOF inside a frame
      return;
    }
    case FaultKind::BitFlip: {
      Bytes wire = encode_frame(f);
      const std::size_t bit = act.param % (wire.size() * 8);
      wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      under_->send_raw(wire);
      return;
    }
    case FaultKind::Sever:
      under_->shutdown();
      throw TransportError(Errc::ConnectionClosed, "fault: connection severed on send");
    case FaultKind::Pass:
    case FaultKind::HoldUntilNext:  // handled by send() before deliver()
      under_->send(f);
      return;
  }
}

void FaultInjector::send(const Frame& f) {
  std::lock_guard lock(mu_);
  // Peek the action for THIS index only to catch holds; deliver() consumes
  // the index for everything else.
  if (plan_.action(Direction::Outbound, out_index_).kind == FaultKind::HoldUntilNext) {
    ++out_index_;
    count(FaultKind::HoldUntilNext);
    if (held_out_) {
      const Frame prev = *std::exchange(held_out_, std::nullopt);
      held_out_ = f;
      under_->send(prev);
    } else {
      held_out_ = f;
    }
    return;
  }
  deliver(f);
  if (held_out_) {
    const Frame prev = *std::exchange(held_out_, std::nullopt);
    under_->send(prev);  // released AFTER its successor: the reorder
  }
}

Frame FaultInjector::recv(std::optional<Millis> timeout) {
  for (;;) {
    {
      std::lock_guard lock(mu_);
      if (!redeliver_.empty()) {
        Frame f = std::move(redeliver_.front());
        redeliver_.pop_front();
        return f;
      }
    }
    Frame f = under_->recv(timeout);  // blocking: do NOT hold mu_ here
    std::unique_lock lock(mu_);
    const FaultAction act = plan_.action(Direction::Inbound, in_index_++);
    count(act.kind);
    switch (act.kind) {
      case FaultKind::Drop:
        continue;  // as if the frame never arrived
      case FaultKind::Duplicate:
        redeliver_.push_back(f);
        break;
      case FaultKind::Delay:
        lock.unlock();
        std::this_thread::sleep_for(Millis{act.param});
        return f;
      case FaultKind::Truncate:
        under_->shutdown();
        throw TransportError(Errc::Truncated, "fault: inbound frame truncated");
      case FaultKind::BitFlip:
        under_->shutdown();
        throw TransportError(Errc::ChecksumMismatch, "fault: inbound frame corrupted");
      case FaultKind::Sever:
        under_->shutdown();
        throw TransportError(Errc::ConnectionClosed, "fault: connection severed on recv");
      case FaultKind::HoldUntilNext:
        if (held_in_) redeliver_.push_back(*std::exchange(held_in_, std::nullopt));
        held_in_ = std::move(f);
        continue;  // surfaces after the NEXT inbound frame
      case FaultKind::Pass:
        break;
    }
    if (held_in_) redeliver_.push_back(*std::exchange(held_in_, std::nullopt));
    return f;
  }
}

}  // namespace dlr::transport
