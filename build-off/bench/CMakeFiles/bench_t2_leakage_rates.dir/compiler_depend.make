# Empty compiler generated dependencies file for bench_t2_leakage_rates.
# This may be replaced when dependencies are built.
