// PR 8 cross-request batching: differential tests of the recode-once
// decryption path (PreparedGtMultiPow, ct_multi_pow_prepared,
// DlrParty2::DecBatch, dec_respond_many) against the unbatched originals --
// wire outputs must be BIT-identical, not merely algebraically equal --
// plus unit and hammer coverage of the BatchCollector and the
// resolved-once parallel-config knobs (service/parallel.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "group/counting_group.hpp"
#include "group/mock_group.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"
#include "service/batcher.hpp"
#include "service/parallel.hpp"

namespace dlr {
namespace {

using crypto::Rng;
using group::make_mock;
using group::make_tate_ss256;
using group::make_tate_ss512;
using group::MockGroup;

// ---- prepared gt multi-pow ----------------------------------------------------

/// Native prepared path (Tate backends): prepare once, apply to several base
/// vectors, compare against gt_multi_pow on the same inputs. Exercises the
/// zero-scalar skip and the all-zero edge that the prepared path must
/// replicate exactly.
template <class GG>
void prepared_gt_differential(const GG& gg, std::uint64_t seed, int iters,
                              std::size_t max_terms) {
  Rng rng(seed);
  for (int it = 0; it < iters; ++it) {
    const std::size_t n = 1 + rng.below(max_terms);
    std::vector<typename GG::Scalar> ss;
    for (std::size_t i = 0; i < n; ++i) ss.push_back(gg.sc_random(rng));
    if (it % 2 == 1) ss[rng.below(n)] = gg.sc_from_u64(0);
    const auto prep = gg.prepare_gt_multi_pow(ss);
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<typename GG::GT> ts;
      for (std::size_t i = 0; i < n; ++i) ts.push_back(gg.gt_random(rng));
      EXPECT_TRUE(gg.gt_eq(prep.pow(ts), gg.gt_multi_pow(ts, ss)));
    }
  }
  // All scalars zero -> identity, via the prepared path too.
  const std::vector<typename GG::Scalar> zs{gg.sc_from_u64(0), gg.sc_from_u64(0)};
  const std::vector<typename GG::GT> ts{gg.gt_random(rng), gg.gt_random(rng)};
  EXPECT_TRUE(gg.gt_eq(gg.prepare_gt_multi_pow(zs).pow(ts), gg.gt_multi_pow(ts, zs)));
}

TEST(PreparedMultiPowTest, TateSS256MatchesGtMultiPow) {
  prepared_gt_differential(make_tate_ss256(), 801, 4, 5);
}

TEST(PreparedMultiPowTest, TateSS512MatchesGtMultiPow) {
  prepared_gt_differential(make_tate_ss512(), 802, 2, 3);
}

TEST(PreparedMultiPowTest, SizeMismatchThrows) {
  const auto gg = make_tate_ss256();
  Rng rng(803);
  const std::vector<typename group::TateSS256::Scalar> ss{gg.sc_random(rng)};
  const auto prep = gg.prepare_gt_multi_pow(ss);
  const std::vector<typename group::TateSS256::GT> two{gg.gt_random(rng),
                                                       gg.gt_random(rng)};
  EXPECT_THROW((void)prep.pow(two), std::invalid_argument);
}

/// CountingGroup forwards prepare_gt_multi_pow so op profiles stay exact:
/// one prepared pow must count exactly one multi_pow with n terms, like the
/// unprepared call. (Only native backends expose the prepare hook -- the
/// requires-clause hides it on CountingGroup<MockGroup> -- so wrap Tate.)
TEST(PreparedMultiPowTest, CountingGroupProfilesThePreparedPath) {
  using CG = group::CountingGroup<group::TateSS256>;
  CG gg(make_tate_ss256());
  Rng rng(804);
  std::vector<typename CG::Scalar> ss;
  std::vector<typename CG::GT> ts;
  for (int i = 0; i < 3; ++i) {
    ss.push_back(gg.sc_random(rng));
    ts.push_back(gg.gt_random(rng));
  }
  const auto direct = gg.gt_multi_pow(ts, ss);
  const auto before = gg.counts().multi_pows;
  const auto prep = gg.prepare_gt_multi_pow(ss);
  const auto via = prep.pow(ts);
  EXPECT_EQ(gg.counts().multi_pows, before + 1);
  EXPECT_TRUE(gg.gt_eq(via, direct));
}

// ---- hpske ct_multi_pow_prepared ----------------------------------------------

template <class GG>
void ct_prepared_differential(const GG& gg, std::uint64_t seed, std::size_t width,
                              std::size_t n_cts) {
  schemes::HpskeGT<GG> ht(gg, width);
  Rng rng(seed);
  const auto sk = ht.gen(rng);
  std::vector<typename schemes::HpskeGT<GG>::Ciphertext> cts;
  std::vector<typename GG::Scalar> ks;
  for (std::size_t i = 0; i < n_cts; ++i) {
    cts.push_back(ht.enc(sk, gg.gt_random(rng), rng));
    ks.push_back(gg.sc_random(rng));
  }
  const auto pk = ht.prepare_key(ks);
  const auto ref = ht.ct_multi_pow(cts, ks);
  const auto got = ht.ct_multi_pow_prepared(pk, cts);
  EXPECT_TRUE(got == ref);  // element-wise equality of every coordinate
  // Wrong count fails typed, like ct_multi_pow's size mismatch.
  cts.pop_back();
  EXPECT_THROW((void)ht.ct_multi_pow_prepared(pk, cts), std::invalid_argument);
}

TEST(CtMultiPowPreparedTest, MockMatchesUnprepared) {
  ct_prepared_differential(make_mock(), 811, 3, 6);
}

TEST(CtMultiPowPreparedTest, TateSS256MatchesUnprepared) {
  ct_prepared_differential(make_tate_ss256(), 812, 2, 3);
}

// ---- DlrParty2::DecBatch / dec_respond_many -----------------------------------

/// The full protocol differential: the batched round 2 must be BIT-identical
/// to dec_respond on every backend, and the replies must still decrypt to
/// the original messages through P1's round 3.
template <class GG>
void dec_batch_differential(GG gg, std::size_t lambda, std::uint64_t seed, int msgs) {
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), lambda);
  auto sys = schemes::DlrSystem<GG>::create(gg, prm, schemes::P1Mode::Plain, seed);
  Rng rng(seed + 1);
  std::vector<typename GG::GT> ms;
  std::vector<Bytes> round1s;
  for (int i = 0; i < msgs; ++i) {
    ms.push_back(gg.gt_random(rng));
    const auto c = schemes::DlrCore<GG>::enc(gg, sys.pk(), ms.back(), rng);
    round1s.push_back(sys.p1().dec_round1(c));
  }
  const auto batch = sys.p2().dec_batch();
  const auto many = sys.p2().dec_respond_many(round1s);
  ASSERT_EQ(many.size(), round1s.size());
  for (int i = 0; i < msgs; ++i) {
    const Bytes ref = sys.p2().dec_respond(round1s[static_cast<std::size_t>(i)]);
    EXPECT_EQ(batch.run(round1s[static_cast<std::size_t>(i)]), ref) << "msg " << i;
    ASSERT_TRUE(many[static_cast<std::size_t>(i)].ok());
    EXPECT_EQ(many[static_cast<std::size_t>(i)].reply, ref) << "msg " << i;
    EXPECT_TRUE(gg.gt_eq(sys.p1().dec_finish(ref), ms[static_cast<std::size_t>(i)]));
  }
}

TEST(DecBatchTest, BitIdenticalMock) {
  const auto gg = make_mock();
  dec_batch_differential(gg, gg.scalar_bits(), 821, 6);
}

TEST(DecBatchTest, BitIdenticalTateSS256) {
  dec_batch_differential(make_tate_ss256(), 32, 822, 3);
}

TEST(DecBatchTest, BitIdenticalTateSS512) {
  dec_batch_differential(make_tate_ss512(), 32, 823, 2);
}

TEST(DecBatchTest, MalformedRequestFailsAloneInMany) {
  const auto gg = make_mock();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  auto sys = schemes::DlrSystem<MockGroup>::create(gg, prm, schemes::P1Mode::Plain, 824);
  Rng rng(825);
  std::vector<Bytes> round1s;
  for (int i = 0; i < 4; ++i) {
    const auto c =
        schemes::DlrCore<MockGroup>::enc(gg, sys.pk(), gg.gt_random(rng), rng);
    round1s.push_back(sys.p1().dec_round1(c));
  }
  round1s[1].push_back(0x00);  // trailing byte -> that item must fail typed
  round1s[2].resize(round1s[2].size() / 2);  // truncated -> fails too
  const auto many = sys.p2().dec_respond_many(round1s);
  EXPECT_TRUE(many[0].ok());
  EXPECT_FALSE(many[1].ok());
  EXPECT_FALSE(many[2].ok());
  EXPECT_TRUE(many[3].ok());
  EXPECT_EQ(many[0].reply, sys.p2().dec_respond(round1s[0]));
  EXPECT_EQ(many[3].reply, sys.p2().dec_respond(round1s[3]));
}

/// Refresh between prepares: a DecBatch constructed BEFORE a refresh answers
/// for the old share (callers hold the share lock across batch + runs, so
/// the service never actually interleaves); a batch constructed after must
/// match the refreshed dec_respond.
TEST(DecBatchTest, RebuiltBatchTracksRefreshedShare) {
  const auto gg = make_mock();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  auto sys = schemes::DlrSystem<MockGroup>::create(gg, prm, schemes::P1Mode::Plain, 826);
  Rng rng(827);
  const auto m = gg.gt_random(rng);
  const auto c = schemes::DlrCore<MockGroup>::enc(gg, sys.pk(), m, rng);
  const Bytes r1 = sys.p1().dec_round1(c);
  const Bytes before = sys.p2().dec_respond(r1);
  sys.refresh();
  // The round-1 message was built for the OLD period's sk_comm; what matters
  // here is only that batch and plain paths agree after the share rotated.
  const auto m2 = gg.gt_random(rng);
  const auto c2 = schemes::DlrCore<MockGroup>::enc(gg, sys.pk(), m2, rng);
  const Bytes r2 = sys.p1().dec_round1(c2);
  const auto batch = sys.p2().dec_batch();
  EXPECT_EQ(batch.run(r2), sys.p2().dec_respond(r2));
  EXPECT_TRUE(gg.gt_eq(sys.p1().dec_finish(batch.run(r2)), m2));
  (void)before;
}

// ---- BatchCollector -----------------------------------------------------------

using service::BatchCollector;

TEST(BatchCollectorTest, DrainsEverythingInCapBoundedBatches) {
  BatchCollector<int> bc({/*cap=*/4, std::chrono::microseconds(100), /*queue_cap=*/64});
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(bc.submit(i));
  std::vector<int> got;
  while (got.size() < 10) {
    const auto b = bc.collect();
    ASSERT_FALSE(b.empty());
    EXPECT_LE(b.size(), 4u);
    got.insert(got.end(), b.begin(), b.end());
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);  // FIFO
  EXPECT_EQ(bc.queued(), 0u);
}

TEST(BatchCollectorTest, StopDrainsThenReturnsEmpty) {
  BatchCollector<int> bc({4, std::chrono::microseconds(100), 64});
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(bc.submit(i));
  bc.stop();
  EXPECT_FALSE(bc.submit(99));  // post-stop submits refused
  std::size_t n = 0;
  for (;;) {
    const auto b = bc.collect();
    if (b.empty()) break;
    n += b.size();
  }
  EXPECT_EQ(n, 6u);
  EXPECT_TRUE(bc.collect().empty());  // stays empty once drained
}

TEST(BatchCollectorTest, LoneItemSkipsTheLinger) {
  // A huge max_wait would stall a single request for its full duration if
  // the collector lingered unconditionally; the adaptive fast path must hand
  // a lone item over immediately when no concurrency has been observed.
  BatchCollector<int> bc({16, std::chrono::microseconds(500000), 64});
  ASSERT_TRUE(bc.submit(1));
  const auto t0 = std::chrono::steady_clock::now();
  const auto b = bc.collect();
  const auto ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  ASSERT_EQ(b.size(), 1u);
  EXPECT_LT(ms, 250.0);  // far below the 500ms linger; generous for CI noise
}

TEST(BatchCollectorTest, ConcurrentTrafficCoalesces) {
  BatchCollector<int> bc({8, std::chrono::microseconds(200000), 64});
  // Prime the concurrency heuristic: two queued items -> multi-item batch.
  ASSERT_TRUE(bc.submit(0));
  ASSERT_TRUE(bc.submit(1));
  EXPECT_EQ(bc.collect().size(), 2u);
  // Now a consumer that arrives before the producers should linger and pick
  // up both items in one batch.
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    (void)bc.submit(2);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    (void)bc.submit(3);
  });
  const auto b = bc.collect();
  producer.join();
  EXPECT_GE(b.size(), 1u);
  // Whatever the batch split, everything drains and nothing duplicates.
  std::size_t rest = 0;
  while (bc.queued() > 0) rest += bc.collect().size();
  EXPECT_EQ(b.size() + rest, 2u);
}

TEST(BatchCollectorTest, BackpressureBlocksUntilConsumed) {
  BatchCollector<int> bc({2, std::chrono::microseconds(50), /*queue_cap=*/2});
  ASSERT_TRUE(bc.submit(0));
  ASSERT_TRUE(bc.submit(1));
  std::atomic<bool> third_in{false};
  std::thread t([&] {
    ASSERT_TRUE(bc.submit(2));  // blocks until a batch is taken
    third_in.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_in.load());
  EXPECT_EQ(bc.collect().size(), 2u);
  t.join();
  EXPECT_TRUE(third_in.load());
  EXPECT_EQ(bc.collect().size(), 1u);
}

/// The TSan hammer: many producers, several competing consumers, every item
/// delivered exactly once. CI runs this under -fsanitize=thread.
TEST(BatchCollectorHammerTest, ManyProducersManyConsumersExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 250;
  constexpr int kTotal = kProducers * kPerProducer;
  BatchCollector<int> bc({8, std::chrono::microseconds(100), 32});
  std::vector<std::atomic<int>> seen(kTotal);
  for (auto& s : seen) s.store(0);
  std::atomic<int> delivered{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      for (;;) {
        const auto b = bc.collect();
        if (b.empty()) return;
        for (const int v : b) {
          seen[static_cast<std::size_t>(v)].fetch_add(1);
          delivered.fetch_add(1);
        }
      }
    });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(bc.submit(p * kPerProducer + i));
    });
  for (auto& t : producers) t.join();
  while (delivered.load() < kTotal) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  bc.stop();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(delivered.load(), kTotal);
  for (int i = 0; i < kTotal; ++i)
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
}

// ---- parallel config knobs ----------------------------------------------------

TEST(ParallelConfigTest, TestOverrideWinsOverEverything) {
  service::set_parallel_threads_for_test(5);
  EXPECT_EQ(service::parallel_threads(), 5);
  service::set_parallel_threads_for_test(0);
  EXPECT_EQ(service::parallel_threads(), 0);
  service::set_parallel_threads_for_test(-1);  // cleared
}

TEST(ParallelConfigTest, AdaptiveDefaultAppliesWhenEnvAbsent) {
  service::set_parallel_threads_for_test(-1);
  if (std::getenv("DLR_PARALLEL") != nullptr) GTEST_SKIP() << "env var set by runner";
  service::set_adaptive_parallel_default(3);
  EXPECT_EQ(service::parallel_threads(), 3);
  service::set_adaptive_parallel_default(0);
  EXPECT_EQ(service::parallel_threads(), 0);
  service::set_adaptive_parallel_default(-1);  // cleared -> serial fallback
  EXPECT_EQ(service::parallel_threads(), 0);
}

TEST(ParallelConfigTest, SuppressGuardNestsAndIsThreadLocal) {
  EXPECT_FALSE(service::fanout_suppressed());
  {
    service::FanoutSuppressGuard outer(true);
    EXPECT_TRUE(service::fanout_suppressed());
    {
      service::FanoutSuppressGuard inner(true);
      EXPECT_TRUE(service::fanout_suppressed());
      // Another thread is unaffected -- the guard is thread_local.
      bool other = true;
      std::thread([&] { other = service::fanout_suppressed(); }).join();
      EXPECT_FALSE(other);
    }
    EXPECT_TRUE(service::fanout_suppressed());
    service::FanoutSuppressGuard inactive(false);
    EXPECT_TRUE(service::fanout_suppressed());
  }
  EXPECT_FALSE(service::fanout_suppressed());
}

TEST(ParallelConfigTest, SuppressGuardForcesSerialParFor) {
  service::set_parallel_threads_for_test(3);
  std::atomic<int> ran{0};
  {
    service::FanoutSuppressGuard guard(true);
    service::par_for(8, [&](std::size_t) { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 8);
  service::set_parallel_threads_for_test(-1);
}

}  // namespace
}  // namespace dlr
