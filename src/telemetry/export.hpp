// Exporters -- pillar 3 of the telemetry layer.
//
// Three output formats over a (Snapshot, spans) pair:
//   * to_text:          human-readable summary (counters/gauges/histograms +
//                       an indented span tree), for terminal inspection;
//   * to_jsonl:         machine-readable JSON lines, one object per metric /
//                       span -- the diffable BENCH_*.json format the bench
//                       binaries write via --json;
//   * to_chrome_trace:  Chrome about:tracing / Perfetto trace_event JSON.
//
// import_jsonl parses to_jsonl output back (round-trip), which is what makes
// bench output comparable across PRs by script rather than by eyeball.
//
// The exporters compile identically with telemetry off -- they simply see
// empty snapshots -- so a --json flag keeps working in a no-op build.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace dlr::telemetry {

/// Run-level metadata stamped into the first line of every JSONL export.
struct ExportMeta {
  std::string run;  // e.g. the bench binary's name
};

[[nodiscard]] std::string to_text(const Snapshot& snap, const std::vector<Span>& spans);
[[nodiscard]] std::string to_jsonl(const ExportMeta& meta, const Snapshot& snap,
                                   const std::vector<Span>& spans);
[[nodiscard]] std::string to_chrome_trace(const std::vector<Span>& spans);

/// Snapshot the global registry + tracer and write JSONL to `path`.
/// Returns false on I/O failure.
bool export_global_jsonl(const std::string& path, const std::string& run_label);

/// Parsed-back view of a JSONL export.
struct Imported {
  std::string run;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::size_t histograms = 0;
  std::vector<Span> spans;  // attrs included; bucket detail not re-imported
};
[[nodiscard]] Imported import_jsonl(const std::string& text);

[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace dlr::telemetry
