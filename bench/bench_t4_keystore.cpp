// T4: multi-tenant keystore throughput -- requests/sec of a sharded KsServer
// fleet serving a 10k-key keyspace under a Zipf(1.0) request mix, with the
// client-side budget-driven refresh scheduler running throughout.
//
// The bench answers three questions from DESIGN.md §11:
//
//   1. Scale tax: what fraction of the single-key service throughput
//      (bench_t3's workload, rerun here as an in-bench control point so both
//      numbers come from the same host on the same run) survives 10k keys,
//      per-key epoch machines, consistent-hash routing, and segmented
//      journaling? Gate: >= 80%.
//   2. Budget safety under skew: with the hottest keys drawing Zipf-share of
//      the traffic, does the background scheduler keep every key below its
//      leakage budget without starving decryption? (leak.ks.* gauges +
//      refresh counts in the export.)
//   3. Recovery: crash one shard (destroy the process object), restart it
//      from its segmented journal, and compare the fleet digest before and
//      after -- repeated over several restarts, reporting the p50 recovery
//      wall time and requiring zero digest mismatches.
//
// All randomness -- keygen, ciphertexts, the Zipf key sequence, workload
// shuffling -- derives from --seed, so a run replays exactly.
//
//   bench_t4_keystore [--keys N] [--shards S] [--requests R] [--clients C]
//                     [--lambda L] [--zipf Z] [--seed X] [--restarts K]
//                     [--reps R] [--json out.jsonl]
//
// --reshard switches to the live-resharding sweep (DESIGN.md §14): the fleet
// starts with --shards owners plus one empty standby, serves the Zipf mix,
// then propose_map()s the (shards+1)-way map while clients keep decrypting.
// Requests are bucketed pre/during/post cut-over and split by whether their
// key migrates, reporting goodput retention and p50/p99 for the non-migrating
// population (gate: >= 80% goodput during the rebalance) as bench.reshard.*.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "group/mock_group.hpp"
#include "keystore/ks_client.hpp"
#include "keystore/ks_server.hpp"
#include "service/client.hpp"
#include "service/p2_server.hpp"
#include "telemetry/export.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace dlr;
using group::MockGroup;
using Core = schemes::DlrCore<MockGroup>;
using keystore::KeyId;
using keystore::KsFleet;
using keystore::KsServer;
using keystore::ShardInfo;
using keystore::ShardMap;

struct Config {
  int keys = 10000;
  int shards = 2;
  int requests = 20000;  // total decryptions in the timed region (~1.5 s at
                         // mock-group speeds; sub-second windows are noise)
  int clients = 4;
  std::size_t lambda = 256;
  double zipf = 1.0;
  std::uint64_t seed = 1;
  int restarts = 3;
  /// Interleaved keystore/control repetitions; the headline ratio is
  /// median-vs-median, so slow machine drift between the two measured
  /// phases cancels instead of masquerading as a keystore tax (same
  /// trick as bench_t3 --scrape).
  int reps = 3;
  /// Live-resharding sweep instead of the steady-state throughput run.
  bool reshard = false;
};

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

int int_flag(int argc, char** argv, const char* name, int def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
  return def;
}

double double_flag(int argc, char** argv, const char* name, double def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  return def;
}

std::string make_state_dir(int shard) {
  std::string tmpl = "/tmp/dlr_bench_t4_s" + std::to_string(shard) + "_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) throw std::runtime_error("mkdtemp failed");
  return tmpl;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(p * (v.size() - 1))];
}

struct Fleet {
  MockGroup gg = group::make_mock();
  schemes::DlrParams prm;
  Config cfg;
  std::vector<KeyId> ids;
  std::vector<Core::KeyGenResult> kgs;
  std::vector<std::string> dirs;
  std::vector<std::unique_ptr<KsServer<MockGroup>>> servers;
  std::optional<KsFleet<MockGroup>> fleet;
  double keygen_ms = 0, provision_ms = 0;

  explicit Fleet(Config c) : cfg(c) {
    prm = schemes::DlrParams::derive(gg.scalar_bits(), cfg.lambda);

    // Keygen for every (tenant, key). Timed: it is the bulk-onboarding cost.
    const auto t0 = std::chrono::steady_clock::now();
    crypto::Rng rng(424242 + cfg.seed);
    ids.reserve(cfg.keys);
    kgs.reserve(cfg.keys);
    for (int i = 0; i < cfg.keys; ++i) {
      ids.push_back({"tenant" + std::to_string(i % 97), "key" + std::to_string(i)});
      kgs.push_back(Core::gen(gg, prm, rng));
    }
    const auto t1 = std::chrono::steady_clock::now();
    keygen_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    for (int s = 0; s < cfg.shards; ++s) {
      dirs.push_back(make_state_dir(s));
      servers.push_back(make_server(s, cfg.seed * 100 + s));
      servers.back()->start();
    }
    install_map(1);

    // Bulk provisioning through the deferred-durability path: fsync once per
    // shard at the end instead of once per key.
    const auto t2 = std::chrono::steady_clock::now();
    const ShardMap map = servers[0]->shard_map();
    for (int i = 0; i < cfg.keys; ++i)
      servers[map.owner(ids[i])]->store().put(ids[i], kgs[i].sk2);
    for (auto& s : servers)
      if (auto* j = s->store().journal()) j->flush();
    const auto t3 = std::chrono::steady_clock::now();
    provision_ms = std::chrono::duration<double, std::milli>(t3 - t2).count();

    typename KsFleet<MockGroup>::Options fo;
    fo.refresh_threshold = 0.5;
    fo.scheduler.sweep_interval = std::chrono::milliseconds(20);
    fo.scheduler.max_concurrent = 2;
    fleet.emplace(gg, prm, crypto::Rng(cfg.seed + 7), servers[0]->port(), fo);
    fleet->set_map(servers[0]->shard_map());
    for (int i = 0; i < cfg.keys; ++i)
      fleet->add_key(ids[i], kgs[i].pk, kgs[i].sk1, schemes::P1Mode::Plain);
  }

  [[nodiscard]] std::unique_ptr<KsServer<MockGroup>> make_server(int shard,
                                                                 std::uint64_t seed) {
    typename KsServer<MockGroup>::Options so;
    so.shard_id = static_cast<std::uint32_t>(shard);
    so.workers = 4;
    so.store.state_dir = dirs[static_cast<std::size_t>(shard)];
    so.store.journal.fsync_each = false;  // bulk-load + bench mode
    so.store.budget_bits = 64;
    so.store.leak_per_dec_bits = 1;
    so.store.refresh_threshold = 0.5;
    return std::make_unique<KsServer<MockGroup>>(gg, prm, crypto::Rng(seed), so);
  }

  void install_map(std::uint64_t version) {
    std::vector<ShardInfo> infos;
    for (int s = 0; s < cfg.shards; ++s)
      infos.push_back({static_cast<std::uint32_t>(s), "", servers[s]->port()});
    const ShardMap m(version, std::move(infos));
    for (auto& s : servers) s->set_shard_map(m);
    if (fleet) fleet->set_map(m);
  }

  /// Start an empty shard outside the current map: the rebalance target.
  void add_standby(int shard) {
    dirs.push_back(make_state_dir(shard));
    servers.push_back(make_server(shard, cfg.seed * 100 + shard));
    servers.back()->start();
    servers.back()->set_shard_map(servers[0]->shard_map());
  }

  /// Map over the first `nshards` servers (which may exceed cfg.shards once
  /// the standby has joined).
  [[nodiscard]] ShardMap map_over(std::uint64_t version, int nshards) const {
    std::vector<ShardInfo> infos;
    for (int s = 0; s < nshards; ++s)
      infos.push_back({static_cast<std::uint32_t>(s), "", servers[s]->port()});
    return ShardMap(version, std::move(infos));
  }

  ~Fleet() {
    if (fleet) fleet->close();
    for (auto& s : servers)
      if (s) s->stop();
  }
};

/// The timed Zipf workload: `clients` threads, each with its own seeded Zipf
/// stream over the keyspace and a pre-encrypted, seed-shuffled request list.
double run_workload(Fleet& fx, int requests, std::atomic<int>* wrong) {
  const Config& cfg = fx.cfg;
  const int per_client = (requests + cfg.clients - 1) / cfg.clients;

  struct Req {
    std::size_t key;
    MockGroup::GT m;
    Core::Ciphertext ct;
  };
  std::vector<std::vector<Req>> work(cfg.clients);
  for (int c = 0; c < cfg.clients; ++c) {
    bench::Zipf zipf(fx.ids.size(), cfg.zipf, cfg.seed * 1000 + c);
    crypto::Rng rng(5000 + cfg.seed * 10 + c);
    work[c].reserve(per_client);
    for (int i = 0; i < per_client; ++i) {
      Req r;
      r.key = zipf.next();
      r.m = fx.gg.gt_random(rng);
      r.ct = Core::enc(fx.gg, fx.kgs[r.key].pk, r.m, rng);
      work[c].push_back(std::move(r));
    }
    bench::seeded_shuffle(work[c], cfg.seed + c);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  ts.reserve(cfg.clients);
  for (int c = 0; c < cfg.clients; ++c)
    ts.emplace_back([&, c] {
      for (const auto& r : work[c]) {
        const auto out = fx.fleet->decrypt(fx.ids[r.key], r.ct);
        if (!fx.gg.gt_eq(out, r.m) && wrong) wrong->fetch_add(1);
      }
    });
  for (auto& t : ts) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(per_client) * cfg.clients / secs;
}

/// In-bench single-key control: bench_t3's full-load shape (P2Server, one
/// key, per-client connections) under the same --requests/--clients/--seed.
double run_single_key_control(const Config& cfg) {
  MockGroup gg = group::make_mock();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), cfg.lambda);
  crypto::Rng rng(424242 + cfg.seed);
  auto kg = Core::gen(gg, prm, rng);
  auto p1 = std::make_shared<service::P1Runtime<MockGroup>>(
      gg, prm, kg.pk, kg.sk1, schemes::P1Mode::Plain, crypto::Rng(cfg.seed * 2 + 1));

  typename service::P2Server<MockGroup>::Options sopt;
  sopt.workers = 4;
  service::P2Server<MockGroup> server(gg, prm, kg.sk2, crypto::Rng(cfg.seed * 2 + 2),
                                      sopt);
  server.start();

  const int per_client = (cfg.requests + cfg.clients - 1) / cfg.clients;
  crypto::Rng crng(5000 + cfg.seed);
  std::vector<Core::Ciphertext> cts;
  cts.reserve(per_client);
  for (int i = 0; i < per_client; ++i)
    cts.push_back(Core::enc(gg, kg.pk, gg.gt_random(crng), crng));
  bench::seeded_shuffle(cts, cfg.seed);

  std::vector<std::unique_ptr<service::DecryptionClient<MockGroup>>> conns;
  for (int c = 0; c < cfg.clients; ++c)
    conns.push_back(
        std::make_unique<service::DecryptionClient<MockGroup>>(p1, server.port()));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (int c = 0; c < cfg.clients; ++c)
    ts.emplace_back([&, c] {
      for (const auto& ct : cts) bench::sink(conns[static_cast<std::size_t>(c)]->decrypt(ct));
    });
  for (auto& t : ts) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  for (auto& c : conns) c->close();
  server.stop();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(per_client) * cfg.clients / secs;
}

struct RestartStats {
  std::vector<double> recovery_ms;
  int digest_mismatches = 0;
  std::size_t keys_recovered = 0;
};

/// Crash shard 0 repeatedly: digest -> destroy -> reconstruct from its
/// journal directory (timed) -> digest check -> remap -> decrypt smoke.
RestartStats run_restarts(Fleet& fx) {
  RestartStats st;
  crypto::Rng rng(31337 + fx.cfg.seed);
  for (int r = 0; r < fx.cfg.restarts; ++r) {
    const Bytes before = fx.servers[0]->store().digest_all();
    const std::size_t n = fx.servers[0]->store().size();
    fx.servers[0]->stop();
    fx.servers[0].reset();

    const auto t0 = std::chrono::steady_clock::now();
    fx.servers[0] = fx.make_server(0, /*seed=*/999999 + r);  // decoy rng
    fx.servers[0]->start();
    const auto t1 = std::chrono::steady_clock::now();
    st.recovery_ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());

    if (fx.servers[0]->store().digest_all() != before ||
        fx.servers[0]->store().size() != n)
      ++st.digest_mismatches;
    st.keys_recovered = fx.servers[0]->store().size();

    fx.install_map(2 + static_cast<std::uint64_t>(r));  // new port, new version

    // Smoke: the restarted shard serves one of its own keys.
    const ShardMap map = fx.servers[0]->shard_map();
    for (std::size_t i = 0; i < fx.ids.size(); ++i) {
      if (map.owner(fx.ids[i]) != 0) continue;
      const auto m = fx.gg.gt_random(rng);
      const auto c = Core::enc(fx.gg, fx.kgs[i].pk, m, rng);
      if (!fx.gg.gt_eq(fx.fleet->decrypt(fx.ids[i], c), m)) ++st.digest_mismatches;
      break;
    }
  }
  return st;
}

// --- --reshard: availability while the keyspace rebalances 2 -> 3 ----------

/// One timed decrypt, tagged with the phase it started in (0 pre, 1 during,
/// 2 post) and whether its key migrates under the proposed map.
struct ReshardSample {
  int phase;
  bool migrating;
  double lat_us;
};

int reshard_main(Config cfg, int argc, char** argv) {
  cfg.clients = std::max(2, cfg.clients);  // one client per population, minimum
  Fleet fx(cfg);
  const int nshards_after = cfg.shards + 1;
  fx.add_standby(cfg.shards);

  const ShardMap before_map = fx.servers[0]->shard_map();
  const ShardMap after_map = fx.map_over(before_map.version() + 1, nshards_after);

  // Which keys move under the proposed map? Decided by consistent hashing,
  // so client threads can tag samples without asking the servers.
  std::vector<char> migrates(fx.ids.size(), 0);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < fx.ids.size(); ++i)
    if (before_map.owner(fx.ids[i]) != after_map.owner(fx.ids[i])) {
      migrates[i] = 1;
      ++moved;
    }

  std::printf(
      "backend=mock  lambda=%zu  keys=%d  shards=%d->%d  clients=%d  zipf=%.2f  "
      "seed=%llu  moving=%zu\n\n",
      cfg.lambda, cfg.keys, cfg.shards, nshards_after, cfg.clients, cfg.zipf,
      static_cast<unsigned long long>(cfg.seed), moved);

  // Per-client pre-encrypted Zipf pools, cycled for as long as the phases
  // run. Clients are split between the two populations (half on keys that
  // stay put, half on keys that move) so that a migrating key parked in its
  // Draining window cannot head-of-line-block the non-migrating measurement
  // inside a shared closed loop -- the availability question is about the
  // servers, not about this harness's thread budget.
  std::vector<std::size_t> stay_idx, move_idx;
  for (std::size_t i = 0; i < fx.ids.size(); ++i)
    (migrates[i] ? move_idx : stay_idx).push_back(i);
  if (stay_idx.empty() || move_idx.empty()) {
    std::fprintf(stderr, "reshard: degenerate split (%zu stay / %zu move)\n",
                 stay_idx.size(), move_idx.size());
    return 1;
  }
  const int stay_clients = std::max(1, cfg.clients / 2);

  struct Req {
    std::size_t key;
    MockGroup::GT m;
    Core::Ciphertext ct;
  };
  const int per_client = std::max(64, (cfg.requests + cfg.clients - 1) / cfg.clients);
  std::vector<std::vector<Req>> work(cfg.clients);
  for (int c = 0; c < cfg.clients; ++c) {
    const auto& keys_of = c < stay_clients ? stay_idx : move_idx;
    bench::Zipf zipf(keys_of.size(), cfg.zipf, cfg.seed * 1000 + c);
    crypto::Rng rng(5000 + cfg.seed * 10 + c);
    work[c].reserve(per_client);
    for (int i = 0; i < per_client; ++i) {
      Req r;
      r.key = keys_of[zipf.next()];
      r.m = fx.gg.gt_random(rng);
      r.ct = Core::enc(fx.gg, fx.kgs[r.key].pk, r.m, rng);
      work[c].push_back(std::move(r));
    }
    bench::seeded_shuffle(work[c], cfg.seed + c);
  }

  fx.fleet->start_scheduler();

  // Phase machine: 0 = steady state, 1 = rebalance in flight, 2 = settled,
  // 3 = stop. Clients tag each request with the phase it started in; the
  // driver thread advances the phase around propose_map() and settle.
  std::atomic<int> phase{0};
  std::atomic<int> errors{0};
  std::vector<std::vector<ReshardSample>> samples(cfg.clients);
  std::vector<std::thread> ts;
  ts.reserve(cfg.clients);
  for (int c = 0; c < cfg.clients; ++c)
    ts.emplace_back([&, c] {
      auto& out = samples[static_cast<std::size_t>(c)];
      out.reserve(65536);
      const auto& pool = work[static_cast<std::size_t>(c)];
      std::size_t i = 0;
      while (true) {
        const int ph = phase.load(std::memory_order_relaxed);
        if (ph >= 3) break;
        const auto& r = pool[i++ % pool.size()];
        const auto t0 = std::chrono::steady_clock::now();
        bool ok = true;
        try {
          ok = fx.gg.gt_eq(fx.fleet->decrypt(fx.ids[r.key], r.ct), r.m);
        } catch (const std::exception&) {
          ok = false;
        }
        const auto t1 = std::chrono::steady_clock::now();
        if (!ok) errors.fetch_add(1);
        out.push_back({ph, migrates[r.key] != 0,
                       std::chrono::duration<double, std::micro>(t1 - t0).count()});
      }
    });

  const auto warm = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(700));

  const auto t_prop = std::chrono::steady_clock::now();
  phase.store(1);
  for (auto& s : fx.servers) (void)s->propose_map(after_map);

  auto settled = [&fx] {
    for (auto& s : fx.servers)
      if (s->mig_halted() || !s->mig_idle() || s->reshard_window_open()) return false;
    return true;
  };
  bool did_settle = false;
  for (int i = 0; i < 120000 / 5; ++i) {
    if ((did_settle = settled())) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto t_settle = std::chrono::steady_clock::now();
  phase.store(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  phase.store(3);
  for (auto& t : ts) t.join();
  fx.fleet->stop_scheduler();

  const double pre_secs = std::chrono::duration<double>(t_prop - warm).count();
  const double mig_secs = std::chrono::duration<double>(t_settle - t_prop).count();

  // Conservation: every moving key handed over exactly once.
  std::uint64_t mig_out = 0, mig_in = 0;
  for (auto& s : fx.servers) {
    mig_out += s->migrated_out();
    mig_in += s->migrated_in();
  }

  // Bucket the samples.
  std::vector<double> pre_lat, dur_stay_lat, dur_move_lat, post_lat;
  std::size_t pre_stay = 0, dur_stay = 0, dur_move = 0, post_n = 0;
  for (const auto& per : samples)
    for (const auto& s : per) {
      switch (s.phase) {
        case 0:
          pre_lat.push_back(s.lat_us);
          if (!s.migrating) ++pre_stay;
          break;
        case 1:
          (s.migrating ? dur_move_lat : dur_stay_lat).push_back(s.lat_us);
          (s.migrating ? ++dur_move : ++dur_stay);
          break;
        default:
          post_lat.push_back(s.lat_us);
          ++post_n;
          break;
      }
    }

  const double pre_stay_rps = pre_secs > 0 ? static_cast<double>(pre_stay) / pre_secs : 0;
  const double dur_stay_rps = mig_secs > 0 ? static_cast<double>(dur_stay) / mig_secs : 0;
  const double dur_move_rps = mig_secs > 0 ? static_cast<double>(dur_move) / mig_secs : 0;
  const double post_rps =
      post_n > 0 ? static_cast<double>(post_n) /
                       std::chrono::duration<double>(std::chrono::milliseconds(400)).count()
                 : 0;
  const double goodput_pct =
      pre_stay_rps > 0 ? dur_stay_rps / pre_stay_rps * 100.0 : 0;

  const bool conserved = did_settle && mig_out == moved && mig_in == moved;

  auto& reg = telemetry::Registry::global();
  const telemetry::Labels tag{{"keys", std::to_string(cfg.keys)},
                              {"shards", std::to_string(cfg.shards)}};
  reg.gauge("bench.reshard.moved_keys", tag).set(static_cast<double>(moved));
  reg.gauge("bench.reshard.migration_ms", tag).set(mig_secs * 1e3);
  reg.gauge("bench.reshard.pre_nonmig_rps", tag).set(pre_stay_rps);
  reg.gauge("bench.reshard.during_nonmig_rps", tag).set(dur_stay_rps);
  reg.gauge("bench.reshard.during_mig_rps", tag).set(dur_move_rps);
  reg.gauge("bench.reshard.post_rps", tag).set(post_rps);
  reg.gauge("bench.reshard.goodput_nonmig_pct", tag).set(goodput_pct);
  reg.gauge("bench.reshard.p50_pre_us", tag).set(percentile(pre_lat, 0.50));
  reg.gauge("bench.reshard.p99_pre_us", tag).set(percentile(pre_lat, 0.99));
  reg.gauge("bench.reshard.p50_during_nonmig_us", tag).set(percentile(dur_stay_lat, 0.50));
  reg.gauge("bench.reshard.p99_during_nonmig_us", tag).set(percentile(dur_stay_lat, 0.99));
  reg.gauge("bench.reshard.p99_during_mig_us", tag).set(percentile(dur_move_lat, 0.99));
  reg.gauge("bench.reshard.p99_post_us", tag).set(percentile(post_lat, 0.99));
  reg.gauge("bench.reshard.errors", tag).set(static_cast<double>(errors.load()));
  reg.gauge("bench.reshard.migrated_out", tag).set(static_cast<double>(mig_out));
  reg.gauge("bench.reshard.migrated_in", tag).set(static_cast<double>(mig_in));

  bench::Table table({"metric", "value"});
  table.row({"keyspace (keys / shards before -> after)",
             std::to_string(cfg.keys) + " / " + std::to_string(cfg.shards) + " -> " +
                 std::to_string(nshards_after)});
  table.row({"keys migrated (expected / out / in)",
             std::to_string(moved) + " / " + std::to_string(mig_out) + " / " +
                 std::to_string(mig_in)});
  table.row({"rebalance wall time (ms)", bench::fmt(mig_secs * 1e3, 1)});
  table.row({"req/s non-migrating (pre)", bench::fmt(pre_stay_rps, 1)});
  table.row({"req/s non-migrating (during)", bench::fmt(dur_stay_rps, 1)});
  table.row({"req/s migrating (during)", bench::fmt(dur_move_rps, 1)});
  table.row({"req/s (post, settled)", bench::fmt(post_rps, 1)});
  table.row({"non-migrating goodput retained (%)", bench::fmt(goodput_pct, 1)});
  table.row({"p50/p99 pre (us)", bench::fmt(percentile(pre_lat, 0.50), 0) + " / " +
                                     bench::fmt(percentile(pre_lat, 0.99), 0)});
  table.row({"p50/p99 during, non-migrating (us)",
             bench::fmt(percentile(dur_stay_lat, 0.50), 0) + " / " +
                 bench::fmt(percentile(dur_stay_lat, 0.99), 0)});
  table.row({"p99 during, migrating (us)", bench::fmt(percentile(dur_move_lat, 0.99), 0)});
  table.row({"p99 post (us)", bench::fmt(percentile(post_lat, 0.99), 0)});
  table.row({"decrypt errors / wrong plaintexts", std::to_string(errors.load())});
  table.row({"settled / conserved", std::string(did_settle ? "yes" : "NO") + " / " +
                                        (conserved ? "yes" : "NO")});
  table.print();

  telemetry::Tracer::global().reset();
  bench::export_json_if_requested(argc, argv, "bench_t4_keystore");
  return errors.load() == 0 && conserved ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.keys = int_flag(argc, argv, "--keys", cfg.keys);
  cfg.shards = std::max(1, int_flag(argc, argv, "--shards", cfg.shards));
  cfg.requests = int_flag(argc, argv, "--requests", cfg.requests);
  cfg.clients = std::max(1, int_flag(argc, argv, "--clients", cfg.clients));
  cfg.lambda = static_cast<std::size_t>(
      int_flag(argc, argv, "--lambda", static_cast<int>(cfg.lambda)));
  cfg.zipf = double_flag(argc, argv, "--zipf", cfg.zipf);
  cfg.seed = bench::u64_flag(argc, argv, "--seed", cfg.seed);
  cfg.restarts = int_flag(argc, argv, "--restarts", cfg.restarts);
  cfg.reps = std::max(1, int_flag(argc, argv, "--reps", cfg.reps));
  cfg.reshard = has_flag(argc, argv, "--reshard");

  if (cfg.reshard) {
    bench::banner("T4: live resharding sweep (availability during 2->3 rebalance)",
                  "migration protocol of DESIGN.md §14");
    return reshard_main(cfg, argc, argv);
  }

  bench::banner("T4: multi-tenant keystore throughput (Zipf over sharded fleet)",
                "keystore deployment of Construction 5.3, DESIGN.md §11");

  Fleet fx(cfg);
  std::printf(
      "backend=mock  lambda=%zu  ell=%zu  keys=%d  shards=%d  clients=%d  zipf=%.2f  "
      "seed=%llu\n\n",
      cfg.lambda, fx.prm.ell, cfg.keys, cfg.shards, cfg.clients, cfg.zipf,
      static_cast<unsigned long long>(cfg.seed));

  // Interleaved reps: keystore Zipf workload (scheduler live) alternating
  // with the single-key control, median of each side.
  fx.fleet->start_scheduler();
  std::atomic<int> wrong{0};
  std::vector<double> ks_samples, single_samples;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    ks_samples.push_back(run_workload(fx, cfg.requests, &wrong));
    single_samples.push_back(run_single_key_control(cfg));
  }
  const double ks_rps = percentile(ks_samples, 0.50);
  const double single_rps = percentile(single_samples, 0.50);
  const double vs_single = single_rps > 0 ? ks_rps / single_rps * 100.0 : 0;

  // Settle: keys that crossed the threshold in the workload's final
  // milliseconds still deserve a sweep before the budget audit (bounded --
  // a scheduler that cannot drain the backlog shows up as over_threshold).
  auto backlog = [&fx] {
    std::size_t n = 0;
    for (auto& s : fx.servers) n += s->store().candidates().size();
    return n;
  };
  for (int i = 0; i < 50 && backlog() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  fx.fleet->stop_scheduler();
  const std::uint64_t refreshes = fx.fleet->scheduler()->refreshes();

  // Final budget audit: candidates() publishes leak.ks.max_spent_frac.
  const std::size_t over_threshold = backlog();

  const RestartStats rs = run_restarts(fx);
  const double rec_p50 = percentile(rs.recovery_ms, 0.50);
  const double rec_max = rs.recovery_ms.empty()
                             ? 0
                             : *std::max_element(rs.recovery_ms.begin(),
                                                 rs.recovery_ms.end());

  std::uint64_t segments = 0, compactions = 0;
  for (auto& s : fx.servers)
    if (auto* j = s->store().journal()) {
      segments += j->segment_count();
      compactions += j->compactions();
    }

  auto& reg = telemetry::Registry::global();
  const telemetry::Labels tag{{"keys", std::to_string(cfg.keys)},
                              {"shards", std::to_string(cfg.shards)}};
  reg.gauge("bench.ks.rps", tag).set(ks_rps);
  reg.gauge("bench.ks.single_key_rps", tag).set(single_rps);
  reg.gauge("bench.ks.vs_single_key_pct", tag).set(vs_single);
  reg.gauge("bench.ks.keygen_ms", tag).set(fx.keygen_ms);
  reg.gauge("bench.ks.provision_ms", tag).set(fx.provision_ms);
  reg.gauge("bench.ks.refreshes", tag).set(static_cast<double>(refreshes));
  reg.gauge("bench.ks.over_threshold_final", tag).set(static_cast<double>(over_threshold));
  reg.gauge("bench.ks.wrong", tag).set(static_cast<double>(wrong.load()));
  reg.gauge("bench.ks.recovery.p50_ms", tag).set(rec_p50);
  reg.gauge("bench.ks.recovery.max_ms", tag).set(rec_max);
  reg.gauge("bench.ks.recovery.digest_mismatches", tag)
      .set(static_cast<double>(rs.digest_mismatches));
  reg.gauge("bench.ks.recovery.keys", tag).set(static_cast<double>(rs.keys_recovered));
  reg.gauge("bench.ks.journal.segments", tag).set(static_cast<double>(segments));
  reg.gauge("bench.ks.journal.compactions", tag).set(static_cast<double>(compactions));

  bench::Table table({"metric", "value"});
  table.row({"keyspace (keys / shards)",
             std::to_string(cfg.keys) + " / " + std::to_string(cfg.shards)});
  table.row({"keygen (ms, all keys)", bench::fmt(fx.keygen_ms, 1)});
  table.row({"bulk provision (ms, all keys)", bench::fmt(fx.provision_ms, 1)});
  table.row({"req/s (Zipf over keystore)", bench::fmt(ks_rps, 1)});
  table.row({"req/s (single-key control)", bench::fmt(single_rps, 1)});
  table.row({"keystore vs single-key (%)", bench::fmt(vs_single, 1)});
  table.row({"wrong plaintexts", std::to_string(wrong.load())});
  table.row({"background refreshes", std::to_string(refreshes)});
  table.row({"keys over budget threshold (final)", std::to_string(over_threshold)});
  table.row({"shard restarts / digest mismatches",
             std::to_string(cfg.restarts) + " / " + std::to_string(rs.digest_mismatches)});
  table.row({"recovery p50 / max (ms)",
             bench::fmt(rec_p50, 1) + " / " + bench::fmt(rec_max, 1)});
  table.row({"journal segments / compactions",
             std::to_string(segments) + " / " + std::to_string(compactions)});
  table.print();

  // The committed baseline is the bench.ks.* gauge set; a 20k-request run
  // accumulates tens of thousands of protocol spans that would swamp it.
  telemetry::Tracer::global().reset();
  bench::export_json_if_requested(argc, argv, "bench_t4_keystore");
  return wrong.load() == 0 && rs.digest_mismatches == 0 ? 0 : 1;
}
