# Empty dependencies file for cca2_game_test.
# This may be replaced when dependencies are built.
