#include "keystore/shard_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace dlr::keystore {

namespace {
// Stride between a shard's vnode seeds. Any odd-ish large constant works;
// what matters is that (shard, vnode) pairs never collide across shards for
// realistic shard counts, and mix64 scatters them uniformly.
constexpr std::uint64_t kVnodeStride = 0x9e3779b97f4a7c15ULL;
}  // namespace

ShardMap::ShardMap(std::uint64_t version, std::vector<ShardInfo> shards)
    : version_(version), shards_(std::move(shards)) {
  build_ring();
}

void ShardMap::build_ring() {
  ring_.clear();
  ring_.reserve(shards_.size() * kVirtualNodes);
  for (const auto& s : shards_)
    for (std::uint32_t v = 0; v < kVirtualNodes; ++v)
      ring_.emplace_back(mix64(s.id * kVnodeStride + v), s.id);
  std::sort(ring_.begin(), ring_.end());
}

std::uint32_t ShardMap::owner_of_hash(std::uint64_t h) const {
  if (ring_.empty()) return 0;
  auto it = std::upper_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, UINT32_MAX));
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::uint32_t ShardMap::owner(const KeyId& id) const {
  return owner_of_hash(key_hash(id));
}

const ShardInfo* ShardMap::shard(std::uint32_t id) const {
  for (const auto& s : shards_)
    if (s.id == id) return &s;
  return nullptr;
}

Bytes ShardMap::encode() const {
  ByteWriter w;
  w.u64(version_);
  w.u32(static_cast<std::uint32_t>(shards_.size()));
  for (const auto& s : shards_) {
    w.u32(s.id);
    w.str(s.host);
    w.u32(s.port);
  }
  return w.take();
}

ShardMap ShardMap::decode(const Bytes& body) {
  ByteReader r(body);
  const std::uint64_t version = r.u64();
  const std::uint32_t n = r.u32();
  if (n > 4096) throw std::invalid_argument("shard map: implausible shard count");
  std::vector<ShardInfo> shards;
  shards.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ShardInfo s;
    s.id = r.u32();
    s.host = r.str();
    s.port = static_cast<std::uint16_t>(r.u32());
    shards.push_back(std::move(s));
  }
  if (!r.done()) throw std::invalid_argument("shard map: trailing bytes");
  return {version, std::move(shards)};
}

}  // namespace dlr::keystore
