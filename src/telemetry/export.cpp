#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace dlr::telemetry {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Position just past `"key":` in `line`, or npos.
std::size_t after_key(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

bool parse_string_at(const std::string& s, std::size_t pos, std::string& out,
                     std::size_t* end = nullptr) {
  if (pos >= s.size() || s[pos] != '"') return false;
  out.clear();
  for (std::size_t i = pos + 1; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\\' && i + 1 < s.size()) {
      const char n = s[++i];
      switch (n) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: out += n; break;  // \" \\ \/ and anything else: literal
      }
    } else if (c == '"') {
      if (end) *end = i + 1;
      return true;
    } else {
      out += c;
    }
  }
  return false;
}

bool field_str(const std::string& line, const std::string& key, std::string& out) {
  const auto pos = after_key(line, key);
  return pos != std::string::npos && parse_string_at(line, pos, out);
}

bool field_num(const std::string& line, const std::string& key, double& out) {
  const auto pos = after_key(line, key);
  if (pos == std::string::npos) return false;
  out = std::strtod(line.c_str() + pos, nullptr);
  return true;
}

/// Parse the flat numeric object `{"k":1,"k2":2.5}` starting at `pos`.
void parse_attrs_at(const std::string& s, std::size_t pos,
                    std::vector<std::pair<std::string, double>>& out) {
  if (pos >= s.size() || s[pos] != '{') return;
  std::size_t i = pos + 1;
  while (i < s.size() && s[i] != '}') {
    std::string key;
    std::size_t after = 0;
    if (!parse_string_at(s, i, key, &after)) break;
    i = after;
    if (i >= s.size() || s[i] != ':') break;
    char* num_end = nullptr;
    const double v = std::strtod(s.c_str() + i + 1, &num_end);
    out.emplace_back(std::move(key), v);
    i = static_cast<std::size_t>(num_end - s.c_str());
    if (i < s.size() && s[i] == ',') ++i;
  }
}

void append_attrs_json(std::string& out, const std::vector<std::pair<std::string, double>>& attrs) {
  out += "{";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    out += json_escape(attrs[i].first);
    out += "\":";
    out += fmt_double(attrs[i].second);
  }
  out += "}";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_text(const Snapshot& snap, const std::vector<Span>& spans) {
  std::string out = "== telemetry summary ==\n";
  std::size_t width = 0;
  for (const auto& c : snap.counters) width = std::max(width, c.name.size());
  for (const auto& g : snap.gauges) width = std::max(width, g.name.size());

  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& c : snap.counters)
      out += "  " + c.name + std::string(width - c.name.size() + 2, ' ') + fmt_u64(c.value) +
             "\n";
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& g : snap.gauges)
      out += "  " + g.name + std::string(width - g.name.size() + 2, ' ') +
             fmt_double(g.value) + "\n";
  }
  if (!snap.histograms.empty()) {
    out += "histograms:\n";
    for (const auto& h : snap.histograms)
      out += "  " + h.name + "  count=" + fmt_u64(h.count) + " sum=" + fmt_double(h.sum) +
             "\n";
  }

  if (!spans.empty()) {
    out += "spans (completion order, indent = nesting):\n";
    std::unordered_map<std::uint64_t, const Span*> by_id;
    for (const auto& s : spans) by_id[s.id] = &s;
    const std::size_t cap = 200;
    for (std::size_t i = 0; i < spans.size() && i < cap; ++i) {
      const Span& s = spans[i];
      std::size_t depth = 0;
      for (auto it = by_id.find(s.parent); it != by_id.end();
           it = by_id.find(it->second->parent))
        ++depth;
      out += "  " + std::string(2 * depth, ' ') + s.label + "  " +
             fmt_double(s.duration_ms()) + " ms";
      for (const auto& [k, v] : s.attrs) out += "  " + k + "=" + fmt_double(v);
      out += "\n";
    }
    if (spans.size() > cap)
      out += "  ... " + fmt_u64(spans.size() - cap) + " more spans elided\n";
  }
  return out;
}

std::string to_jsonl(const ExportMeta& meta, const Snapshot& snap,
                     const std::vector<Span>& spans) {
  std::string out;
  out += "{\"type\":\"meta\",\"run\":\"" + json_escape(meta.run) + "\",\"telemetry\":\"" +
         (DLR_TELEMETRY_ENABLED ? "on" : "off") + "\"}\n";
  for (const auto& c : snap.counters)
    out += "{\"type\":\"counter\",\"name\":\"" + json_escape(c.name) +
           "\",\"value\":" + fmt_u64(c.value) + "}\n";
  for (const auto& g : snap.gauges)
    out += "{\"type\":\"gauge\",\"name\":\"" + json_escape(g.name) +
           "\",\"value\":" + fmt_double(g.value) + "}\n";
  for (const auto& h : snap.histograms) {
    out += "{\"type\":\"histogram\",\"name\":\"" + json_escape(h.name) +
           "\",\"count\":" + fmt_u64(h.count) + ",\"sum\":" + fmt_double(h.sum) +
           ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ",";
      out += fmt_double(h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ",";
      out += fmt_u64(h.buckets[i]);
    }
    out += "]}\n";
  }
  for (const auto& s : spans) {
    out += "{\"type\":\"span\",\"id\":" + fmt_u64(s.id) + ",\"parent\":" + fmt_u64(s.parent) +
           ",\"label\":\"" + json_escape(s.label) + "\",\"start_ns\":" +
           fmt_u64(static_cast<std::uint64_t>(s.start_ns)) +
           ",\"dur_ms\":" + fmt_double(s.duration_ms()) + ",\"attrs\":";
    append_attrs_json(out, s.attrs);
    out += "}\n";
  }
  return out;
}

std::string to_chrome_trace(const std::vector<Span>& spans) {
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i) out += ",";
    out += "{\"name\":\"" + json_escape(s.label) + "\",\"ph\":\"X\",\"pid\":1,\"tid\":1" +
           ",\"ts\":" + fmt_double(static_cast<double>(s.start_ns) / 1e3) +
           ",\"dur\":" + fmt_double(static_cast<double>(s.end_ns - s.start_ns) / 1e3) +
           ",\"args\":";
    append_attrs_json(out, s.attrs);
    out += "}";
  }
  out += "]}";
  return out;
}

bool export_global_jsonl(const std::string& path, const std::string& run_label) {
  const std::string body = to_jsonl(ExportMeta{run_label}, Registry::global().snapshot(),
                                    Tracer::global().spans());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

Imported import_jsonl(const std::string& text) {
  Imported out;
  std::size_t start = 0;
  while (start < text.size()) {
    auto nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;

    std::string type;
    if (!field_str(line, "type", type)) continue;
    if (type == "meta") {
      field_str(line, "run", out.run);
    } else if (type == "counter") {
      std::string name;
      double v = 0;
      if (field_str(line, "name", name) && field_num(line, "value", v))
        out.counters[name] = static_cast<std::uint64_t>(v);
    } else if (type == "gauge") {
      std::string name;
      double v = 0;
      if (field_str(line, "name", name) && field_num(line, "value", v)) out.gauges[name] = v;
    } else if (type == "histogram") {
      ++out.histograms;
    } else if (type == "span") {
      Span s;
      double num = 0;
      if (field_num(line, "id", num)) s.id = static_cast<std::uint64_t>(num);
      if (field_num(line, "parent", num)) s.parent = static_cast<std::uint64_t>(num);
      field_str(line, "label", s.label);
      if (field_num(line, "start_ns", num)) s.start_ns = static_cast<std::int64_t>(num);
      if (field_num(line, "dur_ms", num))
        s.end_ns = s.start_ns + static_cast<std::int64_t>(num * 1e6);
      const auto apos = after_key(line, "attrs");
      if (apos != std::string::npos) parse_attrs_at(line, apos, s.attrs);
      out.spans.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace dlr::telemetry
