// Admin/observability endpoint (DESIGN.md §10) -- a read-only sidecar server
// on its own port, speaking the same framed wire protocol as the service so
// no second protocol stack exists. One request frame yields one response
// frame on the same session:
//
//   adm.metrics  (Data, empty body) -> adm.metrics.ok  body = Prometheus text
//                                      exposition of the global registry
//   adm.health   (Data, empty body) -> adm.health.ok   body = JSON status
//                                      document (uptime, telemetry mode, one
//                                      section per registered component)
//   adm.events   (Data, empty body) -> adm.events.ok   body = structured
//                                      event log as JSONL (newest window)
//   adm.spans    (Data, empty body) -> adm.spans.ok    body = finished spans
//                                      as JSONL (same schema as --json)
//   anything else                   -> adm.err (Error frame)
//
// The endpoint is strictly read-only and lock-cheap: a scrape snapshots the
// registry via stable metric pointers (never blocking the hot path for the
// duration of the copy) and serializes outside all locks. Components expose
// state by registering a named health provider -- P2Server registers "p2"
// (epoch, drain state, queue depth, journal path), P1Runtime registers "p1".
//
// AdminClient::fetch is the curl-equivalent one-shot used by tests, the CI
// observability probe, and bench --scrape polling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "transport/endpoint.hpp"

namespace dlr::service {

inline constexpr char kAdmMetrics[] = "adm.metrics";
inline constexpr char kAdmMetricsOk[] = "adm.metrics.ok";
inline constexpr char kAdmHealth[] = "adm.health";
inline constexpr char kAdmHealthOk[] = "adm.health.ok";
inline constexpr char kAdmEvents[] = "adm.events";
inline constexpr char kAdmEventsOk[] = "adm.events.ok";
inline constexpr char kAdmSpans[] = "adm.spans";
inline constexpr char kAdmSpansOk[] = "adm.spans.ok";
inline constexpr char kAdmErr[] = "adm.err";

class AdminServer {
 public:
  /// Ordered key/value pairs contributing one named section to the health
  /// document. Providers are called on the scrape thread and must be
  /// thread-safe and non-blocking (read atomics, take only short locks).
  using HealthProvider =
      std::function<std::vector<std::pair<std::string, std::string>>()>;

  struct Options {
    transport::TransportOptions transport{};
  };

  AdminServer() : AdminServer(Options{}) {}
  explicit AdminServer(Options opt) : opt_(std::move(opt)) {}
  ~AdminServer() { stop(); }
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Bind a loopback listener (port 0 = ephemeral) and start serving.
  void start(std::uint16_t port = 0);
  /// Close the listener, hang up connections, join all threads. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] std::uint64_t scrapes() const;

  void register_health(const std::string& section, HealthProvider provider);

  /// The health JSON document (exposed for tests; adm.health serves this).
  [[nodiscard]] std::string health_json() const;

 private:
  struct ConnState {
    std::shared_ptr<transport::FramedConn> conn;
    std::thread reader;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve(const std::shared_ptr<transport::FramedConn>& conn);
  [[nodiscard]] std::string respond(const std::string& label, std::string& ok_label) const;

  Options opt_;
  transport::Listener listener_;
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<ConnState>> conns_;
  mutable std::mutex health_mu_;
  std::vector<std::pair<std::string, HealthProvider>> providers_;
  std::chrono::steady_clock::time_point started_at_{};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
};

/// One-shot admin fetch: connect, send `label`, return the response body as
/// text. Throws TransportError on connection trouble and std::runtime_error
/// on an adm.err response.
class AdminClient {
 public:
  [[nodiscard]] static std::string fetch(std::uint16_t port, const std::string& label,
                                         const transport::TransportOptions& opt = {});
};

}  // namespace dlr::service
