// Shared-exponent GT multi-pow over any BilinearGroup.
//
// A decryption batch applies the SAME exponent vector (P2's share s) to many
// independent base rows -- one per in-flight request and coordinate.
// PreparedGtPow front-ends the recode-once hook: on backends with a native
// `prepare_gt_multi_pow` (TateGroup, and decorators that forward it) the
// wNAF-3 recoding of the scalars runs once at construction and every pow()
// call only pays table build + the shared squaring chain; on concept-only
// backends (MockGroup) it degrades to per-call gg.gt_multi_pow, so scheme
// code can use it unconditionally. pow() is bit-identical to
// gg.gt_multi_pow(ts, ss) on every backend.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "group/bilinear.hpp"

namespace dlr::group {

template <class GG>
concept NativePreparedGtMultiPow =
    requires(const GG& gg, std::span<const typename GG::Scalar> ss) {
      gg.prepare_gt_multi_pow(ss);
    };

namespace detail {

struct NoNativeGtMultiPow {};

template <class GG>
struct NativeGtMultiPowType {
  using type = NoNativeGtMultiPow;
};
template <NativePreparedGtMultiPow GG>
struct NativeGtMultiPowType<GG> {
  using type = decltype(std::declval<const GG&>().prepare_gt_multi_pow(
      std::declval<std::span<const typename GG::Scalar>>()));
};

}  // namespace detail

template <BilinearGroup GG>
class PreparedGtPow {
 public:
  using GT = typename GG::GT;
  using Scalar = typename GG::Scalar;

  PreparedGtPow(const GG& gg, std::span<const Scalar> ss) : ss_(ss.begin(), ss.end()) {
    if constexpr (NativePreparedGtMultiPow<GG>)
      native_.emplace(gg.prepare_gt_multi_pow(ss_));
  }

  [[nodiscard]] GT pow(const GG& gg, std::span<const GT> ts) const {
    if constexpr (NativePreparedGtMultiPow<GG>) {
      return native_->pow(ts);
    } else {
      return gg.gt_multi_pow(ts, ss_);
    }
  }

 private:
  std::vector<Scalar> ss_;
  std::optional<typename detail::NativeGtMultiPowType<GG>::type> native_;
};

}  // namespace dlr::group
