# Empty compiler generated dependencies file for fake_game_test.
# This may be replaced when dependencies are built.
