// Secure storage on leaky hardware (paper Sections 1.1 and 4.4): keep a
// long-lived secret (here: a signing seed) on two devices that both leak,
// refreshing everything periodically so no single period's leakage -- nor
// all periods' leakage combined -- reveals the payload.
#include <cstdio>
#include <string>

#include "group/tate_group.hpp"
#include "storage/leaky_store.hpp"

int main() {
  using namespace dlr;
  using GG = group::TateSS256;

  const GG gg = group::make_tate_ss256();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), 64);
  auto store = storage::LeakyStore<GG>::create(gg, prm, schemes::P1Mode::Plain, 99);

  const std::string secret = "root-ca-signing-seed: 9f8e7d6c5b4a39281706f5e4d3c2b1a0";
  store.put(Bytes(secret.begin(), secret.end()));
  std::printf("stored %zu payload bytes; public overhead %zu bytes\n", secret.size(),
              store.overhead_bytes());

  // Simulate a year of daily refresh periods (scaled down to 30 here).
  for (int day = 1; day <= 30; ++day) {
    store.refresh_period();
    if (day % 10 == 0) {
      const auto back = store.get();
      std::printf("day %2d: retrieved %zu bytes -- %s\n", day, back.size(),
                  std::string(back.begin(), back.end()) == secret ? "intact" : "CORRUPTED");
    }
  }

  // What actually sits on the devices changes every period:
  std::printf("\nafter 30 refreshes the devices hold:\n");
  std::printf("  device 1 (public):  re-randomized KEM ciphertext (%zu B) + sealed blob (%zu B)\n",
              schemes::DlrCore<GG>::ciphertext_bytes(gg), store.sealed_blob().size());
  std::printf("  device 1 (secret):  P1 share, %zu bits this period\n",
              store.system().p1().secret_bits(net::Phase::Normal));
  std::printf("  device 2 (secret):  P2 share, %zu bits this period\n",
              store.system().p2().secret_bits(net::Phase::Normal));
  std::printf("none of these values existed 30 periods ago, yet the payload survives.\n");
  return 0;
}
