// Tests for the secure-storage-on-leaky-devices application (Section 4.4):
// put/get round trips, survival across many refresh periods, the
// re-randomization property, and integrity failure detection.
#include <gtest/gtest.h>

#include "group/mock_group.hpp"
#include "group/tate_group.hpp"
#include "storage/leaky_store.hpp"

namespace dlr::storage {
namespace {

using crypto::Rng;
using group::make_mock;
using group::MockGroup;
using schemes::DlrParams;
using schemes::P1Mode;

DlrParams mock_params() {
  auto gg = make_mock();
  return DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

TEST(LeakyStoreTest, PutGetRoundTrip) {
  auto store = LeakyStore<MockGroup>::create(make_mock(), mock_params(), P1Mode::Plain, 2400);
  const Bytes payload{'s', 'e', 'c', 'r', 'e', 't'};
  store.put(payload);
  EXPECT_EQ(store.get(), payload);
  EXPECT_EQ(store.get(), payload);  // repeatable
}

TEST(LeakyStoreTest, EmptyAndLargePayloads) {
  auto store = LeakyStore<MockGroup>::create(make_mock(), mock_params(), P1Mode::Plain, 2401);
  store.put({});
  EXPECT_TRUE(store.get().empty());
  Rng rng(2402);
  const Bytes big = rng.bytes(100000);
  store.put(big);
  EXPECT_EQ(store.get(), big);
}

TEST(LeakyStoreTest, GetWithoutPutThrows) {
  auto store = LeakyStore<MockGroup>::create(make_mock(), mock_params(), P1Mode::Plain, 2403);
  EXPECT_THROW((void)store.get(), std::logic_error);
}

TEST(LeakyStoreTest, SurvivesManyRefreshPeriods) {
  auto store = LeakyStore<MockGroup>::create(make_mock(), mock_params(), P1Mode::Plain, 2404);
  const Bytes payload{'d', 'u', 'r', 'a', 'b', 'l', 'e'};
  store.put(payload);
  for (int t = 0; t < 25; ++t) {
    store.refresh_period();
    ASSERT_EQ(store.get(), payload) << "period " << t;
  }
}

TEST(LeakyStoreTest, CompactModeWorksToo) {
  auto store =
      LeakyStore<MockGroup>::create(make_mock(), mock_params(), P1Mode::Compact, 2405);
  const Bytes payload{'c'};
  store.put(payload);
  for (int t = 0; t < 5; ++t) {
    store.refresh_period();
    ASSERT_EQ(store.get(), payload);
  }
}

TEST(LeakyStoreTest, RefreshReRandomizesEverything) {
  const auto gg = make_mock();
  auto store = LeakyStore<MockGroup>::create(gg, mock_params(), P1Mode::Plain, 2406);
  store.put({'x'});
  const auto kem0 = *store.kem_ciphertext();
  const auto sk2_0 = store.system().p2().share();
  store.refresh_period();
  const auto kem1 = *store.kem_ciphertext();
  // KEM ciphertext changed but still encrypts the same KEM key.
  EXPECT_FALSE(gg.g_eq(kem0.a, kem1.a));
  EXPECT_FALSE(gg.gt_eq(kem0.b, kem1.b));
  // Key shares changed.
  EXPECT_FALSE(store.system().p2().share().s == sk2_0.s);
  // Payload still retrievable.
  EXPECT_EQ(store.get(), Bytes{'x'});
}

TEST(LeakyStoreTest, TamperedBlobDetected) {
  const auto gg = make_mock();
  auto store = LeakyStore<MockGroup>::create(gg, mock_params(), P1Mode::Plain, 2407);
  store.put({'t', 'a', 'g', 'g', 'e', 'd'});
  // Corrupt the sealed blob through the public accessor path by re-putting a
  // manually corrupted copy: simulate bit rot on device 1's public memory.
  auto& mutable_blob = const_cast<Bytes&>(store.sealed_blob());
  mutable_blob[9] ^= 1;
  EXPECT_THROW((void)store.get(), std::runtime_error);
}

TEST(LeakyStoreTest, OverheadIsConstant) {
  const auto gg = make_mock();
  auto store = LeakyStore<MockGroup>::create(gg, mock_params(), P1Mode::Plain, 2408);
  // Overhead independent of payload size (hybrid encryption).
  EXPECT_EQ(store.overhead_bytes(),
            schemes::DlrCore<MockGroup>::ciphertext_bytes(gg) + 16);
}

TEST(LeakyStoreTest, PutOverwritesPreviousPayload) {
  auto store = LeakyStore<MockGroup>::create(make_mock(), mock_params(), P1Mode::Plain, 2410);
  store.put({'o', 'l', 'd'});
  store.refresh_period();
  store.put({'n', 'e', 'w'});
  EXPECT_EQ(store.get(), (Bytes{'n', 'e', 'w'}));
}

TEST(LeakyStoreTest, IndependentStoresDoNotInterfere) {
  auto a = LeakyStore<MockGroup>::create(make_mock(), mock_params(), P1Mode::Plain, 2411);
  auto b = LeakyStore<MockGroup>::create(make_mock(), mock_params(), P1Mode::Plain, 2412);
  a.put({'a'});
  b.put({'b'});
  a.refresh_period();
  EXPECT_EQ(a.get(), Bytes{'a'});
  EXPECT_EQ(b.get(), Bytes{'b'});
}

TEST(LeakyStoreTest, TateBackend) {
  const auto gg = group::make_tate_ss256();
  const auto prm = DlrParams::derive(gg.scalar_bits(), 16);
  auto store = LeakyStore<group::TateSS256>::create(gg, prm, P1Mode::Plain, 2409);
  const Bytes payload{'p', 'q'};
  store.put(payload);
  store.refresh_period();
  EXPECT_EQ(store.get(), payload);
}

}  // namespace
}  // namespace dlr::storage
