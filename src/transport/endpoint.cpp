#include "transport/endpoint.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "telemetry/metrics.hpp"
#include "transport/retry.hpp"

namespace dlr::transport {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(Errc code, const char* op) {
  throw TransportError(code, std::string(op) + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno(Errc::Io, "fcntl(O_NONBLOCK)");
}

/// Wait for `events` on fd. deadline == nullopt waits forever. Throws Timeout
/// when the deadline expires and ConnectionClosed on hangup-with-no-data.
void wait_ready(int fd, short events, const std::optional<Clock::time_point>& deadline) {
  for (;;) {
    int wait_ms = -1;
    if (deadline) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(*deadline - Clock::now());
      if (left.count() <= 0) throw TransportError(Errc::Timeout, "deadline expired");
      wait_ms = static_cast<int>(std::min<long long>(left.count(), 1000 * 3600));
    }
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno(Errc::Io, "poll");
    }
    if (rc == 0) {
      if (deadline) continue;  // re-check deadline at loop top
      continue;
    }
    // POLLHUP/POLLERR still allow a final read to drain buffered bytes; let
    // the caller's read()/write() observe EOF/EPIPE and classify it.
    return;
  }
}

}  // namespace

Socket::Socket(int fd) : fd_(fd) {
  if (fd_ >= 0) set_nonblocking(fd_);
}

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
  }
  return *this;
}

Socket::~Socket() { close(); }

std::pair<Socket, Socket> Socket::pair() {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) throw_errno(Errc::Io, "socketpair");
  return {Socket(sv[0]), Socket(sv[1])};
}

void Socket::send_all(std::span<const std::uint8_t> data, Millis timeout) {
  if (!valid()) throw TransportError(Errc::ConnectionClosed, "send on closed socket");
  const auto deadline = Clock::now() + timeout;
  std::size_t off = 0;
  while (off < data.size()) {
    const auto k =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd_, POLLOUT, deadline);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EPIPE || errno == ECONNRESET))
      throw TransportError(Errc::ConnectionClosed, "peer closed during send");
    throw_errno(Errc::Io, "send");
  }
}

void Socket::recv_exact(std::span<std::uint8_t> out, std::optional<Millis> timeout) {
  if (!valid()) throw TransportError(Errc::ConnectionClosed, "recv on closed socket");
  std::optional<Clock::time_point> deadline;
  if (timeout) deadline = Clock::now() + *timeout;
  std::size_t off = 0;
  while (off < out.size()) {
    const auto k = ::recv(fd_, out.data() + off, out.size() - off, 0);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k == 0) throw TransportError(Errc::ConnectionClosed, "peer closed (EOF)");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(fd_, POLLIN, deadline);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET)
      throw TransportError(Errc::ConnectionClosed, "connection reset");
    throw_errno(Errc::Io, "recv");
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener Listener::loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno(Errc::Io, "socket");
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno(Errc::Io, "bind");
  if (::listen(fd, 64) != 0) throw_errno(Errc::Io, "listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno(Errc::Io, "getsockname");
  Listener l;
  l.sock_ = std::move(sock);
  l.port_ = ntohs(addr.sin_port);
  return l;
}

Socket Listener::accept(Millis timeout) {
  if (!sock_.valid()) throw TransportError(Errc::ConnectionClosed, "accept on closed listener");
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(sock_.fd(), POLLIN, deadline);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EINVAL || errno == EBADF)
      throw TransportError(Errc::ConnectionClosed, "listener shut down");
    throw_errno(Errc::Io, "accept");
  }
}

Socket connect_loopback(std::uint16_t port, const TransportOptions& opt) {
  static telemetry::Counter& retries =
      telemetry::Registry::global().counter("transport.retries");
  RetryPolicy policy;
  policy.max_attempts = opt.connect_retries + 1;
  policy.base = opt.connect_backoff;
  policy.cap = Millis{500};
  policy.jitter = 0.0;  // connect backoff stays deterministic (test seeds)
  RetrySchedule sched(policy);
  std::string last_error = "no attempt made";
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno(Errc::Io, "socket");
    Socket sock(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    // EINTR on a non-blocking connect means the attempt proceeds
    // asynchronously (POSIX) -- treat it exactly like EINPROGRESS.
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0 ||
        errno == EINPROGRESS || errno == EINTR) {
      bool ready = true;
      try {
        wait_ready(fd, POLLOUT, Clock::now() + opt.send_timeout);
      } catch (const TransportError& e) {
        last_error = e.what();
        ready = false;
      }
      if (ready) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err == 0) {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          return sock;
        }
        last_error = std::strerror(err);
      }
    } else {
      last_error = std::strerror(errno);
    }
    const auto delay = sched.next();
    if (!delay)
      throw TransportError(Errc::RetriesExhausted,
                           "connect 127.0.0.1:" + std::to_string(port) + " failed after " +
                               std::to_string(opt.connect_retries + 1) +
                               " attempts: " + last_error);
    retries.add();
    std::this_thread::sleep_for(*delay);
  }
}

void FramedConn::send(const Frame& f) {
  const Bytes wire = encode_frame(f);
  static telemetry::Counter& c_frames =
      telemetry::Registry::global().counter("transport.frames.sent");
  static telemetry::Counter& c_bytes =
      telemetry::Registry::global().counter("transport.bytes.sent");
  std::lock_guard lock(send_mu_);
  sock_.send_all(wire, opt_.send_timeout);
  c_frames.add();
  c_bytes.add(wire.size());
}

void FramedConn::send_many(std::span<const Frame> fs) {
  if (fs.empty()) return;
  if (fs.size() == 1) {
    send(fs.front());
    return;
  }
  Bytes wire;
  for (const Frame& f : fs) {
    const Bytes one = encode_frame(f);
    wire.insert(wire.end(), one.begin(), one.end());
  }
  static telemetry::Counter& c_frames =
      telemetry::Registry::global().counter("transport.frames.sent");
  static telemetry::Counter& c_bytes =
      telemetry::Registry::global().counter("transport.bytes.sent");
  std::lock_guard lock(send_mu_);
  sock_.send_all(wire, opt_.send_timeout);
  c_frames.add(fs.size());
  c_bytes.add(wire.size());
}

void FramedConn::send_raw(std::span<const std::uint8_t> wire) {
  std::lock_guard lock(send_mu_);
  sock_.send_all(wire, opt_.send_timeout);
}

Frame FramedConn::recv(std::optional<Millis> timeout) {
  std::uint8_t hdr[kFrameHeaderBytes];
  sock_.recv_exact(hdr, timeout);
  const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                            static_cast<std::uint32_t>(hdr[1]) << 8 |
                            static_cast<std::uint32_t>(hdr[2]) << 16 |
                            static_cast<std::uint32_t>(hdr[3]) << 24;
  const std::uint32_t crc = static_cast<std::uint32_t>(hdr[4]) |
                            static_cast<std::uint32_t>(hdr[5]) << 8 |
                            static_cast<std::uint32_t>(hdr[6]) << 16 |
                            static_cast<std::uint32_t>(hdr[7]) << 24;
  // Cap check BEFORE the allocation: a corrupt prefix cannot size a buffer.
  check_frame_len(len, opt_.max_frame_bytes);
  Bytes payload(len);
  sock_.recv_exact(payload, timeout);
  return decode_checked(crc, payload);
}

}  // namespace dlr::transport
