// Field-axiom and known-structure tests for F_p and F_{p^2}, on both curve
// presets' base fields and on the SS512 scalar field.
#include <gtest/gtest.h>

#include "field/fp2.hpp"
#include "group/tate_group.hpp"

namespace dlr::field {
namespace {

using crypto::Rng;

// Run the same axiom battery over each modulus via typed helpers.
template <std::size_t L>
void check_fp_axioms(const FpCtx<L>& f, std::uint64_t seed, int iters) {
  Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    const auto a = f.random(rng);
    const auto b = f.random(rng);
    const auto c = f.random(rng);
    // Commutativity / associativity / distributivity.
    EXPECT_EQ(f.add(a, b), f.add(b, a));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    // Identities and inverses.
    EXPECT_EQ(f.add(a, f.zero()), a);
    EXPECT_EQ(f.mul(a, f.one()), a);
    EXPECT_TRUE(f.is_zero(f.add(a, f.neg(a))));
    EXPECT_EQ(f.sub(a, b), f.add(a, f.neg(b)));
    EXPECT_EQ(f.sqr(a), f.mul(a, a));
    if (!f.is_zero(a)) {
      EXPECT_EQ(f.mul(a, f.inv(a)), f.one());
    }
  }
}

template <std::size_t L>
void check_fp_conversions(const FpCtx<L>& f, std::uint64_t seed, int iters) {
  Rng rng(seed);
  for (int i = 0; i < iters; ++i) {
    const auto raw = f.random_uint(rng);
    EXPECT_LT(raw, f.modulus());
    EXPECT_EQ(f.to_uint(f.from_uint(raw)), raw);
  }
  EXPECT_EQ(f.to_uint(f.one()), mpint::UInt<L>::from_u64(1));
  EXPECT_TRUE(f.to_uint(f.zero()).is_zero());
}

template <std::size_t L>
void check_fp_pow_sqrt(const FpCtx<L>& f, std::uint64_t seed) {
  Rng rng(seed);
  // Fermat: a^(p-1) == 1.
  const auto pm1 = f.modulus() - mpint::UInt<L>::from_u64(1);
  for (int i = 0; i < 10; ++i) {
    auto a = f.random(rng);
    if (f.is_zero(a)) a = f.one();
    EXPECT_EQ(f.pow(a, pm1), f.one());
  }
  // sqrt(x^2) is +-x, and squares are detected.
  int squares = 0;
  for (int i = 0; i < 40; ++i) {
    const auto a = f.random(rng);
    if (f.is_zero(a)) continue;
    const auto a2 = f.sqr(a);
    EXPECT_TRUE(f.is_square(a2));
    const auto r = f.sqrt(a2);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(f.eq(*r, a) || f.eq(*r, f.neg(a)));
    if (f.is_square(a)) ++squares;
  }
  // Roughly half the elements are squares.
  EXPECT_GT(squares, 5);
  EXPECT_LT(squares, 35);
}

TEST(FpTest, AxiomsSS256Base) {
  check_fp_axioms(FpCtx<4>(pairing::make_ss256()->fq().modulus()), 100, 100);
}
TEST(FpTest, AxiomsSS512Base) {
  check_fp_axioms(FpCtx<8>(pairing::make_ss512()->fq().modulus()), 101, 30);
}
TEST(FpTest, AxiomsSS512Scalar) {
  check_fp_axioms(FpCtx<3>(pairing::make_ss512()->order()), 102, 100);
}
TEST(FpTest, AxiomsSS256Scalar) {
  check_fp_axioms(FpCtx<1>(pairing::make_ss256()->order()), 103, 200);
}

TEST(FpTest, ConversionsSS256) {
  check_fp_conversions(FpCtx<4>(pairing::make_ss256()->fq().modulus()), 104, 100);
}
TEST(FpTest, ConversionsSS512) {
  check_fp_conversions(FpCtx<8>(pairing::make_ss512()->fq().modulus()), 105, 50);
}

TEST(FpTest, PowAndSqrtSS256) {
  check_fp_pow_sqrt(FpCtx<4>(pairing::make_ss256()->fq().modulus()), 106);
}
TEST(FpTest, PowAndSqrtSS512) {
  check_fp_pow_sqrt(FpCtx<8>(pairing::make_ss512()->fq().modulus()), 107);
}

TEST(FpTest, SmallPrimeExhaustive) {
  // p = 7: check the entire multiplication table against naive arithmetic.
  const FpCtx<1> f(mpint::UInt<1>::from_u64(7));
  for (std::uint64_t a = 0; a < 7; ++a) {
    for (std::uint64_t b = 0; b < 7; ++b) {
      const auto ea = f.from_uint(mpint::UInt<1>::from_u64(a));
      const auto eb = f.from_uint(mpint::UInt<1>::from_u64(b));
      EXPECT_EQ(f.to_uint(f.mul(ea, eb)).limb[0], (a * b) % 7);
      EXPECT_EQ(f.to_uint(f.add(ea, eb)).limb[0], (a + b) % 7);
      EXPECT_EQ(f.to_uint(f.sub(ea, eb)).limb[0], (a + 7 - b) % 7);
    }
  }
}

TEST(FpTest, InvZeroThrows) {
  const FpCtx<1> f(mpint::UInt<1>::from_u64(7));
  EXPECT_THROW((void)f.inv(f.zero()), std::domain_error);
}

TEST(FpTest, EvenModulusRejected) {
  EXPECT_THROW(FpCtx<1>(mpint::UInt<1>::from_u64(8)), std::invalid_argument);
}

TEST(FpTest, TwoInv) {
  const FpCtx<4> f(pairing::make_ss256()->fq().modulus());
  EXPECT_EQ(f.mul(f.two_inv(), f.from_uint(mpint::UInt<4>::from_u64(2))), f.one());
}

// ---- Fp2 ---------------------------------------------------------------------

template <std::size_t L>
void check_fp2_axioms(const Fp2Ctx<L>& f2, std::uint64_t seed, int iters) {
  Rng rng(seed);
  const auto& fp = f2.base();
  for (int i = 0; i < iters; ++i) {
    const auto a = f2.random_nonzero(rng);
    const auto b = f2.random_nonzero(rng);
    const auto c = f2.random_nonzero(rng);
    EXPECT_TRUE(f2.eq(f2.mul(a, b), f2.mul(b, a)));
    EXPECT_TRUE(f2.eq(f2.mul(f2.mul(a, b), c), f2.mul(a, f2.mul(b, c))));
    EXPECT_TRUE(f2.eq(f2.mul(a, f2.add(b, c)), f2.add(f2.mul(a, b), f2.mul(a, c))));
    EXPECT_TRUE(f2.eq(f2.sqr(a), f2.mul(a, a)));
    EXPECT_TRUE(f2.eq(f2.mul(a, f2.inv(a)), f2.one()));
    // Conjugation is the Frobenius; norm is multiplicative.
    EXPECT_TRUE(fp.eq(f2.norm(f2.mul(a, b)), fp.mul(f2.norm(a), f2.norm(b))));
    EXPECT_TRUE(f2.eq(f2.conj(f2.conj(a)), a));
    EXPECT_TRUE(f2.eq(f2.conj(f2.mul(a, b)), f2.mul(f2.conj(a), f2.conj(b))));
  }
}

TEST(Fp2Test, AxiomsSS256) {
  check_fp2_axioms(Fp2Ctx<4>(pairing::make_ss256()->fq()), 200, 60);
}
TEST(Fp2Test, AxiomsSS512) {
  check_fp2_axioms(Fp2Ctx<8>(pairing::make_ss512()->fq()), 201, 20);
}

TEST(Fp2Test, ISquaredIsMinusOne) {
  const Fp2Ctx<4> f2(pairing::make_ss256()->fq());
  const auto& fp = f2.base();
  const auto i = f2.make(fp.zero(), fp.one());
  const auto i2 = f2.sqr(i);
  EXPECT_TRUE(f2.eq(i2, f2.neg(f2.one())));
}

TEST(Fp2Test, FrobeniusIsPthPower) {
  const auto ctx = pairing::make_ss256();
  const Fp2Ctx<4> f2(ctx->fq());
  Rng rng(202);
  const auto a = f2.random_nonzero(rng);
  EXPECT_TRUE(f2.eq(f2.pow(a, ctx->fq().modulus()), f2.frobenius(a)));
}

TEST(Fp2Test, PowMatchesRepeatedMul) {
  const Fp2Ctx<4> f2(pairing::make_ss256()->fq());
  Rng rng(203);
  const auto a = f2.random_nonzero(rng);
  auto acc = f2.one();
  for (int k = 0; k < 20; ++k) {
    EXPECT_TRUE(f2.eq(acc, f2.pow(a, mpint::UInt<1>::from_u64(k))));
    acc = f2.mul(acc, a);
  }
}

TEST(Fp2Test, NonThreeMod4Rejected) {
  // p = 5 == 1 mod 4: i^2 = -1 is not irreducible there.
  FpCtx<1> f5(mpint::UInt<1>::from_u64(5));
  EXPECT_THROW(Fp2Ctx<1>{f5}, std::invalid_argument);
}

}  // namespace
}  // namespace dlr::field
