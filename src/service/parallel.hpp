// Small shared-pool parallel-for for the ell-coordinate loops.
//
// The DLR/HPSKE hot paths are embarrassingly parallel across ciphertext
// coordinates: pair_ct evaluates kappa+1 independent pairings, MaskedEnc
// raises width independent multi-pows, and Refresh touches each share row
// separately. ParallelFor fans such loops out over a lazily-started global
// worker pool; the caller participates in claiming indices, so nested run()
// calls cannot deadlock and a zero-thread pool degrades to a plain loop.
//
// Fan-out is controlled by a config resolved ONCE per process (getenv is not
// on the hot path). In precedence order:
//
//   1. set_parallel_threads_for_test(n)   -- test-only override hook
//   2. DLR_PARALLEL env var, parsed at first use:
//        "0" / "off"   -> serial (keeps CountingGroup op profiles exact and
//                         experiments reproducible op-for-op)
//        "on" / "auto" -> default_workers() threads
//        "<N>"         -> N threads
//   3. set_adaptive_parallel_default(n)   -- what the service runtime sets at
//      startup when the env var is unset: hardware concurrency minus its own
//      pipeline threads (so fan-out never oversubscribes the server's cores)
//   4. otherwise serial (library/CLI default, unchanged behavior)
//
// A thread can additionally suppress fan-out for a scope with
// FanoutSuppressGuard: the server's crypto workers use it when a batch of
// requests already saturates the machine, where coordinate fan-out would only
// add contention.
//
// Results are deterministic regardless of thread count because every loop we
// fan out writes disjoint slots of a pre-sized output vector and group
// arithmetic is exact.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace dlr::service {

/// Worker-count heuristic shared with P2Server's pool sizing:
/// hardware_concurrency clamped to [2, 8], or 4 when unknown.
[[nodiscard]] int default_workers();

/// Raw (uncached) parse of the DLR_PARALLEL env var; 0 means "stay serial".
/// Exposed for the knob-parsing tests -- runtime code goes through
/// parallel_threads(), which caches this at first use.
[[nodiscard]] int parallel_env_threads();

/// The resolved fan-out width (see header comment for precedence). The env
/// var is read once, on the first call; afterwards this is two relaxed
/// atomic loads.
[[nodiscard]] int parallel_threads();

/// Test-only override: force parallel_threads() == n (n >= 0) regardless of
/// the environment; -1 restores normal resolution.
void set_parallel_threads_for_test(int n);

/// Adaptive default used when DLR_PARALLEL is unset: the service runtime
/// calls this at startup with hw_threads - pipeline_threads (clamped >= 0).
/// -1 clears it (back to "serial unless the env var says otherwise").
void set_adaptive_parallel_default(int n);

/// True while a FanoutSuppressGuard is active on this thread.
[[nodiscard]] bool fanout_suppressed();

/// RAII: par_for on this thread runs serially while the guard lives. Used by
/// batch crypto workers -- cross-request batching already saturates the
/// cores, so per-request coordinate fan-out would only thrash.
class FanoutSuppressGuard {
 public:
  explicit FanoutSuppressGuard(bool active = true);
  ~FanoutSuppressGuard();
  FanoutSuppressGuard(const FanoutSuppressGuard&) = delete;
  FanoutSuppressGuard& operator=(const FanoutSuppressGuard&) = delete;

 private:
  bool active_;
};

class ParallelFor {
 public:
  /// A pool with `threads` workers (0 = no workers; run() is a plain loop).
  /// Workers are started lazily on the first parallel run().
  explicit ParallelFor(int threads);
  ~ParallelFor();
  ParallelFor(const ParallelFor&) = delete;
  ParallelFor& operator=(const ParallelFor&) = delete;

  /// Invoke body(i) for every i in [0, n), possibly concurrently. Blocks
  /// until all iterations finished. The calling thread claims indices too.
  /// If any body throws, the first exception is rethrown here once the
  /// batch has drained.
  void run(std::size_t n, const std::function<void(std::size_t)>& body);

  [[nodiscard]] int threads() const { return threads_; }

  /// Process-wide pool used by par_for(). Sized once, at first use; per-call
  /// gating still happens in par_for, so overrides that drop the width to 0
  /// later disable fan-out.
  static ParallelFor& global();

 private:
  struct Batch;
  struct State;

  void ensure_started();
  static void worker_main(std::shared_ptr<State> st);
  static void drive(Batch& b);

  int threads_;
  std::shared_ptr<State> state_;
};

/// Run body over [0, n): on the global pool when the resolved config enables
/// it (and no FanoutSuppressGuard is active on this thread), serially
/// otherwise. This is the only entry point scheme code uses.
void par_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace dlr::service
