// Client side of the DLR decryption service: the main processor P1 serving
// many local user threads, speaking to the remote auxiliary device P2Server.
//
// P1Runtime holds the singular P1 share behind a shared_mutex. Decryption
// round-1 construction runs under the shared lock (dec_round1 is const given
// a prepared period and a caller rng); the refresh protocol runs under the
// exclusive lock for its full duration and bumps the local epoch when it
// completes. A decryption's period key (sigma) is captured at round-1 time,
// so an in-flight request finishes correctly even when a refresh rotates the
// period during the network round trip.
//
// Refresh is a two-phase epoch commit (DESIGN.md §9):
//
//   1. journal PendingRefresh{epoch, digest}          (before any frame leaves)
//   2. PREPARE round trip -> round 2
//   3. journal the round-2 reply                      (before the commit frame)
//   4. COMMIT round trip -> server installs first
//   5. ref_finish + epoch bump + journal              (client installs second)
//
// Step 3 before step 4 is the crux: once the commit frame may have been sent,
// the journal provably holds everything needed to roll forward, so the
// reconciliation rule "commit iff the server committed, roll back otherwise"
// is always executable -- a crash or lost frame at ANY point leaves a state
// that resolve_pending() can repair, never a fork.
//
// DecryptionClient is one connection's view: it multiplexes every request
// (one mux session each) over a single connection, auto-refreshes every K
// decryptions when configured, and retries retryable service errors and
// transport failures under a bounded-backoff RetrySchedule, reconnecting
// (with a fresh hello reconciliation) when the connection dies. Several
// DecryptionClients may share one P1Runtime to fan out over multiple
// connections.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "schemes/dlr.hpp"
#include "service/admin.hpp"
#include "service/journal.hpp"
#include "service/protocol.hpp"
#include "telemetry/events.hpp"
#include "telemetry/trace.hpp"
#include "transport/breaker.hpp"
#include "transport/mux.hpp"
#include "transport/retry.hpp"

namespace dlr::service {

template <group::BilinearGroup GG>
class P1Runtime {
 public:
  using Core = schemes::DlrCore<GG>;
  using GT = typename GG::GT;

  struct DecSnapshot {
    std::uint64_t epoch = 0;
    Bytes round1;
    typename schemes::HpskeGT<GG>::SecretKey sigma;  // period key for finish
  };

  /// What the client reports in its hello frame.
  struct PendingInfo {
    bool active = false;
    std::uint64_t epoch = 0;
    Bytes digest;
    bool has_r2 = false;
  };

  /// With a non-empty `state_dir`, state is journaled to
  /// <state_dir>/p1.journal and restored from it when present (the passed
  /// sk1/mode seed only the first run); restores count in svc.recoveries.
  P1Runtime(GG gg, schemes::DlrParams prm, typename Core::PublicKey pk,
            typename Core::Sk1 sk1, schemes::P1Mode mode, crypto::Rng rng,
            std::string state_dir = {})
      : journal_(state_dir.empty()
                     ? Journal{}
                     : Journal(join_path(ensure_dir(state_dir), "p1.journal"))) {
    std::optional<Bytes> payload = journal_.load();
    if (payload) {
      ByteReader r(*payload);
      epoch_ = r.u64();
      if (r.u8()) {
        Pending p;
        p.epoch = r.u64();
        p.digest = r.blob();
        if (r.u8()) p.r2 = r.blob();
        pending_ = std::move(p);
        pending_flag_.store(true);
      }
      const Bytes state = r.blob();
      ByteReader sr(state);
      // The rng is deliberately NOT restored from disk: reusing journaled
      // coins would break the refresh security argument. Fresh entropy only.
      p1_.emplace(schemes::DlrParty1<GG>::restore(std::move(gg), prm, std::move(pk), sr,
                                                  std::move(rng)));
      telemetry::Registry::global().counter("svc.recoveries").add();
      telemetry::event(telemetry::EventKind::JournalRecovery,
                       "side=p1 epoch=" + std::to_string(epoch_) +
                           " pending=" + (pending_ ? "true" : "false"));
    } else {
      p1_.emplace(std::move(gg), prm, std::move(pk), std::move(sk1), mode,
                  std::move(rng));
    }
    p1_->prepare_period();
    if (journal_.attached() && !payload) persist_locked();
  }

  /// Build round 1 + capture (epoch, period key) consistently under the
  /// shared lock. `rng` is the calling thread's own generator.
  [[nodiscard]] DecSnapshot begin_decrypt(const typename Core::Ciphertext& c,
                                          crypto::Rng& rng) {
    std::shared_lock lock(mu_);
    DecSnapshot snap;
    snap.round1 = p1_->dec_round1(c, rng);
    snap.sigma = p1_->period_sigma_gt();
    std::lock_guard elock(epoch_mu_);
    snap.epoch = epoch_;
    return snap;
  }

  /// Decrypt the server's reply with the snapshot's period key. Touches only
  /// immutable P1 members, so no lock is needed.
  [[nodiscard]] GT finish_decrypt(const DecSnapshot& snap, const Bytes& reply) const {
    return p1_->dec_finish_with(snap.sigma, reply);
  }

  /// Run the two-phase refresh under the exclusive lock. `prepare` is called
  /// with (epoch, ref round 1) and must return ref round 2; `commit` is
  /// called with (epoch, digest) and must complete the server-side install
  /// (its return value is ignored). Either callback throwing leaves the
  /// journaled PendingRefresh in place -- the caller reconciles it via
  /// resolve_pending() (a reconnect hello) before retrying.
  template <class Prepare, class Commit>
  void refresh(Prepare&& prepare, Commit&& commit) {
    std::unique_lock lock(mu_);
    if (pending_)
      throw ServiceError(ServiceErrc::Draining, epoch(),
                         "pending refresh awaiting reconciliation");
    const std::uint64_t e = epoch();
    const Bytes r1 = p1_->ref_round1();
    Pending p;
    p.epoch = e;
    p.digest = crypto::digest_to_bytes(crypto::Sha256::hash(r1));
    pending_ = std::move(p);
    pending_flag_.store(true);
    persist_locked();  // journal the intent before any frame leaves
    pending_->r2 = prepare(e, r1);
    persist_locked();  // journal round 2 BEFORE the commit frame: from here
                       // on, "server committed" is always roll-forwardable
    (void)commit(e, pending_->digest);
    commit_locked();
  }

  /// Apply a reconciliation verdict for the pending refresh identified by
  /// `digest` (what the hello reported). A verdict for a different digest --
  /// a stale answer raced by another thread's reconciliation -- is a no-op.
  void resolve_pending(RefDisposition disp, std::uint64_t server_epoch,
                       const Bytes& digest) {
    std::unique_lock lock(mu_);
    if (!pending_ || pending_->digest != digest) return;
    switch (disp) {
      case RefDisposition::Commit:
        if (!pending_->r2)
          throw ServiceError(ServiceErrc::Internal, server_epoch,
                             "server committed a refresh the client never "
                             "reached the commit phase of");
        commit_locked();
        telemetry::Registry::global().counter("svc.recoveries").add();
        telemetry::event(telemetry::EventKind::Reconcile,
                         "side=p1 verdict=commit epoch=" + std::to_string(server_epoch));
        break;
      case RefDisposition::Rollback:
        // Discard the sampled-but-never-installed refresh state and start a
        // fresh period; the share and epoch are unchanged.
        p1_->end_period();
        p1_->prepare_period();
        pending_.reset();
        pending_flag_.store(false);
        persist_locked();
        telemetry::Registry::global().counter("svc.rollbacks").add();
        telemetry::event(telemetry::EventKind::Reconcile,
                         "side=p1 verdict=rollback epoch=" + std::to_string(server_epoch));
        break;
      case RefDisposition::None:
        break;  // another thread resolved it concurrently
    }
  }

  [[nodiscard]] PendingInfo pending_info() const {
    std::shared_lock lock(mu_);
    PendingInfo info;
    if (pending_) {
      info.active = true;
      info.epoch = pending_->epoch;
      info.digest = pending_->digest;
      info.has_r2 = pending_->r2.has_value();
    }
    return info;
  }

  [[nodiscard]] std::uint64_t epoch() const {
    std::lock_guard lock(epoch_mu_);
    return epoch_;
  }

  /// Wait (bounded) for the epoch to move past `seen` -- used by decrypt()
  /// retries so they re-issue only after the in-progress refresh lands.
  void wait_epoch_change(std::uint64_t seen, transport::Millis timeout) {
    std::unique_lock lock(epoch_mu_);
    epoch_cv_.wait_for(lock, timeout, [&] { return epoch_ != seen; });
  }

  /// Contribute a "p1" section to an admin health document. The provider
  /// reads only the epoch mutex and an atomic pending flag -- it never waits
  /// on the share lock, so a scrape cannot stall behind an in-flight refresh.
  void register_admin(AdminServer& admin, const std::string& section = "p1") {
    admin.register_health(section, [this] {
      return std::vector<std::pair<std::string, std::string>>{
          {"epoch", std::to_string(epoch())},
          {"pending_refresh", pending_flag_.load() ? "true" : "false"},
          {"journal", journal_.attached() ? journal_.path() : "(volatile)"},
      };
    });
  }

  /// Current share (tests: msk-constancy checks). Takes the exclusive lock.
  [[nodiscard]] typename Core::Sk1 share_for_test() {
    std::unique_lock lock(mu_);
    return p1_->recover_share_for_test();
  }

 private:
  struct Pending {
    std::uint64_t epoch = 0;
    Bytes digest;
    std::optional<Bytes> r2;  // set once PREPARE round-tripped
  };

  /// ref_finish + new period + epoch bump + journal. Caller holds mu_
  /// exclusively with pending_->r2 set.
  void commit_locked() {
    p1_->ref_finish(*pending_->r2);
    p1_->prepare_period();
    pending_.reset();
    pending_flag_.store(false);
    {
      std::lock_guard elock(epoch_mu_);
      ++epoch_;
    }
    persist_locked();
    epoch_cv_.notify_all();
  }

  /// Journal (epoch, pending, party state). Caller holds mu_ exclusively
  /// (or is the constructor).
  void persist_locked() {
    if (!journal_.attached()) return;
    ByteWriter w;
    {
      std::lock_guard elock(epoch_mu_);
      w.u64(epoch_);
    }
    w.u8(pending_ ? 1 : 0);
    if (pending_) {
      w.u64(pending_->epoch);
      w.blob(pending_->digest);
      w.u8(pending_->r2 ? 1 : 0);
      if (pending_->r2) w.blob(*pending_->r2);
    }
    ByteWriter sw;
    p1_->ser_state(sw);
    w.blob(sw.bytes());
    journal_.save(w.take());
  }

  Journal journal_;
  std::optional<schemes::DlrParty1<GG>> p1_;  // optional: two construction paths
  mutable std::shared_mutex mu_;     // guards p1_ mutation vs. round-1 reads
  std::optional<Pending> pending_;   // guarded by mu_
  std::atomic<bool> pending_flag_{false};  // mirrors pending_ for lock-free health reads
  mutable std::mutex epoch_mu_;      // guards epoch_ (cv companion)
  std::condition_variable epoch_cv_;
  std::uint64_t epoch_ = 0;
};

template <group::BilinearGroup GG>
class DecryptionClient {
 public:
  using Core = schemes::DlrCore<GG>;
  using GT = typename GG::GT;

  struct Options {
    transport::TransportOptions transport{};
    transport::Millis request_timeout{10000};
    int max_retries = 8;         // retryable-error retries per operation
    int auto_refresh_every = 0;  // run Refresh every K decryptions (0 = never)
    /// Backoff shape between retries/reconnects (max_attempts is overridden
    /// by max_retries).
    transport::RetryPolicy retry{};
    /// Wraps the connection (fault injection in tests/benches).
    std::function<std::shared_ptr<transport::Conn>(std::shared_ptr<transport::FramedConn>)>
        conn_wrapper;
    /// Per-endpoint circuit breaker (DESIGN.md §13), layered under the retry
    /// schedule. Only endpoint-health failures count against it: transport
    /// errors and Overloaded sheds. Epoch-coordination errors (StaleEpoch,
    /// Draining, ...) prove the server is alive and report as success.
    transport::CircuitBreaker::Options breaker{};
    /// Wall-clock budget for one decrypt()/refresh() operation, deducted
    /// across retry attempts; the remaining budget rides each request as its
    /// wire deadline when the server negotiated kWireDeadlineVersion.
    /// 0 = unbounded (requests carry no deadline).
    transport::Millis deadline{0};
  };

  /// Connects and runs the hello reconciliation; a journaled pending refresh
  /// from a previous (crashed) process is resolved before the first request.
  /// A transport failure here leaves the client disconnected -- decrypt() and
  /// refresh() reconnect (and reconcile) lazily under their retry schedules.
  /// Protocol-level hello failures (e.g. a detected epoch fork) still throw.
  DecryptionClient(std::shared_ptr<P1Runtime<GG>> p1, std::uint16_t port, Options opt = {})
      : p1_(std::move(p1)), opt_(std::move(opt)), port_(port), breaker_(opt_.breaker) {
    try {
      reconnect(nullptr);
    } catch (const transport::TransportError&) {
    }
  }

  [[nodiscard]] P1Runtime<GG>& p1() { return *p1_; }
  [[nodiscard]] std::uint64_t epoch() const { return p1_->epoch(); }

  /// Wire-trace version negotiated with the peer in the last hello: 0 means
  /// a legacy (pre-trace) server, so request frames carry no trace envelope.
  [[nodiscard]] std::uint8_t wire_version() const { return wire_version_.load(); }

  /// Endpoint circuit breaker state (tests/benches).
  [[nodiscard]] const transport::CircuitBreaker& breaker() const { return breaker_; }

  /// One DistDec round trip; throws ServiceError (retryable() for
  /// StaleEpoch/Draining/DrainTimeout/Shutdown) and TransportError.
  [[nodiscard]] GT decrypt_once(const typename Core::Ciphertext& c) {
    telemetry::ScopedSpan root("svc.client.dec");
    thread_local crypto::Rng rng = crypto::Rng::from_os_entropy();
    auto m = mux();
    if (!m)
      throw transport::TransportError(transport::Errc::ConnectionClosed, "not connected");
    return decrypt_once_on(*m, c, rng);
  }

  /// DistDec with the auto-refresh policy, retry of retryable errors, and
  /// transparent reconnect (with hello reconciliation) on transport failure.
  /// Every attempt passes the circuit breaker first (an open circuit
  /// fail-fasts as a retryable Overloaded carrying the remaining cooldown),
  /// retry delays honor server retry-after hints, and Options::deadline is
  /// one budget deducted across all attempts.
  [[nodiscard]] GT decrypt(const typename Core::Ciphertext& c) {
    maybe_auto_refresh();
    // The root span covers the whole operation; every network attempt opens a
    // sibling "svc.client.attempt" child, so a retried decryption exports as
    // one trace tree with one attempt subtree per try.
    telemetry::ScopedSpan root("svc.client.dec");
    thread_local crypto::Rng rng = crypto::Rng::from_os_entropy();
    transport::RetrySchedule sched(retry_policy());
    const auto op_deadline = op_deadline_from_now();
    for (;;) {
      const std::uint64_t seen = p1_->epoch();
      std::shared_ptr<transport::SessionMux> m;
      bool admitted = false;
      try {
        check_budget(op_deadline, "decrypt");
        acquire_breaker();
        admitted = true;
        m = mux();
        if (!m) m = reconnect(nullptr);
        const GT out = decrypt_once_on(*m, c, rng, remaining_ms(op_deadline));
        breaker_success();
        return out;
      } catch (const ServiceError& e) {
        if (admitted) breaker_observe(e);
        if (!e.retryable()) throw;
        const auto delay =
            sched.next(rng.u64(), transport::Millis{e.retry_after_ms()});
        if (!delay) throw;
        telemetry::Registry::global().counter("svc.client.retries").add();
        telemetry::event(telemetry::EventKind::Retry,
                         std::string("op=dec cause=") + service_errc_name(e.code()));
        // StaleEpoch with a pending refresh means reconciliation (not mere
        // waiting) is what advances our epoch.
        if (p1_->pending_info().active && m) {
          try {
            hello(*m);
          } catch (const transport::TransportError&) {
          } catch (const ServiceError&) {
          }
        }
        p1_->wait_epoch_change(seen,
                               clamp_to_budget(std::max(*delay, transport::Millis{50}),
                                               op_deadline));
      } catch (const transport::TransportError&) {
        if (admitted) breaker_failure();
        const auto delay = sched.next(rng.u64());
        if (!delay) throw;
        telemetry::Registry::global().counter("svc.client.retries").add();
        telemetry::event(telemetry::EventKind::Retry, "op=dec cause=transport");
        std::this_thread::sleep_for(clamp_to_budget(*delay, op_deadline));
        try {
          reconnect(m);
        } catch (const transport::TransportError&) {
          // Still down; the next loop iteration backs off and retries.
        } catch (const ServiceError&) {
        }
      }
    }
  }

  /// Run the two-phase Refresh protocol, advancing the epoch by exactly one.
  /// Retries retryable errors and reconnects across transport failures; an
  /// interrupted attempt that the server already committed is rolled forward
  /// by the reconnect's hello reconciliation.
  void refresh() {
    telemetry::ScopedSpan span("svc.client.refresh");
    thread_local crypto::Rng rng = crypto::Rng::from_os_entropy();
    transport::RetrySchedule sched(retry_policy());
    const std::uint64_t start = p1_->epoch();
    for (;;) {
      std::shared_ptr<transport::SessionMux> m;
      bool admitted = false;
      try {
        acquire_breaker();
        admitted = true;
        m = mux();
        if (!m) m = reconnect(nullptr);
        if (p1_->pending_info().active) hello(*m);  // resolve leftovers first
        if (p1_->epoch() > start) {  // reconciliation rolled us forward
          breaker_success();
          return;
        }
        p1_->refresh(
            [&](std::uint64_t e, const Bytes& r1) {
              auto sess = m->open();
              sess->send(transport::FrameType::Data,
                         static_cast<std::uint8_t>(net::DeviceId::P1), kLabelRefReq,
                         encode_request(e, r1), send_ctx());
              return expect_ok(sess->recv(opt_.request_timeout), kLabelRefOk);
            },
            [&](std::uint64_t e, const Bytes& digest) {
              auto sess = m->open();
              sess->send(transport::FrameType::Data,
                         static_cast<std::uint8_t>(net::DeviceId::P1), kLabelRefCommit,
                         encode_commit(CommitMsg{e, digest}), send_ctx());
              return decode_commit_ok(
                  expect_ok(sess->recv(opt_.request_timeout), kLabelRefCommitOk));
            });
        breaker_success();
        return;
      } catch (const ServiceError& e) {
        if (admitted) breaker_observe(e);
        if (!e.retryable()) throw;
        const auto delay =
            sched.next(rng.u64(), transport::Millis{e.retry_after_ms()});
        if (!delay) throw;
        telemetry::Registry::global().counter("svc.client.retries").add();
        telemetry::event(telemetry::EventKind::Retry,
                         std::string("op=refresh cause=") + service_errc_name(e.code()));
        std::this_thread::sleep_for(*delay);
      } catch (const transport::TransportError&) {
        if (admitted) breaker_failure();
        const auto delay = sched.next(rng.u64());
        if (!delay) throw;
        std::this_thread::sleep_for(*delay);
        try {
          reconnect(m);  // hello inside resolves the interrupted attempt
        } catch (const transport::TransportError&) {
        } catch (const ServiceError&) {
        }
      }
    }
  }

  /// Number of reconnects this client performed (tests/benches).
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_.load(); }

  void close() {
    closed_.store(true);
    std::lock_guard lock(conn_mu_);
    if (mux_) mux_->stop();
  }

 private:
  [[nodiscard]] transport::RetryPolicy retry_policy() const {
    transport::RetryPolicy p = opt_.retry;
    p.max_attempts = opt_.max_retries + 1;
    return p;
  }

  [[nodiscard]] std::shared_ptr<transport::SessionMux> mux() {
    std::lock_guard lock(conn_mu_);
    return mux_;
  }

  /// Replace the connection `failed` (nullptr = connect unconditionally
  /// unless one exists) and run the hello reconciliation on it. If another
  /// thread already reconnected, its connection is reused.
  std::shared_ptr<transport::SessionMux> reconnect(
      const std::shared_ptr<transport::SessionMux>& failed) {
    std::lock_guard lock(conn_mu_);
    if (mux_ && mux_ != failed) return mux_;
    if (closed_.load())
      throw transport::TransportError(transport::Errc::ConnectionClosed, "client closed");
    if (mux_) {
      mux_->stop();
      mux_.reset();  // old mux stays alive via surviving Session handles
    }
    auto fc = std::make_shared<transport::FramedConn>(
        transport::connect_loopback(port_, opt_.transport), opt_.transport);
    std::shared_ptr<transport::Conn> conn =
        opt_.conn_wrapper ? opt_.conn_wrapper(std::move(fc))
                          : std::static_pointer_cast<transport::Conn>(std::move(fc));
    auto m = std::make_shared<transport::SessionMux>(std::move(conn));
    hello(*m);  // throws on fork; the half-open mux is dropped
    mux_ = std::move(m);
    if (connected_once_) {
      reconnects_.fetch_add(1);
      telemetry::Registry::global().counter("svc.reconnects").add();
      telemetry::event(telemetry::EventKind::Reconnect,
                       "port=" + std::to_string(port_) +
                           " n=" + std::to_string(reconnects_.load()));
    }
    connected_once_ = true;
    return mux_;
  }

  /// Hello exchange + pending-refresh reconciliation on `m`. The client first
  /// offers wire-trace version kWireTraceVersion as a trailing hello byte; a
  /// legacy server rejects the unknown byte with BadRequest, in which case we
  /// re-hello bare and remember the peer as legacy (trace envelopes stay off
  /// for this client -- old peers keep decrypting, just untraced).
  void hello(transport::SessionMux& m) {
    const auto info = p1_->pending_info();
    HelloMsg h;
    h.epoch = p1_->epoch();
    h.has_pending = info.active;
    h.pending_epoch = info.epoch;
    h.pending_digest = info.digest;
    h.version = legacy_peer_.load() ? 0 : kWireDeadlineVersion;
    HelloOk ok;
    try {
      ok = hello_once(m, h);
    } catch (const ServiceError& e) {
      if (h.version == 0 || e.code() != ServiceErrc::BadRequest) throw;
      legacy_peer_.store(true);
      h.version = 0;
      ok = hello_once(m, h);
    }
    wire_version_.store(ok.version);
    p1_->resolve_pending(ok.disposition, ok.server_epoch, info.digest);
  }

  [[nodiscard]] HelloOk hello_once(transport::SessionMux& m, const HelloMsg& h) {
    auto sess = m.open();
    sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P1),
               kLabelHello, encode_hello(h));
    return decode_hello_ok(expect_ok(sess->recv(opt_.request_timeout), kLabelHelloOk));
  }

  /// Trace context to stamp onto an outgoing request frame: the innermost
  /// open span when the peer negotiated wire tracing, nothing otherwise.
  [[nodiscard]] telemetry::TraceContext send_ctx() const {
    return wire_version_.load() ? telemetry::Tracer::global().current()
                                : telemetry::TraceContext{};
  }

  [[nodiscard]] GT decrypt_once_on(transport::SessionMux& m,
                                   const typename Core::Ciphertext& c, crypto::Rng& rng,
                                   std::uint32_t deadline_ms = 0) {
    telemetry::ScopedSpan span("svc.client.attempt");
    const auto snap = p1_->begin_decrypt(c, rng);
    auto sess = m.open();
    // The remaining budget rides the request only when the peer negotiated
    // the deadline wire version (a pre-deadline server rejects trailing
    // request bytes as BadRequest).
    const std::uint32_t wire_deadline =
        wire_version_.load() >= kWireDeadlineVersion ? deadline_ms : 0;
    sess->send(transport::FrameType::Data, static_cast<std::uint8_t>(net::DeviceId::P1),
               kLabelDecReq, encode_request(snap.epoch, snap.round1, wire_deadline),
               send_ctx());
    auto timeout = opt_.request_timeout;
    if (deadline_ms != 0)
      timeout = std::min(timeout, transport::Millis{deadline_ms});
    const Bytes r2 = expect_ok(sess->recv(timeout), kLabelDecOk);
    return p1_->finish_decrypt(snap, r2);
  }

  // ---- deadline budget helpers (Options::deadline) ---------------------------

  [[nodiscard]] std::chrono::steady_clock::time_point op_deadline_from_now() const {
    if (opt_.deadline.count() <= 0) return {};
    return std::chrono::steady_clock::now() + opt_.deadline;
  }

  /// Throws a non-retryable DeadlineExceeded once the operation budget is
  /// spent -- attempts and backoff sleeps all draw from the same clock.
  void check_budget(std::chrono::steady_clock::time_point op_deadline, const char* op) const {
    if (op_deadline == std::chrono::steady_clock::time_point{}) return;
    if (std::chrono::steady_clock::now() >= op_deadline)
      throw ServiceError(ServiceErrc::DeadlineExceeded, p1_->epoch(),
                         std::string(op) + ": deadline budget spent");
  }

  [[nodiscard]] std::uint32_t remaining_ms(
      std::chrono::steady_clock::time_point op_deadline) const {
    if (op_deadline == std::chrono::steady_clock::time_point{}) return 0;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        op_deadline - std::chrono::steady_clock::now());
    return left.count() <= 0 ? 1 : static_cast<std::uint32_t>(left.count());
  }

  /// Never sleep past the operation budget; the next loop iteration turns an
  /// exhausted budget into DeadlineExceeded.
  [[nodiscard]] transport::Millis clamp_to_budget(
      transport::Millis delay, std::chrono::steady_clock::time_point op_deadline) const {
    if (op_deadline == std::chrono::steady_clock::time_point{}) return delay;
    return std::min(delay, transport::Millis{remaining_ms(op_deadline)});
  }

  // ---- circuit breaker (Options::breaker) ------------------------------------

  /// Fail fast while the circuit is open: a retryable Overloaded whose hint
  /// is the remaining cooldown, so the retry schedule sleeps past it instead
  /// of burning attempts against a known-bad endpoint.
  void acquire_breaker() {
    const auto adm = breaker_.try_acquire();
    if (adm.admitted) return;
    telemetry::Registry::global().counter("svc.client.breaker.fastfail").add();
    throw ServiceError(ServiceErrc::Overloaded, p1_->epoch(), "circuit breaker open",
                       static_cast<std::uint32_t>(adm.retry_after.count()));
  }

  void breaker_success() {
    const auto closes0 = breaker_.closes();
    breaker_.on_success();
    if (breaker_.closes() != closes0) {
      telemetry::Registry::global().counter("svc.client.breaker.close").add();
      telemetry::event(telemetry::EventKind::BreakerClose,
                       "port=" + std::to_string(port_));
    }
  }

  void breaker_failure() {
    const auto opens0 = breaker_.opens();
    breaker_.on_failure();
    if (breaker_.opens() != opens0) {
      telemetry::Registry::global().counter("svc.client.breaker.open").add();
      telemetry::event(telemetry::EventKind::BreakerOpen,
                       "port=" + std::to_string(port_) + " n=" +
                           std::to_string(breaker_.opens()));
    }
  }

  /// Typed errors and the breaker: only Overloaded indicates endpoint
  /// distress; any other ServiceError proves the server is up and answering.
  void breaker_observe(const ServiceError& e) {
    if (e.code() == ServiceErrc::Overloaded)
      breaker_failure();
    else
      breaker_success();
  }

  void maybe_auto_refresh() {
    if (opt_.auto_refresh_every <= 0) return;
    const auto n = dec_count_.fetch_add(1) + 1;
    if (n % static_cast<std::uint64_t>(opt_.auto_refresh_every) != 0) return;
    // One refresher at a time per client; losers skip (their decrypts would
    // only pile onto the drain).
    bool expected = false;
    if (!refreshing_.compare_exchange_strong(expected, true)) return;
    try {
      refresh();
    } catch (...) {
      refreshing_.store(false);
      throw;
    }
    refreshing_.store(false);
  }

  std::shared_ptr<P1Runtime<GG>> p1_;
  Options opt_;
  std::uint16_t port_;
  transport::CircuitBreaker breaker_;
  std::mutex conn_mu_;  // guards mux_ swap; serializes reconnects
  std::shared_ptr<transport::SessionMux> mux_;
  bool connected_once_ = false;  // guarded by conn_mu_
  std::atomic<std::uint64_t> dec_count_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint8_t> wire_version_{0};  // negotiated in the last hello
  std::atomic<bool> legacy_peer_{false};       // peer rejected the version byte once
  std::atomic<bool> refreshing_{false};
  std::atomic<bool> closed_{false};
};

}  // namespace dlr::service
