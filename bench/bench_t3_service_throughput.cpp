// T3: decryption-service throughput -- requests/sec of the multi-threaded
// P2Server (src/service/) over real loopback TCP, swept across worker-pool
// sizes and concurrent-client counts.
//
// The backend is the mock group with a large leakage parameter, so each
// DistDec round 2 is ~ell HPSKE ciphertext exponentiations: enough work per
// request for the worker pool to matter, cheap enough to sweep in seconds.
// Every request is a real network round trip (frame codec + CRC + session
// mux), so the numbers include the full transport stack, not just the crypto.
//
// On a single-core host the worker sweep measures coordination overhead
// rather than speedup -- rows report, they do not assert; bench gauges
// bench.rps{workers=..,clients=..} land in the --json export.
//
//   bench_t3_service_throughput [--requests N] [--lambda L] [--json out.jsonl]
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "group/mock_group.hpp"
#include "service/client.hpp"
#include "service/p2_server.hpp"

namespace {

using namespace dlr;
using group::MockGroup;
using Core = schemes::DlrCore<MockGroup>;

struct Config {
  int requests = 200;     // total per sweep point, split across clients
  std::size_t lambda = 2048;
};

int int_flag(int argc, char** argv, const char* name, int def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
  return def;
}

struct Fixture {
  MockGroup gg = group::make_mock();
  schemes::DlrParams prm;
  Core::KeyGenResult kg;
  std::shared_ptr<service::P1Runtime<MockGroup>> p1;
  // Comb tables for pk.g / pk.Z, built once; every sweep point encrypts
  // hundreds of ciphertexts against the same pk.
  std::unique_ptr<Core::PkTable> pk_tbl;

  explicit Fixture(std::size_t lambda) {
    prm = schemes::DlrParams::derive(gg.scalar_bits(), lambda);
    crypto::Rng rng(424242);
    kg = Core::gen(gg, prm, rng);
    pk_tbl = std::make_unique<Core::PkTable>(gg, kg.pk);
    p1 = std::make_shared<service::P1Runtime<MockGroup>>(
        gg, prm, kg.pk, kg.sk1, schemes::P1Mode::Plain, crypto::Rng(1));
  }
};

/// One sweep point: W workers, C clients, `requests` total decryptions.
/// Returns requests/sec of the whole run (wall clock, all clients).
double run_point(Fixture& fx, int workers, int clients, int requests) {
  typename service::P2Server<MockGroup>::Options sopt;
  sopt.workers = workers;
  service::P2Server<MockGroup> server(fx.gg, fx.prm, fx.kg.sk2, crypto::Rng(2), sopt);
  server.start();

  // Pre-encrypt outside the timed region; every client thread gets its own
  // connection (DecryptionClient) and its own slice of the work.
  const int per_client = (requests + clients - 1) / clients;
  crypto::Rng rng(5000 + workers * 100 + clients);
  std::vector<typename Core::Ciphertext> cts;
  cts.reserve(per_client);
  for (int i = 0; i < per_client; ++i)
    cts.push_back(Core::enc_precomp(fx.gg, *fx.pk_tbl, fx.gg.gt_random(rng), rng));

  std::vector<std::unique_ptr<service::DecryptionClient<MockGroup>>> conns;
  conns.reserve(clients);
  for (int c = 0; c < clients; ++c)
    conns.push_back(std::make_unique<service::DecryptionClient<MockGroup>>(
        fx.p1, server.port()));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  ts.reserve(clients);
  for (int c = 0; c < clients; ++c)
    ts.emplace_back([&, c] {
      for (const auto& ct : cts) bench::sink(conns[static_cast<std::size_t>(c)]->decrypt(ct));
    });
  for (auto& t : ts) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  for (auto& c : conns) c->close();
  server.stop();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double total = static_cast<double>(per_client) * clients;
  return total / secs;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.requests = int_flag(argc, argv, "--requests", cfg.requests);
  cfg.lambda = static_cast<std::size_t>(
      int_flag(argc, argv, "--lambda", static_cast<int>(cfg.lambda)));

  Fixture fx(cfg.lambda);
  bench::banner("T3: decryption-service throughput (req/s over loopback TCP)",
                "service deployment of Construction 5.3, §1.1/§4.4");
  std::printf("backend=mock  lambda=%zu  kappa=%zu  ell=%zu  requests/point=%d  hw_threads=%u\n\n",
              cfg.lambda, fx.prm.kappa, fx.prm.ell, cfg.requests,
              std::thread::hardware_concurrency());

  auto& reg = telemetry::Registry::global();
  bench::Table table({"workers", "clients", "req/s", "ms/req (offered)"});
  auto point = [&](int workers, int clients) {
    const double rps = run_point(fx, workers, clients, cfg.requests);
    reg.gauge("bench.rps", {{"workers", std::to_string(workers)},
                            {"clients", std::to_string(clients)}})
        .set(rps);
    table.row({std::to_string(workers), std::to_string(clients), bench::fmt(rps, 1),
               bench::fmt(1000.0 / rps * clients, 3)});
  };

  // Sweep 1: worker scaling at a fixed client fan-in.
  for (const int w : {1, 2, 4, 8}) point(w, 8);
  // Sweep 2: client fan-in at a fixed pool.
  for (const int c : {2, 4, 16}) point(4, c);

  table.print();
  bench::export_json_if_requested(argc, argv, "bench_t3_service_throughput");
  return 0;
}
