// Small shared-pool parallel-for for the ell-coordinate loops.
//
// The DLR/HPSKE hot paths are embarrassingly parallel across ciphertext
// coordinates: pair_ct evaluates kappa+1 independent pairings, MaskedEnc
// raises width independent multi-pows, and Refresh touches each share row
// separately. ParallelFor fans such loops out over a lazily-started global
// worker pool; the caller participates in claiming indices, so nested run()
// calls cannot deadlock and a zero-thread pool degrades to a plain loop.
//
// Everything is gated by the DLR_PARALLEL environment knob, read at each
// par_for() call:
//
//   unset / "0" / "off"  -> serial (the default; keeps CountingGroup op
//                           profiles exact and experiments reproducible
//                           op-for-op)
//   "on" / "auto"        -> default_workers() threads
//   "<N>"                -> N threads
//
// Results are deterministic regardless of thread count because every loop we
// fan out writes disjoint slots of a pre-sized output vector and group
// arithmetic is exact.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace dlr::service {

/// Worker-count heuristic shared with P2Server's pool sizing:
/// hardware_concurrency clamped to [2, 8], or 4 when unknown.
[[nodiscard]] int default_workers();

/// Thread count requested by the DLR_PARALLEL env var (see header comment).
/// 0 means "stay serial".
[[nodiscard]] int parallel_env_threads();

class ParallelFor {
 public:
  /// A pool with `threads` workers (0 = no workers; run() is a plain loop).
  /// Workers are started lazily on the first parallel run().
  explicit ParallelFor(int threads);
  ~ParallelFor();
  ParallelFor(const ParallelFor&) = delete;
  ParallelFor& operator=(const ParallelFor&) = delete;

  /// Invoke body(i) for every i in [0, n), possibly concurrently. Blocks
  /// until all iterations finished. The calling thread claims indices too.
  /// If any body throws, the first exception is rethrown here once the
  /// batch has drained.
  void run(std::size_t n, const std::function<void(std::size_t)>& body);

  [[nodiscard]] int threads() const { return threads_; }

  /// Process-wide pool used by par_for(). Sized once, at first use, from
  /// DLR_PARALLEL (falling back to default_workers()); per-call gating still
  /// happens in par_for, so flipping the env var off later disables fan-out.
  static ParallelFor& global();

 private:
  struct Batch;
  struct State;

  void ensure_started();
  static void worker_main(std::shared_ptr<State> st);
  static void drive(Batch& b);

  int threads_;
  std::shared_ptr<State> state_;
};

/// Run body over [0, n): on the global pool when DLR_PARALLEL enables it at
/// call time, serially otherwise. This is the only entry point scheme code
/// uses.
void par_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace dlr::service
