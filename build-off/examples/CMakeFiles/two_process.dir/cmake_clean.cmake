file(REMOVE_RECURSE
  "CMakeFiles/two_process.dir/two_process.cpp.o"
  "CMakeFiles/two_process.dir/two_process.cpp.o.d"
  "two_process"
  "two_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
