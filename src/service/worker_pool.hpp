// Fixed-size worker pool with a bounded job queue.
//
// submit() blocks when the queue is full (backpressure onto the connection
// reader threads rather than unbounded memory growth) and returns false once
// the pool is stopping. stop() lets queued jobs drain, then joins. Gauge
// svc.queue_depth tracks the backlog.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dlr::service {

class WorkerPool {
 public:
  explicit WorkerPool(int workers, std::size_t queue_cap = 1024);
  ~WorkerPool() { stop(); }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  enum class Submit : std::uint8_t { Ok = 0, Full = 1, Stopped = 2 };

  /// Enqueue a job; blocks while the queue is at capacity. Returns false
  /// (job dropped) if the pool is stopping.
  bool submit(std::function<void()> job);

  /// Non-blocking enqueue: a full queue returns Full immediately (job
  /// dropped) so readers can shed with Overloaded instead of stalling.
  [[nodiscard]] Submit try_submit(std::function<void()> job);

  /// Stop accepting jobs, drain the queue, join the workers. Idempotent.
  void stop();

  [[nodiscard]] int size() const { return static_cast<int>(threads_.size()); }
  [[nodiscard]] std::size_t queued() const;

 private:
  void run();

  mutable std::mutex mu_;
  std::mutex join_mu_;
  std::condition_variable cv_nonempty_;
  std::condition_variable cv_nonfull_;
  std::deque<std::function<void()>> queue_;
  std::size_t queue_cap_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace dlr::service
