// Telemetry layer tests: metric primitives, registry, nested-span linkage,
// JSONL export round-trip, and end-to-end instrumentation of a DistDec +
// Refresh run (nonzero group-op counters, phase spans, channel byte attrs,
// leakage gauges).
//
// The whole suite also builds with -DDLR_TELEMETRY=OFF; the hook-dependent
// assertions flip to their no-op expectations (zero counters, no spans), so
// CI can pin the disabled path.
#include <gtest/gtest.h>

#include <thread>

#include "group/counting_group.hpp"
#include "group/mock_group.hpp"
#include "leakage/budget.hpp"
#include "net/transcript.hpp"
#include "schemes/dlr.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace dlr {
namespace {

using telemetry::Registry;
using telemetry::Tracer;

void reset_telemetry() {
  Registry::global().reset();
  Tracer::global().reset();
}

// ---- metric primitives --------------------------------------------------------

TEST(TelemetryMetricsTest, CounterAddAndValue) {
  telemetry::Counter c;
  c.add();
  c.add(41);
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(c.value(), 42u);
#endif
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryMetricsTest, CounterIsThreadSafe) {
  telemetry::Counter c;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  for (auto& t : ts) t.join();
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(c.value(), 40000u);
#else
  EXPECT_EQ(c.value(), 0u);
#endif
}

TEST(TelemetryMetricsTest, GaugeSetAndAdd) {
  telemetry::Gauge g;
  g.set(10.5);
  g.add(-0.5);
#if DLR_TELEMETRY_ENABLED
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
#else
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
#endif
}

TEST(TelemetryMetricsTest, HistogramBucketsAndMoments) {
  telemetry::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);   // bucket 0: <= 1
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(5.0);   // bucket 1
  h.observe(999.0); // overflow bucket
#if DLR_TELEMETRY_ENABLED
  const auto row = h.row("t");
  ASSERT_EQ(row.buckets.size(), 4u);
  EXPECT_EQ(row.buckets[0], 2u);
  EXPECT_EQ(row.buckets[1], 1u);
  EXPECT_EQ(row.buckets[2], 0u);
  EXPECT_EQ(row.buckets[3], 1u);
  EXPECT_EQ(row.count, 4u);
  EXPECT_DOUBLE_EQ(row.sum, 1005.5);
#else
  EXPECT_EQ(h.count(), 0u);
#endif
}

TEST(TelemetryMetricsTest, RegistryFindOrCreateAndLabels) {
  reset_telemetry();
  auto& reg = Registry::global();
  auto& a = reg.counter("test.reg", {{"k", "v1"}});
  auto& b = reg.counter("test.reg", {{"k", "v2"}});
  a.add(3);
  b.add(4);
#if DLR_TELEMETRY_ENABLED
  EXPECT_NE(&a, &b);  // distinct label sets are distinct metrics
  EXPECT_EQ(&a, &reg.counter("test.reg", {{"k", "v1"}}));
  EXPECT_EQ(reg.counter_value("test.reg{k=v1}"), 3u);
  EXPECT_EQ(reg.counter_value("test.reg{k=v2}"), 4u);
  EXPECT_EQ(reg.sum_counters("test.reg"), 7u);
#else
  EXPECT_EQ(reg.sum_counters("test.reg"), 0u);
#endif
}

TEST(TelemetryMetricsTest, ResetZeroesButKeepsHandles) {
  reset_telemetry();
  auto& c = Registry::global().counter("test.reset");
  c.add(9);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(Registry::global().counter_value("test.reset"), 2u);
#endif
}

TEST(TelemetryMetricsTest, ScopedTimerObservesIntoHistogram) {
  telemetry::Histogram h;
  { telemetry::ScopedTimer t(h); }
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
#else
  EXPECT_EQ(h.count(), 0u);
#endif
}

// ---- tracer -------------------------------------------------------------------

TEST(TelemetryTraceTest, NestedSpansLinkToParents) {
  reset_telemetry();
  {
    telemetry::ScopedSpan outer("outer");
    outer.attr_add("x", 1);
    {
      telemetry::ScopedSpan inner("inner");
      telemetry::span_attr_add("y", 2);
      telemetry::span_attr_add("y", 3);  // accumulates on the same key
    }
  }
  const auto spans = Tracer::global().spans();
#if DLR_TELEMETRY_ENABLED
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner finishes first.
  EXPECT_EQ(spans[0].label, "inner");
  EXPECT_EQ(spans[1].label, "outer");
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_DOUBLE_EQ(spans[0].attr_or("y", 0), 5.0);
  EXPECT_DOUBLE_EQ(spans[1].attr_or("x", 0), 1.0);
  EXPECT_GE(spans[1].duration_ms(), spans[0].duration_ms());
#else
  EXPECT_TRUE(spans.empty());
#endif
}

TEST(TelemetryTraceTest, AttrOutsideSpanIsNoop) {
  reset_telemetry();
  telemetry::span_attr_add("ignored", 1);  // must not crash
  EXPECT_FALSE(Tracer::global().in_span());
  EXPECT_TRUE(Tracer::global().spans().empty());
}

// ---- export / import round-trip ----------------------------------------------

TEST(TelemetryExportTest, JsonlRoundTrip) {
  reset_telemetry();
  auto& reg = Registry::global();
  reg.counter("rt.count", {{"backend", "mock"}}).add(123);
  reg.gauge("rt.gauge").set(2.5);
  reg.histogram("rt.hist", {1.0, 2.0}).observe(1.5);
  {
    telemetry::ScopedSpan s("rt.span \"quoted\"");
    telemetry::span_attr_add("net.bytes", 77);
  }

  const std::string jsonl = telemetry::to_jsonl(telemetry::ExportMeta{"unit"},
                                                reg.snapshot(), Tracer::global().spans());
  const auto back = telemetry::import_jsonl(jsonl);
  EXPECT_EQ(back.run, "unit");
#if DLR_TELEMETRY_ENABLED
  EXPECT_EQ(back.counters.at("rt.count{backend=mock}"), 123u);
  EXPECT_DOUBLE_EQ(back.gauges.at("rt.gauge"), 2.5);
  EXPECT_EQ(back.histograms, 1u);
  ASSERT_EQ(back.spans.size(), 1u);
  EXPECT_EQ(back.spans[0].label, "rt.span \"quoted\"");
  EXPECT_DOUBLE_EQ(back.spans[0].attr_or("net.bytes", 0), 77.0);
#else
  EXPECT_TRUE(back.counters.empty());
  EXPECT_TRUE(back.spans.empty());
#endif
}

TEST(TelemetryExportTest, TextAndChromeFormatsAreWellFormed) {
  reset_telemetry();
  Registry::global().counter("fmt.c").add(1);
  { telemetry::ScopedSpan s("fmt.span"); }
  const auto snap = Registry::global().snapshot();
  const auto spans = Tracer::global().spans();
  const std::string text = telemetry::to_text(snap, spans);
  EXPECT_NE(text.find("telemetry summary"), std::string::npos);
  const std::string chrome = telemetry::to_chrome_trace(spans);
  EXPECT_EQ(chrome.front(), '{');
  EXPECT_EQ(chrome.back(), '}');
  EXPECT_NE(chrome.find("traceEvents"), std::string::npos);
}

// ---- end-to-end: an instrumented DistDec + Refresh run -------------------------

TEST(TelemetryEndToEndTest, DistDecAndRefreshProduceCountersSpansAndGauges) {
  reset_telemetry();
  using CG = group::CountingGroup<group::MockGroup>;
  CG gg(group::make_mock());
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  auto sys = schemes::DlrSystem<CG>::create(gg, prm, schemes::P1Mode::Plain, 1234);

  crypto::Rng rng(7);
  const auto m = gg.gt_random(rng);
  const auto c = schemes::DlrCore<CG>::enc(gg, sys.pk(), m, rng);

  net::Channel ch;
  EXPECT_TRUE(gg.gt_eq(sys.decrypt(c, ch), m));
  sys.refresh(ch);

  // Leakage budget gauges, charged as the CML challenger would.
  leakage::LeakageBudget b1(512, "P1");
  ASSERT_TRUE(b1.charge_period(100, 50));

  auto& reg = Registry::global();
  const auto spans = Tracer::global().spans();
#if DLR_TELEMETRY_ENABLED
  // Per-backend group-op counters are live in the registry.
  EXPECT_GT(reg.sum_counters("group.exp"), 0u);
  EXPECT_GT(reg.sum_counters("group.mul"), 0u);
  EXPECT_GT(reg.sum_counters("group.pairing"), 0u);
  const std::string backend = gg.inner().name();
  EXPECT_GT(reg.counter_value("group.exp{backend=" + backend + "}"), 0u);
  // OpCounts and the registry agree on the shared-everything totals.
  EXPECT_EQ(reg.counter_value("group.pairing{backend=" + backend + "}"),
            gg.counts().pairings);

  // Channel byte accounting: registry totals match the recorded transcript.
  EXPECT_EQ(reg.counter_value("net.msgs"), ch.transcript().count());
  EXPECT_EQ(reg.counter_value("net.bytes"), ch.transcript().total_bytes());

  // Phase spans exist, nest correctly, and carry the channel bytes.
  auto find = [&](const std::string& label) -> const telemetry::Span* {
    for (const auto& s : spans)
      if (s.label == label) return &s;
    return nullptr;
  };
  const auto* dec = find("dlr.dec");
  const auto* r1 = find("dec.round1");
  const auto* ref = find("dlr.refresh");
  ASSERT_NE(dec, nullptr);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(find("dec.round2"), nullptr);
  ASSERT_NE(find("ref.round1"), nullptr);
  ASSERT_NE(find("ref.round2"), nullptr);
  EXPECT_EQ(r1->parent, dec->id);
  EXPECT_GE(dec->duration_ms(), 0.0);
  EXPECT_GT(dec->attr_or("net.bytes", 0), 0.0);
  EXPECT_GT(ref->attr_or("net.bytes", 0), 0.0);
  EXPECT_DOUBLE_EQ(dec->attr_or("net.bytes", 0) + ref->attr_or("net.bytes", 0),
                   static_cast<double>(ch.transcript().total_bytes()));

  // Leakage gauges.
  EXPECT_DOUBLE_EQ(reg.gauge_value("leak.budget.P1"), 512.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("leak.bits.P1"), 150.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("leak.carry.P1"), 50.0);

  // And the whole run exports as JSONL in one piece.
  const auto back = telemetry::import_jsonl(telemetry::to_jsonl(
      telemetry::ExportMeta{"e2e"}, reg.snapshot(), spans));
  EXPECT_EQ(back.counters.at("net.bytes"), ch.transcript().total_bytes());
  EXPECT_FALSE(back.spans.empty());
#else
  // Disabled build: hooks are no-ops, the protocol still works (asserted
  // above), and nothing accumulates anywhere.
  EXPECT_EQ(reg.sum_counters("group.exp"), 0u);
  EXPECT_EQ(reg.counter_value("net.bytes"), 0u);
  EXPECT_TRUE(spans.empty());
  EXPECT_DOUBLE_EQ(reg.gauge_value("leak.bits.P1"), 0.0);
#endif
}

// ---- SecretSnapshot bit conventions (satellite of this PR) ---------------------

TEST(TelemetrySnapshotConventionTest, BitsIncludesIntermediatesEssentialDoesNot) {
  net::SecretSnapshot s{Bytes{1, 2}, Bytes{3}, Bytes{4, 5, 6}};
  EXPECT_EQ(s.bits(), 8u * 6);            // full leakage-function input
  EXPECT_EQ(s.essential_bits(), 8u * 3);  // rate denominator: share + coins
}

}  // namespace
}  // namespace dlr
