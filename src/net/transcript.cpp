#include "net/transcript.hpp"

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace dlr::net {

void Transcript::append(Message m) {
  total_ += m.body.size();
  msgs_.push_back(std::move(m));
}

Bytes Transcript::serialize() const {
  ByteWriter w;
  w.u64(msgs_.size());
  for (const auto& m : msgs_) {
    w.u8(static_cast<std::uint8_t>(m.from));
    w.str(m.label);
    w.blob(m.body);
  }
  return w.take();
}

void Transcript::clear() {
  msgs_.clear();
  total_ = 0;
}

const Bytes& Channel::send(DeviceId from, std::string label, Bytes body) {
  return record(from, std::move(label), std::move(body));
}

const Bytes& Channel::record(DeviceId from, std::string label, Bytes body) {
  // Registry totals plus per-phase attribution on whichever protocol span is
  // open (dlr.dec, dlr.refresh, ...). Handles resolve once per process.
  static telemetry::Counter& c_msgs = telemetry::Registry::global().counter("net.msgs");
  static telemetry::Counter& c_bytes = telemetry::Registry::global().counter("net.bytes");
  c_msgs.add();
  c_bytes.add(body.size());
  telemetry::span_attr_add("net.msgs", 1);
  telemetry::span_attr_add("net.bytes", static_cast<double>(body.size()));

  tr_.append(Message{from, std::move(label), std::move(body)});
  return tr_.messages().back().body;
}

Transcript Channel::take_transcript() {
  Transcript t = std::move(tr_);
  tr_ = Transcript{};
  return t;
}

}  // namespace dlr::net
