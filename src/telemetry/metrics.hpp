// Metrics registry -- pillar 1 of the telemetry layer.
//
// Thread-safe named counters, gauges, and fixed-bucket histograms behind a
// process-global registry, plus an RAII scoped timer. Metric handles returned
// by the registry are stable for the life of the process; Registry::reset()
// zeroes values in place and never invalidates a handle, so hot-path code may
// resolve a handle once and keep incrementing through it.
//
// The whole layer is compile-time removable: configure with
// -DDLR_TELEMETRY=OFF and every class below collapses to an inline no-op stub
// with the same API, so instrumented code compiles unchanged and the hot path
// carries zero instructions of overhead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifndef DLR_TELEMETRY_ENABLED
#define DLR_TELEMETRY_ENABLED 1
#endif

namespace dlr::telemetry {

/// Optional key=value qualifiers appended to a metric name, Prometheus-style:
/// counter("group.exp", {{"backend", "ss512"}}) lives in the registry under
/// the rendered name "group.exp{backend=ss512}".
///
/// Per-key metric convention (keystore subsystem, DESIGN.md §11): a metric
/// about one logical key of a multi-tenant store is the FAMILY name plus
/// {tenant=...,key=...} labels, e.g.
///
///   counter("ks.dec", {{"tenant", "acme"}, {"key", "mail"}})
///
/// never a flattened "ks.dec.acme.mail" name -- the label form keeps the flat
/// namespace enumerable (sum_counters("ks.dec") totals the family; the
/// Prometheus exposition renders proper label sets that aggregate server-side).
/// Cardinality discipline: per-key series are OPT-IN (KeyStore
/// Options::per_key_metrics, default off) because a 10k-key store would mint
/// 10k series per family; the always-on keystore metrics are the totals
/// (ks.keys, ks.refresh_backlog, ks.compactions, ...) plus these families for
/// small/test stores.
using Labels = std::vector<std::pair<std::string, std::string>>;

[[nodiscard]] std::string render_name(const std::string& name, const Labels& labels);

// Snapshot rows are plain data and exist in both build modes, so the
// exporters compile identically with telemetry off (they see empty
// snapshots).
struct CounterRow {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeRow {
  std::string name;
  double value = 0;
};
struct HistogramRow {
  std::string name;
  std::vector<double> bounds;          // inclusive upper bounds; +inf implicit
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
  double sum = 0;
  std::uint64_t count = 0;
};
struct Snapshot {
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;
};

/// Default histogram bounds for millisecond durations (log-ish spacing).
[[nodiscard]] std::vector<double> default_time_bounds_ms();

#if DLR_TELEMETRY_ENABLED

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

class Histogram {
 public:
  /// `bounds` are inclusive upper bucket bounds in ascending order; an
  /// implicit +inf bucket catches the rest. Empty = default_time_bounds_ms().
  explicit Histogram(std::vector<double> bounds = {});

  void observe(double v);
  [[nodiscard]] HistogramRow row(std::string name = {}) const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  void reset();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> buckets_;
  double sum_ = 0;
  std::uint64_t count_ = 0;
};

class Registry {
 public:
  [[nodiscard]] static Registry& global();

  /// Find-or-create. Handles are stable; safe to cache across reset().
  [[nodiscard]] Counter& counter(const std::string& name, const Labels& labels = {});
  [[nodiscard]] Gauge& gauge(const std::string& name, const Labels& labels = {});
  [[nodiscard]] Histogram& histogram(const std::string& name, std::vector<double> bounds = {},
                                     const Labels& labels = {});

  [[nodiscard]] Snapshot snapshot() const;
  /// Value of an exact rendered name; 0 / 0.0 if absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& rendered) const;
  [[nodiscard]] double gauge_value(const std::string& rendered) const;
  /// Sum of every counter whose rendered name starts with `prefix` (so
  /// sum_counters("group.exp") totals all backends' labeled variants).
  [[nodiscard]] std::uint64_t sum_counters(const std::string& prefix) const;
  /// Gauge analogue of sum_counters: sums every gauge in the prefix family.
  [[nodiscard]] double sum_gauges(const std::string& prefix) const;
  /// Number of registered counter series under `prefix` -- the cardinality
  /// check for labeled families (a per-key family gone rogue shows up here).
  [[nodiscard]] std::size_t count_series(const std::string& prefix) const;

  /// Zero every metric in place. Registrations (and cached handles) survive.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII wall-clock timer: records elapsed milliseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(&h), t0_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto t1 = std::chrono::steady_clock::now();
    h_->observe(std::chrono::duration<double, std::milli>(t1 - t0_).count());
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

#else  // !DLR_TELEMETRY_ENABLED -- no-op stubs, identical API

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(double) {}
  void add(double) {}
  [[nodiscard]] double value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> = {}) {}
  void observe(double) {}
  [[nodiscard]] HistogramRow row(std::string = {}) const { return {}; }
  [[nodiscard]] std::uint64_t count() const { return 0; }
  [[nodiscard]] double sum() const { return 0; }
  void reset() {}
};

class Registry {
 public:
  [[nodiscard]] static Registry& global() {
    static Registry r;
    return r;
  }
  [[nodiscard]] Counter& counter(const std::string&, const Labels& = {}) {
    static Counter c;
    return c;
  }
  [[nodiscard]] Gauge& gauge(const std::string&, const Labels& = {}) {
    static Gauge g;
    return g;
  }
  [[nodiscard]] Histogram& histogram(const std::string&, std::vector<double> = {},
                                     const Labels& = {}) {
    static Histogram h;
    return h;
  }
  [[nodiscard]] Snapshot snapshot() const { return {}; }
  [[nodiscard]] std::uint64_t counter_value(const std::string&) const { return 0; }
  [[nodiscard]] double gauge_value(const std::string&) const { return 0; }
  [[nodiscard]] std::uint64_t sum_counters(const std::string&) const { return 0; }
  [[nodiscard]] double sum_gauges(const std::string&) const { return 0; }
  [[nodiscard]] std::size_t count_series(const std::string&) const { return 0; }
  void reset() {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif  // DLR_TELEMETRY_ENABLED

}  // namespace dlr::telemetry
