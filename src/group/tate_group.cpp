#include "group/tate_group.hpp"

namespace dlr::pairing {

namespace {

// Canonical PBC "a.param": q = 512-bit prime, r = 160-bit prime, q + 1 = r*h,
// q == 3 (mod 4). Verified prime/structure in tests (pairing_params_test.cpp).
const mpint::UInt<8> kQ512 = mpint::UInt<8>::from_limbs(
    {0xcf6230c28e284d97ull, 0x2539e8ff9b4f30a3ull, 0x459e54dab7ba5be9ull, 0xa7afdaf9b049744aull,
     0x28d1f80010940622ull, 0x364bb946f5ed8396ull, 0x6edef8ce96e7217eull, 0xa7a73868e95fba88ull});
const mpint::UInt<3> kR512 =
    mpint::UInt<3>::from_limbs({0x0000000000000001ull, 0x0000080000000000ull, 0x0000000080000000ull});
const Cofactor kH512 = Cofactor::from_limbs({0xcf6230c28e284d98ull, 0xe2cd28ff9b4f30a3ull,
                                             0x85050f93a6344777ull, 0x37cc83915f505f0eull,
                                             0xd2bf601bf6b0d471ull, 0x000000014f4e70d1ull});

// Reproduction-sized type-A parameters generated for this repo (seeded search;
// see DESIGN.md): q = 255-bit prime == 3 mod 4, r = 64-bit prime, q + 1 = r*h.
const mpint::UInt<4> kQ256 = mpint::UInt<4>::from_limbs(
    {0xe3645773fff4fddbull, 0x6279bf2daf80d346ull, 0x034181081bf01ba0ull, 0x76650863ad001749ull});
const mpint::UInt<1> kR256 = mpint::UInt<1>::from_limbs({0xbbfb8ce90d980297ull});
const Cofactor kH256 = Cofactor::from_limbs(
    {0x5afe83aec7869884ull, 0x58fea97080009664ull, 0xa13bb0c25207dd81ull});

// High-margin preset generated for this repo (seeded search, see DESIGN.md):
// q = 1024-bit prime == 3 mod 4, r = 256-bit prime, q + 1 = r*h.
const mpint::UInt<16> kQ1024 = mpint::UInt<16>::from_limbs(
    {0x7268b85b6946775bull, 0x5fb7bb092775e7f9ull, 0x90e949152920d4fdull, 0xb9adcd27b99eb7b3ull,
     0x900d818d4aab0dcaull, 0x00dc8acfc29a930full, 0xa1350b68291f4211ull, 0xe801628b90cb1574ull,
     0xe49df2dfd366d53cull, 0xb0aa2d7ee70784c6ull, 0x868f1007deda8912ull, 0x440afb417411ec52ull,
     0x5a2206921bb54b03ull, 0x6725c0268de36e99ull, 0xe2315e308feeb6cdull, 0xa6ca33de68b1cb69ull});
const mpint::UInt<4> kR1024 = mpint::UInt<4>::from_limbs(
    {0x759d56380983c043ull, 0x3306ee2fc3ede7dcull, 0x40874977197fc09bull, 0xd22199a5b69bdaabull});
const Cofactor kH1024 = Cofactor::from_limbs(
    {0x3f078be883423374ull, 0x3fd38ff90e3efe73ull, 0xcb07748f594f09dbull, 0x5f3442693b2a9f86ull,
     0x360d4c55d60d7a5dull, 0x353784679fb2386dull, 0xba4d7078af4c8355ull, 0xedf349343e987af5ull,
     0x7b9901dad83e7660ull, 0xf5561ad0a22006b8ull, 0x98796b4a9fa39319ull, 0xcb32a162839d89beull});

}  // namespace

std::shared_ptr<const PairingCtx<16, 4>> make_ss1024() {
  static const auto ctx =
      std::make_shared<const PairingCtx<16, 4>>(kQ1024, kR1024, kH1024, "ss1024");
  return ctx;
}

std::shared_ptr<const PairingCtx<8, 3>> make_ss512() {
  static const auto ctx = std::make_shared<const PairingCtx<8, 3>>(kQ512, kR512, kH512, "ss512");
  return ctx;
}

std::shared_ptr<const PairingCtx<4, 1>> make_ss256() {
  static const auto ctx = std::make_shared<const PairingCtx<4, 1>>(kQ256, kR256, kH256, "ss256");
  return ctx;
}

}  // namespace dlr::pairing

namespace dlr::group {

template class TateGroup<8, 3>;
template class TateGroup<4, 1>;
template class TateGroup<16, 4>;

TateSS512 make_tate_ss512() { return TateSS512(pairing::make_ss512()); }
TateSS256 make_tate_ss256() { return TateSS256(pairing::make_ss256()); }
TateSS1024 make_tate_ss1024() { return TateSS1024(pairing::make_ss1024()); }

}  // namespace dlr::group
