file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_efficiency.dir/bench_t1_efficiency.cpp.o"
  "CMakeFiles/bench_t1_efficiency.dir/bench_t1_efficiency.cpp.o.d"
  "bench_t1_efficiency"
  "bench_t1_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
