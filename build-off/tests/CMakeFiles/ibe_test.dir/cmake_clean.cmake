file(REMOVE_RECURSE
  "CMakeFiles/ibe_test.dir/ibe_test.cpp.o"
  "CMakeFiles/ibe_test.dir/ibe_test.cpp.o.d"
  "ibe_test"
  "ibe_test.pdb"
  "ibe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
