// Leakage functions and per-device budget accounting (Definition 3.2).
//
// A leakage function is an arbitrary polynomial-time function of the secret
// memory and the public information; the only restriction is length
// shrinking: the bits leaked *while a given share is in memory* -- i.e.
// |h_i^t| + |h_i^{(t-1),Ref}| -- must not exceed the bound b_i. The budget
// tracker implements exactly the challenger's bookkeeping:
//
//   L_i^{t+1} <- |l_i^{t,Ref}|          (refresh leakage carries over, since
//                                        the *next* share was already in
//                                        memory during this refresh)
//   abort unless L_i^t + |l_i^t| + |l_i^{t,Ref}| <= b_i
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>

#include "crypto/bytes.hpp"
#include "telemetry/metrics.hpp"

namespace dlr::leakage {

/// h(secret_memory, pub) -> leaked bits (packed; bit length given separately).
using LeakageFn = std::function<Bytes(const Bytes& secret, const Bytes& pub)>;

struct LeakageOutput {
  Bytes data;
  std::size_t bits = 0;
};

/// Evaluate a leakage function and clamp/validate its output length.
LeakageOutput eval_leakage(const LeakageFn& fn, const Bytes& secret, const Bytes& pub,
                           std::size_t max_bits);

/// Per-device budget tracker for the CML game.
///
/// A non-empty `device` label ("P1", "P2", ...) additionally publishes the
/// tracker's state as telemetry gauges after every charge:
///   leak.budget.<device>  -- the per-period bound b_i (constant)
///   leak.bits.<device>    -- lifetime bits leaked so far (unbounded)
///   leak.carry.<device>   -- bits carried into the current period
/// Gauges describe the most recent game when several run in one process.
class LeakageBudget {
 public:
  explicit LeakageBudget(std::size_t bound_bits, const std::string& device = {})
      : bound_(bound_bits) {
    if (!device.empty()) {
      auto& reg = telemetry::Registry::global();
      g_bits_ = &reg.gauge("leak.bits." + device);
      g_carry_ = &reg.gauge("leak.carry." + device);
      g_budget_ = &reg.gauge("leak.budget." + device);
      g_budget_->set(static_cast<double>(bound_));
      publish();
    }
  }

  [[nodiscard]] std::size_t bound_bits() const { return bound_; }
  [[nodiscard]] std::size_t carried_bits() const { return carry_; }

  /// Charge one time period's pair (|l^t|, |l^{t,Ref}|). Returns false (and
  /// charges nothing) if the challenger must abort.
  [[nodiscard]] bool charge_period(std::size_t normal_bits, std::size_t refresh_bits) {
    if (carry_ + normal_bits + refresh_bits > bound_) return false;
    carry_ = refresh_bits;  // the refresh leakage saw the next share too
    total_ += normal_bits + refresh_bits;
    publish();
    return true;
  }

  /// Leakage on key generation (charged once, carries into period 0).
  [[nodiscard]] bool charge_keygen(std::size_t bits, std::size_t keygen_bound) {
    if (bits > keygen_bound) return false;
    carry_ = bits;
    total_ += bits;
    publish();
    return true;
  }

  /// Total bits leaked over the whole game -- unbounded by design; this is
  /// what "continual" means.
  [[nodiscard]] std::size_t lifetime_bits() const { return total_; }

 private:
  void publish() {
    if (!g_bits_) return;
    g_bits_->set(static_cast<double>(total_));
    g_carry_->set(static_cast<double>(carry_));
  }

  std::size_t bound_;
  std::size_t carry_ = 0;
  std::size_t total_ = 0;
  telemetry::Gauge* g_bits_ = nullptr;
  telemetry::Gauge* g_carry_ = nullptr;
  telemetry::Gauge* g_budget_ = nullptr;
};

/// Entropy-shrinking accounting (paper footnote 1 / Naor-Segev [32]): instead
/// of bounding the leakage *length*, bound the drop in average min-entropy of
/// the share conditioned on the leakage. Strictly more permissive than the
/// length bound -- a function may emit arbitrarily many bits as long as it
/// declares (and, in a proof, certifies) a small entropy loss; e.g. a public
/// constant-padded window leaks thousands of bits of *length* but only the
/// window's worth of *entropy*. The charge discipline (carry across refresh)
/// is identical to Definition 3.2's.
class EntropyBudget {
 public:
  explicit EntropyBudget(std::size_t bound_bits, const std::string& device = {})
      : inner_(bound_bits, device) {}

  /// Charge declared entropy losses (in bits) for one period. Output length
  /// is deliberately NOT examined.
  [[nodiscard]] bool charge_period(std::size_t normal_entropy_loss,
                                   std::size_t refresh_entropy_loss) {
    return inner_.charge_period(normal_entropy_loss, refresh_entropy_loss);
  }

  [[nodiscard]] std::size_t bound_bits() const { return inner_.bound_bits(); }
  [[nodiscard]] std::size_t carried_bits() const { return inner_.carried_bits(); }
  [[nodiscard]] std::size_t lifetime_bits() const { return inner_.lifetime_bits(); }

 private:
  LeakageBudget inner_;
};

// ---- common leakage-function builders ----------------------------------------

/// Leak `bits` physical bits of the secret memory starting at bit `offset`
/// (wrapping). The workhorse of the share-accumulation attacks.
LeakageFn window_bits(std::size_t offset, std::size_t bits);

/// Leak nothing (the honest-user baseline).
LeakageFn no_leakage();

/// Leak H(secret) truncated to `bits` -- a "computed" leakage showing the
/// model is not restricted to physical probing.
LeakageFn hashed_bits(std::size_t bits);

/// Extract a bit window from a byte buffer (bit offset wraps around).
Bytes extract_bits(const Bytes& src, std::size_t bit_offset, std::size_t nbits);

}  // namespace dlr::leakage
