// Segmented append-only journal: the persistence layer that scales the PR 4
// single-record Journal to 10k+ keys (DESIGN.md §11).
//
// A SegmentJournal owns one directory of segment files `seg-<16 hex>.log`.
// Every state change of every key is one appended record:
//
//   "DLRS" | u8 version | u32 crc32(payload) | u32 payload_len | payload
//   payload = u64 seq | str tenant | str key | u8 tombstone | blob state
//
// `seq` is a journal-global monotonic counter; recovery replays every record
// of every segment and keeps, per (tenant, key), the record with the highest
// seq ("latest-seq-wins"). That single rule gives crash-safety everywhere:
//
//   - A torn tail (partial final record after a crash mid-append) fails its
//     CRC/length check; the scan stops at the tear for that segment and keeps
//     everything before it. Counted in ks.journal.torn_tails.
//   - Compaction rewrites the live set into one fresh segment with their
//     ORIGINAL seqs, so any crash that leaves both the compacted segment and
//     the old ones on disk (rename done, unlink not) recovers to the exact
//     same map -- duplicates resolve to the same winner.
//   - Stray `.tmp` files (crash before rename) are ignored by recovery and
//     deleted on the next open.
//
// Compaction (tmp write -> fsync -> rename -> dir fsync -> unlink old) runs
// inline on maybe_compact() -- the keystore's scheduler decides when -- and
// fires `crash_hook("compact.<step>")` after each step so the fault matrix
// in tests can kill the process (by throwing) at every point and prove zero
// lost shares.
//
// Thread-safe behind one internal mutex. Writes fsync per append by default;
// bulk loaders (bench provisioning) set fsync_each=false and call flush().
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/bytes.hpp"
#include "keystore/key_id.hpp"

namespace dlr::keystore {

class SegmentJournal {
 public:
  struct Options {
    std::size_t segment_bytes = 1 << 20;   // roll the active segment past this
    std::size_t compact_min_segments = 4;  // maybe_compact() triggers at this many sealed
    bool fsync_each = true;                // false = durability deferred to flush()
  };

  struct RecoveryStats {
    std::size_t segments_scanned = 0;
    std::size_t records = 0;
    std::size_t torn_tails = 0;  // segments whose scan stopped at a bad record
    std::size_t tmp_removed = 0;
  };

  SegmentJournal() = default;  // detached: every method is a no-op
  /// Opens `dir` (created if absent), scans all segments, builds the live
  /// map. Throws std::runtime_error on I/O failure.
  SegmentJournal(std::string dir, Options opt);
  explicit SegmentJournal(std::string dir);  // default Options
  ~SegmentJournal();

  SegmentJournal(const SegmentJournal&) = delete;
  SegmentJournal& operator=(const SegmentJournal&) = delete;

  [[nodiscard]] bool attached() const { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Durably append the latest state of `id`. Throws on I/O failure (a
  /// keystore that cannot journal must not mutate its share).
  void append(const KeyId& id, const Bytes& state);

  /// Append a deletion marker; the key is gone after recovery.
  void tombstone(const KeyId& id);

  /// fsync the active segment (meaningful with fsync_each=false).
  void flush();

  /// Run compaction if the sealed-segment count has reached the threshold.
  /// Returns true if a compaction ran. Exceptions from the crash hook (or
  /// real I/O errors) propagate; the on-disk state is recoverable at every
  /// step, the in-memory object is not -- reopen a fresh SegmentJournal.
  bool maybe_compact();
  /// Unconditional compaction (also folds the active segment in).
  void compact();

  /// The recovered live map (states present at open, tombstones resolved).
  /// Moves the copy out; call once, right after construction.
  [[nodiscard]] std::unordered_map<KeyId, Bytes, KeyIdHash> take_recovered();

  [[nodiscard]] RecoveryStats recovery_stats() const;
  [[nodiscard]] std::size_t live_count() const;
  [[nodiscard]] std::size_t segment_count() const;  // sealed + active
  [[nodiscard]] std::uint64_t compactions() const;

  /// Test hook: called as `hook("compact.<step>")` AFTER each compaction
  /// step completes (tmp_open, tmp_write, tmp_fsync, rename, dir_fsync,
  /// unlink, done). A throwing hook simulates a crash at that point.
  void set_crash_hook(std::function<void(const char*)> hook);

 private:
  struct Live {
    std::uint64_t seq = 0;
    bool tombstone = false;
    Bytes state;
  };

  void open_active_locked(std::uint64_t id);
  void roll_if_needed_locked();
  void append_locked(const KeyId& id, const Bytes& state, bool tomb);
  void compact_locked();
  void fire_hook(const char* step);
  [[nodiscard]] std::string seg_path(std::uint64_t id) const;

  std::string dir_;
  Options opt_;
  mutable std::mutex mu_;

  std::unordered_map<KeyId, Live, KeyIdHash> live_;
  std::vector<std::uint64_t> sealed_;  // sealed segment ids, ascending
  std::uint64_t active_id_ = 0;
  int active_fd_ = -1;
  std::size_t active_bytes_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t compactions_ = 0;
  RecoveryStats recovery_;
  std::unordered_map<KeyId, Bytes, KeyIdHash> recovered_;
  std::function<void(const char*)> crash_hook_;
};

inline SegmentJournal::SegmentJournal(std::string dir)
    : SegmentJournal(std::move(dir), Options{}) {}

}  // namespace dlr::keystore
