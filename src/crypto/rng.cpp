#include "crypto/rng.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace dlr::crypto {

Rng::Rng(std::uint64_t seed) {
  ByteWriter w;
  w.str("dlr.rng.seed64");
  w.u64(seed);
  const auto d = Sha256::hash(w.bytes());
  std::memcpy(key_.data(), d.data(), 32);
}

Rng::Rng(std::span<const std::uint8_t> seed32) {
  ByteWriter w;
  w.str("dlr.rng.seed");
  w.raw(seed32);
  const auto d = Sha256::hash(w.bytes());
  std::memcpy(key_.data(), d.data(), 32);
}

Rng Rng::from_os_entropy() {
  std::array<std::uint8_t, 32> seed{};
  if (std::FILE* f = std::fopen("/dev/urandom", "rb")) {
    const std::size_t got = std::fread(seed.data(), 1, seed.size(), f);
    std::fclose(f);
    if (got == seed.size()) return Rng(std::span<const std::uint8_t>(seed));
  }
  const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  return Rng(static_cast<std::uint64_t>(now));
}

Rng Rng::fork(const std::string& label) {
  ByteWriter w;
  w.str("dlr.rng.fork");
  w.raw(std::span<const std::uint8_t>(key_));
  w.str(label);
  const auto d = Sha256::hash(w.bytes());
  Rng child(static_cast<std::uint64_t>(0));
  std::memcpy(child.key_.data(), d.data(), 32);
  child.block_ = 0;
  child.avail_ = 0;
  // Ratchet our own key so fork points are not recoverable later.
  const auto self = tagged_hash("dlr.rng.ratchet", std::span<const std::uint8_t>(key_));
  std::memcpy(key_.data(), self.data(), 32);
  block_ = 0;
  avail_ = 0;
  return child;
}

void Rng::refill() {
  static constexpr std::array<std::uint8_t, 12> kNonce = {'d', 'l', 'r', '.', 'r', 'n',
                                                          'g', 0,   0,   0,  0,   0};
  ChaCha20 cc{std::span<const std::uint8_t>(key_), std::span<const std::uint8_t>(kNonce)};
  buf_ = cc.block(static_cast<std::uint32_t>(block_));
  // Fold the high half of the block counter into the low nonce bytes via the
  // key when the 32-bit block counter wraps (practically unreachable).
  ++block_;
  avail_ = buf_.size();
}

void Rng::fill(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (avail_ == 0) refill();
    const std::size_t take = std::min(avail_, out.size() - off);
    std::memcpy(out.data() + off, buf_.data() + (buf_.size() - avail_), take);
    avail_ -= take;
    off += take;
  }
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

std::uint64_t Rng::u64() {
  std::array<std::uint8_t, 8> b;
  fill(b);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::below: zero bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
  for (;;) {
    const std::uint64_t v = u64();
    if (v < limit) return v % bound;
  }
}

}  // namespace dlr::crypto
