file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_reuse_ablation.dir/bench_f9_reuse_ablation.cpp.o"
  "CMakeFiles/bench_f9_reuse_ablation.dir/bench_f9_reuse_ablation.cpp.o.d"
  "bench_f9_reuse_ablation"
  "bench_f9_reuse_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_reuse_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
