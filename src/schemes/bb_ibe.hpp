// Boneh-Boyen IBE [5], the bit-by-bit-identity variant the paper builds on
// (Section 4.2):
//
//   pp  = (g, g1 = g^alpha, g2, U = (u_{j,0}, u_{j,1})_{j in [n_id]})
//   msk = g2^alpha
//   skID = (g^{r_1}, ..., g^{r_n}, M = g2^alpha * prod_j u_{j,b_j}^{r_j})
//          where H(ID) = (b_1..b_n)
//   Enc(ID, m in GT) = (g^t, (u_{j,b_j}^t)_j, m * e(g1,g2)^t)
//   Dec: m = B * prod_j e(g^{r_j}, C_j) / e(A, M)
//
// This is both (a) the substrate whose master key the distributed schemes
// share, and (b) the single-processor IBE baseline for the T1/F7 experiments.
#pragma once

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "group/bilinear.hpp"

namespace dlr::schemes {

template <group::BilinearGroup GG>
class BbIbe {
 public:
  using Scalar = typename GG::Scalar;
  using G = typename GG::G;
  using GT = typename GG::GT;

  struct PublicParams {
    G g{};
    G g1{};  // g^alpha
    G g2{};
    std::vector<std::array<G, 2>> u;  // n_id rows
    GT z{};                           // e(g1, g2), cached for encryption
  };

  struct MasterKey {
    G msk{};  // g2^alpha
  };

  struct IdentityKey {
    std::vector<G> r;  // g^{r_j}
    G m{};             // g2^alpha * prod u^{r_j}
  };

  struct Ciphertext {
    G a{};              // g^t
    std::vector<G> c;   // u_{j,b_j}^t
    GT b{};             // m * z^t
  };

  BbIbe(GG gg, std::size_t id_bits) : gg_(std::move(gg)), id_bits_(id_bits) {
    if (id_bits_ == 0 || id_bits_ > 256)
      throw std::invalid_argument("BbIbe: id_bits must be in [1, 256]");
  }

  [[nodiscard]] const GG& group() const { return gg_; }
  [[nodiscard]] std::size_t id_bits() const { return id_bits_; }

  /// Hash an identity string to its bit vector b_1..b_n.
  [[nodiscard]] std::vector<bool> hash_id(const std::string& id) const {
    const auto d = crypto::tagged_hash("dlr.bbibe.id", Bytes(id.begin(), id.end()));
    std::vector<bool> bits(id_bits_);
    for (std::size_t j = 0; j < id_bits_; ++j) bits[j] = (d[j / 8] >> (j % 8)) & 1;
    return bits;
  }

  std::pair<PublicParams, MasterKey> setup(crypto::Rng& rng) const {
    PublicParams pp;
    pp.g = gg_.g_gen();
    const Scalar alpha = gg_.sc_random(rng);
    pp.g1 = gg_.g_pow(pp.g, alpha);
    pp.g2 = gg_.g_random(rng);
    pp.u.reserve(id_bits_);
    for (std::size_t j = 0; j < id_bits_; ++j)
      pp.u.push_back({gg_.g_random(rng), gg_.g_random(rng)});
    pp.z = gg_.pair(pp.g1, pp.g2);
    return {std::move(pp), MasterKey{gg_.g_pow(pp.g2, alpha)}};
  }

  IdentityKey extract(const PublicParams& pp, const MasterKey& mk, const std::string& id,
                      crypto::Rng& rng) const {
    const auto bits = hash_id(id);
    IdentityKey sk;
    sk.r.reserve(id_bits_);
    std::vector<Scalar> rs;
    std::vector<G> bases;
    rs.reserve(id_bits_);
    bases.reserve(id_bits_);
    for (std::size_t j = 0; j < id_bits_; ++j) {
      rs.push_back(gg_.sc_random(rng));
      sk.r.push_back(gg_.g_pow(pp.g, rs.back()));
      bases.push_back(pp.u[j][bits[j] ? 1 : 0]);
    }
    sk.m = gg_.g_mul(mk.msk, gg_.g_multi_pow(bases, rs));
    return sk;
  }

  Ciphertext enc(const PublicParams& pp, const std::string& id, const GT& m,
                 crypto::Rng& rng) const {
    const auto bits = hash_id(id);
    const Scalar t = gg_.sc_random(rng);
    Ciphertext ct;
    ct.a = gg_.g_pow(pp.g, t);
    ct.c.reserve(id_bits_);
    for (std::size_t j = 0; j < id_bits_; ++j)
      ct.c.push_back(gg_.g_pow(pp.u[j][bits[j] ? 1 : 0], t));
    ct.b = gg_.gt_mul(m, gg_.gt_pow(pp.z, t));
    return ct;
  }

  [[nodiscard]] GT dec(const IdentityKey& sk, const Ciphertext& ct) const {
    if (ct.c.size() != id_bits_ || sk.r.size() != id_bits_)
      throw std::invalid_argument("BbIbe::dec: wrong component count");
    // B * prod e(R_j, C_j) / e(A, M)
    GT acc = ct.b;
    for (std::size_t j = 0; j < id_bits_; ++j)
      acc = gg_.gt_mul(acc, gg_.pair(sk.r[j], ct.c[j]));
    return gg_.gt_mul(acc, gg_.gt_inv(gg_.pair(ct.a, sk.m)));
  }

  /// The correction factor prod_j e(R_j, C_j) -- computed by P1 alone in the
  /// distributed decryption (it owns the R_j).
  [[nodiscard]] GT pairing_correction(const std::vector<G>& r,
                                      const std::vector<G>& c) const {
    if (r.size() != id_bits_ || c.size() != id_bits_)
      throw std::invalid_argument("BbIbe::pairing_correction: wrong size");
    GT acc = gg_.gt_id();
    for (std::size_t j = 0; j < id_bits_; ++j) acc = gg_.gt_mul(acc, gg_.pair(r[j], c[j]));
    return acc;
  }

  // ---- serialization ------------------------------------------------------------
  void ser_ciphertext(ByteWriter& w, const Ciphertext& ct) const {
    gg_.g_ser(w, ct.a);
    for (const auto& cj : ct.c) gg_.g_ser(w, cj);
    gg_.gt_ser(w, ct.b);
  }
  [[nodiscard]] Ciphertext deser_ciphertext(ByteReader& r) const {
    Ciphertext ct;
    ct.a = gg_.g_deser(r);
    ct.c.reserve(id_bits_);
    for (std::size_t j = 0; j < id_bits_; ++j) ct.c.push_back(gg_.g_deser(r));
    ct.b = gg_.gt_deser(r);
    return ct;
  }
  [[nodiscard]] std::size_t ciphertext_bytes() const {
    return (1 + id_bits_) * gg_.g_bytes() + gg_.gt_bytes();
  }

 private:
  GG gg_;
  std::size_t id_bits_;
};

}  // namespace dlr::schemes
