// Service runtime: epoch admission state machine, the end-to-end decryption
// service over real sockets, refresh/decrypt interleaving under
// multi-threaded load (the continual-leakage deployment loop of §1.1/§4.4 run
// as a server workload), the two-phase epoch commit with its journaled
// crash/reconnect recovery, and the deterministic fault-injection chaos soak.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <thread>
#include <vector>

#include "crypto/sha256.hpp"
#include "group/mock_group.hpp"
#include "service/client.hpp"
#include "service/journal.hpp"
#include "service/p2_server.hpp"
#include "telemetry/events.hpp"
#include "transport/fault.hpp"

namespace dlr::service {
namespace {

using group::make_mock;
using group::MockGroup;
using Core = schemes::DlrCore<MockGroup>;

schemes::DlrParams mock_params() {
  const auto gg = make_mock();
  return schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

/// Fresh unique directory under the test tmpdir (journal isolation).
std::string make_state_dir() {
  std::string tmpl = ::testing::TempDir() + "dlr_svc_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) throw std::runtime_error("mkdtemp failed");
  return tmpl;
}

// ---- epoch coordinator --------------------------------------------------------

TEST(EpochCoordinatorTest, StaleEpochRejectedBeforeTouchingTheShare) {
  EpochCoordinator c(3);
  EXPECT_EQ(c.begin_decrypt(2), EpochCoordinator::Admit::Stale);
  EXPECT_EQ(c.begin_decrypt(4), EpochCoordinator::Admit::Stale);
  EXPECT_EQ(c.inflight(), 0u);
  EXPECT_EQ(c.begin_decrypt(3), EpochCoordinator::Admit::Accepted);
  EXPECT_EQ(c.inflight(), 1u);
  c.end_decrypt();
  EXPECT_EQ(c.inflight(), 0u);
}

TEST(EpochCoordinatorTest, RefreshDrainsInflightAndRejectsNewDecrypts) {
  EpochCoordinator c;
  ASSERT_EQ(c.begin_decrypt(0), EpochCoordinator::Admit::Accepted);

  std::atomic<bool> refreshed{false};
  std::thread refresher([&] {
    ASSERT_EQ(c.begin_refresh(0), EpochCoordinator::Admit::Accepted);
    refreshed.store(true);
    c.finish_refresh(true);
  });

  // Wait until the refresher is draining: new decryptions bounce as Draining.
  // (Polls that land before draining_ is set are Accepted and must be paired
  // with end_decrypt, or the drain we are waiting for would never finish.)
  for (;;) {
    const auto admit = c.begin_decrypt(0);
    if (admit == EpochCoordinator::Admit::Draining) break;
    ASSERT_EQ(admit, EpochCoordinator::Admit::Accepted);
    c.end_decrypt();
    std::this_thread::yield();
  }
  EXPECT_FALSE(refreshed.load()) << "refresh ran while a decryption was in flight";

  c.end_decrypt();  // drain completes; refresher proceeds
  refresher.join();
  EXPECT_TRUE(refreshed.load());
  EXPECT_EQ(c.epoch(), 1u);
  EXPECT_EQ(c.begin_decrypt(1), EpochCoordinator::Admit::Accepted);
  c.end_decrypt();
}

TEST(EpochCoordinatorTest, FailedRefreshKeepsTheEpoch) {
  EpochCoordinator c;
  ASSERT_EQ(c.begin_refresh(0), EpochCoordinator::Admit::Accepted);
  c.finish_refresh(false);
  EXPECT_EQ(c.epoch(), 0u);
  ASSERT_EQ(c.begin_refresh(0), EpochCoordinator::Admit::Accepted);
  c.finish_refresh(true);
  EXPECT_EQ(c.epoch(), 1u);
}

TEST(EpochCoordinatorTest, ConcurrentRefreshesSerialize) {
  EpochCoordinator c;
  constexpr int kRefreshers = 4;
  std::vector<std::thread> ts;
  std::atomic<int> accepted{0};
  for (int i = 0; i < kRefreshers; ++i)
    ts.emplace_back([&] {
      // Each claims whatever the current epoch is; losers see Stale.
      for (;;) {
        const auto e = c.epoch();
        const auto admit = c.begin_refresh(e);
        if (admit == EpochCoordinator::Admit::Accepted) {
          accepted.fetch_add(1);
          c.finish_refresh(true);
          return;
        }
        // Stale: epoch moved between read and admission; retry once more.
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(accepted.load(), kRefreshers);
  EXPECT_EQ(c.epoch(), static_cast<std::uint64_t>(kRefreshers));
}

// ---- end-to-end service -------------------------------------------------------

struct Service {
  MockGroup gg = make_mock();
  schemes::DlrParams prm = mock_params();
  Core::KeyGenResult kg;
  std::unique_ptr<P2Server<MockGroup>> server;
  std::shared_ptr<P1Runtime<MockGroup>> p1;
  std::uint64_t seed;
  std::string server_dir;  // empty = volatile server

  explicit Service(int workers = 4, std::uint64_t seed_ = 7000,
                   std::string server_dir_ = {}, std::string p1_dir = {},
                   bool pipeline = true)
      : seed(seed_), server_dir(std::move(server_dir_)) {
    crypto::Rng rng(seed);
    kg = Core::gen(gg, prm, rng);
    typename P2Server<MockGroup>::Options opt;
    opt.workers = workers;
    opt.state_dir = server_dir;
    opt.pipeline = pipeline;
    server = std::make_unique<P2Server<MockGroup>>(gg, prm, kg.sk2, crypto::Rng(seed + 1),
                                                   opt);
    server->start();
    p1 = std::make_shared<P1Runtime<MockGroup>>(gg, prm, kg.pk, kg.sk1,
                                                schemes::P1Mode::Plain,
                                                crypto::Rng(seed + 2), std::move(p1_dir));
  }
  ~Service() { server->stop(); }

  /// Simulate a server crash + restart: tear the server down and bring a new
  /// one up from the same state_dir, seeding it with `decoy_sk2` to prove the
  /// journal (not the constructor argument) defines the recovered share.
  void restart_server(typename Core::Sk2 decoy_sk2, int workers = 4) {
    server->stop();
    server.reset();
    typename P2Server<MockGroup>::Options opt;
    opt.workers = workers;
    opt.state_dir = server_dir;
    server = std::make_unique<P2Server<MockGroup>>(gg, prm, std::move(decoy_sk2),
                                                   crypto::Rng(seed + 3), opt);
    server->start();
  }

  DecryptionClient<MockGroup> client(typename DecryptionClient<MockGroup>::Options opt = {}) {
    return DecryptionClient<MockGroup>(p1, server->port(), opt);
  }
};

TEST(ServiceTest, DecryptOverRealSocketsIsCorrect) {
  Service svc;
  auto client = svc.client();
  crypto::Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    EXPECT_TRUE(svc.gg.gt_eq(client.decrypt_once(c), m));
  }
  EXPECT_EQ(svc.server->requests_served(), 5u);
  EXPECT_EQ(svc.server->epoch(), 0u);
}

TEST(ServiceTest, RefreshAdvancesBothEpochsAndDecryptionStillWorks) {
  Service svc;
  auto client = svc.client();
  crypto::Rng rng(2);
  for (int round = 0; round < 3; ++round) {
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    EXPECT_TRUE(svc.gg.gt_eq(client.decrypt_once(c), m));
    client.refresh();
    EXPECT_EQ(client.epoch(), static_cast<std::uint64_t>(round + 1));
    EXPECT_EQ(svc.server->epoch(), static_cast<std::uint64_t>(round + 1));
  }
  // The sharing rotated three times; the shared secret did not move.
  const auto sk1 = svc.p1->share_for_test();
  const auto sk2 = svc.server->share_for_test();
  EXPECT_TRUE(svc.gg.g_eq(Core::reconstruct_msk(svc.gg, sk1, sk2), svc.kg.msk));
}

TEST(ServiceTest, StaleEpochIsDeterministicallyRejectedAndRetryable) {
  Service svc;
  auto client = svc.client();
  crypto::Rng rng(3);
  const auto m = svc.gg.gt_random(rng);
  const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);

  // Hand-roll a request claiming a future epoch over a raw mux connection.
  transport::SessionMux mux(std::make_shared<transport::FramedConn>(
      transport::connect_loopback(svc.server->port()), transport::TransportOptions{}));
  auto sess = mux.open();
  sess->send(transport::FrameType::Data, 1, kLabelDecReq,
             encode_request(999, svc.p1->begin_decrypt(c, rng).round1));
  const auto resp = sess->recv(transport::Millis{5000});
  EXPECT_EQ(resp.type, transport::FrameType::Error);
  const ServiceError err = decode_error(resp.body);
  EXPECT_EQ(err.code(), ServiceErrc::StaleEpoch);
  EXPECT_TRUE(err.retryable());
  EXPECT_EQ(err.server_epoch(), 0u);
}

TEST(ServiceTest, MalformedRequestsGetBadRequestNotACrash) {
  Service svc;
  transport::SessionMux mux(std::make_shared<transport::FramedConn>(
      transport::connect_loopback(svc.server->port()), transport::TransportOptions{}));

  // Body that is not even a valid request encoding.
  {
    auto sess = mux.open();
    sess->send(transport::FrameType::Data, 1, kLabelDecReq, Bytes{0xFF, 0x01});
    const ServiceError err = decode_error(sess->recv(transport::Millis{5000}).body);
    EXPECT_EQ(err.code(), ServiceErrc::BadRequest);
    EXPECT_FALSE(err.retryable());
  }
  // Valid envelope at the right epoch, garbage round-1 payload inside.
  {
    auto sess = mux.open();
    sess->send(transport::FrameType::Data, 1, kLabelDecReq,
               encode_request(0, Bytes{1, 2, 3, 4, 5}));
    const ServiceError err = decode_error(sess->recv(transport::Millis{5000}).body);
    EXPECT_EQ(err.code(), ServiceErrc::BadRequest);
  }
  // Unknown label.
  {
    auto sess = mux.open();
    sess->send(transport::FrameType::Data, 1, "svc.bogus", Bytes{});
    const ServiceError err = decode_error(sess->recv(transport::Millis{5000}).body);
    EXPECT_EQ(err.code(), ServiceErrc::BadRequest);
  }
  // The server survives all of it and still serves real requests.
  auto client = svc.client();
  crypto::Rng rng(4);
  const auto m = svc.gg.gt_random(rng);
  const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
  EXPECT_TRUE(svc.gg.gt_eq(client.decrypt_once(c), m));
}

// ---- refresh/decrypt interleaving under load ----------------------------------

TEST(ServiceInterleaveTest, HammerWithAutoRefreshEveryKDecryptsCorrectly) {
  // N client threads hammer DistDec through one client while the auto-refresh
  // policy rotates the shares every K requests. Every decrypt() must return
  // the right plaintext (retries of StaleEpoch/Draining happen inside), and
  // afterwards the reconstructed msk must be the original one.
  Service svc(/*workers=*/4);
  typename DecryptionClient<MockGroup>::Options opt;
  opt.auto_refresh_every = 7;  // K
  auto client = svc.client(opt);

  constexpr int kThreads = 4;   // N
  constexpr int kPerThread = 12;
  std::atomic<int> wrong{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      crypto::Rng rng(9000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const auto m = svc.gg.gt_random(rng);
        const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
        try {
          if (!svc.gg.gt_eq(client.decrypt(c), m)) wrong.fetch_add(1);
        } catch (const std::exception&) {
          wrong.fetch_add(1);  // decrypt() retries retryables; anything else fails
        }
      }
    });
  for (auto& t : ts) t.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GE(svc.server->epoch(), 1u) << "auto-refresh never fired";
  EXPECT_EQ(svc.server->epoch(), client.epoch());
  const auto sk1 = svc.p1->share_for_test();
  const auto sk2 = svc.server->share_for_test();
  EXPECT_TRUE(svc.gg.g_eq(Core::reconstruct_msk(svc.gg, sk1, sk2), svc.kg.msk))
      << "refresh under load changed the shared msk";
}

TEST(ServiceInterleaveTest, RawDecryptsRacingRefreshesAreCorrectOrRetryable) {
  // No client-side retry loop here: decrypt_once racing explicit refreshes
  // must either return the correct plaintext or throw a *retryable*
  // ServiceError -- silent wrong answers and non-retryable failures both fail
  // the test.
  Service svc(/*workers=*/4);
  auto dec_client = svc.client();
  auto ref_client = svc.client();

  std::atomic<bool> done{false};
  std::atomic<int> wrong{0}, nonretryable{0}, ok{0}, retryable{0};

  std::thread refresher([&] {
    while (!done.load()) {
      ref_client.refresh();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  constexpr int kThreads = 3;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      crypto::Rng rng(7700 + t);
      for (int i = 0; i < 15; ++i) {
        const auto m = svc.gg.gt_random(rng);
        const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
        try {
          if (svc.gg.gt_eq(dec_client.decrypt_once(c), m))
            ok.fetch_add(1);
          else
            wrong.fetch_add(1);
        } catch (const ServiceError& e) {
          (e.retryable() ? retryable : nonretryable).fetch_add(1);
        }
      }
    });
  for (auto& t : ts) t.join();
  done.store(true);
  refresher.join();

  EXPECT_EQ(wrong.load(), 0) << "a raced decryption returned a wrong plaintext";
  EXPECT_EQ(nonretryable.load(), 0) << "a raced decryption failed non-retryably";
  EXPECT_GT(ok.load(), 0);
  EXPECT_GE(svc.server->epoch(), 1u);

  const auto sk1 = svc.p1->share_for_test();
  const auto sk2 = svc.server->share_for_test();
  EXPECT_TRUE(svc.gg.g_eq(Core::reconstruct_msk(svc.gg, sk1, sk2), svc.kg.msk));
}

TEST(ServiceTest, StopIsOrderlyAndIdempotent) {
  Service svc;
  {
    auto client = svc.client();
    crypto::Rng rng(5);
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    (void)client.decrypt_once(c);
    client.close();
  }
  svc.server->stop();
  svc.server->stop();
}

// ---- PR 8: pipelined decryption path ------------------------------------------

TEST(ServicePipelineTest, PipelineOffIsStillCorrect) {
  // The unbatched PR 2 path stays alive as the control; it must keep working
  // when the pipeline is disabled explicitly.
  Service svc(/*workers=*/4, /*seed=*/7600, {}, {}, /*pipeline=*/false);
  auto client = svc.client();
  crypto::Rng rng(7601);
  for (int i = 0; i < 3; ++i) {
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    EXPECT_TRUE(svc.gg.gt_eq(client.decrypt_once(c), m));
  }
  EXPECT_EQ(svc.server->requests_served(), 3u);
}

TEST(ServicePipelineTest, BatchesFormAndEpochsNeverMix) {
  // Fan-in load with refreshes firing: batches must form (the histogram
  // records every batch) and no batch may ever span two epochs -- admission
  // at enqueue time makes a mixed batch structurally impossible; the
  // defensive counter must therefore stay at zero.
#if DLR_TELEMETRY_ENABLED
  auto& reg = telemetry::Registry::global();
  const auto batches_before = reg.histogram("svc.batch.size").count();
#endif
  Service svc(/*workers=*/2, /*seed=*/7610);
  typename DecryptionClient<MockGroup>::Options opt;
  opt.auto_refresh_every = 5;
  auto client = svc.client(opt);
  constexpr int kThreads = 4;
  std::atomic<int> wrong{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      crypto::Rng rng(7611 + t);
      for (int i = 0; i < 10; ++i) {
        const auto m = svc.gg.gt_random(rng);
        const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
        try {
          if (!svc.gg.gt_eq(client.decrypt(c), m)) wrong.fetch_add(1);
        } catch (const std::exception&) {
          wrong.fetch_add(1);
        }
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GE(svc.server->epoch(), 1u);
#if DLR_TELEMETRY_ENABLED
  EXPECT_GT(reg.histogram("svc.batch.size").count(), batches_before)
      << "pipelined requests never went through the batch collector";
  EXPECT_EQ(reg.counter("svc.batch.epoch_mixed").value(), 0u)
      << "a batch mixed two epochs";
#endif
}

TEST(ServicePipelineTest, SeveredConnectionMidBatchFailsOnlyThatRequest) {
  // One connection sends a valid decryption request and dies before the
  // reply; the send failure must be contained to that connection -- the
  // healthy client keeps decrypting correctly, before and after.
  Service svc;
  auto client = svc.client();
  crypto::Rng rng(7620);
  {
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    EXPECT_TRUE(svc.gg.gt_eq(client.decrypt_once(c), m));
  }
  for (int round = 0; round < 3; ++round) {
    auto raw = std::make_shared<transport::FramedConn>(
        transport::connect_loopback(svc.server->port()), transport::TransportOptions{});
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    const auto snap = svc.p1->begin_decrypt(c, rng);
    raw->send(transport::Frame{/*session=*/1, transport::FrameType::Data,
                               static_cast<std::uint8_t>(net::DeviceId::P1),
                               kLabelDecReq, encode_request(snap.epoch, snap.round1)});
    raw->shutdown();  // gone before the crypto worker can reply
  }
  for (int i = 0; i < 4; ++i) {
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    EXPECT_TRUE(svc.gg.gt_eq(client.decrypt_once(c), m));
  }
}

TEST(EpochCoordinatorTest, DrainDeadlineFailsTheRefreshCleanly) {
  EpochCoordinator c;
  // A decryption that never ends (dead worker) must not wedge refresh forever.
  ASSERT_EQ(c.begin_decrypt(0), EpochCoordinator::Admit::Accepted);
  EXPECT_EQ(c.begin_refresh(0, std::chrono::milliseconds{50}),
            EpochCoordinator::Admit::DrainTimeout);
  EXPECT_EQ(c.epoch(), 0u);
  // The machine is back in Serving: new decryptions are admitted.
  ASSERT_EQ(c.begin_decrypt(0), EpochCoordinator::Admit::Accepted);
  c.end_decrypt();
  // Once the wedged decryption ends, the retried refresh succeeds.
  c.end_decrypt();
  ASSERT_EQ(c.begin_refresh(0, std::chrono::milliseconds{50}),
            EpochCoordinator::Admit::Accepted);
  c.finish_refresh(true);
  EXPECT_EQ(c.epoch(), 1u);
}

// ---- journal ------------------------------------------------------------------

TEST(JournalTest, RoundTripAndAtomicReplace) {
  const std::string dir = make_state_dir();
  Journal j(join_path(dir, "t.journal"));
  EXPECT_FALSE(j.load().has_value());  // missing = no journal
  const Bytes a{1, 2, 3, 4, 5};
  j.save(a);
  EXPECT_EQ(j.load().value(), a);
  const Bytes b(1000, 0xAB);
  j.save(b);  // replace, larger record
  EXPECT_EQ(j.load().value(), b);
  j.save(Bytes{});  // empty payload is a valid record
  EXPECT_EQ(j.load().value(), Bytes{});
  j.remove();
  EXPECT_FALSE(j.load().has_value());
}

TEST(JournalTest, CorruptRecordsLoadAsNullopt) {
  const std::string dir = make_state_dir();
  const std::string path = join_path(dir, "t.journal");
  Journal j(path);
  j.save(Bytes{9, 9, 9, 9});
  // Flip one byte of the payload on disk: CRC must reject it.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  EXPECT_FALSE(j.load().has_value());
  // Garbage shorter than a header and wrong magic are equally rejected.
  for (const Bytes& garbage : {Bytes{1, 2, 3}, Bytes(64, 0x00)}) {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(garbage.data(), 1, garbage.size(), f);
    std::fclose(f);
    EXPECT_FALSE(j.load().has_value());
  }
}

TEST(JournalTest, DetachedJournalIsANoOp) {
  Journal j;
  EXPECT_FALSE(j.attached());
  EXPECT_NO_THROW(j.save(Bytes{1}));
  EXPECT_FALSE(j.load().has_value());
  EXPECT_NO_THROW(j.remove());
}

// ---- two-phase refresh commit -------------------------------------------------

TEST(ServiceTwoPhaseTest, DuplicatePrepareAndCommitAreIdempotent) {
  Service svc;
  // A standalone P1 party drives raw 2PC frames, so we can replay them.
  schemes::DlrParty1<MockGroup> party(svc.gg, svc.prm, svc.kg.pk, svc.kg.sk1,
                                      schemes::P1Mode::Plain, crypto::Rng(31));
  party.prepare_period();
  const Bytes r1 = party.ref_round1();

  transport::SessionMux mux(std::make_shared<transport::FramedConn>(
      transport::connect_loopback(svc.server->port()), transport::TransportOptions{}));
  const auto roundtrip = [&](const char* label, const Bytes& body) {
    auto sess = mux.open();
    sess->send(transport::FrameType::Data, 1, label, body);
    return sess->recv(transport::Millis{5000});
  };

  // PREPARE twice with the identical round-1 message: the replies must be
  // byte-identical (a resampled s' would desync the committed share) and the
  // epoch must not move.
  const Bytes req = encode_request(0, r1);
  const Bytes r2a = expect_ok(roundtrip(kLabelRefReq, req), kLabelRefOk);
  const Bytes r2b = expect_ok(roundtrip(kLabelRefReq, req), kLabelRefOk);
  EXPECT_EQ(r2a, r2b);
  EXPECT_EQ(svc.server->epoch(), 0u) << "prepare must not advance the epoch";
  EXPECT_TRUE(svc.server->has_pending_for_test());

  // COMMIT twice: first installs (epoch 1), second acks idempotently.
  const Bytes digest = crypto::digest_to_bytes(crypto::Sha256::hash(r1));
  const Bytes cbody = encode_commit(CommitMsg{0, digest});
  EXPECT_EQ(decode_commit_ok(expect_ok(roundtrip(kLabelRefCommit, cbody), kLabelRefCommitOk)),
            1u);
  EXPECT_EQ(decode_commit_ok(expect_ok(roundtrip(kLabelRefCommit, cbody), kLabelRefCommitOk)),
            1u);
  EXPECT_EQ(svc.server->epoch(), 1u);
  EXPECT_FALSE(svc.server->has_pending_for_test());

  // Both halves installed exactly once: the msk is intact.
  party.ref_finish(r2a);
  EXPECT_TRUE(svc.gg.g_eq(
      Core::reconstruct_msk(svc.gg, party.recover_share_for_test(), svc.server->share_for_test()),
      svc.kg.msk));

  // A commit for a digest nobody prepared is rejected, not applied.
  const Bytes bogus = encode_commit(CommitMsg{1, Bytes(32, 0x42)});
  const auto resp = roundtrip(kLabelRefCommit, bogus);
  EXPECT_EQ(resp.type, transport::FrameType::Error);
  EXPECT_EQ(decode_error(resp.body).code(), ServiceErrc::StaleEpoch);
}

TEST(ServiceTwoPhaseTest, RefreshInterruptedAtEveryFrameConvergesWithoutForking) {
  // The tentpole acceptance matrix: kill/corrupt the refresh exchange at each
  // frame index, in each direction, and require that client.refresh() still
  // converges with (a) equal epochs on both sides, (b) the msk unchanged, and
  // (c) a correct decryption afterwards. Client-connection frame indices:
  // out 0 = hello, out 1 = prepare, out 2 = commit; in k = reply to out k.
  using transport::Direction;
  using transport::FaultKind;
  struct Case {
    Direction dir;
    std::uint64_t index;
    transport::FaultAction action;
  };
  const std::vector<Case> cases = {
      {Direction::Outbound, 1, {FaultKind::Sever}},
      {Direction::Outbound, 1, {FaultKind::Drop}},
      {Direction::Outbound, 1, {FaultKind::BitFlip, 100}},
      {Direction::Outbound, 1, {FaultKind::Truncate, 5}},
      {Direction::Outbound, 2, {FaultKind::Sever}},
      {Direction::Outbound, 2, {FaultKind::Drop}},
      {Direction::Outbound, 2, {FaultKind::BitFlip, 100}},
      {Direction::Inbound, 1, {FaultKind::Sever}},
      {Direction::Inbound, 1, {FaultKind::Drop}},
      {Direction::Inbound, 2, {FaultKind::Sever}},
      {Direction::Inbound, 2, {FaultKind::Drop}},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i) + ": dir=" +
                 std::to_string(static_cast<int>(cases[i].dir)) + " index=" +
                 std::to_string(cases[i].index) + " fault=" +
                 transport::fault_kind_name(cases[i].action.kind));
    Service svc(/*workers=*/2, 7100 + i);
    std::atomic<int> conn_no{0};
    std::shared_ptr<transport::FaultInjector> injector;
    typename DecryptionClient<MockGroup>::Options opt;
    opt.request_timeout = transport::Millis{300};
    opt.max_retries = 8;
    opt.retry.base = transport::Millis{2};
    opt.retry.cap = transport::Millis{20};
    opt.conn_wrapper = [&](std::shared_ptr<transport::FramedConn> fc)
        -> std::shared_ptr<transport::Conn> {
      if (conn_no.fetch_add(1) != 0) return fc;  // only the first connection faults
      transport::FaultPlan plan;
      plan.at(cases[i].dir, cases[i].index, cases[i].action);
      injector = std::make_shared<transport::FaultInjector>(std::move(fc), plan);
      return injector;
    };
    auto client = svc.client(opt);
    client.refresh();  // must converge despite the injected fault

    EXPECT_EQ(client.epoch(), 1u);
    EXPECT_EQ(svc.server->epoch(), 1u) << "client and server epochs diverged";
    ASSERT_NE(injector, nullptr);
    EXPECT_GE(injector->injected(), 1u) << "the fault never fired";
    const auto sk1 = svc.p1->share_for_test();
    const auto sk2 = svc.server->share_for_test();
    EXPECT_TRUE(svc.gg.g_eq(Core::reconstruct_msk(svc.gg, sk1, sk2), svc.kg.msk))
        << "interrupted refresh forked the key material";
    crypto::Rng rng(100 + i);
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    EXPECT_TRUE(svc.gg.gt_eq(client.decrypt(c), m));
  }
}

// ---- crash-restart recovery ---------------------------------------------------

TEST(ServiceRecoveryTest, ServerRestartResumesShareAndEpochFromJournal) {
  Service svc(4, 7300, make_state_dir());
  auto client = svc.client();
  crypto::Rng rng(41);
  client.refresh();
  ASSERT_EQ(svc.server->epoch(), 1u);

  // "Crash" the server; bring a new one up from the journal, seeded with a
  // decoy share from an unrelated keygen to prove the journal wins.
  crypto::Rng decoy_rng(999);
  auto decoy = Core::gen(svc.gg, svc.prm, decoy_rng);
  svc.restart_server(std::move(decoy.sk2));

  EXPECT_TRUE(svc.server->recovered_from_journal());
  EXPECT_EQ(svc.server->epoch(), 1u) << "epoch not restored from the journal";
  auto client2 = svc.client();  // fresh connection + hello reconciliation
  EXPECT_EQ(client2.epoch(), svc.server->epoch());
  const auto m = svc.gg.gt_random(rng);
  const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
  EXPECT_TRUE(svc.gg.gt_eq(client2.decrypt(c), m));
  const auto sk1 = svc.p1->share_for_test();
  const auto sk2 = svc.server->share_for_test();
  EXPECT_TRUE(svc.gg.g_eq(Core::reconstruct_msk(svc.gg, sk1, sk2), svc.kg.msk));
}

TEST(ServiceRecoveryTest, ClientCrashAfterPrepareRollsBackOnRestart) {
  // Crash the client between PREPARE and COMMIT: the restarted client must
  // journal-restore the pending refresh and the hello verdict must be
  // Rollback (the server never installed), leaving epochs at 0.
  const std::string p1_dir = make_state_dir();
  Service svc(4, 7400, {}, p1_dir);
  {
    std::atomic<int> conn_no{0};
    typename DecryptionClient<MockGroup>::Options opt;
    opt.request_timeout = transport::Millis{300};
    opt.max_retries = 0;  // first failure surfaces: the "crash" point
    opt.conn_wrapper = [&](std::shared_ptr<transport::FramedConn> fc)
        -> std::shared_ptr<transport::Conn> {
      if (conn_no.fetch_add(1) != 0) return fc;
      transport::FaultPlan plan;
      plan.out_at(2, {transport::FaultKind::Sever});  // commit frame never leaves
      return std::make_shared<transport::FaultInjector>(std::move(fc), plan);
    };
    auto client = svc.client(opt);
    EXPECT_THROW(client.refresh(), transport::TransportError);
    EXPECT_EQ(svc.p1->pending_info().active, true);
  }
  // Process restart: rebuild the runtime from the journal (decoy sk1 proves
  // the journal wins) and reconnect.
  crypto::Rng decoy_rng(998);
  auto decoy = Core::gen(svc.gg, svc.prm, decoy_rng);
  svc.p1 = std::make_shared<P1Runtime<MockGroup>>(svc.gg, svc.prm, svc.kg.pk, decoy.sk1,
                                                  schemes::P1Mode::Plain, crypto::Rng(43),
                                                  p1_dir);
  EXPECT_TRUE(svc.p1->pending_info().active) << "pending refresh lost across restart";
  auto client = svc.client();  // ctor hello applies the Rollback verdict
  EXPECT_FALSE(svc.p1->pending_info().active);
  EXPECT_EQ(client.epoch(), 0u);
  EXPECT_EQ(svc.server->epoch(), 0u);
  crypto::Rng rng(44);
  const auto m = svc.gg.gt_random(rng);
  const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
  EXPECT_TRUE(svc.gg.gt_eq(client.decrypt(c), m));
  const auto sk1 = svc.p1->share_for_test();
  const auto sk2 = svc.server->share_for_test();
  EXPECT_TRUE(svc.gg.g_eq(Core::reconstruct_msk(svc.gg, sk1, sk2), svc.kg.msk));
}

TEST(ServiceRecoveryTest, ClientCrashAfterServerCommitRollsForwardOnRestart) {
  // Crash the client after the server installed but before the ack arrived:
  // the restarted client's hello verdict must be Commit, and the journaled
  // round 2 must roll the client forward to the server's epoch.
  for (const auto mode : {schemes::P1Mode::Plain, schemes::P1Mode::Compact}) {
    SCOPED_TRACE(mode == schemes::P1Mode::Plain ? "plain" : "compact");
    const std::string p1_dir = make_state_dir();
    Service svc(4, 7500 + static_cast<int>(mode));
    svc.p1 = std::make_shared<P1Runtime<MockGroup>>(svc.gg, svc.prm, svc.kg.pk, svc.kg.sk1,
                                                    mode, crypto::Rng(45), p1_dir);
    {
      std::atomic<int> conn_no{0};
      typename DecryptionClient<MockGroup>::Options opt;
      opt.request_timeout = transport::Millis{300};
      opt.max_retries = 0;
      opt.conn_wrapper = [&](std::shared_ptr<transport::FramedConn> fc)
          -> std::shared_ptr<transport::Conn> {
        if (conn_no.fetch_add(1) != 0) return fc;
        transport::FaultPlan plan;
        plan.in_at(2, {transport::FaultKind::Sever});  // commit.ok never arrives
        return std::make_shared<transport::FaultInjector>(std::move(fc), plan);
      };
      auto client = svc.client(opt);
      EXPECT_THROW(client.refresh(), transport::TransportError);
    }
    ASSERT_EQ(svc.server->epoch(), 1u) << "server should have installed the refresh";
    // Process restart from the journal.
    svc.p1 = std::make_shared<P1Runtime<MockGroup>>(svc.gg, svc.prm, svc.kg.pk, svc.kg.sk1,
                                                    mode, crypto::Rng(46), p1_dir);
    ASSERT_TRUE(svc.p1->pending_info().active);
    EXPECT_TRUE(svc.p1->pending_info().has_r2) << "round 2 was not journaled pre-commit";
    auto client = svc.client();  // ctor hello applies the Commit verdict
    EXPECT_FALSE(svc.p1->pending_info().active);
    EXPECT_EQ(client.epoch(), 1u);
    EXPECT_EQ(svc.server->epoch(), 1u);
    crypto::Rng rng(47);
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    EXPECT_TRUE(svc.gg.gt_eq(client.decrypt(c), m));
    const auto sk1 = svc.p1->share_for_test();
    const auto sk2 = svc.server->share_for_test();
    EXPECT_TRUE(svc.gg.g_eq(Core::reconstruct_msk(svc.gg, sk1, sk2), svc.kg.msk))
        << "roll-forward recovery forked the key material";
  }
}

// ---- graceful shutdown --------------------------------------------------------

TEST(ServiceTest, DrainingServerAnswersRetryableShutdown) {
  Service svc;
  svc.server->begin_drain();
  transport::SessionMux mux(std::make_shared<transport::FramedConn>(
      transport::connect_loopback(svc.server->port()), transport::TransportOptions{}));
  auto sess = mux.open();
  sess->send(transport::FrameType::Data, 1, kLabelDecReq, encode_request(0, Bytes{1}));
  const auto resp = sess->recv(transport::Millis{5000});
  ASSERT_EQ(resp.type, transport::FrameType::Error);
  const ServiceError err = decode_error(resp.body);
  EXPECT_EQ(err.code(), ServiceErrc::Shutdown);
  EXPECT_TRUE(err.retryable()) << "Shutdown must be retryable (elsewhere/later)";
  svc.server->stop();
}

// ---- chaos soak ---------------------------------------------------------------

TEST(ServiceChaosTest, SeededChaosSoakNeverReturnsAWrongPlaintext) {
  // N client threads decrypt while auto-refresh fires and a seeded injector
  // drops/corrupts/severs their connections. Invariants: no wrong plaintext
  // is EVER returned (typed failures after retry exhaustion are tolerated),
  // and after one clean reconciliating connection the epochs agree and the
  // msk is unchanged. DLR_CHAOS_SEED picks the schedule; every failure
  // replays deterministically under its seed.
  const char* env = std::getenv("DLR_CHAOS_SEED");
  const std::uint64_t seed = env ? std::strtoull(env, nullptr, 10) : 1;
  Service svc(/*workers=*/4, 7900 + seed);

  std::atomic<std::uint64_t> conn_no{0};
  typename DecryptionClient<MockGroup>::Options opt;
  opt.request_timeout = transport::Millis{300};
  opt.max_retries = 40;
  opt.retry.base = transport::Millis{2};
  opt.retry.cap = transport::Millis{30};
  opt.auto_refresh_every = 5;
  opt.conn_wrapper = [&](std::shared_ptr<transport::FramedConn> fc)
      -> std::shared_ptr<transport::Conn> {
    transport::FaultPlan::Rates rates;
    rates.drop = 0.02;
    rates.duplicate = 0.03;
    rates.delay = 0.05;
    rates.bitflip = 0.02;
    rates.sever = 0.02;
    rates.delay_ms = 1;
    return std::make_shared<transport::FaultInjector>(
        std::move(fc),
        transport::FaultPlan::seeded(seed * 1000003 + conn_no.fetch_add(1), rates));
  };
  auto client = svc.client(opt);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 12;
  std::atomic<int> wrong{0}, gave_up{0}, ok{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      crypto::Rng rng(8800 + seed * 100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const auto m = svc.gg.gt_random(rng);
        const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
        try {
          if (svc.gg.gt_eq(client.decrypt(c), m))
            ok.fetch_add(1);
          else
            wrong.fetch_add(1);
        } catch (const std::exception&) {
          gave_up.fetch_add(1);  // typed failure after budget exhaustion: allowed
        }
      }
    });
  for (auto& t : ts) t.join();

  EXPECT_EQ(wrong.load(), 0) << "chaos produced a silently wrong plaintext";
  EXPECT_GT(ok.load(), 0) << "nothing succeeded -- retry budget far too small";

  // One clean connection reconciles whatever the chaos left half-done...
  auto clean = svc.client();
  EXPECT_FALSE(svc.p1->pending_info().active);
  EXPECT_EQ(clean.epoch(), svc.server->epoch()) << "epochs failed to reconcile";
  // ...and the invariants hold: correct decryption, unchanged msk.
  crypto::Rng rng(9999);
  const auto m = svc.gg.gt_random(rng);
  const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
  EXPECT_TRUE(svc.gg.gt_eq(clean.decrypt(c), m));
  const auto sk1 = svc.p1->share_for_test();
  const auto sk2 = svc.server->share_for_test();
  EXPECT_TRUE(svc.gg.g_eq(Core::reconstruct_msk(svc.gg, sk1, sk2), svc.kg.msk))
      << "chaos soak changed the shared msk";
}

// ---- overload protection (DESIGN.md §13) --------------------------------------

/// A deliberately tiny server: one crypto worker, one-item batches, a
/// two-item queue, and an injected crypto delay so saturation is
/// deterministic rather than a race against mock-group speed.
struct TinyServer {
  MockGroup gg = make_mock();
  schemes::DlrParams prm = mock_params();
  Core::KeyGenResult kg;
  std::unique_ptr<P2Server<MockGroup>> server;
  std::shared_ptr<P1Runtime<MockGroup>> p1;

  explicit TinyServer(std::chrono::microseconds crypto_delay,
                      std::size_t queue_cap = 2) {
    crypto::Rng rng(7400);
    kg = Core::gen(gg, prm, rng);
    typename P2Server<MockGroup>::Options opt;
    opt.workers = 1;
    opt.max_batch = 1;
    opt.queue_cap = queue_cap;
    opt.inject_crypto_delay = crypto_delay;
    server = std::make_unique<P2Server<MockGroup>>(gg, prm, kg.sk2, crypto::Rng(7401),
                                                   opt);
    server->start();
    p1 = std::make_shared<P1Runtime<MockGroup>>(gg, prm, kg.pk, kg.sk1,
                                                schemes::P1Mode::Plain,
                                                crypto::Rng(7402), std::string{});
  }
  ~TinyServer() { server->stop(); }
};

TEST(ServiceOverloadTest, SaturatedQueueShedsTypedOverloadedWithRetryAfter) {
  TinyServer svc(std::chrono::microseconds{20000});
  crypto::Rng rng(41);
  const auto m = svc.gg.gt_random(rng);
  const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
  const Bytes round1 = svc.p1->begin_decrypt(c, rng).round1;

  transport::SessionMux mux(std::make_shared<transport::FramedConn>(
      transport::connect_loopback(svc.server->port()), transport::TransportOptions{}));
  constexpr int kFlood = 30;
  std::vector<std::unique_ptr<transport::SessionMux::Session>> sessions;
  for (int i = 0; i < kFlood; ++i) {
    auto sess = mux.open();
    sess->send(transport::FrameType::Data, 1, kLabelDecReq, encode_request(0, round1));
    sessions.push_back(std::move(sess));
  }

  int ok = 0, shed = 0, other = 0;
  for (auto& sess : sessions) {
    const auto resp = sess->recv(transport::Millis{10000});
    if (resp.type == transport::FrameType::Data) {
      ++ok;
      continue;
    }
    const ServiceError err = decode_error(resp.body);
    if (err.code() == ServiceErrc::Overloaded) {
      ++shed;
      EXPECT_TRUE(err.retryable());
      EXPECT_GT(err.retry_after_ms(), 0u)
          << "every Overloaded response must carry a server-computed hint";
    } else {
      ++other;
    }
  }
  EXPECT_GT(ok, 0) << "saturation shed everything -- no goodput at all";
  EXPECT_GT(shed, 0) << "30 requests against a 2-slot queue never shed";
  EXPECT_EQ(other, 0);
  EXPECT_GT(svc.server->gov().shed_overload(), 0u);
}

TEST(ServiceOverloadTest, ExpiredDeadlineIsDroppedBeforeCryptoIsSpent) {
  TinyServer svc(std::chrono::microseconds{30000}, /*queue_cap=*/64);
  crypto::Rng rng(42);
  const auto m = svc.gg.gt_random(rng);
  const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
  const Bytes round1 = svc.p1->begin_decrypt(c, rng).round1;

  transport::SessionMux mux(std::make_shared<transport::FramedConn>(
      transport::connect_loopback(svc.server->port()), transport::TransportOptions{}));
  // First request occupies the single worker for ~30 ms...
  auto busy = mux.open();
  busy->send(transport::FrameType::Data, 1, kLabelDecReq, encode_request(0, round1));
  // ...so the second, carrying a 1 ms deadline budget, expires while queued.
  auto doomed = mux.open();
  doomed->send(transport::FrameType::Data, 1, kLabelDecReq,
               encode_request(0, round1, /*deadline_ms=*/1));

  const auto resp = doomed->recv(transport::Millis{10000});
  ASSERT_EQ(resp.type, transport::FrameType::Error);
  const ServiceError err = decode_error(resp.body);
  EXPECT_EQ(err.code(), ServiceErrc::DeadlineExceeded);
  EXPECT_FALSE(err.retryable()) << "the budget is spent; retrying cannot help";
  EXPECT_EQ(busy->recv(transport::Millis{10000}).type, transport::FrameType::Data)
      << "the undeadlined request must still be served";
  EXPECT_GT(svc.server->gov().shed_deadline(), 0u);
}

TEST(ServiceOverloadTest, DegradedModeDeprioritizesRefreshPrepares) {
  // queue_cap 4: even if the lone worker steals an item from the queue the
  // moment it fills, depth stays >= 3 = the 0.75 high-water mark.
  TinyServer svc(std::chrono::microseconds{50000}, /*queue_cap=*/4);
  crypto::Rng rng(43);
  const auto m = svc.gg.gt_random(rng);
  const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
  const Bytes round1 = svc.p1->begin_decrypt(c, rng).round1;

  transport::SessionMux mux(std::make_shared<transport::FramedConn>(
      transport::connect_loopback(svc.server->port()), transport::TransportOptions{}));
  std::vector<std::unique_ptr<transport::SessionMux::Session>> flood;
  for (int i = 0; i < 10; ++i) {
    auto sess = mux.open();
    sess->send(transport::FrameType::Data, 1, kLabelDecReq, encode_request(0, round1));
    flood.push_back(std::move(sess));
  }

  // With the 2-slot queue saturated (high water 0.75 * 2), a background
  // refresh prepare is turned away so decrypts keep the worker. The shed
  // happens before the payload is decoded, so dummy bytes suffice.
  auto sess = mux.open();
  sess->send(transport::FrameType::Data, 1, kLabelRefReq, encode_request(0, Bytes{1, 2, 3}));
  const auto resp = sess->recv(transport::Millis{10000});
  ASSERT_EQ(resp.type, transport::FrameType::Error);
  const ServiceError err = decode_error(resp.body);
  EXPECT_EQ(err.code(), ServiceErrc::Overloaded);
  EXPECT_TRUE(err.retryable());
  EXPECT_GT(err.retry_after_ms(), 0u);
  for (auto& s : flood) (void)s->recv(transport::Millis{10000});
  EXPECT_GT(svc.server->gov().shed_refresh(), 0u);
}

TEST(ServiceOverloadTest, ClientBreakerOpensOnDeadEndpointAndFastFails) {
  // Nothing listens on the target port: every attempt is a transport failure.
  const auto gg = make_mock();
  const auto prm = mock_params();
  crypto::Rng rng(7500);
  const auto kg = Core::gen(gg, prm, rng);
  auto p1 = std::make_shared<P1Runtime<MockGroup>>(gg, prm, kg.pk, kg.sk1,
                                                   schemes::P1Mode::Plain,
                                                   crypto::Rng(7501), std::string{});
  typename DecryptionClient<MockGroup>::Options opt;
  opt.transport.connect_retries = 0;  // fail each attempt fast
  opt.max_retries = 1;
  opt.retry.base = transport::Millis{1};
  opt.retry.cap = transport::Millis{2};
  // The fast-fail hint equals the remaining cooldown (60 s); a finite retry
  // budget keeps the schedule from actually sleeping on it.
  opt.retry.deadline = transport::Millis{200};
  opt.breaker.failure_threshold = 2;
  opt.breaker.open_for = transport::Millis{60000};  // stays open for the test
  DecryptionClient<MockGroup> client(p1, /*port=*/1, opt);

  const auto m = gg.gt_random(rng);
  const auto c = Core::enc(gg, kg.pk, m, rng);
  EXPECT_THROW((void)client.decrypt(c), transport::TransportError);
  EXPECT_EQ(client.breaker().state(), transport::CircuitBreaker::State::Open)
      << "two consecutive transport failures must trip the threshold-2 breaker";

  // While open, attempts fail fast with the typed retryable error carrying
  // the remaining cooldown -- no connect() is even tried.
  try {
    (void)client.decrypt(c);
    FAIL() << "expected a fast-failed Overloaded";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ServiceErrc::Overloaded);
    EXPECT_GT(e.retry_after_ms(), 0u);
  }
}

TEST(ServiceOverloadTest, BreakerRecoveryEmitsOpenAndCloseEvents) {
  auto count_events = [](telemetry::EventKind k) {
    std::uint64_t n = 0;
    for (const auto& e : telemetry::EventLog::global().events())
      if (e.kind == k) ++n;
    return n;
  };
  const auto opens0 = count_events(telemetry::EventKind::BreakerOpen);
  const auto closes0 = count_events(telemetry::EventKind::BreakerClose);

  TinyServer svc(std::chrono::microseconds{0});
  const std::uint16_t port = svc.server->port();
  svc.server->stop();  // endpoint goes dark; its port is what the client dials

  typename DecryptionClient<MockGroup>::Options opt;
  opt.transport.connect_retries = 0;
  opt.max_retries = 1;
  opt.retry.base = transport::Millis{1};
  opt.retry.cap = transport::Millis{2};
  opt.retry.deadline = transport::Millis{100};
  opt.breaker.failure_threshold = 1;
  opt.breaker.open_for = transport::Millis{150};
  DecryptionClient<MockGroup> client(svc.p1, port, opt);

  crypto::Rng rng(7460);
  const auto m = svc.gg.gt_random(rng);
  const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
  // First attempt fails on transport and trips the threshold-1 breaker; the
  // retry then surfaces the fast-failed Overloaded once the budget is spent.
  EXPECT_ANY_THROW((void)client.decrypt(c));
  EXPECT_EQ(client.breaker().state(), transport::CircuitBreaker::State::Open);

  // Bring the endpoint back on the SAME port; once the cooldown elapses the
  // half-open probe succeeds and the breaker closes again.
  typename P2Server<MockGroup>::Options sopt;
  sopt.workers = 1;
  svc.server = std::make_unique<P2Server<MockGroup>>(svc.gg, svc.prm, svc.kg.sk2,
                                                     crypto::Rng(7461), sopt);
  svc.server->start(port);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_TRUE(svc.gg.gt_eq(client.decrypt(c), m));
  EXPECT_EQ(client.breaker().state(), transport::CircuitBreaker::State::Closed);

  if (telemetry::EventLog::kCapacity > 0) {
    EXPECT_GT(count_events(telemetry::EventKind::BreakerOpen), opens0)
        << "the trip must land in the event log";
    EXPECT_GT(count_events(telemetry::EventKind::BreakerClose), closes0)
        << "the recovery must land in the event log";
  }
  client.close();
}

TEST(ServiceOverloadTest, StopWhileFloodedJoinsWithoutDeadlock) {
  // Regression for the blocking-reader stall: flood a saturated server from
  // several connections, then stop() mid-flood. Shedding readers must never
  // park in submit() backpressure, so stop() joins everything promptly.
  auto svc = std::make_unique<TinyServer>(std::chrono::microseconds{5000});
  crypto::Rng rng(44);
  const auto m = svc->gg.gt_random(rng);
  const auto c = Core::enc(svc->gg, svc->kg.pk, m, rng);
  const Bytes round1 = svc->p1->begin_decrypt(c, rng).round1;
  const std::uint16_t port = svc->server->port();

  std::atomic<bool> go{true};
  std::vector<std::thread> flooders;
  for (int t = 0; t < 3; ++t)
    flooders.emplace_back([&] {
      try {
        transport::SessionMux mux(std::make_shared<transport::FramedConn>(
            transport::connect_loopback(port), transport::TransportOptions{}));
        std::vector<std::unique_ptr<transport::SessionMux::Session>> pending;
        while (go.load()) {
          auto sess = mux.open();
          sess->send(transport::FrameType::Data, 1, kLabelDecReq,
                     encode_request(0, round1));
          pending.push_back(std::move(sess));
          if (pending.size() > 64) pending.erase(pending.begin());
        }
      } catch (const transport::TransportError&) {
        // Server went away mid-flood: exactly the point.
      }
    });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  svc->server->stop();  // must not deadlock against shedding readers
  go.store(false);
  for (auto& t : flooders) t.join();
  svc.reset();
  SUCCEED();
}

}  // namespace
}  // namespace dlr::service
