// P2Server -- the paper's long-lived auxiliary device (§1.1, §4.4) as a
// multi-threaded network service.
//
// The server owns the P2 share and answers DistDec round-2 requests plus the
// two-phase refresh protocol (DESIGN.md §9) from the P1-side client over
// framed, session-multiplexed TCP. Thread architecture with the default
// pipelined mode (DESIGN.md §12; one arrow = one thread kind):
//
//   accept thread ---> per-connection readers ---> BatchCollector ---> crypto
//   (Listener::accept) (recv + DECODE + epoch     (cross-request       workers
//                       admission for svc.dec)     micro-batches)      (dec_batch,
//                                   |                                   coalesced
//                                   +---> WorkerPool (ref/commit/hello)  ENCODE+send)
//
// Readers decode and admit decryption requests, then submit them to a
// bounded micro-batch collector (size- or deadline-triggered). Crypto
// workers drain it; every request in a batch shares ONE share-exponent
// recoding (DlrParty2::DecBatch) and replies are coalesced per connection
// into a single send_many. With Options::pipeline = false the PR 2
// architecture remains: every request is handled solo on the worker pool.
//
// Refresh is PREPARE / COMMIT:
//   * svc.ref (PREPARE) computes the next share, journals it as a
//     PendingRefresh, and replies with round 2 -- the served share is NOT
//     touched. A duplicated prepare frame is answered with the journaled
//     reply verbatim (recomputing would resample s' and desynchronize the
//     share the client later commits to).
//   * svc.ref.commit drains in-flight decryptions, installs the pending
//     share, persists the new state, and only then bumps the epoch and acks.
//     Duplicate commits are recognized by epoch+digest and acked idempotently.
//   * svc.hello (first frame of every reconnecting client) reconciles: if the
//     server already installed the client's pending refresh the verdict is
//     Commit (client rolls forward); otherwise the server discards its own
//     pending state and verdicts Rollback. A rolled-back digest is remembered
//     so a lingering duplicate prepare cannot resurrect it.
//
// Shared-state discipline:
//   * the DlrParty2 share sits behind shared_mutex p2_mu_: decryption jobs
//     hold it shared, prepare/install hold it exclusive;
//   * the PendingRefresh + journal sit behind pending_mu_;
//   * p2_mu_ and pending_mu_ are NEVER held together -- share bytes are
//     serialized under p2_mu_ first, then handed to the journal write under
//     pending_mu_;
//   * the EpochCoordinator admits requests, drains in-flight decryptions
//     before a commit (bounded by Options::drain_deadline -> retryable
//     DrainTimeout), and rejects stale/raced requests.
//
// Persistence: with Options::state_dir set, every durable transition (initial
// state, prepare, commit, rollback) atomically rewrites <state_dir>/p2.journal
// (share + epoch + pending refresh); a restarted server resumes from it --
// counted in svc.recoveries -- with any pending refresh intact, to be resolved
// by the first hello.
//
// Shutdown: stop() first enters a draining phase (new requests are answered
// with retryable Shutdown errors while queued work finishes, bounded by
// Options::stop_drain), then hangs up.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "schemes/dlr.hpp"
#include "service/admin.hpp"
#include "service/batcher.hpp"
#include "service/epoch.hpp"
#include "service/journal.hpp"
#include "service/overload.hpp"
#include "service/parallel.hpp"
#include "service/protocol.hpp"
#include "service/worker_pool.hpp"
#include "telemetry/events.hpp"
#include "telemetry/trace.hpp"
#include "transport/endpoint.hpp"

namespace dlr::service {

template <group::BilinearGroup GG>
class P2Server {
 public:
  using Core = schemes::DlrCore<GG>;

  struct Options {
    int workers = 4;
    std::size_t queue_cap = 1024;
    transport::TransportOptions transport{};
    /// Bound on draining in-flight decryptions before a commit installs.
    transport::Millis drain_deadline = EpochCoordinator::kDefaultDrainDeadline;
    /// Grace period stop() allows queued work to finish before hanging up.
    transport::Millis stop_drain{1000};
    /// Directory for the state journal; empty = volatile (no persistence).
    std::string state_dir;
    /// Wraps each accepted connection (fault injection in tests/benches).
    std::function<std::shared_ptr<transport::Conn>(std::shared_ptr<transport::FramedConn>)>
        conn_wrapper;
    /// Run a read-only AdminServer sidecar (DESIGN.md §10). Disabled by
    /// default; admin_port 0 binds an ephemeral port (see admin_port()).
    bool admin = false;
    std::uint16_t admin_port = 0;
    /// Emit a SlowRequest event when a decryption's server-side handling
    /// exceeds this many milliseconds (0 = disabled).
    double slow_request_ms = 0;
    /// Behave like a pre-observability v1 server: reject a versioned hello
    /// as BadRequest and never negotiate wire tracing (interop tests).
    bool legacy_hello = false;
    /// Pipelined decode -> crypto -> encode architecture (DESIGN.md §12):
    /// readers decode + admit svc.dec requests into a cross-request batch
    /// collector, `workers` crypto threads drain it in micro-batches that
    /// share the share-exponent recoding, replies are coalesced per
    /// connection. false = the PR 2 one-job-per-request architecture.
    bool pipeline = true;
    /// Hard cap on requests per micro-batch. The effective cap is
    /// min(max_batch, 2 * workers): two batches of lookahead per crypto
    /// worker keeps every worker busy while bounding how many queue-mates
    /// one request can wait behind.
    std::size_t max_batch = 16;
    /// How long the collector may linger for queue-mates once it holds at
    /// least one request (the oldest item's deadline).
    std::chrono::microseconds batch_wait{200};
    /// At start(), when DLR_PARALLEL is unset, publish an adaptive
    /// coordinate fan-out width of hw_threads - (pipeline + reader threads)
    /// via set_adaptive_parallel_default. An explicit env knob always wins.
    bool adaptive_parallel = true;
    /// Overload protection (DESIGN.md §13). Queue depth at or above
    /// high_water * queue_cap enters degraded mode: refresh PREPAREs are
    /// deprioritized (retryable Overloaded) before any decrypt is shed.
    double overload_high_water = 0.75;
    /// Ceiling on the server-computed retry-after hint attached to every
    /// Overloaded response (queue depth x EWMA per-item crypto cost).
    std::uint32_t retry_after_cap_ms = 2000;
    /// Artificial per-batch crypto-stage delay (tests and the --overload
    /// bench): lets a mock-group server present a controllable capacity so
    /// saturation is deterministic instead of a race against real crypto.
    std::chrono::microseconds inject_crypto_delay{0};
  };

  /// `sk2` seeds the share only when no journal exists in state_dir;
  /// otherwise the journaled share+epoch win (svc.recoveries counts that).
  P2Server(GG gg, schemes::DlrParams prm, typename Core::Sk2 sk2, crypto::Rng rng,
           Options opt)
      : opt_(std::move(opt)),
        gg_(gg),
        journal_(opt_.state_dir.empty()
                     ? Journal{}
                     : Journal(join_path(ensure_dir(opt_.state_dir), "p2.journal"))),
        rec_(load_state(journal_, gg_)),
        p2_(std::move(gg), prm, rec_.sk2 ? std::move(*rec_.sk2) : std::move(sk2),
            std::move(rng)),
        coord_(rec_.epoch),
        // Pipelined servers run crypto on dedicated batch workers; the pool
        // only carries the control plane (ref/commit/hello), which two
        // threads cover comfortably.
        pool_(opt_.pipeline ? kControlWorkers : opt_.workers, opt_.queue_cap),
        batcher_(typename BatchCollector<DecJob>::Options{
            effective_batch_cap(opt_), opt_.batch_wait, opt_.queue_cap}),
        gov_(OverloadGovernor::Options{.workers = opt_.workers,
                                       .queue_cap = opt_.queue_cap,
                                       .high_water = opt_.overload_high_water,
                                       .hint_cap_ms = opt_.retry_after_cap_ms}) {
    if (rec_.pending) pending_ = std::move(rec_.pending);
    if (journal_.attached() && !rec_.loaded)
      persist(0, ser_share(), std::nullopt);  // initial durable record
  }

  ~P2Server() { stop(); }
  P2Server(const P2Server&) = delete;
  P2Server& operator=(const P2Server&) = delete;

  /// Bind a loopback listener (port 0 = ephemeral) and start serving.
  void start(std::uint16_t port = 0) {
    listener_ = transport::Listener::loopback(port);
    started_at_ = std::chrono::steady_clock::now();
    if (opt_.adaptive_parallel) {
      // Leave the coordinate fan-out pool whatever the hardware has beyond
      // the server's own threads (crypto workers + roughly one hot reader).
      // Takes effect only while DLR_PARALLEL is unset; serial when nothing
      // is left over.
      const unsigned hw = std::thread::hardware_concurrency();
      const int own = opt_.pipeline ? opt_.workers + kControlWorkers + 1 : opt_.workers + 1;
      set_adaptive_parallel_default(
          hw == 0 ? 0 : std::max(0, static_cast<int>(hw) - own));
    }
    if (opt_.admin) {
      admin_ = std::make_unique<AdminServer>(
          AdminServer::Options{.transport = opt_.transport});
      admin_->register_health("p2", [this] { return health_fields(); });
      admin_->start(opt_.admin_port);
    }
    if (opt_.pipeline) {
      crypto_threads_.reserve(static_cast<std::size_t>(opt_.workers));
      for (int i = 0; i < opt_.workers; ++i)
        crypto_threads_.emplace_back([this] { crypto_loop(); });
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  /// Bound port of the admin sidecar (0 if Options::admin is off).
  [[nodiscard]] std::uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }
  /// The embedded admin sidecar, for registering extra health sections
  /// (nullptr if Options::admin is off).
  [[nodiscard]] AdminServer* admin() { return admin_.get(); }
  [[nodiscard]] std::uint64_t epoch() const { return coord_.epoch(); }
  [[nodiscard]] std::uint64_t inflight() const { return coord_.inflight(); }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_.load(); }
  [[nodiscard]] std::uint64_t refreshes_served() const { return refreshes_.load(); }
  /// Overload governor (shed counters, EWMA crypto cost) — read-only.
  [[nodiscard]] const OverloadGovernor& gov() const { return gov_; }
  [[nodiscard]] bool recovered_from_journal() const { return rec_.loaded; }
  [[nodiscard]] bool has_pending_for_test() const {
    std::lock_guard lock(pending_mu_);
    return pending_.has_value();
  }

  /// Current P2 share (tests: msk-constancy checks). Takes the share lock.
  [[nodiscard]] typename Core::Sk2 share_for_test() const {
    std::shared_lock lock(p2_mu_);
    return p2_.share();
  }

  /// Enter the shutdown-draining phase without hanging up: every subsequent
  /// request is answered with a retryable Shutdown error.
  void begin_drain() { draining_stop_.store(true); }

  /// Orderly shutdown: answer new work with Shutdown errors, let queued work
  /// drain (bounded by Options::stop_drain), then close the listener, hang up
  /// every connection, join readers, stop the worker pool. Idempotent.
  void stop() {
    if (stopping_.exchange(true)) {
      if (accept_thread_.joinable()) accept_thread_.join();
      return;
    }
    draining_stop_.store(true);
    const auto deadline = std::chrono::steady_clock::now() + opt_.stop_drain;
    while (std::chrono::steady_clock::now() < deadline &&
           (coord_.inflight() > 0 || pool_.queued() > 0 || batcher_.queued() > 0))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    listener_.close();
    if (accept_thread_.joinable()) accept_thread_.join();
    // Snapshot the connections, then shut down and join WITHOUT conns_mu_: a
    // reader's exit path re-takes conns_mu_ to mark itself done, so joining
    // it while holding the lock deadlocks.
    std::vector<std::shared_ptr<ConnState>> conns;
    {
      std::lock_guard lock(conns_mu_);
      conns = conns_;
    }
    for (auto& c : conns) c->conn->shutdown();
    // Stop the pool and the batch collector before joining readers: a reader
    // blocked in submit() (queue full) is released by stop(), and queued jobs
    // answering hung-up connections fail their send and are swallowed by the
    // job's catch. Crypto workers drain admitted batches, then exit on the
    // empty collect().
    pool_.stop();
    batcher_.stop();
    for (auto& t : crypto_threads_)
      if (t.joinable()) t.join();
    for (auto& c : conns)
      if (c->reader.joinable()) c->reader.join();
    if (admin_) admin_->stop();
  }

 private:
  /// A prepared-but-not-installed refresh (the server half of the 2PC).
  struct Pending {
    std::uint64_t epoch = 0;             // epoch being refreshed away from
    Bytes digest;                        // sha256 of the prepare round-1 msg
    typename Core::Sk2 next;             // share to install at commit
    Bytes reply;                         // journaled round-2 reply (dedup resend)
  };

  struct Recovered {
    bool loaded = false;
    std::uint64_t epoch = 0;
    std::optional<typename Core::Sk2> sk2;
    std::optional<Pending> pending;
  };

  struct ConnState {
    std::shared_ptr<transport::Conn> conn;
    std::thread reader;
    std::atomic<bool> done{false};
  };

  /// Worker-pool width while the pipeline owns the crypto: the pool only
  /// serves ref/commit/hello, which are rare and partly serialized anyway.
  static constexpr int kControlWorkers = 2;

  /// An epoch-admitted decryption request parked in the batch collector.
  /// begin_decrypt was already called (on the reader); whoever disposes of
  /// the job must call end_decrypt exactly once.
  struct DecJob {
    std::shared_ptr<transport::Conn> conn;
    std::uint32_t session = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
    std::uint64_t epoch = 0;
    Bytes round1;
    std::chrono::steady_clock::time_point enq{};
    // Absolute expiry derived from the request's deadline budget at decode
    // time; the epoch value (time_point{}) means "no deadline".
    std::chrono::steady_clock::time_point deadline{};
  };

  [[nodiscard]] static std::size_t effective_batch_cap(const Options& o) {
    const std::size_t per_workers =
        2 * static_cast<std::size_t>(o.workers < 1 ? 1 : o.workers);
    return std::max<std::size_t>(1, std::min(o.max_batch, per_workers));
  }

  /// Health section served by the admin endpoint. Reads atomics and takes
  /// only the short pending lock -- safe from the scrape thread.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> health_fields() const {
    const auto uptime_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() - started_at_)
                               .count();
    bool pending = false;
    {
      std::lock_guard lock(pending_mu_);
      pending = pending_.has_value();
    }
    return {
        {"epoch", std::to_string(coord_.epoch())},
        {"inflight", std::to_string(coord_.inflight())},
        {"queue_depth", std::to_string(pool_.queued())},
        {"workers", std::to_string(opt_.workers)},
        {"pipeline", opt_.pipeline ? "true" : "false"},
        {"batch_queue", std::to_string(batcher_.queued())},
        {"queue_cap", std::to_string(opt_.queue_cap)},
        {"degraded", gov_.degraded(pool_.queued() + batcher_.queued()) ? "true" : "false"},
        {"shed_overload", std::to_string(gov_.shed_overload())},
        {"shed_deadline", std::to_string(gov_.shed_deadline())},
        {"shed_refresh", std::to_string(gov_.shed_refresh())},
        {"crypto_cost_us_ewma", std::to_string(gov_.cost_us())},
        {"draining", draining_stop_.load() ? "true" : "false"},
        {"pending_refresh", pending ? "true" : "false"},
        {"requests", std::to_string(requests_.load())},
        {"refreshes", std::to_string(refreshes_.load())},
        {"journal", journal_.attached() ? journal_.path() : "(volatile)"},
        {"recovered", rec_.loaded ? "true" : "false"},
        {"uptime_ms", std::to_string(uptime_ms)},
    };
  }

  static Recovered load_state(const Journal& j, const GG& gg) {
    Recovered rec;
    const auto payload = j.load();
    if (!payload) return rec;
    ByteReader r(*payload);
    rec.epoch = r.u64();
    const Bytes sk2b = r.blob();
    ByteReader sr(sk2b);
    rec.sk2 = Core::deser_sk2(gg, sr);
    if (r.u8()) {
      Pending p;
      p.epoch = r.u64();
      p.digest = r.blob();
      const Bytes nb = r.blob();
      ByteReader nr(nb);
      p.next = Core::deser_sk2(gg, nr);
      p.reply = r.blob();
      rec.pending = std::move(p);
    }
    rec.loaded = true;
    telemetry::Registry::global().counter("svc.recoveries").add();
    telemetry::event(telemetry::EventKind::JournalRecovery,
                     "side=p2 epoch=" + std::to_string(rec.epoch) +
                         " pending=" + (rec.pending ? "true" : "false"));
    return rec;
  }

  /// Serialize the served share. Takes p2_mu_ shared; callers must hold
  /// NEITHER p2_mu_ nor pending_mu_.
  [[nodiscard]] Bytes ser_share() const {
    ByteWriter w;
    std::shared_lock lock(p2_mu_);
    Core::ser_sk2(gg_, w, p2_.share());
    return w.take();
  }

  /// Durably record (epoch, share, pending). Callers hold pending_mu_ (which
  /// serializes journal writes) and pass the share bytes in, so no lock
  /// nesting with p2_mu_ ever happens.
  void persist(std::uint64_t epoch, const Bytes& share_ser,
               const std::optional<Pending>& pending) {
    if (!journal_.attached()) return;
    ByteWriter w;
    w.u64(epoch);
    w.blob(share_ser);
    w.u8(pending ? 1 : 0);
    if (pending) {
      w.u64(pending->epoch);
      w.blob(pending->digest);
      ByteWriter nw;
      Core::ser_sk2(gg_, nw, pending->next);
      w.blob(nw.bytes());
      w.blob(pending->reply);
    }
    journal_.save(w.take());
  }

  void accept_loop() {
    for (;;) {
      transport::Socket sock;
      try {
        sock = listener_.accept(transport::Millis{200});
      } catch (const transport::TransportError& e) {
        if (e.code() == transport::Errc::Timeout) {
          if (stopping_.load()) return;
          continue;
        }
        return;  // listener closed
      }
      auto st = std::make_shared<ConnState>();
      auto fc = std::make_shared<transport::FramedConn>(std::move(sock), opt_.transport);
      st->conn = opt_.conn_wrapper
                     ? opt_.conn_wrapper(std::move(fc))
                     : std::static_pointer_cast<transport::Conn>(std::move(fc));
      st->reader = std::thread([this, conn = st->conn] { reader_loop(conn); });
      std::lock_guard lock(conns_mu_);
      // Reap connections whose readers already exited, so a chaos workload
      // that reconnects thousands of times does not grow conns_ unboundedly.
      std::erase_if(conns_, [](const std::shared_ptr<ConnState>& c) {
        if (!c->done.load()) return false;
        if (c->reader.joinable()) c->reader.join();
        return true;
      });
      conns_.push_back(std::move(st));
    }
  }

  void reader_loop(const std::shared_ptr<transport::Conn>& conn) {
    for (;;) {
      transport::Frame f;
      try {
        f = conn->recv_blocking();
      } catch (const transport::TransportError&) {
        break;  // closed / corrupt stream: connection is done
      }
      if (f.type != transport::FrameType::Data) continue;
      if (opt_.pipeline && f.label == kLabelDecReq) {
        // Decode stage runs right here on the reader thread; the job enters
        // the batch collector already admitted.
        if (!enqueue_dec(conn, std::move(f))) break;
        continue;
      }
      // Stash the header before the body moves into the job: a Full verdict
      // must still answer on the request's session with its trace intact.
      transport::Frame hdr{f.session, f.type,
                           static_cast<std::uint8_t>(net::DeviceId::P2), f.label, {}};
      hdr.trace_id = f.trace_id;
      hdr.parent_span = f.parent_span;
      const auto sub = pool_.try_submit([this, conn, f = std::move(f)]() mutable {
        handle(*conn, std::move(f));
      });
      if (sub == WorkerPool::Submit::Stopped) break;  // pool stopping
      if (sub == WorkerPool::Submit::Full) {
        // Reader never blocks on a saturated pool (DESIGN.md §13): shed with
        // a retryable Overloaded + drain-time hint instead of stalling every
        // request behind this one on the connection.
        const std::size_t depth = pool_.queued() + batcher_.queued();
        gov_.count_shed_overload();
        shed_event("cause=pool-full label=" + hdr.label, gov_.shed_overload());
        try {
          send_err(*conn, hdr, ServiceErrc::Overloaded, "worker queue full",
                   gov_.retry_after_ms(depth));
        } catch (const transport::TransportError&) {
          break;
        }
      }
    }
    // Find our ConnState and mark it reapable by the accept loop.
    std::lock_guard lock(conns_mu_);
    for (auto& c : conns_)
      if (c->conn == conn) c->done.store(true);
  }

  void handle(transport::Conn& conn, transport::Frame f) {
    try {
      if (draining_stop_.load()) {
        send_err(conn, f, ServiceErrc::Shutdown, "server shutting down");
        return;
      }
      if (f.label == kLabelDecReq) {
        handle_dec(conn, f);
      } else if (f.label == kLabelRefReq) {
        handle_ref(conn, f);
      } else if (f.label == kLabelRefCommit) {
        handle_ref_commit(conn, f);
      } else if (f.label == kLabelHello) {
        handle_hello(conn, f);
      } else {
        send_err(conn, f, ServiceErrc::BadRequest, "unknown label '" + f.label + "'");
      }
    } catch (const transport::TransportError&) {
      // Response could not be delivered (client gone): nothing left to do.
    } catch (const std::exception& e) {
      try {
        send_err(conn, f, ServiceErrc::Internal, e.what());
      } catch (...) {
      }
    }
  }

  /// Decode stage (reader thread): parse, admit against the epoch
  /// coordinator, hand off to the batch collector. Admission BEFORE enqueue
  /// makes batches epoch-pure by construction -- begin_decrypt pins the
  /// epoch until end_decrypt, so a refresh can only drain (or time out)
  /// behind every queued job, never interleave with one. Returns false when
  /// the connection or the collector is shutting down.
  bool enqueue_dec(const std::shared_ptr<transport::Conn>& conn, transport::Frame f) {
    try {
      if (draining_stop_.load()) {
        send_err(*conn, f, ServiceErrc::Shutdown, "server shutting down");
        return true;
      }
      Request req;
      try {
        req = decode_request(f.body);
      } catch (const std::exception& e) {
        send_err(*conn, f, ServiceErrc::BadRequest, e.what());
        return true;
      }
      switch (coord_.begin_decrypt(req.epoch)) {
        case EpochCoordinator::Admit::Stale:
          send_err(*conn, f, ServiceErrc::StaleEpoch,
                   "request epoch " + std::to_string(req.epoch) + " != " +
                       std::to_string(coord_.epoch()));
          return true;
        case EpochCoordinator::Admit::Draining:
          send_err(*conn, f, ServiceErrc::Draining, "refresh in progress");
          return true;
        default:
          break;
      }
      const auto now = std::chrono::steady_clock::now();
      DecJob job{conn,          f.session,
                 f.trace_id,    f.parent_span,
                 req.epoch,     std::move(req.round1),
                 now,
                 req.deadline_ms == 0
                     ? std::chrono::steady_clock::time_point{}
                     : now + std::chrono::milliseconds(req.deadline_ms)};
      switch (batcher_.try_submit(job)) {
        case BatchCollector<DecJob>::Submit::Ok:
          return true;
        case BatchCollector<DecJob>::Submit::Stopped:
          coord_.end_decrypt();
          try {
            send_err(*conn, f, ServiceErrc::Shutdown, "server shutting down");
          } catch (...) {
          }
          return false;
        case BatchCollector<DecJob>::Submit::Full: {
          // Reader never blocks on a saturated batch queue (DESIGN.md §13):
          // release the admission and shed BEFORE any crypto was spent, with
          // the estimated backlog drain time as the retry floor.
          coord_.end_decrypt();
          const std::size_t depth = batcher_.queued();
          gov_.count_shed_overload();
          shed_event("cause=batch-full depth=" + std::to_string(depth),
                     gov_.shed_overload());
          send_err(*conn, f, ServiceErrc::Overloaded, "decrypt queue full",
                   gov_.retry_after_ms(depth));
          return true;
        }
      }
      return true;
    } catch (const transport::TransportError&) {
      return false;  // reply undeliverable: connection is done
    } catch (const std::exception& e) {
      try {
        send_err(*conn, f, ServiceErrc::Internal, e.what());
      } catch (...) {
        return false;
      }
      return true;
    }
  }

  void crypto_loop() {
    for (;;) {
      std::vector<DecJob> batch = batcher_.collect();
      if (batch.empty()) return;  // stopped and drained
      process_batch(batch);
    }
  }

  /// Crypto + encode stages for one micro-batch. One shared lock and one
  /// share-exponent recoding cover the whole batch; each request keeps its
  /// own adopted trace span and its own failure. Replies are grouped per
  /// connection and written with a single send_many.
  void process_batch(std::vector<DecJob>& batch) {
    const auto now = std::chrono::steady_clock::now();
    batch_size_hist().observe(static_cast<double>(batch.size()));
    for (const auto& j : batch)
      batch_wait_hist().observe(
          std::chrono::duration<double, std::micro>(now - j.enq).count());

    struct Out {
      Bytes reply;
      std::string err;
      ServiceErrc errc = ServiceErrc::BadRequest;
      bool failed = false;
      std::uint64_t stamp_trace = 0;  // svc.dec span ids captured while open
      std::uint64_t stamp_span = 0;
    };
    std::vector<Out> outs(batch.size());
    const std::uint64_t epoch0 = batch.front().epoch;
    std::size_t ran = 0;
    const auto crypto_t0 = std::chrono::steady_clock::now();
    {
      std::shared_lock lock(p2_mu_);
      const auto db = p2_.dec_batch();
      // The batch itself is the parallelism unit: W crypto workers already
      // cover the cores, so per-request coordinate fan-out on top would only
      // thrash. A lone request (idle server) keeps the fan-out.
      FanoutSuppressGuard fanout_guard(batch.size() > 1);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const DecJob& j = batch[i];
        // Deadline check at batch formation: a request that expired while
        // queued is dropped BEFORE its exponentiation is spent -- the client
        // gave up on it, so crypto on it is pure waste under overload.
        if (j.deadline != std::chrono::steady_clock::time_point{} && now >= j.deadline) {
          gov_.count_shed_deadline();
          outs[i].failed = true;
          outs[i].errc = ServiceErrc::DeadlineExceeded;
          outs[i].err = "deadline expired in queue";
          continue;
        }
        // Admission-at-enqueue makes a mixed batch impossible; the check is
        // a cheap invariant guard, counted so tests can pin it at zero.
        if (j.epoch != epoch0) {
          epoch_mixed_counter().add();
          outs[i].failed = true;
          outs[i].errc = ServiceErrc::StaleEpoch;
          outs[i].err = "batch epoch mismatch";
          continue;
        }
        ++ran;
        // Per-request span, adopting the wire trace exactly like the
        // unpipelined path: dec.round2 opens underneath inside run().
        telemetry::ScopedSpan span("svc.dec",
                                   telemetry::TraceContext{j.trace_id, j.parent_span});
        try {
          outs[i].reply = db.run(j.round1);
        } catch (const std::exception& e) {
          outs[i].failed = true;  // malformed round-1 payload: fails alone
          outs[i].errc = ServiceErrc::BadRequest;
          outs[i].err = e.what();
        }
        const auto ctx = telemetry::Tracer::global().current();
        if (ctx.active()) {
          outs[i].stamp_trace = ctx.trace_id;
          outs[i].stamp_span = ctx.span_id;
        }
      }
    }
    if (ran > 0 && opt_.inject_crypto_delay.count() > 0)
      std::this_thread::sleep_for(opt_.inject_crypto_delay);
    if (ran > 0)
      gov_.record_batch(ran, std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - crypto_t0)
                                 .count());
    for (std::size_t i = 0; i < batch.size(); ++i) coord_.end_decrypt();
    requests_.fetch_add(batch.size());
    requests_counter().add(batch.size());
    if (opt_.slow_request_ms > 0) {
      const auto done = std::chrono::steady_clock::now();
      for (const auto& j : batch) {
        const double ms = std::chrono::duration<double, std::milli>(done - j.enq).count();
        if (ms > opt_.slow_request_ms)
          telemetry::event(telemetry::EventKind::SlowRequest,
                           "ms=" + std::to_string(ms) +
                               " threshold=" + std::to_string(opt_.slow_request_ms));
      }
    }

    // Encode stage: group reply frames per connection, preserving request
    // order, then one coalesced write per connection. A dead connection
    // fails only its own requests.
    std::vector<std::pair<transport::Conn*, std::vector<transport::Frame>>> groups;
    const auto encode_now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const DecJob& j = batch[i];
      // Second deadline check, before encode: the crypto is sunk cost, but a
      // typed DeadlineExceeded is still cheaper to ship than a full reply the
      // client has already stopped waiting for.
      if (!outs[i].failed && j.deadline != std::chrono::steady_clock::time_point{} &&
          encode_now >= j.deadline) {
        gov_.count_shed_deadline();
        outs[i].failed = true;
        outs[i].errc = ServiceErrc::DeadlineExceeded;
        outs[i].err = "deadline expired before encode";
      }
      transport::Frame out;
      if (outs[i].failed) {
        out = transport::Frame{j.session, transport::FrameType::Error,
                               static_cast<std::uint8_t>(net::DeviceId::P2), kLabelErr,
                               encode_error(outs[i].errc, coord_.epoch(), outs[i].err)};
      } else {
        out = transport::Frame{j.session, transport::FrameType::Data,
                               static_cast<std::uint8_t>(net::DeviceId::P2), kLabelDecOk,
                               std::move(outs[i].reply)};
      }
      // Same stamping rule as stamp_reply, with the span ids captured while
      // the request's svc.dec span was open.
      if (j.trace_id != 0) {
        out.trace_id = outs[i].stamp_trace != 0 ? outs[i].stamp_trace : j.trace_id;
        out.parent_span = outs[i].stamp_trace != 0 ? outs[i].stamp_span : j.parent_span;
      }
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const auto& g) { return g.first == j.conn.get(); });
      if (it == groups.end()) {
        groups.emplace_back(j.conn.get(), std::vector<transport::Frame>{});
        it = std::prev(groups.end());
      }
      it->second.push_back(std::move(out));
    }
    for (auto& [conn, frames] : groups) {
      try {
        conn->send_many(frames);
      } catch (const transport::TransportError&) {
        // Client gone mid-batch: only its replies are lost.
      } catch (const std::exception&) {
      }
    }
  }

  static telemetry::Histogram& batch_size_hist() {
    static telemetry::Histogram& h = telemetry::Registry::global().histogram(
        "svc.batch.size", {1, 2, 4, 8, 16, 32, 64});
    return h;
  }

  static telemetry::Histogram& batch_wait_hist() {
    static telemetry::Histogram& h = telemetry::Registry::global().histogram(
        "svc.batch.wait_us", {25, 50, 100, 200, 400, 800, 1600, 5000});
    return h;
  }

  static telemetry::Counter& epoch_mixed_counter() {
    static telemetry::Counter& c =
        telemetry::Registry::global().counter("svc.batch.epoch_mixed");
    return c;
  }

  void handle_dec(transport::Conn& conn, const transport::Frame& f) {
    // Adopt the client's trace (frame envelope) so the worker-side spans --
    // including the crypto spans dec_respond opens underneath -- join the
    // request's tree instead of starting a server-local root.
    telemetry::ScopedSpan span("svc.dec",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    const std::int64_t t0 = telemetry::trace_now_ns();
    Request req;
    try {
      req = decode_request(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, e.what());
      return;
    }
    switch (coord_.begin_decrypt(req.epoch)) {
      case EpochCoordinator::Admit::Stale:
        send_err(conn, f, ServiceErrc::StaleEpoch, "request epoch " +
                     std::to_string(req.epoch) + " != " + std::to_string(coord_.epoch()));
        return;
      case EpochCoordinator::Admit::Draining:
        send_err(conn, f, ServiceErrc::Draining, "refresh in progress");
        return;
      default:
        break;
    }
    Bytes reply;
    bool bad_request = false;
    std::string err;
    try {
      std::shared_lock lock(p2_mu_);
      reply = p2_.dec_respond(req.round1);
    } catch (const std::exception& e) {
      bad_request = true;  // malformed round-1 payload (deser/width errors)
      err = e.what();
    }
    coord_.end_decrypt();
    requests_.fetch_add(1);
    requests_counter().add();
    if (opt_.slow_request_ms > 0) {
      const double ms =
          static_cast<double>(telemetry::trace_now_ns() - t0) / 1e6;
      if (ms > opt_.slow_request_ms)
        telemetry::event(telemetry::EventKind::SlowRequest,
                         "ms=" + std::to_string(ms) +
                             " threshold=" + std::to_string(opt_.slow_request_ms));
    }
    if (bad_request) {
      send_err(conn, f, ServiceErrc::BadRequest, err);
      return;
    }
    reply_data(conn, f, kLabelDecOk, std::move(reply));
  }

  /// PREPARE: compute + journal the next share; the served share is untouched
  /// and the epoch does not move until the commit.
  void handle_ref(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("svc.refresh",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    // Graceful degradation (DESIGN.md §13): past the high-water mark,
    // background refresh PREPAREs yield their worker time to decrypts --
    // availability degrades before anything else. Commits are never shed:
    // they finish an already-paid-for 2PC and release the drain barrier.
    // (The keystore server adds the leakage-floor exception; the 2-party
    // server has a single share whose refresh cadence is client-driven.)
    {
      const std::size_t depth = batcher_.queued() + pool_.queued();
      if (gov_.degraded(depth)) {
        gov_.count_shed_refresh();
        shed_event("cause=degraded label=svc.ref depth=" + std::to_string(depth),
                   gov_.shed_refresh());
        send_err(conn, f, ServiceErrc::Overloaded, "degraded: refresh deprioritized",
                 gov_.retry_after_ms(depth));
        return;
      }
    }
    Request req;
    try {
      req = decode_request(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, e.what());
      return;
    }
    const Bytes digest = crypto::digest_to_bytes(crypto::Sha256::hash(req.round1));
    {
      std::lock_guard lock(pending_mu_);
      if (pending_ && pending_->epoch == req.epoch && pending_->digest == digest) {
        // Duplicated prepare frame: resend the journaled reply verbatim.
        // Re-running ref_prepare would resample s' and desynchronize the
        // share the client is about to commit to.
        reply_data(conn, f, kLabelRefOk, Bytes(pending_->reply));
        return;
      }
      if (!rolled_back_digest_.empty() && rolled_back_digest_ == digest) {
        // A lingering duplicate of a refresh that hello already rolled back:
        // refusing it keeps a later stray commit frame uncommittable.
        send_err(conn, f, ServiceErrc::StaleEpoch, "refresh was rolled back");
        return;
      }
    }
    switch (coord_.begin_refresh(req.epoch, opt_.drain_deadline)) {
      case EpochCoordinator::Admit::Stale:
        send_err(conn, f, ServiceErrc::StaleEpoch, "refresh epoch " +
                     std::to_string(req.epoch) + " != " + std::to_string(coord_.epoch()));
        return;
      case EpochCoordinator::Admit::DrainTimeout:
        telemetry::event(telemetry::EventKind::DrainTimeout,
                         "phase=prepare epoch=" + std::to_string(req.epoch));
        send_err(conn, f, ServiceErrc::DrainTimeout, "drain deadline expired");
        return;
      case EpochCoordinator::Admit::Draining:
        send_err(conn, f, ServiceErrc::Draining, "refresh in progress");
        return;
      default:
        break;
    }
    typename schemes::DlrParty2<GG>::RefPrepared prep;
    bool ok = false;
    std::string err;
    try {
      std::unique_lock lock(p2_mu_);  // ref_prepare draws from the party rng
      prep = p2_.ref_prepare(req.round1);
      ok = true;
    } catch (const std::exception& e) {
      err = e.what();
    }
    coord_.finish_refresh(false);  // prepare never bumps the epoch
    if (!ok) {
      send_err(conn, f, ServiceErrc::BadRequest, err);
      return;
    }
    const Bytes share_ser = ser_share();
    Bytes reply;
    {
      std::lock_guard lock(pending_mu_);
      if (pending_ && pending_->epoch == req.epoch && pending_->digest == digest) {
        // A duplicated prepare raced us through the workers: the first writer
        // is canonical. Discard our fresh sample and resend its reply, or the
        // client could commit a digest whose installed share does not match
        // the round 2 it holds.
        reply = pending_->reply;
      } else {
        if (pending_) rollbacks_counter().add();  // superseded earlier prepare
        reply = prep.reply;
        pending_ = Pending{req.epoch, digest, std::move(prep.next), std::move(prep.reply)};
        persist(coord_.epoch(), share_ser, pending_);
        telemetry::event(telemetry::EventKind::EpochPrepare,
                         "epoch=" + std::to_string(req.epoch));
      }
    }
    reply_data(conn, f, kLabelRefOk, std::move(reply));
  }

  /// COMMIT: drain in-flight decryptions, install the pending share, persist,
  /// bump the epoch, ack. Idempotent for duplicated commit frames.
  void handle_ref_commit(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("svc.refresh",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    CommitMsg cm;
    try {
      cm = decode_commit(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, e.what());
      return;
    }
    {
      std::lock_guard lock(pending_mu_);
      if (!pending_ || pending_->epoch != cm.epoch || pending_->digest != cm.digest) {
        if (coord_.epoch() == cm.epoch + 1) {
          // Duplicate commit of an already-installed refresh.
          reply_data(conn, f, kLabelRefCommitOk, encode_commit_ok(coord_.epoch()));
        } else {
          send_err(conn, f, ServiceErrc::StaleEpoch, "no matching prepared refresh");
        }
        return;
      }
    }
    switch (coord_.begin_refresh(cm.epoch, opt_.drain_deadline)) {
      case EpochCoordinator::Admit::Stale:
        if (coord_.epoch() == cm.epoch + 1)
          reply_data(conn, f, kLabelRefCommitOk, encode_commit_ok(coord_.epoch()));
        else
          send_err(conn, f, ServiceErrc::StaleEpoch, "commit epoch " +
                       std::to_string(cm.epoch) + " != " + std::to_string(coord_.epoch()));
        return;
      case EpochCoordinator::Admit::DrainTimeout:
        telemetry::event(telemetry::EventKind::DrainTimeout,
                         "phase=commit epoch=" + std::to_string(cm.epoch));
        send_err(conn, f, ServiceErrc::DrainTimeout, "drain deadline expired");
        return;
      case EpochCoordinator::Admit::Draining:
        send_err(conn, f, ServiceErrc::Draining, "refresh in progress");
        return;
      default:
        break;
    }
    Pending p;
    {
      std::lock_guard lock(pending_mu_);
      if (!pending_ || pending_->digest != cm.digest) {
        coord_.finish_refresh(false);
        send_err(conn, f, ServiceErrc::StaleEpoch, "pending refresh changed");
        return;
      }
      p = std::move(*pending_);
      pending_.reset();
    }
    Bytes share_ser;
    {
      std::unique_lock lock(p2_mu_);
      p2_.ref_install(std::move(p.next));
      ByteWriter w;
      Core::ser_sk2(gg_, w, p2_.share());
      share_ser = w.take();
    }
    {
      std::lock_guard lock(pending_mu_);
      // Persist BEFORE the ack: once the client sees commit.ok it will
      // install its own half, so the server must never forget this install.
      persist(cm.epoch + 1, share_ser, std::nullopt);
    }
    coord_.finish_refresh(true);
    refreshes_.fetch_add(1);
    telemetry::event(telemetry::EventKind::EpochCommit,
                     "epoch=" + std::to_string(coord_.epoch()));
    reply_data(conn, f, kLabelRefCommitOk, encode_commit_ok(coord_.epoch()));
  }

  /// Reconnect reconciliation: deterministic verdict on the client's
  /// journaled PendingRefresh, discarding our own pending state when the
  /// client demonstrably never committed.
  void handle_hello(transport::Conn& conn, const transport::Frame& f) {
    HelloMsg h;
    try {
      h = decode_hello(f.body);
      // A pre-observability server would have rejected the trailing version
      // byte inside decode_hello; legacy_hello reproduces that rejection so
      // interop tests can prove the client's v1 fallback.
      if (opt_.legacy_hello && h.version != 0)
        throw std::invalid_argument("svc.hello: trailing bytes");
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, e.what());
      return;
    }
    const Bytes share_ser = journal_.attached() ? ser_share() : Bytes{};
    HelloOk ok;
    // Negotiate down to the highest version both sides speak; the echoed
    // version arms wire tracing on the client, so a legacy server (version 0)
    // never receives a trace envelope it would reject.
    ok.version = opt_.legacy_hello
                     ? 0
                     : std::min<std::uint8_t>(h.version, kWireDeadlineVersion);
    {
      std::lock_guard lock(pending_mu_);
      const std::uint64_t se = coord_.epoch();
      ok.server_epoch = se;
      if (h.has_pending) {
        if (se == h.pending_epoch + 1) {
          // We installed it (our pending slot was cleared at commit time):
          // the client rolls forward with its journaled round 2.
          ok.disposition = RefDisposition::Commit;
          telemetry::event(telemetry::EventKind::Reconcile,
                           "verdict=commit epoch=" + std::to_string(h.pending_epoch));
        } else if (se == h.pending_epoch) {
          // We never installed it: both sides roll back. Remember the digest
          // so a lingering duplicate prepare cannot resurrect the refresh.
          if (pending_) {
            pending_.reset();
            persist(se, share_ser, std::nullopt);
            telemetry::event(telemetry::EventKind::EpochRollback,
                             "epoch=" + std::to_string(se) + " cause=hello");
          }
          rolled_back_digest_ = h.pending_digest;
          rollbacks_counter().add();
          ok.disposition = RefDisposition::Rollback;
          telemetry::event(telemetry::EventKind::Reconcile,
                           "verdict=rollback epoch=" + std::to_string(h.pending_epoch));
        } else {
          send_err(conn, f, ServiceErrc::Internal,
                   "epoch fork: client pending " + std::to_string(h.pending_epoch) +
                       ", server " + std::to_string(se));
          return;
        }
      } else {
        if (pending_) {
          // The client has no record of this prepare (its journal rolled it
          // back, or it never journaled one): discard ours.
          pending_.reset();
          persist(se, share_ser, std::nullopt);
          rollbacks_counter().add();
          telemetry::event(telemetry::EventKind::EpochRollback,
                           "epoch=" + std::to_string(se) + " cause=hello-no-pending");
        }
        if (se != h.epoch) {
          send_err(conn, f, ServiceErrc::Internal,
                   "epoch fork: client " + std::to_string(h.epoch) + ", server " +
                       std::to_string(se));
          return;
        }
        ok.disposition = RefDisposition::None;
      }
    }
    reply_data(conn, f, kLabelHelloOk, encode_hello_ok(ok));
  }

  static telemetry::Counter& rollbacks_counter() {
    static telemetry::Counter& c = telemetry::Registry::global().counter("svc.rollbacks");
    return c;
  }

  static telemetry::Counter& requests_counter() {
    static telemetry::Counter& c = telemetry::Registry::global().counter("svc.requests");
    return c;
  }

  /// Stamp a reply's trace envelope iff the request carried one (a traced
  /// request proves the peer negotiated wire tracing; an untraced or legacy
  /// peer must never see the envelope flag). The reply parents under the
  /// worker's open span when there is one, else under the request's span.
  static void stamp_reply(transport::Frame& out, const transport::Frame& req) {
    if (req.trace_id == 0) return;
    const auto ctx = telemetry::Tracer::global().current();
    out.trace_id = ctx.active() ? ctx.trace_id : req.trace_id;
    out.parent_span = ctx.active() ? ctx.span_id : req.parent_span;
  }

  void reply_data(transport::Conn& conn, const transport::Frame& req, const char* label,
                  Bytes body) {
    transport::Frame out{req.session, transport::FrameType::Data,
                         static_cast<std::uint8_t>(net::DeviceId::P2), label,
                         std::move(body)};
    stamp_reply(out, req);
    conn.send(out);
  }

  void send_err(transport::Conn& conn, const transport::Frame& req, ServiceErrc code,
                const std::string& msg, std::uint32_t retry_after_ms = 0) {
    transport::Frame out{req.session, transport::FrameType::Error,
                         static_cast<std::uint8_t>(net::DeviceId::P2), kLabelErr,
                         encode_error(code, coord_.epoch(), msg, retry_after_ms)};
    stamp_reply(out, req);
    conn.send(out);
  }

  /// Rate-limited Shed event: under sustained overload the shed path fires
  /// tens of thousands of times a second; logging every 256th keeps the
  /// bounded event ring from evicting the rare events (breaker transitions,
  /// epoch changes) a post-mortem actually needs.
  static void shed_event(const std::string& detail, std::uint64_t nth) {
    if (nth % 256 == 1)
      telemetry::event(telemetry::EventKind::Shed, detail + " n=" + std::to_string(nth));
  }

  // Declaration order matters: journal_ and rec_ must initialize before p2_
  // and coord_, which consume the recovered share/epoch.
  Options opt_;
  GG gg_;  // for share serialization (p2_ owns its own copy)
  Journal journal_;
  Recovered rec_;
  schemes::DlrParty2<GG> p2_;
  mutable std::shared_mutex p2_mu_;
  EpochCoordinator coord_;
  WorkerPool pool_;
  BatchCollector<DecJob> batcher_;
  OverloadGovernor gov_;
  std::vector<std::thread> crypto_threads_;
  mutable std::mutex pending_mu_;  // guards pending_, rolled_back_digest_, journal writes
  std::optional<Pending> pending_;
  Bytes rolled_back_digest_;
  transport::Listener listener_;
  std::unique_ptr<AdminServer> admin_;
  std::chrono::steady_clock::time_point started_at_{};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<ConnState>> conns_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> refreshes_{0};
};

}  // namespace dlr::service
