#include "crypto/ots.hpp"

#include <stdexcept>

namespace dlr::crypto {

LamportOts::KeyPair LamportOts::keygen(Rng& rng) {
  KeyPair kp;
  for (std::size_t i = 0; i < kMsgBits; ++i) {
    for (int b = 0; b < 2; ++b) {
      rng.fill(kp.sk.sk[i][b]);
      kp.vk.vk[i][b] = Sha256::hash(std::span<const std::uint8_t>(kp.sk.sk[i][b]));
    }
  }
  return kp;
}

LamportOts::Signature LamportOts::sign(SigningKey& sk, std::span<const std::uint8_t> msg) {
  if (sk.used) throw std::logic_error("LamportOts: key reuse refused (one-time signature)");
  sk.used = true;
  const auto d = Sha256::hash(msg);
  Signature sig;
  for (std::size_t i = 0; i < kMsgBits; ++i) {
    const int bit = (d[i / 8] >> (i % 8)) & 1;
    sig.reveal[i] = sk.sk[i][bit];
  }
  return sig;
}

bool LamportOts::verify(const VerifyKey& vk, std::span<const std::uint8_t> msg,
                        const Signature& sig) {
  const auto d = Sha256::hash(msg);
  for (std::size_t i = 0; i < kMsgBits; ++i) {
    const int bit = (d[i / 8] >> (i % 8)) & 1;
    if (Sha256::hash(std::span<const std::uint8_t>(sig.reveal[i])) != vk.vk[i][bit])
      return false;
  }
  return true;
}

Bytes LamportOts::serialize_vk(const VerifyKey& vk) {
  ByteWriter w;
  for (const auto& pair : vk.vk)
    for (const auto& d : pair) w.raw(d);
  return w.take();
}

LamportOts::VerifyKey LamportOts::deserialize_vk(ByteReader& r) {
  VerifyKey vk;
  for (auto& pair : vk.vk) {
    for (auto& d : pair) {
      const auto b = r.raw(32);
      std::copy(b.begin(), b.end(), d.begin());
    }
  }
  return vk;
}

Bytes LamportOts::serialize_sig(const Signature& sig) {
  ByteWriter w;
  for (const auto& p : sig.reveal) w.raw(p);
  return w.take();
}

LamportOts::Signature LamportOts::deserialize_sig(ByteReader& r) {
  Signature sig;
  for (auto& p : sig.reveal) {
    const auto b = r.raw(32);
    std::copy(b.begin(), b.end(), p.begin());
  }
  return sig;
}

}  // namespace dlr::crypto
