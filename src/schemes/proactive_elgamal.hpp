// A classical 2-party *proactive* threshold ElGamal -- the comparison point
// for the paper's remark (Section 1.1) that "splitting decryption keys and
// doing distributed decryption is not a new idea but was extensively pursued
// in the proactive world. But the motivation as well as the adversary model
// here are different."
//
//   sk = x = x1 + x2 (additive shares), pk h = g^{x1+x2}
//   Dec(u, v):  P1 publishes u^{x1}; P2 outputs v / (u^{x1} * u^{x2})
//   Refresh:    P1 draws delta; x1 += delta, x2 -= delta.
//
// The proactive model's refresh assumes a PRIVATE channel for delta (or yet
// another encryption layer): transmit it over the public channel and the
// adversary simply tracks the share drift, so leakage gathered about x1 in
// period 0 stays valid forever (experiment F11). DLR's refresh messages are
// HPSKE ciphertexts, so the same public channel reveals nothing useful --
// that is precisely the delta (pun intended) between the proactive model
// (full compromise of one device, private channels) and the continual-
// leakage model (partial leakage of both devices, public channels only).
//
// ChannelMode::Private models the classical assumption (delta never appears
// on the wire); ChannelMode::Public is the honest cost of running the
// classical protocol in the paper's communication model.
#pragma once

#include "crypto/rng.hpp"
#include "net/transcript.hpp"
#include "group/bilinear.hpp"
#include "telemetry/trace.hpp"

namespace dlr::schemes {

enum class ChannelMode { Private, Public };

template <group::BilinearGroup GG>
class ProactiveElGamal {
 public:
  using Scalar = typename GG::Scalar;
  using G = typename GG::G;

  struct Ciphertext {
    G u{};
    G v{};
  };

  ProactiveElGamal(GG gg, ChannelMode mode, std::uint64_t seed)
      : gg_(std::move(gg)), mode_(mode), rng_(crypto::Rng(seed).fork("proactive")) {
    x1_ = gg_.sc_random(rng_);
    x2_ = gg_.sc_random(rng_);
    h_ = gg_.g_pow(gg_.g_gen(), gg_.sc_add(x1_, x2_));
  }

  [[nodiscard]] const G& pk() const { return h_; }

  Ciphertext enc(const G& m, crypto::Rng& rng) const {
    telemetry::ScopedSpan span("proactive.enc");
    const Scalar t = gg_.sc_random(rng);
    return {gg_.g_pow(gg_.g_gen(), t), gg_.g_mul(m, gg_.g_pow(h_, t))};
  }

  /// 2-party decryption over a recording channel: P1's partial decryption is
  /// public (that much matches DLR's model).
  [[nodiscard]] G dec(const Ciphertext& c, net::Channel& ch) const {
    telemetry::ScopedSpan span("proactive.dec");
    const G partial1 = gg_.g_pow(c.u, x1_);
    ByteWriter w;
    gg_.g_ser(w, partial1);
    ch.send(net::DeviceId::P1, "pdec.r1", w.take());
    const G mask = gg_.g_mul(partial1, gg_.g_pow(c.u, x2_));
    return gg_.g_mul(c.v, gg_.g_inv(mask));
  }

  /// Proactive refresh. In Public mode the correlated randomness delta is
  /// serialized onto the channel (no private channel exists in the paper's
  /// model); in Private mode it is assumed to move out of band.
  void refresh(net::Channel& ch) {
    telemetry::ScopedSpan span("proactive.refresh");
    const Scalar delta = gg_.sc_random(rng_);
    if (mode_ == ChannelMode::Public) {
      ByteWriter w;
      gg_.sc_ser(w, delta);
      ch.send(net::DeviceId::P1, "pref.delta", w.take());
    } else {
      ch.send(net::DeviceId::P1, "pref.notice", Bytes{0});  // content-free
    }
    x1_ = gg_.sc_add(x1_, delta);
    x2_ = gg_.sc_sub(x2_, delta);
  }

  /// Device secret memories (serialized shares), as leakage-function inputs.
  [[nodiscard]] Bytes p1_secret() const {
    ByteWriter w;
    gg_.sc_ser(w, x1_);
    return w.take();
  }
  [[nodiscard]] Bytes p2_secret() const {
    ByteWriter w;
    gg_.sc_ser(w, x2_);
    return w.take();
  }

  /// Proactive-model headline feature: tolerate FULL compromise of one
  /// device. Handing out x1 alone must not break semantic security.
  [[nodiscard]] const Scalar& compromise_p1() const { return x1_; }

  /// Test oracle.
  [[nodiscard]] Scalar reconstruct_for_test() const { return gg_.sc_add(x1_, x2_); }

 private:
  GG gg_;
  ChannelMode mode_;
  crypto::Rng rng_;
  Scalar x1_{}, x2_{};
  G h_{};
};

}  // namespace dlr::schemes
