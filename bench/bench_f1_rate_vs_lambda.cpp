// F1 -- leakage rate as a function of the leakage parameter lambda
// (Theorem 4.1: b1 = (1 - c*n/(lambda + c*n)) * m1, i.e. rho1 -> 1 - o(1)).
//
// Series printed: the paper's formula against the implementation-measured
// b1/m1 from real serialized memory sizes, for both P1 storage modes, plus
// the refresh-time rate approaching 1/2. Byte-exact memory sizes are
// validated against live systems at small lambda (where instantiating a
// full SS512 system is cheap) and evaluated in closed form across the sweep
// -- the sizes are deterministic in the parameters, which the validation
// asserts.
#include "bench_util.hpp"
#include "group/tate_group.hpp"
#include "leakage/rates.hpp"
#include "schemes/dlr.hpp"

namespace {

using namespace dlr;

struct P1Sizes {
  std::size_t normal_bits;
  std::size_t refresh_bits;
};

/// Closed-form serialized P1 secret-memory sizes (mirrors
/// DlrParty1::secret_bits; validated against live systems below).
P1Sizes p1_sizes(const group::TateSS512& gg, const schemes::DlrParams& prm,
                 schemes::P1Mode mode) {
  const std::size_t sc = gg.sc_bytes(), ge = gg.g_bytes();
  const std::size_t skcomm = prm.kappa * sc;
  if (mode == schemes::P1Mode::Plain) {
    const std::size_t sk1 = (prm.ell + 1) * ge;
    return {8 * (sk1 + skcomm), 8 * (2 * sk1 + skcomm)};
  }
  return {8 * (skcomm + ge), 8 * (2 * skcomm + ge)};
}

}  // namespace

int main() {
  using namespace dlr::bench;

  banner("F1: leakage rate vs lambda", "Theorem 4.1 leakage parameters");

  const auto gg = group::make_tate_ss512();
  const std::size_t n = gg.scalar_bits();

  // Validate the closed form against live systems at small lambda.
  for (const std::size_t mult : {1u, 2u}) {
    const auto prm = schemes::DlrParams::derive(n, mult * n);
    for (const auto mode : {schemes::P1Mode::Plain, schemes::P1Mode::Compact}) {
      auto sys = schemes::DlrSystem<group::TateSS512>::create(gg, prm, mode, 1);
      const auto sizes = p1_sizes(gg, prm, mode);
      if (sys.p1().secret_bits(net::Phase::Normal) != sizes.normal_bits ||
          sys.p1().secret_bits(net::Phase::Refresh) != sizes.refresh_bits) {
        std::printf("FAIL: closed-form sizes diverge from the implementation\n");
        return 1;
      }
    }
  }
  std::printf("closed-form sizes validated against live systems at lambda in {n, 2n}.\n\n");

  Table t({"lambda/n", "paper rho1", "measured rho1 (compact)", "measured rho1 (plain)",
           "paper rho1_ref", "measured rho1_ref (compact)"});

  for (const std::size_t mult : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 1024u}) {
    const std::size_t lambda = mult * n;
    const auto prm = schemes::DlrParams::derive(n, lambda);
    const auto paper = leakage::paper_rates(prm);
    const auto compact = p1_sizes(gg, prm, schemes::P1Mode::Compact);
    const auto plain = p1_sizes(gg, prm, schemes::P1Mode::Plain);

    t.row({std::to_string(mult), fmt(paper.p1, 4),
           fmt(static_cast<double>(prm.b1_bits()) / compact.normal_bits, 4),
           fmt(static_cast<double>(prm.b1_bits()) / plain.normal_bits, 4),
           fmt(paper.p1_ref, 4),
           fmt(static_cast<double>(prm.b1_bits()) / compact.refresh_bits, 4)});
  }
  t.print();

  std::printf(
      "\nShape check: compact-mode measured rho1 tracks the paper's\n"
      "lambda/(lambda+4n) curve (log r = 160 bits = exactly 20 serialized bytes,\n"
      "so the only constant gap is the uncompressed scratch point) and tends to 1\n"
      "as lambda grows; the refresh rate tends to 1/2. Plain mode stalls near 0\n"
      "because P1 then stores the whole l-element share -- exactly why the\n"
      "paper's remark moves sk1 into encrypted public memory.\n");
  return 0;
}
