// Tests for the proactive-ElGamal comparison scheme and the model-contrast
// attack: drift-tracking over a public channel defeats classical proactive
// refresh, while DLR's HPSKE-protected refresh resists the same strategy
// (the F11 experiment's core, in unit-test form).
#include <gtest/gtest.h>

#include "group/mock_group.hpp"
#include "schemes/dlr.hpp"
#include "schemes/proactive_elgamal.hpp"

namespace dlr::schemes {
namespace {

using crypto::Rng;
using group::make_mock;
using group::MockGroup;

TEST(ProactiveElGamalTest, EncDecRoundTrip) {
  const auto gg = make_mock();
  ProactiveElGamal<MockGroup> pe(gg, ChannelMode::Private, 8000);
  Rng rng(8001);
  for (int i = 0; i < 20; ++i) {
    const auto m = gg.g_random(rng);
    net::Channel ch;
    EXPECT_TRUE(gg.g_eq(pe.dec(pe.enc(m, rng), ch), m));
  }
}

TEST(ProactiveElGamalTest, RefreshPreservesKeyAndChangesShares) {
  const auto gg = make_mock();
  ProactiveElGamal<MockGroup> pe(gg, ChannelMode::Private, 8002);
  const auto x = pe.reconstruct_for_test();
  const auto x1_before = pe.compromise_p1();
  Rng rng(8003);
  for (int t = 0; t < 5; ++t) {
    net::Channel ch;
    pe.refresh(ch);
    EXPECT_EQ(pe.reconstruct_for_test(), x);
    const auto m = gg.g_random(rng);
    net::Channel ch2;
    EXPECT_TRUE(gg.g_eq(pe.dec(pe.enc(m, rng), ch2), m));
  }
  EXPECT_NE(pe.compromise_p1(), x1_before);
}

TEST(ProactiveElGamalTest, FullCompromiseOfOneDeviceIsUseless) {
  // The proactive model's strength: x1 alone is an independent uniform
  // scalar, information-theoretically independent of x = x1 + x2.
  const auto gg = make_mock();
  Rng rng(8004);
  // Over many fresh systems, (x1, x) are jointly "random-looking": x1 == x
  // about 1/r of the time etc. Cheap sanity proxy: x1 never *determines* the
  // reconstruction across systems with the same x1-seed but different x2.
  ProactiveElGamal<MockGroup> a(gg, ChannelMode::Private, 1);
  ProactiveElGamal<MockGroup> b(gg, ChannelMode::Private, 2);
  EXPECT_NE(a.reconstruct_for_test(), b.reconstruct_for_test());
}

TEST(ProactiveElGamalTest, PublicChannelRefreshLeaksDelta) {
  const auto gg = make_mock();
  ProactiveElGamal<MockGroup> pe(gg, ChannelMode::Public, 8005);
  const auto x1_0 = pe.compromise_p1();
  net::Channel ch;
  pe.refresh(ch);
  // The adversary reads delta straight off the transcript...
  ASSERT_EQ(ch.transcript().count(), 1u);
  ByteReader r(ch.transcript().messages()[0].body);
  const auto delta = gg.sc_deser(r);
  // ...and tracks the new share exactly.
  EXPECT_EQ(pe.compromise_p1(), gg.sc_add(x1_0, delta));
}

TEST(ProactiveElGamalTest, PrivateChannelRefreshLeaksNothing) {
  const auto gg = make_mock();
  ProactiveElGamal<MockGroup> pe(gg, ChannelMode::Private, 8006);
  net::Channel ch;
  pe.refresh(ch);
  EXPECT_EQ(ch.transcript().messages()[0].body.size(), 1u);  // content-free notice
}

// The model contrast, end to end: an adversary that (a) leaks a few bits of
// P1's share per period and (b) reads the public refresh traffic.
//
// Against public-channel proactive ElGamal, share drift is fully known, so
// period-t bits remain valid statements about the *current* share: after
// enough periods the adversary owns x1 -- and combined with the SAME
// strategy against P2 (b2 = m2 in our model!) it owns x and decrypts.
//
// Against DLR, the refresh transcript is HPSKE ciphertexts; accumulated bits
// go stale every period (already shown in game_test); here we check the
// transcripts differ structurally: no DLR refresh message determines the
// share update.
TEST(ProactiveVsDlrTest, DriftTrackingBreaksProactiveNotDlr) {
  const auto gg = make_mock();
  Rng rng(8007);

  // --- proactive, public channel ------------------------------------------------
  ProactiveElGamal<MockGroup> pe(gg, ChannelMode::Public, 8008);
  const std::size_t share_bits = 8 * gg.sc_bytes();
  const std::size_t window = 8;  // tiny per-period leakage
  Bytes acc(gg.sc_bytes(), 0);
  std::uint64_t drift = 0;  // total delta since period 0 (read off the wire)
  const std::size_t periods = (share_bits + window - 1) / window;
  for (std::size_t t = 0; t < periods; ++t) {
    // Leak `window` bits of the *current* x1, positions t*window...
    const auto secret = pe.p1_secret();
    for (std::size_t i = 0; i < window; ++i) {
      const std::size_t pos = t * window + i;
      if (pos >= share_bits) break;
      // The adversary normalizes the current share back to x1^0 using the
      // tracked drift -- possible only because delta is public.
      // x1^t = x1^0 + drift  =>  it leaks bits of (x1^t - drift).
      ByteReader r(secret);
      const auto x1_t = gg.sc_deser(r);
      const auto x1_0 = gg.sc_sub(x1_t, gg.sc_from_u64(drift % gg.order_u64()));
      ByteWriter w;
      gg.sc_ser(w, x1_0);
      const auto& norm = w.bytes();
      if ((norm[pos / 8] >> (pos % 8)) & 1)
        acc[pos / 8] |= static_cast<std::uint8_t>(1u << (pos % 8));
    }
    net::Channel ch;
    pe.refresh(ch);
    ByteReader r(ch.transcript().messages()[0].body);
    drift = (drift + gg.sc_deser(r)) % gg.order_u64();
  }
  // Reassembled x1^0 + tracked drift == current x1: full recovery.
  ByteReader r(acc);
  const auto x1_0_recovered = gg.sc_deser(r);
  const auto x1_now = gg.sc_add(x1_0_recovered, gg.sc_from_u64(drift % gg.order_u64()));
  EXPECT_EQ(x1_now, pe.compromise_p1());

  // --- DLR -----------------------------------------------------------------------
  // Its refresh transcript consists of HPSKE ciphertexts; P2's new share s'
  // is sampled locally and never appears on the wire in any recoverable
  // form. Structural check: the refresh reply is width kappa+1 ciphertext
  // coordinates, and two refreshes of the same system produce unrelated
  // transcripts (no drift to track).
  const auto prm = DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  auto sys = DlrSystem<MockGroup>::create(gg, prm, P1Mode::Plain, 8009);
  net::Channel ch1, ch2;
  sys.refresh(ch1);
  sys.refresh(ch2);
  EXPECT_NE(ch1.transcript().serialize(), ch2.transcript().serialize());
  const auto s_after = sys.p2().share().s;
  // Nothing in the transcript equals any share coordinate (the coordinates
  // are HPSKE-masked): compare raw bytes.
  const auto tr = ch2.transcript().serialize();
  ByteWriter w;
  for (const auto& s : s_after) gg.sc_ser(w, s);
  const auto share_bytes = w.bytes();
  // A sliding-window containment check: the serialized share does not appear
  // in the transcript.
  const auto& hay = tr;
  bool found = false;
  if (share_bytes.size() <= hay.size()) {
    for (std::size_t off = 0; off + share_bytes.size() <= hay.size() && !found; ++off)
      found = std::equal(share_bytes.begin(), share_bytes.end(), hay.begin() + off);
  }
  EXPECT_FALSE(found);
}

}  // namespace
}  // namespace dlr::schemes
