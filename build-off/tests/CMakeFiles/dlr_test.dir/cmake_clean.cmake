file(REMOVE_RECURSE
  "CMakeFiles/dlr_test.dir/dlr_test.cpp.o"
  "CMakeFiles/dlr_test.dir/dlr_test.cpp.o.d"
  "dlr_test"
  "dlr_test.pdb"
  "dlr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
