# Empty dependencies file for bench_t1_efficiency.
# This may be replaced when dependencies are built.
