// Tate pairing on the type-A supersingular curve E: y^2 = x^3 + x over F_q,
// q == 3 (mod 4), with distortion map phi(x, y) = (-x, i*y) into E(F_{q^2}).
//
//   e(P, Q) = f_{r,P}(phi(Q)) ^ ((q^2 - 1)/r),   P, Q in G = E(F_q)[r]
//
// The Miller loop runs in Jacobian coordinates with denominator elimination:
// since q+1 = r*h, the final exponentiation (q^2-1)/r = (q-1)*h kills every
// F_q^* factor, so vertical lines and all line denominators are dropped.
// phi(Q) has x-coordinate in F_q and purely imaginary y-coordinate, making
// line evaluations cost only F_q multiplications.
//
// The final exponentiation uses f^(q-1) = conj(f)/f (Frobenius on F_{q^2} is
// conjugation) followed by an exponentiation by the cofactor h = (q+1)/r.
// GT is the order-r subgroup of F_{q^2}^*; its elements have norm 1, so
// inversion in GT is conjugation.
#pragma once

#include <memory>
#include <string>

#include "crypto/sha256.hpp"
#include "ec/curve.hpp"
#include "field/fp2.hpp"

namespace dlr::pairing {

using mpint::UInt;

/// Cofactors in this library fit in 12 limbs (SS1024's h is 768 bits).
using Cofactor = UInt<12>;

template <std::size_t LQ, std::size_t LR>
class PairingCtx {
 public:
  using Fq = field::FpCtx<LQ>;
  using Fq2 = field::Fp2Ctx<LQ>;
  using Curve = ec::CurveCtx<LQ>;
  using G = ec::AffinePoint<LQ>;   // source-group element
  using GT = field::Fp2E<LQ>;      // target-group element (norm-1, order r)

  PairingCtx(const UInt<LQ>& q, const UInt<LR>& r, const Cofactor& h, std::string name)
      : fq_(q), fq2_(fq_), curve_(fq_), r_(r), h_(h), name_(std::move(name)) {
    validate();
    gen_ = find_generator();
    gt_gen_ = pair(gen_, gen_);
    if (fq2_.eq(gt_gen_, fq2_.one()))
      throw std::logic_error("PairingCtx: degenerate pairing e(g, g) == 1");
  }

  [[nodiscard]] const Fq& fq() const { return fq_; }
  [[nodiscard]] const Fq2& fq2() const { return fq2_; }
  [[nodiscard]] const Curve& curve() const { return curve_; }
  [[nodiscard]] const UInt<LR>& order() const { return r_; }
  [[nodiscard]] const Cofactor& cofactor() const { return h_; }
  [[nodiscard]] const G& generator() const { return gen_; }
  [[nodiscard]] const GT& gt_generator() const { return gt_gen_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Group membership: on curve and killed by r.
  [[nodiscard]] bool in_group(const G& p) const {
    if (p.inf) return true;
    if (!curve_.is_on_curve(p)) return false;
    return curve_.mul(p, r_).inf;
  }

  /// Map a curve point of any order into the order-r subgroup.
  [[nodiscard]] G clear_cofactor(const G& p) const { return curve_.mul(p, h_); }

  /// Uniform element of G sampled *without a known discrete log* (the paper's
  /// Section 5 remark requires the a_i and HPSKE coins to be sampled as raw
  /// group elements so their dlogs never enter secret memory).
  [[nodiscard]] G random_point(crypto::Rng& rng) const {
    for (;;) {
      const auto x = fq_.random(rng);
      const bool sign = rng.coin();
      const auto p = curve_.lift_x(x, sign);
      if (!p) continue;
      const auto g = clear_cofactor(*p);
      if (!g.inf) return g;
    }
  }

  /// Deterministic hash-to-group (used for the IBE's public matrix U).
  [[nodiscard]] G hash_to_point(const Bytes& data) const {
    for (std::uint32_t ctr = 0;; ++ctr) {
      ByteWriter w;
      w.str("dlr.h2g." + name_);
      w.blob(data);
      w.u32(ctr);
      const auto digest = crypto::kdf(w.bytes(), 8 * LQ, "dlr.h2g.kdf");
      auto v = UInt<LQ>::from_bytes(digest);
      const auto x = fq_.from_uint(mpint::mod(mpint::resize<2 * LQ>(v), fq_.modulus()));
      const auto p = curve_.lift_x(x, (digest[0] & 1) != 0);
      if (!p) continue;
      const auto g = clear_cofactor(*p);
      if (!g.inf) return g;
    }
  }

  /// Uniform element of GT without a known discrete log: x^((q-1)h) for
  /// uniform x in F_{q^2}^* surjects onto the order-r subgroup.
  [[nodiscard]] GT random_gt(crypto::Rng& rng) const {
    for (;;) {
      const auto x = fq2_.random_nonzero(rng);
      const auto y = gt_from_field(x);
      if (!fq2_.eq(y, fq2_.one())) return y;
    }
  }

  /// Project an arbitrary nonzero field element onto GT. The first factor
  /// u = x^(q-1) satisfies u^(q+1) = x^(q^2-1) = 1, i.e. it is norm-1, so the
  /// cofactor exponentiation may take the fast lane.
  [[nodiscard]] GT gt_from_field(const GT& x) const {
    const auto u = fq2_.mul(fq2_.conj(x), fq2_.inv(x));  // x^(q-1)
    return fq2_.pow_norm1(u, h_);
  }

  /// GT inversion: conjugation (elements have norm 1).
  [[nodiscard]] GT gt_inv(const GT& x) const { return fq2_.conj(x); }

  /// The Tate pairing, reduced (output in GT, e(P,Q)=1 iff P or Q infinite).
  [[nodiscard]] GT pair(const G& p, const G& q) const {
    if (p.inf || q.inf) return fq2_.one();
    const auto f = miller(p, q);
    return final_exp(f);
  }

  /// Miller function f_{r,P}(phi(Q)) before the final exponentiation.
  [[nodiscard]] GT miller(const G& p, const G& q) const {
    const auto& fq = fq_;
    // phi(Q) = (-xQ, i yQ): the line formulas below absorb the x-negation
    // (they are written in terms of xQ directly); yQ scales the imaginary
    // part of every line value.
    const auto yq = q.y;

    GT f = fq2_.one();
    ec::JacPoint<LQ> t = curve_.to_jac(p);
    const std::size_t nbits = r_.bit_length();
    for (std::size_t i = nbits - 1; i-- > 0;) {
      // --- doubling step: line value then T <- 2T (shares intermediates) ---
      {
        const auto y2 = fq.sqr(t.Y);
        const auto z2 = fq.sqr(t.Z);
        const auto m = fq.add(fq.mul(three(), fq.sqr(t.X)), fq.sqr(z2));  // 3X^2 + Z^4
        // line: real = -2Y^2 + m*(Z^2*xQ' + X) with xQ' = xS...
        // derived with xS = -xQ:  real = -2Y^2 + m*(Z^2*(-xS) + X)? No:
        // real = -2Y^2 + m*(Z^2*xQ + X) where xQ = -xS. Use xq = q.x.
        const auto real = fq.sub(fq.mul(m, fq.add(fq.mul(z2, q.x), t.X)), fq.dbl(y2));
        const auto imag = fq.mul(fq.mul(fq.dbl(fq.mul(t.Y, t.Z)), z2), yq);  // Z3*Z^2*yQ
        const GT line{real, imag};
        f = fq2_.mul(fq2_.sqr(f), line);
        // T <- 2T
        const auto s = fq.dbl(fq.dbl(fq.mul(t.X, y2)));
        const auto x3 = fq.sub(fq.sqr(m), fq.dbl(s));
        const auto y3 = fq.sub(fq.mul(m, fq.sub(s, x3)), fq.dbl(fq.dbl(fq.dbl(fq.sqr(y2)))));
        const auto z3 = fq.dbl(fq.mul(t.Y, t.Z));
        t = {x3, y3, z3};
      }
      if (r_.bit(i)) {
        // --- mixed addition step: T <- T + P with line through T, P ---
        const auto z1z1 = fq.sqr(t.Z);
        const auto u2 = fq.mul(p.x, z1z1);
        const auto s2 = fq.mul(p.y, fq.mul(z1z1, t.Z));
        const auto hh = fq.sub(u2, t.X);
        const auto rr = fq.sub(s2, t.Y);
        if (fq.is_zero(hh)) {
          // T == +-P. For odd prime r this is the final vertical line
          // (T = -P, next T = infinity); the line x - xP lies in F_q and is
          // erased by the final exponentiation.
          if (!fq.is_zero(rr)) {
            t = {fq.one(), fq.one(), fq.zero()};
            continue;
          }
          throw std::logic_error("miller: unexpected doubling inside addition step");
        }
        const auto z3 = fq.mul(t.Z, hh);
        // line: real = -Z3*yP + R*(xQ + xP); imag = Z3*yQ  (negated overall
        // relative to the tangent convention -- an F_q^* factor, irrelevant).
        const auto real = fq.sub(fq.mul(rr, fq.add(q.x, p.x)), fq.mul(z3, p.y));
        const auto imag = fq.mul(z3, yq);
        const GT line{real, imag};
        f = fq2_.mul(f, line);
        const auto h2 = fq.sqr(hh);
        const auto h3 = fq.mul(h2, hh);
        const auto v = fq.mul(t.X, h2);
        const auto x3 = fq.sub(fq.sub(fq.sqr(rr), h3), fq.dbl(v));
        const auto y3 = fq.sub(fq.mul(rr, fq.sub(v, x3)), fq.mul(t.Y, h3));
        t = {x3, y3, z3};
      }
    }
    return f;
  }

  /// f -> f^((q^2-1)/r) = (conj(f)/f)^h. Reference implementation (generic
  /// Fq2 inversion + square-and-multiply); the hot path uses final_exp_fast.
  [[nodiscard]] GT final_exp(const GT& f) const {
    const auto u = fq2_.mul(fq2_.conj(f), fq2_.inv(f));
    return fq2_.pow(u, h_);
  }

  /// Same map on the norm-1 fast lane: conj(f)/f = conj(f^2)/norm(f) needs
  /// only a base-field inversion (batchable -- see PreparedPairing), and the
  /// cofactor exponentiation of the norm-1 intermediate uses signed windows
  /// with free inversion plus cyclotomic-style squaring. Agrees with
  /// final_exp exactly.
  [[nodiscard]] GT final_exp_fast(const GT& f) const {
    const auto u = fq2_.scale(fq2_.conj(fq2_.sqr(f)), fq_.inv(fq2_.norm(f)));
    return fq2_.pow_norm1(u, h_);
  }

 private:
  void validate() const {
    // r * h == q + 1 (so the curve order q+1 contains the order-r subgroup
    // and the final exponentiation decomposes as (q-1)*h).
    const auto rh = mpint::mul_wide(mpint::resize<LQ>(r_), h_);  // UInt<LQ+12>
    const auto q1 = mpint::resize<LQ + 12>(fq_.modulus()) + mpint::UInt<LQ + 12>::from_u64(1);
    if (rh != q1) throw std::invalid_argument("PairingCtx: r*h != q+1");
    if ((fq_.modulus().limb[0] & 3) != 3)
      throw std::invalid_argument("PairingCtx: q != 3 mod 4");
  }

  [[nodiscard]] G find_generator() const {
    for (std::uint64_t xi = 1;; ++xi) {
      const auto x = fq_.from_uint(UInt<LQ>::from_u64(xi));
      const auto p = curve_.lift_x(x, false);
      if (!p) continue;
      const auto g = clear_cofactor(*p);
      if (g.inf) continue;
      if (!curve_.mul(g, r_).inf)
        throw std::logic_error("PairingCtx: cofactor-cleared point not killed by r");
      return g;
    }
  }

  [[nodiscard]] UInt<LQ> three() const { return three_; }

  Fq fq_;
  Fq2 fq2_;
  Curve curve_;
  UInt<LR> r_;
  Cofactor h_;
  std::string name_;
  G gen_{};
  GT gt_gen_{};
  UInt<LQ> three_ = fq_.from_uint(UInt<LQ>::from_u64(3));
};

// ---- fixed-argument pairing -------------------------------------------------
//
// Every line the Miller loop multiplies into f has the shape
//
//   line(Q) = (c0 + cx * xQ) + (cy * yQ) i
//
// where c0/cx/cy depend only on P and the running point T -- not on Q. For a
// fixed first argument the whole loop over T can therefore run once,
// recording ~|r| coefficient triples; evaluating against a second argument
// then costs 3 F_q muls per step plus the shared-squaring chain, about 1/3 of
// a full Miller loop, and the final exponentiation rides the norm-1 fast
// lane. pair_many() additionally batches the per-evaluation base-field
// inversion (Montgomery simultaneous inversion), leaving ONE Fermat
// inversion for an entire ciphertext row.
//
// Outputs agree exactly with PairingCtx::pair: the recorded steps replay the
// same multiplication sequence, and final_exp_fast computes the same map as
// final_exp.

template <std::size_t LQ, std::size_t LR>
class PreparedPairing {
 public:
  using Ctx = PairingCtx<LQ, LR>;
  using G = typename Ctx::G;
  using GT = typename Ctx::GT;

  PreparedPairing(std::shared_ptr<const Ctx> ctx, const G& p)
      : ctx_(std::move(ctx)), inf_(p.inf) {
    if (!inf_) precompute(p);
  }

  /// e(P, q) for the fixed P.
  [[nodiscard]] GT pair(const G& q) const {
    if (inf_ || q.inf) return ctx_->fq2().one();
    return ctx_->final_exp_fast(miller_eval(q));
  }

  /// e(P, q_j) for many q_j, sharing one batched inversion across the final
  /// exponentiations.
  [[nodiscard]] std::vector<GT> pair_many(std::span<const G> qs) const {
    const auto& fq = ctx_->fq();
    const auto& f2 = ctx_->fq2();
    std::vector<GT> out(qs.size(), f2.one());
    if (inf_) return out;
    std::vector<GT> conj2;               // conj(m^2) per non-infinite q
    std::vector<UInt<LQ>> norms;         // norm(m) per non-infinite q
    std::vector<std::size_t> idx;
    conj2.reserve(qs.size());
    norms.reserve(qs.size());
    idx.reserve(qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      if (qs[i].inf) continue;
      const GT m = miller_eval(qs[i]);
      conj2.push_back(f2.conj(f2.sqr(m)));
      norms.push_back(f2.norm(m));
      idx.push_back(i);
    }
    fq.batch_inv(norms);
    for (std::size_t j = 0; j < idx.size(); ++j) {
      const GT u = f2.scale(conj2[j], norms[j]);  // conj(m)/m, norm-1
      out[idx[j]] = f2.pow_norm1(u, ctx_->cofactor());
    }
    return out;
  }

  /// f_{r,P}(phi(q)) before the final exponentiation (bit-identical to
  /// PairingCtx::miller(P, q)).
  [[nodiscard]] GT miller_eval(const G& q) const {
    const auto& fq = ctx_->fq();
    const auto& f2 = ctx_->fq2();
    GT f = f2.one();
    for (const auto& s : steps_) {
      const GT line{fq.add(s.c0, fq.mul(s.cx, q.x)), fq.mul(s.cy, q.y)};
      f = s.dbl ? f2.mul(f2.sqr(f), line) : f2.mul(f, line);
    }
    return f;
  }

  [[nodiscard]] bool base_is_infinity() const { return inf_; }
  [[nodiscard]] std::size_t steps() const { return steps_.size(); }
  [[nodiscard]] const std::shared_ptr<const Ctx>& ctx() const { return ctx_; }

 private:
  struct Step {
    UInt<LQ> c0, cx, cy;  // line(Q) = (c0 + cx*xQ, cy*yQ)
    bool dbl;             // doubling step: square f before the line mul
  };

  // Replays PairingCtx::miller symbolically over Q: identical T-updates and
  // branch structure, with the Q-dependent factors left as coefficients.
  void precompute(const G& p) {
    const auto& fq = ctx_->fq();
    const auto& cv = ctx_->curve();
    const auto three = fq.from_uint(UInt<LQ>::from_u64(3));
    const auto& r = ctx_->order();
    ec::JacPoint<LQ> t = cv.to_jac(p);
    const std::size_t nbits = r.bit_length();
    steps_.reserve(nbits + nbits / 2);
    for (std::size_t i = nbits - 1; i-- > 0;) {
      {
        const auto y2 = fq.sqr(t.Y);
        const auto z2 = fq.sqr(t.Z);
        const auto m = fq.add(fq.mul(three, fq.sqr(t.X)), fq.sqr(z2));  // 3X^2 + Z^4
        steps_.push_back(Step{fq.sub(fq.mul(m, t.X), fq.dbl(y2)),        // c0
                              fq.mul(m, z2),                             // cx
                              fq.mul(fq.dbl(fq.mul(t.Y, t.Z)), z2),      // cy
                              true});
        const auto s = fq.dbl(fq.dbl(fq.mul(t.X, y2)));
        const auto x3 = fq.sub(fq.sqr(m), fq.dbl(s));
        const auto y3 =
            fq.sub(fq.mul(m, fq.sub(s, x3)), fq.dbl(fq.dbl(fq.dbl(fq.sqr(y2)))));
        const auto z3 = fq.dbl(fq.mul(t.Y, t.Z));
        t = {x3, y3, z3};
      }
      if (r.bit(i)) {
        const auto z1z1 = fq.sqr(t.Z);
        const auto u2 = fq.mul(p.x, z1z1);
        const auto s2 = fq.mul(p.y, fq.mul(z1z1, t.Z));
        const auto hh = fq.sub(u2, t.X);
        const auto rr = fq.sub(s2, t.Y);
        if (fq.is_zero(hh)) {
          if (!fq.is_zero(rr)) {
            t = {fq.one(), fq.one(), fq.zero()};
            continue;
          }
          throw std::logic_error("miller: unexpected doubling inside addition step");
        }
        const auto z3 = fq.mul(t.Z, hh);
        steps_.push_back(
            Step{fq.sub(fq.mul(rr, p.x), fq.mul(z3, p.y)), rr, z3, false});
        const auto h2 = fq.sqr(hh);
        const auto h3 = fq.mul(h2, hh);
        const auto v = fq.mul(t.X, h2);
        const auto x3 = fq.sub(fq.sub(fq.sqr(rr), h3), fq.dbl(v));
        const auto y3 = fq.sub(fq.mul(rr, fq.sub(v, x3)), fq.mul(t.Y, h3));
        t = {x3, y3, z3};
      }
    }
  }

  std::shared_ptr<const Ctx> ctx_;
  bool inf_;
  std::vector<Step> steps_;
};

// ---- presets ----------------------------------------------------------------

/// Canonical PBC "a.param": |q| = 512, |r| = 160 (production-strength).
std::shared_ptr<const PairingCtx<8, 3>> make_ss512();

/// Reproduction-sized preset generated for this repo: |q| = 255, |r| = 64
/// (fast; NOT cryptographically strong -- tests and statistics only).
std::shared_ptr<const PairingCtx<4, 1>> make_ss256();

/// High-margin preset generated for this repo: |q| = 1024, |r| = 256
/// (comparable to PBC's a1-class sizes).
std::shared_ptr<const PairingCtx<16, 4>> make_ss1024();

}  // namespace dlr::pairing
