// F4 -- the cost of CCA2 security (paper Section 4.3): DLRCCA2 vs DLR,
// with the BCHK/OTS overhead broken out.
#include "bench_util.hpp"
#include "crypto/ots.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"
#include "schemes/dlr_cca2.hpp"

int main() {
  using namespace dlr;
  using namespace dlr::bench;

  banner("F4: CCA2 overhead (DLRCCA2 vs DLR)", "paper Section 4.3 (BCHK transform)");

  using GG = group::TateSS256;
  const auto gg = group::make_tate_ss256();
  const std::size_t lambda = 64;
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), lambda);
  const std::size_t id_bits = 32;
  crypto::Rng rng(4242);

  // DLR (CPA).
  auto cpa = schemes::DlrSystem<GG>::create(gg, prm, schemes::P1Mode::Plain, 11);
  const auto m = gg.gt_random(rng);
  typename schemes::DlrCore<GG>::Ciphertext cpa_ct{};
  const double cpa_enc = time_ms([&] { cpa_ct = schemes::DlrCore<GG>::enc(gg, cpa.pk(), m, rng); });
  const double cpa_dec = time_ms([&] { sink(cpa.decrypt(cpa_ct)); }, 1);

  // DLRCCA2.
  auto cca = schemes::DlrCca2System<GG>::create(gg, prm, id_bits, 12);
  typename schemes::DlrCca2System<GG>::Ciphertext cca_ct;
  const double cca_enc =
      time_ms([&] { cca_ct = schemes::DlrCca2System<GG>::enc(cca.ibe().scheme(), cca.pp(), m, rng); });
  const double cca_dec = time_ms([&] { sink(cca.decrypt(cca_ct)); }, 1);

  // OTS cost breakdown.
  crypto::LamportOts::KeyPair kp;
  const double ots_gen = time_ms([&] { kp = crypto::LamportOts::keygen(rng); });
  Bytes fake_msg(200, 7);
  crypto::LamportOts::Signature sig;
  auto kp2 = crypto::LamportOts::keygen(rng);
  const double ots_sign = time_ms([&] {
    kp2.sk.used = false;
    sig = crypto::LamportOts::sign(kp2.sk, fake_msg);
  });
  const double ots_verify =
      time_ms([&] { sink(crypto::LamportOts::verify(kp2.vk, fake_msg, sig)); });

  Table t({"scheme", "enc ms", "dec ms", "ciphertext bytes", "notes"});
  t.row({"DLR (CPA)", fmt(cpa_enc), fmt(cpa_dec),
         fmt_bytes(schemes::DlrCore<GG>::ciphertext_bytes(gg)), "2 group elements"});
  t.row({"DLRCCA2", fmt(cca_enc), fmt(cca_dec), fmt_bytes(cca.ciphertext_bytes()),
         "vk + (n_id+2)-elem IBE ct + sig"});
  t.print();

  std::printf("\nOTS (Lamport/SHA-256) breakdown:\n");
  Table o({"op", "ms", "bytes"});
  o.row({"keygen", fmt(ots_gen), fmt_bytes(2 * 256 * 32)});
  o.row({"sign", fmt(ots_sign), fmt_bytes(crypto::LamportOts::sig_bytes())});
  o.row({"verify", fmt(ots_verify), fmt_bytes(crypto::LamportOts::vk_bytes())});
  o.print();

  std::printf(
      "\nShape check: CCA2 encryption stays non-interactive; its cost adds the\n"
      "IBE identity components (n_id extra exponentiations) plus cheap hashing\n"
      "for the OTS. CCA2 decryption pays one distributed extract (a refresh-\n"
      "shaped protocol) on top of a DLR-shaped decryption -- security against a\n"
      "decryption oracle costs about one extra protocol round-trip, no change to\n"
      "leakage tolerance (Theorem 4.1 part 3).\n");
  return 0;
}
