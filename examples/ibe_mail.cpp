// Identity-based encrypted mail with a leakage-hardened, *distributed* key
// authority (paper Section 4.2), plus CCA2 public-key encryption derived
// from it (Section 4.3).
//
// The mail provider's master key is split across two machines; extracting a
// user's key, decrypting, and refreshing are all 2-party protocols, so an
// attacker siphoning partial memory from either machine -- forever -- learns
// nothing about the master key or anyone's mail.
#include <cstdio>

#include "group/tate_group.hpp"
#include "schemes/dlr_cca2.hpp"

int main() {
  using namespace dlr;
  using GG = group::TateSS256;

  const GG gg = group::make_tate_ss256();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), 64);
  const std::size_t id_bits = 32;

  // --- the authority: two machines sharing the master key -------------------
  auto authority = schemes::DlrIbeSystem<GG>::create(gg, prm, id_bits, 31337);
  crypto::Rng rng = crypto::Rng::from_os_entropy();

  // --- a sender encrypts to "alice" using only public parameters ------------
  const auto body = gg.gt_random(rng);  // a KEM key for the actual mail body
  const auto ct = authority.scheme().enc(authority.pp(), "alice@mail.example", body, rng);
  std::printf("mail encrypted to alice@mail.example (%zu-byte IBE ciphertext)\n",
              authority.scheme().bb().ciphertext_bytes());

  // --- alice's key is provisioned by the 2-party extract protocol -----------
  net::Channel ch;
  authority.extract("alice@mail.example", ch);
  std::printf("identity key extracted via 2-party protocol (%zu bytes on the wire);\n"
              "the unblinded BB key never exists anywhere\n",
              ch.transcript().total_bytes());

  // --- decryption is another 2-party protocol --------------------------------
  const auto out = authority.decrypt("alice@mail.example", ct);
  std::printf("alice decrypts: %s\n", gg.gt_eq(out, body) ? "CORRECT" : "WRONG");

  // --- refresh both the master key shares and alice's key shares -------------
  authority.refresh_msk();
  authority.refresh_id("alice@mail.example");
  const auto out2 = authority.decrypt("alice@mail.example", ct);
  std::printf("after refreshing msk + id-key shares: %s\n",
              gg.gt_eq(out2, body) ? "still decrypts" : "BROKEN");

  // --- CCA2-secure PKE from the same machinery (BCHK transform) --------------
  auto cca = schemes::DlrCca2System<GG>::create(gg, prm, id_bits, 40);
  const auto m = gg.gt_random(rng);
  auto c2 = schemes::DlrCca2System<GG>::enc(cca.ibe().scheme(), cca.pp(), m, rng);
  const auto ok = cca.decrypt(c2);
  std::printf("\nCCA2 wrapper: decrypt(valid) -> %s\n",
              ok && gg.gt_eq(*ok, m) ? "CORRECT" : "WRONG");
  c2.inner.b = gg.gt_mul(c2.inner.b, gg.gt_gen());  // adversarial malleation
  std::printf("CCA2 wrapper: decrypt(tampered) -> %s\n",
              cca.decrypt(c2) ? "ACCEPTED (bug!)" : "rejected, as required");
  return 0;
}
