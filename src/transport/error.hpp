// Typed error taxonomy for the wire transport.
//
// Every failure mode of the framed socket layer surfaces as a TransportError
// carrying a machine-checkable Errc -- never std::abort(), never a raw errno
// escape. Callers branch on code(): Timeout and RetriesExhausted are
// transient-infrastructure failures, ConnectionClosed ends a peer session,
// and the codec codes (FrameTooLarge/Malformed/ChecksumMismatch/Truncated)
// indicate a corrupt or hostile byte stream that must be dropped.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dlr::transport {

enum class Errc : std::uint8_t {
  FrameTooLarge = 1,   // length prefix exceeds the hard cap (kMaxFrameBytes)
  Malformed = 2,       // payload does not parse as a frame
  ChecksumMismatch = 3,  // CRC over the payload does not match the header
  Truncated = 4,       // byte stream ended inside a frame
  ConnectionClosed = 5,  // peer closed / EOF / EPIPE
  Timeout = 6,         // send/recv deadline expired
  Io = 7,              // other OS-level I/O failure
  RetriesExhausted = 8,  // bounded connect/retry budget spent
  SessionClosed = 9,   // logical session torn down while a receiver waited
  Protocol = 10,       // well-formed frame violating higher-level expectations
};

[[nodiscard]] constexpr const char* errc_name(Errc c) {
  switch (c) {
    case Errc::FrameTooLarge: return "FrameTooLarge";
    case Errc::Malformed: return "Malformed";
    case Errc::ChecksumMismatch: return "ChecksumMismatch";
    case Errc::Truncated: return "Truncated";
    case Errc::ConnectionClosed: return "ConnectionClosed";
    case Errc::Timeout: return "Timeout";
    case Errc::Io: return "Io";
    case Errc::RetriesExhausted: return "RetriesExhausted";
    case Errc::SessionClosed: return "SessionClosed";
    case Errc::Protocol: return "Protocol";
  }
  return "Unknown";
}

class TransportError : public std::runtime_error {
 public:
  TransportError(Errc code, const std::string& what)
      : std::runtime_error(std::string("transport: ") + errc_name(code) + ": " + what),
        code_(code) {}

  [[nodiscard]] Errc code() const { return code_; }

 private:
  Errc code_;
};

}  // namespace dlr::transport
