file(REMOVE_RECURSE
  "CMakeFiles/net_analysis_test.dir/net_analysis_test.cpp.o"
  "CMakeFiles/net_analysis_test.dir/net_analysis_test.cpp.o.d"
  "net_analysis_test"
  "net_analysis_test.pdb"
  "net_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
