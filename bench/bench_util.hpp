// Shared helpers for the experiment binaries: fixed-width table printing and
// wall-clock timing of protocol-level operations (google-benchmark is used
// for the microbenchmarks; the table experiments print paper-style rows).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace dlr::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());

    auto line = [&] {
      std::string s = "+";
      for (auto w : width) s += std::string(w + 2, '-') + "+";
      std::printf("%s\n", s.c_str());
    };
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::string s = "|";
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : std::string{};
        s += " " + v + std::string(width[c] - v.size(), ' ') + " |";
      }
      std::printf("%s\n", s.c_str());
    };
    line();
    print_row(headers_);
    line();
    for (const auto& r : rows_) print_row(r);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Median-of-runs wall time in milliseconds. A compiler barrier after each
/// run keeps the optimizer from eliding result computations whose values the
/// timed lambda discards.
inline double time_ms(const std::function<void()>& fn, int runs = 3) {
  std::vector<double> samples;
  samples.reserve(runs);
  for (int i = 0; i < runs; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    asm volatile("" ::: "memory");
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Opaque consumer: forces the compiler to materialize v inside timed code.
template <class T>
inline void sink(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_bytes(std::size_t b) {
  char buf[64];
  if (b >= 1024 * 1024)
    std::snprintf(buf, sizeof(buf), "%.1f MiB", static_cast<double>(b) / (1024 * 1024));
  else if (b >= 1024)
    std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(b) / 1024);
  else
    std::snprintf(buf, sizeof(buf), "%zu B", b);
  return buf;
}

inline void banner(const std::string& title, const std::string& source) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("    (reproduces: %s)\n\n", source.c_str());
}

}  // namespace dlr::bench
