// DLRIBE -- the paper's distributed identity-based encryption scheme,
// CPA-secure against continual memory leakage (Section 4.2).
//
// Both the master secret key and every identity-based secret key are 2-of-2
// shared with the Pi_ss sharing and refreshed with the DLR refresh protocol
// (Remark 4.1: leakage is tolerated from msk shares *and* id-key shares).
//
//   msk sharing:  P1: (a_1..a_l, Phi = g2^alpha * prod a^s),  P2: (s_1..s_l)
//   skID sharing: P1: (g^{r_1}..g^{r_n}, a'_1..a'_l, M' = M * prod a'^{s'}),
//                 P2: (s'_1..s'_l)
//
// Distributed extract: P1 sends (Enc'(a_i), Enc'(a'_i))_i and
// Enc'(Phi * W), W = prod_j u_{j,b_j}^{r_j}; P2 picks s' and responds
// prod f'^{s'} / f^{s} * f_{PhiW}, which decrypts to
// g2^alpha * W * prod a'^{s'} = M * prod a'^{s'} -- the blinded BB identity
// key, never unblinded anywhere.
//
// Distributed decrypt: as in DLR, with P1 folding the pairing correction
// V = prod_j e(g^{r_j}, C_j) into the dB component.
#pragma once

#include <map>

#include "net/transcript.hpp"
#include "schemes/bb_ibe.hpp"
#include "telemetry/trace.hpp"
#include "schemes/dlr.hpp"

namespace dlr::schemes {

template <group::BilinearGroup GG>
class DlrIbeP1;
template <group::BilinearGroup GG>
class DlrIbeP2;
template <group::BilinearGroup GG>
class DlrIbeSystem;

template <group::BilinearGroup GG>
class DlrIbe {
 public:
  using Scalar = typename GG::Scalar;
  using G = typename GG::G;
  using GT = typename GG::GT;
  using Bb = BbIbe<GG>;
  using HG = HpskeG<GG>;
  using HT = HpskeGT<GG>;
  using CtG = typename HG::Ciphertext;
  using CtT = typename HT::Ciphertext;
  using Ciphertext = typename Bb::Ciphertext;

  /// A 2-of-2 shared group element: P1 side.
  struct Unit1 {
    std::vector<G> a;
    G phi{};
  };
  /// P2 side.
  struct Unit2 {
    std::vector<Scalar> s;
  };

  struct P1IdShare {
    std::vector<G> r;  // g^{r_j}: the BB randomness, held by P1
    Unit1 unit;        // sharing of M
  };

  struct KeyGenResult {
    typename Bb::PublicParams pp;
    Unit1 msk1;
    Unit2 msk2;
    Bytes gen_randomness;
    G msk{};  // test-only
  };

  DlrIbe(GG gg, DlrParams prm, std::size_t id_bits)
      : gg_(std::move(gg)), prm_(prm), bb_(gg_, id_bits), hg_(gg_, prm.kappa),
        ht_(gg_, prm.kappa) {}

  [[nodiscard]] const GG& group() const { return gg_; }
  [[nodiscard]] const DlrParams& params() const { return prm_; }
  [[nodiscard]] const Bb& bb() const { return bb_; }

  KeyGenResult gen(crypto::Rng& rng) const {
    telemetry::ScopedSpan span("ibe.keygen");
    KeyGenResult out;
    auto [pp, mk] = bb_.setup(rng);
    out.pp = std::move(pp);
    out.msk = mk.msk;
    out.msk2.s.reserve(prm_.ell);
    for (std::size_t i = 0; i < prm_.ell; ++i) out.msk2.s.push_back(gg_.sc_random(rng));
    out.msk1.a.reserve(prm_.ell);
    for (std::size_t i = 0; i < prm_.ell; ++i) out.msk1.a.push_back(gg_.g_random(rng));
    out.msk1.phi = gg_.g_mul(mk.msk, gg_.g_multi_pow(out.msk1.a, out.msk2.s));
    ByteWriter w;
    for (const auto& s : out.msk2.s) gg_.sc_ser(w, s);
    gg_.g_ser(w, mk.msk);
    out.gen_randomness = w.take();
    return out;
  }

  /// Encryption is plain BB encryption under the unchanged public params.
  Ciphertext enc(const typename Bb::PublicParams& pp, const std::string& id, const GT& m,
                 crypto::Rng& rng) const {
    telemetry::ScopedSpan span("ibe.enc");
    return bb_.enc(pp, id, m, rng);
  }

  /// Test-only reference: reconstruct the shared element of a unit.
  [[nodiscard]] G reconstruct(const Unit1& u1, const Unit2& u2) const {
    return gg_.g_mul(u1.phi, gg_.g_inv(gg_.g_multi_pow(u1.a, u2.s)));
  }

 private:
  friend class DlrIbeP1<GG>;
  friend class DlrIbeP2<GG>;
  friend class DlrIbeSystem<GG>;

  GG gg_;
  DlrParams prm_;
  Bb bb_;
  HG hg_;
  HT ht_;
};

// =============================================================================
// Device P1
// =============================================================================

template <group::BilinearGroup GG>
class DlrIbeP1 {
 public:
  using Scheme = DlrIbe<GG>;
  using Scalar = typename GG::Scalar;
  using G = typename GG::G;
  using GT = typename GG::GT;
  using CtG = typename Scheme::CtG;
  using CtT = typename Scheme::CtT;
  using Unit1 = typename Scheme::Unit1;

  DlrIbeP1(Scheme sch, typename Scheme::Bb::PublicParams pp, Unit1 msk1, crypto::Rng rng)
      : sch_(std::move(sch)), pp_(std::move(pp)), msk1_(std::move(msk1)),
        rng_(std::move(rng)) {}

  [[nodiscard]] const typename Scheme::Bb::PublicParams& pp() const { return pp_; }
  [[nodiscard]] const Unit1& msk_share() const { return msk1_; }
  [[nodiscard]] const typename Scheme::P1IdShare& id_share(const std::string& id) const {
    return ids_.at(id);
  }
  [[nodiscard]] bool has_id(const std::string& id) const { return ids_.contains(id); }
  void erase_id(const std::string& id) { ids_.erase(id); }
  [[nodiscard]] std::size_t id_count() const { return ids_.size(); }

  // ---- extract ----------------------------------------------------------------

  /// Round 1 of the distributed extract for `id`.
  [[nodiscard]] Bytes ext_round1(const std::string& id) {
    const auto& gg = sch_.gg_;
    begin_op();
    const auto bits = sch_.bb_.hash_id(id);
    // BB randomness r_j, kept as g^{r_j}; W = prod u_{j,b_j}^{r_j}.
    pending_r_.clear();
    pending_r_.reserve(sch_.bb_.id_bits());
    G w = gg.g_id();
    for (std::size_t j = 0; j < sch_.bb_.id_bits(); ++j) {
      const Scalar rj = gg.sc_random(rng_);
      pending_r_.push_back(gg.g_pow(pp_.g, rj));
      w = gg.g_mul(w, gg.g_pow(pp_.u[j][bits[j] ? 1 : 0], rj));
    }
    pending_id_ = id;
    return share_transform_msg(msk1_, gg.g_mul(msk1_.phi, w));
  }

  /// Round 3: install the blinded identity key share.
  void ext_finish(const Bytes& reply) {
    typename Scheme::P1IdShare share;
    share.r = std::move(pending_r_);
    share.unit.a = std::move(pending_aprime_);
    share.unit.phi = decrypt_reply(reply);
    ids_[pending_id_] = std::move(share);
    end_op();
  }

  // ---- decrypt -----------------------------------------------------------------

  [[nodiscard]] Bytes dec_round1(const std::string& id, const typename Scheme::Ciphertext& c) {
    const auto& gg = sch_.gg_;
    const auto& share = ids_.at(id);
    begin_op();
    const GT v = sch_.bb_.pairing_correction(share.r, c.c);
    ByteWriter w;
    for (const auto& ai : share.unit.a)
      sch_.ht_.ser_ct(w, pair_enc(c.a, ai));
    sch_.ht_.ser_ct(w, pair_enc(c.a, share.unit.phi));
    sch_.ht_.ser_ct(w, sch_.ht_.enc(sigma_gt(), gg.gt_mul(c.b, v), rng_));
    return w.take();
  }

  [[nodiscard]] GT dec_finish(const Bytes& reply) {
    ByteReader r(reply);
    const CtT combined = sch_.ht_.deser_ct(r);
    if (!r.done()) throw std::invalid_argument("DlrIbeP1::dec_finish: trailing bytes");
    const GT m = sch_.ht_.dec(sigma_gt(), combined);
    end_op();
    return m;
  }

  // ---- refresh (msk or id-key shares; same protocol) -----------------------------

  [[nodiscard]] Bytes ref_round1_msk() {
    begin_op();
    refreshing_msk_ = true;
    return share_transform_msg(msk1_, msk1_.phi);
  }

  [[nodiscard]] Bytes ref_round1_id(const std::string& id) {
    begin_op();
    refreshing_msk_ = false;
    pending_id_ = id;
    const auto& unit = ids_.at(id).unit;
    return share_transform_msg(unit, unit.phi);
  }

  void ref_finish(const Bytes& reply) {
    const G new_phi = decrypt_reply(reply);
    Unit1& unit = refreshing_msk_ ? msk1_ : ids_.at(pending_id_).unit;
    capture_refresh_snapshot(unit, new_phi);
    unit.a = std::move(pending_aprime_);
    unit.phi = new_phi;
    end_op();
  }

  // ---- extension: BB-key re-randomization ------------------------------------------
  //
  // Beyond refreshing the *sharing* (a', s'), the BB identity key itself is
  // re-randomizable: r_j <- r_j + delta_j lifts to R_j <- R_j * g^{delta_j}
  // and M <- M * prod_j u_{j,b_j}^{delta_j}. The update commutes with the
  // blinding (phi = M * prod a'^{s'}), so P1 applies it locally -- no
  // interaction, and P2's share is untouched.
  void rerandomize_id_key(const std::string& id, crypto::Rng& rng) {
    const auto& gg = sch_.gg_;
    auto& share = ids_.at(id);
    const auto bits = sch_.bb_.hash_id(id);
    for (std::size_t j = 0; j < sch_.bb_.id_bits(); ++j) {
      const Scalar dj = gg.sc_random(rng);
      share.r[j] = gg.g_mul(share.r[j], gg.g_pow(pp_.g, dj));
      share.unit.phi =
          gg.g_mul(share.unit.phi, gg.g_pow(pp_.u[j][bits[j] ? 1 : 0], dj));
    }
  }

  // ---- secret memory --------------------------------------------------------------

  [[nodiscard]] net::SecretSnapshot normal_snapshot() const {
    const auto& gg = sch_.gg_;
    ByteWriter w;
    ser_unit(w, msk1_);
    for (const auto& [id, share] : ids_) {
      for (const auto& rj : share.r) gg.g_ser(w, rj);
      ser_unit(w, share.unit);
    }
    if (sigma_) sch_.hg_.ser_sk(w, *sigma_);
    return net::SecretSnapshot{w.take(), {}, {}};
  }

  [[nodiscard]] const net::SecretSnapshot& refresh_snapshot() const { return refresh_snap_; }

  /// Secret bits attributable to one shared unit (msk or one identity).
  [[nodiscard]] std::size_t unit_secret_bits() const {
    return 8 * (sch_.prm_.ell + 1) * sch_.gg_.g_bytes();
  }

 private:
  void begin_op() {
    sigma_ = sch_.hg_.gen(rng_);
    pending_aprime_.clear();
  }
  void end_op() {
    sigma_.reset();
    pending_aprime_.clear();
    pending_r_.clear();
  }

  [[nodiscard]] typename Scheme::HT::SecretKey sigma_gt() const {
    return typename Scheme::HT::SecretKey{sigma_->s};
  }

  [[nodiscard]] CtT pair_enc(const G& a, const G& m) {
    // Encrypt m under sigma over G with fresh coins, then pair into GT --
    // the fi/di construction collapsed into one step.
    const auto ct = sch_.hg_.enc(*sigma_, m, rng_);
    return DlrCore<GG>::pair_ct(sch_.gg_, a, ct);
  }

  /// The (f_i, f'_i)_i, f_payload message shared by extract and refresh.
  [[nodiscard]] Bytes share_transform_msg(const Unit1& unit, const G& payload) {
    const auto& gg = sch_.gg_;
    pending_aprime_.clear();
    pending_aprime_.reserve(sch_.prm_.ell);
    ByteWriter w;
    for (std::size_t i = 0; i < sch_.prm_.ell; ++i) {
      pending_aprime_.push_back(gg.g_random(rng_));
      sch_.hg_.ser_ct(w, sch_.hg_.enc(*sigma_, unit.a[i], rng_));
      sch_.hg_.ser_ct(w, sch_.hg_.enc(*sigma_, pending_aprime_[i], rng_));
    }
    sch_.hg_.ser_ct(w, sch_.hg_.enc(*sigma_, payload, rng_));
    return w.take();
  }

  [[nodiscard]] G decrypt_reply(const Bytes& reply) const {
    ByteReader r(reply);
    const CtG f = sch_.hg_.deser_ct(r);
    if (!r.done()) throw std::invalid_argument("DlrIbeP1: trailing bytes in reply");
    return sch_.hg_.dec(*sigma_, f);
  }

  void ser_unit(ByteWriter& w, const Unit1& u) const {
    for (const auto& ai : u.a) sch_.gg_.g_ser(w, ai);
    sch_.gg_.g_ser(w, u.phi);
  }

  void capture_refresh_snapshot(const Unit1& old_unit, const G& new_phi) {
    ByteWriter w;
    ser_unit(w, old_unit);
    for (const auto& ap : pending_aprime_) sch_.gg_.g_ser(w, ap);
    sch_.gg_.g_ser(w, new_phi);
    if (sigma_) sch_.hg_.ser_sk(w, *sigma_);
    refresh_snap_ = net::SecretSnapshot{w.take(), {}, {}};
  }

  Scheme sch_;
  typename Scheme::Bb::PublicParams pp_;
  Unit1 msk1_;
  std::map<std::string, typename Scheme::P1IdShare> ids_;
  crypto::Rng rng_;

  std::optional<typename Scheme::HG::SecretKey> sigma_;
  std::vector<G> pending_aprime_;
  std::vector<G> pending_r_;
  std::string pending_id_;
  bool refreshing_msk_ = false;
  net::SecretSnapshot refresh_snap_;
};

// =============================================================================
// Device P2
// =============================================================================

template <group::BilinearGroup GG>
class DlrIbeP2 {
 public:
  using Scheme = DlrIbe<GG>;
  using Scalar = typename GG::Scalar;
  using CtG = typename Scheme::CtG;
  using CtT = typename Scheme::CtT;
  using Unit2 = typename Scheme::Unit2;

  DlrIbeP2(Scheme sch, Unit2 msk2, crypto::Rng rng)
      : sch_(std::move(sch)), msk2_(std::move(msk2)), rng_(std::move(rng)) {
    if (msk2_.s.size() != sch_.prm_.ell)
      throw std::invalid_argument("DlrIbeP2: bad msk share width");
  }

  [[nodiscard]] const Unit2& msk_share() const { return msk2_; }
  [[nodiscard]] const Unit2& id_share(const std::string& id) const { return ids_.at(id); }
  void erase_id(const std::string& id) { ids_.erase(id); }

  /// Extract round 2: transform the msk sharing into a fresh id-key sharing.
  [[nodiscard]] Bytes ext_respond(const std::string& id, const Bytes& msg) {
    Unit2 next = fresh_unit();
    const Bytes reply = transform(msg, msk2_, next);
    ids_[id] = std::move(next);
    return reply;
  }

  /// Decryption round 2 under the identity's share.
  [[nodiscard]] Bytes dec_respond(const std::string& id, const Bytes& msg) {
    const auto& s = ids_.at(id).s;
    ByteReader r(msg);
    std::vector<CtT> d;
    d.reserve(sch_.prm_.ell);
    for (std::size_t i = 0; i < sch_.prm_.ell; ++i) d.push_back(sch_.ht_.deser_ct(r));
    const CtT dphi = sch_.ht_.deser_ct(r);
    const CtT db = sch_.ht_.deser_ct(r);
    if (!r.done()) throw std::invalid_argument("DlrIbeP2::dec_respond: trailing bytes");
    CtT acc = sch_.ht_.ct_mul(db, sch_.ht_.ct_multi_pow(d, s));
    acc = sch_.ht_.ct_mul(acc, sch_.ht_.ct_inv(dphi));
    ByteWriter w;
    sch_.ht_.ser_ct(w, acc);
    return w.take();
  }

  [[nodiscard]] Bytes ref_respond_msk(const Bytes& msg) {
    Unit2 next = fresh_unit();
    capture_refresh_snapshot(msk2_, next);
    const Bytes reply = transform(msg, msk2_, next);
    msk2_ = std::move(next);
    return reply;
  }

  [[nodiscard]] Bytes ref_respond_id(const std::string& id, const Bytes& msg) {
    Unit2 next = fresh_unit();
    capture_refresh_snapshot(ids_.at(id), next);
    const Bytes reply = transform(msg, ids_.at(id), next);
    ids_[id] = std::move(next);
    return reply;
  }

  [[nodiscard]] net::SecretSnapshot normal_snapshot() const {
    ByteWriter w;
    for (const auto& s : msk2_.s) sch_.gg_.sc_ser(w, s);
    for (const auto& [id, u] : ids_)
      for (const auto& s : u.s) sch_.gg_.sc_ser(w, s);
    return net::SecretSnapshot{w.take(), {}, {}};
  }

  [[nodiscard]] const net::SecretSnapshot& refresh_snapshot() const { return refresh_snap_; }

 private:
  [[nodiscard]] Unit2 fresh_unit() {
    Unit2 u;
    u.s.reserve(sch_.prm_.ell);
    for (std::size_t i = 0; i < sch_.prm_.ell; ++i) u.s.push_back(sch_.gg_.sc_random(rng_));
    return u;
  }

  /// prod f'_i^{next.s_i} / f_i^{cur.s_i} * f_payload.
  [[nodiscard]] Bytes transform(const Bytes& msg, const Unit2& cur, const Unit2& next) const {
    ByteReader r(msg);
    std::vector<CtG> f, fp;
    f.reserve(sch_.prm_.ell);
    fp.reserve(sch_.prm_.ell);
    for (std::size_t i = 0; i < sch_.prm_.ell; ++i) {
      f.push_back(sch_.hg_.deser_ct(r));
      fp.push_back(sch_.hg_.deser_ct(r));
    }
    const CtG fpay = sch_.hg_.deser_ct(r);
    if (!r.done()) throw std::invalid_argument("DlrIbeP2::transform: trailing bytes");
    CtG acc = sch_.hg_.ct_mul(fpay, sch_.hg_.ct_multi_pow(fp, next.s));
    acc = sch_.hg_.ct_mul(acc, sch_.hg_.ct_inv(sch_.hg_.ct_multi_pow(f, cur.s)));
    ByteWriter w;
    sch_.hg_.ser_ct(w, acc);
    return w.take();
  }

  void capture_refresh_snapshot(const Unit2& cur, const Unit2& next) {
    ByteWriter w;
    for (const auto& s : cur.s) sch_.gg_.sc_ser(w, s);
    for (const auto& s : next.s) sch_.gg_.sc_ser(w, s);
    refresh_snap_ = net::SecretSnapshot{w.take(), {}, {}};
  }

  Scheme sch_;
  Unit2 msk2_;
  std::map<std::string, Unit2> ids_;
  crypto::Rng rng_;
  net::SecretSnapshot refresh_snap_;
};

// =============================================================================
// System driver
// =============================================================================

template <group::BilinearGroup GG>
class DlrIbeSystem {
 public:
  using Scheme = DlrIbe<GG>;
  using GT = typename GG::GT;

  static DlrIbeSystem create(GG gg, const DlrParams& prm, std::size_t id_bits,
                             std::uint64_t seed) {
    Scheme sch(gg, prm, id_bits);
    crypto::Rng root(seed);
    auto gen_rng = root.fork("gen");
    auto kg = sch.gen(gen_rng);
    return DlrIbeSystem(sch, std::move(kg), root.fork("p1"), root.fork("p2"));
  }

  [[nodiscard]] const Scheme& scheme() const { return sch_; }
  [[nodiscard]] const typename Scheme::Bb::PublicParams& pp() const { return p1_.pp(); }
  [[nodiscard]] DlrIbeP1<GG>& p1() { return p1_; }
  [[nodiscard]] DlrIbeP2<GG>& p2() { return p2_; }
  [[nodiscard]] const Bytes& gen_randomness() const { return gen_randomness_; }
  [[nodiscard]] const typename GG::G& msk_for_test() const { return msk_; }

  void extract(const std::string& id, net::Channel& ch) {
    telemetry::ScopedSpan span("ibe.extract");
    const auto& m1 = ch.send(net::DeviceId::P1, "ext.r1", p1_.ext_round1(id));
    const auto& m2 = ch.send(net::DeviceId::P2, "ext.r2", p2_.ext_respond(id, m1));
    p1_.ext_finish(m2);
  }

  [[nodiscard]] GT decrypt(const std::string& id, const typename Scheme::Ciphertext& c,
                           net::Channel& ch) {
    telemetry::ScopedSpan span("ibe.dec");
    const auto& m1 = ch.send(net::DeviceId::P1, "dec.r1", p1_.dec_round1(id, c));
    const auto& m2 = ch.send(net::DeviceId::P2, "dec.r2", p2_.dec_respond(id, m1));
    return p1_.dec_finish(m2);
  }

  void refresh_msk(net::Channel& ch) {
    telemetry::ScopedSpan span("ibe.refresh_msk");
    const auto& m1 = ch.send(net::DeviceId::P1, "refmsk.r1", p1_.ref_round1_msk());
    const auto& m2 = ch.send(net::DeviceId::P2, "refmsk.r2", p2_.ref_respond_msk(m1));
    p1_.ref_finish(m2);
  }

  void refresh_id(const std::string& id, net::Channel& ch) {
    telemetry::ScopedSpan span("ibe.refresh_id");
    const auto& m1 = ch.send(net::DeviceId::P1, "refid.r1", p1_.ref_round1_id(id));
    const auto& m2 = ch.send(net::DeviceId::P2, "refid.r2", p2_.ref_respond_id(id, m1));
    p1_.ref_finish(m2);
  }

  // Channel-less conveniences.
  void extract(const std::string& id) {
    net::Channel ch;
    extract(id, ch);
  }
  [[nodiscard]] GT decrypt(const std::string& id, const typename Scheme::Ciphertext& c) {
    net::Channel ch;
    return decrypt(id, c, ch);
  }
  void refresh_msk() {
    net::Channel ch;
    refresh_msk(ch);
  }
  void refresh_id(const std::string& id) {
    net::Channel ch;
    refresh_id(id, ch);
  }

 private:
  DlrIbeSystem(Scheme sch, typename Scheme::KeyGenResult kg, crypto::Rng rng1,
               crypto::Rng rng2)
      : sch_(sch),
        gen_randomness_(std::move(kg.gen_randomness)),
        msk_(kg.msk),
        p1_(sch, std::move(kg.pp), std::move(kg.msk1), std::move(rng1)),
        p2_(sch, std::move(kg.msk2), std::move(rng2)) {}

  Scheme sch_;
  Bytes gen_randomness_;
  typename GG::G msk_;
  DlrIbeP1<GG> p1_;
  DlrIbeP2<GG> p2_;
};

}  // namespace dlr::schemes
