#include "telemetry/export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <unordered_map>

namespace dlr::telemetry {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Position just past `"key":` in `line`, or npos.
std::size_t after_key(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

bool parse_string_at(const std::string& s, std::size_t pos, std::string& out,
                     std::size_t* end = nullptr) {
  if (pos >= s.size() || s[pos] != '"') return false;
  out.clear();
  for (std::size_t i = pos + 1; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\\' && i + 1 < s.size()) {
      const char n = s[++i];
      switch (n) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: out += n; break;  // \" \\ \/ and anything else: literal
      }
    } else if (c == '"') {
      if (end) *end = i + 1;
      return true;
    } else {
      out += c;
    }
  }
  return false;
}

bool field_str(const std::string& line, const std::string& key, std::string& out) {
  const auto pos = after_key(line, key);
  return pos != std::string::npos && parse_string_at(line, pos, out);
}

bool field_num(const std::string& line, const std::string& key, double& out) {
  const auto pos = after_key(line, key);
  if (pos == std::string::npos) return false;
  out = std::strtod(line.c_str() + pos, nullptr);
  return true;
}

/// 64-bit integer field, parsed without a double round-trip: span/trace ids
/// carry random high bits, and a double's 53-bit mantissa would corrupt them.
bool field_u64(const std::string& line, const std::string& key, std::uint64_t& out) {
  const auto pos = after_key(line, key);
  if (pos == std::string::npos) return false;
  out = std::strtoull(line.c_str() + pos, nullptr, 10);
  return true;
}

/// Parse the flat numeric object `{"k":1,"k2":2.5}` starting at `pos`.
void parse_attrs_at(const std::string& s, std::size_t pos,
                    std::vector<std::pair<std::string, double>>& out) {
  if (pos >= s.size() || s[pos] != '{') return;
  std::size_t i = pos + 1;
  while (i < s.size() && s[i] != '}') {
    std::string key;
    std::size_t after = 0;
    if (!parse_string_at(s, i, key, &after)) break;
    i = after;
    if (i >= s.size() || s[i] != ':') break;
    char* num_end = nullptr;
    const double v = std::strtod(s.c_str() + i + 1, &num_end);
    out.emplace_back(std::move(key), v);
    i = static_cast<std::size_t>(num_end - s.c_str());
    if (i < s.size() && s[i] == ',') ++i;
  }
}

/// Parse the flat numeric array `[1,2.5,...]` starting at `pos`; returns the
/// parsed values (empty array parses to empty).
template <typename T>
void parse_num_array_at(const std::string& s, std::size_t pos, std::vector<T>& out) {
  if (pos >= s.size() || s[pos] != '[') return;
  std::size_t i = pos + 1;
  while (i < s.size() && s[i] != ']') {
    char* num_end = nullptr;
    const double v = std::strtod(s.c_str() + i, &num_end);
    if (num_end == s.c_str() + i) break;
    out.push_back(static_cast<T>(v));
    i = static_cast<std::size_t>(num_end - s.c_str());
    if (i < s.size() && s[i] == ',') ++i;
  }
}

void append_attrs_json(std::string& out, const std::vector<std::pair<std::string, double>>& attrs) {
  out += "{";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    out += json_escape(attrs[i].first);
    out += "\":";
    out += fmt_double(attrs[i].second);
  }
  out += "}";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_text(const Snapshot& snap, const std::vector<Span>& spans) {
  std::string out = "== telemetry summary ==\n";
  std::size_t width = 0;
  for (const auto& c : snap.counters) width = std::max(width, c.name.size());
  for (const auto& g : snap.gauges) width = std::max(width, g.name.size());

  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& c : snap.counters)
      out += "  " + c.name + std::string(width - c.name.size() + 2, ' ') + fmt_u64(c.value) +
             "\n";
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& g : snap.gauges)
      out += "  " + g.name + std::string(width - g.name.size() + 2, ' ') +
             fmt_double(g.value) + "\n";
  }
  if (!snap.histograms.empty()) {
    out += "histograms:\n";
    for (const auto& h : snap.histograms)
      out += "  " + h.name + "  count=" + fmt_u64(h.count) + " sum=" + fmt_double(h.sum) +
             "\n";
  }

  if (!spans.empty()) {
    out += "spans (completion order, indent = nesting):\n";
    std::unordered_map<std::uint64_t, const Span*> by_id;
    for (const auto& s : spans) by_id[s.id] = &s;
    const std::size_t cap = 200;
    for (std::size_t i = 0; i < spans.size() && i < cap; ++i) {
      const Span& s = spans[i];
      std::size_t depth = 0;
      for (auto it = by_id.find(s.parent); it != by_id.end();
           it = by_id.find(it->second->parent))
        ++depth;
      out += "  " + std::string(2 * depth, ' ') + s.label + "  " +
             fmt_double(s.duration_ms()) + " ms";
      for (const auto& [k, v] : s.attrs) out += "  " + k + "=" + fmt_double(v);
      out += "\n";
    }
    if (spans.size() > cap)
      out += "  ... " + fmt_u64(spans.size() - cap) + " more spans elided\n";
  }
  return out;
}

std::string to_jsonl(const ExportMeta& meta, const Snapshot& snap,
                     const std::vector<Span>& spans) {
  std::string out;
  out += "{\"type\":\"meta\",\"run\":\"" + json_escape(meta.run) + "\",\"telemetry\":\"" +
         (DLR_TELEMETRY_ENABLED ? "on" : "off") + "\"}\n";
  for (const auto& c : snap.counters)
    out += "{\"type\":\"counter\",\"name\":\"" + json_escape(c.name) +
           "\",\"value\":" + fmt_u64(c.value) + "}\n";
  for (const auto& g : snap.gauges)
    out += "{\"type\":\"gauge\",\"name\":\"" + json_escape(g.name) +
           "\",\"value\":" + fmt_double(g.value) + "}\n";
  for (const auto& h : snap.histograms) {
    out += "{\"type\":\"histogram\",\"name\":\"" + json_escape(h.name) +
           "\",\"count\":" + fmt_u64(h.count) + ",\"sum\":" + fmt_double(h.sum) +
           ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ",";
      out += fmt_double(h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ",";
      out += fmt_u64(h.buckets[i]);
    }
    out += "]}\n";
  }
  for (const auto& s : spans) {
    out += "{\"type\":\"span\",\"id\":" + fmt_u64(s.id) + ",\"parent\":" + fmt_u64(s.parent) +
           ",\"trace\":" + fmt_u64(s.trace_id) + ",\"label\":\"" + json_escape(s.label) +
           "\",\"start_ns\":" + fmt_u64(static_cast<std::uint64_t>(s.start_ns)) +
           ",\"dur_ms\":" + fmt_double(s.duration_ms()) + ",\"attrs\":";
    append_attrs_json(out, s.attrs);
    out += "}\n";
  }
  return out;
}

std::string to_chrome_trace(const std::vector<Span>& spans) {
  return to_chrome_trace(std::vector<ProcessSpans>{ProcessSpans{1, "", spans}});
}

std::string to_chrome_trace(const std::vector<ProcessSpans>& processes) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& proc : processes) {
    const std::string pid = std::to_string(proc.pid);
    if (!proc.name.empty()) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + pid +
             ",\"args\":{\"name\":\"" + json_escape(proc.name) + "\"}}";
    }
    for (const auto& s : proc.spans) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"" + json_escape(s.label) + "\",\"ph\":\"X\",\"pid\":" + pid +
             ",\"tid\":1,\"ts\":" + fmt_double(static_cast<double>(s.start_ns) / 1e3) +
             ",\"dur\":" + fmt_double(static_cast<double>(s.end_ns - s.start_ns) / 1e3) +
             ",\"args\":";
      append_attrs_json(out, s.attrs);
      out += "}";
    }
  }
  out += "]}";
  return out;
}

bool export_global_jsonl(const std::string& path, const std::string& run_label) {
  const std::string body = to_jsonl(ExportMeta{run_label}, Registry::global().snapshot(),
                                    Tracer::global().spans());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

Imported import_jsonl(const std::string& text) {
  Imported out;
  std::size_t start = 0;
  while (start < text.size()) {
    auto nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;

    std::string type;
    if (!field_str(line, "type", type)) continue;
    if (type == "meta") {
      field_str(line, "run", out.run);
    } else if (type == "counter") {
      std::string name;
      std::uint64_t v = 0;
      if (field_str(line, "name", name) && field_u64(line, "value", v))
        out.counters[name] = v;
    } else if (type == "gauge") {
      std::string name;
      double v = 0;
      if (field_str(line, "name", name) && field_num(line, "value", v)) out.gauges[name] = v;
    } else if (type == "histogram") {
      HistogramRow h;
      if (!field_str(line, "name", h.name)) continue;
      double num = 0;
      if (field_num(line, "sum", num)) h.sum = num;
      field_u64(line, "count", h.count);
      auto pos = after_key(line, "bounds");
      if (pos != std::string::npos) parse_num_array_at(line, pos, h.bounds);
      pos = after_key(line, "buckets");
      if (pos != std::string::npos) parse_num_array_at(line, pos, h.buckets);
      out.histograms[h.name] = std::move(h);
    } else if (type == "span") {
      Span s;
      field_u64(line, "id", s.id);
      field_u64(line, "parent", s.parent);
      field_u64(line, "trace", s.trace_id);
      field_str(line, "label", s.label);
      std::uint64_t start_u = 0;
      if (field_u64(line, "start_ns", start_u)) s.start_ns = static_cast<std::int64_t>(start_u);
      double dur = 0;
      if (field_num(line, "dur_ms", dur))
        s.end_ns = s.start_ns + static_cast<std::int64_t>(dur * 1e6);
      const auto apos = after_key(line, "attrs");
      if (apos != std::string::npos) parse_attrs_at(line, apos, s.attrs);
      out.spans.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<Imported> import_jsonl_runs(const std::string& text) {
  std::vector<Imported> runs;
  std::string chunk;
  auto flush = [&] {
    if (!chunk.empty()) runs.push_back(import_jsonl(chunk));
    chunk.clear();
  };
  std::size_t start = 0;
  while (start < text.size()) {
    auto nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    std::string type;
    if (field_str(line, "type", type) && type == "meta") flush();
    chunk += line;
    chunk += '\n';
  }
  flush();
  return runs;
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

namespace {

bool prom_name_ok(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(s[0])) return false;
  for (const char c : s)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

bool prom_label_name_ok(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(s[0])) return false;
  for (const char c : s)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

std::string prom_sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
          c == '_' || c == ':'))
      c = '_';
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string prom_escape_label(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '\\' || c == '"')
      out += '\\', out += c;
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

/// Split a rendered registry name "base{k=v,k2=v2}" into a sanitized base and
/// a Prometheus label block `k="v",k2="v2"` (empty if no qualifiers).
void prom_split(const std::string& rendered, std::string& base, std::string& labels) {
  const auto brace = rendered.find('{');
  if (brace == std::string::npos || rendered.back() != '}') {
    base = prom_sanitize(rendered);
    labels.clear();
    return;
  }
  base = prom_sanitize(rendered.substr(0, brace));
  labels.clear();
  const std::string inner = rendered.substr(brace + 1, rendered.size() - brace - 2);
  std::size_t i = 0;
  while (i < inner.size()) {
    auto comma = inner.find(',', i);
    if (comma == std::string::npos) comma = inner.size();
    const std::string pair = inner.substr(i, comma - i);
    i = comma + 1;
    const auto eq = pair.find('=');
    if (eq == std::string::npos) continue;
    if (!labels.empty()) labels += ",";
    labels += prom_sanitize(pair.substr(0, eq)) + "=\"" +
              prom_escape_label(pair.substr(eq + 1)) + "\"";
  }
}

void prom_type_line(std::string& out, std::string& last_typed, const std::string& base,
                    const char* type) {
  if (base == last_typed) return;  // consecutive labeled variants share one TYPE
  out += "# TYPE " + base + " " + type + "\n";
  last_typed = base;
}

std::string prom_fmt_value(double v) { return fmt_double(v); }

}  // namespace

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  std::string last_typed;
  for (const auto& c : snap.counters) {
    std::string base, labels;
    prom_split(c.name, base, labels);
    prom_type_line(out, last_typed, base, "counter");
    out += base + (labels.empty() ? "" : "{" + labels + "}") + " " + fmt_u64(c.value) + "\n";
  }
  for (const auto& g : snap.gauges) {
    std::string base, labels;
    prom_split(g.name, base, labels);
    prom_type_line(out, last_typed, base, "gauge");
    out += base + (labels.empty() ? "" : "{" + labels + "}") + " " +
           prom_fmt_value(g.value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    std::string base, labels;
    prom_split(h.name, base, labels);
    prom_type_line(out, last_typed, base, "histogram");
    const std::string extra = labels.empty() ? "" : labels + ",";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cum += h.buckets[i];
      const std::string le =
          i < h.bounds.size() ? prom_fmt_value(h.bounds[i]) : std::string("+Inf");
      out += base + "_bucket{" + extra + "le=\"" + le + "\"} " + fmt_u64(cum) + "\n";
    }
    if (h.buckets.empty())  // degenerate, still expose a +Inf bucket
      out += base + "_bucket{" + extra + "le=\"+Inf\"} " + fmt_u64(h.count) + "\n";
    out += base + "_sum" + (labels.empty() ? "" : "{" + labels + "}") + " " +
           prom_fmt_value(h.sum) + "\n";
    out += base + "_count" + (labels.empty() ? "" : "{" + labels + "}") + " " +
           fmt_u64(h.count) + "\n";
  }
  return out;
}

namespace {

struct PromSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
  std::string labels_text;  // as written, brace-less
};

/// Parse one sample line; returns "" or an error description.
std::string parse_prom_sample(const std::string& line, PromSample& s) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  s.name = line.substr(0, i);
  if (!prom_name_ok(s.name)) return "bad metric name '" + s.name + "'";
  s.labels.clear();
  s.labels_text.clear();
  if (i < line.size() && line[i] == '{') {
    const auto close = line.find('}', i);
    if (close == std::string::npos) return "unterminated label block";
    s.labels_text = line.substr(i + 1, close - i - 1);
    std::size_t j = i + 1;
    while (j < close) {
      auto eq = line.find('=', j);
      if (eq == std::string::npos || eq > close) return "label without '='";
      const std::string k = line.substr(j, eq - j);
      if (!prom_label_name_ok(k)) return "bad label name '" + k + "'";
      if (eq + 1 >= close || line[eq + 1] != '"') return "unquoted label value";
      std::string v;
      std::size_t p = eq + 2;
      bool closed = false;
      while (p < close) {
        if (line[p] == '\\') {
          if (p + 1 >= close) return "dangling escape in label value";
          const char n = line[p + 1];
          if (n == 'n')
            v += '\n';
          else if (n == '\\' || n == '"')
            v += n;
          else
            return "bad escape in label value";
          p += 2;
        } else if (line[p] == '"') {
          closed = true;
          ++p;
          break;
        } else {
          v += line[p++];
        }
      }
      if (!closed) return "unterminated label value";
      s.labels.emplace_back(k, std::move(v));
      if (p < close && line[p] == ',') ++p;
      j = p;
    }
    i = close + 1;
  }
  if (i >= line.size() || line[i] != ' ') return "missing space before value";
  while (i < line.size() && line[i] == ' ') ++i;
  const char* vstart = line.c_str() + i;
  char* vend = nullptr;
  s.value = std::strtod(vstart, &vend);
  if (vend == vstart) return "missing sample value";
  // +Inf / -Inf / NaN are legal; anything after the number is not (we are
  // stricter than the spec: no timestamps).
  for (const char* p = vend; *p; ++p)
    if (*p != ' ') return "trailing characters after value";
  return "";
}

}  // namespace

std::string prometheus_lint(const std::string& text) {
  std::map<std::string, std::string> typed;          // base -> type
  std::map<std::string, bool> sampled;               // base -> saw a sample
  // Histogram bucket series keyed by base + non-le labels: (le, cumulative).
  std::map<std::string, std::vector<std::pair<double, double>>> buckets;
  std::map<std::string, double> hist_count;
  std::map<std::string, bool> hist_sum;

  auto hist_base = [&](const std::string& name, std::string& base,
                       std::string& suffix) {
    for (const char* suf : {"_bucket", "_sum", "_count"}) {
      const std::string s = suf;
      if (name.size() > s.size() && name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string b = name.substr(0, name.size() - s.size());
        if (typed.count(b) && typed[b] == "histogram") {
          base = b;
          suffix = s;
          return true;
        }
      }
    }
    return false;
  };

  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    auto nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    ++lineno;
    auto err = [&](const std::string& what) {
      return "line " + std::to_string(lineno) + ": " + what;
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only HELP/TYPE comments count as structure; anything else is noise
      // the strict lint rejects.
      if (line.rfind("# HELP ", 0) == 0) continue;
      if (line.rfind("# TYPE ", 0) != 0) return err("comment is neither HELP nor TYPE");
      const std::string rest = line.substr(7);
      const auto sp = rest.find(' ');
      if (sp == std::string::npos) return err("TYPE missing metric type");
      const std::string name = rest.substr(0, sp);
      const std::string type = rest.substr(sp + 1);
      if (!prom_name_ok(name)) return err("TYPE has bad metric name '" + name + "'");
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped")
        return err("unknown metric type '" + type + "'");
      if (typed.count(name)) return err("duplicate TYPE for '" + name + "'");
      if (sampled.count(name)) return err("TYPE after samples of '" + name + "'");
      typed[name] = type;
      continue;
    }
    PromSample s;
    const std::string perr = parse_prom_sample(line, s);
    if (!perr.empty()) return err(perr);
    std::string base = s.name, suffix;
    if (!typed.count(s.name) && !hist_base(s.name, base, suffix))
      return err("sample '" + s.name + "' has no TYPE");
    sampled[base] = true;
    if (typed[base] == "histogram") {
      std::string others;
      std::string le;
      for (const auto& [k, v] : s.labels) {
        if (k == "le")
          le = v;
        else
          others += k + "=" + v + ";";
      }
      const std::string key = base + "|" + others;
      if (suffix == "_bucket") {
        if (le.empty()) return err("histogram bucket without le label");
        double lev;
        if (le == "+Inf")
          lev = std::numeric_limits<double>::infinity();
        else {
          char* e = nullptr;
          lev = std::strtod(le.c_str(), &e);
          if (e == le.c_str() || *e) return err("bad le value '" + le + "'");
        }
        buckets[key].emplace_back(lev, s.value);
      } else if (suffix == "_count") {
        hist_count[key] = s.value;
      } else if (suffix == "_sum") {
        hist_sum[key] = true;
      } else {
        return err("bare sample of histogram '" + base + "'");
      }
    }
  }
  for (const auto& [key, series] : buckets) {
    const std::string pretty = key.substr(0, key.find('|'));
    double prev = -1;
    bool has_inf = false;
    for (const auto& [le, v] : series) {
      if (v < prev)
        return "histogram '" + pretty + "': buckets not cumulative";
      prev = v;
      if (le == std::numeric_limits<double>::infinity()) has_inf = true;
    }
    if (!has_inf) return "histogram '" + pretty + "': missing +Inf bucket";
    const auto cit = hist_count.find(key);
    if (cit == hist_count.end()) return "histogram '" + pretty + "': missing _count";
    if (cit->second != series.back().second)
      return "histogram '" + pretty + "': _count != +Inf bucket";
    if (!hist_sum.count(key)) return "histogram '" + pretty + "': missing _sum";
  }
  return "";
}

std::map<std::string, double> parse_prometheus(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t start = 0;
  while (start < text.size()) {
    auto nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    PromSample s;
    if (!parse_prom_sample(line, s).empty()) continue;
    const std::string key =
        s.labels_text.empty() ? s.name : s.name + "{" + s.labels_text + "}";
    out[key] = s.value;
  }
  return out;
}

}  // namespace dlr::telemetry
