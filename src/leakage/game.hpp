// The semantic-security-against-continual-memory-leakage game of
// Definition 3.2, executable.
//
// The challenger: runs Gen, hands the adversary pk; accepts leakage on the
// key-generation randomness (bounded by b0); then, for as many periods as the
// adversary wants, accepts a tuple (h1, h1_ref, h2, h2_ref) of leakage
// functions, samples a background ciphertext c <- C, runs the decryption and
// refresh protocols, and returns the four leakage values -- enforcing the
// carry rule L_i^t + |l_i^t| + |l_i^{t,Ref}| <= b_i. Finally the adversary
// names (m0, m1), receives Enc(m_b) and guesses b.
//
// The refresh ablation (Config::disable_refresh) runs the same game without
// ever refreshing -- the configuration every single-key bounded-leakage
// scheme lives in -- and is what experiment F3 uses to show that continual
// leakage destroys unrefreshed keys while the refreshed system survives.
#pragma once

#include <functional>
#include <memory>

#include "leakage/budget.hpp"
#include "schemes/dlr.hpp"

namespace dlr::leakage {

template <group::BilinearGroup GG>
class CmlGame {
 public:
  using Core = schemes::DlrCore<GG>;
  using GT = typename GG::GT;
  using Ciphertext = typename Core::Ciphertext;
  using PublicKey = typename Core::PublicKey;

  struct Config {
    schemes::DlrParams prm;
    schemes::P1Mode mode = schemes::P1Mode::Plain;
    std::size_t b0 = 0;  // keygen leakage bound (bits)
    std::size_t b1 = 0;  // P1 bound; 0 -> default lambda
    std::size_t b2 = 0;  // P2 bound; 0 -> default |sk2|
    bool disable_refresh = false;  // ablation: no-refresh strawman
    std::uint64_t seed = 0;
    /// Decryption-protocol executions per time period. The paper assumes one
    /// per period "to simplify the presentation" and notes the extension to
    /// several is simple -- this is that extension: each period runs k
    /// background decryptions before the refresh, all visible in pub^t.
    std::size_t decs_per_period = 1;
  };

  /// One period's leakage request. Declared bit lengths are enforced both
  /// against the function output and against the budget.
  struct LeakagePlan {
    LeakageFn h1, h1_ref, h2, h2_ref;
    std::size_t bits1 = 0, bits1_ref = 0, bits2 = 0, bits2_ref = 0;
  };

  struct PeriodView {
    Bytes transcript;      // comm^t
    Ciphertext dec_input;  // c (the first of the period, if several)
    GT dec_output{};       // m
    std::vector<std::pair<Ciphertext, GT>> extra_decs;  // decs 2..k
    Bytes l1, l1_ref, l2, l2_ref;
  };

  struct View {
    PublicKey pk{};
    Bytes keygen_leakage;
    std::vector<PeriodView> periods;
  };

  class Adversary {
   public:
    virtual ~Adversary() = default;

    /// Leakage on Gen's secret randomness; nullopt = none. `bits` must be
    /// <= b0 or the challenger aborts.
    virtual std::optional<std::pair<LeakageFn, std::size_t>> keygen_leakage(const View&) {
      return std::nullopt;
    }

    /// Return false to move to the challenge phase.
    virtual bool wants_more_leakage(const View& view) = 0;

    virtual LeakagePlan plan(std::size_t t, const View& view) = 0;

    virtual std::pair<GT, GT> choose_messages(const View& view, crypto::Rng& rng) = 0;

    /// Returns the guessed bit.
    virtual int guess(const View& view, const Ciphertext& challenge) = 0;
  };

  /// The background-decryption ciphertext distribution C(n, pk, t).
  using CtSampler =
      std::function<Ciphertext(const GG&, const PublicKey&, std::size_t, crypto::Rng&)>;

  /// Default C: encryptions of uniform GT messages.
  static CtSampler uniform_message_sampler() {
    return [](const GG& gg, const PublicKey& pk, std::size_t, crypto::Rng& rng) {
      return Core::enc(gg, pk, gg.gt_random(rng), rng);
    };
  }

  struct Result {
    bool adversary_won = false;
    bool aborted = false;         // budget violation
    std::size_t periods = 0;
    std::size_t leaked_bits_p1 = 0;  // lifetime totals (unbounded by design)
    std::size_t leaked_bits_p2 = 0;
  };

  CmlGame(GG gg, Config cfg) : gg_(std::move(gg)), cfg_(cfg) {
    if (cfg_.b1 == 0) cfg_.b1 = cfg_.prm.b1_bits();
    // b2 = m2: the whole P2 share may leak each period. Use the *serialized*
    // share size so the bound matches the byte-exact snapshots.
    if (cfg_.b2 == 0) cfg_.b2 = 8 * cfg_.prm.ell * gg_.sc_bytes();
  }

  [[nodiscard]] const Config& config() const { return cfg_; }

  Result run(Adversary& adv) { return run(adv, uniform_message_sampler()); }

  Result run(Adversary& adv, const CtSampler& sample_ct) {
    Result res;
    crypto::Rng root(cfg_.seed);
    auto game_rng = root.fork("game");

    // 1. Key generation.
    auto sys = schemes::DlrSystem<GG>::create(gg_, cfg_.prm, cfg_.mode, cfg_.seed + 1);
    View view;
    view.pk = sys.pk();

    LeakageBudget budget1(cfg_.b1, "P1"), budget2(cfg_.b2, "P2");

    // 2. Leakage on key generation (charged to both devices' carry).
    if (auto kg = adv.keygen_leakage(view)) {
      const auto& [fn, bits] = *kg;
      if (!budget1.charge_keygen(bits, cfg_.b0) || !budget2.charge_keygen(bits, cfg_.b0)) {
        res.aborted = true;
        return res;
      }
      view.keygen_leakage = eval_leakage(fn, sys.gen_randomness(), {}, bits).data;
    }

    // 3. Leakage at every time period.
    std::size_t t = 0;
    while (adv.wants_more_leakage(view)) {
      const auto plan = adv.plan(t, view);
      if (!budget1.charge_period(plan.bits1, plan.bits1_ref) ||
          !budget2.charge_period(plan.bits2, plan.bits2_ref)) {
        res.aborted = true;
        res.periods = t;
        return res;
      }

      PeriodView pv;
      pv.dec_input = sample_ct(gg_, view.pk, t, game_rng);
      net::Channel ch;
      pv.dec_output = sys.decrypt(pv.dec_input, ch);
      for (std::size_t k = 1; k < cfg_.decs_per_period; ++k) {
        const auto c = sample_ct(gg_, view.pk, t, game_rng);
        pv.extra_decs.emplace_back(c, sys.decrypt(c, ch));
      }
      // Capture the normal-phase secret memory *before* refresh so h_i^t sees
      // period-t state (the refresh snapshot is captured inside the refresh
      // protocol itself, when both shares are in memory).
      const Bytes snap1 = sys.p1().normal_snapshot().all();
      const Bytes snap2 = sys.p2().normal_snapshot().all();
      if (!cfg_.disable_refresh) sys.refresh(ch);
      pv.transcript = ch.transcript().serialize();

      const Bytes pub = make_pub(pv);
      pv.l1 = eval_leakage(plan.h1, snap1, pub, plan.bits1).data;
      pv.l2 = eval_leakage(plan.h2, snap2, pub, plan.bits2).data;
      if (!cfg_.disable_refresh) {
        pv.l1_ref =
            eval_leakage(plan.h1_ref, sys.p1().refresh_snapshot().all(), pub, plan.bits1_ref)
                .data;
        pv.l2_ref =
            eval_leakage(plan.h2_ref, sys.p2().refresh_snapshot().all(), pub, plan.bits2_ref)
                .data;
      }
      res.leaked_bits_p1 += plan.bits1 + plan.bits1_ref;
      res.leaked_bits_p2 += plan.bits2 + plan.bits2_ref;
      view.periods.push_back(std::move(pv));
      ++t;
    }
    res.periods = t;

    // 4. Challenge phase.
    auto challenge_rng = root.fork("challenge");
    const auto [m0, m1] = adv.choose_messages(view, challenge_rng);
    const int b = challenge_rng.coin() ? 1 : 0;
    const auto challenge = Core::enc(gg_, view.pk, b == 0 ? m0 : m1, challenge_rng);
    const int guess = adv.guess(view, challenge);
    res.adversary_won = (guess == b);
    return res;
  }

 private:
  Bytes make_pub(const PeriodView& pv) const {
    ByteWriter w;
    w.blob(pv.transcript);
    Core::ser_ciphertext(gg_, w, pv.dec_input);
    gg_.gt_ser(w, pv.dec_output);
    for (const auto& [c, m] : pv.extra_decs) {
      Core::ser_ciphertext(gg_, w, c);
      gg_.gt_ser(w, m);
    }
    return w.take();
  }

  GG gg_;
  Config cfg_;
};

}  // namespace dlr::leakage
