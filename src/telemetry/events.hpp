// Structured event log -- pillar 4 of the telemetry layer (DESIGN.md §10).
//
// A bounded, thread-safe ring of typed events recording the service's
// decision points: epoch prepare/commit/rollback, reconciliation verdicts,
// fault injections, client retries and reconnects, drain timeouts, journal
// recoveries, and slow requests. Metrics say *how much*; the event log says
// *what happened, in what order* -- which is what makes a failed
// DLR_CHAOS_SEED soak diagnosable from one artifact instead of a rerun.
//
// Events are cheap (one mutex, one string move), bounded (the ring keeps the
// newest kCapacity events; total() exposes how many were ever emitted so
// overflow is visible), and trace-correlated (each event captures the trace
// id of the thread's open span at emission, if any). The admin endpoint
// serves dump_jsonl(); the test listener auto-dumps it on failure.
//
// With -DDLR_TELEMETRY=OFF everything collapses to inline no-ops.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"  // DLR_TELEMETRY_ENABLED

namespace dlr::telemetry {

enum class EventKind : std::uint8_t {
  EpochPrepare,
  EpochCommit,
  EpochRollback,
  Reconcile,        // reconnect reconciliation verdict
  FaultInjected,    // transport fault injector fired
  Retry,            // client retried a request
  Reconnect,        // client re-dialed the server
  DrainTimeout,     // server stop() abandoned in-flight work
  JournalRecovery,  // runtime resolved a pending refresh from its journal
  SlowRequest,      // server-side request latency over threshold
  Shed,             // server turned a request away (overload / deadline)
  BreakerOpen,      // client circuit breaker tripped open
  BreakerClose,     // client circuit breaker probe succeeded; closed again
  Migrate,          // live-resharding hand-off step (DESIGN.md §14)
};

/// Stable kebab-case name ("epoch-commit", "slow-request", ...).
[[nodiscard]] const char* event_kind_name(EventKind k);

struct Event {
  std::uint64_t seq = 0;    // 1-based global emission order
  EventKind kind = EventKind::EpochPrepare;
  std::int64_t t_ns = 0;    // tracer's process-local monotonic epoch
  std::uint64_t trace_id = 0;  // trace active on the emitting thread; 0 = none
  std::string detail;       // free-form "k=v k=v" context
};

#if DLR_TELEMETRY_ENABLED

class EventLog {
 public:
  [[nodiscard]] static EventLog& global();

  /// Record an event. Captures timestamp and the emitting thread's current
  /// trace id automatically.
  void emit(EventKind kind, std::string detail);

  /// Retained window, oldest first.
  [[nodiscard]] std::vector<Event> events() const;
  /// Events ever emitted (> kCapacity means the ring wrapped).
  [[nodiscard]] std::uint64_t total() const;
  void reset();

  /// One JSON object per retained event -- the admin `adm.events` payload and
  /// the on-failure test artifact.
  [[nodiscard]] std::string dump_jsonl() const;

  static constexpr std::size_t kCapacity = 4096;

 private:
  mutable std::mutex mu_;
  std::vector<Event> ring_;  // ring_[seq % kCapacity] once full
  std::uint64_t total_ = 0;
};

/// Free-function shorthand: telemetry::event(EventKind::Retry, "attempt=2").
inline void event(EventKind kind, std::string detail) {
  EventLog::global().emit(kind, std::move(detail));
}

#else  // !DLR_TELEMETRY_ENABLED

class EventLog {
 public:
  [[nodiscard]] static EventLog& global() {
    static EventLog e;
    return e;
  }
  void emit(EventKind, std::string) {}
  [[nodiscard]] std::vector<Event> events() const { return {}; }
  [[nodiscard]] std::uint64_t total() const { return 0; }
  void reset() {}
  [[nodiscard]] std::string dump_jsonl() const { return {}; }
  static constexpr std::size_t kCapacity = 0;
};

inline void event(EventKind, std::string) {}

#endif  // DLR_TELEMETRY_ENABLED

}  // namespace dlr::telemetry
