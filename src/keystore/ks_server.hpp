// KsServer<GG> -- one shard of the multi-tenant keystore service.
//
// Thread architecture is P2Server's, verbatim: with pipeline=true (default)
// decryption requests (ks.dec AND the compat svc.dec route) flow through the
// SAME decode -> BatchCollector -> crypto-worker -> coalesced-encode
// pipeline as P2Server -- readers decode and address-check, crypto workers
// pull micro-batches, group them by (tenant, key), and serve each group
// through one KeyStore::DecSession (one shared entry lock + one share-vector
// recode per key per batch). Control-plane routes (ks.ref / commit / hello /
// put / map) stay on a small WorkerPool. With pipeline=false every request
// runs on the WorkerPool as in PR 7. One background compaction thread
// periodically folds the segmented journal. What changes is the dispatch: every ks.* request
// names a (tenant, key) and is served by the KeyStore's per-key epoch
// machine, and the legacy single-key routes (svc.dec / svc.ref /
// svc.ref.commit / svc.hello) are kept alive by mapping them onto
// default_key_id() -- a PR 2-5 DecryptionClient pointed at a KsServer whose
// store holds the default key behaves exactly as against a P2Server, which
// is how "single-key mode is a 1-key store".
//
// Sharding: the server carries a shard id and a versioned ShardMap (empty =
// accept everything, the bootstrap/single-shard mode). A ks.* request for a
// key the map assigns elsewhere is refused with the retryable WrongShard
// error; the client refetches the map over ks.map and re-routes. The map is
// installed by the operator/bench via set_shard_map() and served to clients
// over ks.map -- every shard serves the whole map, so any one bootstrap
// address suffices.
//
// The REFRESH SCHEDULER deliberately does not live here: refresh is a
// two-party protocol and the P1 half lives in the client fleet (KsFleet),
// which therefore owns the budget-driven scheduler. This server's side of
// the policy is accounting (charging budgets, piggybacking spent/budget on
// every ks.dec.ok) and the per-key 2PC state machine.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <iterator>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "crypto/rng.hpp"
#include "keystore/keystore.hpp"
#include "keystore/ks_protocol.hpp"
#include "keystore/shard_map.hpp"
#include "service/admin.hpp"
#include "service/batcher.hpp"
#include "service/overload.hpp"
#include "service/parallel.hpp"
#include "service/protocol.hpp"
#include "service/worker_pool.hpp"
#include "telemetry/events.hpp"
#include "telemetry/trace.hpp"
#include "transport/endpoint.hpp"

namespace dlr::keystore {

template <group::BilinearGroup GG>
class KsServer {
 public:
  using Core = schemes::DlrCore<GG>;
  using Store = KeyStore<GG>;
  using ServiceErrc = service::ServiceErrc;
  using ServiceError = service::ServiceError;

  struct Options {
    int workers = 4;
    std::size_t queue_cap = 1024;
    transport::TransportOptions transport{};
    /// Grace period stop() allows queued work to finish before hanging up.
    transport::Millis stop_drain{1000};
    /// This process's shard id (matched against the installed ShardMap).
    std::uint32_t shard_id = 0;
    typename Store::Options store{};
    /// Background journal-compaction cadence (0 = no compaction thread).
    std::chrono::milliseconds compact_interval{500};
    /// Wraps each accepted connection (fault injection in tests/benches).
    std::function<std::shared_ptr<transport::Conn>(std::shared_ptr<transport::FramedConn>)>
        conn_wrapper;
    /// Run a read-only AdminServer sidecar (DESIGN.md §10).
    bool admin = false;
    std::uint16_t admin_port = 0;
    /// Pipelined decryption path (DESIGN.md §12): readers decode, crypto
    /// workers pull cross-request micro-batches grouped by key. Off = every
    /// request runs whole on the WorkerPool (PR 7 behavior).
    bool pipeline = true;
    /// Micro-batch bounds (effective cap is min(max_batch, 2 * workers)).
    std::size_t max_batch = 16;
    std::chrono::microseconds batch_wait{200};
    /// Derive a DLR_PARALLEL default from hardware_concurrency minus this
    /// server's own threads when the env var is absent.
    bool adaptive_parallel = true;
    /// Queue-depth fraction past which the server is "degraded" and sheds
    /// background refresh PREPAREs (DESIGN.md §13).
    double overload_high_water = 0.75;
    /// Ceiling on the server-computed retry-after hint.
    std::uint32_t retry_after_cap_ms = 2000;
    /// Leakage-floor exception to refresh shedding: a key whose spent
    /// fraction is at/above this floor gets its refresh served even while
    /// degraded -- availability degrades before leakage tolerance does.
    double refresh_shed_floor = 0.8;
    /// Artificial per-batch crypto-stage delay (tests and the --overload
    /// bench): presents a controllable capacity so saturation is
    /// deterministic instead of a race against real crypto speed.
    std::chrono::microseconds inject_crypto_delay{0};
  };

  KsServer(GG gg, schemes::DlrParams prm, crypto::Rng rng, Options opt)
      : opt_(std::move(opt)),
        store_(std::move(gg), prm, std::move(rng), opt_.store),
        batcher_(typename service::BatchCollector<KsDecJob>::Options{
            effective_batch_cap(opt_), opt_.batch_wait, opt_.queue_cap}),
        gov_(service::OverloadGovernor::Options{.workers = opt_.workers,
                                                .queue_cap = opt_.queue_cap,
                                                .high_water = opt_.overload_high_water,
                                                .hint_cap_ms = opt_.retry_after_cap_ms}) {}

  ~KsServer() { stop(); }
  KsServer(const KsServer&) = delete;
  KsServer& operator=(const KsServer&) = delete;

  void start(std::uint16_t port = 0) {
    listener_ = transport::Listener::loopback(port);
    pool_ = std::make_unique<service::WorkerPool>(
        opt_.pipeline ? kControlWorkers : opt_.workers, opt_.queue_cap);
    if (opt_.adaptive_parallel) {
      const unsigned hw = std::thread::hardware_concurrency();
      const int own = (opt_.pipeline ? opt_.workers + kControlWorkers : opt_.workers) + 1;
      service::set_adaptive_parallel_default(
          hw == 0 ? 0 : std::max(0, static_cast<int>(hw) - own));
    }
    if (opt_.pipeline) {
      crypto_threads_.reserve(static_cast<std::size_t>(opt_.workers));
      for (int i = 0; i < opt_.workers; ++i)
        crypto_threads_.emplace_back([this] { crypto_loop(); });
    }
    if (opt_.admin) {
      admin_ = std::make_unique<service::AdminServer>(
          service::AdminServer::Options{.transport = opt_.transport});
      admin_->register_health("keystore", [this] { return health_fields(); });
      admin_->start(opt_.admin_port);
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
    if (opt_.compact_interval.count() > 0)
      compact_thread_ = std::thread([this] { compact_loop(); });
  }

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] std::uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }
  [[nodiscard]] service::AdminServer* admin() { return admin_.get(); }
  [[nodiscard]] Store& store() { return store_; }
  [[nodiscard]] std::uint32_t shard_id() const { return opt_.shard_id; }
  /// Overload governor (shed counters, EWMA crypto cost) — read-only.
  [[nodiscard]] const service::OverloadGovernor& gov() const { return gov_; }

  void set_shard_map(ShardMap map) {
    std::lock_guard lk(map_mu_);
    map_ = std::move(map);
  }
  [[nodiscard]] ShardMap shard_map() const {
    std::lock_guard lk(map_mu_);
    return map_;
  }

  void begin_drain() { draining_stop_.store(true); }

  void stop() {
    if (stopping_.exchange(true)) {
      if (accept_thread_.joinable()) accept_thread_.join();
      if (compact_thread_.joinable()) compact_thread_.join();
      return;
    }
    draining_stop_.store(true);
    {
      std::lock_guard lk(compact_mu_);
      compact_stop_ = true;
    }
    compact_cv_.notify_all();
    if (compact_thread_.joinable()) compact_thread_.join();
    const auto deadline = std::chrono::steady_clock::now() + opt_.stop_drain;
    while (std::chrono::steady_clock::now() < deadline && pool_ &&
           (pool_->queued() > 0 || batcher_.queued() > 0))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    listener_.close();
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::shared_ptr<ConnState>> conns;
    {
      std::lock_guard lock(conns_mu_);
      conns = conns_;
    }
    for (auto& c : conns) c->conn->shutdown();
    if (pool_) pool_->stop();
    // Wake readers blocked in submit() backpressure before joining them;
    // crypto workers drain the queue and exit on the first empty collect().
    batcher_.stop();
    for (auto& t : crypto_threads_)
      if (t.joinable()) t.join();
    crypto_threads_.clear();
    for (auto& c : conns)
      if (c->reader.joinable()) c->reader.join();
    if (admin_) admin_->stop();
  }

 private:
  static constexpr int kControlWorkers = 2;

  struct ConnState {
    std::shared_ptr<transport::Conn> conn;
    std::thread reader;
    std::atomic<bool> done{false};
  };

  /// One decoded, shard-checked decryption request parked in the batcher.
  struct KsDecJob {
    std::shared_ptr<transport::Conn> conn;
    std::uint32_t session = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
    KeyId id;
    std::uint64_t epoch = 0;
    Bytes payload;
    bool compat = false;  // arrived on the svc.dec route -> svc.dec.ok reply
    std::chrono::steady_clock::time_point enq;
    /// Absolute expiry from the request's deadline budget; epoch value = none.
    std::chrono::steady_clock::time_point deadline{};
  };

  [[nodiscard]] static std::size_t effective_batch_cap(const Options& o) {
    const std::size_t w = static_cast<std::size_t>(std::max(1, o.workers));
    return std::max<std::size_t>(1, std::min(o.max_batch, 2 * w));
  }

  [[nodiscard]] std::vector<std::pair<std::string, std::string>> health_fields() const {
    std::uint64_t map_version = 0;
    std::size_t map_shards = 0;
    {
      std::lock_guard lk(map_mu_);
      map_version = map_.version();
      map_shards = map_.shards().size();
    }
    auto* j = const_cast<Store&>(store_).journal();
    return {
        {"shard_id", std::to_string(opt_.shard_id)},
        {"keys", std::to_string(store_.size())},
        {"map_version", std::to_string(map_version)},
        {"map_shards", std::to_string(map_shards)},
        {"journal_segments", j ? std::to_string(j->segment_count()) : "0"},
        {"compactions", j ? std::to_string(j->compactions()) : "0"},
        {"draining", draining_stop_.load() ? "true" : "false"},
        {"pipeline", opt_.pipeline ? "true" : "false"},
        {"batch_queue", std::to_string(batcher_.queued())},
        {"queue_cap", std::to_string(opt_.queue_cap)},
        {"degraded",
         gov_.degraded(batcher_.queued() + (pool_ ? pool_->queued() : 0)) ? "true"
                                                                          : "false"},
        {"shed_overload", std::to_string(gov_.shed_overload())},
        {"shed_deadline", std::to_string(gov_.shed_deadline())},
        {"shed_refresh", std::to_string(gov_.shed_refresh())},
        {"crypto_cost_us_ewma", std::to_string(gov_.cost_us())},
    };
  }

  void accept_loop() {
    for (;;) {
      transport::Socket sock;
      try {
        sock = listener_.accept(transport::Millis{200});
      } catch (const transport::TransportError& e) {
        if (e.code() == transport::Errc::Timeout) {
          if (stopping_.load()) return;
          continue;
        }
        return;  // listener closed
      }
      auto st = std::make_shared<ConnState>();
      auto fc = std::make_shared<transport::FramedConn>(std::move(sock), opt_.transport);
      st->conn = opt_.conn_wrapper
                     ? opt_.conn_wrapper(std::move(fc))
                     : std::static_pointer_cast<transport::Conn>(std::move(fc));
      st->reader = std::thread([this, conn = st->conn] { reader_loop(conn); });
      std::lock_guard lock(conns_mu_);
      std::erase_if(conns_, [](const std::shared_ptr<ConnState>& c) {
        if (!c->done.load()) return false;
        if (c->reader.joinable()) c->reader.join();
        return true;
      });
      conns_.push_back(std::move(st));
    }
  }

  void reader_loop(const std::shared_ptr<transport::Conn>& conn) {
    for (;;) {
      transport::Frame f;
      try {
        f = conn->recv_blocking();
      } catch (const transport::TransportError&) {
        break;
      }
      if (f.type != transport::FrameType::Data) continue;
      if (opt_.pipeline && (f.label == kKsDec || f.label == service::kLabelDecReq)) {
        if (!enqueue_dec(conn, std::move(f))) break;
        continue;
      }
      // Stash the header before the body moves into the job: a Full verdict
      // must still answer on the request's session with its trace intact.
      transport::Frame hdr{f.session, f.type,
                           static_cast<std::uint8_t>(net::DeviceId::P2), f.label, {}};
      hdr.trace_id = f.trace_id;
      hdr.parent_span = f.parent_span;
      const auto sub = pool_->try_submit([this, conn, f = std::move(f)]() mutable {
        handle(*conn, std::move(f));
      });
      if (sub == service::WorkerPool::Submit::Stopped) break;
      if (sub == service::WorkerPool::Submit::Full) {
        // Reader never blocks on a saturated pool (DESIGN.md §13): shed with
        // a retryable Overloaded + drain-time hint instead of stalling every
        // request behind this one on the connection.
        const std::size_t depth = pool_->queued() + batcher_.queued();
        gov_.count_shed_overload();
        shed_event("cause=pool-full label=" + hdr.label, gov_.shed_overload());
        try {
          send_err(*conn, hdr, ServiceErrc::Overloaded, 0, "worker queue full",
                   gov_.retry_after_ms(depth));
        } catch (const transport::TransportError&) {
          break;
        }
      }
    }
    std::lock_guard lock(conns_mu_);
    for (auto& c : conns_)
      if (c->conn == conn) c->done.store(true);
  }

  void compact_loop() {
    std::unique_lock lk(compact_mu_);
    while (!compact_stop_) {
      compact_cv_.wait_for(lk, opt_.compact_interval, [this] { return compact_stop_; });
      if (compact_stop_) return;
      lk.unlock();
      try {
        store_.maybe_compact();
      } catch (const std::exception&) {
        // An I/O failure mid-compaction leaves a recoverable on-disk state
        // (segment_journal.hpp); keep serving and retry next tick.
      }
      lk.lock();
    }
  }

  /// WrongShard gate: with a non-empty map installed, refuse keys the map
  /// assigns to another shard. The default key is exempt -- the single-key
  /// compat routes must keep working while a map is installed.
  void check_owned(const KeyId& id) const {
    if (id == default_key_id()) return;
    std::lock_guard lk(map_mu_);
    if (map_.empty()) return;
    const std::uint32_t owner = map_.owner(id);
    if (owner != opt_.shard_id)
      throw ServiceError(ServiceErrc::WrongShard, 0,
                         id.display() + " belongs to shard " + std::to_string(owner));
  }

  // ---- pipelined decryption path ----------------------------------------

  /// Reader-side stage: decode + shard-check + park in the batcher. Returns
  /// false when the reader should exit (connection dead or server stopping).
  bool enqueue_dec(const std::shared_ptr<transport::Conn>& conn, transport::Frame f) {
    try {
      if (draining_stop_.load()) {
        send_err(*conn, f, ServiceErrc::Shutdown, 0, "server shutting down");
        return true;
      }
      KsDecJob job;
      std::uint32_t deadline_ms = 0;
      job.compat = (f.label == service::kLabelDecReq);
      if (job.compat) {
        service::Request req = decode_svc(f);
        job.id = default_key_id();
        job.epoch = req.epoch;
        job.payload = std::move(req.round1);
        deadline_ms = req.deadline_ms;
      } else {
        KsRequest req = decode_ks(f);
        check_owned(req.id);
        job.id = std::move(req.id);
        job.epoch = req.epoch;
        job.payload = std::move(req.payload);
        deadline_ms = req.deadline_ms;
      }
      job.conn = conn;
      job.session = f.session;
      job.trace_id = f.trace_id;
      job.parent_span = f.parent_span;
      job.enq = std::chrono::steady_clock::now();
      if (deadline_ms != 0)
        job.deadline = job.enq + std::chrono::milliseconds(deadline_ms);
      switch (batcher_.try_submit(job)) {
        case service::BatchCollector<KsDecJob>::Submit::Ok:
          return true;
        case service::BatchCollector<KsDecJob>::Submit::Stopped:
          try {
            send_err(*conn, f, ServiceErrc::Shutdown, 0, "server shutting down");
          } catch (...) {
          }
          return false;
        case service::BatchCollector<KsDecJob>::Submit::Full: {
          // Reader never blocks on a saturated batch queue (DESIGN.md §13):
          // shed BEFORE any crypto was spent, with the estimated backlog
          // drain time as the retry floor.
          const std::size_t depth = batcher_.queued();
          gov_.count_shed_overload();
          shed_event("cause=batch-full depth=" + std::to_string(depth),
                     gov_.shed_overload());
          send_err(*conn, f, ServiceErrc::Overloaded, 0, "decrypt queue full",
                   gov_.retry_after_ms(depth));
          return true;
        }
      }
      return true;
    } catch (const ServiceError& e) {
      try {
        send_err(*conn, f, e.code(), e.server_epoch(), e.what());
      } catch (...) {
      }
      return true;
    } catch (const transport::TransportError&) {
      return false;
    } catch (const std::exception& e) {
      try {
        send_err(*conn, f, ServiceErrc::Internal, 0, e.what());
      } catch (...) {
      }
      return true;
    }
  }

  void crypto_loop() {
    for (;;) {
      auto batch = batcher_.collect();
      if (batch.empty()) return;  // stopped and drained
      process_batch(batch);
    }
  }

  /// Crypto + encode stages for one micro-batch: group by key, serve each
  /// group through one DecSession (one shared entry lock + one recode),
  /// then demultiplex the replies per connection with coalesced sends.
  void process_batch(std::vector<KsDecJob>& batch) {
    batch_size_hist().observe(static_cast<double>(batch.size()));
    const auto now = std::chrono::steady_clock::now();
    for (const auto& j : batch)
      batch_wait_hist().observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(now - j.enq).count()));

    struct Out {
      Bytes body;
      const char* label = nullptr;  // reply label; nullptr -> error frame
      ServiceErrc errc = ServiceErrc::BadRequest;
      std::uint64_t err_epoch = 0;
      std::string err;
      std::uint64_t stamp_trace = 0;
      std::uint64_t stamp_span = 0;
    };
    std::vector<Out> outs(batch.size());

    // Group batch indices by key, preserving arrival order within a group.
    // A job whose deadline budget expired while queued is dropped HERE,
    // before any pairing/exponentiation is spent on an answer the client
    // already gave up on (DESIGN.md §13).
    std::size_t ran = 0;
    std::vector<std::pair<const KeyId*, std::vector<std::size_t>>> groups;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline != std::chrono::steady_clock::time_point{} &&
          now >= batch[i].deadline) {
        gov_.count_shed_deadline();
        outs[i].errc = ServiceErrc::DeadlineExceeded;
        outs[i].err = "deadline expired in queue";
        continue;
      }
      ++ran;
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const auto& g) { return *g.first == batch[i].id; });
      if (it == groups.end()) {
        groups.push_back({&batch[i].id, {i}});
      } else {
        it->second.push_back(i);
      }
    }

    // The batch already spreads over the crypto workers; with more than one
    // request in hand, per-request fan-out would just oversubscribe.
    const auto crypto_t0 = std::chrono::steady_clock::now();
    service::FanoutSuppressGuard fanout_guard(batch.size() > 1);
    for (auto& [id, idxs] : groups) {
      try {
        auto session = store_.dec_session(*id);
        for (const std::size_t i : idxs) {
          auto& j = batch[i];
          telemetry::ScopedSpan span(j.compat ? "svc.dec" : "ks.dec",
                                     telemetry::TraceContext{j.trace_id, j.parent_span});
          try {
            auto out = session.run(j.epoch, j.payload);
            if (j.compat) {
              outs[i].body = std::move(out.reply);
              outs[i].label = service::kLabelDecOk;
            } else {
              outs[i].body = encode_ks_dec_ok(
                  {std::move(out.reply), out.spent_millibits, out.budget_millibits});
              outs[i].label = kKsDecOk;
            }
          } catch (const ServiceError& e) {
            outs[i].errc = e.code();
            outs[i].err_epoch = e.server_epoch();
            outs[i].err = e.what();
          } catch (const std::exception& e) {
            outs[i].errc = ServiceErrc::Internal;
            outs[i].err = e.what();
          }
          const auto ctx = telemetry::Tracer::global().current();
          if (ctx.active()) {
            outs[i].stamp_trace = ctx.trace_id;
            outs[i].stamp_span = ctx.span_id;
          }
        }
      } catch (const ServiceError& e) {
        for (const std::size_t i : idxs) {
          outs[i].errc = e.code();
          outs[i].err_epoch = e.server_epoch();
          outs[i].err = e.what();
        }
      } catch (const std::exception& e) {
        for (const std::size_t i : idxs) {
          outs[i].errc = ServiceErrc::Internal;
          outs[i].err = e.what();
        }
      }
    }
    if (ran > 0 && opt_.inject_crypto_delay.count() > 0)
      std::this_thread::sleep_for(opt_.inject_crypto_delay);
    if (ran > 0)
      gov_.record_batch(ran, std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - crypto_t0)
                                 .count());

    // Demultiplex: one frame list per connection, sent with one syscall.
    const auto encode_now = std::chrono::steady_clock::now();
    std::vector<std::pair<transport::Conn*, std::vector<transport::Frame>>> by_conn;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto& j = batch[i];
      auto& o = outs[i];
      // Second deadline check: the crypto is sunk cost, but a reply the
      // client has stopped waiting for still costs encode + send + client
      // demux confusion -- convert it to the typed error instead.
      if (o.label != nullptr && j.deadline != std::chrono::steady_clock::time_point{} &&
          encode_now >= j.deadline) {
        gov_.count_shed_deadline();
        o.label = nullptr;
        o.errc = ServiceErrc::DeadlineExceeded;
        o.err_epoch = 0;
        o.err = "deadline expired before encode";
      }
      transport::Frame out;
      if (o.label != nullptr) {
        out = transport::Frame{j.session, transport::FrameType::Data,
                               static_cast<std::uint8_t>(net::DeviceId::P2), o.label,
                               std::move(o.body)};
      } else {
        out = transport::Frame{j.session, transport::FrameType::Error,
                               static_cast<std::uint8_t>(net::DeviceId::P2),
                               service::kLabelErr,
                               service::encode_error(o.errc, o.err_epoch, o.err)};
      }
      if (j.trace_id != 0) {
        out.trace_id = o.stamp_trace != 0 ? o.stamp_trace : j.trace_id;
        out.parent_span = o.stamp_trace != 0 ? o.stamp_span : j.parent_span;
      }
      auto it = std::find_if(by_conn.begin(), by_conn.end(),
                             [&](const auto& g) { return g.first == j.conn.get(); });
      if (it == by_conn.end()) {
        by_conn.push_back({j.conn.get(), {}});
        it = std::prev(by_conn.end());
      }
      it->second.push_back(std::move(out));
    }
    for (auto& [conn, frames] : by_conn) {
      try {
        conn->send_many(frames);
      } catch (const transport::TransportError&) {
        // That client is gone; the other connections' replies still went out.
      }
    }
  }

  static telemetry::Histogram& batch_size_hist() {
    static telemetry::Histogram& h = telemetry::Registry::global().histogram(
        "svc.batch.size", {1, 2, 4, 8, 16, 32, 64});
    return h;
  }
  static telemetry::Histogram& batch_wait_hist() {
    static telemetry::Histogram& h = telemetry::Registry::global().histogram(
        "svc.batch.wait_us", {25, 50, 100, 200, 400, 800, 1600, 5000});
    return h;
  }

  void handle(transport::Conn& conn, transport::Frame f) {
    try {
      if (draining_stop_.load()) {
        send_err(conn, f, ServiceErrc::Shutdown, 0, "server shutting down");
        return;
      }
      if (f.label == kKsDec) {
        handle_dec(conn, f);
      } else if (f.label == kKsRef) {
        handle_ref(conn, f);
      } else if (f.label == kKsRefCommit) {
        handle_ref_commit(conn, f);
      } else if (f.label == kKsHello) {
        handle_hello(conn, f);
      } else if (f.label == kKsPut) {
        handle_put(conn, f);
      } else if (f.label == kKsMap) {
        // Encode under map_mu_ but send outside it: a connection blocked in
        // send() must not stall check_owned()/set_shard_map() on other workers.
        Bytes body;
        {
          std::lock_guard lk(map_mu_);
          body = map_.encode();
        }
        reply_data(conn, f, kKsMapOk, std::move(body));
      } else if (f.label == service::kLabelDecReq) {
        handle_compat_dec(conn, f);
      } else if (f.label == service::kLabelRefReq) {
        handle_compat_ref(conn, f);
      } else if (f.label == service::kLabelRefCommit) {
        handle_compat_commit(conn, f);
      } else if (f.label == service::kLabelHello) {
        handle_compat_hello(conn, f);
      } else {
        send_err(conn, f, ServiceErrc::BadRequest, 0, "unknown label '" + f.label + "'");
      }
    } catch (const ServiceError& e) {
      try {
        send_err(conn, f, e.code(), e.server_epoch(), e.what());
      } catch (...) {
      }
    } catch (const transport::TransportError&) {
      // Response could not be delivered (client gone).
    } catch (const std::exception& e) {
      try {
        send_err(conn, f, ServiceErrc::Internal, 0, e.what());
      } catch (...) {
      }
    }
  }

  void handle_dec(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("ks.dec",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    KsRequest req = decode_ks(f);
    check_owned(req.id);
    const auto out = store_.dec(req.id, req.epoch, req.payload);
    reply_data(conn, f, kKsDecOk,
               encode_ks_dec_ok({out.reply, out.spent_millibits, out.budget_millibits}));
  }

  void handle_ref(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("ks.refresh",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    KsRequest req = decode_ks(f);
    check_owned(req.id);
    if (maybe_shed_refresh(conn, f, req.id)) return;
    reply_data(conn, f, kKsRefOk, store_.ref_prepare(req.id, req.epoch, req.payload));
  }

  void handle_ref_commit(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("ks.refresh",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    KsRequest req = decode_ks(f);
    check_owned(req.id);
    reply_data(conn, f, kKsRefCommitOk,
               service::encode_commit_ok(store_.ref_commit(req.id, req.epoch, req.payload)));
  }

  void handle_hello(transport::Conn& conn, const transport::Frame& f) {
    KsHello kh;
    try {
      kh = decode_ks_hello(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    check_owned(kh.id);
    service::HelloOk ok = store_.hello(kh.id, kh.hello);
    ok.version = std::min<std::uint8_t>(kh.hello.version, service::kWireDeadlineVersion);
    reply_data(conn, f, kKsHelloOk, service::encode_hello_ok(ok));
  }

  void handle_put(transport::Conn& conn, const transport::Frame& f) {
    KsPut p;
    try {
      p = decode_ks_put(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    check_owned(p.id);
    try {
      ByteReader sr(p.sk2_ser);
      store_.put(p.id, Core::deser_sk2(store_gg(), sr));
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    reply_data(conn, f, kKsPutOk, {});
  }

  // ---- single-key compatibility routes (svc.*, PR 2-5 wire format) ----

  void handle_compat_dec(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("svc.dec",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    service::Request req = decode_svc(f);
    const auto out = store_.dec(default_key_id(), req.epoch, req.round1);
    reply_data(conn, f, service::kLabelDecOk, Bytes(out.reply));
  }

  void handle_compat_ref(transport::Conn& conn, const transport::Frame& f) {
    telemetry::ScopedSpan span("svc.refresh",
                               telemetry::TraceContext{f.trace_id, f.parent_span});
    service::Request req = decode_svc(f);
    if (maybe_shed_refresh(conn, f, default_key_id())) return;
    reply_data(conn, f, service::kLabelRefOk,
               store_.ref_prepare(default_key_id(), req.epoch, req.round1));
  }

  void handle_compat_commit(transport::Conn& conn, const transport::Frame& f) {
    service::CommitMsg cm;
    try {
      cm = service::decode_commit(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    reply_data(conn, f, service::kLabelRefCommitOk,
               service::encode_commit_ok(
                   store_.ref_commit(default_key_id(), cm.epoch, cm.digest)));
  }

  void handle_compat_hello(transport::Conn& conn, const transport::Frame& f) {
    service::HelloMsg h;
    try {
      h = service::decode_hello(f.body);
    } catch (const std::exception& e) {
      send_err(conn, f, ServiceErrc::BadRequest, 0, e.what());
      return;
    }
    service::HelloOk ok = store_.hello(default_key_id(), h);
    ok.version = std::min<std::uint8_t>(h.version, service::kWireDeadlineVersion);
    reply_data(conn, f, service::kLabelHelloOk, service::encode_hello_ok(ok));
  }

  [[nodiscard]] KsRequest decode_ks(const transport::Frame& f) const {
    try {
      return decode_ks_request(f.body);
    } catch (const std::exception& e) {
      throw ServiceError(ServiceErrc::BadRequest, 0, e.what());
    }
  }

  [[nodiscard]] service::Request decode_svc(const transport::Frame& f) const {
    try {
      return service::decode_request(f.body);
    } catch (const std::exception& e) {
      throw ServiceError(ServiceErrc::BadRequest, 0, e.what());
    }
  }

  /// The store's group, for deserializing ks.put payloads.
  [[nodiscard]] const GG& store_gg() const { return store_.gg(); }

  static void stamp_reply(transport::Frame& out, const transport::Frame& req) {
    if (req.trace_id == 0) return;
    const auto ctx = telemetry::Tracer::global().current();
    out.trace_id = ctx.active() ? ctx.trace_id : req.trace_id;
    out.parent_span = ctx.active() ? ctx.span_id : req.parent_span;
  }

  void reply_data(transport::Conn& conn, const transport::Frame& req, const char* label,
                  Bytes body) {
    transport::Frame out{req.session, transport::FrameType::Data,
                         static_cast<std::uint8_t>(net::DeviceId::P2), label,
                         std::move(body)};
    stamp_reply(out, req);
    conn.send(out);
  }

  void send_err(transport::Conn& conn, const transport::Frame& req, ServiceErrc code,
                std::uint64_t server_epoch, const std::string& msg,
                std::uint32_t retry_after_ms = 0) {
    transport::Frame out{req.session, transport::FrameType::Error,
                         static_cast<std::uint8_t>(net::DeviceId::P2),
                         service::kLabelErr,
                         service::encode_error(code, server_epoch, msg, retry_after_ms)};
    stamp_reply(out, req);
    conn.send(out);
  }

  /// Rate-limited Shed event (every 256th): sustained overload must not
  /// evict the rare events (breaker transitions, epoch changes) from the
  /// bounded ring a post-mortem actually needs.
  static void shed_event(const std::string& detail, std::uint64_t nth) {
    if (nth % 256 == 1)
      telemetry::event(telemetry::EventKind::Shed, detail + " n=" + std::to_string(nth));
  }

  /// Graceful degradation (DESIGN.md §13): past the high-water mark,
  /// background refresh PREPAREs yield their worker time to decrypts --
  /// EXCEPT for a key whose leakage budget is nearly spent
  /// (spent_frac >= refresh_shed_floor): its refresh is the one background
  /// job that must not wait, because shedding it converts an availability
  /// problem into a leakage-tolerance problem. Commits are never shed: they
  /// finish an already-paid-for 2PC and release the drain barrier.
  /// Returns true when the prepare was shed (error already sent).
  bool maybe_shed_refresh(transport::Conn& conn, const transport::Frame& f,
                          const KeyId& id) {
    const std::size_t depth = batcher_.queued() + (pool_ ? pool_->queued() : 0);
    if (!gov_.degraded(depth)) return false;
    double frac = 0.0;
    try {
      frac = store_.spent_frac(id);
    } catch (const std::exception&) {
      // Unknown key: let the prepare proceed and fail with the typed error.
      return false;
    }
    if (frac >= opt_.refresh_shed_floor) return false;  // leakage floor: serve it
    gov_.count_shed_refresh();
    shed_event("cause=degraded label=" + f.label + " key=" + id.display() +
                   " depth=" + std::to_string(depth),
               gov_.shed_refresh());
    send_err(conn, f, ServiceErrc::Overloaded, 0, "degraded: refresh deprioritized",
             gov_.retry_after_ms(depth));
    return true;
  }

  Options opt_;
  Store store_;
  service::BatchCollector<KsDecJob> batcher_;
  service::OverloadGovernor gov_;
  std::vector<std::thread> crypto_threads_;
  mutable std::mutex map_mu_;
  ShardMap map_;
  transport::Listener listener_;
  std::unique_ptr<service::WorkerPool> pool_;
  std::unique_ptr<service::AdminServer> admin_;
  std::thread accept_thread_;
  std::thread compact_thread_;
  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  bool compact_stop_ = false;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<ConnState>> conns_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_stop_{false};
};

}  // namespace dlr::keystore
