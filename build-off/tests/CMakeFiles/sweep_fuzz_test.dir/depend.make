# Empty dependencies file for sweep_fuzz_test.
# This may be replaced when dependencies are built.
