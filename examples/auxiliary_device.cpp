// The "auxiliary device" scenario from the paper's introduction: a main
// processor (P1) paired with a much simpler gadget, e.g. a smart card (P2).
//
// This example demonstrates the claim of Section 1.1 ("Simplicity of One of
// the Two Devices") by running the protocols through an operation-counting
// group wrapper per device and printing each device's operation profile:
// P2 only ever (a) samples scalars and (b) raises received elements to its
// scalars and multiplies them -- no pairings, no hashing, no group sampling.
#include <cstdio>

#include "group/counting_group.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"

int main() {
  using namespace dlr;
  using GG = group::TateSS256;
  using CG = group::CountingGroup<GG>;

  const GG base = group::make_tate_ss256();
  const auto prm = schemes::DlrParams::derive(base.scalar_bits(), 64);

  CG main_cpu(base);    // device P1: the computer
  CG smart_card(base);  // device P2: the auxiliary gadget

  crypto::Rng rng(7);
  auto kg = schemes::DlrCore<CG>::gen(main_cpu, prm, rng);
  schemes::DlrParty1<CG> p1(main_cpu, prm, kg.pk, std::move(kg.sk1),
                            schemes::P1Mode::Compact, crypto::Rng(1));
  schemes::DlrParty2<CG> p2(smart_card, prm, std::move(kg.sk2), crypto::Rng(2));
  main_cpu.reset_counts();
  smart_card.reset_counts();

  // A few full periods: decrypt incoming ciphertexts, then refresh.
  for (int t = 0; t < 3; ++t) {
    const auto m = main_cpu.gt_random(rng);
    const auto c = schemes::DlrCore<CG>::enc(main_cpu, kg.pk, m, rng);
    const auto reply = p2.dec_respond(p1.dec_round1(c));
    if (!main_cpu.gt_eq(p1.dec_finish(reply), m)) {
      std::printf("decryption failed!\n");
      return 1;
    }
    p1.ref_finish(p2.ref_respond(p1.ref_round1()));
  }

  auto print_profile = [](const char* who, const group::OpCounts& ops) {
    std::printf("%-22s pairings=%-5zu g_random=%-4zu hash_to_g=%-3zu exps=%-5zu "
                "muls=%-5zu sc_random=%zu\n",
                who, ops.pairings, ops.g_random, ops.hash_to_g, ops.exps(), ops.muls(),
                ops.sc_random);
  };
  std::printf("operation profile over 3 periods (decrypt + refresh each):\n");
  print_profile("P1 (main processor):", main_cpu.counts());
  print_profile("P2 (smart card):", smart_card.counts());

  const auto& ops2 = smart_card.counts();
  const bool simple = ops2.pairings == 0 && ops2.g_random == 0 && ops2.hash_to_g == 0 &&
                      ops2.gt_random == 0;
  std::printf("\nP2 ran only exponentiations/multiplications on received elements: %s\n",
              simple ? "YES -- it can be a smart card" : "NO (bug!)");

  std::printf("\nNote: P1 runs in Compact mode here, so its *secret* memory is just\n"
              "sk_comm plus one scratch element (%zu bits) -- the encrypted share\n"
              "lives in public memory, which is what buys the (1-o(1)) leakage rate.\n",
              p1.secret_bits(net::Phase::Normal));
  return simple ? 0 : 1;
}
