# Empty dependencies file for bench_f4_cca2_overhead.
# This may be replaced when dependencies are built.
