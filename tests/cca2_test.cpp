// Tests for DLRCCA2 (BCHK transform over DLRIBE): correctness, the CCA2
// rejection paths (tampered inner ciphertext, swapped signatures/keys), state
// hygiene, and interaction with msk refresh.
#include <gtest/gtest.h>

#include "group/mock_group.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr_cca2.hpp"

namespace dlr::schemes {
namespace {

using crypto::Rng;
using group::make_mock;
using group::MockGroup;

DlrParams mock_params() {
  auto gg = make_mock();
  return DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

using Sys = DlrCca2System<MockGroup>;

TEST(DlrCca2Test, EncDecRoundTrip) {
  const auto gg = make_mock();
  auto sys = Sys::create(gg, mock_params(), 32, 2200);
  Rng rng(2201);
  for (int i = 0; i < 5; ++i) {
    const auto m = gg.gt_random(rng);
    const auto ct = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
    const auto out = sys.decrypt(ct);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(gg.gt_eq(*out, m));
  }
}

TEST(DlrCca2Test, TamperedInnerCiphertextRejected) {
  const auto gg = make_mock();
  auto sys = Sys::create(gg, mock_params(), 32, 2202);
  Rng rng(2203);
  const auto m = gg.gt_random(rng);
  auto ct = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
  ct.inner.b = gg.gt_mul(ct.inner.b, gg.gt_gen());  // malleation attempt
  EXPECT_FALSE(sys.decrypt(ct).has_value());        // signature breaks
}

TEST(DlrCca2Test, SwappedSignatureRejected) {
  const auto gg = make_mock();
  auto sys = Sys::create(gg, mock_params(), 32, 2204);
  Rng rng(2205);
  const auto m = gg.gt_random(rng);
  auto ct1 = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
  const auto ct2 = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
  ct1.sig = ct2.sig;  // valid signature, wrong key/message
  EXPECT_FALSE(sys.decrypt(ct1).has_value());
}

TEST(DlrCca2Test, SwappedVkRejected) {
  const auto gg = make_mock();
  auto sys = Sys::create(gg, mock_params(), 32, 2206);
  Rng rng(2207);
  const auto m = gg.gt_random(rng);
  auto ct1 = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
  const auto ct2 = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
  ct1.vk = ct2.vk;
  EXPECT_FALSE(sys.decrypt(ct1).has_value());
}

TEST(DlrCca2Test, DistinctEncryptionsUseDistinctIdentities) {
  const auto gg = make_mock();
  Rng rng(2208);
  auto sys = Sys::create(gg, mock_params(), 32, 2209);
  const auto m = gg.gt_random(rng);
  const auto ct1 = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
  const auto ct2 = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
  EXPECT_NE(Sys::vk_identity(ct1.vk), Sys::vk_identity(ct2.vk));
}

TEST(DlrCca2Test, DecryptLeavesNoIdentityState) {
  const auto gg = make_mock();
  auto sys = Sys::create(gg, mock_params(), 32, 2210);
  Rng rng(2211);
  const auto m = gg.gt_random(rng);
  const auto ct = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
  (void)sys.decrypt(ct);
  EXPECT_EQ(sys.ibe().p1().id_count(), 0u);
}

TEST(DlrCca2Test, WorksAcrossMskRefresh) {
  const auto gg = make_mock();
  auto sys = Sys::create(gg, mock_params(), 32, 2212);
  Rng rng(2213);
  for (int t = 0; t < 5; ++t) {
    const auto m = gg.gt_random(rng);
    const auto ct = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
    sys.refresh_msk();  // refresh between encryption and decryption
    const auto out = sys.decrypt(ct);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(gg.gt_eq(*out, m));
  }
}

TEST(DlrCca2Test, DecryptionOracleRestriction) {
  // The CCA2 game forbids querying the challenge itself, but everything else
  // must be answerable -- including ciphertexts derived from the challenge
  // with a *fresh* OTS key (which decrypt under a different identity).
  const auto gg = make_mock();
  auto sys = Sys::create(gg, mock_params(), 32, 2214);
  Rng rng(2215);
  const auto m = gg.gt_random(rng);
  const auto challenge = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
  // Re-sign the challenge's inner ciphertext under a fresh OTS key: the
  // identity changes, so the inner ciphertext no longer matches and
  // decryption yields garbage, not m.
  auto kp = crypto::LamportOts::keygen(rng);
  Sys::Ciphertext mauled;
  mauled.vk = kp.vk;
  mauled.inner = challenge.inner;
  ByteWriter w;
  sys.ibe().scheme().bb().ser_ciphertext(w, mauled.inner);
  mauled.sig = crypto::LamportOts::sign(kp.sk, w.bytes());
  const auto out = sys.decrypt(mauled);
  ASSERT_TRUE(out.has_value());  // verifies fine...
  EXPECT_FALSE(gg.gt_eq(*out, m));  // ...but reveals nothing about m
}

TEST(DlrCca2Test, SameCiphertextDecryptsTwice) {
  // Each decryption extracts and then erases the per-vk identity; a repeat
  // decryption must re-extract transparently.
  const auto gg = make_mock();
  auto sys = Sys::create(gg, mock_params(), 32, 2215);
  Rng rng(2216);
  const auto m = gg.gt_random(rng);
  const auto ct = Sys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
  const auto out1 = sys.decrypt(ct);
  const auto out2 = sys.decrypt(ct);
  ASSERT_TRUE(out1 && out2);
  EXPECT_TRUE(gg.gt_eq(*out1, m));
  EXPECT_TRUE(gg.gt_eq(*out2, m));
}

TEST(DlrCca2Test, TateBackendRoundTripAndRejection) {
  using TSys = DlrCca2System<group::TateSS256>;
  const auto gg = group::make_tate_ss256();
  const auto prm = DlrParams::derive(gg.scalar_bits(), 16);
  auto sys = TSys::create(gg, prm, 8, 2217);
  Rng rng(2218);
  const auto m = gg.gt_random(rng);
  auto ct = TSys::enc(sys.ibe().scheme(), sys.pp(), m, rng);
  const auto out = sys.decrypt(ct);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(gg.gt_eq(*out, m));
  ct.inner.b = gg.gt_mul(ct.inner.b, gg.gt_gen());
  EXPECT_FALSE(sys.decrypt(ct).has_value());
}

TEST(DlrCca2Test, CiphertextSizeAccounting) {
  const auto gg = make_mock();
  auto sys = Sys::create(gg, mock_params(), 32, 2216);
  const auto expected = crypto::LamportOts::vk_bytes() +
                        sys.ibe().scheme().bb().ciphertext_bytes() +
                        crypto::LamportOts::sig_bytes();
  EXPECT_EQ(sys.ciphertext_bytes(), expected);
}

}  // namespace
}  // namespace dlr::schemes
