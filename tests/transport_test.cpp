// Transport layer: frame codec round-trips and its never-crash/never-accept
// contract under mutation (truncation, extension, bit flips, hostile length
// prefixes), socket endpoints with deadlines and bounded retries, session
// multiplexing, the MuxChannel transcript contract, the RetrySchedule
// backoff math, and the deterministic FaultInjector.
#include <gtest/gtest.h>

#include <thread>

#include "telemetry/metrics.hpp"
#include "transport/breaker.hpp"
#include "transport/channel.hpp"
#include "transport/fault.hpp"
#include "transport/retry.hpp"

namespace dlr::transport {
namespace {

Frame sample_frame() {
  return Frame{7, FrameType::Data, 1, "dec.r1", Bytes{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42}};
}

// ---- frame codec --------------------------------------------------------------

TEST(FrameCodecTest, RoundTrip) {
  for (const Frame& f : {
           sample_frame(),
           Frame{0, FrameType::Close, 0, "", Bytes{}},
           Frame{0xFFFFFFFFu, FrameType::Error, 2, "svc.err", Bytes(1000, 0xAB)},
           Frame{1, FrameType::Data, 2, std::string(255, 'x'), Bytes{1}},
       }) {
    const Bytes wire = encode_frame(f);
    FrameDeframer d;
    d.feed(wire);
    const auto got = d.poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, f);
    EXPECT_FALSE(d.poll().has_value());
    EXPECT_NO_THROW(d.finish());
  }
}

TEST(FrameCodecTest, MaxFrameBytesIsTheDocumentedConstant) {
  // The 32-bit length prefix is capped by a *named* constant -- the cap is
  // part of the wire contract (DESIGN.md), not an incidental buffer size.
  static_assert(kMaxFrameBytes == (1u << 24));
  static_assert(kFrameHeaderBytes == 8);
}

TEST(FrameCodecTest, OversizeLengthPrefixRejectedBeforeAllocation) {
  // Hand-craft a header claiming a ~4 GiB payload: the deframer must throw
  // FrameTooLarge the moment the prefix is complete, without buffering.
  const Bytes evil = {0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00};
  FrameDeframer d;
  try {
    d.feed(evil);
    FAIL() << "oversize length prefix accepted";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::FrameTooLarge);
  }
  EXPECT_THROW(check_frame_len(kMaxFrameBytes + 1), TransportError);
  EXPECT_NO_THROW(check_frame_len(kMaxFrameBytes));
}

TEST(FrameCodecTest, EncodeRejectsOversizeAndBadLabel) {
  Frame f = sample_frame();
  f.label = std::string(256, 'x');
  try {
    (void)encode_frame(f);
    FAIL() << "256-byte label accepted";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::Malformed);
  }
  f = sample_frame();
  f.body.resize(kMaxFrameBytes);  // payload = fixed + label + body > cap
  try {
    (void)encode_frame(f);
    FAIL() << "over-cap frame accepted";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::FrameTooLarge);
  }
}

TEST(FrameCodecTest, TruncationAlwaysTyped) {
  const Bytes wire = encode_frame(sample_frame());
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    FrameDeframer d;
    d.feed({wire.data(), cut});
    EXPECT_FALSE(d.poll().has_value()) << "partial frame yielded a frame at cut " << cut;
    try {
      d.finish();
      FAIL() << "truncation at " << cut << " not detected";
    } catch (const TransportError& e) {
      EXPECT_EQ(e.code(), Errc::Truncated);
    }
  }
}

TEST(FrameCodecTest, TrailingGarbageAlwaysTyped) {
  const Bytes wire = encode_frame(sample_frame());
  // Tails shorter than a header leave the stream mid-frame (Truncated); a
  // tail long enough to read as a length prefix may instead be rejected as a
  // hostile prefix (FrameTooLarge/Malformed). Either way: typed, never silent.
  for (const Bytes tail :
       {Bytes{0x01}, Bytes{0x00, 0x00, 0x00}, Bytes(kFrameHeaderBytes - 1, 0x5A)}) {
    Bytes stream = wire;
    stream.insert(stream.end(), tail.begin(), tail.end());
    FrameDeframer d;
    bool threw = false;
    std::size_t frames = 0;
    try {
      d.feed(stream);
      while (const auto f = d.poll()) {
        EXPECT_EQ(*f, sample_frame());
        ++frames;
      }
      d.finish();
    } catch (const TransportError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "trailing garbage silently swallowed (tail " << tail.size() << "B)";
    EXPECT_LE(frames, 1u);
  }
}

TEST(FrameCodecTest, EverySingleBitFlipIsATypedErrorNeverASilentAccept) {
  const Frame original = sample_frame();
  const Bytes wire = encode_frame(original);
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    Bytes mut = wire;
    mut[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    bool typed = false;
    bool produced_frame = false;
    try {
      FrameDeframer d;
      d.feed(mut);
      while (const auto f = d.poll()) {
        produced_frame = true;
        EXPECT_NE(*f, original) << "bit " << bit << ": mutation decoded as the original";
      }
      d.finish();
    } catch (const TransportError&) {
      typed = true;
    } catch (...) {
      FAIL() << "bit " << bit << ": non-TransportError escaped";
    }
    // The CRC covers the payload and the header fields feed the length/CRC
    // checks, so every flip must surface as a typed error somewhere -- a
    // "successfully" decoded mutated frame would be silent corruption.
    EXPECT_TRUE(typed) << "bit " << bit << ": no typed error raised";
    EXPECT_FALSE(produced_frame) << "bit " << bit << ": mutated stream yielded a frame";
  }
}

TEST(FrameCodecTest, ChunkedFeedReassemblesMultipleFrames) {
  const Frame a = sample_frame();
  const Frame b{9, FrameType::Error, 2, "svc.err", Bytes{1, 2, 3}};
  Bytes stream = encode_frame(a);
  const Bytes wb = encode_frame(b);
  stream.insert(stream.end(), wb.begin(), wb.end());

  FrameDeframer d;
  std::vector<Frame> got;
  for (std::size_t i = 0; i < stream.size(); ++i) {  // worst case: 1 byte at a time
    d.feed({stream.data() + i, 1});
    while (auto f = d.poll()) got.push_back(std::move(*f));
  }
  EXPECT_NO_THROW(d.finish());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], a);
  EXPECT_EQ(got[1], b);
}

// ---- endpoints ----------------------------------------------------------------

TEST(EndpointTest, SocketpairFramedExchange) {
  auto [sa, sb] = Socket::pair();
  FramedConn ca(std::move(sa), {});
  FramedConn cb(std::move(sb), {});
  const Frame f = sample_frame();
  ca.send(f);
  EXPECT_EQ(cb.recv(), f);
  Frame g = f;
  g.session = 42;
  g.body = Bytes(100000, 0x77);  // larger than one socket buffer write
  cb.send(g);
  EXPECT_EQ(ca.recv(), g);
}

TEST(EndpointTest, RecvTimeoutIsTyped) {
  auto [sa, sb] = Socket::pair();
  FramedConn ca(std::move(sa), {});
  try {
    (void)ca.recv(Millis{50});
    FAIL() << "recv on silent peer returned";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::Timeout);
  }
}

TEST(EndpointTest, PeerCloseIsConnectionClosed) {
  auto [sa, sb] = Socket::pair();
  FramedConn ca(std::move(sa), {});
  { Socket dead = std::move(sb); }  // peer end destroyed
  try {
    (void)ca.recv(Millis{1000});
    FAIL() << "recv from closed peer returned";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::ConnectionClosed);
  }
}

TEST(EndpointTest, LoopbackListenerAcceptConnect) {
  auto listener = Listener::loopback();
  ASSERT_NE(listener.port(), 0);
  Socket client_side;
  std::thread t([&] { client_side = connect_loopback(listener.port()); });
  Socket server_side = listener.accept(Millis{2000});
  t.join();
  FramedConn server(std::move(server_side), {});
  FramedConn client(std::move(client_side), {});
  client.send(sample_frame());
  EXPECT_EQ(server.recv(), sample_frame());
}

TEST(EndpointTest, ConnectRetriesAreBoundedAndCounted) {
  // Grab an ephemeral port and free it again: nothing listens there.
  std::uint16_t dead_port;
  {
    auto l = Listener::loopback();
    dead_port = l.port();
    l.close();
  }
  auto& reg = telemetry::Registry::global();
  const auto before = reg.counter_value("transport.retries");
  TransportOptions opt;
  opt.connect_retries = 3;
  opt.connect_backoff = Millis{1};
  try {
    (void)connect_loopback(dead_port, opt);
    FAIL() << "connect to dead port succeeded";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::RetriesExhausted);
  }
#if DLR_TELEMETRY_ENABLED
  EXPECT_GE(reg.counter_value("transport.retries"), before + 3);
#endif
}

// ---- session multiplexing -----------------------------------------------------

TEST(MuxTest, TwoSessionsInterleaveOverOneConnection) {
  auto [sa, sb] = Socket::pair();
  SessionMux ma(std::make_shared<FramedConn>(std::move(sa), TransportOptions{}));
  SessionMux mb(std::make_shared<FramedConn>(std::move(sb), TransportOptions{}));

  auto a1 = ma.open_with_id(1);
  auto a2 = ma.open_with_id(2);
  auto b1 = mb.open_with_id(1);
  auto b2 = mb.open_with_id(2);

  // Send out of order w.r.t. the receiving sessions: the mux must route by id.
  b2->send(FrameType::Data, 2, "m2", Bytes{2});
  b1->send(FrameType::Data, 2, "m1", Bytes{1});
  const Frame f1 = a1->recv(Millis{2000});
  const Frame f2 = a2->recv(Millis{2000});
  EXPECT_EQ(f1.label, "m1");
  EXPECT_EQ(f1.body, Bytes{1});
  EXPECT_EQ(f2.label, "m2");
  EXPECT_EQ(f2.body, Bytes{2});
}

TEST(MuxTest, OrphanFramesAreDroppedAndCounted) {
  auto [sa, sb] = Socket::pair();
  SessionMux ma(std::make_shared<FramedConn>(std::move(sa), TransportOptions{}));
  auto conn_b = std::make_shared<FramedConn>(std::move(sb), TransportOptions{});

  auto a5 = ma.open_with_id(5);
  // Raw frame for a session that does not exist, then one that does; in-order
  // delivery means the orphan was processed by the time the real one arrives.
  conn_b->send(Frame{99, FrameType::Data, 2, "ghost", Bytes{0}});
  conn_b->send(Frame{5, FrameType::Data, 2, "real", Bytes{1}});
  EXPECT_EQ(a5->recv(Millis{2000}).label, "real");
  EXPECT_EQ(ma.orphaned(), 1u);
}

TEST(MuxTest, PeerDeathPoisonsBlockedReceivers) {
  auto [sa, sb] = Socket::pair();
  SessionMux ma(std::make_shared<FramedConn>(std::move(sa), TransportOptions{}));
  auto sess = ma.open_with_id(1);
  std::thread killer([&] {
    std::this_thread::sleep_for(Millis{50});
    Socket dead = std::move(sb);  // hang up
  });
  try {
    (void)sess->recv(Millis{5000});
    FAIL() << "recv survived peer death";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::ConnectionClosed);
  }
  killer.join();
  // Sessions opened after death are poisoned immediately.
  auto late = ma.open_with_id(2);
  EXPECT_THROW((void)late->recv(Millis{100}), TransportError);
}

TEST(MuxTest, StopIsIdempotentAndThreadSafe) {
  auto [sa, sb] = Socket::pair();
  SessionMux ma(std::make_shared<FramedConn>(std::move(sa), TransportOptions{}));
  std::thread t1([&] { ma.stop(); });
  std::thread t2([&] { ma.stop(); });
  t1.join();
  t2.join();
  ma.stop();  // and again, after the pump is gone
}

// ---- net::Channel adapter -----------------------------------------------------

TEST(MuxChannelTest, ProtocolRunsOverWireWithFullTranscriptBothSides) {
  auto [sa, sb] = Socket::pair();
  SessionMux ma(std::make_shared<FramedConn>(std::move(sa), TransportOptions{}));
  SessionMux mb(std::make_shared<FramedConn>(std::move(sb), TransportOptions{}));
  auto session_a = ma.open_with_id(1);
  auto session_b = mb.open_with_id(1);

  // A toy 3-move protocol: P1 sends a query, P2 echoes it doubled, P1 acks.
  MuxChannel ch_a(*session_a, net::DeviceId::P1);
  MuxChannel ch_b(*session_b, net::DeviceId::P2);

  std::thread p2([&] {
    Bytes q = ch_b.recv(Millis{5000});
    q.insert(q.end(), q.begin(), q.end());
    ch_b.send(net::DeviceId::P2, "echo2", std::move(q));
    (void)ch_b.recv(Millis{5000});
  });

  ch_a.send(net::DeviceId::P1, "query", Bytes{9, 9});
  const Bytes& doubled = ch_a.recv(Millis{5000});
  EXPECT_EQ(doubled, (Bytes{9, 9, 9, 9}));
  ch_a.send(net::DeviceId::P1, "ack", Bytes{});
  p2.join();

  // Section 3.2: the public transcript is identical on both devices -- every
  // message appears on each side, attributed to its true sender.
  for (const net::Transcript* tr : {&ch_a.transcript(), &ch_b.transcript()}) {
    ASSERT_EQ(tr->count(), 3u);
    EXPECT_EQ(tr->messages()[0].label, "query");
    EXPECT_EQ(tr->messages()[0].from, net::DeviceId::P1);
    EXPECT_EQ(tr->messages()[1].label, "echo2");
    EXPECT_EQ(tr->messages()[1].from, net::DeviceId::P2);
    EXPECT_EQ(tr->messages()[2].label, "ack");
  }
  EXPECT_EQ(ch_a.transcript().serialize(), ch_b.transcript().serialize());
}

// ---- retry schedule -----------------------------------------------------------

TEST(RetryScheduleTest, AttemptBudgetIsBounded) {
  RetryPolicy p;
  p.max_attempts = 3;
  p.base = Millis{1};
  p.jitter = 0.0;
  RetrySchedule sched(p);
  EXPECT_TRUE(sched.next().has_value());   // failure 1 -> retry allowed
  EXPECT_TRUE(sched.next().has_value());   // failure 2 -> retry allowed
  EXPECT_FALSE(sched.next().has_value());  // failure 3 = budget spent
  EXPECT_EQ(sched.failed_attempts(), 3);
}

TEST(RetryScheduleTest, BackoffDoublesUpToCap) {
  RetryPolicy p;
  p.max_attempts = 10;
  p.base = Millis{10};
  p.cap = Millis{25};
  p.jitter = 0.0;
  RetrySchedule sched(p);
  EXPECT_EQ(sched.next()->count(), 10);
  EXPECT_EQ(sched.next()->count(), 20);
  EXPECT_EQ(sched.next()->count(), 25);  // capped
  EXPECT_EQ(sched.next()->count(), 25);
}

TEST(RetryScheduleTest, JitterStaysWithinTheConfiguredFraction) {
  RetryPolicy p;
  p.max_attempts = 1000;
  p.base = Millis{100};
  p.cap = Millis{100};
  p.jitter = 0.5;
  RetrySchedule sched(p);
  std::uint64_t rnd = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 200; ++i) {
    rnd = rnd * 6364136223846793005ull + 1442695040888963407ull;
    const auto d = sched.next(rnd ? rnd : 1);
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(d->count(), 50);
    EXPECT_LE(d->count(), 150);
  }
}

TEST(RetryScheduleTest, JitterNeverMapsTheDelayToZero) {
  // rnd % 8192 == 0 maps u to exactly -1; with jitter = 1.0 the unclamped
  // delay would be 0 ms -- a hot spin against an already-overloaded server.
  RetryPolicy p;
  p.max_attempts = 1000;
  p.base = Millis{2};
  p.cap = Millis{2};
  p.jitter = 1.0;
  RetrySchedule sched(p);
  for (int i = 0; i < 50; ++i) {
    const auto d = sched.next(8192 * static_cast<std::uint64_t>(i + 1));
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(d->count(), 1) << "jitter floor must keep every delay >= 1 ms";
  }
}

TEST(RetryScheduleTest, ServerHintFloorsTheDelay) {
  RetryPolicy p;
  p.max_attempts = 10;
  p.base = Millis{10};
  p.cap = Millis{500};
  p.jitter = 0.0;
  RetrySchedule sched(p);
  // A hint above the client's own backoff wins...
  EXPECT_EQ(sched.next(0, Millis{250})->count(), 250);
  // ...and a hint below it is ignored (doubling continued: 10 -> 20).
  EXPECT_EQ(sched.next(0, Millis{5})->count(), 20);
}

TEST(RetryScheduleTest, DeadlineCutsTheBudgetShort) {
  RetryPolicy p;
  p.max_attempts = 1000;
  p.base = Millis{400};
  p.cap = Millis{400};
  p.jitter = 0.0;
  p.deadline = Millis{200};  // first 400ms sleep would already overshoot
  RetrySchedule sched(p);
  EXPECT_FALSE(sched.next().has_value());
}

// ---- circuit breaker ----------------------------------------------------------

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndRejectsWithRetryAfter) {
  CircuitBreaker::Options o;
  o.failure_threshold = 3;
  o.open_for = Millis{1000};
  CircuitBreaker br(o);
  const auto t0 = CircuitBreaker::Clock::now();

  EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
  br.on_failure(t0);
  br.on_failure(t0);
  EXPECT_EQ(br.state(), CircuitBreaker::State::Closed) << "below threshold";
  br.on_failure(t0);
  EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(br.opens(), 1u);

  const auto adm = br.try_acquire(t0 + Millis{10});
  EXPECT_FALSE(adm.admitted);
  EXPECT_GE(adm.retry_after.count(), 1);
  EXPECT_LE(adm.retry_after.count(), 1000);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOneProbeAndClosesOnSuccess) {
  CircuitBreaker::Options o;
  o.failure_threshold = 1;
  o.open_for = Millis{100};
  CircuitBreaker br(o);
  const auto t0 = CircuitBreaker::Clock::now();
  br.on_failure(t0);
  ASSERT_EQ(br.state(), CircuitBreaker::State::Open);

  // Cooldown elapsed: exactly one probe is admitted, concurrents bounce.
  const auto probe = br.try_acquire(t0 + Millis{101});
  EXPECT_TRUE(probe.admitted);
  EXPECT_TRUE(probe.probe);
  EXPECT_EQ(br.state(), CircuitBreaker::State::HalfOpen);
  const auto second = br.try_acquire(t0 + Millis{102});
  EXPECT_FALSE(second.admitted);
  EXPECT_GE(second.retry_after.count(), 1);

  br.on_success();
  EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(br.closes(), 1u);
}

TEST(CircuitBreakerTest, ProbeFailureReopensImmediately) {
  CircuitBreaker::Options o;
  o.failure_threshold = 1;
  o.open_for = Millis{100};
  CircuitBreaker br(o);
  const auto t0 = CircuitBreaker::Clock::now();
  br.on_failure(t0);
  ASSERT_TRUE(br.try_acquire(t0 + Millis{101}).admitted);
  br.on_failure(t0 + Millis{102});  // probe failed
  EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(br.opens(), 2u);
  EXPECT_FALSE(br.try_acquire(t0 + Millis{103}).admitted) << "cooldown re-armed";
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveFailureCount) {
  CircuitBreaker::Options o;
  o.failure_threshold = 3;
  CircuitBreaker br(o);
  const auto t0 = CircuitBreaker::Clock::now();
  br.on_failure(t0);
  br.on_failure(t0);
  br.on_success();  // endpoint answered: the streak is broken
  br.on_failure(t0);
  br.on_failure(t0);
  EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
  br.on_failure(t0);
  EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
}

// ---- fault injection ----------------------------------------------------------

namespace {

/// A FramedConn pair with side A wrapped in a FaultInjector.
struct FaultyPair {
  std::shared_ptr<FaultInjector> a;
  std::shared_ptr<FramedConn> b;

  explicit FaultyPair(FaultPlan plan) {
    auto [sa, sb] = Socket::pair();
    a = std::make_shared<FaultInjector>(
        std::make_shared<FramedConn>(std::move(sa), TransportOptions{}), std::move(plan));
    b = std::make_shared<FramedConn>(std::move(sb), TransportOptions{});
  }
};

}  // namespace

TEST(FaultInjectorTest, PassThroughIsTransparent) {
  FaultyPair fp{FaultPlan{}};
  fp.a->send(sample_frame());
  EXPECT_EQ(fp.b->recv(Millis{2000}), sample_frame());
  fp.b->send(sample_frame());
  EXPECT_EQ(fp.a->recv(Millis{2000}), sample_frame());
  EXPECT_EQ(fp.a->injected(), 0u);
}

TEST(FaultInjectorTest, DroppedFrameNeverArrives) {
  FaultyPair fp{FaultPlan{}.out_at(0, {FaultKind::Drop})};
  fp.a->send(sample_frame());
  try {
    (void)fp.b->recv(Millis{100});
    FAIL() << "dropped frame arrived";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::Timeout);
  }
  // The next frame (index 1) passes untouched.
  fp.a->send(sample_frame());
  EXPECT_EQ(fp.b->recv(Millis{2000}), sample_frame());
  EXPECT_EQ(fp.a->injected(), 1u);
}

TEST(FaultInjectorTest, DuplicatedFrameArrivesTwiceIdentically) {
  // The transport does not dedup -- it delivers both copies faithfully, and
  // the service protocol layer is what recognizes replays (journaled-reply
  // resend for prepare, idempotent ack for commit).
  FaultyPair fp{FaultPlan{}.out_at(0, {FaultKind::Duplicate})};
  fp.a->send(sample_frame());
  EXPECT_EQ(fp.b->recv(Millis{2000}), sample_frame());
  EXPECT_EQ(fp.b->recv(Millis{2000}), sample_frame());
  EXPECT_EQ(fp.a->injected(), 1u);
}

TEST(FaultInjectorTest, DuplicateToAOneShotMuxSessionIsOrphanedNotMisrouted) {
  // One-shot request/response sessions make duplicates harmless at the mux
  // layer: the second copy finds its session gone and is dropped + counted.
  auto [sa, sb] = Socket::pair();
  auto inj = std::make_shared<FaultInjector>(
      std::make_shared<FramedConn>(std::move(sa), TransportOptions{}),
      FaultPlan{}.out_at(0, {FaultKind::Duplicate}));
  SessionMux mb(std::make_shared<FramedConn>(std::move(sb), TransportOptions{}));
  {
    auto sess = mb.open_with_id(7);
    inj->send(Frame{7, FrameType::Data, 1, "reply", Bytes{1}});
    EXPECT_EQ(sess->recv(Millis{2000}).label, "reply");
  }  // session closed; the duplicate (already queued or still in flight)
  auto s1 = mb.open_with_id(1);
  inj->send(Frame{1, FrameType::Data, 1, "sync", Bytes{}});
  // In-order pump: by the time "sync" is routed, the duplicate was processed.
  // It either landed in the still-open session's queue (then died with it) or
  // was orphaned -- never delivered to a different session.
  EXPECT_EQ(s1->recv(Millis{2000}).label, "sync");
}

TEST(FaultInjectorTest, HoldUntilNextReordersAdjacentFrames) {
  FaultyPair fp{FaultPlan{}.out_at(0, {FaultKind::HoldUntilNext})};
  Frame f0 = sample_frame();
  f0.label = "first";
  Frame f1 = sample_frame();
  f1.label = "second";
  fp.a->send(f0);  // held
  fp.a->send(f1);  // delivered, then releases f0
  EXPECT_EQ(fp.b->recv(Millis{2000}).label, "second");
  EXPECT_EQ(fp.b->recv(Millis{2000}).label, "first");
  EXPECT_EQ(fp.a->injected(), 1u);
}

TEST(FaultInjectorTest, MidFrameTruncationSurfacesTyped) {
  FaultyPair fp{FaultPlan{}.out_at(0, {FaultKind::Truncate, 5})};
  fp.a->send(sample_frame());
  try {
    (void)fp.b->recv(Millis{2000});
    FAIL() << "truncated frame decoded";
  } catch (const TransportError& e) {
    // 5 bytes of an 8-byte header then EOF: the deframer reports the torn
    // stream as Truncated or the hangup as ConnectionClosed -- typed either way.
    EXPECT_TRUE(e.code() == Errc::Truncated || e.code() == Errc::ConnectionClosed)
        << e.what();
  }
}

TEST(FaultInjectorTest, BitFlipInThePayloadIsChecksumMismatch) {
  // Bit 100 sits past the 8-byte header, inside the CRC-covered payload.
  FaultyPair fp{FaultPlan{}.out_at(0, {FaultKind::BitFlip, 100})};
  fp.a->send(sample_frame());
  try {
    (void)fp.b->recv(Millis{2000});
    FAIL() << "bit-flipped frame decoded";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::ChecksumMismatch);
  }
}

TEST(FaultInjectorTest, SeverIsConnectionClosedOnBothSides) {
  FaultyPair fp{FaultPlan{}.out_at(1, {FaultKind::Sever})};
  fp.a->send(sample_frame());  // index 0 passes
  EXPECT_EQ(fp.b->recv(Millis{2000}), sample_frame());
  try {
    fp.a->send(sample_frame());  // index 1: severed
    FAIL() << "send on severed connection succeeded";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), Errc::ConnectionClosed);
  }
  EXPECT_THROW((void)fp.b->recv(Millis{2000}), TransportError);
}

TEST(FaultInjectorTest, InboundFaultsApplyOnTheReceivePath) {
  FaultyPair fp{FaultPlan{}
                    .in_at(0, {FaultKind::Drop})
                    .in_at(1, {FaultKind::Duplicate})};
  fp.b->send(sample_frame());  // in-index 0: dropped
  Frame f = sample_frame();
  f.label = "kept";
  fp.b->send(f);  // in-index 1: duplicated
  EXPECT_EQ(fp.a->recv(Millis{2000}).label, "kept");
  EXPECT_EQ(fp.a->recv(Millis{2000}).label, "kept");
  EXPECT_EQ(fp.a->injected(), 2u);
}

TEST(FaultPlanTest, SeededPlansAreDeterministicAndRateRespecting) {
  const auto rates = FaultPlan::Rates{.drop = 0.2, .duplicate = 0.1, .sever = 0.05};
  const FaultPlan p1 = FaultPlan::seeded(42, rates);
  const FaultPlan p2 = FaultPlan::seeded(42, rates);
  const FaultPlan p3 = FaultPlan::seeded(43, rates);
  std::uint64_t faults = 0, differs = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    for (const Direction d : {Direction::Outbound, Direction::Inbound}) {
      const auto a1 = p1.action(d, i);
      const auto a2 = p2.action(d, i);
      EXPECT_EQ(static_cast<int>(a1.kind), static_cast<int>(a2.kind))
          << "same seed diverged at index " << i;
      if (a1.kind != FaultKind::Pass) ++faults;
      if (a1.kind != p3.action(d, i).kind) ++differs;
    }
  }
  // ~35% total fault rate over 4000 draws: expect a healthy, bounded count.
  EXPECT_GT(faults, 1000u);
  EXPECT_LT(faults, 2000u);
  EXPECT_GT(differs, 0u) << "different seeds produced identical schedules";
  // A zero-rate plan is all Pass; scripted entries override seeded draws.
  const FaultPlan quiet = FaultPlan::seeded(42, {});
  EXPECT_EQ(static_cast<int>(quiet.action(Direction::Outbound, 7).kind),
            static_cast<int>(FaultKind::Pass));
  FaultPlan scripted = FaultPlan::seeded(42, rates);
  scripted.out_at(3, {FaultKind::Sever});
  EXPECT_EQ(static_cast<int>(scripted.action(Direction::Outbound, 3).kind),
            static_cast<int>(FaultKind::Sever));
}

}  // namespace
}  // namespace dlr::transport
