// ChaCha20 block function (RFC 8439). Used as the core of the deterministic
// CSPRNG; also usable as a stream cipher for the storage examples.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/bytes.hpp"

namespace dlr::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
           std::uint32_t initial_counter = 0);

  /// Produce one 64-byte keystream block for the given counter.
  std::array<std::uint8_t, kBlockSize> block(std::uint32_t counter) const;

  /// XOR-encrypt/decrypt in place starting at the construction-time counter.
  void xor_stream(std::span<std::uint8_t> data);

 private:
  std::array<std::uint32_t, 16> state_;
  std::uint32_t counter_;
};

}  // namespace dlr::crypto
