#include "telemetry/metrics.hpp"

#include <algorithm>

namespace dlr::telemetry {

std::string render_name(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

std::vector<double> default_time_bounds_ms() {
  return {0.001, 0.01, 0.1, 1, 5, 10, 50, 100, 500, 1000, 5000};
}

#if DLR_TELEMETRY_ENABLED

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_time_bounds_ms();
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lk(mu_);
  ++buckets_[idx];
  sum_ += v;
  ++count_;
}

HistogramRow Histogram::row(std::string name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return HistogramRow{std::move(name), bounds_, buckets_, sum_, count_};
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sum_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  sum_ = 0;
  count_ = 0;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  const std::string key = render_name(name, labels);
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = render_name(name, labels);
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds,
                               const Labels& labels) {
  const std::string key = render_name(name, labels);
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Snapshot Registry::snapshot() const {
  // Lock-cheap: hold the registry mutex only to copy (name, pointer) pairs.
  // Metric nodes are never erased, so the pointers stay valid, and values are
  // read afterwards through their own atomics / per-histogram locks. A scrape
  // therefore never blocks registration, reset(), or hot-path increments for
  // the duration of a full copy; each metric is read at some instant during
  // the scrape, not at one global cut (DESIGN.md §10 consistency model).
  std::vector<std::pair<std::string, const Counter*>> cs;
  std::vector<std::pair<std::string, const Gauge*>> gs;
  std::vector<std::pair<std::string, const Histogram*>> hs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    cs.reserve(counters_.size());
    for (const auto& [k, c] : counters_) cs.emplace_back(k, c.get());
    gs.reserve(gauges_.size());
    for (const auto& [k, g] : gauges_) gs.emplace_back(k, g.get());
    hs.reserve(histograms_.size());
    for (const auto& [k, h] : histograms_) hs.emplace_back(k, h.get());
  }
  Snapshot s;
  s.counters.reserve(cs.size());
  for (const auto& [k, c] : cs) s.counters.push_back({k, c->value()});
  s.gauges.reserve(gs.size());
  for (const auto& [k, g] : gs) s.gauges.push_back({k, g->value()});
  s.histograms.reserve(hs.size());
  for (const auto& [k, h] : hs) s.histograms.push_back(h->row(k));
  return s;
}

std::uint64_t Registry::counter_value(const std::string& rendered) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(rendered);
  return it == counters_.end() ? 0 : it->second->value();
}

double Registry::gauge_value(const std::string& rendered) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(rendered);
  return it == gauges_.end() ? 0 : it->second->value();
}

std::uint64_t Registry::sum_counters(const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it)
    total += it->second->value();
  return total;
}

double Registry::sum_gauges(const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(mu_);
  double total = 0;
  for (auto it = gauges_.lower_bound(prefix);
       it != gauges_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it)
    total += it->second->value();
  return total;
}

std::size_t Registry::count_series(const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it)
    ++n;
  return n;
}

void Registry::reset() {
  // Same pointer-copy discipline as snapshot(): zero each metric outside the
  // registry lock so an in-flight scrape (or registration) never serializes
  // behind a full reset. Each Counter/Gauge reset is an atomic store and each
  // Histogram reset takes its own lock, so racing a scrape is benign -- the
  // scrape sees pre- or post-reset values per metric.
  std::vector<Counter*> cs;
  std::vector<Gauge*> gs;
  std::vector<Histogram*> hs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    cs.reserve(counters_.size());
    for (auto& [k, c] : counters_) cs.push_back(c.get());
    gs.reserve(gauges_.size());
    for (auto& [k, g] : gauges_) gs.push_back(g.get());
    hs.reserve(histograms_.size());
    for (auto& [k, h] : histograms_) hs.push_back(h.get());
  }
  for (auto* c : cs) c->reset();
  for (auto* g : gs) g->reset();
  for (auto* h : hs) h->reset();
}

#endif  // DLR_TELEMETRY_ENABLED

}  // namespace dlr::telemetry
