// Actually-distributed execution: P1 and P2 live in two separate OS
// processes connected only by a socketpair -- there is no shared address
// space that could accidentally hold both shares, which is the physical
// premise of the whole paper. The parent runs P1 (and plays the encryptor);
// the child runs P2. Message framing is a 4-byte length prefix.
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"

namespace {

using namespace dlr;
using GG = group::TateSS256;

void send_msg(int fd, const Bytes& b) {
  const std::uint32_t n = static_cast<std::uint32_t>(b.size());
  std::uint8_t hdr[4] = {static_cast<std::uint8_t>(n), static_cast<std::uint8_t>(n >> 8),
                         static_cast<std::uint8_t>(n >> 16),
                         static_cast<std::uint8_t>(n >> 24)};
  if (write(fd, hdr, 4) != 4) std::abort();
  std::size_t off = 0;
  while (off < b.size()) {
    const auto k = write(fd, b.data() + off, b.size() - off);
    if (k <= 0) std::abort();
    off += static_cast<std::size_t>(k);
  }
}

Bytes recv_msg(int fd) {
  std::uint8_t hdr[4];
  std::size_t got = 0;
  while (got < 4) {
    const auto k = read(fd, hdr + got, 4 - got);
    if (k <= 0) std::abort();
    got += static_cast<std::size_t>(k);
  }
  const std::uint32_t n = static_cast<std::uint32_t>(hdr[0]) | (hdr[1] << 8) |
                          (hdr[2] << 16) | (static_cast<std::uint32_t>(hdr[3]) << 24);
  Bytes b(n);
  std::size_t off = 0;
  while (off < n) {
    const auto k = read(fd, b.data() + off, n - off);
    if (k <= 0) std::abort();
    off += static_cast<std::size_t>(k);
  }
  return b;
}

}  // namespace

int main() {
  const GG gg = group::make_tate_ss256();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), 64);

  // Trusted-dealer keygen in the parent, before the fork; the parent will
  // drop sk2 (it only moves into the child), the child never sees sk1.
  crypto::Rng gen_rng(20120716);
  auto kg = schemes::DlrCore<GG>::gen(gg, prm, gen_rng);

  int sv[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    std::perror("socketpair");
    return 1;
  }

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }

  if (pid == 0) {
    // ---- child: device P2 (e.g. the smart card) ------------------------------
    close(sv[0]);
    schemes::DlrParty2<GG> p2(gg, prm, std::move(kg.sk2), crypto::Rng(2));
    for (int period = 0; period < 3; ++period) {
      const Bytes dec1 = recv_msg(sv[1]);
      send_msg(sv[1], p2.dec_respond(dec1));
      const Bytes ref1 = recv_msg(sv[1]);
      send_msg(sv[1], p2.ref_respond(ref1));
    }
    close(sv[1]);
    _exit(0);
  }

  // ---- parent: device P1 (the main processor) + the encrypting user ---------
  close(sv[1]);
  schemes::DlrParty1<GG> p1(gg, prm, kg.pk, std::move(kg.sk1), schemes::P1Mode::Plain,
                            crypto::Rng(1));
  crypto::Rng rng = crypto::Rng::from_os_entropy();
  bool all_ok = true;
  for (int period = 0; period < 3; ++period) {
    const auto m = gg.gt_random(rng);
    const auto c = schemes::DlrCore<GG>::enc(gg, kg.pk, m, rng);
    send_msg(sv[0], p1.dec_round1(c));
    const auto out = p1.dec_finish(recv_msg(sv[0]));
    const bool ok = gg.gt_eq(out, m);
    all_ok = all_ok && ok;
    std::printf("period %d: cross-process decryption %s\n", period, ok ? "CORRECT" : "WRONG");
    send_msg(sv[0], p1.ref_round1());
    p1.ref_finish(recv_msg(sv[0]));
    std::printf("period %d: cross-process refresh done\n", period);
  }
  close(sv[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  std::printf("child exited %s; shares never shared an address space.\n",
              (WIFEXITED(status) && WEXITSTATUS(status) == 0) ? "cleanly" : "ABNORMALLY");
  return all_ok && WIFEXITED(status) && WEXITSTATUS(status) == 0 ? 0 : 1;
}
