// MuxChannel -- the adapter that makes a mux session look like the in-process
// net::Channel, so scheme protocol code (Bytes-in/Bytes-out party methods
// driven through a recording channel) runs over a real socket unchanged.
//
//   * send(from, ...) with from == the local device transmits the message as
//     a Data frame AND records it in the transcript (the public-channel
//     contract of Section 3.2 -- both directions appear in comm^t).
//   * recv() blocks for the peer's next frame, records it in the transcript
//     under the peer's device id, and returns the body by reference exactly
//     like the in-process Channel::send does for the consuming side.
//
// An Error frame received where a Data frame was expected surfaces as a
// TransportError(Protocol) carrying the frame's label+body in what() -- the
// service layer decodes richer errors itself before they reach this point.
#pragma once

#include "net/transcript.hpp"
#include "telemetry/trace.hpp"
#include "transport/mux.hpp"

namespace dlr::transport {

class MuxChannel final : public net::Channel {
 public:
  /// `wire_trace` stamps outgoing Data frames with the sending thread's
  /// current TraceContext (DESIGN.md §10). Leave it off unless the peer
  /// negotiated wire tracing in svc.hello -- v1 decoders reject the envelope.
  MuxChannel(SessionMux::Session& session, net::DeviceId local, bool wire_trace = false)
      : session_(session), local_(local), wire_trace_(wire_trace) {}

  [[nodiscard]] net::DeviceId local() const { return local_; }
  [[nodiscard]] net::DeviceId peer() const {
    return local_ == net::DeviceId::P1 ? net::DeviceId::P2 : net::DeviceId::P1;
  }

  void set_wire_trace(bool on) { wire_trace_ = on; }
  /// Trace envelope of the last received frame (empty if the peer sent none).
  [[nodiscard]] telemetry::TraceContext last_trace() const { return last_trace_; }

  /// Local messages go over the wire and into the transcript; a message
  /// attributed to the peer is record-only (it already traveled -- this arm
  /// exists so in-process driver code that replays both sides still works).
  const Bytes& send(net::DeviceId from, std::string label, Bytes body) override {
    if (from == local_)
      session_.send(FrameType::Data, static_cast<std::uint8_t>(from), label, body,
                    wire_trace_ ? telemetry::Tracer::global().current()
                                : telemetry::TraceContext{});
    return record(from, std::move(label), std::move(body));
  }

  /// Receive the peer's next protocol message; records it and returns the
  /// body for consumption (mirror of the in-process rendezvous).
  const Bytes& recv(std::optional<Millis> timeout = std::nullopt) {
    Frame f = session_.recv(timeout);
    if (f.type != FrameType::Data)
      throw TransportError(Errc::Protocol,
                           "expected Data frame, got type " +
                               std::to_string(static_cast<int>(f.type)) + " label '" +
                               f.label + "'");
    last_trace_ = telemetry::TraceContext{f.trace_id, f.parent_span};
    const auto from = f.from == 0 ? peer() : static_cast<net::DeviceId>(f.from);
    return record(from, std::move(f.label), std::move(f.body));
  }

 private:
  SessionMux::Session& session_;
  net::DeviceId local_;
  bool wire_trace_ = false;
  telemetry::TraceContext last_trace_;
};

}  // namespace dlr::transport
