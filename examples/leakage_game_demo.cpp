// A guided tour of the continual-memory-leakage security game
// (Definition 3.2), playing the share-accumulation adversary against the
// scheme twice: once with refresh disabled (it wins), once as actually
// deployed (it loses). Uses the mock bilinear group so the demo runs in
// milliseconds; the protocol code is the same one the pairing build runs.
#include <cstdio>

#include "analysis/attacks.hpp"
#include "group/mock_group.hpp"

int main() {
  using namespace dlr;
  using GG = group::MockGroup;

  const GG gg = group::make_mock();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());

  analysis::ShareAccumulationAdversary<GG> probe(gg, prm);
  std::printf("the adversary leaks, per period: all %zu bits of P2's share (legal:\n"
              "b2 = m2) and a fresh %zu-bit window of P1's share region (b1 = lambda).\n"
              "it needs %zu periods to tile P1's whole share.\n\n",
              8 * prm.ell * gg.sc_bytes(), prm.lambda, probe.periods_needed());

  for (const bool refresh : {false, true}) {
    std::printf("---- refresh %s ----\n", refresh ? "ENABLED (the real scheme)"
                                                  : "DISABLED (strawman)");
    std::size_t wins = 0, recovered = 0;
    const std::size_t trials = 40;
    for (std::size_t i = 0; i < trials; ++i) {
      typename leakage::CmlGame<GG>::Config cfg{prm, schemes::P1Mode::Plain, 0, 0, 0,
                                                !refresh, 1000 + i};
      leakage::CmlGame<GG> game(gg, cfg);
      analysis::ShareAccumulationAdversary<GG> adv(gg, prm);
      const auto res = game.run(adv);
      wins += res.adversary_won ? 1 : 0;
      recovered += adv.key_recovered() ? 1 : 0;
      if (i == 0) {
        std::printf("  one game: %zu periods, lifetime leakage %zu bits from P2\n"
                    "  (vs |sk2| = %zu bits -- leaked %.1fx the key size overall)\n",
                    res.periods, res.leaked_bits_p2, 8 * prm.ell * gg.sc_bytes(),
                    static_cast<double>(res.leaked_bits_p2) /
                        static_cast<double>(8 * prm.ell * gg.sc_bytes()));
      }
    }
    const auto est = analysis::advantage_from_wins(wins, trials);
    std::printf("  over %zu games: key recovered in %zu, wins %zu, advantage %.2f "
                "[%.2f, %.2f]\n\n",
                trials, recovered, wins, est.advantage, est.low, est.high);
  }

  std::printf("same adversary, same budget, same leakage functions. the only\n"
              "difference is the refresh protocol -- that is the paper's result.\n");
  return 0;
}
