# Empty compiler generated dependencies file for cca2_test.
# This may be replaced when dependencies are built.
