# Empty dependencies file for bench_f1_rate_vs_lambda.
# This may be replaced when dependencies are built.
