// The BilinearGroup concept: the single interface every scheme in this
// library is written against.
//
// Two models are provided:
//   * TateGroup  (group/tate_group.hpp)  -- the real type-A Tate pairing.
//   * MockGroup  (group/mock_group.hpp)  -- a generic-bilinear-group model
//     where group elements are exponents mod r and e(a,b) = a*b. It is
//     functionally faithful (every algebraic identity of a symmetric prime-
//     order bilinear group holds) but offers no hardness; it exists so that
//     protocol logic can be property-tested with thousands of iterations and
//     so that statistical experiments can run on tiny groups.
//
// Conventions: G and GT are written multiplicatively, matching the paper.
// `g_mul` is the group operation, `g_pow` is exponentiation by a scalar.
// Scalars are integers mod the group order r (the paper's Z_p).
#pragma once

#include <concepts>
#include <cstdint>
#include <span>

#include "crypto/bytes.hpp"
#include "crypto/rng.hpp"

namespace dlr::group {

template <class GG>
concept BilinearGroup = requires(const GG& gg, crypto::Rng& rng, const typename GG::Scalar& s,
                                 const typename GG::G& a, const typename GG::GT& t,
                                 const Bytes& bytes, ByteWriter& w, ByteReader& r,
                                 std::span<const typename GG::G> as,
                                 std::span<const typename GG::GT> ts,
                                 std::span<const typename GG::Scalar> ss) {
  typename GG::Scalar;
  typename GG::G;
  typename GG::GT;

  // Scalars (Z_r).
  { gg.scalar_bits() } -> std::convertible_to<std::size_t>;
  { gg.sc_random(rng) } -> std::same_as<typename GG::Scalar>;
  { gg.sc_from_u64(std::uint64_t{}) } -> std::same_as<typename GG::Scalar>;
  { gg.sc_add(s, s) } -> std::same_as<typename GG::Scalar>;
  { gg.sc_sub(s, s) } -> std::same_as<typename GG::Scalar>;
  { gg.sc_mul(s, s) } -> std::same_as<typename GG::Scalar>;
  { gg.sc_neg(s) } -> std::same_as<typename GG::Scalar>;
  { gg.sc_inv(s) } -> std::same_as<typename GG::Scalar>;
  { gg.sc_eq(s, s) } -> std::convertible_to<bool>;
  { gg.sc_is_zero(s) } -> std::convertible_to<bool>;

  // Source group G.
  { gg.g_gen() } -> std::same_as<typename GG::G>;
  { gg.g_id() } -> std::same_as<typename GG::G>;
  { gg.g_random(rng) } -> std::same_as<typename GG::G>;
  { gg.g_mul(a, a) } -> std::same_as<typename GG::G>;
  { gg.g_inv(a) } -> std::same_as<typename GG::G>;
  { gg.g_pow(a, s) } -> std::same_as<typename GG::G>;
  { gg.g_eq(a, a) } -> std::convertible_to<bool>;
  { gg.g_is_id(a) } -> std::convertible_to<bool>;
  { gg.hash_to_g(bytes) } -> std::same_as<typename GG::G>;
  { gg.g_multi_pow(as, ss) } -> std::same_as<typename GG::G>;

  // Target group GT.
  { gg.gt_gen() } -> std::same_as<typename GG::GT>;
  { gg.gt_id() } -> std::same_as<typename GG::GT>;
  { gg.gt_random(rng) } -> std::same_as<typename GG::GT>;
  { gg.gt_mul(t, t) } -> std::same_as<typename GG::GT>;
  { gg.gt_inv(t) } -> std::same_as<typename GG::GT>;
  { gg.gt_pow(t, s) } -> std::same_as<typename GG::GT>;
  { gg.gt_eq(t, t) } -> std::convertible_to<bool>;
  { gg.gt_is_id(t) } -> std::convertible_to<bool>;
  { gg.gt_multi_pow(ts, ss) } -> std::same_as<typename GG::GT>;

  // Pairing e : G x G -> GT.
  { gg.pair(a, a) } -> std::same_as<typename GG::GT>;

  // Serialization.
  { gg.sc_ser(w, s) };
  { gg.sc_deser(r) } -> std::same_as<typename GG::Scalar>;
  { gg.g_ser(w, a) };
  { gg.g_deser(r) } -> std::same_as<typename GG::G>;
  { gg.gt_ser(w, t) };
  { gg.gt_deser(r) } -> std::same_as<typename GG::GT>;
  { gg.sc_bytes() } -> std::convertible_to<std::size_t>;
  { gg.g_bytes() } -> std::convertible_to<std::size_t>;
  { gg.gt_bytes() } -> std::convertible_to<std::size_t>;

  { gg.name() } -> std::convertible_to<std::string>;
};

}  // namespace dlr::group
