#include "leakage/rates.hpp"

#include <algorithm>
#include <cmath>

namespace dlr::leakage {

RateSet paper_rates(const schemes::DlrParams& prm) {
  const double n = static_cast<double>(prm.n);
  const double lambda = static_cast<double>(prm.lambda);
  const double logp = static_cast<double>(prm.log_p);
  const double m1 = static_cast<double>(prm.skcomm_bits());  // lambda + 3n when logp = n
  const double m2 = static_cast<double>(prm.sk2_bits());

  RateSet r;
  // b0 = O(log n) during key generation out of |r^Gen| = Theta(l log p) bits.
  const double rgen_bits = static_cast<double>((prm.ell + 1)) * logp;
  r.gen = std::max(1.0, std::log2(n)) / rgen_bits;
  // b1 = lambda; P1 secret memory m1 + log p normally, 2*m1 + log p in refresh.
  r.p1 = lambda / (m1 + logp);
  r.p1_ref = lambda / (2 * m1 + logp);
  // b2 = m2; P2 secret memory m2 normally, 2*m2 in refresh -- but the proof
  // shows the stronger rho_2^Ref = 1 (both shares may leak entirely).
  r.p2 = m2 / m2;
  r.p2_ref = 1.0;
  return r;
}

RateSet measured_rates(std::size_t b1_bits, std::size_t b2_bits,
                       std::size_t m1_normal_bits, std::size_t m1_refresh_bits,
                       std::size_t m2_normal_bits, std::size_t m2_refresh_bits) {
  RateSet r;
  r.gen = 0;
  r.p1 = static_cast<double>(b1_bits) / static_cast<double>(m1_normal_bits);
  r.p1_ref = static_cast<double>(b1_bits) / static_cast<double>(m1_refresh_bits);
  r.p2 = static_cast<double>(b2_bits) / static_cast<double>(m2_normal_bits);
  r.p2_ref = static_cast<double>(2 * b2_bits) / static_cast<double>(m2_refresh_bits);
  return r;
}

std::vector<ComparatorRow> comparator_table() {
  return {
      {"DLR (this work)", "distributed", 0.5, 1.0, false, "CPA", "Thm 4.1"},
      {"DLRIBE (this work)", "distributed", 0.5, 1.0, true, "IBE-CPA", "Thm 4.1"},
      {"DLRCCA2 (this work)", "distributed", 0.5, 1.0, false, "CCA2", "Thm 4.1"},
      {"BKKV [11]", "single-processor", -1.0, 1.0, false, "CPA", "FOCS'10"},
      {"LLW [29]", "single-processor", 1.0 / 258, 1.0, false, "CPA", "STOC'11"},
      {"DLWW [17]", "single-processor", 1.0 / 672, 1.0, false, "storage", "FOCS'11"},
      {"LRW [30]", "single-processor", -1.0, 1.0, true, "IBE-CPA", "TCC'11"},
      {"DHLW [15]", "single-processor", 0.0, 1.0, false, "ID/AKA", "ASIACRYPT'10"},
  };
}

}  // namespace dlr::leakage
