// Epoch-coordinated refresh: the server-side admission state machine.
//
// The key shares move through numbered epochs; every refresh bumps the epoch
// by one. Decryption requests carry the client's epoch and are admitted only
// when it matches and no refresh is pending:
//
//        Serving ----begin_refresh----> Draining ----inflight==0----> Refreshing
//           ^                            (new decs rejected Draining)     |
//           |                                                             |
//           +------------- finish_refresh (epoch += 1 on success) --------+
//
// Guarantees: a refresh never overlaps an in-flight decryption (drain), two
// refreshes never overlap (begin_refresh serializes), and a decryption
// admitted for epoch e always runs against the epoch-e share. Rejections
// (StaleEpoch / Draining) are retryable by construction -- the client's own
// refresh completion advances its epoch and it re-issues.
//
// Gauges svc.epoch and svc.inflight track the machine; svc.stale counts
// rejections.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace dlr::service {

class EpochCoordinator {
 public:
  enum class Admit { Accepted, Stale, Draining, DrainTimeout };

  /// Default bound on how long begin_refresh waits for in-flight decryptions
  /// to drain. Without a bound a dead worker (crashed mid-decryption, never
  /// calling end_decrypt) wedges every future refresh forever; with it the
  /// refresh fails cleanly as retryable DrainTimeout.
  static constexpr std::chrono::milliseconds kDefaultDrainDeadline{10000};

  explicit EpochCoordinator(std::uint64_t initial_epoch = 0);

  /// Admission for a decryption request claiming `request_epoch`. Accepted
  /// increments the in-flight count; the caller MUST pair it with
  /// end_decrypt().
  [[nodiscard]] Admit begin_decrypt(std::uint64_t request_epoch);
  void end_decrypt();

  /// Admission for a refresh request. Blocks while another refresh drains or
  /// runs; then rejects a stale epoch, or enters Draining and blocks until
  /// every admitted decryption has ended. Both waits are bounded by
  /// `drain_deadline`; expiry returns DrainTimeout and leaves the machine
  /// Serving. Accepted MUST be paired with finish_refresh().
  [[nodiscard]] Admit begin_refresh(
      std::uint64_t request_epoch,
      std::chrono::milliseconds drain_deadline = kDefaultDrainDeadline);
  /// Leave the refresh state; bumps the epoch iff the refresh succeeded.
  void finish_refresh(bool success);

  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::uint64_t inflight() const;

 private:
  void publish_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_;
  std::uint64_t inflight_ = 0;
  bool draining_ = false;
};

}  // namespace dlr::service
