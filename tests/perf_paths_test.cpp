// Tests for the optimized arithmetic paths: wNAF scalar multiplication
// (differential vs binary), fixed-base precomputation, ct_multi_pow, and the
// precomputed-encryption variant -- plus the compact-mode sk_comm-
// accumulation attack, the compact analogue of the F3 separation.
#include <gtest/gtest.h>

#include "group/fixed_pow.hpp"
#include "group/mock_group.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"

namespace dlr {
namespace {

using crypto::Rng;
using group::make_mock;
using group::make_tate_ss256;
using group::MockGroup;

// ---- wNAF ---------------------------------------------------------------------

TEST(WnafTest, DigitsReconstructScalar) {
  Rng rng(7000);
  for (int i = 0; i < 200; ++i) {
    mpint::UInt<3> k{};
    Bytes b(24);
    rng.fill(std::span<std::uint8_t>(b.data(), 20));
    k = mpint::UInt<3>::from_bytes(b);
    const auto naf = ec::CurveCtx<4>::wnaf_digits(k, 4);
    // sum naf[i] * 2^i == k, and nonzero digits are odd with |d| <= 7.
    __int128 acc = 0;
    for (std::size_t j = naf.size(); j-- > 0;) {
      acc = 2 * acc + naf[j];
      if (naf[j] != 0) {
        EXPECT_EQ(std::abs(naf[j]) % 2, 1);
        EXPECT_LE(std::abs(naf[j]), 7);
      }
    }
    // Direct reconstruction with signed arithmetic over UInt<4>:
    mpint::UInt<4> pos{}, neg{};
    mpint::UInt<4> p2 = mpint::UInt<4>::from_u64(1);
    for (std::size_t j = 0; j < naf.size(); ++j) {
      if (naf[j] > 0) {
        for (int rep = 0; rep < naf[j]; ++rep) pos = pos + p2;
      } else if (naf[j] < 0) {
        for (int rep = 0; rep < -naf[j]; ++rep) neg = neg + p2;
      }
      p2 = mpint::shl(p2, 1);
    }
    EXPECT_EQ(pos - neg, mpint::resize<4>(k));
  }
}

TEST(WnafTest, MulMatchesBinary) {
  const auto ctx = pairing::make_ss256();
  Rng rng(7001);
  field::FpCtx<1> zr(ctx->order());
  for (int i = 0; i < 20; ++i) {
    const auto p = ctx->random_point(rng);
    const auto k = zr.random_uint(rng);
    EXPECT_EQ(ctx->curve().mul_wnaf(p, k), ctx->curve().mul_binary(p, k)) << "iter " << i;
  }
  // Edge cases.
  const auto p = ctx->random_point(rng);
  EXPECT_TRUE(ctx->curve().mul_wnaf(p, mpint::UInt<1>::zero()).inf);
  EXPECT_EQ(ctx->curve().mul_wnaf(p, mpint::UInt<1>::from_u64(1)), p);
  EXPECT_TRUE(ctx->curve().mul_wnaf(ctx->curve().infinity(), mpint::UInt<1>::from_u64(5)).inf);
}

// ---- fixed-base precomputation ------------------------------------------------------

template <group::BilinearGroup GG>
void fixed_pow_battery(const GG& gg, std::uint64_t seed, int iters) {
  Rng rng(seed);
  const auto base_g = gg.g_random(rng);
  const auto base_t = gg.gt_random(rng);
  group::FixedPowG<GG> fg(gg, base_g);
  group::FixedPowGT<GG> ft(gg, base_t);
  for (int i = 0; i < iters; ++i) {
    const auto e = gg.sc_random(rng);
    EXPECT_TRUE(gg.g_eq(fg.pow(gg, e), gg.g_pow(base_g, e)));
    EXPECT_TRUE(gg.gt_eq(ft.pow(gg, e), gg.gt_pow(base_t, e)));
  }
  EXPECT_TRUE(gg.g_is_id(fg.pow(gg, gg.sc_from_u64(0))));
  EXPECT_TRUE(gg.g_eq(fg.pow(gg, gg.sc_from_u64(1)), base_g));
}

TEST(FixedPowTest, MatchesPlainPowMock) { fixed_pow_battery(make_mock(), 7100, 100); }
TEST(FixedPowTest, MatchesPlainPowTate) { fixed_pow_battery(make_tate_ss256(), 7101, 5); }

TEST(FixedPowTest, PrecomputedEncryptionDecrypts) {
  using Core = schemes::DlrCore<MockGroup>;
  const auto gg = make_mock();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  auto sys = schemes::DlrSystem<MockGroup>::create(gg, prm, schemes::P1Mode::Plain, 7200);
  const typename Core::PkTable tbl(gg, sys.pk());
  Rng rng(7201);
  for (int i = 0; i < 20; ++i) {
    const auto m = gg.gt_random(rng);
    const auto c = Core::enc_precomp(gg, tbl, m, rng);
    EXPECT_TRUE(gg.gt_eq(sys.decrypt(c), m));
  }
}

// ---- ct_multi_pow agrees with the naive ct_pow/ct_mul chain ---------------------------

TEST(CtMultiPowTest, MatchesNaiveChain) {
  const auto gg = make_mock();
  schemes::HpskeG<MockGroup> hg(gg, 4);
  Rng rng(7300);
  const auto sk = hg.gen(rng);
  std::vector<typename schemes::HpskeG<MockGroup>::Ciphertext> cts;
  std::vector<std::uint64_t> ks;
  for (int i = 0; i < 6; ++i) {
    cts.push_back(hg.enc(sk, gg.g_random(rng), rng));
    ks.push_back(gg.sc_random(rng));
  }
  auto naive = hg.ct_one();
  for (int i = 0; i < 6; ++i) naive = hg.ct_mul(naive, hg.ct_pow(cts[i], ks[i]));
  EXPECT_TRUE(hg.ct_multi_pow(cts, ks) == naive);
  // Size mismatch rejected.
  ks.pop_back();
  EXPECT_THROW((void)hg.ct_multi_pow(cts, ks), std::invalid_argument);
}

// Helper mirroring leakage::extract_bits without pulling the header in.
Bytes leakage_window(const Bytes& src, std::size_t bit_offset, std::size_t nbits) {
  Bytes out((nbits + 7) / 8, 0);
  const std::size_t total = 8 * src.size();
  for (std::size_t i = 0; i < nbits; ++i) {
    const std::size_t pos = (bit_offset + i) % total;
    if ((src[pos / 8] >> (pos % 8)) & 1) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return out;
}

// ---- compact-mode sk_comm accumulation attack (the compact analogue of F3) ------------

// In compact mode P1's secret is sk_comm alone, and Enc'_{sk_comm}(sk1) is
// *public*. If sk_comm never rotated, window-leaking it across periods would
// eventually reveal sk1 wholesale. This test mounts exactly that attack
// against (a) a no-refresh system -- succeeds -- and (b) the real refreshed
// system, where sk_comm rotates every period -- fails.
TEST(CompactAttackTest, SkcommAccumulationSeparation) {
  using Core = schemes::DlrCore<MockGroup>;
  const auto gg = make_mock();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
  const std::size_t skcomm_bits = 8 * prm.kappa * gg.sc_bytes();
  const std::size_t window = prm.lambda;  // legal per-period budget
  const std::size_t periods = (skcomm_bits + window - 1) / window + 1;

  for (const bool refresh : {false, true}) {
    auto sys =
        schemes::DlrSystem<MockGroup>::create(gg, prm, schemes::P1Mode::Compact, 7400);
    Rng rng(7401);
    Bytes acc((skcomm_bits + 7) / 8, 0);
    std::vector<bool> have(skcomm_bits, false);
    for (std::size_t t = 0; t < periods; ++t) {
      // Run a period's decryption so sigma/f state is live.
      const auto c = Core::enc(gg, sys.pk(), gg.gt_random(rng), rng);
      (void)sys.decrypt(c);
      // Leak a lambda-bit window of P1's secret memory. Layout: 8-byte blob
      // length, then sigma (kappa scalars).
      const auto snap = sys.p1().normal_snapshot().all();
      const std::size_t start = (t * window) % skcomm_bits;
      const std::size_t take = std::min(window, skcomm_bits - start);
      const auto leak = leakage_window(snap, 64 + start, take);
      for (std::size_t i = 0; i < take; ++i) {
        const bool bit = (leak[i / 8] >> (i % 8)) & 1;
        if (bit) acc[(start + i) / 8] |= static_cast<std::uint8_t>(1u << ((start + i) % 8));
        have[start + i] = true;
      }
      if (refresh) sys.refresh();
    }
    bool complete = true;
    for (const bool h : have) complete = complete && h;
    ASSERT_TRUE(complete);

    // Try to use the accumulated sk_comm with the PUBLIC encrypted share.
    bool broke = false;
    try {
      ByteReader r(acc);
      typename schemes::HpskeG<MockGroup>::SecretKey sigma;
      for (std::size_t i = 0; i < prm.kappa; ++i) sigma.s.push_back(gg.sc_deser(r));
      schemes::HpskeG<MockGroup> hg(gg, prm.kappa);
      typename Core::Sk1 sk1;
      for (const auto& ct : sys.p1().encrypted_share()) sk1.a.push_back(hg.dec(sigma, ct));
      // The attack also needs Phi; in compact mode it is the last stored ct.
      // Recover via the test helper and compare against ground truth.
      const auto truth = sys.p1().recover_share_for_test();
      broke = gg.g_eq(sk1.a[0], truth.a[0]);
    } catch (const std::exception&) {
      broke = false;
    }
    if (refresh) {
      EXPECT_FALSE(broke) << "sk_comm rotation must invalidate accumulated bits";
    } else {
      EXPECT_TRUE(broke) << "without rotation the accumulated sk_comm must work";
    }
  }
}

}  // namespace
}  // namespace dlr
