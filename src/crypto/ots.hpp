// Lamport one-time signatures over SHA-256.
//
// Needed by the BCHK IBE-to-CCA2 transform (Section 4.3 / [6]): each
// encryption samples a fresh OTS key pair, uses the verification key as the
// IBE identity, and signs the ciphertext. Strong one-time unforgeability
// suffices; Lamport signatures provide it from the one-wayness of the hash.
#pragma once

#include <array>
#include <vector>

#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"

namespace dlr::crypto {

class LamportOts {
 public:
  static constexpr std::size_t kMsgBits = 256;  // we sign H(message)
  using Preimage = std::array<std::uint8_t, 32>;

  struct SigningKey {
    std::array<std::array<Preimage, 2>, kMsgBits> sk;
    bool used = false;
  };

  struct VerifyKey {
    std::array<std::array<Sha256::Digest, 2>, kMsgBits> vk;
    bool operator==(const VerifyKey&) const = default;
  };

  struct Signature {
    std::array<Preimage, kMsgBits> reveal;
  };

  struct KeyPair {
    SigningKey sk;
    VerifyKey vk;
  };

  static KeyPair keygen(Rng& rng);

  /// Signs H(msg). Throws if the key was already used (one-time!).
  static Signature sign(SigningKey& sk, std::span<const std::uint8_t> msg);

  static bool verify(const VerifyKey& vk, std::span<const std::uint8_t> msg,
                     const Signature& sig);

  static Bytes serialize_vk(const VerifyKey& vk);
  static VerifyKey deserialize_vk(ByteReader& r);
  static Bytes serialize_sig(const Signature& sig);
  static Signature deserialize_sig(ByteReader& r);

  static constexpr std::size_t vk_bytes() { return kMsgBits * 2 * 32; }
  static constexpr std::size_t sig_bytes() { return kMsgBits * 32; }
};

}  // namespace dlr::crypto
