// Quadratic extension F_{p^2} = F_p[i]/(i^2 + 1), valid when p == 3 (mod 4).
// This is the target-field arithmetic for the type-A Tate pairing: GT is the
// order-r subgroup of F_{p^2}^*.
#pragma once

#include <array>

#include "field/fp.hpp"

namespace dlr::field {

template <std::size_t L>
struct Fp2E {
  UInt<L> a{};  // real part (Montgomery form)
  UInt<L> b{};  // imaginary part (Montgomery form)
  bool operator==(const Fp2E&) const = default;
};

template <std::size_t L>
class Fp2Ctx {
 public:
  using E = Fp2E<L>;
  using Base = FpCtx<L>;

  explicit Fp2Ctx(const Base& base) : fp_(base) {
    if ((fp_.modulus().limb[0] & 3) != 3)
      throw std::invalid_argument("Fp2Ctx: need p == 3 mod 4 for i^2 = -1");
  }

  [[nodiscard]] const Base& base() const { return fp_; }

  [[nodiscard]] E zero() const { return {}; }
  [[nodiscard]] E one() const { return {fp_.one(), {}}; }
  [[nodiscard]] E from_base(const UInt<L>& re) const { return {re, {}}; }
  [[nodiscard]] E make(const UInt<L>& re, const UInt<L>& im) const { return {re, im}; }

  [[nodiscard]] bool is_zero(const E& x) const { return x.a.is_zero() && x.b.is_zero(); }
  [[nodiscard]] bool eq(const E& x, const E& y) const { return x == y; }

  [[nodiscard]] E add(const E& x, const E& y) const {
    return {fp_.add(x.a, y.a), fp_.add(x.b, y.b)};
  }
  [[nodiscard]] E sub(const E& x, const E& y) const {
    return {fp_.sub(x.a, y.a), fp_.sub(x.b, y.b)};
  }
  [[nodiscard]] E neg(const E& x) const { return {fp_.neg(x.a), fp_.neg(x.b)}; }

  [[nodiscard]] E mul(const E& x, const E& y) const {
    // Karatsuba: ac, bd, (a+b)(c+d).
    const auto ac = fp_.mul(x.a, y.a);
    const auto bd = fp_.mul(x.b, y.b);
    const auto cross = fp_.mul(fp_.add(x.a, x.b), fp_.add(y.a, y.b));
    return {fp_.sub(ac, bd), fp_.sub(cross, fp_.add(ac, bd))};
  }

  [[nodiscard]] E sqr(const E& x) const {
    // (a+bi)^2 = (a+b)(a-b) + 2ab i
    const auto t1 = fp_.mul(fp_.add(x.a, x.b), fp_.sub(x.a, x.b));
    const auto t2 = fp_.mul(x.a, x.b);
    return {t1, fp_.dbl(t2)};
  }

  [[nodiscard]] E conj(const E& x) const { return {x.a, fp_.neg(x.b)}; }

  /// Norm to the base field: a^2 + b^2.
  [[nodiscard]] UInt<L> norm(const E& x) const {
    return fp_.add(fp_.sqr(x.a), fp_.sqr(x.b));
  }

  /// Whether x lies on the norm-1 circle a^2 + b^2 = 1 (every element of the
  /// order-r pairing target group GT does: r | q+1 divides the norm-1
  /// subgroup order).
  [[nodiscard]] bool is_norm_one(const E& x) const { return fp_.eq(norm(x), fp_.one()); }

  /// Scale by a base-field element: (a + bi) * s.
  [[nodiscard]] E scale(const E& x, const UInt<L>& s) const {
    return {fp_.mul(x.a, s), fp_.mul(x.b, s)};
  }

  [[nodiscard]] E inv(const E& x) const {
    const auto n = norm(x);
    const auto ninv = fp_.inv(n);  // throws on zero
    return {fp_.mul(x.a, ninv), fp_.neg(fp_.mul(x.b, ninv))};
  }

  /// Frobenius x^p == conj(x) for p == 3 mod 4.
  [[nodiscard]] E frobenius(const E& x) const { return conj(x); }

  template <std::size_t LE>
  [[nodiscard]] E pow(const E& x, const UInt<LE>& e) const {
    E result = one();
    const std::size_t n = e.bit_length();
    for (std::size_t i = n; i-- > 0;) {
      result = sqr(result);
      if (e.bit(i)) result = mul(result, x);
    }
    return result;
  }

  // ---- norm-1 fast lane -------------------------------------------------------
  // For x with a^2 + b^2 = 1 (the unit circle containing GT) two identities
  // buy cheaper arithmetic:
  //   * x^{-1} = conj(x)                       (inversion is free)
  //   * x^2 = (2a^2 - 1) + (2ab) i             (1 sqr + 1 mul vs 2 muls)
  // Callers must guarantee the precondition; outputs stay on the circle.

  /// Squaring on the norm-1 circle: (2a^2 - 1, 2ab).
  [[nodiscard]] E sqr_norm1(const E& x) const {
    return {fp_.sub(fp_.dbl(fp_.sqr(x.a)), fp_.one()), fp_.dbl(fp_.mul(x.a, x.b))};
  }

  /// Signed-window (wNAF) exponentiation on the norm-1 circle: free inversion
  /// makes negative digits cost nothing extra, cutting the per-bit
  /// multiplication count to ~1/(w+1); squarings use sqr_norm1.
  template <std::size_t LE>
  [[nodiscard]] E pow_norm1(const E& x, const UInt<LE>& e) const {
    if (e.is_zero()) return one();
    constexpr int kW = 5;
    const auto naf = mpint::wnaf_digits(e, kW);
    // Odd powers x^1, x^3, ..., x^31.
    std::array<E, 16> tbl;
    tbl[0] = x;
    const E x2 = sqr_norm1(x);
    for (std::size_t i = 1; i < tbl.size(); ++i) tbl[i] = mul(tbl[i - 1], x2);
    E acc = one();
    for (std::size_t i = naf.size(); i-- > 0;) {
      acc = sqr_norm1(acc);
      const int d = naf[i];
      if (d > 0) acc = mul(acc, tbl[static_cast<std::size_t>(d - 1) / 2]);
      if (d < 0) acc = mul(acc, conj(tbl[static_cast<std::size_t>(-d - 1) / 2]));
    }
    return acc;
  }

  /// Uniform nonzero element of F_{p^2}^*.
  [[nodiscard]] E random_nonzero(crypto::Rng& rng) const {
    for (;;) {
      const E x{fp_.random(rng), fp_.random(rng)};
      if (!is_zero(x)) return x;
    }
  }

 private:
  Base fp_;
};

}  // namespace dlr::field
