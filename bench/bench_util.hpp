// Shared helpers for the experiment binaries: fixed-width table printing and
// wall-clock timing of protocol-level operations (google-benchmark is used
// for the microbenchmarks; the table experiments print paper-style rows).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/export.hpp"

namespace dlr::bench {

/// Bench-side deterministic randomness (splitmix64). Kept separate from
/// crypto::Rng so workload shaping never consumes protocol coins -- two runs
/// with the same --seed replay the same request schedule bit for bit.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from splitmix64 output.
inline double uniform01(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Deterministic Zipf(s) sampler over ranks {0..n-1} (rank 0 hottest):
/// P(k) ∝ 1/(k+1)^s, drawn by inverse CDF over a precomputed table, so a
/// 10k-key keyspace samples in O(log n) with no rejection loop. Seeded --
/// the same (n, s, seed) replays the same key sequence.
class Zipf {
 public:
  Zipf(std::size_t n, double s, std::uint64_t seed) : state_(seed ^ 0x5a17f00dULL) {
    cdf_.reserve(n);
    double total = 0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_.push_back(total);
    }
  }

  [[nodiscard]] std::size_t next() {
    const double u = uniform01(state_) * cdf_.back();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  std::uint64_t state_;
};

/// Seeded Fisher-Yates shuffle (workload orders must replay under --seed;
/// std::shuffle's distribution is implementation-defined).
template <class T>
inline void seeded_shuffle(std::vector<T>& v, std::uint64_t seed) {
  std::uint64_t state = seed ^ 0x0ddc0ffeeULL;
  for (std::size_t i = v.size(); i > 1; --i)
    std::swap(v[i - 1], v[splitmix64(state) % i]);
}

/// Value of a `--<name> N` u64 flag; `def` if absent.
inline std::uint64_t u64_flag(int argc, char** argv, const char* name,
                              std::uint64_t def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0)
      return std::strtoull(argv[i + 1], nullptr, 10);
  return def;
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());

    auto line = [&] {
      std::string s = "+";
      for (auto w : width) s += std::string(w + 2, '-') + "+";
      std::printf("%s\n", s.c_str());
    };
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::string s = "|";
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : std::string{};
        s += " " + v + std::string(width[c] - v.size(), ' ') + " |";
      }
      std::printf("%s\n", s.c_str());
    };
    line();
    print_row(headers_);
    line();
    for (const auto& r : rows_) print_row(r);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// DLR_BENCH_RUNS environment override for time_ms run counts (0 = unset).
/// Lets telemetry-driven comparisons raise the sample count without touching
/// per-call-site defaults.
inline int env_runs_override() {
  if (const char* e = std::getenv("DLR_BENCH_RUNS")) {
    const int v = std::atoi(e);
    if (v > 0) return v;
  }
  return 0;
}

/// min/median/max of the timed runs, in milliseconds. The median is the
/// headline number (robust to a straggler run); min and max bound the spread
/// so a row with heavy jitter is visible as such instead of silently
/// averaged away.
struct TimeStats {
  double min = 0;
  double med = 0;
  double max = 0;
};

/// Wall-time samples over `runs` runs, after one discarded warmup run
/// (caches/branch predictors/lazy per-period state settle before the first
/// sample). A compiler barrier after each run keeps the optimizer from
/// eliding result computations whose values the timed lambda discards.
/// DLR_BENCH_RUNS overrides `runs` when set.
inline TimeStats time_stats(const std::function<void()>& fn, int runs = 3) {
  if (const int env = env_runs_override()) runs = env;
  if (runs < 1) runs = 1;
  fn();  // warmup, discarded
  asm volatile("" ::: "memory");
  std::vector<double> samples;
  samples.reserve(runs);
  for (int i = 0; i < runs; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    asm volatile("" ::: "memory");
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return TimeStats{samples.front(), samples[samples.size() / 2], samples.back()};
}

/// Median-of-runs wall time in milliseconds (time_stats().med).
inline double time_ms(const std::function<void()>& fn, int runs = 3) {
  return time_stats(fn, runs).med;
}

/// Opaque consumer: forces the compiler to materialize v inside timed code.
template <class T>
inline void sink(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_bytes(std::size_t b) {
  char buf[64];
  if (b >= 1024 * 1024)
    std::snprintf(buf, sizeof(buf), "%.1f MiB", static_cast<double>(b) / (1024 * 1024));
  else if (b >= 1024)
    std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(b) / 1024);
  else
    std::snprintf(buf, sizeof(buf), "%zu B", b);
  return buf;
}

inline void banner(const std::string& title, const std::string& source) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("    (reproduces: %s)\n\n", source.c_str());
}

/// Value of a `--json <path>` / `--json=<path>` flag; empty if absent.
inline std::string json_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) return argv[i + 1];
    if (a.rfind("--json=", 0) == 0) return a.substr(7);
  }
  return {};
}

/// If the user passed --json, dump the global telemetry registry + span table
/// as JSON lines (works -- with empty content -- in a DLR_TELEMETRY=OFF
/// build, so the flag never breaks).
inline void export_json_if_requested(int argc, char** argv, const std::string& bench) {
  const std::string path = json_flag(argc, argv);
  if (path.empty()) return;
  if (telemetry::export_global_jsonl(path, bench))
    std::printf("\ntelemetry: wrote %s\n", path.c_str());
  else
    std::fprintf(stderr, "\ntelemetry: FAILED to write %s\n", path.c_str());
}

}  // namespace dlr::bench
