# Empty dependencies file for net_analysis_test.
# This may be replaced when dependencies are built.
