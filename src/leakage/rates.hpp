// Leakage-rate accounting (Theorem 4.1 and the Section 4 rate discussion),
// plus the published comparator constants quoted in Section 1.2.1.
//
// The paper's rates: rho_gen = o(1), (rho1, rho2) = (1 - o(1), 1), and
// (rho1^ref, rho2^ref) = (1/2 - o(1), 1) [the text proves the stronger
// rho2^ref = 1]. Concretely b1 = (1 - 3n/(lambda+3n)) * m1 = lambda bits with
// m1 = |sk_comm| = lambda + 3n, and b2 = m2 = |sk_2|.
//
// measured_rates() recomputes every rate from the *implementation's* secret
// memory sizes, so the F1/T2 experiments compare the paper's formulas against
// byte-exact measurements.
#pragma once

#include <string>
#include <vector>

#include "schemes/params.hpp"

namespace dlr::leakage {

struct RateSet {
  double gen = 0;      // rho^Gen
  double p1 = 0;       // rho_1 (other times)
  double p2 = 0;       // rho_2
  double p1_ref = 0;   // rho_1^Ref
  double p2_ref = 0;   // rho_2^Ref
};

/// Paper formulas evaluated at concrete (n, lambda): b1 = lambda,
/// m1 = lambda + 3n (+ log p scratch), b2 = m2 = l*log p.
RateSet paper_rates(const schemes::DlrParams& prm);

/// Rates from measured secret-memory sizes (bits), same accounting.
RateSet measured_rates(std::size_t b1_bits, std::size_t b2_bits,
                       std::size_t m1_normal_bits, std::size_t m1_refresh_bits,
                       std::size_t m2_normal_bits, std::size_t m2_refresh_bits);

/// A comparator row for the Section 1.2.1 comparison (T2). `refresh_rate`
/// uses -1 to denote the paper's o(1) asymptotic (no concrete constant).
struct ComparatorRow {
  std::string scheme;
  std::string model;          // "single-processor" / "distributed"
  double refresh_rate;        // fraction tolerated during refresh
  double normal_rate;         // fraction tolerated otherwise
  bool leaks_from_msk;        // IBE schemes only
  std::string security;       // "CPA" / "CCA2" / "IBE-CPA"
  std::string source;         // citation
};

/// The published constants quoted by the paper: [11] BKKV o(1), [29] LLW
/// 1/258, [17] DLWW 1/672, [30] LRW o(1), [15] DHLW none.
std::vector<ComparatorRow> comparator_table();

}  // namespace dlr::leakage
