file(REMOVE_RECURSE
  "CMakeFiles/leaky_storage.dir/leaky_storage.cpp.o"
  "CMakeFiles/leaky_storage.dir/leaky_storage.cpp.o.d"
  "leaky_storage"
  "leaky_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaky_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
