// The "symmetric encryption" scenario from the paper's introduction: two
// processors agree (in person, once) on key material, but neither ever stores
// the usable key -- each keeps only a share. Bulk data is protected with
// ChaCha20 under per-session keys wrapped by the distributed KEM, and the
// shares are refreshed between sessions, so leakage from either processor in
// any period is useless in every other period.
#include <cstdio>
#include <string>

#include "crypto/chacha20.hpp"
#include "group/tate_group.hpp"
#include "schemes/dlr.hpp"

int main() {
  using namespace dlr;
  using GG = group::TateSS256;

  const GG gg = group::make_tate_ss256();
  const auto prm = schemes::DlrParams::derive(gg.scalar_bits(), 64);

  // One-time in-person setup: keygen runs once, shares are installed.
  auto pair = schemes::DlrSystem<GG>::create(gg, prm, schemes::P1Mode::Plain, 777);
  crypto::Rng rng = crypto::Rng::from_os_entropy();

  const std::string msgs[] = {"wire $5 to bob", "rotate the api key", "ship it"};
  for (int session = 0; session < 3; ++session) {
    // Sender side (processor 1's role): wrap a fresh session key.
    const auto kem_key = gg.gt_random(rng);
    const auto wrapped = schemes::DlrCore<GG>::enc(gg, pair.pk(), kem_key, rng);
    ByteWriter w;
    gg.gt_ser(w, kem_key);
    const auto km = crypto::kdf(w.bytes(), 44, "symmetric-pair");
    Bytes ct(msgs[session].begin(), msgs[session].end());
    crypto::ChaCha20{std::span<const std::uint8_t>(km.data(), 32),
                     std::span<const std::uint8_t>(km.data() + 32, 12)}
        .xor_stream(ct);

    // Receiver side: unwrap via the 2-party protocol, then decrypt the bulk.
    const auto unwrapped = pair.decrypt(wrapped);
    ByteWriter w2;
    gg.gt_ser(w2, unwrapped);
    const auto km2 = crypto::kdf(w2.bytes(), 44, "symmetric-pair");
    crypto::ChaCha20{std::span<const std::uint8_t>(km2.data(), 32),
                     std::span<const std::uint8_t>(km2.data() + 32, 12)}
        .xor_stream(ct);
    std::printf("session %d: received \"%s\" -- %s\n", session,
                std::string(ct.begin(), ct.end()).c_str(),
                std::string(ct.begin(), ct.end()) == msgs[session] ? "ok" : "CORRUPTED");

    // Between sessions: refresh the shares. Leakage collected during session
    // k is about shares that no longer exist in session k+1.
    pair.refresh();
  }
  std::printf("shares refreshed after every session; the usable key never existed\n"
              "on either processor (the classical single-shared-key setup is the\n"
              "strawman the paper's intro replaces).\n");
  return 0;
}
