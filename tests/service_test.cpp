// Service runtime: epoch admission state machine, the end-to-end decryption
// service over real sockets, and refresh/decrypt interleaving under
// multi-threaded load (the continual-leakage deployment loop of §1.1/§4.4 run
// as a server workload).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "group/mock_group.hpp"
#include "service/client.hpp"
#include "service/p2_server.hpp"

namespace dlr::service {
namespace {

using group::make_mock;
using group::MockGroup;
using Core = schemes::DlrCore<MockGroup>;

schemes::DlrParams mock_params() {
  const auto gg = make_mock();
  return schemes::DlrParams::derive(gg.scalar_bits(), gg.scalar_bits());
}

// ---- epoch coordinator --------------------------------------------------------

TEST(EpochCoordinatorTest, StaleEpochRejectedBeforeTouchingTheShare) {
  EpochCoordinator c(3);
  EXPECT_EQ(c.begin_decrypt(2), EpochCoordinator::Admit::Stale);
  EXPECT_EQ(c.begin_decrypt(4), EpochCoordinator::Admit::Stale);
  EXPECT_EQ(c.inflight(), 0u);
  EXPECT_EQ(c.begin_decrypt(3), EpochCoordinator::Admit::Accepted);
  EXPECT_EQ(c.inflight(), 1u);
  c.end_decrypt();
  EXPECT_EQ(c.inflight(), 0u);
}

TEST(EpochCoordinatorTest, RefreshDrainsInflightAndRejectsNewDecrypts) {
  EpochCoordinator c;
  ASSERT_EQ(c.begin_decrypt(0), EpochCoordinator::Admit::Accepted);

  std::atomic<bool> refreshed{false};
  std::thread refresher([&] {
    ASSERT_EQ(c.begin_refresh(0), EpochCoordinator::Admit::Accepted);
    refreshed.store(true);
    c.finish_refresh(true);
  });

  // Wait until the refresher is draining: new decryptions bounce as Draining.
  // (Polls that land before draining_ is set are Accepted and must be paired
  // with end_decrypt, or the drain we are waiting for would never finish.)
  for (;;) {
    const auto admit = c.begin_decrypt(0);
    if (admit == EpochCoordinator::Admit::Draining) break;
    ASSERT_EQ(admit, EpochCoordinator::Admit::Accepted);
    c.end_decrypt();
    std::this_thread::yield();
  }
  EXPECT_FALSE(refreshed.load()) << "refresh ran while a decryption was in flight";

  c.end_decrypt();  // drain completes; refresher proceeds
  refresher.join();
  EXPECT_TRUE(refreshed.load());
  EXPECT_EQ(c.epoch(), 1u);
  EXPECT_EQ(c.begin_decrypt(1), EpochCoordinator::Admit::Accepted);
  c.end_decrypt();
}

TEST(EpochCoordinatorTest, FailedRefreshKeepsTheEpoch) {
  EpochCoordinator c;
  ASSERT_EQ(c.begin_refresh(0), EpochCoordinator::Admit::Accepted);
  c.finish_refresh(false);
  EXPECT_EQ(c.epoch(), 0u);
  ASSERT_EQ(c.begin_refresh(0), EpochCoordinator::Admit::Accepted);
  c.finish_refresh(true);
  EXPECT_EQ(c.epoch(), 1u);
}

TEST(EpochCoordinatorTest, ConcurrentRefreshesSerialize) {
  EpochCoordinator c;
  constexpr int kRefreshers = 4;
  std::vector<std::thread> ts;
  std::atomic<int> accepted{0};
  for (int i = 0; i < kRefreshers; ++i)
    ts.emplace_back([&] {
      // Each claims whatever the current epoch is; losers see Stale.
      for (;;) {
        const auto e = c.epoch();
        const auto admit = c.begin_refresh(e);
        if (admit == EpochCoordinator::Admit::Accepted) {
          accepted.fetch_add(1);
          c.finish_refresh(true);
          return;
        }
        // Stale: epoch moved between read and admission; retry once more.
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(accepted.load(), kRefreshers);
  EXPECT_EQ(c.epoch(), static_cast<std::uint64_t>(kRefreshers));
}

// ---- end-to-end service -------------------------------------------------------

struct Service {
  MockGroup gg = make_mock();
  schemes::DlrParams prm = mock_params();
  Core::KeyGenResult kg;
  std::unique_ptr<P2Server<MockGroup>> server;
  std::shared_ptr<P1Runtime<MockGroup>> p1;

  explicit Service(int workers = 4, std::uint64_t seed = 7000) {
    crypto::Rng rng(seed);
    kg = Core::gen(gg, prm, rng);
    typename P2Server<MockGroup>::Options opt;
    opt.workers = workers;
    server = std::make_unique<P2Server<MockGroup>>(gg, prm, kg.sk2, crypto::Rng(seed + 1),
                                                   opt);
    server->start();
    p1 = std::make_shared<P1Runtime<MockGroup>>(gg, prm, kg.pk, kg.sk1,
                                                schemes::P1Mode::Plain,
                                                crypto::Rng(seed + 2));
  }
  ~Service() { server->stop(); }

  DecryptionClient<MockGroup> client(typename DecryptionClient<MockGroup>::Options opt = {}) {
    return DecryptionClient<MockGroup>(p1, server->port(), opt);
  }
};

TEST(ServiceTest, DecryptOverRealSocketsIsCorrect) {
  Service svc;
  auto client = svc.client();
  crypto::Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    EXPECT_TRUE(svc.gg.gt_eq(client.decrypt_once(c), m));
  }
  EXPECT_EQ(svc.server->requests_served(), 5u);
  EXPECT_EQ(svc.server->epoch(), 0u);
}

TEST(ServiceTest, RefreshAdvancesBothEpochsAndDecryptionStillWorks) {
  Service svc;
  auto client = svc.client();
  crypto::Rng rng(2);
  for (int round = 0; round < 3; ++round) {
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    EXPECT_TRUE(svc.gg.gt_eq(client.decrypt_once(c), m));
    client.refresh();
    EXPECT_EQ(client.epoch(), static_cast<std::uint64_t>(round + 1));
    EXPECT_EQ(svc.server->epoch(), static_cast<std::uint64_t>(round + 1));
  }
  // The sharing rotated three times; the shared secret did not move.
  const auto sk1 = svc.p1->share_for_test();
  const auto sk2 = svc.server->share_for_test();
  EXPECT_TRUE(svc.gg.g_eq(Core::reconstruct_msk(svc.gg, sk1, sk2), svc.kg.msk));
}

TEST(ServiceTest, StaleEpochIsDeterministicallyRejectedAndRetryable) {
  Service svc;
  auto client = svc.client();
  crypto::Rng rng(3);
  const auto m = svc.gg.gt_random(rng);
  const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);

  // Hand-roll a request claiming a future epoch over a raw mux connection.
  transport::SessionMux mux(std::make_shared<transport::FramedConn>(
      transport::connect_loopback(svc.server->port()), transport::TransportOptions{}));
  auto sess = mux.open();
  sess->send(transport::FrameType::Data, 1, kLabelDecReq,
             encode_request(999, svc.p1->begin_decrypt(c, rng).round1));
  const auto resp = sess->recv(transport::Millis{5000});
  EXPECT_EQ(resp.type, transport::FrameType::Error);
  const ServiceError err = decode_error(resp.body);
  EXPECT_EQ(err.code(), ServiceErrc::StaleEpoch);
  EXPECT_TRUE(err.retryable());
  EXPECT_EQ(err.server_epoch(), 0u);
}

TEST(ServiceTest, MalformedRequestsGetBadRequestNotACrash) {
  Service svc;
  transport::SessionMux mux(std::make_shared<transport::FramedConn>(
      transport::connect_loopback(svc.server->port()), transport::TransportOptions{}));

  // Body that is not even a valid request encoding.
  {
    auto sess = mux.open();
    sess->send(transport::FrameType::Data, 1, kLabelDecReq, Bytes{0xFF, 0x01});
    const ServiceError err = decode_error(sess->recv(transport::Millis{5000}).body);
    EXPECT_EQ(err.code(), ServiceErrc::BadRequest);
    EXPECT_FALSE(err.retryable());
  }
  // Valid envelope at the right epoch, garbage round-1 payload inside.
  {
    auto sess = mux.open();
    sess->send(transport::FrameType::Data, 1, kLabelDecReq,
               encode_request(0, Bytes{1, 2, 3, 4, 5}));
    const ServiceError err = decode_error(sess->recv(transport::Millis{5000}).body);
    EXPECT_EQ(err.code(), ServiceErrc::BadRequest);
  }
  // Unknown label.
  {
    auto sess = mux.open();
    sess->send(transport::FrameType::Data, 1, "svc.bogus", Bytes{});
    const ServiceError err = decode_error(sess->recv(transport::Millis{5000}).body);
    EXPECT_EQ(err.code(), ServiceErrc::BadRequest);
  }
  // The server survives all of it and still serves real requests.
  auto client = svc.client();
  crypto::Rng rng(4);
  const auto m = svc.gg.gt_random(rng);
  const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
  EXPECT_TRUE(svc.gg.gt_eq(client.decrypt_once(c), m));
}

// ---- refresh/decrypt interleaving under load ----------------------------------

TEST(ServiceInterleaveTest, HammerWithAutoRefreshEveryKDecryptsCorrectly) {
  // N client threads hammer DistDec through one client while the auto-refresh
  // policy rotates the shares every K requests. Every decrypt() must return
  // the right plaintext (retries of StaleEpoch/Draining happen inside), and
  // afterwards the reconstructed msk must be the original one.
  Service svc(/*workers=*/4);
  typename DecryptionClient<MockGroup>::Options opt;
  opt.auto_refresh_every = 7;  // K
  auto client = svc.client(opt);

  constexpr int kThreads = 4;   // N
  constexpr int kPerThread = 12;
  std::atomic<int> wrong{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      crypto::Rng rng(9000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const auto m = svc.gg.gt_random(rng);
        const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
        try {
          if (!svc.gg.gt_eq(client.decrypt(c), m)) wrong.fetch_add(1);
        } catch (const std::exception&) {
          wrong.fetch_add(1);  // decrypt() retries retryables; anything else fails
        }
      }
    });
  for (auto& t : ts) t.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GE(svc.server->epoch(), 1u) << "auto-refresh never fired";
  EXPECT_EQ(svc.server->epoch(), client.epoch());
  const auto sk1 = svc.p1->share_for_test();
  const auto sk2 = svc.server->share_for_test();
  EXPECT_TRUE(svc.gg.g_eq(Core::reconstruct_msk(svc.gg, sk1, sk2), svc.kg.msk))
      << "refresh under load changed the shared msk";
}

TEST(ServiceInterleaveTest, RawDecryptsRacingRefreshesAreCorrectOrRetryable) {
  // No client-side retry loop here: decrypt_once racing explicit refreshes
  // must either return the correct plaintext or throw a *retryable*
  // ServiceError -- silent wrong answers and non-retryable failures both fail
  // the test.
  Service svc(/*workers=*/4);
  auto dec_client = svc.client();
  auto ref_client = svc.client();

  std::atomic<bool> done{false};
  std::atomic<int> wrong{0}, nonretryable{0}, ok{0}, retryable{0};

  std::thread refresher([&] {
    while (!done.load()) {
      ref_client.refresh();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  constexpr int kThreads = 3;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      crypto::Rng rng(7700 + t);
      for (int i = 0; i < 15; ++i) {
        const auto m = svc.gg.gt_random(rng);
        const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
        try {
          if (svc.gg.gt_eq(dec_client.decrypt_once(c), m))
            ok.fetch_add(1);
          else
            wrong.fetch_add(1);
        } catch (const ServiceError& e) {
          (e.retryable() ? retryable : nonretryable).fetch_add(1);
        }
      }
    });
  for (auto& t : ts) t.join();
  done.store(true);
  refresher.join();

  EXPECT_EQ(wrong.load(), 0) << "a raced decryption returned a wrong plaintext";
  EXPECT_EQ(nonretryable.load(), 0) << "a raced decryption failed non-retryably";
  EXPECT_GT(ok.load(), 0);
  EXPECT_GE(svc.server->epoch(), 1u);

  const auto sk1 = svc.p1->share_for_test();
  const auto sk2 = svc.server->share_for_test();
  EXPECT_TRUE(svc.gg.g_eq(Core::reconstruct_msk(svc.gg, sk1, sk2), svc.kg.msk));
}

TEST(ServiceTest, StopIsOrderlyAndIdempotent) {
  Service svc;
  {
    auto client = svc.client();
    crypto::Rng rng(5);
    const auto m = svc.gg.gt_random(rng);
    const auto c = Core::enc(svc.gg, svc.kg.pk, m, rng);
    (void)client.decrypt_once(c);
    client.close();
  }
  svc.server->stop();
  svc.server->stop();
}

}  // namespace
}  // namespace dlr::service
