// Deterministic fault injection for chaos testing the framed transport.
//
// FaultInjector wraps a FramedConn behind the Conn interface and perturbs
// traffic at chosen frame indices: drop, duplicate, delay, truncate
// mid-frame, flip a bit, sever the connection, or hold a frame back one slot
// (reordering). Faults come from a FaultPlan, which is either scripted
// (exact action at exact index, for the refresh-interrupted-at-every-frame
// matrix in service_test) or seeded (splitmix64 over (seed, direction,
// index) against configured rates, for the chaos soak) -- the same seed
// always produces the same fault schedule, so every chaos failure replays.
//
// Outbound faults mutate real bytes on the wire (truncate/bit-flip go
// through FramedConn::send_raw, so the peer's CRC/deframer sees genuine
// corruption). Inbound faults act on received frames before the caller sees
// them. Every injected fault increments a fault.injected.<kind> counter.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "transport/endpoint.hpp"

namespace dlr::transport {

enum class FaultKind : std::uint8_t {
  Pass = 0,
  Drop,           // frame vanishes
  Duplicate,      // frame delivered twice
  Delay,          // frame delivered after `param` ms
  Truncate,       // first `param` wire bytes sent, then the conn is severed
  BitFlip,        // wire bit `param` (mod frame bits) flipped
  Sever,          // connection shut down at this index
  HoldUntilNext,  // frame held back and delivered after the next one (reorder)
};

[[nodiscard]] constexpr const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::Pass: return "pass";
    case FaultKind::Drop: return "drop";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::Delay: return "delay";
    case FaultKind::Truncate: return "truncate";
    case FaultKind::BitFlip: return "bitflip";
    case FaultKind::Sever: return "sever";
    case FaultKind::HoldUntilNext: return "hold";
  }
  return "unknown";
}

struct FaultAction {
  FaultKind kind = FaultKind::Pass;
  std::uint32_t param = 0;  // Delay: ms; Truncate: wire bytes; BitFlip: bit index
};

/// Where a fault applies, from the wrapped endpoint's point of view.
enum class Direction : std::uint8_t { Outbound = 0, Inbound = 1 };

class FaultPlan {
 public:
  /// Rates for seeded plans, each the probability (0..1) that a frame at a
  /// given index draws that fault. Evaluated in order drop, duplicate,
  /// delay, bitflip, sever against one uniform draw, so the effective rates
  /// are exactly the configured values.
  struct Rates {
    double drop = 0.0;
    double duplicate = 0.0;
    double delay = 0.0;
    double bitflip = 0.0;
    double sever = 0.0;
    std::uint32_t delay_ms = 2;
  };

  FaultPlan() = default;

  /// Scripted plan: exact action at exact frame index (per direction).
  FaultPlan& at(Direction d, std::uint64_t index, FaultAction a) {
    (d == Direction::Outbound ? out_ : in_)[index] = a;
    return *this;
  }
  FaultPlan& out_at(std::uint64_t index, FaultAction a) {
    return at(Direction::Outbound, index, a);
  }
  FaultPlan& in_at(std::uint64_t index, FaultAction a) {
    return at(Direction::Inbound, index, a);
  }

  /// Seeded plan: deterministic pseudo-random faults at the given rates.
  /// Scripted entries (if any) take precedence at their indices.
  static FaultPlan seeded(std::uint64_t seed, Rates rates) {
    FaultPlan p;
    p.seeded_ = true;
    p.seed_ = seed;
    p.rates_ = rates;
    return p;
  }

  [[nodiscard]] FaultAction action(Direction d, std::uint64_t index) const;

 private:
  std::map<std::uint64_t, FaultAction> out_, in_;
  bool seeded_ = false;
  std::uint64_t seed_ = 0;
  Rates rates_{};
};

/// Conn wrapper applying a FaultPlan to a real FramedConn.
class FaultInjector final : public Conn {
 public:
  FaultInjector(std::shared_ptr<FramedConn> under, FaultPlan plan)
      : under_(std::move(under)), plan_(std::move(plan)) {}

  void send(const Frame& f) override;
  Frame recv(std::optional<Millis> timeout) override;
  using Conn::recv;

  [[nodiscard]] const TransportOptions& options() const override {
    return under_->options();
  }
  void shutdown() noexcept override { under_->shutdown(); }

  /// Total faults injected (both directions) by this wrapper.
  [[nodiscard]] std::uint64_t injected() const {
    std::lock_guard lock(mu_);
    return injected_;
  }

 private:
  void count(FaultKind k);
  void deliver(const Frame& f);  // apply one outbound non-hold action

  std::shared_ptr<FramedConn> under_;
  FaultPlan plan_;
  mutable std::mutex mu_;                // guards all mutable state below
  std::uint64_t out_index_ = 0;
  std::uint64_t in_index_ = 0;
  std::optional<Frame> held_out_;        // HoldUntilNext (outbound)
  std::optional<Frame> held_in_;         // HoldUntilNext (inbound)
  std::deque<Frame> redeliver_;          // inbound duplicates / released holds
  std::uint64_t injected_ = 0;
};

}  // namespace dlr::transport
