// BilinearGroup backend over the real type-A Tate pairing.
//
// A TateGroup is a cheap handle (shared_ptr to the immutable pairing context)
// so schemes can copy it freely. Scalars are plain integers in [0, r); group
// elements are affine points / F_{q^2} values in Montgomery form.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "group/bilinear.hpp"
#include "pairing/pairing.hpp"
#include "telemetry/metrics.hpp"

namespace dlr::group {

template <std::size_t LQ, std::size_t LR>
class TateGroup {
 public:
  using Ctx = pairing::PairingCtx<LQ, LR>;
  using Scalar = mpint::UInt<LR>;
  using G = typename Ctx::G;
  using GT = typename Ctx::GT;

  explicit TateGroup(std::shared_ptr<const Ctx> ctx)
      : ctx_(std::move(ctx)),
        zr_(ctx_->order()),
        tm_fast_sqr_(&telemetry::Registry::global().counter(
            "group.gt.fast_sqr", {{"backend", ctx_->name()}})) {}

  [[nodiscard]] const Ctx& ctx() const { return *ctx_; }

  // ---- scalars --------------------------------------------------------------
  [[nodiscard]] std::size_t scalar_bits() const { return ctx_->order().bit_length(); }
  [[nodiscard]] const Scalar& order() const { return ctx_->order(); }

  [[nodiscard]] Scalar sc_random(crypto::Rng& rng) const { return zr_.random_uint(rng); }
  [[nodiscard]] Scalar sc_from_u64(std::uint64_t v) const {
    return mpint::mod(Scalar::from_u64(v), ctx_->order());
  }
  [[nodiscard]] Scalar sc_add(const Scalar& a, const Scalar& b) const {
    return zr_.to_uint(zr_.add(zr_.from_uint(a), zr_.from_uint(b)));
  }
  [[nodiscard]] Scalar sc_sub(const Scalar& a, const Scalar& b) const {
    return zr_.to_uint(zr_.sub(zr_.from_uint(a), zr_.from_uint(b)));
  }
  [[nodiscard]] Scalar sc_mul(const Scalar& a, const Scalar& b) const {
    return zr_.to_uint(zr_.mul(zr_.from_uint(a), zr_.from_uint(b)));
  }
  [[nodiscard]] Scalar sc_neg(const Scalar& a) const {
    return zr_.to_uint(zr_.neg(zr_.from_uint(a)));
  }
  [[nodiscard]] Scalar sc_inv(const Scalar& a) const {
    return zr_.to_uint(zr_.inv(zr_.from_uint(a)));
  }
  [[nodiscard]] bool sc_eq(const Scalar& a, const Scalar& b) const { return a == b; }
  [[nodiscard]] bool sc_is_zero(const Scalar& a) const { return a.is_zero(); }

  // ---- G --------------------------------------------------------------------
  [[nodiscard]] G g_gen() const { return ctx_->generator(); }
  [[nodiscard]] G g_id() const { return G{}; }
  [[nodiscard]] G g_random(crypto::Rng& rng) const { return ctx_->random_point(rng); }
  [[nodiscard]] G g_mul(const G& a, const G& b) const { return ctx_->curve().add(a, b); }
  [[nodiscard]] G g_inv(const G& a) const { return ctx_->curve().neg(a); }
  [[nodiscard]] G g_pow(const G& a, const Scalar& s) const { return ctx_->curve().mul(a, s); }
  [[nodiscard]] bool g_eq(const G& a, const G& b) const { return a == b; }
  [[nodiscard]] bool g_is_id(const G& a) const { return a.inf; }
  /// prod_i a_i^{s_i} via an interleaved (Strauss) chain.
  [[nodiscard]] G g_multi_pow(std::span<const G> as, std::span<const Scalar> ss) const {
    return ctx_->curve().multi_mul(as, ss);
  }
  [[nodiscard]] G hash_to_g(const Bytes& data) const { return ctx_->hash_to_point(data); }
  /// Full (expensive) membership check: on curve and of order dividing r.
  [[nodiscard]] bool g_in_group(const G& a) const { return ctx_->in_group(a); }

  // ---- GT -------------------------------------------------------------------
  [[nodiscard]] GT gt_gen() const { return ctx_->gt_generator(); }
  [[nodiscard]] GT gt_id() const { return ctx_->fq2().one(); }
  [[nodiscard]] GT gt_random(crypto::Rng& rng) const { return ctx_->random_gt(rng); }
  [[nodiscard]] GT gt_mul(const GT& a, const GT& b) const { return ctx_->fq2().mul(a, b); }
  [[nodiscard]] GT gt_inv(const GT& a) const { return ctx_->gt_inv(a); }
  /// GT exponentiation. Genuine GT elements are norm-1 (gt_deser rejects
  /// anything else), which unlocks the signed-window fast lane: conjugation
  /// is a free inverse and squaring costs 1 mul + 1 sqr. Elements off the
  /// circle (possible only through raw field values in tests) fall back to
  /// generic square-and-multiply; both paths agree where both apply.
  [[nodiscard]] GT gt_pow(const GT& a, const Scalar& s) const {
    const auto& f2 = ctx_->fq2();
    if (f2.is_norm_one(a)) {
      tm_fast_sqr_->add(s.bit_length());
      return f2.pow_norm1(a, s);
    }
    return f2.pow(a, s);
  }
  [[nodiscard]] bool gt_eq(const GT& a, const GT& b) const { return a == b; }
  [[nodiscard]] bool gt_is_id(const GT& a) const { return ctx_->fq2().eq(a, ctx_->fq2().one()); }
  /// prod_i t_i^{s_i} with one shared squaring chain. All-norm-1 inputs (the
  /// only kind the protocols produce) take the signed-window interleaving:
  /// per-base {t, t^3} tables, free negation via conj, cyclotomic-style
  /// squarings.
  [[nodiscard]] GT gt_multi_pow(std::span<const GT> ts, std::span<const Scalar> ss) const {
    if (ts.size() != ss.size())
      throw std::invalid_argument("gt_multi_pow: size mismatch");
    const auto& f2 = ctx_->fq2();
    bool fast = true;
    for (const auto& t : ts)
      if (!f2.is_norm_one(t)) {
        fast = false;
        break;
      }
    if (!fast) {
      std::size_t nbits = 0;
      for (const auto& s : ss) nbits = std::max(nbits, s.bit_length());
      GT acc = f2.one();
      for (std::size_t i = nbits; i-- > 0;) {
        acc = f2.sqr(acc);
        for (std::size_t j = 0; j < ts.size(); ++j)
          if (ss[j].bit(i)) acc = f2.mul(acc, ts[j]);
      }
      return acc;
    }
    std::vector<std::vector<int>> nafs;
    std::vector<std::array<GT, 2>> tbl;  // {t, t^3} per active base
    std::size_t nmax = 0;
    for (std::size_t j = 0; j < ts.size(); ++j) {
      if (ss[j].is_zero()) continue;
      nafs.push_back(mpint::wnaf_digits(ss[j], 3));
      tbl.push_back({ts[j], f2.mul(f2.sqr_norm1(ts[j]), ts[j])});
      nmax = std::max(nmax, nafs.back().size());
    }
    GT acc = f2.one();
    for (std::size_t i = nmax; i-- > 0;) {
      acc = f2.sqr_norm1(acc);
      for (std::size_t j = 0; j < tbl.size(); ++j) {
        if (i >= nafs[j].size()) continue;
        const int d = nafs[j][i];
        if (d == 0) continue;
        const GT& e = tbl[j][(d == 1 || d == -1) ? 0 : 1];
        acc = f2.mul(acc, d > 0 ? e : f2.conj(e));
      }
    }
    tm_fast_sqr_->add(nmax);
    return acc;
  }

  // ---- pairing ----------------------------------------------------------------
  [[nodiscard]] GT pair(const G& a, const G& b) const { return ctx_->pair(a, b); }

  /// Shared-exponent multi-pow: the wNAF-3 recoding of `ss` is computed once
  /// here and reused by every pow() call, which only builds the per-base
  /// {t, t^3} tables and walks the shared squaring chain. pow(ts) is
  /// bit-identical to gt_multi_pow(ts, ss) -- including the generic
  /// square-and-multiply fallback when a base is off the norm-1 circle.
  /// This is the cross-request seam: a decryption batch applies the SAME
  /// secret-share exponent vector to every request's rows.
  class PreparedGtMultiPow {
   public:
    PreparedGtMultiPow(std::shared_ptr<const Ctx> ctx, std::span<const Scalar> ss,
                       telemetry::Counter* fast_sqr)
        : ctx_(std::move(ctx)), ss_(ss.begin(), ss.end()), fast_sqr_(fast_sqr) {
      for (std::size_t j = 0; j < ss_.size(); ++j) {
        if (ss_[j].is_zero()) continue;
        active_.push_back(j);
        nafs_.push_back(mpint::wnaf_digits(ss_[j], 3));
        nmax_ = std::max(nmax_, nafs_.back().size());
      }
    }

    [[nodiscard]] GT pow(std::span<const GT> ts) const {
      if (ts.size() != ss_.size())
        throw std::invalid_argument("prepared gt_multi_pow: size mismatch");
      const auto& f2 = ctx_->fq2();
      bool fast = true;
      for (const auto& t : ts)
        if (!f2.is_norm_one(t)) {
          fast = false;
          break;
        }
      if (!fast) {
        std::size_t nbits = 0;
        for (const auto& s : ss_) nbits = std::max(nbits, s.bit_length());
        GT acc = f2.one();
        for (std::size_t i = nbits; i-- > 0;) {
          acc = f2.sqr(acc);
          for (std::size_t j = 0; j < ts.size(); ++j)
            if (ss_[j].bit(i)) acc = f2.mul(acc, ts[j]);
        }
        return acc;
      }
      std::vector<std::array<GT, 2>> tbl;  // {t, t^3} per active base
      tbl.reserve(active_.size());
      for (const std::size_t j : active_)
        tbl.push_back({ts[j], f2.mul(f2.sqr_norm1(ts[j]), ts[j])});
      GT acc = f2.one();
      for (std::size_t i = nmax_; i-- > 0;) {
        acc = f2.sqr_norm1(acc);
        for (std::size_t j = 0; j < tbl.size(); ++j) {
          if (i >= nafs_[j].size()) continue;
          const int d = nafs_[j][i];
          if (d == 0) continue;
          const GT& e = tbl[j][(d == 1 || d == -1) ? 0 : 1];
          acc = f2.mul(acc, d > 0 ? e : f2.conj(e));
        }
      }
      if (fast_sqr_) fast_sqr_->add(nmax_);
      return acc;
    }

   private:
    std::shared_ptr<const Ctx> ctx_;
    std::vector<Scalar> ss_;             // full vector (generic fallback)
    std::vector<std::size_t> active_;    // indices with nonzero scalar
    std::vector<std::vector<int>> nafs_; // wNAF-3 digits per active scalar
    std::size_t nmax_ = 0;
    telemetry::Counter* fast_sqr_;
  };

  [[nodiscard]] PreparedGtMultiPow prepare_gt_multi_pow(std::span<const Scalar> ss) const {
    return PreparedGtMultiPow(ctx_, ss, tm_fast_sqr_);
  }

  // ---- fast-lane natives -------------------------------------------------------
  // Optional extensions over the BilinearGroup concept; generic wrappers
  // (PreparedPair, FixedPow) detect them with `requires` and fall back to
  // concept-only code on backends that lack them.

  /// Fixed-argument pairing: run the Miller loop once for `a`, evaluate
  /// cheaply against many second arguments.
  [[nodiscard]] pairing::PreparedPairing<LQ, LR> prepare_pair(const G& a) const {
    return pairing::PreparedPairing<LQ, LR>(ctx_, a);
  }

  /// prod of group elements via Jacobian mixed-add accumulation: n cheap
  /// mixed adds + ONE inversion, vs n affine adds each paying a Fermat
  /// inversion. Makes comb-table lookups on G finally profitable.
  [[nodiscard]] G g_prod(std::span<const G> as) const {
    const auto& cv = ctx_->curve();
    ec::JacPoint<LQ> acc{ctx_->fq().one(), ctx_->fq().one(), ctx_->fq().zero()};
    for (const auto& p : as) acc = cv.add_mixed(acc, p);
    return cv.to_affine(acc);
  }

  /// Comb table base^(d * 16^i), d in [1,15], i in [0,windows): built with a
  /// Jacobian addition chain and normalized to affine with ONE batch
  /// inversion (vs 15*windows Fermat inversions for the generic g_mul loop).
  [[nodiscard]] std::vector<G> g_comb_table(const G& base, std::size_t windows) const {
    const auto& cv = ctx_->curve();
    std::vector<ec::JacPoint<LQ>> jac;
    jac.reserve(windows * 15);
    ec::JacPoint<LQ> cur = cv.to_jac(base);  // base^(16^i)
    for (std::size_t i = 0; i < windows; ++i) {
      ec::JacPoint<LQ> acc = cur;
      for (int d = 1; d <= 15; ++d) {
        jac.push_back(acc);
        acc = cv.add(acc, cur);
      }
      cur = acc;  // base^(16^{i+1})
    }
    return cv.batch_to_affine(jac);
  }

  // ---- serialization ----------------------------------------------------------
  // Scalars are packed to ceil(log r / 8) bytes: the measured secret-memory
  // sizes then match the paper's information-theoretic accounting (for SS512,
  // log r = 160 bits = exactly 20 bytes per scalar).
  //
  // Group elements use point compression: a G element is (flag, x) with the
  // flag encoding infinity or the parity of y; a GT element is (flag, re)
  // with im recovered from the norm-1 relation re^2 + im^2 = 1. This halves
  // protocol communication; decompression costs one square root.
  [[nodiscard]] std::size_t sc_bytes() const { return (scalar_bits() + 7) / 8; }
  [[nodiscard]] std::size_t g_bytes() const { return 1 + 8 * LQ; }
  [[nodiscard]] std::size_t gt_bytes() const { return 1 + 8 * LQ; }

  void sc_ser(ByteWriter& w, const Scalar& s) const {
    const auto full = s.to_bytes();
    w.raw(std::span<const std::uint8_t>(full.data(), sc_bytes()));
  }
  [[nodiscard]] Scalar sc_deser(ByteReader& r) const {
    auto bytes = r.raw(sc_bytes());
    bytes.resize(8 * LR, 0);
    const auto v = Scalar::from_bytes(bytes);
    if (v >= ctx_->order()) throw std::invalid_argument("sc_deser: out of range");
    return v;
  }

  void g_ser(ByteWriter& w, const G& a) const {
    if (a.inf) {
      w.u8(1);
      w.raw(mpint::UInt<LQ>{}.to_bytes());
      return;
    }
    const auto& fq = ctx_->fq();
    w.u8(fq.to_uint(a.y).is_odd() ? 3 : 2);
    w.raw(fq.to_uint(a.x).to_bytes());
  }
  [[nodiscard]] G g_deser(ByteReader& r) const {
    const auto flag = r.u8();
    const auto x = mpint::UInt<LQ>::from_bytes(r.raw(8 * LQ));
    if (flag == 1) return G{};
    if (flag != 2 && flag != 3) throw std::invalid_argument("g_deser: bad flag");
    const auto& fq = ctx_->fq();
    if (x >= fq.modulus()) throw std::invalid_argument("g_deser: x out of range");
    const auto p = ctx_->curve().lift_x(fq.from_uint(x), flag == 3);
    if (!p) throw std::invalid_argument("g_deser: x not on curve");
    return *p;
  }

  void gt_ser(ByteWriter& w, const GT& t) const {
    const auto& fq = ctx_->fq();
    w.u8(fq.to_uint(t.b).is_odd() ? 3 : 2);
    w.raw(fq.to_uint(t.a).to_bytes());
  }
  [[nodiscard]] GT gt_deser(ByteReader& r) const {
    const auto flag = r.u8();
    if (flag != 2 && flag != 3) throw std::invalid_argument("gt_deser: bad flag");
    const auto& fq = ctx_->fq();
    const auto a = mpint::UInt<LQ>::from_bytes(r.raw(8 * LQ));
    if (a >= fq.modulus()) throw std::invalid_argument("gt_deser: re out of range");
    // Norm-1 elements satisfy re^2 + im^2 = 1: recover im up to sign.
    const auto re = fq.from_uint(a);
    const auto im2 = fq.sub(fq.one(), fq.sqr(re));
    const auto im = fq.sqrt(im2);
    if (!im) throw std::invalid_argument("gt_deser: not a norm-1 element");
    auto b = *im;
    if (fq.to_uint(b).is_odd() != (flag == 3)) b = fq.neg(b);
    return GT{re, b};
  }

  [[nodiscard]] std::string name() const { return ctx_->name(); }

 private:
  std::shared_ptr<const Ctx> ctx_;
  field::FpCtx<LR> zr_;
  // Registry handle (stable for the process lifetime; shared across copies).
  telemetry::Counter* tm_fast_sqr_ = nullptr;
};

using TateSS512 = TateGroup<8, 3>;
using TateSS256 = TateGroup<4, 1>;
using TateSS1024 = TateGroup<16, 4>;

/// Canonical PBC "a.param" (512-bit q, 160-bit r).
TateSS512 make_tate_ss512();
/// Small, fast, non-cryptographic preset (255-bit q, 64-bit r).
TateSS256 make_tate_ss256();
/// High-margin preset (1024-bit q, 256-bit r; a1-class sizes).
TateSS1024 make_tate_ss1024();

extern template class TateGroup<8, 3>;
extern template class TateGroup<4, 1>;
extern template class TateGroup<16, 4>;

}  // namespace dlr::group
