// Byte-buffer utilities: the common currency for serialization, hashing,
// transcripts and secret-memory snapshots.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace dlr {

using Bytes = std::vector<std::uint8_t>;

/// Append-only little-endian byte writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void raw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Length-prefixed byte string.
  void blob(std::span<const std::uint8_t> bytes) {
    u64(bytes.size());
    raw(bytes);
  }

  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Sequential little-endian byte reader; throws on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const Bytes& data) : data_(data) {}
  // A reader does not own its buffer; constructing from a temporary would
  // dangle immediately.
  explicit ByteReader(Bytes&&) = delete;

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  Bytes raw(std::size_t n) {
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  Bytes blob() { return raw(checked_len(u64())); }

  std::string str() {
    const auto b = raw(checked_len(u64()));
    return {b.begin(), b.end()};
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw std::out_of_range("ByteReader: truncated input");
  }

  std::size_t checked_len(std::uint64_t n) const {
    if (n > data_.size() - pos_) throw std::out_of_range("ByteReader: bad length prefix");
    return static_cast<std::size_t>(n);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

inline std::string to_hex(std::span<const std::uint8_t> b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s;
  s.reserve(b.size() * 2);
  for (auto c : b) {
    s.push_back(kHex[c >> 4]);
    s.push_back(kHex[c & 0xf]);
  }
  return s;
}

inline Bytes from_hex(const std::string& s) {
  if (s.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  auto nib = [](char c) -> std::uint8_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
    throw std::invalid_argument("from_hex: bad digit");
  };
  Bytes out(s.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::uint8_t>(nib(s[2 * i]) << 4 | nib(s[2 * i + 1]));
  return out;
}

inline Bytes operator+(const Bytes& a, const Bytes& b) {
  Bytes out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace dlr
