file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_refresh_ablation.dir/bench_f3_refresh_ablation.cpp.o"
  "CMakeFiles/bench_f3_refresh_ablation.dir/bench_f3_refresh_ablation.cpp.o.d"
  "bench_f3_refresh_ablation"
  "bench_f3_refresh_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_refresh_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
