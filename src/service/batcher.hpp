// Cross-request micro-batch collector for the pipelined server.
//
// Readers (producers) submit decoded, epoch-admitted requests; crypto
// workers (consumers) call collect(), which returns a batch of up to `cap`
// items. A batch closes when it is full, when the OLDEST queued item has
// waited `max_wait`, or when the collector is stopped (pending items still
// drain, in batches). The deadline bounds the latency any request can absorb
// from waiting for queue-mates: an idle server hands a lone request to a
// crypto worker after at most max_wait.
//
// submit() applies backpressure (blocks while queue_cap items are pending)
// and returns false once stop() has been called, mirroring WorkerPool. Many
// producers and many consumers are fine; every hand-off happens under one
// mutex, so a batch is consumed by exactly one worker.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace dlr::service {

template <class Item>
class BatchCollector {
 public:
  struct Options {
    std::size_t cap = 16;                       // max items per batch
    std::chrono::microseconds max_wait{200};    // oldest-item deadline
    std::size_t queue_cap = 1024;               // submit() backpressure bound
  };

  explicit BatchCollector(Options opt) : opt_(opt) {
    if (opt_.cap == 0) opt_.cap = 1;
    if (opt_.queue_cap < opt_.cap) opt_.queue_cap = opt_.cap;
  }

  enum class Submit : std::uint8_t { Ok = 0, Full = 1, Stopped = 2 };

  /// Enqueue one item; blocks while the queue is full. Returns false (and
  /// drops the item) once stop() has been called.
  bool submit(Item item) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] { return stopping_ || q_.size() < opt_.queue_cap; });
    if (stopping_) return false;
    q_.push_back({std::move(item), Clock::now()});
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking enqueue for load-shedding producers (DESIGN.md §13): a
  /// full queue returns Full immediately -- the item is NOT queued and the
  /// caller answers Overloaded -- instead of parking the reader thread and
  /// stalling every request behind it on the same connection.
  [[nodiscard]] Submit try_submit(Item& item) {
    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_) return Submit::Stopped;
    if (q_.size() >= opt_.queue_cap) return Submit::Full;
    q_.push_back({std::move(item), Clock::now()});
    lk.unlock();
    not_empty_.notify_one();
    return Submit::Ok;
  }

  /// Block until a batch is ready and return it. An empty vector means the
  /// collector is stopped AND drained -- the consumer should exit.
  ///
  /// Lingering is ADAPTIVE: a lone item dispatches immediately unless the
  /// recent past showed concurrency (a multi-item batch, or items left
  /// queued after a take). A closed-loop single client therefore never pays
  /// the max_wait linger -- its p50 matches the unbatched path -- while
  /// fan-in traffic, which keeps the queue occupied, still coalesces.
  std::vector<Item> collect() {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return stopping_ || !q_.empty(); });
    if (q_.empty()) return {};
    if (!stopping_ && q_.size() < opt_.cap && (q_.size() > 1 || recent_multi_)) {
      // Linger for queue-mates, but never past the oldest item's deadline.
      // front() can change while unlocked (another consumer may take a
      // batch), so re-derive the deadline each time the wait wakes.
      for (;;) {
        if (q_.empty()) {
          // Another consumer drained the queue; start over.
          not_empty_.wait(lk, [&] { return stopping_ || !q_.empty(); });
          if (q_.empty()) return {};
          continue;
        }
        if (stopping_ || q_.size() >= opt_.cap) break;
        const auto deadline = q_.front().enq + opt_.max_wait;
        if (Clock::now() >= deadline) break;
        not_empty_.wait_until(lk, deadline,
                              [&] { return stopping_ || q_.size() >= opt_.cap; });
        if (stopping_ || q_.size() >= opt_.cap) break;
        if (!q_.empty() && Clock::now() >= q_.front().enq + opt_.max_wait) break;
      }
    }
    std::vector<Item> batch;
    const std::size_t n = std::min(q_.size(), opt_.cap);
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(q_.front().item));
      q_.pop_front();
    }
    recent_multi_ = n > 1 || !q_.empty();
    lk.unlock();
    not_full_.notify_all();
    if (!batch.empty() && n == opt_.cap) not_empty_.notify_one();
    return batch;
  }

  /// Wake every blocked submit (-> false) and collector (pending items still
  /// drain; consumers exit once the queue is empty).
  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t queued() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  using Clock = std::chrono::steady_clock;
  struct Pending {
    Item item;
    Clock::time_point enq;
  };

  Options opt_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Pending> q_;
  bool stopping_ = false;
  bool recent_multi_ = false;  // linger heuristic; guarded by mu_
};

}  // namespace dlr::service
