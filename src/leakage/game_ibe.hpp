// The DIBE continual-memory-leakage game -- the paper states (Section 3)
// that its DIBE definitions are the natural analogues of the DPKE ones:
// standard IBE-CPA (adaptive extract oracle, challenge on an unqueried
// identity) augmented with per-period leakage on both devices' secret
// memory, which per Remark 4.1 contains the msk shares AND every extracted
// identity-key share.
#pragma once

#include <set>

#include "leakage/budget.hpp"
#include "schemes/dlr_ibe.hpp"

namespace dlr::leakage {

template <group::BilinearGroup GG>
class IbeCmlGame {
 public:
  using Sys = schemes::DlrIbeSystem<GG>;
  using Ibe = schemes::DlrIbe<GG>;
  using GT = typename GG::GT;
  using Ciphertext = typename Ibe::Ciphertext;

  struct Config {
    schemes::DlrParams prm;
    std::size_t id_bits = 32;
    std::size_t b1 = 0;
    std::size_t b2 = 0;
    std::uint64_t seed = 0;
  };

  struct LeakagePlan {
    LeakageFn h1, h1_ref, h2, h2_ref;
    std::size_t bits1 = 0, bits1_ref = 0, bits2 = 0, bits2_ref = 0;
  };

  struct PeriodView {
    Bytes l1, l1_ref, l2, l2_ref;
  };

  struct View {
    const typename Ibe::Bb::PublicParams* pp = nullptr;
    std::vector<PeriodView> periods;
  };

  /// Extract oracle: runs the distributed extract and returns the
  /// *reconstructed* BB identity key (identity keys are not secret from
  /// their owners; only the challenge identity is off limits).
  class ExtractOracle {
   public:
    typename Ibe::Bb::IdentityKey extract(const std::string& id) {
      game_->queried_.insert(id);
      if (!game_->sys_->p1().has_id(id)) game_->sys_->extract(id);
      const auto& share1 = game_->sys_->p1().id_share(id);
      return {share1.r, game_->sys_->scheme().reconstruct(
                            share1.unit, game_->sys_->p2().id_share(id))};
    }

   private:
    friend class IbeCmlGame;
    IbeCmlGame* game_ = nullptr;
  };

  class Adversary {
   public:
    virtual ~Adversary() = default;
    virtual bool wants_more_leakage(const View& view) = 0;
    virtual LeakagePlan plan(std::size_t t, const View& view, ExtractOracle& oracle) = 0;
    /// Returns (challenge identity, m0, m1). The identity must be unqueried.
    virtual std::tuple<std::string, GT, GT> choose_challenge(const View& view,
                                                             crypto::Rng& rng) = 0;
    virtual int guess(const View& view, const Ciphertext& challenge,
                      ExtractOracle& oracle) = 0;
  };

  struct Result {
    bool adversary_won = false;
    bool aborted = false;               // leakage budget violation
    bool invalid_challenge = false;     // challenge id was extract-queried
    std::size_t periods = 0;
    std::size_t extract_queries = 0;
  };

  IbeCmlGame(GG gg, Config cfg) : gg_(std::move(gg)), cfg_(cfg) {
    if (cfg_.b1 == 0) cfg_.b1 = cfg_.prm.b1_bits();
    if (cfg_.b2 == 0) cfg_.b2 = 8 * cfg_.prm.ell * gg_.sc_bytes();
  }

  Result run(Adversary& adv) {
    Result res;
    crypto::Rng root(cfg_.seed);
    auto sys = Sys::create(gg_, cfg_.prm, cfg_.id_bits, cfg_.seed + 1);
    sys_ = &sys;
    queried_.clear();

    ExtractOracle oracle;
    oracle.game_ = this;

    View view;
    view.pp = &sys.pp();
    LeakageBudget budget1(cfg_.b1, "P1"), budget2(cfg_.b2, "P2");

    std::size_t t = 0;
    auto bg_rng = root.fork("background");
    while (adv.wants_more_leakage(view)) {
      const std::size_t queries_before = queried_.size();
      const auto plan = adv.plan(t, view, oracle);
      if (!budget1.charge_period(plan.bits1, plan.bits1_ref) ||
          !budget2.charge_period(plan.bits2, plan.bits2_ref)) {
        res.aborted = true;
        res.periods = t;
        sys_ = nullptr;
        return res;
      }
      (void)queries_before;

      // Background activity + refresh of the msk shares and of every live
      // identity-key share (the paper's frequent-refresh convention).
      const std::string bg_id = "background-" + std::to_string(t);
      sys.extract(bg_id);
      const auto bg_m = gg_.gt_random(bg_rng);
      const auto bg_ct = sys.scheme().enc(sys.pp(), bg_id, bg_m, bg_rng);
      (void)sys.decrypt(bg_id, bg_ct);
      const Bytes snap1 = sys.p1().normal_snapshot().all();
      const Bytes snap2 = sys.p2().normal_snapshot().all();
      sys.refresh_msk();

      PeriodView pv;
      pv.l1 = eval_leakage(plan.h1, snap1, {}, plan.bits1).data;
      pv.l2 = eval_leakage(plan.h2, snap2, {}, plan.bits2).data;
      pv.l1_ref =
          eval_leakage(plan.h1_ref, sys.p1().refresh_snapshot().all(), {}, plan.bits1_ref)
              .data;
      pv.l2_ref =
          eval_leakage(plan.h2_ref, sys.p2().refresh_snapshot().all(), {}, plan.bits2_ref)
              .data;
      view.periods.push_back(std::move(pv));
      // Drop the background identity to keep state bounded.
      sys.p1().erase_id(bg_id);
      sys.p2().erase_id(bg_id);
      ++t;
    }
    res.periods = t;

    auto challenge_rng = root.fork("challenge");
    const auto [id, m0, m1] = adv.choose_challenge(view, challenge_rng);
    if (queried_.contains(id)) {
      res.invalid_challenge = true;
      sys_ = nullptr;
      return res;
    }
    const int b = challenge_rng.coin() ? 1 : 0;
    const auto challenge = sys.scheme().enc(sys.pp(), id, b == 0 ? m0 : m1, challenge_rng);
    const int guess = adv.guess(view, challenge, oracle);
    // Post-challenge extract queries on the challenge id would be caught
    // here in a fuller implementation; we conservatively re-check.
    if (queried_.contains(id)) {
      res.invalid_challenge = true;
      sys_ = nullptr;
      return res;
    }
    res.adversary_won = (guess == b);
    res.extract_queries = queried_.size();
    sys_ = nullptr;
    return res;
  }

 private:
  friend class ExtractOracle;
  GG gg_;
  Config cfg_;
  Sys* sys_ = nullptr;
  std::set<std::string> queried_;
};

}  // namespace dlr::leakage
